#!/usr/bin/env python3
"""Validate and compare machine-readable bench reports (BENCH_*.json).

Two modes, stdlib only:

  bench_diff.py --validate FILE...
      Schema-check report files (vsim.bench.report/v1).  Exits 1 on the
      first malformed file; prints one OK line per valid file.

  bench_diff.py BASE NEW [--tolerance PCT] [--micro-tolerance PCT]
      BASE and NEW are directories holding BENCH_*.json sets (or two single
      files).  Rows are matched by (section, workers, configuration) and
      compared: a speedup drop beyond --tolerance (default 5%) or a
      run that newly deadlocks is a REGRESSION and the exit status is 1.
      Micro rows (wall-clock, inherently noisy) are compared at
      --micro-tolerance (default 25%) and reported as warnings only.

      A missing or unreadable BASELINE is a warning, not an error: the
      first run of a new branch has nothing to compare against, and a
      corrupt baseline should not block the pipeline that would replace
      it.  A missing or unreadable NEW report set is always an error --
      that is the artifact under test.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "vsim.bench.report/v1"

ROW_KEYS = ("section", "workers", "configuration", "speedup", "deadlocked",
            "metrics")
MICRO_KEYS = ("name", "real_ns", "cpu_ns", "iterations")

# Counters whose growth between runs is worth a note even when speedup holds.
WATCHED = ("tw.rollbacks", "net.null_messages", "transport.retransmits",
           "ckpt.recoveries")


def fail(msg):
    print("bench_diff: error: " + msg, file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print("bench_diff: warning: " + msg, file=sys.stderr)


def validate(doc, path):
    """Return an error string, or None when `doc` is a valid report."""
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != SCHEMA:
        return "schema is %r, want %r" % (doc.get("schema"), SCHEMA)
    for key, typ in (("name", str), ("git_sha", str), ("config", dict),
                     ("rows", list)):
        if not isinstance(doc.get(key), typ):
            return "field %r missing or not %s" % (key, typ.__name__)
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict):
            return "rows[%d] is not an object" % i
        for key in ROW_KEYS:
            if key not in row:
                return "rows[%d] lacks %r" % (i, key)
        if not isinstance(row["workers"], int):
            return "rows[%d].workers is not an integer" % i
        if not isinstance(row["speedup"], (int, float)) \
                or isinstance(row["speedup"], bool):
            return "rows[%d].speedup is not numeric" % i
        if not isinstance(row["deadlocked"], bool):
            return "rows[%d].deadlocked is not a boolean" % i
        if not isinstance(row["metrics"], dict):
            return "rows[%d].metrics is not an object" % i
        for name, v in row["metrics"].items():
            if isinstance(v, bool) or not isinstance(v, (int, float, dict)):
                return "rows[%d].metrics[%r] is not numeric" % (i, name)
    micro = doc.get("micro", [])
    if not isinstance(micro, list):
        return "field 'micro' is not a list"
    for i, row in enumerate(micro):
        if not isinstance(row, dict):
            return "micro[%d] is not an object" % i
        for key in MICRO_KEYS:
            if key not in row:
                return "micro[%d] lacks %r" % (i, key)
        for key in ("real_ns", "cpu_ns", "iterations"):
            if isinstance(row[key], bool) \
                    or not isinstance(row[key], (int, float)):
                return "micro[%d].%s is not numeric" % (i, key)
    return None


def load(path, on_error=fail):
    """Parse + schema-check one report.  On any problem, reports through
    `on_error` (fail: exit 1; warn: return None so the caller can skip)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        on_error("%s: cannot read report: %s" % (path, e.strerror or e))
        return None
    except ValueError as e:
        on_error("%s: not valid JSON: %s" % (path, e))
        return None
    err = validate(doc, path)
    if err:
        on_error("%s: malformed report: %s" % (path, err))
        return None
    return doc


def collect(path, role, on_error=fail):
    """Map report name -> document for a directory or a single file.
    Returns None when the path yields nothing and `on_error` is non-fatal."""
    if not os.path.exists(path):
        on_error("%s %s does not exist" % (role, path))
        return None
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        if not files:
            on_error("%s %s holds no BENCH_*.json files" % (role, path))
            return None
    else:
        files = [path]
    docs = {}
    for f in files:
        doc = load(f, on_error)
        if doc is not None:
            docs[doc["name"]] = doc
    if not docs:
        on_error("%s %s yielded no readable reports" % (role, path))
        return None
    return docs


def row_key(row):
    return (row["section"], row["workers"], row["configuration"])


def diff_report(name, base, new, tol, micro_tol):
    """Print the comparison for one report; return the regression count."""
    regressions = 0
    base_rows = {row_key(r): r for r in base["rows"]}
    for row in new["rows"]:
        old = base_rows.get(row_key(row))
        if old is None:
            print("  NEW     %s / P=%s / %s" % row_key(row))
            continue
        tag = "%s / P=%s / %s" % row_key(row)
        if row["deadlocked"] and not old["deadlocked"]:
            print("  REGRESSION %s: newly deadlocks" % tag)
            regressions += 1
            continue
        osp, nsp = old["speedup"], row["speedup"]
        if osp > 0 and nsp < osp * (1 - tol):
            print("  REGRESSION %s: speedup %.2f -> %.2f (-%.1f%%)" %
                  (tag, osp, nsp, 100 * (1 - nsp / osp)))
            regressions += 1
        for counter in WATCHED:
            ov = old["metrics"].get(counter, 0)
            nv = row["metrics"].get(counter, 0)
            if nv > max(ov * 2, ov + 100):
                print("  note    %s: %s %s -> %s" % (tag, counter, ov, nv))
    if new.get("partial"):
        print("  warn    %s is a partial report (interrupted run); "
              "missing rows are not regressions" % name)
    base_micro = {m["name"]: m for m in base.get("micro", [])}
    for m in new.get("micro", []):
        old = base_micro.get(m["name"])
        if old is None or old["real_ns"] <= 0:
            continue
        if m["real_ns"] > old["real_ns"] * (1 + micro_tol):
            print("  warn    micro %s: %.0fns -> %.0fns (wall clock; "
                  "not counted as regression)" %
                  (m["name"], old["real_ns"], m["real_ns"]))
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+",
                    help="with --validate: report files; otherwise: "
                         "BASE and NEW directories (or files)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the given files and exit")
    ap.add_argument("--tolerance", type=float, default=5.0,
                    help="allowed speedup drop in percent (default 5)")
    ap.add_argument("--micro-tolerance", type=float, default=25.0,
                    help="wall-clock warning threshold in percent "
                         "(default 25)")
    args = ap.parse_args()

    if args.validate:
        for path in args.paths:
            load(path)
            print("OK %s" % path)
        return

    if len(args.paths) != 2:
        fail("compare mode takes exactly two paths (BASE NEW)")
    # An absent/corrupt baseline downgrades to "nothing to compare": the
    # run that produced NEW is still good, and NEW becomes the baseline.
    base = collect(args.paths[0], "baseline", on_error=warn)
    new = collect(args.paths[1], "new report set")
    if base is None:
        warn("no usable baseline; skipping comparison (exit 0)")
        return

    regressions = 0
    for name in sorted(new):
        if name not in base:
            print("%s: new report (no baseline)" % name)
            continue
        print("%s: %s -> %s" % (name, base[name]["git_sha"],
                                new[name]["git_sha"]))
        regressions += diff_report(name, base[name], new[name],
                                   args.tolerance / 100,
                                   args.micro_tolerance / 100)
    for name in sorted(set(base) - set(new)):
        print("%s: report disappeared" % name)
        regressions += 1

    if regressions:
        print("%d regression(s)" % regressions)
        sys.exit(1)
    print("no regressions")


if __name__ == "__main__":
    main()
