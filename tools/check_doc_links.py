#!/usr/bin/env python3
"""Doc-link checker: fail on dangling references into the repo's documents.

Three classes of reference are verified (all are cheap to keep honest and
historically the first things to rot when sections are renamed):

1. Markdown links in the root *.md files whose target is a repo-relative
   path: the file must exist, and a `#fragment`, if present, must match a
   heading of the target document under GitHub's slugging rules.
2. Quoted section references anywhere in docs, sources, tests, benches and
   ci.sh -- `DESIGN.md "Hot-path data structures"`, `DESIGN.md
   ("Observability")`, `DESIGN.md § *Distributed engine*` -- the quoted
   phrase must occur verbatim in the named document (headings get renamed;
   prose references do not follow automatically).
3. Numbered section references `DESIGN.md §N`: section `## N.` must exist.

Exit status: number of dangling references (0 = clean).
"""

import glob
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_NAMES = ("DESIGN.md", "README.md", "EXPERIMENTS.md", "ROADMAP.md")

# [text](target) -- excluding images and bare autolinks.
MD_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
# DESIGN.md "Title" / DESIGN.md ("Title") / DESIGN.md, "Title"
QUOTED_REF = re.compile(
    r"(DESIGN\.md|README\.md|EXPERIMENTS\.md|ROADMAP\.md)"
    r"[,:]?\s*\(?[\"“]([^\"”\n]{3,60})[\"”]")
# DESIGN.md § *Title* (markdown emphasis form)
STAR_REF = re.compile(
    r"(DESIGN\.md|README\.md)[^\n]{0,20}?§\s*\*([^*\n]{3,60})\*")
# DESIGN.md §7 / §6, §7
NUM_REF = re.compile(r"DESIGN\.md\s*§(\d+)")


def github_slug(heading):
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s, flags=re.UNICODE)
    return s.replace(" ", "-")


def headings(path):
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"(#{1,6})\s+(.*)", line)
            if m:
                out.append(m.group(2).strip())
    return out


def doc_text(cache, name):
    if name not in cache:
        with open(os.path.join(ROOT, name), encoding="utf-8") as f:
            cache[name] = f.read()
    return cache[name]


def main():
    errors = []
    cache = {}

    # 1. markdown links in root docs
    for doc in sorted(glob.glob(os.path.join(ROOT, "*.md"))):
        text = doc_text(cache, os.path.basename(doc))
        for m in MD_LINK.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, frag = target.partition("#")
            where = "%s -> %s" % (os.path.basename(doc), target)
            full = os.path.normpath(
                os.path.join(os.path.dirname(doc), path)) if path else doc
            if not os.path.exists(full):
                errors.append("missing file: " + where)
                continue
            if frag and full.endswith(".md"):
                slugs = [github_slug(h) for h in headings(full)]
                if github_slug(frag) not in slugs:
                    errors.append("dangling anchor: " + where)

    # 2 + 3. section references from docs, sources, tests, benches, ci.sh
    ref_files = []
    for pat in ("*.md", "ci.sh", "src/**/*.h", "src/**/*.cpp",
                "tests/*.cpp", "bench/*.cpp", "bench/*.h", "tools/*.py",
                "examples/*.cpp"):
        ref_files += glob.glob(os.path.join(ROOT, pat), recursive=True)
    for path in sorted(set(ref_files)):
        rel = os.path.relpath(path, ROOT)
        if rel == os.path.join("tools", "check_doc_links.py"):
            continue  # our own docstring/patterns are not references
        with open(path, encoding="utf-8") as f:
            text = f.read()
        # Comments wrap quoted titles across lines; rejoin before matching.
        joined = re.sub(r"\n\s*(?://|\*|#)?\s*", " ", text)
        for doc, phrase in (QUOTED_REF.findall(joined) +
                            STAR_REF.findall(joined)):
            if rel == os.path.basename(path) == doc:
                continue  # a document quoting its own headings is fine
            if phrase not in doc_text(cache, doc):
                errors.append('dangling section ref in %s: %s "%s"'
                              % (rel, doc, phrase))
        for num in NUM_REF.findall(joined):
            if not re.search(r"^##\s*%s\." % num,
                             doc_text(cache, "DESIGN.md"), re.M):
                errors.append("dangling numbered ref in %s: DESIGN.md §%s"
                              % (rel, num))

    for e in errors:
        print("FAIL " + e)
    if not errors:
        print("OK doc links (%d files scanned)" % len(set(ref_files)))
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
