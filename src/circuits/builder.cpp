#include "circuits/builder.h"

namespace vsim::circuits {

SignalId CircuitBuilder::wire(const std::string& name, Logic init) {
  return d_.add_signal(name, LogicVector{init});
}

ProcessId CircuitBuilder::attach(std::unique_ptr<vhdl::ProcessBody> body,
                                 const std::vector<SignalId>& ins,
                                 SignalId out, const std::string& name,
                                 bool synchronous) {
  const std::string pname =
      name.empty() ? "p" + std::to_string(auto_name_++) : name;
  const ProcessId p = d_.add_process(pname, std::move(body));
  for (SignalId s : ins) d_.connect_in(p, s);
  d_.connect_out(p, out);
  d_.set_sync_hint(p, synchronous);
  if (synchronous) d_.set_signal_sync_hint(out, true);
  return p;
}

ProcessId CircuitBuilder::gate(GateKind kind, const std::vector<SignalId>& ins,
                               SignalId out, const std::string& name) {
  auto body = std::make_unique<GateBody>(kind, static_cast<int>(ins.size()),
                                         delay_);
  const ProcessId p =
      attach(std::move(body), ins, out, name, /*synchronous=*/false);
  d_.process(p).set_lookahead(delay_);  // static input-to-output delay
  return p;
}

ProcessId CircuitBuilder::dff(SignalId clk, SignalId d, SignalId q,
                              const std::string& name) {
  auto body = std::make_unique<DffBody>(delay_, /*has_reset=*/false);
  const ProcessId p =
      attach(std::move(body), {clk, d}, q, name, /*synchronous=*/true);
  d_.process(p).set_lookahead(delay_);
  return p;
}

ProcessId CircuitBuilder::dff_r(SignalId clk, SignalId d, SignalId rst,
                                SignalId q, const std::string& name) {
  auto body = std::make_unique<DffBody>(delay_, /*has_reset=*/true);
  const ProcessId p = attach(std::move(body), {clk, d, rst}, q, name,
                             /*synchronous=*/true);
  d_.process(p).set_lookahead(delay_);
  return p;
}

ProcessId CircuitBuilder::clock(SignalId out, PhysTime half_period,
                                const std::string& name) {
  auto body = std::make_unique<ClockBody>(half_period);
  const ProcessId p =
      attach(std::move(body), {}, out, name, /*synchronous=*/true);
  d_.process(p).set_lookahead(half_period);
  return p;
}

ProcessId CircuitBuilder::stimulus(
    SignalId out, std::vector<std::pair<PhysTime, Logic>> script,
    const std::string& name) {
  auto body = std::make_unique<StimulusBody>(std::move(script));
  return attach(std::move(body), {}, out, name, /*synchronous=*/false);
}

ProcessId CircuitBuilder::random_bits(SignalId out, PhysTime period,
                                      std::uint64_t seed, PhysTime stop,
                                      const std::string& name) {
  auto body = std::make_unique<RandomBitBody>(period, seed, stop);
  return attach(std::move(body), {}, out, name, /*synchronous=*/false);
}

SignalId CircuitBuilder::const_wire(Logic v, const std::string& name) {
  const SignalId s = wire(name, v);
  stimulus(s, {{0, v}}, name + "_drv");
  return s;
}

void CircuitBuilder::full_adder(SignalId a, SignalId b, SignalId cin,
                                SignalId sum, SignalId cout,
                                const std::string& prefix) {
  const SignalId axb = wire(prefix + ".axb");
  const SignalId ab = wire(prefix + ".ab");
  const SignalId cx = wire(prefix + ".cx");
  gate(GateKind::kXor, {a, b}, axb, prefix + ".x1");
  gate(GateKind::kXor, {axb, cin}, sum, prefix + ".x2");
  gate(GateKind::kAnd, {a, b}, ab, prefix + ".a1");
  gate(GateKind::kAnd, {axb, cin}, cx, prefix + ".a2");
  gate(GateKind::kOr, {ab, cx}, cout, prefix + ".o1");
}

std::vector<SignalId> CircuitBuilder::adder(const std::vector<SignalId>& a,
                                            const std::vector<SignalId>& b,
                                            SignalId cin,
                                            const std::string& prefix) {
  const std::size_t w = a.size();
  std::vector<SignalId> sum(w);
  SignalId carry = cin;
  for (std::size_t i = 0; i < w; ++i) {
    sum[i] = wire(prefix + ".s" + std::to_string(i));
    const SignalId cnext = wire(prefix + ".c" + std::to_string(i + 1));
    full_adder(a[i], b[i], carry, sum[i], cnext,
               prefix + ".fa" + std::to_string(i));
    carry = cnext;
  }
  return sum;
}

std::vector<SignalId> CircuitBuilder::reg_bank(
    SignalId clk, const std::vector<SignalId>& d, const std::string& prefix) {
  std::vector<SignalId> q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q[i] = wire(prefix + ".q" + std::to_string(i), Logic::k0);
    dff(clk, d[i], q[i], prefix + ".ff" + std::to_string(i));
  }
  return q;
}

}  // namespace vsim::circuits
