#include "circuits/dct.h"

namespace vsim::circuits {
namespace {

std::vector<SignalId> asr(const std::vector<SignalId>& x, std::size_t n) {
  std::vector<SignalId> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = i + n < x.size() ? x[i + n] : x.back();
  return out;
}

}  // namespace

DctCircuit build_dct(vhdl::Design& design, const DctParams& params) {
  CircuitBuilder b(design, params.gate_delay);
  DctCircuit c;
  const std::size_t w = params.width;
  const std::size_t n = params.n;

  c.clk = b.wire("clk", Logic::k0);
  b.clock(c.clk, params.clock_half);
  const SignalId zero = b.const_wire(Logic::k0, "const0");

  // Input rows: registered pseudo-random samples a(i, *).
  c.inputs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.inputs[i].resize(w);
    for (std::size_t k = 0; k < w; ++k) {
      c.inputs[i][k] = b.wire("a" + std::to_string(i) + "_" +
                              std::to_string(k), Logic::k0);
      b.random_bits(c.inputs[i][k], 2 * params.clock_half,
                    params.input_seed + i * w + k, params.input_stop,
                    "a_gen" + std::to_string(i) + "_" + std::to_string(k));
    }
  }

  // MAC cells: cell (i,j) computes acc += (a_i * c_j) where the cosine
  // coefficient multiply is a two-term shift-add: x*c ~ (x>>s1) + (x>>s2).
  c.acc.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::string p = "mac" + std::to_string(i) + "_" +
                            std::to_string(j);
      const std::size_t s1 = 1 + (j % 3);
      const std::size_t s2 = 2 + ((i + j) % 3);

      // coefficient multiply: prod = (a >> s1) + (a >> s2)
      const std::vector<SignalId> prod =
          b.adder(asr(c.inputs[i], s1), asr(c.inputs[i], s2), zero,
                  p + ".mul");
      // accumulate: accq = reg(acc_sum); acc_sum = prod + accq
      std::vector<SignalId> accq(w);
      for (std::size_t k = 0; k < w; ++k)
        accq[k] = b.wire(p + ".accq" + std::to_string(k), Logic::k0);
      const std::vector<SignalId> sum = b.adder(prod, accq, zero, p + ".acc");
      for (std::size_t k = 0; k < w; ++k)
        b.dff(c.clk, sum[k], accq[k], p + ".ff" + std::to_string(k));
      c.acc[i].insert(c.acc[i].end(), accq.begin(), accq.end());
    }
  }

  c.lp_count = design.graph().size();
  return c;
}

}  // namespace vsim::circuits
