// Finite state machine (paper Fig. 5 / Fig. 6: "FSM (0 Delay)").
//
// A synchronous FSM with a wide state register and zero-delay
// combinational next-state logic: a gated ripple incrementer with an
// input-conditioned mux per bit plus a parity/decode tree on the outputs.
// With zero gate delays every clock edge triggers a long chain of delta
// cycles -- precisely the case the (pt, lt) tie-breaking exists for.
#pragma once

#include "circuits/builder.h"

namespace vsim::circuits {

struct FsmParams {
  std::size_t lanes = 10;       ///< independent counter lanes (parallelism)
  std::size_t width = 7;        ///< bits per lane; 10x7 = 562 LPs (~553)
  PhysTime gate_delay = 0;      ///< zero: pure delta-cycle combinational logic
  PhysTime clock_half = 10;
  std::uint64_t input_seed = 42;
  PhysTime input_period = 20;
  PhysTime input_stop = std::numeric_limits<PhysTime>::max();
};

struct FsmCircuit {
  vhdl::SignalId clk;
  vhdl::SignalId input;
  std::vector<vhdl::SignalId> state;  ///< register outputs, LSB first
  vhdl::SignalId parity;              ///< decode-tree output
  std::size_t lp_count = 0;
};

/// Builds the FSM into `design`; returns the interface nets.
FsmCircuit build_fsm(vhdl::Design& design, const FsmParams& params = {});

}  // namespace vsim::circuits
