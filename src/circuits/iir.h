// Gray-Markel cascaded-lattice IIR filter, gate level (paper Figs. 7/8).
//
// A cascade of two-multiplier lattice sections.  Each section holds one
// z^-1 register bank and computes, in W-bit two's-complement fixed point:
//
//   f_{s-1} = f_s   - k_s * g_delay     (k_s * x realised as x >> shift_s)
//   g_s     = g_delay + k_s * f_{s-1}
//
// Subtraction is invert-and-carry-in; constant multipliers are arithmetic
// shifts (wiring), so the datapath is adders + inverters + registers --
// exactly the synchronous/asynchronous mix the paper's mixed heuristic
// targets: registers synchronous, ripple-carry chains asynchronous.
#pragma once

#include "circuits/builder.h"

namespace vsim::circuits {

struct IirParams {
  std::size_t width = 7;       ///< datapath bits; 7x5 = 860 LPs (~870)
  std::size_t sections = 5;    ///< lattice sections
  PhysTime gate_delay = 1;     ///< gate level: non-zero propagation delays
  PhysTime clock_half = 200;   ///< sample clock (long enough to settle)
  std::uint64_t input_seed = 7;
  PhysTime input_stop = std::numeric_limits<PhysTime>::max();
};

struct IirCircuit {
  vhdl::SignalId clk;
  std::vector<vhdl::SignalId> input;   ///< x bits, LSB first
  std::vector<vhdl::SignalId> output;  ///< y bits, LSB first
  std::size_t lp_count = 0;
};

IirCircuit build_iir(vhdl::Design& design, const IirParams& params = {});

}  // namespace vsim::circuits
