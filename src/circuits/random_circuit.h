// Random synchronous netlist generator.
//
// Produces structurally valid designs for fuzzing the engines: a layered
// combinational DAG (no zero-delay loops by construction -- feedback is
// only allowed through flip-flops), a configurable mix of zero-delay and
// delayed gates, multi-driver resolved nets, clocks and random stimuli.
#pragma once

#include "circuits/builder.h"

namespace vsim::circuits {

struct RandomCircuitParams {
  std::uint64_t seed = 1;
  std::size_t num_inputs = 4;
  std::size_t num_gates = 40;
  std::size_t num_dffs = 8;
  /// Probability (percent) that a gate has zero delay (delta cycles).
  int zero_delay_pct = 50;
  PhysTime max_delay = 3;
  PhysTime clock_half = 13;
  PhysTime input_period = 9;
  PhysTime input_stop = 10000;
  /// Number of two-driver resolved nets to add (buffers onto shared nets).
  std::size_t num_resolved = 2;
  /// Every `observe_stride`-th gate output joins the observable probe set
  /// (register outputs always do).
  std::size_t observe_stride = 5;
  /// Caps the observable set by deterministic even subsampling; 0 = no cap.
  /// Six-figure netlists need this: every probe adds a monitor reader edge,
  /// and tracing tens of thousands of signals would dominate the run.
  std::size_t max_observables = 0;
};

struct RandomCircuit {
  std::vector<vhdl::SignalId> observable;  ///< good probe set for tracing
  std::size_t lp_count = 0;
};

RandomCircuit build_random_circuit(vhdl::Design& design,
                                   const RandomCircuitParams& params);

/// Parameter preset that yields roughly `target_signals` nets (within a few
/// percent; the generator's layer mix decides the exact count).  This is the
/// entry point for six-figure netlists: pick a target, fuse with
/// partition/cluster.h, and the flat LP count lands near 2x the signal count
/// (one SignalLp per net plus one ProcessLp per gate/generator).
[[nodiscard]] RandomCircuitParams sized_random_params(
    std::size_t target_signals, std::uint64_t seed);

}  // namespace vsim::circuits
