#include "circuits/random_circuit.h"

#include <algorithm>
#include <utility>

namespace vsim::circuits {
namespace {

// Deterministic xorshift; avoids <random> so results are stable across
// standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed ? seed : 0x9e3779b9u) {}
  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  std::size_t below(std::size_t n) { return next() % n; }
  int percent() { return static_cast<int>(next() % 100); }

 private:
  std::uint64_t s_;
};

}  // namespace

RandomCircuit build_random_circuit(vhdl::Design& design,
                                   const RandomCircuitParams& params) {
  Rng rng(params.seed);
  RandomCircuit out;

  const SignalId clk = design.add_signal("clk", LogicVector{Logic::k0});
  std::vector<SignalId> pool{clk};

  // The builder's per-gate delay is fixed at construction; use two
  // builders sharing the design, one for each delay class.
  CircuitBuilder zb(design, 0);
  zb.clock(clk, params.clock_half);

  // Primary inputs.
  for (std::size_t i = 0; i < params.num_inputs; ++i) {
    const SignalId w =
        zb.wire("in" + std::to_string(i), Logic::k0);
    zb.random_bits(w, params.input_period + static_cast<PhysTime>(i),
                   params.seed * 7919 + i, params.input_stop,
                   "in_gen" + std::to_string(i));
    pool.push_back(w);
  }

  static constexpr GateKind kKinds[] = {
      GateKind::kAnd, GateKind::kOr,  GateKind::kNand, GateKind::kNor,
      GateKind::kXor, GateKind::kXnor, GateKind::kNot, GateKind::kBuf,
      GateKind::kMux2};

  // Combinational layer: each gate reads only already-created nets, so the
  // zero-delay subgraph is acyclic by construction.
  std::vector<SignalId> gate_outs;
  for (std::size_t g = 0; g < params.num_gates; ++g) {
    const GateKind kind = kKinds[rng.below(std::size(kKinds))];
    std::size_t arity = 2;
    if (kind == GateKind::kNot || kind == GateKind::kBuf) arity = 1;
    if (kind == GateKind::kMux2) arity = 3;
    std::vector<SignalId> ins;
    for (std::size_t i = 0; i < arity; ++i)
      ins.push_back(pool[rng.below(pool.size())]);
    const SignalId o = zb.wire("g" + std::to_string(g), Logic::k0);
    const bool zero = rng.percent() < params.zero_delay_pct;
    if (zero) {
      zb.gate(kind, ins, o);
    } else {
      CircuitBuilder db(design,
                        1 + static_cast<PhysTime>(
                                rng.below(static_cast<std::size_t>(
                                    params.max_delay))));
      db.gate(kind, ins, o);
    }
    pool.push_back(o);
    gate_outs.push_back(o);
  }

  // Registers close feedback loops safely (state -> pool for future runs
  // would be cyclic; here q feeds nothing combinational created earlier,
  // but monitors and later gates could read it -- that is still acyclic
  // within a delta because DFFs only fire on clock events).
  std::vector<SignalId> qs;
  for (std::size_t f = 0; f < params.num_dffs; ++f) {
    const SignalId d = pool[1 + rng.below(pool.size() - 1)];
    const SignalId q = zb.wire("q" + std::to_string(f), Logic::k0);
    zb.dff(clk, d, q, "ff" + std::to_string(f));
    qs.push_back(q);
  }
  // A second combinational stage may read register outputs (feedback
  // through state only).
  for (std::size_t g = 0; !qs.empty() && g < params.num_gates / 4; ++g) {
    const SignalId a = qs[rng.below(qs.size())];
    const SignalId b = pool[rng.below(pool.size())];
    const SignalId o = zb.wire("h" + std::to_string(g), Logic::k0);
    zb.gate(GateKind::kXor, {a, b}, o);
    gate_outs.push_back(o);
  }

  // Multi-driver resolved nets: two buffers from different sources.
  for (std::size_t r = 0; r < params.num_resolved; ++r) {
    const SignalId net = zb.wire("bus" + std::to_string(r), Logic::kU);
    zb.gate(GateKind::kBuf, {pool[rng.below(pool.size())]}, net);
    zb.gate(GateKind::kBuf, {pool[rng.below(pool.size())]}, net);
    gate_outs.push_back(net);
  }

  // Observables: registers, buses and a sample of gate outputs, optionally
  // subsampled to a cap (deterministically, so every run of the same params
  // probes the same nets and oracle comparisons stay meaningful).
  out.observable = qs;
  const std::size_t stride = std::max<std::size_t>(1, params.observe_stride);
  for (std::size_t i = 0; i < gate_outs.size(); i += stride)
    out.observable.push_back(gate_outs[i]);
  if (params.max_observables > 0 &&
      out.observable.size() > params.max_observables) {
    std::vector<SignalId> sampled;
    sampled.reserve(params.max_observables);
    const std::size_t n = out.observable.size();
    for (std::size_t i = 0; i < params.max_observables; ++i)
      sampled.push_back(out.observable[i * n / params.max_observables]);
    out.observable = std::move(sampled);
  }
  out.lp_count = design.graph().size();
  return out;
}

RandomCircuitParams sized_random_params(std::size_t target_signals,
                                        std::uint64_t seed) {
  RandomCircuitParams p;
  p.seed = seed;
  // Nets produced: 1 (clk) + inputs + gates (g*) + gates/4 (h*) + dffs (q*)
  // + resolved buses.  Registers and buses are kept sparse so activity per
  // clock edge stays proportional to the netlist, not quadratic in it.
  p.num_inputs = std::max<std::size_t>(8, target_signals / 128);
  p.num_dffs = std::max<std::size_t>(8, target_signals / 32);
  p.num_resolved = std::max<std::size_t>(2, target_signals / 512);
  const std::size_t fixed =
      1 + p.num_inputs + p.num_dffs + p.num_resolved;
  const std::size_t rest =
      target_signals > fixed + 16 ? target_signals - fixed : 16;
  // gates + gates/4 ~= rest; the +2 absorbs both integer floors so the
  // realised net count lands at or just above the target, never below.
  p.num_gates = (rest * 4) / 5 + 2;
  // Bound the probe set: enough coverage to make the oracle diff meaty,
  // cheap enough that the monitor LP is not the hot spot at 100k+ nets.
  p.max_observables = 512;
  return p;
}

}  // namespace vsim::circuits
