// Gate-level process bodies.
//
// Each body is the "compiled" sequential part of a small behavioural VHDL
// process, e.g. for a NAND gate:
//
//   process (a, b) begin
//     y <= a nand b after tpd;
//   end process;
//
// Bodies are value types: clone() is a plain copy, which keeps Time Warp
// snapshots cheap.
#pragma once

#include <vector>

#include "vhdl/process_lp.h"

namespace vsim::circuits {

using vhdl::ProcessApi;
using vhdl::ProcessBody;

enum class GateKind : std::uint8_t {
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kNot,
  kBuf,
  kMux2,  ///< inputs: a, b, sel; y = sel ? b : a
};

[[nodiscard]] Logic eval_gate(GateKind kind, const std::vector<Logic>& in);
[[nodiscard]] const char* gate_name(GateKind kind);

/// Combinational gate: on any input event, re-evaluate and assign.
class GateBody final : public ProcessBody {
 public:
  GateBody(GateKind kind, int num_inputs, PhysTime delay)
      : kind_(kind), num_inputs_(num_inputs), delay_(delay) {}

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<GateBody>(*this);
  }

  void run(ProcessApi& api) override;

  // No mutable variables: the codec is an empty success.
  [[nodiscard]] bool encode_vars(bytes::Writer&) const override {
    return true;
  }
  [[nodiscard]] bool decode_vars(bytes::Reader&) override { return true; }

 private:
  GateKind kind_;
  int num_inputs_;
  PhysTime delay_;
};

/// Rising-edge D flip-flop, ports: 0 = clk, 1 = d [, 2 = rst active-high].
///
///   process (clk, rst) begin
///     if rst = '1' then q <= '0' after tcq;
///     elsif clk'event and clk = '1' then q <= d after tcq;
///     end if;
///   end process;
class DffBody final : public ProcessBody {
 public:
  DffBody(PhysTime delay, bool has_reset)
      : delay_(delay), has_reset_(has_reset) {}

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<DffBody>(*this);
  }

  void run(ProcessApi& api) override;

  [[nodiscard]] bool encode_vars(bytes::Writer&) const override {
    return true;
  }
  [[nodiscard]] bool decode_vars(bytes::Reader&) override { return true; }

 private:
  PhysTime delay_;
  bool has_reset_;
};

/// Free-running clock generator:
///
///   process begin
///     clk <= '0'; wait for half;
///     clk <= '1'; wait for half;
///   end process;
class ClockBody final : public ProcessBody {
 public:
  explicit ClockBody(PhysTime half_period) : half_(half_period) {}

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<ClockBody>(*this);
  }

  void run(ProcessApi& api) override;

  [[nodiscard]] bool encode_vars(bytes::Writer& w) const override {
    w.u8(level_ ? 1 : 0);
    return true;
  }
  [[nodiscard]] bool decode_vars(bytes::Reader& r) override {
    level_ = r.u8() != 0;
    return r.ok();
  }

 private:
  PhysTime half_;
  bool level_ = false;  // next level to drive
};

/// Plays back a fixed scalar stimulus: (time, value) pairs, then waits
/// forever.  Times must be strictly increasing, starting at 0 or later.
class StimulusBody final : public ProcessBody {
 public:
  explicit StimulusBody(std::vector<std::pair<PhysTime, Logic>> script)
      : script_(std::move(script)) {}

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<StimulusBody>(*this);
  }

  void run(ProcessApi& api) override;

  [[nodiscard]] bool encode_vars(bytes::Writer& w) const override {
    w.u64(next_);
    return true;
  }
  [[nodiscard]] bool decode_vars(bytes::Reader& r) override {
    next_ = static_cast<std::size_t>(r.u64());
    return r.ok() && next_ <= script_.size();
  }

 private:
  std::vector<std::pair<PhysTime, Logic>> script_;
  std::size_t next_ = 0;
};

/// Pseudo-random bit stream at a fixed period (xorshift PRNG in the body
/// state, deterministic and cloneable).
class RandomBitBody final : public ProcessBody {
 public:
  RandomBitBody(PhysTime period, std::uint64_t seed, PhysTime stop)
      : period_(period), rng_(seed == 0 ? 1 : seed), stop_(stop) {}

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<RandomBitBody>(*this);
  }

  void run(ProcessApi& api) override;

  [[nodiscard]] bool encode_vars(bytes::Writer& w) const override {
    w.u64(rng_);
    return true;
  }
  [[nodiscard]] bool decode_vars(bytes::Reader& r) override {
    rng_ = r.u64();
    return r.ok();
  }

 private:
  PhysTime period_;
  std::uint64_t rng_;
  PhysTime stop_;
};

}  // namespace vsim::circuits
