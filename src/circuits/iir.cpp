#include "circuits/iir.h"

namespace vsim::circuits {
namespace {

/// Arithmetic right shift as wiring: result[i] = x[i+n], sign-extended.
std::vector<SignalId> asr(const std::vector<SignalId>& x, std::size_t n) {
  std::vector<SignalId> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = i + n < x.size() ? x[i + n] : x.back();
  return out;
}

/// a - b: invert b and add with carry-in 1.
std::vector<SignalId> subtract(CircuitBuilder& b,
                               const std::vector<SignalId>& a,
                               const std::vector<SignalId>& bb, SignalId one,
                               const std::string& prefix) {
  std::vector<SignalId> nb(bb.size());
  for (std::size_t i = 0; i < bb.size(); ++i) {
    nb[i] = b.wire(prefix + ".nb" + std::to_string(i));
    b.gate(GateKind::kNot, {bb[i]}, nb[i]);
  }
  return b.adder(a, nb, one, prefix + ".sub");
}

}  // namespace

IirCircuit build_iir(vhdl::Design& design, const IirParams& params) {
  CircuitBuilder b(design, params.gate_delay);
  IirCircuit c;
  const std::size_t w = params.width;

  c.clk = b.wire("clk", Logic::k0);
  b.clock(c.clk, params.clock_half);
  const SignalId zero = b.const_wire(Logic::k0, "const0");
  const SignalId one = b.const_wire(Logic::k1, "const1");
  (void)zero;

  // Input sample: one pseudo-random stream per bit.
  c.input.resize(w);
  for (std::size_t i = 0; i < w; ++i) {
    c.input[i] = b.wire("x" + std::to_string(i), Logic::k0);
    b.random_bits(c.input[i], 2 * params.clock_half, params.input_seed + i,
                  params.input_stop, "x_gen" + std::to_string(i));
  }

  // Cascade: f flows backwards through sections, g forwards with delay.
  std::vector<SignalId> f = c.input;
  std::vector<SignalId> g_delay(w);
  for (std::size_t i = 0; i < w; ++i)
    g_delay[i] = b.wire("g0.q" + std::to_string(i), Logic::k0);
  std::vector<SignalId> first_gq = g_delay;

  std::vector<SignalId> g_next;
  for (std::size_t s = 0; s < params.sections; ++s) {
    const std::string p = "sec" + std::to_string(s);
    const std::size_t shift = 1 + (s % 3);  // k_s in {1/2, 1/4, 1/8}

    // f' = f - (g_delay >> shift)
    const std::vector<SignalId> kg = asr(g_delay, shift);
    const std::vector<SignalId> fp = subtract(b, f, kg, one, p + ".f");
    // g = g_delay + (f' >> shift)
    const std::vector<SignalId> kf = asr(fp, shift);
    g_next = b.adder(g_delay, kf, zero, p + ".g");

    // z^-1 between sections: register g for the next stage.
    if (s + 1 < params.sections) {
      g_delay = b.reg_bank(c.clk, g_next, p + ".z");
    }
    f = fp;
  }
  // Close the lattice: the final g feeds back into the first delay line.
  // (Structural feedback through a register keeps the loop clocked.)
  for (std::size_t i = 0; i < w; ++i) {
    b.dff(c.clk, g_next[i], first_gq[i],
          "gfb.ff" + std::to_string(i));
  }

  c.output = f;
  c.lp_count = design.graph().size();
  return c;
}

}  // namespace vsim::circuits
