#include "circuits/gates.h"

#include <cassert>

namespace vsim::circuits {

Logic eval_gate(GateKind kind, const std::vector<Logic>& in) {
  switch (kind) {
    case GateKind::kAnd:
    case GateKind::kNand: {
      Logic acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = logic_and(acc, in[i]);
      return kind == GateKind::kNand ? logic_not(acc) : acc;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      Logic acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = logic_or(acc, in[i]);
      return kind == GateKind::kNor ? logic_not(acc) : acc;
    }
    case GateKind::kXor:
    case GateKind::kXnor: {
      Logic acc = in[0];
      for (std::size_t i = 1; i < in.size(); ++i) acc = logic_xor(acc, in[i]);
      return kind == GateKind::kXnor ? logic_not(acc) : acc;
    }
    case GateKind::kNot:
      return logic_not(in[0]);
    case GateKind::kBuf:
      return in[0];
    case GateKind::kMux2: {
      const Logic sel = to_x01(in[2]);
      if (sel == Logic::k0) return in[0];
      if (sel == Logic::k1) return in[1];
      return in[0] == in[1] ? in[0] : Logic::kX;
    }
  }
  return Logic::kX;
}

const char* gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd: return "and";
    case GateKind::kOr: return "or";
    case GateKind::kNand: return "nand";
    case GateKind::kNor: return "nor";
    case GateKind::kXor: return "xor";
    case GateKind::kXnor: return "xnor";
    case GateKind::kNot: return "not";
    case GateKind::kBuf: return "buf";
    case GateKind::kMux2: return "mux2";
  }
  return "?";
}

void GateBody::run(ProcessApi& api) {
  std::vector<Logic> in;
  in.reserve(static_cast<std::size_t>(num_inputs_));
  std::vector<int> ports;
  ports.reserve(static_cast<std::size_t>(num_inputs_));
  for (int i = 0; i < num_inputs_; ++i) {
    in.push_back(api.value(i).scalar());
    ports.push_back(i);
  }
  api.assign(0, LogicVector{eval_gate(kind_, in)}, delay_);
  api.wait_on(std::move(ports));
}

void DffBody::run(ProcessApi& api) {
  constexpr int kClk = 0, kD = 1, kRst = 2;
  if (has_reset_ && to_x01(api.value(kRst).scalar()) == Logic::k1) {
    api.assign(0, LogicVector{Logic::k0}, delay_);
  } else if (api.event(kClk) &&
             to_x01(api.value(kClk).scalar()) == Logic::k1) {
    api.assign(0, api.value(kD), delay_);
  }
  std::vector<int> sens{kClk};
  if (has_reset_) sens.push_back(kRst);
  api.wait_on(std::move(sens));
}

void ClockBody::run(ProcessApi& api) {
  api.assign(0, LogicVector{logic_of_bool(level_)});
  level_ = !level_;
  api.wait_for(half_);
}

void StimulusBody::run(ProcessApi& api) {
  // Emit every script entry whose time has come, then sleep to the next.
  while (next_ < script_.size() && script_[next_].first <= api.now().pt) {
    api.assign(0, LogicVector{script_[next_].second});
    ++next_;
  }
  if (next_ < script_.size()) {
    api.wait_for(script_[next_].first - api.now().pt);
  } else {
    api.wait_forever();
  }
}

void RandomBitBody::run(ProcessApi& api) {
  if (api.now().pt >= stop_) {
    api.wait_forever();
    return;
  }
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  api.assign(0, LogicVector{logic_of_bool((rng_ >> 33) & 1u)});
  api.wait_for(period_);
}

}  // namespace vsim::circuits
