#include "circuits/fsm.h"

namespace vsim::circuits {

FsmCircuit build_fsm(vhdl::Design& design, const FsmParams& params) {
  CircuitBuilder b(design, params.gate_delay);
  FsmCircuit c;

  c.clk = b.wire("clk", Logic::k0);
  b.clock(c.clk, params.clock_half);
  c.input = b.wire("din", Logic::k0);
  b.random_bits(c.input, params.input_period, params.input_seed,
                params.input_stop, "din_gen");

  // Lanes of gated ripple incrementers: lane l advances when the input bit
  // differs from the registered top bit of lane l-1 (cross-coupling through
  // registers only, so lanes run concurrently within a cycle).
  std::vector<SignalId> all_q;
  SignalId prev_msb = c.input;
  for (std::size_t l = 0; l < params.lanes; ++l) {
    const std::string lp = "l" + std::to_string(l);
    const std::size_t w = params.width;

    std::vector<SignalId> q(w);
    for (std::size_t i = 0; i < w; ++i)
      q[i] = b.wire(lp + ".s" + std::to_string(i), Logic::k0);

    // Lane enable: din xor (previous lane's registered MSB).
    const SignalId en = b.wire(lp + ".en");
    b.gate(GateKind::kXor, {c.input, prev_msb}, en, lp + ".enx");

    SignalId carry = en;
    std::vector<SignalId> nxt(w);
    for (std::size_t i = 0; i < w; ++i) {
      const std::string p = lp + ".b" + std::to_string(i);
      nxt[i] = b.wire(p + ".inc");
      b.gate(GateKind::kXor, {q[i], carry}, nxt[i], p + ".xor");
      if (i + 1 < w) {
        const SignalId cn = b.wire(p + ".cy");
        b.gate(GateKind::kAnd, {q[i], carry}, cn, p + ".and");
        carry = cn;
      }
    }
    for (std::size_t i = 0; i < w; ++i)
      b.dff(c.clk, nxt[i], q[i], lp + ".ff" + std::to_string(i));

    all_q.insert(all_q.end(), q.begin(), q.end());
    prev_msb = q.back();
  }
  c.state = all_q;

  // Output decode: parity tree over the full state.
  std::vector<SignalId> layer = all_q;
  std::size_t lvl = 0;
  while (layer.size() > 1) {
    std::vector<SignalId> next_layer;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const SignalId o = b.wire("par" + std::to_string(lvl) + "_" +
                                std::to_string(i / 2));
      b.gate(GateKind::kXor, {layer[i], layer[i + 1]}, o);
      next_layer.push_back(o);
    }
    if (layer.size() % 2 == 1) next_layer.push_back(layer.back());
    layer = std::move(next_layer);
    ++lvl;
  }
  c.parity = layer.front();

  c.lp_count = design.graph().size();
  return c;
}

}  // namespace vsim::circuits
