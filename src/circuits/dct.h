// Discrete Cosine Transform processor, gate level (paper Figs. 9/10).
//
// An N x N array of multiply-accumulate cells (the paper's Fig. 9 shows the
// a(i,j) / c(j,k) / (ac)(i,k) systolic structure): inputs stream across a
// row, fixed cosine coefficients are realised as shift-add networks, and
// each cell accumulates into a register.  This is the largest circuit
// (~1600 LPs at the default size) and the one where the paper reports the
// dynamic configuration at twice the speedup of the static ones.
#pragma once

#include "circuits/builder.h"

namespace vsim::circuits {

struct DctParams {
  std::size_t n = 4;          ///< transform size (N x N cells)
  std::size_t width = 4;      ///< datapath bits; 4x4x4 = 1444 LPs (~1579)
  PhysTime gate_delay = 1;
  PhysTime clock_half = 150;
  std::uint64_t input_seed = 11;
  PhysTime input_stop = std::numeric_limits<PhysTime>::max();
};

struct DctCircuit {
  vhdl::SignalId clk;
  std::vector<std::vector<vhdl::SignalId>> inputs;  ///< per row, LSB first
  std::vector<std::vector<vhdl::SignalId>> acc;     ///< accumulator outputs
  std::size_t lp_count = 0;
};

DctCircuit build_dct(vhdl::Design& design, const DctParams& params = {});

}  // namespace vsim::circuits
