// Structural netlist construction helpers on top of vhdl::Design.
//
// The generators below (FSM, IIR, DCT) build gate-level netlists the way
// the paper's VHDL-to-C translator would have produced them: one process
// LP per gate / flip-flop / generator and one signal LP per net.
#pragma once

#include <string>
#include <vector>

#include "circuits/gates.h"
#include "vhdl/kernel.h"

namespace vsim::circuits {

using vhdl::Design;
using vhdl::ProcessId;
using vhdl::SignalId;

class CircuitBuilder {
 public:
  explicit CircuitBuilder(Design& design, PhysTime gate_delay)
      : d_(design), delay_(gate_delay) {}

  [[nodiscard]] Design& design() { return d_; }
  [[nodiscard]] PhysTime gate_delay() const { return delay_; }

  /// Declares a 1-bit net.
  SignalId wire(const std::string& name, Logic init = Logic::kU);

  /// Instantiates a gate driving `out` from `ins`; returns the process.
  ProcessId gate(GateKind kind, const std::vector<SignalId>& ins,
                 SignalId out, const std::string& name = {});

  /// Rising-edge DFF (marked synchronous for the mixed configuration).
  ProcessId dff(SignalId clk, SignalId d, SignalId q,
                const std::string& name = {});
  ProcessId dff_r(SignalId clk, SignalId d, SignalId rst, SignalId q,
                  const std::string& name = {});

  /// Clock generator (marked synchronous).
  ProcessId clock(SignalId out, PhysTime half_period,
                  const std::string& name = "clk_gen");

  ProcessId stimulus(SignalId out,
                     std::vector<std::pair<PhysTime, Logic>> script,
                     const std::string& name = "stim");
  ProcessId random_bits(SignalId out, PhysTime period, std::uint64_t seed,
                        PhysTime stop, const std::string& name = "rnd");

  // ---- arithmetic macros (gate-level) ----
  /// Full adder: sum/cout from a, b, cin (5 gates, 2 internal nets).
  void full_adder(SignalId a, SignalId b, SignalId cin, SignalId sum,
                  SignalId cout, const std::string& prefix);
  /// Ripple-carry adder over bit vectors (LSB at index 0).
  /// cin may be a constant-0 wire.  Result width == a.size().
  std::vector<SignalId> adder(const std::vector<SignalId>& a,
                              const std::vector<SignalId>& b, SignalId cin,
                              const std::string& prefix);
  /// W-bit register bank.
  std::vector<SignalId> reg_bank(SignalId clk, const std::vector<SignalId>& d,
                                 const std::string& prefix);
  /// Constant '0' / '1' nets (driven once by a stimulus process).
  SignalId const_wire(Logic v, const std::string& name);

  [[nodiscard]] std::size_t lp_count() const {
    return d_.graph().size();
  }

 private:
  ProcessId attach(std::unique_ptr<vhdl::ProcessBody> body,
                   const std::vector<SignalId>& ins, SignalId out,
                   const std::string& name, bool synchronous);

  Design& d_;
  PhysTime delay_;
  std::uint64_t auto_name_ = 0;
};

}  // namespace vsim::circuits
