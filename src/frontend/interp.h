// Bytecode compiler + interpreter for VHDL process bodies.
//
// The paper translated each VHDL process to a C class whose run() contains
// the sequential statement part.  Here each process compiles to a small
// instruction program executed by InterpBody -- which gives the same
// kernel-visible behaviour with one crucial property for Time Warp: the
// execution state is an explicit (program counter, variables) pair, so
// snapshots are plain copies (no coroutine frames to clone).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "frontend/ast.h"
#include "frontend/lexer.h"
#include "vhdl/process_lp.h"

namespace vsim::fe {

/// Runtime value of an expression or variable.
struct Value {
  enum class Kind : std::uint8_t { kBits, kInt, kBool };
  Kind kind = Kind::kBits;
  LogicVector bits;
  std::int64_t i = 0;
  bool b = false;

  static Value of_bits(LogicVector v) {
    Value out;
    out.kind = Kind::kBits;
    out.bits = std::move(v);
    return out;
  }
  static Value of_int(std::int64_t v) {
    Value out;
    out.kind = Kind::kInt;
    out.i = v;
    return out;
  }
  static Value of_bool(bool v) {
    Value out;
    out.kind = Kind::kBool;
    out.b = v;
    return out;
  }

  /// Condition truthiness: bool, or a scalar std_logic '1'/'H'.
  [[nodiscard]] bool truthy() const;
  [[nodiscard]] bool equals(const Value& o) const;
  [[nodiscard]] std::string str() const;
};

/// How a name in a process body resolves.
struct Slot {
  enum class Kind : std::uint8_t {
    kSignalIn,   ///< read a signal: in-port `port`
    kVariable,   ///< process variable `index`
    kConstant,   ///< elaboration-time constant
    kLoopVar,    ///< for-loop variable `index` (stored with variables)
  };
  Kind kind = Kind::kConstant;
  int port = -1;    // signal in-port
  int index = -1;   // variable slot
  Value constant;
  ast::Type type;   // declared type (index/position mapping)
};

/// Immutable compiled form of one process, shared by clones of its body.
class Program {
 public:
  struct Instr {
    enum class Op : std::uint8_t {
      kAssignSig,   ///< a = out port; value/index/after exprs; transport
      kAssignVar,   ///< a = var slot; value/index exprs
      kBranchFalse, ///< a = target pc; cond = value expr
      kJump,        ///< a = target pc
      kWait,        ///< wait_ports / value (until) / after (for-time)
      kReport,      ///< message
      kHalt,        ///< wait forever
    };
    Op op = Op::kHalt;
    int a = 0;
    const ast::Expr* value = nullptr;
    const ast::Expr* index = nullptr;
    const ast::Expr* after = nullptr;
    bool transport = false;
    std::vector<int> wait_ports;
    int cond_id = -1;  ///< unique per kWait-with-condition
    std::string message;
    int line = 0;
  };

  std::vector<Instr> instrs;
  /// Initial values of variables (index = slot).
  std::vector<Value> var_init;
  /// Name resolution for every name/index/attr expression in the body.
  std::unordered_map<const ast::Expr*, Slot> slots;
  /// Vector element width info per variable slot (for indexed access).
  std::vector<ast::Type> var_types;
  /// Out-port initial driven values (for read-modify-write of indexed
  /// signal assignment targets).
  std::vector<Value> out_init;
  /// Type of the signal behind each out port.
  std::vector<ast::Type> out_types;
  /// Keeps the AST (and thus every borrowed Expr*) alive.
  std::shared_ptr<const ast::DesignFile> ast_owner;
  /// Owns expressions synthesized during compilation (loop conditions,
  /// case comparisons) and desugared process statements.
  std::shared_ptr<void> synth_owner;
  std::shared_ptr<void> stmt_owner;
  std::string name;
};

/// Tags distinguishing the body-variable byte codecs (ProcessBody
/// encode_vars/decode_vars) so cross-process checkpoints fail loudly when a
/// rank mixes backends for the same process.
inline constexpr std::uint8_t kBodyCodecInterp = 1;
inline constexpr std::uint8_t kBodyCodecNative = 2;

/// ProcessBody driving a compiled Program.  Cloning copies (pc, vars,
/// driven shadow values) and shares the immutable Program.
class InterpBody final : public vhdl::ProcessBody {
 public:
  explicit InterpBody(std::shared_ptr<const Program> prog);

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<InterpBody>(*this);
  }
  void run(vhdl::ProcessApi& api) override;
  [[nodiscard]] bool eval_condition(int cond_id,
                                    const vhdl::ProcessApi& api)
      const override;
  [[nodiscard]] bool encode_vars(vsim::bytes::Writer& w) const override;
  [[nodiscard]] bool decode_vars(vsim::bytes::Reader& r) override;

  /// Evaluates an expression in this body's current state (exposed for the
  /// elaborator's constant folding and for tests).
  [[nodiscard]] Value eval(const ast::Expr& e,
                           const vhdl::ProcessApi& api) const;

 private:
  std::shared_ptr<const Program> prog_;
  int pc_ = 0;
  std::vector<Value> vars_;
  std::vector<Value> driven_;  ///< last driven value per out port
};

/// Semantic error during compilation or elaboration.
class ElabError : public std::runtime_error {
 public:
  explicit ElabError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace vsim::fe
