// Tokens of the VHDL subset accepted by the frontend.
#pragma once

#include <cstdint>
#include <string>

namespace vsim::fe {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kInt,          // decimal literal
  kCharLit,      // '0', '1', 'Z', ...
  kStringLit,    // "0101"
  // punctuation
  kLParen, kRParen, kComma, kSemi, kColon, kDot, kAmp, kTick,
  kAssignVar,    // :=
  kAssignSig,    // <=  (also less-equal; parser disambiguates)
  kArrow,        // =>
  kEq, kNeq, kLt, kGt, kGe,  // = /= < > >=
  kPlus, kMinus, kStar, kSlash,
  // keywords
  kAbs, kAfter, kAll, kAnd, kArchitecture, kBegin, kCase, kComponent,
  kConstant, kDownto, kElse, kElsif, kEnd, kEntity, kExit, kFor, kGenerate,
  kIf, kIn, kInertial, kIs, kLibrary, kLoop, kMap, kMod, kNand, kNor, kNot,
  kNull, kOf, kOn, kOr, kOthers, kOut, kInout, kPort, kProcess, kRem, kReport,
  kSeverity, kSignal, kThen, kTo, kTransport, kType, kUntil, kUse,
  kVariable, kWait, kWhen, kWhile, kXnor, kXor,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier (lower-cased), literal text
  std::int64_t value = 0;  // for kInt
  int line = 0;
  int col = 0;
};

[[nodiscard]] const char* tok_name(Tok t);

}  // namespace vsim::fe
