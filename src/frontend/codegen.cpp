// AOT native backend: Program -> C++ source -> shared object -> CompiledBody.
//
// The emitter mirrors interp.cpp operation for operation.  Everything the
// generated runtime needs -- the IEEE 1164 operator tables included -- is
// emitted *by calling the host's own logic functions at generation time*, so
// the tables in the .so are definitionally the interpreter's tables.  Error
// strings, evaluation order and wraparound rules are copied from interp.cpp
// verbatim; tests/test_codegen_diff.cpp holds the two backends bit-identical.
//
// Suspension state is an explicit flat struct (pc + fixed-capacity values),
// so Time Warp snapshots are plain byte copies and the distributed
// checkpoint codec encodes it canonically (field-wise, not memcpy, so
// padding never leaks into checkpoint bytes).
#include "frontend/codegen.h"

#ifndef _WIN32
#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace vsim::fe {

namespace {

// ------------------------------------------------------------------ stats

struct StatsGlobals {
  std::mutex mu;
  CodegenStats s;
};

StatsGlobals& stats_globals() {
  static StatsGlobals g;
  return g;
}

void stat_native_body() {
  StatsGlobals& g = stats_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  ++g.s.native_bodies;
  obs::process_counter_add(obs::Metric::kNativeBodies);
}

void stat_cache_hit() {
  StatsGlobals& g = stats_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  ++g.s.cache_hits;
  obs::process_counter_add(obs::Metric::kCodegenCacheHits);
}

void stat_compile(double ms) {
  StatsGlobals& g = stats_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  ++g.s.compiles;
  if (ms > g.s.max_compile_ms) g.s.max_compile_ms = ms;
  obs::process_counter_add(obs::Metric::kCodegenCompiles);
  obs::process_gauge_max(obs::Gauge::kCodegenCompileMs, ms);
}

void stat_fallback() {
  StatsGlobals& g = stats_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  ++g.s.interp_fallbacks;
  obs::process_counter_add(obs::Metric::kInterpFallbacks);
}

// -------------------------------------------------------------- emit utils

std::string esc_str(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c >= 32 && c < 127) {
      out += static_cast<char>(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\%03o", c);
      out += buf;
    }
  }
  return out;
}

std::string codes_str(const LogicVector& v) {
  std::string s;
  s.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    s += static_cast<char>('0' + static_cast<int>(v.at(i)));
  return s;
}

/// C++ expression constructing the V equivalent of an elaboration-time Value.
std::string value_lit(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kInt:
      return "vs_int(" + std::to_string(v.i) + "ll)";
    case Value::Kind::kBool:
      return v.b ? "vs_bool(1)" : "vs_bool(0)";
    case Value::Kind::kBits:
      return "vs_vec_c(\"" + codes_str(v.bits) + "\", " +
             std::to_string(v.bits.size()) + ")";
  }
  return "vs_empty()";
}

/// Compile-time integer value of an expression, when statically known.
bool const_int_of(const Program& prog, const ast::Expr& e, std::int64_t* out) {
  if (e.kind == ast::ExprKind::kIntLit) {
    *out = e.int_lit;
    return true;
  }
  if (e.kind == ast::ExprKind::kName) {
    const auto it = prog.slots.find(&e);
    if (it != prog.slots.end() && it->second.kind == Slot::Kind::kConstant &&
        it->second.constant.kind == Value::Kind::kInt) {
      *out = it->second.constant.i;
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- width bounds

/// Upper-bounds every LogicVector width the program can produce at runtime,
/// so the generated runtime can use a fixed-capacity value struct.  Throws
/// ElabError (-> interp fallback) on constructs whose width cannot be
/// bounded statically (to_unsigned with a non-constant width).
class WidthBound {
 public:
  explicit WidthBound(const Program& prog) : prog_(prog) {}

  std::size_t bound() {
    std::size_t peak = 64;  // as_bits of an int without a hint -> 32 bits
    for (const Program::Instr& ins : prog_.instrs) {
      if (ins.value != nullptr) peak = std::max(peak, expr(*ins.value));
      if (ins.index != nullptr) peak = std::max(peak, expr(*ins.index));
      if (ins.after != nullptr) peak = std::max(peak, expr(*ins.after));
    }
    for (const ast::Type& t : prog_.var_types) peak = std::max(peak, t.width());
    for (const ast::Type& t : prog_.out_types) peak = std::max(peak, t.width());
    for (const Value& v : prog_.var_init)
      if (v.kind == Value::Kind::kBits) peak = std::max(peak, v.bits.size());
    for (const Value& v : prog_.out_init)
      if (v.kind == Value::Kind::kBits) peak = std::max(peak, v.bits.size());
    return peak;
  }

 private:
  std::size_t expr(const ast::Expr& e) {
    switch (e.kind) {
      case ast::ExprKind::kCharLit:
        return 1;
      case ast::ExprKind::kStringLit:
        return e.string_lit.size();
      case ast::ExprKind::kIntLit:
        return 64;
      case ast::ExprKind::kName: {
        const auto it = prog_.slots.find(&e);
        if (it == prog_.slots.end()) return 64;
        const Slot& s = it->second;
        std::size_t w = s.type.width();
        if (s.kind == Slot::Kind::kConstant &&
            s.constant.kind == Value::Kind::kBits)
          w = std::max(w, s.constant.bits.size());
        return std::max<std::size_t>(w, 64);
      }
      case ast::ExprKind::kIndex:
        return std::max<std::size_t>(64, expr(*e.rhs));
      case ast::ExprKind::kBinary: {
        const std::size_t a = expr(*e.lhs), b = expr(*e.rhs);
        if (e.bin_op == ast::BinOp::kConcat) return a + b;
        return std::max(a, b);
      }
      case ast::ExprKind::kUnary:
        return expr(*e.lhs);
      case ast::ExprKind::kAttrEvent:
        return 1;
      case ast::ExprKind::kCall: {
        if (e.name == "rising_edge" || e.name == "falling_edge") return 1;
        if (e.name == "to_unsigned") {
          std::int64_t n = 0;
          if (e.rhs == nullptr || !const_int_of(prog_, *e.rhs, &n) || n < 0)
            throw ElabError(
                "process " + prog_.name +
                ": to_unsigned with a non-constant width is not supported "
                "by the native backend");
          return std::max<std::size_t>(static_cast<std::size_t>(n),
                                       expr(*e.lhs));
        }
        return e.lhs != nullptr ? expr(*e.lhs) : std::size_t{1};
      }
    }
    return 64;
  }

  const Program& prog_;
};

// ------------------------------------------------------ expression emitter

/// Emits one statement-per-step C++ for an expression tree, returning the
/// name of the temporary holding the result.  Statement sequencing (rather
/// than nested calls) pins the evaluation order to interp.cpp's, so error
/// precedence is identical too.
class ExprGen {
 public:
  ExprGen(const Program& prog, std::ostringstream& o, std::string ind)
      : prog_(prog), o_(o), ind_(std::move(ind)) {}

  std::string gen(const ast::Expr& e) {
    switch (e.kind) {
      case ast::ExprKind::kCharLit:
        return def("vs_scalar(" +
                   std::to_string(static_cast<int>(e.char_lit)) + ")");
      case ast::ExprKind::kStringLit:
        return def("vs_vec_c(\"" +
                   codes_str(LogicVector::from_string(e.string_lit)) + "\", " +
                   std::to_string(e.string_lit.size()) + ")");
      case ast::ExprKind::kIntLit:
        return def("vs_int(" + std::to_string(e.int_lit) + "ll)");
      case ast::ExprKind::kName: {
        const Slot& s = prog_.slots.at(&e);
        switch (s.kind) {
          case Slot::Kind::kSignalIn:
            return def("vs_read(api, " + std::to_string(s.port) + ")");
          case Slot::Kind::kVariable:
          case Slot::Kind::kLoopVar:
            return def("st->vars[" + std::to_string(s.index) + "]");
          case Slot::Kind::kConstant:
            return def(value_lit(s.constant));
        }
        return def("vs_empty()");
      }
      case ast::ExprKind::kIndex: {
        const Slot& s = prog_.slots.at(&e);
        const std::string r = gen(*e.rhs);
        const std::string idx =
            def_i64("vs_as_int(" + r + ", " + std::to_string(e.line) + ")");
        std::string whole;
        switch (s.kind) {
          case Slot::Kind::kSignalIn:
            whole = def("vs_read(api, " + std::to_string(s.port) + ")");
            break;
          case Slot::Kind::kVariable:
          case Slot::Kind::kLoopVar:
            whole = def("vs_as_bits(st->vars[" + std::to_string(s.index) +
                        "], 0, " + std::to_string(e.line) + ")");
            break;
          case Slot::Kind::kConstant:
            whole = def("vs_as_bits(" + value_lit(s.constant) + ", 0, " +
                        std::to_string(e.line) + ")");
            break;
        }
        return def("vs_index(" + whole + ", " + idx + ", " +
                   std::to_string(s.type.left) + ", " +
                   (s.type.downto ? "1" : "0") + ", " +
                   std::to_string(e.line) + ")");
      }
      case ast::ExprKind::kBinary: {
        const std::string a = gen(*e.lhs);
        const std::string b = gen(*e.rhs);
        const std::string line = std::to_string(e.line);
        switch (e.bin_op) {
          case ast::BinOp::kAnd:
            return def("vs_logic(0, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kOr:
            return def("vs_logic(1, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kNand:
            return def("vs_logic(2, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kNor:
            return def("vs_logic(3, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kXor:
            return def("vs_logic(4, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kXnor:
            return def("vs_logic(5, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kEq:
            return def("vs_rel(0, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kNeq:
            return def("vs_rel(1, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kLt:
            return def("vs_rel(2, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kLe:
            return def("vs_rel(3, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kGt:
            return def("vs_rel(4, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kGe:
            return def("vs_rel(5, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kAdd:
            return def("vs_arith(0, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kSub:
            return def("vs_arith(1, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kMul:
            return def("vs_arith(2, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kMod:
            return def("vs_arith(3, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kDiv:
            return def("vs_arith(4, " + a + ", " + b + ", " + line + ")");
          case ast::BinOp::kConcat:
            return def("vs_concat(" + a + ", " + b + ", " + line + ")");
        }
        return def("vs_empty()");
      }
      case ast::ExprKind::kUnary: {
        const std::string a = gen(*e.lhs);
        if (e.un_op == ast::UnOp::kMinus)
          return def("vs_int(-vs_as_int(" + a + ", " +
                     std::to_string(e.line) + "))");
        return def("vs_not(" + a + ", " + std::to_string(e.line) + ")");
      }
      case ast::ExprKind::kAttrEvent: {
        const Slot& s = prog_.slots.at(&e);
        return def("vs_bool(api->event(api->ctx, " + std::to_string(s.port) +
                   "))");
      }
      case ast::ExprKind::kCall: {
        const std::string line = std::to_string(e.line);
        if (e.name == "rising_edge" || e.name == "falling_edge") {
          const Slot& s = prog_.slots.at(e.lhs.get());
          return def("vs_bool(vs_edge(api, " + std::to_string(s.port) + ", " +
                     (e.name == "rising_edge" ? "1" : "0") + "))");
        }
        if (e.name == "to_integer") {
          const std::string a = gen(*e.lhs);
          return def("vs_int(vs_as_int(" + a + ", " + line + "))");
        }
        if (e.name == "to_unsigned") {
          const std::string a = gen(*e.lhs);
          const std::string v = def_i64("vs_as_int(" + a + ", " + line + ")");
          const std::string b = gen(*e.rhs);
          const std::string n = def_i64("vs_as_int(" + b + ", " + line + ")");
          return def("vs_from_uint((uint64_t)" + v + ", " + n + ", " + line +
                     ")");
        }
        // std_logic_vector(x), unsigned(x), to_stdlogicvector(x): identity.
        return gen(*e.lhs);
      }
    }
    return def("vs_empty()");
  }

  std::string def(const std::string& init) {
    std::string n = "t" + std::to_string(tmp_++);
    o_ << ind_ << "V " << n << " = " << init << ";\n";
    return n;
  }
  std::string def_i64(const std::string& init) {
    std::string n = "t" + std::to_string(tmp_++);
    o_ << ind_ << "int64_t " << n << " = " << init << ";\n";
    return n;
  }

 private:
  const Program& prog_;
  std::ostringstream& o_;
  std::string ind_;
  int tmp_ = 0;
};

// ----------------------------------------------------- runtime preamble

void emit_tables(std::ostringstream& o) {
  const auto emit2 = [&o](const char* name, Logic (*fn)(Logic, Logic)) {
    o << "const unsigned char " << name << "[81] = {";
    for (int a = 0; a < kNumLogic; ++a)
      for (int b = 0; b < kNumLogic; ++b)
        o << static_cast<int>(
                 fn(static_cast<Logic>(a), static_cast<Logic>(b)))
          << ",";
    o << "};\n";
  };
  const auto emit1 = [&o](const char* name, Logic (*fn)(Logic)) {
    o << "const unsigned char " << name << "[9] = {";
    for (int a = 0; a < kNumLogic; ++a)
      o << static_cast<int>(fn(static_cast<Logic>(a))) << ",";
    o << "};\n";
  };
  emit2("T_AND", &logic_and);
  emit2("T_OR", &logic_or);
  emit2("T_XOR", &logic_xor);
  emit1("T_NOT", &logic_not);
  emit1("T_X01", &to_x01);
}

void emit_preamble(std::ostringstream& o, std::size_t cap, std::size_t nv,
                   std::size_t no) {
  o << "#include <stdarg.h>\n"
       "#include <stdint.h>\n"
       "#include <stdio.h>\n"
       "#include <string.h>\n"
       "\n"
       "namespace {\n"
       "\n"
    << "constexpr int32_t CAP = " << cap << ";\n"
    << "constexpr int32_t NV = " << nv << ";\n"
    << "constexpr int32_t NO = " << no << ";\n"
    << R"__(
struct Api {
  void* ctx;
  int32_t (*value)(void*, int32_t, uint8_t*);
  int32_t (*event)(void*, int32_t);
  void (*assign)(void*, int32_t, const uint8_t*, int32_t, int64_t, int32_t);
  void (*wait_on)(void*, const int32_t*, int32_t, int32_t, int32_t, int64_t);
  void (*wait_for)(void*, int64_t);
  void (*wait_forever)(void*);
  void (*report)(void*, const char*);
  void (*fail)(void*, const char*);
};

struct RtErr { char msg[256]; };

[[noreturn]] void vs_fail(const char* fmt, ...) {
  RtErr e;
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(e.msg, sizeof e.msg, fmt, ap);
  va_end(ap);
  throw e;
}

)__";
  emit_tables(o);
  o << R"__(
// Fixed-capacity mirror of fe::Value.  Kind codes: 0 = bits, 1 = int,
// 2 = bool.  Every constructor zeroes the whole struct so state bytes are
// deterministic (snapshots are byte copies of the state block).
struct V {
  int64_t i;
  int32_t n;
  uint8_t kind;
  uint8_t b;
  uint8_t bits[CAP];
};

V vs_empty() { V v; memset(&v, 0, sizeof v); return v; }
V vs_int(int64_t x) { V v = vs_empty(); v.kind = 1; v.i = x; return v; }
V vs_bool(int b) {
  V v = vs_empty();
  v.kind = 2;
  v.b = (uint8_t)(b ? 1 : 0);
  return v;
}
V vs_scalar(uint8_t code) {
  V v = vs_empty();
  v.n = 1;
  v.bits[0] = code;
  return v;
}
V vs_vec_c(const char* codes, int32_t n) {
  V v = vs_empty();
  v.n = n;
  for (int32_t k = 0; k < n; ++k) v.bits[k] = (uint8_t)(codes[k] - '0');
  return v;
}
uint8_t vs_scalar_of(const V& v) { return v.n == 0 ? 0 : v.bits[0]; }

int vs_truthy(const V& v) {
  if (v.kind == 2) return v.b != 0;
  if (v.kind == 1) return v.i != 0;
  return T_X01[vs_scalar_of(v)] == 3;
}

int64_t vs_as_int(const V& v, int line) {
  if (v.kind == 1) return v.i;
  if (v.kind == 2) return v.b ? 1 : 0;
  if (v.n == 0 || v.n > 64)
    vs_fail("line %d: vector with non-01 bits used as integer", line);
  uint64_t acc = 0;
  for (int32_t k = 0; k < v.n; ++k) {
    const uint8_t c = T_X01[v.bits[k]];
    if (c != 2 && c != 3)
      vs_fail("line %d: vector with non-01 bits used as integer", line);
    acc = (acc << 1) | (uint64_t)(c == 3 ? 1 : 0);
  }
  return (int64_t)acc;
}

V vs_from_uint(uint64_t value, int64_t n, int line) {
  if (n < 0 || n > CAP)
    vs_fail("line %d: vector width exceeds native backend capacity", line);
  V v = vs_empty();
  v.n = (int32_t)n;
  for (int32_t k = 0; k < v.n; ++k) {
    const int64_t sh = n - 1 - k;
    const uint64_t bit = sh < 64 ? (value >> sh) & 1u : 0;
    v.bits[k] = bit ? 3 : 2;
  }
  return v;
}

V vs_as_bits(const V& v, int32_t width_hint, int line) {
  if (v.kind == 0) return v;
  if (v.kind == 2) return vs_scalar(v.b ? 3 : 2);
  const int32_t w = width_hint ? width_hint : 32;
  return vs_from_uint((uint64_t)v.i, w, line);
}

// op: 0 and, 1 or, 2 nand, 3 nor, 4 xor, 5 xnor.
V vs_logic(int op, const V& a, const V& b, int line) {
  if (a.kind == 2 || b.kind == 2) {
    const int x = vs_truthy(a), y = vs_truthy(b);
    int r = 0;
    switch (op) {
      case 0: r = x && y; break;
      case 1: r = x || y; break;
      case 2: r = !(x && y); break;
      case 3: r = !(x || y); break;
      case 4: r = x != y; break;
      default: r = x == y; break;
    }
    return vs_bool(r);
  }
  const V va = vs_as_bits(a, 0, line), vb = vs_as_bits(b, 0, line);
  if (va.n != vb.n)
    vs_fail("line %d: operand width mismatch (%d vs %d)", line, (int)va.n,
            (int)vb.n);
  V out = vs_empty();
  out.n = va.n;
  for (int32_t k = 0; k < va.n; ++k) {
    const int idx = va.bits[k] * 9 + vb.bits[k];
    uint8_t r;
    switch (op) {
      case 0: r = T_AND[idx]; break;
      case 1: r = T_OR[idx]; break;
      case 2: r = T_NOT[T_AND[idx]]; break;
      case 3: r = T_NOT[T_OR[idx]]; break;
      case 4: r = T_XOR[idx]; break;
      default: r = T_NOT[T_XOR[idx]]; break;
    }
    out.bits[k] = r;
  }
  return out;
}

// op: 0 add, 1 sub, 2 mul, 3 mod, 4 div.  Vector arithmetic is unsigned
// with wraparound at the vector width (numeric_std `unsigned`).
V vs_arith(int op, const V& a, const V& b, int line) {
  if (a.kind == 0 || b.kind == 0) {
    const int32_t w = a.kind == 0 ? a.n : b.n;
    const uint64_t x = (uint64_t)vs_as_int(a, line);
    const uint64_t y = (uint64_t)vs_as_int(b, line);
    uint64_t r = 0;
    switch (op) {
      case 0: r = x + y; break;
      case 1: r = x - y; break;
      case 2: r = x * y; break;
      case 3: r = y == 0 ? 0 : x % y; break;
      default: r = y == 0 ? 0 : x / y; break;
    }
    if (w < 64) r &= (1ull << w) - 1;
    return vs_from_uint(r, w, line);
  }
  const int64_t x = vs_as_int(a, line), y = vs_as_int(b, line);
  switch (op) {
    case 0: return vs_int(x + y);
    case 1: return vs_int(x - y);
    case 2: return vs_int(x * y);
    case 3: return vs_int(y == 0 ? 0 : ((x % y) + y) % y);
    default: return vs_int(y == 0 ? 0 : x / y);
  }
}

int vs_equals(const V& a, const V& b) {
  if (a.kind == 0 && b.kind == 0)
    return a.n == b.n && memcmp(a.bits, b.bits, (size_t)a.n) == 0;
  if (a.kind == 1 && b.kind == 1) return a.i == b.i;
  if (a.kind == 2 && b.kind == 2) return a.b == b.b;
  // int vs bits: compare as unsigned when convertible.
  if (a.kind == 0 && b.kind == 1) {
    if (a.n == 0 || a.n > 64) return 0;
    uint64_t acc = 0;
    for (int32_t k = 0; k < a.n; ++k) {
      const uint8_t c = T_X01[a.bits[k]];
      if (c != 2 && c != 3) return 0;
      acc = (acc << 1) | (uint64_t)(c == 3 ? 1 : 0);
    }
    return (int64_t)acc == b.i;
  }
  if (a.kind == 1 && b.kind == 0) return vs_equals(b, a);
  return 0;
}

// op: 0 eq, 1 neq, 2 lt, 3 le, 4 gt, 5 ge.
V vs_rel(int op, const V& a, const V& b, int line) {
  if (op == 0) return vs_bool(vs_equals(a, b));
  if (op == 1) return vs_bool(!vs_equals(a, b));
  const int64_t x = vs_as_int(a, line), y = vs_as_int(b, line);
  switch (op) {
    case 2: return vs_bool(x < y);
    case 3: return vs_bool(x <= y);
    case 4: return vs_bool(x > y);
    default: return vs_bool(x >= y);
  }
}

V vs_concat(const V& a, const V& b, int line) {
  const V va = vs_as_bits(a, 0, line), vb = vs_as_bits(b, 0, line);
  if (va.n + vb.n > CAP)
    vs_fail("line %d: vector width exceeds native backend capacity", line);
  V out = vs_empty();
  out.n = va.n + vb.n;
  memcpy(out.bits, va.bits, (size_t)va.n);
  memcpy(out.bits + va.n, vb.bits, (size_t)vb.n);
  return out;
}

V vs_not(const V& a, int line) {
  if (a.kind == 2) return vs_bool(!a.b);
  V v = vs_as_bits(a, 0, line);
  for (int32_t k = 0; k < v.n; ++k) v.bits[k] = T_NOT[v.bits[k]];
  return v;
}

V vs_index(const V& whole, int64_t idx, int64_t left, int downto, int line) {
  const int64_t pos = downto ? left - idx : idx - left;
  if (pos < 0 || pos >= (int64_t)whole.n)
    vs_fail("line %d: index out of range", line);
  return vs_scalar(whole.bits[pos]);
}

void vs_set_bit(V* whole, int64_t idx, int64_t left, int downto, const V& val,
                int line) {
  const int64_t pos = downto ? left - idx : idx - left;
  if (pos < 0 || pos >= (int64_t)whole->n)
    vs_fail("line %d: index out of range in assignment", line);
  whole->bits[pos] = vs_scalar_of(vs_as_bits(val, 0, line));
}

V vs_read(const Api* api, int32_t port) {
  V v = vs_empty();
  const int32_t n = api->value(api->ctx, port, v.bits);
  if (n < 0) vs_fail("native input wider than generated capacity");
  v.n = n;
  return v;
}

int vs_edge(const Api* api, int32_t port, int rising) {
  const V v = vs_read(api, port);
  const uint8_t c = T_X01[vs_scalar_of(v)];
  const int lvl = rising ? c == 3 : c == 2;
  return api->event(api->ctx, port) && lvl;
}

struct St {
  int64_t pc;
  V vars[NV > 0 ? NV : 1];
  V driven[NO > 0 ? NO : 1];
};

void wr_u8(uint8_t* out, int64_t* pos, uint8_t v) { out[(*pos)++] = v; }
void wr_u32(uint8_t* out, int64_t* pos, uint32_t v) {
  for (int k = 0; k < 4; ++k) out[(*pos)++] = (uint8_t)(v >> (8 * k));
}
void wr_u64(uint8_t* out, int64_t* pos, uint64_t v) {
  for (int k = 0; k < 8; ++k) out[(*pos)++] = (uint8_t)(v >> (8 * k));
}
void wr_val(uint8_t* out, int64_t* pos, const V& v) {
  wr_u8(out, pos, v.kind);
  wr_u8(out, pos, v.b);
  wr_u64(out, pos, (uint64_t)v.i);
  wr_u32(out, pos, (uint32_t)v.n);
  for (int32_t k = 0; k < v.n; ++k) wr_u8(out, pos, v.bits[k]);
}

int rd_u8(const uint8_t* in, int64_t len, int64_t* pos, uint8_t* v) {
  if (*pos + 1 > len) return 0;
  *v = in[(*pos)++];
  return 1;
}
int rd_u32(const uint8_t* in, int64_t len, int64_t* pos, uint32_t* v) {
  if (*pos + 4 > len) return 0;
  uint32_t r = 0;
  for (int k = 0; k < 4; ++k) r |= (uint32_t)in[(*pos)++] << (8 * k);
  *v = r;
  return 1;
}
int rd_u64(const uint8_t* in, int64_t len, int64_t* pos, uint64_t* v) {
  if (*pos + 8 > len) return 0;
  uint64_t r = 0;
  for (int k = 0; k < 8; ++k) r |= (uint64_t)in[(*pos)++] << (8 * k);
  *v = r;
  return 1;
}
int rd_val(const uint8_t* in, int64_t len, int64_t* pos, V* v) {
  *v = vs_empty();
  uint64_t i = 0;
  uint32_t n = 0;
  if (!rd_u8(in, len, pos, &v->kind) || v->kind > 2) return 0;
  if (!rd_u8(in, len, pos, &v->b) || v->b > 1) return 0;
  if (!rd_u64(in, len, pos, &i)) return 0;
  v->i = (int64_t)i;
  if (!rd_u32(in, len, pos, &n) || n > (uint32_t)CAP) return 0;
  v->n = (int32_t)n;
  for (int32_t k = 0; k < v->n; ++k) {
    if (!rd_u8(in, len, pos, &v->bits[k]) || v->bits[k] > 8) return 0;
  }
  return 1;
}

}  // namespace
)__";
}

// -------------------------------------------------------- body emission

void emit_instr(std::ostringstream& o, const Program& prog, int pc,
                const Program::Instr& ins) {
  using Op = Program::Instr::Op;
  const std::string L = std::to_string(ins.line);
  o << "      case " << pc << ": {\n";
  ExprGen g(prog, o, "        ");
  switch (ins.op) {
    case Op::kAssignSig: {
      const std::string v = g.gen(*ins.value);
      const auto port = static_cast<std::size_t>(ins.a);
      const ast::Type& t = prog.out_types[port];
      const std::string W = std::to_string(t.width());
      std::string whole;
      if (ins.index != nullptr) {
        whole = g.def("vs_as_bits(st->driven[" + std::to_string(ins.a) +
                      "], " + W + ", " + L + ")");
        const std::string iv = g.gen(*ins.index);
        const std::string idx = g.def_i64("vs_as_int(" + iv + ", " + L + ")");
        o << "        vs_set_bit(&" << whole << ", " << idx << ", "
          << t.left << ", " << (t.downto ? 1 : 0) << ", " << v << ", " << L
          << ");\n";
      } else {
        whole = g.def("vs_as_bits(" + v + ", " + W + ", " + L + ")");
        o << "        if (" << whole << ".n != " << W << ")\n"
          << "          vs_fail(\"line %d: width mismatch in signal "
             "assignment\", "
          << L << ");\n";
      }
      o << "        st->driven[" << ins.a << "] = " << whole << ";\n";
      std::string delay = "0";
      if (ins.after != nullptr) {
        const std::string av = g.gen(*ins.after);
        delay = g.def_i64("vs_as_int(" + av + ", " + L + ")");
      }
      o << "        api->assign(api->ctx, " << ins.a << ", " << whole
        << ".bits, " << whole << ".n, " << delay << ", "
        << (ins.transport ? 1 : 0) << ");\n"
        << "        st->pc = " << pc + 1 << ";\n";
      break;
    }
    case Op::kAssignVar: {
      const std::string v = g.gen(*ins.value);
      const auto slot = static_cast<std::size_t>(ins.a);
      const std::string S = std::to_string(ins.a);
      if (ins.index != nullptr) {
        const ast::Type& t = prog.var_types[slot];
        const std::string whole =
            g.def("vs_as_bits(st->vars[" + S + "], " +
                  std::to_string(t.width()) + ", " + L + ")");
        const std::string iv = g.gen(*ins.index);
        const std::string idx = g.def_i64("vs_as_int(" + iv + ", " + L + ")");
        o << "        vs_set_bit(&" << whole << ", " << idx << ", " << t.left
          << ", " << (t.downto ? 1 : 0) << ", " << v << ", " << L << ");\n"
          << "        st->vars[" << S << "] = " << whole << ";\n";
      } else {
        // Preserve the declared kind (integer variables stay integers).
        o << "        if (st->vars[" << S << "].kind == 1 && " << v
          << ".kind != 1)\n"
          << "          st->vars[" << S << "] = vs_int(vs_as_int(" << v
          << ", " << L << "));\n"
          << "        else if (st->vars[" << S << "].kind == 2 && " << v
          << ".kind != 2)\n"
          << "          st->vars[" << S << "] = vs_bool(vs_truthy(" << v
          << "));\n"
          << "        else\n"
          << "          st->vars[" << S << "] = " << v << ";\n";
      }
      o << "        st->pc = " << pc + 1 << ";\n";
      break;
    }
    case Op::kBranchFalse: {
      const std::string c = g.gen(*ins.value);
      o << "        st->pc = vs_truthy(" << c << ") ? " << pc + 1 << " : "
        << ins.a << ";\n";
      break;
    }
    case Op::kJump:
      o << "        st->pc = " << ins.a << ";\n";
      break;
    case Op::kWait: {
      o << "        st->pc = " << pc + 1 << ";\n";
      std::string timeout = "0";
      if (ins.after != nullptr) {
        const std::string av = g.gen(*ins.after);
        timeout = g.def_i64("vs_as_int(" + av + ", " + L + ")");
      }
      if (ins.wait_ports.empty() && ins.after == nullptr) {
        o << "        api->wait_forever(api->ctx);\n";
      } else if (ins.wait_ports.empty()) {
        o << "        api->wait_for(api->ctx, " << timeout << ");\n";
      } else {
        o << "        static const int32_t wp[] = {";
        for (std::size_t i = 0; i < ins.wait_ports.size(); ++i) {
          if (i) o << ", ";
          o << ins.wait_ports[i];
        }
        o << "};\n"
          << "        api->wait_on(api->ctx, wp, "
          << ins.wait_ports.size() << ", " << ins.cond_id << ", "
          << (ins.after != nullptr ? 1 : 0) << ", " << timeout << ");\n";
      }
      o << "        return 0;\n";
      break;
    }
    case Op::kReport:
      o << "        api->report(api->ctx, \"" << esc_str(ins.message)
        << "\");\n"
        << "        st->pc = " << pc + 1 << ";\n";
      break;
    case Op::kHalt:
      o << "        api->wait_forever(api->ctx);\n"
        << "        return 0;\n";
      break;
  }
  o << "      } break;\n";
}

void emit_exports(std::ostringstream& o, const Program& prog) {
  const std::string name_esc = esc_str(prog.name);

  o << "extern \"C\" int32_t vsim_abi() { return 1; }\n"
       "extern \"C\" int64_t vsim_state_size() { return sizeof(St); }\n"
       "extern \"C\" int32_t vsim_cap() { return CAP; }\n"
       "extern \"C\" int64_t vsim_encode_cap() {\n"
       "  return 8 + (int64_t)(NV + NO) * (14 + CAP);\n"
       "}\n\n";

  o << "extern \"C\" void vsim_state_init(uint8_t* state) {\n"
       "  St* st = (St*)state;\n"
       "  memset(st, 0, sizeof(St));\n"
       "  st->pc = 0;\n";
  for (std::size_t i = 0; i < prog.var_init.size(); ++i)
    o << "  st->vars[" << i << "] = " << value_lit(prog.var_init[i]) << ";\n";
  for (std::size_t i = 0; i < prog.out_init.size(); ++i)
    o << "  st->driven[" << i << "] = " << value_lit(prog.out_init[i])
      << ";\n";
  o << "}\n\n";

  // run(): one switch case per instruction; the step budget and the
  // out-of-range -> wait_forever rule mirror InterpBody::run.
  o << "extern \"C\" int32_t vsim_run(uint8_t* state, const Api* api) {\n"
       "  St* st = (St*)state;\n"
       "  try {\n"
       "    for (int step = 0; step < (1 << 20); ++step) {\n"
       "      switch (st->pc) {\n";
  for (std::size_t pc = 0; pc < prog.instrs.size(); ++pc)
    emit_instr(o, prog, static_cast<int>(pc), prog.instrs[pc]);
  o << "      default:\n"
       "        api->wait_forever(api->ctx);\n"
       "        return 0;\n"
       "      }\n"
       "    }\n"
       "    vs_fail(\"process %s exceeded the instruction budget without "
       "waiting (possible infinite loop without wait)\", \""
    << name_esc
    << "\");\n"
       "  } catch (const RtErr& e) {\n"
       "    api->fail(api->ctx, e.msg);\n"
       "    return 1;\n"
       "  }\n"
       "  return 0;\n"
       "}\n\n";

  // eval_cond(): one case per `wait until` condition id.
  o << "extern \"C\" int32_t vsim_eval_cond(uint8_t* state, const Api* api,\n"
       "                                    int32_t cond_id) {\n"
       "  St* st = (St*)state;\n"
       "  (void)st;\n"
       "  try {\n"
       "    switch (cond_id) {\n";
  for (const Program::Instr& ins : prog.instrs) {
    if (ins.op != Program::Instr::Op::kWait || ins.cond_id < 0) continue;
    o << "    case " << ins.cond_id << ": {\n";
    if (ins.value == nullptr) {
      o << "      return 1;\n";
    } else {
      ExprGen g(prog, o, "      ");
      const std::string c = g.gen(*ins.value);
      o << "      return vs_truthy(" << c << ") ? 1 : 0;\n";
    }
    o << "    }\n";
  }
  o << "    default:\n"
       "      return 1;\n"
       "    }\n"
       "  } catch (const RtErr& e) {\n"
       "    api->fail(api->ctx, e.msg);\n"
       "    return -1;\n"
       "  }\n"
       "}\n\n";

  // Canonical field-wise codec: checkpoint bytes never see struct padding.
  o << "extern \"C\" int64_t vsim_encode(const uint8_t* state, uint8_t* out,\n"
       "                                 int64_t cap) {\n"
       "  const St* st = (const St*)state;\n"
       "  int64_t need = 8;\n"
       "  for (int32_t k = 0; k < NV; ++k) need += 14 + st->vars[k].n;\n"
       "  for (int32_t k = 0; k < NO; ++k) need += 14 + st->driven[k].n;\n"
       "  if (need > cap) return -1;\n"
       "  int64_t pos = 0;\n"
       "  wr_u64(out, &pos, (uint64_t)st->pc);\n"
       "  for (int32_t k = 0; k < NV; ++k) wr_val(out, &pos, st->vars[k]);\n"
       "  for (int32_t k = 0; k < NO; ++k) wr_val(out, &pos, st->driven[k]);\n"
       "  return pos;\n"
       "}\n\n";

  o << "extern \"C\" int32_t vsim_decode(uint8_t* state, const uint8_t* data,\n"
       "                                 int64_t len) {\n"
       "  St tmp;\n"
       "  memset(&tmp, 0, sizeof tmp);\n"
       "  int64_t pos = 0;\n"
       "  uint64_t pc = 0;\n"
       "  if (!rd_u64(data, len, &pos, &pc)) return 0;\n"
       "  tmp.pc = (int64_t)pc;\n"
       "  for (int32_t k = 0; k < NV; ++k)\n"
       "    if (!rd_val(data, len, &pos, &tmp.vars[k])) return 0;\n"
       "  for (int32_t k = 0; k < NO; ++k)\n"
       "    if (!rd_val(data, len, &pos, &tmp.driven[k])) return 0;\n"
       "  if (pos != len) return 0;\n"
       "  memcpy(state, &tmp, sizeof tmp);\n"
       "  return 1;\n"
       "}\n";
}

}  // namespace

std::string codegen_source(const Program& prog) {
  const std::size_t peak = WidthBound(prog).bound();
  if (peak > 4096)
    throw ElabError("process " + prog.name + ": vector width " +
                    std::to_string(peak) +
                    " exceeds the native backend capacity");
  // Round up for breathing room; +2 keeps CAP clear of exact power sizes.
  const std::size_t cap = ((std::max<std::size_t>(peak, 16) + 7) &
                           ~static_cast<std::size_t>(7)) +
                          2;

  std::ostringstream o;
  o << "// Generated by vsim fe::codegen -- do not edit.\n"
    << "// Process: " << prog.name << "\n";
  emit_preamble(o, cap, prog.var_init.size(), prog.out_init.size());
  o << "\n";
  emit_exports(o, prog);
  return o.str();
}

// ------------------------------------------------------------ host driver

namespace {

/// C mirror of the generated Api struct (layouts must match exactly).
struct CApi {
  void* ctx = nullptr;
  std::int32_t (*value)(void*, std::int32_t, std::uint8_t*) = nullptr;
  std::int32_t (*event)(void*, std::int32_t) = nullptr;
  void (*assign)(void*, std::int32_t, const std::uint8_t*, std::int32_t,
                 std::int64_t, std::int32_t) = nullptr;
  void (*wait_on)(void*, const std::int32_t*, std::int32_t, std::int32_t,
                  std::int32_t, std::int64_t) = nullptr;
  void (*wait_for)(void*, std::int64_t) = nullptr;
  void (*wait_forever)(void*) = nullptr;
  void (*report)(void*, const char*) = nullptr;
  void (*fail)(void*, const char*) = nullptr;
};

struct NativeModule {
  void* handle = nullptr;
  std::uint64_t hash = 0;
  std::size_t state_size = 0;
  int cap = 0;
  std::size_t encode_cap = 0;
  void (*state_init)(std::uint8_t*) = nullptr;
  std::int32_t (*run)(std::uint8_t*, const CApi*) = nullptr;
  std::int32_t (*eval_cond)(std::uint8_t*, const CApi*,
                            std::int32_t) = nullptr;
  std::int64_t (*encode)(const std::uint8_t*, std::uint8_t*,
                         std::int64_t) = nullptr;
  std::int32_t (*decode)(std::uint8_t*, const std::uint8_t*,
                         std::int64_t) = nullptr;

  NativeModule() = default;
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;
  ~NativeModule() {
#ifndef _WIN32
    if (handle != nullptr) dlclose(handle);
#endif
  }
};

/// Per-call bridge from the C ABI callbacks to a vhdl::ProcessApi.
struct Shim {
  vhdl::ProcessApi* api;
  const Program* prog;
  int cap;
  std::string error;
  CApi c;

  Shim(vhdl::ProcessApi* a, const Program* p, int capacity)
      : api(a), prog(p), cap(capacity) {
    c.ctx = this;
    c.value = [](void* ctx, std::int32_t port, std::uint8_t* out)
        -> std::int32_t {
      auto* s = static_cast<Shim*>(ctx);
      const LogicVector& v = s->api->value(port);
      if (v.size() > static_cast<std::size_t>(s->cap)) return -1;
      for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<std::uint8_t>(v.at(i));
      return static_cast<std::int32_t>(v.size());
    };
    c.event = [](void* ctx, std::int32_t port) -> std::int32_t {
      return static_cast<Shim*>(ctx)->api->event(port) ? 1 : 0;
    };
    c.assign = [](void* ctx, std::int32_t port, const std::uint8_t* bits,
                  std::int32_t n, std::int64_t delay, std::int32_t transport) {
      auto* s = static_cast<Shim*>(ctx);
      LogicVector v(static_cast<std::size_t>(n));
      for (std::int32_t i = 0; i < n; ++i)
        v.set(static_cast<std::size_t>(i), static_cast<Logic>(bits[i]));
      s->api->assign(port, std::move(v), delay, transport != 0);
    };
    c.wait_on = [](void* ctx, const std::int32_t* ports, std::int32_t n,
                   std::int32_t cond_id, std::int32_t has_timeout,
                   std::int64_t timeout) {
      auto* s = static_cast<Shim*>(ctx);
      std::vector<int> p(ports, ports + n);
      std::optional<PhysTime> t;
      if (has_timeout != 0) t = timeout;
      s->api->wait_on(std::move(p), cond_id, t);
    };
    c.wait_for = [](void* ctx, std::int64_t timeout) {
      static_cast<Shim*>(ctx)->api->wait_for(timeout);
    };
    c.wait_forever = [](void* ctx) {
      static_cast<Shim*>(ctx)->api->wait_forever();
    };
    c.report = [](void* ctx, const char* msg) {
      auto* s = static_cast<Shim*>(ctx);
      std::fprintf(stderr, "[%s @ %s] %s\n", s->prog->name.c_str(),
                   s->api->now().str().c_str(), msg);
    };
    c.fail = [](void* ctx, const char* msg) {
      static_cast<Shim*>(ctx)->error = msg;
    };
  }
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

#ifndef _WIN32

std::string find_cxx() {
  static std::once_flag once;
  static std::string cxx;
  std::call_once(once, [] {
    if (const char* env = std::getenv("VSIM_CXX")) {
      if (*env != '\0') {
        cxx = env;
        return;
      }
    }
    for (const char* cand : {"c++", "g++", "clang++"}) {
      const std::string probe =
          std::string("command -v ") + cand + " >/dev/null 2>&1";
      if (std::system(probe.c_str()) == 0) {
        cxx = cand;
        return;
      }
    }
  });
  return cxx;
}

void mkdirs(const std::string& path) {
  std::string prefix;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!prefix.empty() && prefix != "/") ::mkdir(prefix.c_str(), 0755);
    }
    if (i < path.size()) prefix += path[i];
  }
}

#endif  // !_WIN32

struct Registry {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const NativeModule>> mods;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Compiles (or reuses) the shared object for `prog`.  Returns nullptr with
/// a human-readable reason when the native backend cannot be used.
std::shared_ptr<const NativeModule> get_module(const Program& prog,
                                               std::string* reason) {
#if defined(_WIN32)
  *reason = "native backend is POSIX-only";
  return nullptr;
#elif defined(VSIM_SANITIZE_BUILD)
  *reason = "sanitizer build (an uninstrumented .so must not run under "
            "ASan/TSan/UBSan)";
  (void)prog;
  return nullptr;
#else
  std::string src;
  try {
    src = codegen_source(prog);
  } catch (const ElabError& e) {
    *reason = e.what();
    return nullptr;
  }

  const std::string cxx = find_cxx();
  if (cxx.empty()) {
    *reason = "no C++ compiler found (tried $VSIM_CXX, c++, g++, clang++)";
    return nullptr;
  }
  const std::string flags = "-std=c++17 -O2 -fPIC -shared";
  const std::uint64_t hash = fnv1a(src + "\n// " + cxx + " " + flags);

  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.mods.find(hash);
    if (it != r.mods.end()) {
      stat_cache_hit();
      return it->second;
    }
  }

  const char* env = std::getenv("VSIM_CODEGEN_CACHE");
  const std::string dir =
      env != nullptr && *env != '\0' ? env : ".vsim-codegen";
  mkdirs(dir);
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(hash));
  const std::string so = dir + "/body_" + hex + ".so";

  struct stat sb {};
  if (::stat(so.c_str(), &sb) == 0) {
    stat_cache_hit();  // warm disk cache (e.g. a recovered rank)
  } else {
    const std::string cpp = dir + "/body_" + hex + ".cpp";
    const std::string log = dir + "/body_" + hex + ".log";
    {
      std::ofstream f(cpp, std::ios::trunc);
      f << src;
      if (!f.good()) {
        *reason = "cannot write " + cpp;
        return nullptr;
      }
    }
    const std::string tmp = so + ".tmp." + std::to_string(::getpid());
    const std::string cmd = cxx + " " + flags + " -o '" + tmp + "' '" + cpp +
                            "' 2> '" + log + "'";
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = std::system(cmd.c_str());
    const auto t1 = std::chrono::steady_clock::now();
    stat_compile(std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (rc != 0) {
      std::remove(tmp.c_str());
      *reason = "compile failed (" + cxx + ", see " + log + ")";
      return nullptr;
    }
    // Atomic publish: concurrent builders race benignly on the rename.
    if (std::rename(tmp.c_str(), so.c_str()) != 0 &&
        ::stat(so.c_str(), &sb) != 0) {
      std::remove(tmp.c_str());
      *reason = "cannot publish " + so;
      return nullptr;
    }
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    *reason = std::string("dlopen failed: ") + (err != nullptr ? err : "?");
    return nullptr;
  }
  auto mod = std::make_shared<NativeModule>();
  mod->handle = handle;
  mod->hash = hash;
  const auto sym = [&](const char* name) { return dlsym(handle, name); };
  const auto abi = reinterpret_cast<std::int32_t (*)()>(sym("vsim_abi"));
  const auto state_size =
      reinterpret_cast<std::int64_t (*)()>(sym("vsim_state_size"));
  const auto capfn = reinterpret_cast<std::int32_t (*)()>(sym("vsim_cap"));
  const auto enc_cap =
      reinterpret_cast<std::int64_t (*)()>(sym("vsim_encode_cap"));
  mod->state_init =
      reinterpret_cast<void (*)(std::uint8_t*)>(sym("vsim_state_init"));
  mod->run = reinterpret_cast<std::int32_t (*)(std::uint8_t*, const CApi*)>(
      sym("vsim_run"));
  mod->eval_cond = reinterpret_cast<std::int32_t (*)(
      std::uint8_t*, const CApi*, std::int32_t)>(sym("vsim_eval_cond"));
  mod->encode = reinterpret_cast<std::int64_t (*)(
      const std::uint8_t*, std::uint8_t*, std::int64_t)>(sym("vsim_encode"));
  mod->decode = reinterpret_cast<std::int32_t (*)(
      std::uint8_t*, const std::uint8_t*, std::int64_t)>(sym("vsim_decode"));
  if (abi == nullptr || state_size == nullptr || capfn == nullptr ||
      enc_cap == nullptr || mod->state_init == nullptr ||
      mod->run == nullptr || mod->eval_cond == nullptr ||
      mod->encode == nullptr || mod->decode == nullptr || abi() != 1) {
    *reason = "incompatible module ABI in " + so;
    return nullptr;
  }
  mod->state_size = static_cast<std::size_t>(state_size());
  mod->cap = capfn();
  mod->encode_cap = static_cast<std::size_t>(enc_cap());

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto [it, inserted] = r.mods.emplace(hash, mod);
  return it->second;
#endif
}

}  // namespace

// ------------------------------------------------------------ CompiledBody

namespace {

class CompiledBody final : public vhdl::ProcessBody {
 public:
  CompiledBody(std::shared_ptr<const NativeModule> mod,
               std::shared_ptr<const Program> prog)
      : mod_(std::move(mod)),
        prog_(std::move(prog)),
        state_(mod_->state_size, 0) {
    mod_->state_init(state_.data());
  }

  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<CompiledBody>(*this);
  }

  void run(vhdl::ProcessApi& api) override {
    Shim shim(&api, prog_.get(), mod_->cap);
    if (mod_->run(state_.data(), &shim.c) != 0) throw ElabError(shim.error);
  }

  [[nodiscard]] bool eval_condition(int cond_id,
                                    const vhdl::ProcessApi& api)
      const override {
    // Condition expressions only read state and signals; the C ABI entry
    // point is non-const because it shares the state-pointer type with run.
    Shim shim(const_cast<vhdl::ProcessApi*>(&api), prog_.get(), mod_->cap);
    const std::int32_t rc = mod_->eval_cond(
        const_cast<std::uint8_t*>(state_.data()), &shim.c, cond_id);
    if (rc < 0) throw ElabError(shim.error);
    return rc != 0;
  }

  [[nodiscard]] bool encode_vars(bytes::Writer& w) const override {
    std::vector<std::uint8_t> buf(mod_->encode_cap);
    const std::int64_t n = mod_->encode(
        state_.data(), buf.data(), static_cast<std::int64_t>(buf.size()));
    if (n < 0) return false;
    buf.resize(static_cast<std::size_t>(n));
    w.u8(kBodyCodecNative);
    w.u64(mod_->hash);
    w.blob(buf);
    return true;
  }

  [[nodiscard]] bool decode_vars(bytes::Reader& r) override {
    if (r.u8() != kBodyCodecNative) return false;
    if (r.u64() != mod_->hash) return false;
    const std::vector<std::uint8_t> buf = r.blob();
    if (!r.ok()) return false;
    return mod_->decode(state_.data(), buf.data(),
                        static_cast<std::int64_t>(buf.size())) == 1;
  }

 private:
  std::shared_ptr<const NativeModule> mod_;
  std::shared_ptr<const Program> prog_;
  std::vector<std::uint8_t> state_;
};

}  // namespace

// ---------------------------------------------------------------- public

Backend backend_from_env() {
  const char* env = std::getenv("VSIM_BACKEND");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "interp") == 0)
    return Backend::kInterp;
  if (std::strcmp(env, "native") == 0) return Backend::kNative;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "vsim codegen: unknown VSIM_BACKEND '%s' "
                 "(expected 'interp' or 'native'); using interp\n",
                 env);
  });
  return Backend::kInterp;
}

CodegenStats codegen_stats() {
  StatsGlobals& g = stats_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.s;
}

bool is_native_body(const vhdl::ProcessBody& body) {
  return dynamic_cast<const CompiledBody*>(&body) != nullptr;
}

std::unique_ptr<vhdl::ProcessBody> make_body(
    std::shared_ptr<const Program> prog, Backend backend) {
  if (backend == Backend::kAuto) backend = backend_from_env();
  if (backend == Backend::kNative) {
    std::string reason;
    std::shared_ptr<const NativeModule> mod = get_module(*prog, &reason);
    if (mod != nullptr) {
      stat_native_body();
      return std::make_unique<CompiledBody>(std::move(mod), std::move(prog));
    }
    static std::once_flag noticed;
    std::call_once(noticed, [&reason] {
      std::fprintf(stderr,
                   "vsim codegen: native backend unavailable (%s); "
                   "falling back to interpreter\n",
                   reason.c_str());
    });
    stat_fallback();
  }
  return std::make_unique<InterpBody>(std::move(prog));
}

}  // namespace vsim::fe
