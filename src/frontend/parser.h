// Recursive-descent parser for the VHDL subset.
#pragma once

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace vsim::fe {

/// Parses a complete design file (entities + architectures).
/// Throws ParseError on invalid input.
[[nodiscard]] ast::DesignFile parse(std::string_view source);

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  [[nodiscard]] ast::DesignFile parse_file();

 private:
  // token access
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& peek(std::size_t off = 1) const {
    return toks_[std::min(pos_ + off, toks_.size() - 1)];
  }
  const Token& advance() { return toks_[pos_++]; }
  [[nodiscard]] bool check(Tok k) const { return cur().kind == k; }
  bool accept(Tok k);
  const Token& expect(Tok k, const char* what);
  [[noreturn]] void fail(const std::string& msg) const;
  std::string expect_ident(const char* what);

  // design units
  struct ConcurrentRegion {
    std::vector<ast::ProcessStmt>* processes;
    std::vector<ast::ConcurrentAssign>* assigns;
    std::vector<ast::Instance>* instances;
    std::vector<std::unique_ptr<ast::GenerateStmt>>* generates;
  };
  ast::Entity parse_entity_header();   // after 'entity' keyword
  std::vector<ast::Port> parse_port_clause();
  ast::Architecture parse_architecture();
  void parse_concurrent_statements(ConcurrentRegion& region);
  std::unique_ptr<ast::GenerateStmt> parse_generate(std::string label);
  ast::Entity parse_component_decl();
  ast::ProcessStmt parse_process(std::string label);
  ast::ConcurrentAssign parse_concurrent_assign(std::string target);
  ast::Instance parse_instance(std::string label);

  // declarations
  ast::Type parse_type();
  std::vector<ast::Decl> parse_object_decl(Tok kw);  // signal / variable

  // statements
  ast::StmtList parse_stmt_list(std::initializer_list<Tok> terminators);
  ast::StmtPtr parse_stmt();
  ast::StmtPtr parse_if();
  ast::StmtPtr parse_case();
  ast::StmtPtr parse_for(std::string label);
  ast::StmtPtr parse_while(std::string label);
  ast::StmtPtr parse_wait();
  ast::StmtPtr parse_assign_or_call();

  // expressions (precedence climbing)
  ast::ExprPtr parse_expr();
  ast::ExprPtr parse_relation();
  ast::ExprPtr parse_simple_expr();
  ast::ExprPtr parse_term();
  ast::ExprPtr parse_factor();
  ast::ExprPtr parse_primary();

  /// Parses `<int> [ns|ps|us|ms]` into base time units (ns).
  PhysTime parse_time(const ast::Expr& e) const;

  /// RAII recursion guard shared by parse_stmt() and parse_expr(): without
  /// it, adversarially nested input (thousands of parentheses or if-chains)
  /// turns the recursive descent into stack exhaustion instead of a
  /// ParseError.
  class NestingGuard {
   public:
    explicit NestingGuard(Parser& p);
    ~NestingGuard() { --p_.depth_; }

   private:
    Parser& p_;
  };

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace vsim::fe
