#include "frontend/elaborator.h"

#include <algorithm>
#include <cassert>

namespace vsim::fe {

using ast::Expr;
using ast::ExprKind;
using ast::ExprPtr;
using ast::Stmt;
using ast::StmtKind;

namespace {

// ------------------------------------------------------------ utilities

void collect_signal_names(const Expr& e, std::vector<std::string>& out) {
  if (e.kind == ExprKind::kName || e.kind == ExprKind::kIndex ||
      e.kind == ExprKind::kAttrEvent) {
    out.push_back(e.name);
  }
  if (e.lhs) collect_signal_names(*e.lhs, out);
  if (e.rhs) collect_signal_names(*e.rhs, out);
}

bool contains_edge_detect(const Expr& e) {
  if (e.kind == ExprKind::kAttrEvent) return true;
  if (e.kind == ExprKind::kCall &&
      (e.name == "rising_edge" || e.name == "falling_edge"))
    return true;
  if (e.lhs && contains_edge_detect(*e.lhs)) return true;
  if (e.rhs && contains_edge_detect(*e.rhs)) return true;
  return false;
}

bool stmts_contain_edge_detect(const ast::StmtList& body) {
  for (const auto& s : body) {
    for (const Expr* e : {s->value.get(), s->cond.get(), s->selector.get()})
      if (e && contains_edge_detect(*e)) return true;
    if (stmts_contain_edge_detect(s->then_body)) return true;
    if (stmts_contain_edge_detect(s->else_body)) return true;
    if (stmts_contain_edge_detect(s->body)) return true;
    for (const auto& alt : s->alts)
      if (stmts_contain_edge_detect(alt.body)) return true;
  }
  return false;
}

// ------------------------------------------------------ ProcessCompiler

// Compiles one process body to a Program and records which signals it
// reads/writes so the elaborator can wire the ports afterwards.
class ProcessCompiler {
 public:
  using SigInitFn = std::function<LogicVector(vhdl::SignalId)>;

  ProcessCompiler(const std::unordered_map<std::string, vhdl::SignalId>& sigs,
                  const std::unordered_map<std::string, Value>& consts,
                  const std::unordered_map<std::string, ast::Type>& types,
                  SigInitFn sig_init, std::string name)
      : signals_(sigs), constants_(consts), types_(types),
        sig_init_(std::move(sig_init)) {
    prog_ = std::make_shared<Program>();
    prog_->name = std::move(name);
  }

  std::shared_ptr<Program> compile(const ast::ProcessStmt& proc) {
    // Variables.
    for (const auto& d : proc.variables) {
      var_slots_[d.name] = static_cast<int>(prog_->var_init.size());
      prog_->var_types.push_back(d.type);
      prog_->var_init.push_back(initial_value(d));
    }
    compile_stmts(proc.body);
    if (!proc.sensitivity.empty()) {
      // Implicit `wait on <sensitivity list>;` at the end of the loop.
      Program::Instr w;
      w.op = Program::Instr::Op::kWait;
      for (const auto& name : proc.sensitivity)
        w.wait_ports.push_back(in_port(name, proc.line));
      dedupe(w.wait_ports);
      prog_->instrs.push_back(std::move(w));
    }
    Program::Instr loop;
    loop.op = Program::Instr::Op::kJump;
    loop.a = 0;
    prog_->instrs.push_back(loop);
    return prog_;
  }

  /// Signals read, in in-port order (for Design::connect_in).
  [[nodiscard]] const std::vector<vhdl::SignalId>& reads() const {
    return reads_;
  }
  /// Signals written, in out-port order (for Design::connect_out).
  [[nodiscard]] const std::vector<vhdl::SignalId>& writes() const {
    return writes_;
  }
  [[nodiscard]] PhysTime min_assign_delay() const {
    return has_zero_delay_assign_ ? 0 : min_delay_;
  }

  /// Statically inferred driven elements per out port (VHDL longest static
  /// prefix): `whole` when any assignment targets the full signal or uses a
  /// non-constant index.
  struct MaskInfo {
    bool whole = false;
    std::vector<std::size_t> positions;
  };
  [[nodiscard]] const std::vector<MaskInfo>& masks() const {
    return mask_info_;
  }
  [[nodiscard]] bool edge_detecting() const { return edge_detecting_; }

 private:
  void dedupe(std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  [[nodiscard]] Value initial_value(const ast::Decl& d) const {
    if (d.init) {
      // Constant-fold simple initialisers.
      Value v = try_const(*d.init);
      switch (d.type.kind) {
        case ast::TypeKind::kInteger:
          return Value::of_int(v.kind == Value::Kind::kInt
                                   ? v.i
                                   : static_cast<std::int64_t>(
                                         v.bits.to_uint().value));
        case ast::TypeKind::kBoolean:
          return Value::of_bool(v.truthy());
        default:
          return v;
      }
    }
    switch (d.type.kind) {
      case ast::TypeKind::kStdLogic:
        return Value::of_bits(LogicVector{Logic::kU});
      case ast::TypeKind::kStdLogicVector:
        return Value::of_bits(LogicVector(d.type.width(), Logic::kU));
      case ast::TypeKind::kInteger:
        return Value::of_int(0);
      case ast::TypeKind::kBoolean:
        return Value::of_bool(false);
    }
    return Value{};
  }

  [[nodiscard]] Value try_const(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kCharLit: return Value::of_bits(LogicVector{e.char_lit});
      case ExprKind::kStringLit:
        return Value::of_bits(LogicVector::from_string(e.string_lit));
      case ExprKind::kIntLit: return Value::of_int(e.int_lit);
      case ExprKind::kName: {
        auto it = constants_.find(e.name);
        if (it != constants_.end()) return it->second;
        throw ElabError("line " + std::to_string(e.line) + ": '" + e.name +
                        "' is not a constant");
      }
      case ExprKind::kUnary:
        if (e.un_op == ast::UnOp::kMinus) {
          const Value v = try_const(*e.lhs);
          return Value::of_int(-v.i);
        }
        break;
      case ExprKind::kBinary: {
        const Value a = try_const(*e.lhs);
        const Value b = try_const(*e.rhs);
        switch (e.bin_op) {
          case ast::BinOp::kAdd: return Value::of_int(a.i + b.i);
          case ast::BinOp::kSub: return Value::of_int(a.i - b.i);
          case ast::BinOp::kMul: return Value::of_int(a.i * b.i);
          default: break;
        }
        break;
      }
      default: break;
    }
    throw ElabError("line " + std::to_string(e.line) +
                    ": expression is not constant");
  }

  int in_port(const std::string& name, int line) {
    auto it = in_ports_.find(name);
    if (it != in_ports_.end()) return it->second;
    auto sig = signals_.find(name);
    if (sig == signals_.end())
      throw ElabError("line " + std::to_string(line) + ": unknown signal '" +
                      name + "'");
    const int port = static_cast<int>(reads_.size());
    reads_.push_back(sig->second);
    in_ports_[name] = port;
    return port;
  }

  int out_port(const std::string& name, int line, const ast::Type& t) {
    auto it = out_ports_.find(name);
    if (it != out_ports_.end()) return it->second;
    auto sig = signals_.find(name);
    if (sig == signals_.end())
      throw ElabError("line " + std::to_string(line) + ": unknown signal '" +
                      name + "'");
    const int port = static_cast<int>(writes_.size());
    writes_.push_back(sig->second);
    out_ports_[name] = port;
    mask_info_.emplace_back();
    prog_->out_types.push_back(t);
    // The driver's initial value is the signal's declared initial value
    // (VHDL 12.6.1), needed for read-modify-write of indexed targets.
    prog_->out_init.push_back(Value::of_bits(sig_init_(sig->second)));
    return port;
  }

  [[nodiscard]] ast::Type type_of(const std::string& name, int line) const {
    auto it = types_.find(name);
    if (it != types_.end()) return it->second;
    throw ElabError("line " + std::to_string(line) + ": unknown name '" +
                    name + "'");
  }

  /// Resolves every name inside `e` and records slots keyed by node.
  void resolve_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kName:
      case ExprKind::kIndex:
      case ExprKind::kAttrEvent: {
        Slot slot;
        if (auto v = var_slots_.find(e.name); v != var_slots_.end()) {
          slot.kind = Slot::Kind::kVariable;
          slot.index = v->second;
          slot.type = prog_->var_types[static_cast<std::size_t>(v->second)];
        } else if (auto c = constants_.find(e.name); c != constants_.end()) {
          slot.kind = Slot::Kind::kConstant;
          slot.constant = c->second;
          auto t = types_.find(e.name);
          if (t != types_.end()) slot.type = t->second;
        } else {
          slot.kind = Slot::Kind::kSignalIn;
          slot.port = in_port(e.name, e.line);
          slot.type = type_of(e.name, e.line);
        }
        prog_->slots[&e] = std::move(slot);
        break;
      }
      case ExprKind::kCall:
        if (e.name == "rising_edge" || e.name == "falling_edge") {
          // Argument must be a plain signal name.
          if (!e.lhs || e.lhs->kind != ExprKind::kName)
            throw ElabError("line " + std::to_string(e.line) + ": " + e.name +
                            " needs a signal argument");
        }
        break;
      default:
        break;
    }
    if (e.lhs) resolve_expr(*e.lhs);
    if (e.rhs) resolve_expr(*e.rhs);
  }

  /// Synthesizes an expression node owned by the program.
  Expr* synth(ExprPtr e) {
    synthesized_.push_back(std::move(e));
    return synthesized_.back().get();
  }

  Expr* synth_name(const std::string& name, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kName;
    e->name = name;
    e->line = line;
    Expr* raw = synth(std::move(e));
    resolve_expr(*raw);
    return raw;
  }

  Expr* synth_int(std::int64_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIntLit;
    e->int_lit = v;
    return synth(std::move(e));
  }

  Expr* synth_bin(ast::BinOp op, ExprPtr l, ExprPtr r, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->bin_op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    e->line = line;
    Expr* raw = synth(std::move(e));
    resolve_expr(*raw);
    return raw;
  }

  void compile_stmts(const ast::StmtList& body) {
    for (const auto& s : body) compile_stmt(*s);
  }

  int emit(Program::Instr ins) {
    prog_->instrs.push_back(std::move(ins));
    return static_cast<int>(prog_->instrs.size()) - 1;
  }

  void compile_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kSignalAssign: {
        resolve_expr(*s.value);
        if (s.target_index) resolve_expr(*s.target_index);
        Program::Instr ins;
        ins.op = Program::Instr::Op::kAssignSig;
        ins.line = s.line;
        const ast::Type t = type_of(s.target, s.line);
        if (t.kind != ast::TypeKind::kStdLogic &&
            t.kind != ast::TypeKind::kStdLogicVector) {
          throw ElabError("line " + std::to_string(s.line) +
                          ": only std_logic(_vector) signals can be "
                          "assigned");
        }
        ins.a = out_port(s.target, s.line, t);
        // Driver mask inference: a constant index names one element; a
        // whole-signal target or dynamic index drives everything (LRM
        // longest static prefix).
        MaskInfo& mi = mask_info_[static_cast<std::size_t>(ins.a)];
        if (s.target_index == nullptr) {
          mi.whole = true;
        } else {
          try {
            const Value idx = try_const(*s.target_index);
            mi.positions.push_back(t.position(idx.i));
          } catch (const ElabError&) {
            mi.whole = true;
          }
        }
        ins.value = s.value.get();
        ins.index = s.target_index.get();
        ins.after = s.after.get();
        ins.transport = s.transport;
        if (s.after) resolve_expr(*s.after);
        // Lookahead bookkeeping.
        if (s.after == nullptr) {
          has_zero_delay_assign_ = true;
        } else {
          try {
            const Value d = try_const(*s.after);
            min_delay_ = std::min(min_delay_, d.i);
          } catch (const ElabError&) {
            has_zero_delay_assign_ = true;  // unknown delay: no promise
          }
        }
        emit(std::move(ins));
        break;
      }
      case StmtKind::kVarAssign: {
        resolve_expr(*s.value);
        if (s.target_index) resolve_expr(*s.target_index);
        auto v = var_slots_.find(s.target);
        if (v == var_slots_.end())
          throw ElabError("line " + std::to_string(s.line) +
                          ": unknown variable '" + s.target + "'");
        Program::Instr ins;
        ins.op = Program::Instr::Op::kAssignVar;
        ins.line = s.line;
        ins.a = v->second;
        ins.value = s.value.get();
        ins.index = s.target_index.get();
        emit(std::move(ins));
        break;
      }
      case StmtKind::kIf: {
        resolve_expr(*s.cond);
        Program::Instr br;
        br.op = Program::Instr::Op::kBranchFalse;
        br.value = s.cond.get();
        br.line = s.line;
        const int br_at = emit(std::move(br));
        compile_stmts(s.then_body);
        if (s.else_body.empty()) {
          prog_->instrs[static_cast<std::size_t>(br_at)].a =
              static_cast<int>(prog_->instrs.size());
        } else {
          Program::Instr jmp;
          jmp.op = Program::Instr::Op::kJump;
          const int jmp_at = emit(std::move(jmp));
          prog_->instrs[static_cast<std::size_t>(br_at)].a =
              static_cast<int>(prog_->instrs.size());
          compile_stmts(s.else_body);
          prog_->instrs[static_cast<std::size_t>(jmp_at)].a =
              static_cast<int>(prog_->instrs.size());
        }
        break;
      }
      case StmtKind::kCase: {
        resolve_expr(*s.selector);
        std::vector<int> end_jumps;
        for (const auto& alt : s.alts) {
          if (alt.choices.empty()) {
            // others
            compile_stmts(alt.body);
            break;
          }
          // cond: selector = c1 [or selector = c2 ...]
          Expr* cond = nullptr;
          for (const auto& c : alt.choices) {
            Expr* eq = synth_bin(ast::BinOp::kEq, ast::clone(*s.selector),
                                 ast::clone(*c), s.line);
            cond = cond == nullptr
                       ? eq
                       : synth_bin(ast::BinOp::kOr,
                                   ast::clone(*cond), ast::clone(*eq),
                                   s.line);
          }
          Program::Instr br;
          br.op = Program::Instr::Op::kBranchFalse;
          br.value = cond;
          br.line = s.line;
          const int br_at = emit(std::move(br));
          compile_stmts(alt.body);
          Program::Instr jmp;
          jmp.op = Program::Instr::Op::kJump;
          end_jumps.push_back(emit(std::move(jmp)));
          prog_->instrs[static_cast<std::size_t>(br_at)].a =
              static_cast<int>(prog_->instrs.size());
        }
        const int end = static_cast<int>(prog_->instrs.size());
        for (int j : end_jumps)
          prog_->instrs[static_cast<std::size_t>(j)].a = end;
        break;
      }
      case StmtKind::kForLoop: {
        // Allocate (or shadow) the loop variable.
        std::optional<int> shadowed;
        if (auto prev = var_slots_.find(s.loop_var);
            prev != var_slots_.end()) {
          shadowed = prev->second;
        }
        const int slot = static_cast<int>(prog_->var_init.size());
        var_slots_[s.loop_var] = slot;
        prog_->var_init.push_back(Value::of_int(0));
        prog_->var_types.push_back(
            ast::Type{ast::TypeKind::kInteger, 0, 0, true});

        resolve_expr(*s.from);
        resolve_expr(*s.to);
        Program::Instr init;
        init.op = Program::Instr::Op::kAssignVar;
        init.a = slot;
        init.value = s.from.get();
        init.line = s.line;
        emit(std::move(init));
        const int top = static_cast<int>(prog_->instrs.size());
        Expr* cond = synth_bin(
            s.reverse ? ast::BinOp::kGe : ast::BinOp::kLe,
            [&] {
              auto n = std::make_unique<Expr>();
              n->kind = ExprKind::kName;
              n->name = s.loop_var;
              n->line = s.line;
              return n;
            }(),
            ast::clone(*s.to), s.line);
        Program::Instr br;
        br.op = Program::Instr::Op::kBranchFalse;
        br.value = cond;
        br.line = s.line;
        const int br_at = emit(std::move(br));
        compile_stmts(s.body);
        // i := i +/- 1
        Expr* next = synth_bin(
            s.reverse ? ast::BinOp::kSub : ast::BinOp::kAdd,
            [&] {
              auto n = std::make_unique<Expr>();
              n->kind = ExprKind::kName;
              n->name = s.loop_var;
              n->line = s.line;
              return n;
            }(),
            [&] {
              auto one = std::make_unique<Expr>();
              one->kind = ExprKind::kIntLit;
              one->int_lit = 1;
              return one;
            }(),
            s.line);
        Program::Instr inc;
        inc.op = Program::Instr::Op::kAssignVar;
        inc.a = slot;
        inc.value = next;
        inc.line = s.line;
        emit(std::move(inc));
        Program::Instr back;
        back.op = Program::Instr::Op::kJump;
        back.a = top;
        emit(std::move(back));
        prog_->instrs[static_cast<std::size_t>(br_at)].a =
            static_cast<int>(prog_->instrs.size());
        if (shadowed) var_slots_[s.loop_var] = *shadowed;
        else var_slots_.erase(s.loop_var);
        break;
      }
      case StmtKind::kWhileLoop: {
        resolve_expr(*s.cond);
        const int top = static_cast<int>(prog_->instrs.size());
        Program::Instr br;
        br.op = Program::Instr::Op::kBranchFalse;
        br.value = s.cond.get();
        br.line = s.line;
        const int br_at = emit(std::move(br));
        compile_stmts(s.body);
        Program::Instr back;
        back.op = Program::Instr::Op::kJump;
        back.a = top;
        emit(std::move(back));
        prog_->instrs[static_cast<std::size_t>(br_at)].a =
            static_cast<int>(prog_->instrs.size());
        break;
      }
      case StmtKind::kWait: {
        Program::Instr w;
        w.op = Program::Instr::Op::kWait;
        w.line = s.line;
        for (const auto& name : s.wait_on)
          w.wait_ports.push_back(in_port(name, s.line));
        if (s.cond) {
          resolve_expr(*s.cond);
          w.value = s.cond.get();
          w.cond_id = next_cond_id_++;
          if (w.wait_ports.empty()) {
            // `wait until C`: implicit sensitivity = signals of C.
            std::vector<std::string> names;
            collect_signal_names(*s.cond, names);
            for (const auto& n : names) {
              if (var_slots_.count(n) || constants_.count(n)) continue;
              w.wait_ports.push_back(in_port(n, s.line));
            }
          }
        }
        if (s.wait_time) {
          resolve_expr(*s.wait_time);
          w.after = s.wait_time.get();
        }
        dedupe(w.wait_ports);
        emit(std::move(w));
        break;
      }
      case StmtKind::kNull:
        break;
      case StmtKind::kReport: {
        Program::Instr r;
        r.op = Program::Instr::Op::kReport;
        r.message = s.message;
        r.line = s.line;
        emit(std::move(r));
        break;
      }
    }
    if (s.cond && contains_edge_detect(*s.cond)) edge_detecting_ = true;
    if (s.value && contains_edge_detect(*s.value)) edge_detecting_ = true;
  }

  const std::unordered_map<std::string, vhdl::SignalId>& signals_;
  const std::unordered_map<std::string, Value>& constants_;
  const std::unordered_map<std::string, ast::Type>& types_;
  SigInitFn sig_init_;

  std::shared_ptr<Program> prog_;
  std::unordered_map<std::string, int> var_slots_;
  std::unordered_map<std::string, int> in_ports_;
  std::unordered_map<std::string, int> out_ports_;
  std::vector<vhdl::SignalId> reads_;
  std::vector<vhdl::SignalId> writes_;
  std::vector<MaskInfo> mask_info_;
  std::vector<ExprPtr> synthesized_;
  int next_cond_id_ = 0;
  PhysTime min_delay_ = std::numeric_limits<PhysTime>::max();
  bool has_zero_delay_assign_ = false;
  bool edge_detecting_ = false;

 public:
  std::vector<ExprPtr> take_synthesized() { return std::move(synthesized_); }
};

void apply_driver_masks(vhdl::Design& design, vhdl::ProcessId pid,
                        const std::vector<vhdl::SignalId>& writes,
                        const std::vector<ProcessCompiler::MaskInfo>& masks) {
  const auto& outs = design.process(pid).outputs();
  for (std::size_t i = 0; i < writes.size(); ++i) {
    const ProcessCompiler::MaskInfo& mi = masks[i];
    if (mi.whole) continue;  // default all-driven mask
    vhdl::SignalLp& sig = design.signal(writes[i]);
    std::vector<bool> mask(sig.initial_value().size(), false);
    for (std::size_t pos : mi.positions)
      if (pos < mask.size()) mask[pos] = true;
    sig.set_driver_mask(outs[i].second, std::move(mask));
  }
}

}  // namespace

// ----------------------------------------------------------- Elaborator

void elaborate_source(std::string_view source, const std::string& top_entity,
                      vhdl::Design& design, ElabOptions options) {
  auto file = std::make_shared<ast::DesignFile>(parse(source));
  Elaborator elab(std::move(file), design, options);
  elab.elaborate(top_entity);
}

Value Elaborator::default_value(const ast::Type& t) const {
  switch (t.kind) {
    case ast::TypeKind::kStdLogic:
      return Value::of_bits(LogicVector{Logic::kU});
    case ast::TypeKind::kStdLogicVector:
      return Value::of_bits(LogicVector(t.width(), Logic::kU));
    case ast::TypeKind::kInteger:
      return Value::of_int(0);
    case ast::TypeKind::kBoolean:
      return Value::of_bool(false);
  }
  return Value{};
}

Value Elaborator::const_eval(const ast::Expr& e, const Scope& scope) const {
  switch (e.kind) {
    case ExprKind::kCharLit:
      return Value::of_bits(LogicVector{e.char_lit});
    case ExprKind::kStringLit:
      return Value::of_bits(LogicVector::from_string(e.string_lit));
    case ExprKind::kIntLit:
      return Value::of_int(e.int_lit);
    case ExprKind::kName: {
      auto it = scope.constants.find(e.name);
      if (it == scope.constants.end())
        throw ElabError("line " + std::to_string(e.line) + ": '" + e.name +
                        "' is not constant in this context");
      return it->second;
    }
    case ExprKind::kUnary: {
      const Value v = const_eval(*e.lhs, scope);
      if (e.un_op == ast::UnOp::kMinus) return Value::of_int(-v.i);
      return Value::of_bool(!v.truthy());
    }
    case ExprKind::kBinary: {
      const Value a = const_eval(*e.lhs, scope);
      const Value b = const_eval(*e.rhs, scope);
      switch (e.bin_op) {
        case ast::BinOp::kAdd: return Value::of_int(a.i + b.i);
        case ast::BinOp::kSub: return Value::of_int(a.i - b.i);
        case ast::BinOp::kMul: return Value::of_int(a.i * b.i);
        default: break;
      }
      throw ElabError("unsupported constant operator");
    }
    default:
      throw ElabError("line " + std::to_string(e.line) +
                      ": expression is not constant");
  }
}

void Elaborator::elaborate(const std::string& top_entity) {
  const ast::Entity* top = file_->find_entity(top_entity);
  if (top == nullptr) throw ElabError("no entity '" + top_entity + "'");
  // Top-level ports become free-standing design signals.
  std::unordered_map<std::string, vhdl::SignalId> bindings;
  for (const auto& port : top->ports) {
    const Value init = default_value(port.type);
    bindings[port.name] = design_.add_signal(port.name, init.bits);
  }
  instantiate(*top, top_entity, bindings);
}

void Elaborator::instantiate(
    const ast::Entity& entity, const std::string& path,
    const std::unordered_map<std::string, vhdl::SignalId>& port_bindings) {
  const ast::Architecture* arch = file_->find_arch(entity.name);
  if (arch == nullptr)
    throw ElabError("no architecture for entity '" + entity.name + "'");

  Scope scope;
  scope.arch = arch;
  // Predefined boolean literals.
  scope.constants["true"] = Value::of_bool(true);
  scope.constants["false"] = Value::of_bool(false);
  scope.types["true"] = ast::Type{ast::TypeKind::kBoolean, 0, 0, true};
  scope.types["false"] = ast::Type{ast::TypeKind::kBoolean, 0, 0, true};
  for (const auto& port : entity.ports) {
    auto it = port_bindings.find(port.name);
    if (it == port_bindings.end())
      throw ElabError("instance " + path + ": port '" + port.name +
                      "' is unbound");
    scope.signals[port.name] = it->second;
    scope.types[port.name] = port.type;
  }
  for (const auto& d : arch->signals) {
    if (d.is_constant) {
      Value v = d.init ? const_eval(*d.init, scope) : default_value(d.type);
      scope.constants[d.name] = std::move(v);
      scope.types[d.name] = d.type;
      continue;
    }
    Value init = default_value(d.type);
    if (d.init) init = const_eval(*d.init, scope);
    scope.signals[d.name] =
        design_.add_signal(path + "/" + d.name, as_init_bits(init, d.type));
    scope.types[d.name] = d.type;
  }

  elaborate_region(arch->processes, arch->assigns, arch->instances,
                   arch->generates, scope, path);
}

void Elaborator::elaborate_region(
    const std::vector<ast::ProcessStmt>& processes,
    const std::vector<ast::ConcurrentAssign>& assigns,
    const std::vector<ast::Instance>& instances,
    const std::vector<std::unique_ptr<ast::GenerateStmt>>& generates,
    const Scope& scope, const std::string& path) {
  for (const auto& proc : processes) compile_process(proc, scope, path);
  std::size_t ordinal = 0;
  for (const auto& ca : assigns) compile_concurrent(ca, scope, path, ordinal++);

  for (const auto& inst : instances) {
    // Resolve the component: local component declaration or global entity.
    const ast::Entity* comp = nullptr;
    for (const auto& c : scope.arch->components)
      if (c.name == inst.component) comp = &c;
    const ast::Entity* target = file_->find_entity(inst.component);
    if (target == nullptr)
      throw ElabError("instance " + inst.label + ": unknown entity '" +
                      inst.component + "'");
    const ast::Entity* formal_src = comp != nullptr ? comp : target;

    std::unordered_map<std::string, vhdl::SignalId> child_bindings;
    for (const auto& [formal, actual] : inst.port_map) {
      std::string formal_name = formal;
      if (!formal.empty() && formal[0] == '$') {
        const std::size_t idx =
            static_cast<std::size_t>(std::stoul(formal.substr(1)));
        if (idx >= formal_src->ports.size())
          throw ElabError("instance " + inst.label +
                          ": too many positional associations");
        formal_name = formal_src->ports[idx].name;
      }
      auto sig = scope.signals.find(actual);
      if (sig == scope.signals.end())
        throw ElabError("instance " + inst.label + ": unknown actual '" +
                        actual + "'");
      child_bindings[formal_name] = sig->second;
    }
    instantiate(*target, path + "/" + inst.label, child_bindings);
  }

  for (const auto& gen : generates) {
    const std::int64_t from = const_eval(*gen->from, scope).i;
    const std::int64_t to = const_eval(*gen->to, scope).i;
    const std::int64_t step = gen->reverse ? -1 : 1;
    for (std::int64_t v = from; gen->reverse ? v >= to : v <= to;
         v += step) {
      Scope child = scope;  // loop variable becomes a local constant
      child.constants[gen->var] = Value::of_int(v);
      child.types[gen->var] = ast::Type{ast::TypeKind::kInteger, 0, 0, true};
      elaborate_region(gen->processes, gen->assigns, gen->instances,
                       gen->generates, child,
                       path + "/" + gen->label + "(" + std::to_string(v) +
                           ")");
    }
  }
}

LogicVector Elaborator::as_init_bits(const Value& v,
                                     const ast::Type& t) const {
  if (v.kind == Value::Kind::kBits) return v.bits;
  return LogicVector::from_uint(static_cast<std::uint64_t>(v.i), t.width());
}

void Elaborator::compile_process(const ast::ProcessStmt& proc,
                                 const Scope& scope,
                                 const std::string& path) {
  const std::string name =
      path + "/" + (proc.label.empty() ? "proc" : proc.label);
  ProcessCompiler compiler(
      scope.signals, scope.constants, scope.types,
      [this](vhdl::SignalId s) { return design_.signal(s).initial_value(); },
      name);
  std::shared_ptr<Program> prog = compiler.compile(proc);
  // Keep synthesized expressions alive alongside the AST.
  auto holder = std::make_shared<std::vector<ast::ExprPtr>>(
      compiler.take_synthesized());
  prog->ast_owner = file_;
  prog->synth_owner = holder;

  auto body = make_body(prog, options_.backend);
  const vhdl::ProcessId pid = design_.add_process(name, std::move(body));
  for (vhdl::SignalId sig : compiler.reads()) design_.connect_in(pid, sig);
  for (vhdl::SignalId sig : compiler.writes()) design_.connect_out(pid, sig);
  apply_driver_masks(design_, pid, compiler.writes(), compiler.masks());
  design_.process(pid).set_lookahead(compiler.min_assign_delay());
  if (compiler.edge_detecting()) {
    design_.set_sync_hint(pid, true);
    for (vhdl::SignalId sig : compiler.writes())
      design_.set_signal_sync_hint(sig, true);
  }
}

void Elaborator::compile_concurrent(const ast::ConcurrentAssign& ca,
                                    const Scope& scope,
                                    const std::string& path,
                                    std::size_t ordinal) {
  // Desugar into an equivalent process:
  //   process (reads...) begin
  //     if c1 then t <= v1 [after d1];
  //     elsif c2 then ...
  //     else t <= vn [after dn]; end if;
  //   end process;
  auto proc = std::make_shared<ast::ProcessStmt>();
  proc->label = ca.target + "_ca" + std::to_string(ordinal);
  proc->line = ca.line;

  std::vector<std::string> read_names;
  for (const auto& arm : ca.arms) {
    collect_signal_names(*arm.value, read_names);
    if (arm.cond) collect_signal_names(*arm.cond, read_names);
  }
  if (ca.target_index) collect_signal_names(*ca.target_index, read_names);
  std::sort(read_names.begin(), read_names.end());
  read_names.erase(std::unique(read_names.begin(), read_names.end()),
                   read_names.end());
  for (const auto& n : read_names) {
    if (scope.signals.count(n)) proc->sensitivity.push_back(n);
  }

  // Build the if-chain from the arms (in reverse).
  ast::StmtList chain;
  for (std::size_t i = ca.arms.size(); i-- > 0;) {
    const auto& arm = ca.arms[i];
    auto assign = std::make_unique<ast::Stmt>();
    assign->kind = ast::StmtKind::kSignalAssign;
    assign->line = ca.line;
    assign->target = ca.target;
    if (ca.target_index) assign->target_index = ast::clone(*ca.target_index);
    assign->value = ast::clone(*arm.value);
    if (arm.after) assign->after = ast::clone(*arm.after);
    assign->transport = ca.transport;
    if (arm.cond == nullptr) {
      chain.clear();
      chain.push_back(std::move(assign));
    } else {
      auto iff = std::make_unique<ast::Stmt>();
      iff->kind = ast::StmtKind::kIf;
      iff->line = ca.line;
      iff->cond = ast::clone(*arm.cond);
      iff->then_body.push_back(std::move(assign));
      iff->else_body = std::move(chain);
      chain.clear();
      chain.push_back(std::move(iff));
    }
  }
  proc->body = std::move(chain);

  const std::string name = path + "/" + proc->label;
  ProcessCompiler compiler(
      scope.signals, scope.constants, scope.types,
      [this](vhdl::SignalId s) { return design_.signal(s).initial_value(); },
      name);
  std::shared_ptr<Program> prog = compiler.compile(*proc);
  auto holder = std::make_shared<std::vector<ast::ExprPtr>>(
      compiler.take_synthesized());
  prog->ast_owner = file_;
  prog->synth_owner = holder;
  prog->stmt_owner = proc;  // the desugared process owns the cloned exprs

  auto body = make_body(prog, options_.backend);
  const vhdl::ProcessId pid = design_.add_process(name, std::move(body));
  for (vhdl::SignalId sig : compiler.reads()) design_.connect_in(pid, sig);
  for (vhdl::SignalId sig : compiler.writes()) design_.connect_out(pid, sig);
  apply_driver_masks(design_, pid, compiler.writes(), compiler.masks());
  design_.process(pid).set_lookahead(compiler.min_assign_delay());
}

}  // namespace vsim::fe
