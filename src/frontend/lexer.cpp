#include "frontend/lexer.h"

#include <cctype>
#include <unordered_map>

namespace vsim::fe {
namespace {

const std::unordered_map<std::string, Tok>& keyword_table() {
  static const std::unordered_map<std::string, Tok> table = {
      {"abs", Tok::kAbs},       {"after", Tok::kAfter},
      {"all", Tok::kAll},       {"and", Tok::kAnd},
      {"architecture", Tok::kArchitecture},
      {"begin", Tok::kBegin},   {"case", Tok::kCase},
      {"component", Tok::kComponent},
      {"constant", Tok::kConstant},
      {"downto", Tok::kDownto}, {"else", Tok::kElse},
      {"elsif", Tok::kElsif},   {"end", Tok::kEnd},
      {"entity", Tok::kEntity}, {"exit", Tok::kExit},
      {"for", Tok::kFor},       {"generate", Tok::kGenerate},
      {"if", Tok::kIf},         {"in", Tok::kIn},
      {"inertial", Tok::kInertial},
      {"inout", Tok::kInout},   {"is", Tok::kIs},
      {"library", Tok::kLibrary},
      {"loop", Tok::kLoop},     {"map", Tok::kMap},
      {"mod", Tok::kMod},       {"nand", Tok::kNand},
      {"nor", Tok::kNor},       {"not", Tok::kNot},
      {"null", Tok::kNull},     {"of", Tok::kOf},
      {"on", Tok::kOn},
      {"or", Tok::kOr},         {"others", Tok::kOthers},
      {"out", Tok::kOut},       {"port", Tok::kPort},
      {"process", Tok::kProcess},
      {"rem", Tok::kRem},       {"report", Tok::kReport},
      {"severity", Tok::kSeverity},
      {"signal", Tok::kSignal}, {"then", Tok::kThen},
      {"to", Tok::kTo},         {"transport", Tok::kTransport},
      {"type", Tok::kType},     {"until", Tok::kUntil},
      {"use", Tok::kUse},       {"variable", Tok::kVariable},
      {"wait", Tok::kWait},     {"when", Tok::kWhen},
      {"while", Tok::kWhile},   {"xnor", Tok::kXnor},
      {"xor", Tok::kXor},
  };
  return table;
}

}  // namespace

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer";
    case Tok::kCharLit: return "character literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kColon: return ":";
    case Tok::kDot: return ".";
    case Tok::kAmp: return "&";
    case Tok::kTick: return "'";
    case Tok::kAssignVar: return ":=";
    case Tok::kAssignSig: return "<=";
    case Tok::kArrow: return "=>";
    case Tok::kEq: return "=";
    case Tok::kNeq: return "/=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kGe: return ">=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    default: return "keyword";
  }
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skip_ws_and_comments() {
  for (;;) {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
    if (peek() == '-' && peek(1) == '-') {
      while (pos_ < src_.size() && peek() != '\n') advance();
      continue;
    }
    return;
  }
}

Token Lexer::make(Tok kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = line_;
  t.col = col_;
  return t;
}

Token Lexer::next() {
  skip_ws_and_comments();
  if (pos_ >= src_.size()) return make(Tok::kEof);

  const int line = line_;
  const int col = col_;
  auto at = [&](Token t) {
    t.line = line;
    t.col = col;
    return t;
  };

  const char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c))) {
    std::string id;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_') {
      id.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(advance()))));
    }
    const auto& kw = keyword_table();
    if (auto it = kw.find(id); it != kw.end()) return at(make(it->second, id));
    return at(make(Tok::kIdent, id));
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_') {
      const char d = advance();
      if (d != '_') num.push_back(d);
    }
    Token t = make(Tok::kInt, num);
    t.value = std::stoll(num);
    return at(t);
  }
  if (c == '\'') {
    // Character literal 'X' -- but also the attribute tick (s'event).  A
    // character literal is 'c' with a closing quote; otherwise it is a tick.
    if (pos_ + 2 < src_.size() && src_[pos_ + 2] == '\'') {
      advance();
      const char v = advance();
      advance();
      return at(make(Tok::kCharLit, std::string(1, v)));
    }
    advance();
    return at(make(Tok::kTick));
  }
  if (c == '"') {
    advance();
    std::string s;
    while (pos_ < src_.size() && peek() != '"') s.push_back(advance());
    if (pos_ >= src_.size()) throw ParseError("unterminated string", line, col);
    advance();
    return at(make(Tok::kStringLit, s));
  }

  advance();
  switch (c) {
    case '(': return at(make(Tok::kLParen));
    case ')': return at(make(Tok::kRParen));
    case ',': return at(make(Tok::kComma));
    case ';': return at(make(Tok::kSemi));
    case '.': return at(make(Tok::kDot));
    case '&': return at(make(Tok::kAmp));
    case '+': return at(make(Tok::kPlus));
    case '-': return at(make(Tok::kMinus));
    case '*': return at(make(Tok::kStar));
    case ':':
      if (peek() == '=') {
        advance();
        return at(make(Tok::kAssignVar));
      }
      return at(make(Tok::kColon));
    case '<':
      if (peek() == '=') {
        advance();
        return at(make(Tok::kAssignSig));
      }
      return at(make(Tok::kLt));
    case '>':
      if (peek() == '=') {
        advance();
        return at(make(Tok::kGe));
      }
      return at(make(Tok::kGt));
    case '=':
      if (peek() == '>') {
        advance();
        return at(make(Tok::kArrow));
      }
      return at(make(Tok::kEq));
    case '/':
      if (peek() == '=') {
        advance();
        return at(make(Tok::kNeq));
      }
      return at(make(Tok::kSlash));
    default:
      throw ParseError(std::string("unexpected character '") + c + "'",
                       line, col);
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    const bool eof = t.kind == Tok::kEof;
    out.push_back(std::move(t));
    if (eof) return out;
  }
}

}  // namespace vsim::fe
