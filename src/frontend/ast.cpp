#include "frontend/ast.h"

namespace vsim::fe::ast {

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->char_lit = e.char_lit;
  out->string_lit = e.string_lit;
  out->int_lit = e.int_lit;
  out->name = e.name;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  if (e.lhs) out->lhs = clone(*e.lhs);
  if (e.rhs) out->rhs = clone(*e.rhs);
  return out;
}

}  // namespace vsim::fe::ast
