// Elaboration: DesignFile AST -> flat process/signal graph (vhdl::Design).
//
// Walks the instance hierarchy from a top entity, creating one SignalLp per
// declared signal (names mangled with the instance path, e.g.
// "top/u1/carry") and one ProcessLp per process statement or concurrent
// assignment, each driving a compiled InterpBody.
#pragma once

#include <memory>
#include <string>

#include "frontend/codegen.h"
#include "frontend/interp.h"
#include "frontend/parser.h"
#include "vhdl/kernel.h"

namespace vsim::fe {

struct ElabOptions {
  /// Physical-time units per 'ns' literal (default: 1 unit == 1 ns).
  PhysTime time_scale = 1;
  /// Process-body execution backend.  kAuto resolves $VSIM_BACKEND when the
  /// bodies are built, so existing entry points pick up `VSIM_BACKEND=native`
  /// without code changes.
  Backend backend = Backend::kAuto;
};

class Elaborator {
 public:
  Elaborator(std::shared_ptr<const ast::DesignFile> file, vhdl::Design& design,
             ElabOptions options = {})
      : file_(std::move(file)), design_(design), options_(options) {}

  /// Elaborates `top_entity`; its ports become design signals named after
  /// the ports.  Call Design::finalize() afterwards.
  void elaborate(const std::string& top_entity);

 private:
  struct Scope {
    /// VHDL name -> design signal (ports and local signals).
    std::unordered_map<std::string, vhdl::SignalId> signals;
    /// VHDL name -> compile-time constant.
    std::unordered_map<std::string, Value> constants;
    /// Declared type per name.
    std::unordered_map<std::string, ast::Type> types;
    /// Component name -> entity, from local component declarations.
    const ast::Architecture* arch = nullptr;
  };

  void instantiate(const ast::Entity& entity, const std::string& path,
                   const std::unordered_map<std::string, vhdl::SignalId>&
                       port_bindings);
  /// Elaborates one concurrent region (architecture body or generate body).
  void elaborate_region(
      const std::vector<ast::ProcessStmt>& processes,
      const std::vector<ast::ConcurrentAssign>& assigns,
      const std::vector<ast::Instance>& instances,
      const std::vector<std::unique_ptr<ast::GenerateStmt>>& generates,
      const Scope& scope, const std::string& path);
  void compile_process(const ast::ProcessStmt& proc, const Scope& scope,
                       const std::string& path);
  /// Synthesizes the equivalent process for a concurrent assignment.
  void compile_concurrent(const ast::ConcurrentAssign& ca, const Scope& scope,
                          const std::string& path, std::size_t ordinal);

  [[nodiscard]] Value default_value(const ast::Type& t) const;
  [[nodiscard]] Value const_eval(const ast::Expr& e,
                                 const Scope& scope) const;
  [[nodiscard]] LogicVector as_init_bits(const Value& v,
                                         const ast::Type& t) const;

  std::shared_ptr<const ast::DesignFile> file_;
  vhdl::Design& design_;
  ElabOptions options_;
};

/// Convenience: parse + elaborate VHDL source into `design`.
void elaborate_source(std::string_view source, const std::string& top_entity,
                      vhdl::Design& design, ElabOptions options = {});

}  // namespace vsim::fe
