#include "frontend/parser.h"

namespace vsim::fe {

using namespace ast;

DesignFile parse(std::string_view source) {
  Lexer lex(source);
  Parser p(lex.tokenize());
  return p.parse_file();
}

bool Parser::accept(Tok k) {
  if (check(k)) {
    ++pos_;
    return true;
  }
  return false;
}

const Token& Parser::expect(Tok k, const char* what) {
  if (!check(k)) {
    fail(std::string("expected ") + what + " (" + tok_name(k) +
         "), found '" + (cur().text.empty() ? tok_name(cur().kind)
                                            : cur().text.c_str()) + "'");
  }
  return toks_[pos_++];
}

void Parser::fail(const std::string& msg) const {
  throw ParseError(msg, cur().line, cur().col);
}

std::string Parser::expect_ident(const char* what) {
  return expect(Tok::kIdent, what).text;
}

// --------------------------------------------------------------- file

DesignFile Parser::parse_file() {
  DesignFile file;
  for (;;) {
    // Skip library/use clauses.
    while (check(Tok::kLibrary) || check(Tok::kUse)) {
      while (!accept(Tok::kSemi)) advance();
    }
    if (check(Tok::kEof)) break;
    if (accept(Tok::kEntity)) {
      file.entities.push_back(parse_entity_header());
    } else if (accept(Tok::kArchitecture)) {
      file.architectures.push_back(parse_architecture());
    } else {
      fail("expected 'entity' or 'architecture'");
    }
  }
  return file;
}

Entity Parser::parse_entity_header() {
  Entity e;
  e.name = expect_ident("entity name");
  expect(Tok::kIs, "'is'");
  if (check(Tok::kPort)) e.ports = parse_port_clause();
  expect(Tok::kEnd, "'end'");
  accept(Tok::kEntity);
  if (check(Tok::kIdent)) advance();  // optional repeated name
  expect(Tok::kSemi, "';'");
  return e;
}

std::vector<Port> Parser::parse_port_clause() {
  expect(Tok::kPort, "'port'");
  expect(Tok::kLParen, "'('");
  std::vector<Port> ports;
  for (;;) {
    std::vector<std::string> names;
    names.push_back(expect_ident("port name"));
    while (accept(Tok::kComma)) names.push_back(expect_ident("port name"));
    expect(Tok::kColon, "':'");
    PortDir dir = PortDir::kIn;
    if (accept(Tok::kIn)) dir = PortDir::kIn;
    else if (accept(Tok::kOut)) dir = PortDir::kOut;
    else if (accept(Tok::kInout)) dir = PortDir::kInout;
    const Type t = parse_type();
    for (auto& n : names) ports.push_back({n, dir, t});
    if (!accept(Tok::kSemi)) break;
  }
  expect(Tok::kRParen, "')'");
  expect(Tok::kSemi, "';'");
  return ports;
}

Type Parser::parse_type() {
  Type t;
  const std::string name = expect_ident("type name");
  if (name == "std_logic" || name == "std_ulogic" || name == "bit") {
    t.kind = TypeKind::kStdLogic;
    return t;
  }
  if (name == "integer" || name == "natural" || name == "positive") {
    t.kind = TypeKind::kInteger;
    // optional range constraint: range a to b (ignored for storage)
    if (check(Tok::kIdent) && cur().text == "range") {
      advance();
      parse_simple_expr();
      if (!accept(Tok::kTo)) expect(Tok::kDownto, "'to' or 'downto'");
      parse_simple_expr();
    }
    return t;
  }
  if (name == "boolean") {
    t.kind = TypeKind::kBoolean;
    return t;
  }
  if (name == "std_logic_vector" || name == "std_ulogic_vector" ||
      name == "bit_vector" || name == "signed" || name == "unsigned") {
    t.kind = TypeKind::kStdLogicVector;
    expect(Tok::kLParen, "'('");
    const Token& l = expect(Tok::kInt, "integer bound");
    t.left = static_cast<int>(l.value);
    if (accept(Tok::kDownto)) t.downto = true;
    else {
      expect(Tok::kTo, "'to' or 'downto'");
      t.downto = false;
    }
    const Token& r = expect(Tok::kInt, "integer bound");
    t.right = static_cast<int>(r.value);
    expect(Tok::kRParen, "')'");
    return t;
  }
  fail("unsupported type '" + name + "'");
}

std::vector<Decl> Parser::parse_object_decl(Tok kw) {
  expect(kw, "declaration keyword");
  std::vector<std::string> names;
  names.push_back(expect_ident("name"));
  while (accept(Tok::kComma)) names.push_back(expect_ident("name"));
  expect(Tok::kColon, "':'");
  const Type t = parse_type();
  ExprPtr init;
  if (accept(Tok::kAssignVar)) init = parse_expr();
  expect(Tok::kSemi, "';'");
  std::vector<Decl> decls;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Decl d;
    d.name = names[i];
    d.type = t;
    if (init)
      d.init = i + 1 == names.size() ? std::move(init) : ast::clone(*init);
    decls.push_back(std::move(d));
  }
  return decls;
}

// ------------------------------------------------------- architecture

Architecture Parser::parse_architecture() {
  Architecture a;
  a.name = expect_ident("architecture name");
  expect(Tok::kOf, "'of'");
  a.entity = expect_ident("entity name");
  expect(Tok::kIs, "'is'");
  // declarative part
  for (;;) {
    if (check(Tok::kSignal)) {
      auto ds = parse_object_decl(Tok::kSignal);
      for (auto& d : ds) a.signals.push_back(std::move(d));
    } else if (check(Tok::kComponent)) {
      a.components.push_back(parse_component_decl());
    } else if (check(Tok::kConstant)) {
      auto ds = parse_object_decl(Tok::kConstant);
      for (auto& d : ds) {
        d.is_constant = true;
        a.signals.push_back(std::move(d));
      }
    } else if (check(Tok::kType) || check(Tok::kUse)) {
      while (!accept(Tok::kSemi)) advance();  // skip
    } else {
      break;
    }
  }
  expect(Tok::kBegin, "'begin'");
  ConcurrentRegion region{&a.processes, &a.assigns, &a.instances,
                          &a.generates};
  parse_concurrent_statements(region);
  expect(Tok::kEnd, "'end'");
  accept(Tok::kArchitecture);
  if (check(Tok::kIdent)) advance();
  expect(Tok::kSemi, "';'");
  return a;
}

void Parser::parse_concurrent_statements(ConcurrentRegion& region) {
  while (!check(Tok::kEnd)) {
    std::string label;
    if (check(Tok::kIdent) && peek().kind == Tok::kColon) {
      label = advance().text;
      advance();  // ':'
    }
    if (check(Tok::kProcess)) {
      region.processes->push_back(parse_process(label));
    } else if (check(Tok::kFor)) {
      if (label.empty()) fail("generate statements require a label");
      region.generates->push_back(parse_generate(label));
    } else if (!label.empty() && check(Tok::kIdent) &&
               peek().kind == Tok::kPort) {
      // `label: comp port map (...)` -- component instantiation.
      region.instances->push_back(parse_instance(label));
    } else if (check(Tok::kIdent) &&
               (peek().kind == Tok::kAssignSig ||
                peek().kind == Tok::kLParen)) {
      // concurrent assignment `y <= ...` / `y(i) <= ...`
      const std::string target = advance().text;
      region.assigns->push_back(parse_concurrent_assign(target));
    } else {
      fail("unexpected concurrent statement");
    }
  }
}

std::unique_ptr<GenerateStmt> Parser::parse_generate(std::string label) {
  auto g = std::make_unique<GenerateStmt>();
  g->label = std::move(label);
  g->line = cur().line;
  expect(Tok::kFor, "'for'");
  g->var = expect_ident("generate variable");
  expect(Tok::kIn, "'in'");
  g->from = parse_simple_expr();
  if (accept(Tok::kDownto)) g->reverse = true;
  else expect(Tok::kTo, "'to' or 'downto'");
  g->to = parse_simple_expr();
  expect(Tok::kGenerate, "'generate'");
  ConcurrentRegion region{&g->processes, &g->assigns, &g->instances,
                          &g->generates};
  parse_concurrent_statements(region);
  expect(Tok::kEnd, "'end'");
  expect(Tok::kGenerate, "'generate'");
  if (check(Tok::kIdent)) advance();
  expect(Tok::kSemi, "';'");
  return g;
}

Entity Parser::parse_component_decl() {
  expect(Tok::kComponent, "'component'");
  Entity e;
  e.name = expect_ident("component name");
  accept(Tok::kIs);
  if (check(Tok::kPort)) e.ports = parse_port_clause();
  expect(Tok::kEnd, "'end'");
  expect(Tok::kComponent, "'component'");
  if (check(Tok::kIdent)) advance();
  expect(Tok::kSemi, "';'");
  return e;
}

Instance Parser::parse_instance(std::string label) {
  Instance inst;
  inst.label = std::move(label);
  inst.line = cur().line;
  inst.component = expect_ident("component name");
  expect(Tok::kPort, "'port'");
  expect(Tok::kMap, "'map'");
  expect(Tok::kLParen, "'('");
  bool named = false;
  std::size_t positional = 0;
  for (;;) {
    if (check(Tok::kIdent) && peek().kind == Tok::kArrow) {
      named = true;
      std::string formal = advance().text;
      advance();  // =>
      std::string actual = expect_ident("actual signal");
      inst.port_map.emplace_back(std::move(formal), std::move(actual));
    } else {
      if (named) fail("cannot mix positional and named association");
      std::string actual = expect_ident("actual signal");
      // formal resolved by position at elaboration; store index marker
      inst.port_map.emplace_back("$" + std::to_string(positional++),
                                 std::move(actual));
    }
    if (!accept(Tok::kComma)) break;
  }
  expect(Tok::kRParen, "')'");
  expect(Tok::kSemi, "';'");
  return inst;
}

ProcessStmt Parser::parse_process(std::string label) {
  ProcessStmt p;
  p.label = std::move(label);
  p.line = cur().line;
  expect(Tok::kProcess, "'process'");
  if (accept(Tok::kLParen)) {
    p.sensitivity.push_back(expect_ident("signal name"));
    while (accept(Tok::kComma))
      p.sensitivity.push_back(expect_ident("signal name"));
    expect(Tok::kRParen, "')'");
  }
  accept(Tok::kIs);
  while (check(Tok::kVariable)) {
    auto ds = parse_object_decl(Tok::kVariable);
    for (auto& d : ds) p.variables.push_back(std::move(d));
  }
  expect(Tok::kBegin, "'begin'");
  p.body = parse_stmt_list({Tok::kEnd});
  expect(Tok::kEnd, "'end'");
  expect(Tok::kProcess, "'process'");
  if (check(Tok::kIdent)) advance();
  expect(Tok::kSemi, "';'");
  return p;
}

ConcurrentAssign Parser::parse_concurrent_assign(std::string target) {
  ConcurrentAssign ca;
  ca.line = cur().line;
  ca.target = std::move(target);
  if (accept(Tok::kLParen)) {
    ca.target_index = parse_expr();
    expect(Tok::kRParen, "')'");
  }
  expect(Tok::kAssignSig, "'<='");
  ca.transport = accept(Tok::kTransport);
  for (;;) {
    ConcurrentAssign::Arm arm;
    arm.value = parse_expr();
    if (accept(Tok::kAfter)) arm.after = parse_expr();
    if (accept(Tok::kWhen)) {
      arm.cond = parse_expr();
      ca.arms.push_back(std::move(arm));
      expect(Tok::kElse, "'else'");
      continue;
    }
    ca.arms.push_back(std::move(arm));
    break;
  }
  expect(Tok::kSemi, "';'");
  return ca;
}

// --------------------------------------------------------- statements

StmtList Parser::parse_stmt_list(std::initializer_list<Tok> terminators) {
  StmtList list;
  for (;;) {
    for (Tok t : terminators)
      if (check(t)) return list;
    if (check(Tok::kElsif) || check(Tok::kElse) || check(Tok::kWhen))
      return list;
    list.push_back(parse_stmt());
  }
}

StmtPtr Parser::parse_stmt() {
  const NestingGuard guard(*this);
  std::string label;
  if (check(Tok::kIdent) && peek().kind == Tok::kColon) {
    label = advance().text;
    advance();
  }
  if (check(Tok::kIf)) return parse_if();
  if (check(Tok::kCase)) return parse_case();
  if (check(Tok::kFor)) return parse_for(label);
  if (check(Tok::kWhile)) return parse_while(label);
  if (check(Tok::kWait)) return parse_wait();
  if (accept(Tok::kNull)) {
    expect(Tok::kSemi, "';'");
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kNull;
    return s;
  }
  if (accept(Tok::kReport)) {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kReport;
    s->line = cur().line;
    s->message = expect(Tok::kStringLit, "report message").text;
    if (accept(Tok::kSeverity)) expect_ident("severity level");
    expect(Tok::kSemi, "';'");
    return s;
  }
  return parse_assign_or_call();
}

StmtPtr Parser::parse_if() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->line = cur().line;
  expect(Tok::kIf, "'if'");
  s->cond = parse_expr();
  expect(Tok::kThen, "'then'");
  s->then_body = parse_stmt_list({Tok::kEnd});
  if (check(Tok::kElsif)) {
    // Desugar: elsif chain -> nested if in the else branch.
    advance();
    pos_ -= 1;
    toks_[pos_].kind = Tok::kIf;  // rewrite elsif as if and recurse
    s->else_body.push_back(parse_if());
    return s;  // nested parse consumed 'end if;'
  }
  if (accept(Tok::kElse)) s->else_body = parse_stmt_list({Tok::kEnd});
  expect(Tok::kEnd, "'end'");
  expect(Tok::kIf, "'if'");
  expect(Tok::kSemi, "';'");
  return s;
}

StmtPtr Parser::parse_case() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kCase;
  s->line = cur().line;
  expect(Tok::kCase, "'case'");
  s->selector = parse_expr();
  expect(Tok::kIs, "'is'");
  while (accept(Tok::kWhen)) {
    CaseAlt alt;
    if (accept(Tok::kOthers)) {
      // empty choices = others
    } else {
      alt.choices.push_back(parse_expr());
      while (accept(Tok::kOr)) {
        // VHDL uses '|' for choice separation; our lexer has no '|', so we
        // also accept 'or' -- and '|' is added below in the lexer someday.
        alt.choices.push_back(parse_expr());
      }
    }
    expect(Tok::kArrow, "'=>'");
    alt.body = parse_stmt_list({Tok::kEnd});
    s->alts.push_back(std::move(alt));
  }
  expect(Tok::kEnd, "'end'");
  expect(Tok::kCase, "'case'");
  expect(Tok::kSemi, "';'");
  return s;
}

StmtPtr Parser::parse_for(std::string) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kForLoop;
  s->line = cur().line;
  expect(Tok::kFor, "'for'");
  s->loop_var = expect_ident("loop variable");
  expect(Tok::kIn, "'in'");
  s->from = parse_simple_expr();
  if (accept(Tok::kDownto)) s->reverse = true;
  else expect(Tok::kTo, "'to' or 'downto'");
  s->to = parse_simple_expr();
  expect(Tok::kLoop, "'loop'");
  s->body = parse_stmt_list({Tok::kEnd});
  expect(Tok::kEnd, "'end'");
  expect(Tok::kLoop, "'loop'");
  expect(Tok::kSemi, "';'");
  return s;
}

StmtPtr Parser::parse_while(std::string) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kWhileLoop;
  s->line = cur().line;
  expect(Tok::kWhile, "'while'");
  s->cond = parse_expr();
  expect(Tok::kLoop, "'loop'");
  s->body = parse_stmt_list({Tok::kEnd});
  expect(Tok::kEnd, "'end'");
  expect(Tok::kLoop, "'loop'");
  expect(Tok::kSemi, "';'");
  return s;
}

StmtPtr Parser::parse_wait() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kWait;
  s->line = cur().line;
  expect(Tok::kWait, "'wait'");
  if (accept(Tok::kOn)) {
    s->wait_on.push_back(expect_ident("signal name"));
    while (accept(Tok::kComma))
      s->wait_on.push_back(expect_ident("signal name"));
  }
  if (accept(Tok::kUntil)) s->cond = parse_expr();
  if (accept(Tok::kFor)) s->wait_time = parse_expr();
  expect(Tok::kSemi, "';'");
  return s;
}

StmtPtr Parser::parse_assign_or_call() {
  auto s = std::make_unique<Stmt>();
  s->line = cur().line;
  s->target = expect_ident("assignment target");
  if (accept(Tok::kLParen)) {
    s->target_index = parse_expr();
    expect(Tok::kRParen, "')'");
  }
  if (accept(Tok::kAssignSig)) {
    s->kind = StmtKind::kSignalAssign;
    s->transport = accept(Tok::kTransport);
    if (accept(Tok::kInertial)) { /* default */ }
    s->value = parse_expr();
    if (accept(Tok::kAfter)) s->after = parse_expr();
  } else if (accept(Tok::kAssignVar)) {
    s->kind = StmtKind::kVarAssign;
    s->value = parse_expr();
  } else {
    fail("expected ':=' or '<='");
  }
  expect(Tok::kSemi, "';'");
  return s;
}

// -------------------------------------------------------- expressions

namespace {
ExprPtr make_bin(BinOp op, ExprPtr l, ExprPtr r, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  e->line = line;
  return e;
}
}  // namespace

Parser::NestingGuard::NestingGuard(Parser& p) : p_(p) {
  // Far beyond any real design, far below stack exhaustion.
  constexpr int kMaxNesting = 400;
  if (++p_.depth_ > kMaxNesting)
    p_.fail("statement/expression nesting deeper than 400 levels");
}

ast::ExprPtr Parser::parse_expr() {
  const NestingGuard guard(*this);
  // logical operators (lowest precedence, non-associative mix rejected by
  // keeping a single operator kind per chain, as VHDL requires)
  ExprPtr lhs = parse_relation();
  for (;;) {
    BinOp op;
    if (check(Tok::kAnd)) op = BinOp::kAnd;
    else if (check(Tok::kOr)) op = BinOp::kOr;
    else if (check(Tok::kNand)) op = BinOp::kNand;
    else if (check(Tok::kNor)) op = BinOp::kNor;
    else if (check(Tok::kXor)) op = BinOp::kXor;
    else if (check(Tok::kXnor)) op = BinOp::kXnor;
    else return lhs;
    const int line = cur().line;
    advance();
    lhs = make_bin(op, std::move(lhs), parse_relation(), line);
  }
}

ast::ExprPtr Parser::parse_relation() {
  ExprPtr lhs = parse_simple_expr();
  BinOp op;
  if (check(Tok::kEq)) op = BinOp::kEq;
  else if (check(Tok::kNeq)) op = BinOp::kNeq;
  else if (check(Tok::kLt)) op = BinOp::kLt;
  else if (check(Tok::kAssignSig)) op = BinOp::kLe;  // '<=' as relation
  else if (check(Tok::kGt)) op = BinOp::kGt;
  else if (check(Tok::kGe)) op = BinOp::kGe;
  else return lhs;
  const int line = cur().line;
  advance();
  return make_bin(op, std::move(lhs), parse_simple_expr(), line);
}

ast::ExprPtr Parser::parse_simple_expr() {
  ExprPtr lhs;
  if (accept(Tok::kMinus)) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->un_op = UnOp::kMinus;
    e->lhs = parse_term();
    lhs = std::move(e);
  } else {
    accept(Tok::kPlus);
    lhs = parse_term();
  }
  for (;;) {
    BinOp op;
    if (check(Tok::kPlus)) op = BinOp::kAdd;
    else if (check(Tok::kMinus)) op = BinOp::kSub;
    else if (check(Tok::kAmp)) op = BinOp::kConcat;
    else return lhs;
    const int line = cur().line;
    advance();
    lhs = make_bin(op, std::move(lhs), parse_term(), line);
  }
}

ast::ExprPtr Parser::parse_term() {
  ExprPtr lhs = parse_factor();
  for (;;) {
    BinOp op;
    if (check(Tok::kStar)) op = BinOp::kMul;
    else if (check(Tok::kSlash)) op = BinOp::kDiv;
    else if (check(Tok::kMod)) op = BinOp::kMod;
    else return lhs;
    const int line = cur().line;
    advance();
    lhs = make_bin(op, std::move(lhs), parse_factor(), line);
  }
}

ast::ExprPtr Parser::parse_factor() {
  if (accept(Tok::kNot)) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->un_op = UnOp::kNot;
    e->line = cur().line;
    e->lhs = parse_factor();
    return e;
  }
  return parse_primary();
}

ast::ExprPtr Parser::parse_primary() {
  auto e = std::make_unique<Expr>();
  e->line = cur().line;
  if (check(Tok::kCharLit)) {
    e->kind = ExprKind::kCharLit;
    e->char_lit = logic_from_char(advance().text[0]);
    return e;
  }
  if (check(Tok::kStringLit)) {
    e->kind = ExprKind::kStringLit;
    e->string_lit = advance().text;
    return e;
  }
  if (check(Tok::kInt)) {
    e->kind = ExprKind::kIntLit;
    e->int_lit = advance().value;
    // Optional time unit (base: ns).
    if (check(Tok::kIdent)) {
      const std::string& u = cur().text;
      if (u == "ns") { advance(); }
      else if (u == "us") { e->int_lit *= 1000; advance(); }
      else if (u == "ms") { e->int_lit *= 1000000; advance(); }
      else if (u == "ps") {
        fail("sub-ns time units are not supported (base unit is 1 ns)");
      }
    }
    return e;
  }
  if (accept(Tok::kLParen)) {
    ExprPtr inner = parse_expr();
    expect(Tok::kRParen, "')'");
    return inner;
  }
  if (check(Tok::kIdent)) {
    std::string name = advance().text;
    if (accept(Tok::kTick)) {
      const std::string attr = expect_ident("attribute name");
      if (attr != "event")
        fail("unsupported attribute '" + attr + "' (only 'event)");
      e->kind = ExprKind::kAttrEvent;
      e->name = std::move(name);
      return e;
    }
    if (accept(Tok::kLParen)) {
      // call or indexed name
      if (name == "rising_edge" || name == "falling_edge" ||
          name == "to_integer" || name == "to_unsigned" ||
          name == "to_stdlogicvector" || name == "std_logic_vector" ||
          name == "unsigned") {
        e->kind = ExprKind::kCall;
        e->name = std::move(name);
        e->lhs = parse_expr();
        if (accept(Tok::kComma)) e->rhs = parse_expr();  // to_unsigned(x, n)
        expect(Tok::kRParen, "')'");
        return e;
      }
      e->kind = ExprKind::kIndex;
      e->name = std::move(name);
      e->rhs = parse_expr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    e->kind = ExprKind::kName;
    e->name = std::move(name);
    return e;
  }
  fail("expected expression");
}

}  // namespace vsim::fe
