// Abstract syntax tree for the VHDL subset.
//
// Supported constructs (see README "VHDL subset" for the full list):
//   entity/architecture, port (in/out) and signal declarations of types
//   std_logic / std_logic_vector / integer / boolean, component
//   declaration + instantiation (named and positional port maps),
//   process statements (sensitivity list or explicit waits), concurrent
//   signal assignment (simple and conditional), sequential statements
//   (signal/variable assignment incl. `after`/`transport`, if/elsif/else,
//   case, for/while loops, wait on/until/for, null, report), expressions
//   with logical/relational/adding operators, indexing, concatenation,
//   'event attribute and rising_edge/falling_edge calls.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logic.h"
#include "common/virtual_time.h"

namespace vsim::fe::ast {

// ---------------------------------------------------------------- types

enum class TypeKind : std::uint8_t {
  kStdLogic,
  kStdLogicVector,
  kInteger,
  kBoolean,
};

struct Type {
  TypeKind kind = TypeKind::kStdLogic;
  // Vector bounds (std_logic_vector only).  `downto` normalises access:
  // element i of the LogicVector corresponds to the *leftmost* bound.
  int left = 0;
  int right = 0;
  bool downto = true;

  [[nodiscard]] std::size_t width() const {
    if (kind != TypeKind::kStdLogicVector) return 1;
    return static_cast<std::size_t>(downto ? left - right + 1
                                           : right - left + 1);
  }
  /// Maps a VHDL index to a LogicVector position (0 = leftmost).
  [[nodiscard]] std::size_t position(std::int64_t idx) const {
    return static_cast<std::size_t>(downto ? left - idx : idx - left);
  }
};

// ---------------------------------------------------------- expressions

enum class BinOp : std::uint8_t {
  kAnd, kOr, kNand, kNor, kXor, kXnor,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAdd, kSub, kConcat, kMul, kMod, kDiv,
};

enum class UnOp : std::uint8_t { kNot, kMinus };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kCharLit,    // '0'
  kStringLit,  // "0101"
  kIntLit,     // 42
  kName,       // identifier (signal, variable, constant, loop var)
  kIndex,      // name(expr)
  kBinary,
  kUnary,
  kAttrEvent,  // name'event
  kCall,       // rising_edge(name), falling_edge(name), to_integer(name)
};

struct Expr {
  ExprKind kind;
  int line = 0;
  // literals
  Logic char_lit = Logic::kU;
  std::string string_lit;
  std::int64_t int_lit = 0;
  // names / calls
  std::string name;
  // composite
  BinOp bin_op = BinOp::kAnd;
  UnOp un_op = UnOp::kNot;
  ExprPtr lhs, rhs;   // binary; unary/index/call use lhs (and rhs for index)
};

// ----------------------------------------------------------- statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

enum class StmtKind : std::uint8_t {
  kSignalAssign,  // target <= [transport] expr [after t] ;
  kVarAssign,     // target := expr ;
  kIf,
  kCase,
  kForLoop,
  kWhileLoop,
  kWait,
  kNull,
  kReport,
};

struct CaseAlt {
  std::vector<ExprPtr> choices;  // empty = others
  StmtList body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  // assignments
  std::string target;
  ExprPtr target_index;  // non-null for indexed targets
  ExprPtr value;
  ExprPtr after;      // delay expression (time units), may be null
  bool transport = false;
  // if
  ExprPtr cond;       // also while condition / wait-until condition
  StmtList then_body;
  StmtList else_body;  // elsif chains are nested if-statements here
  // case
  ExprPtr selector;
  std::vector<CaseAlt> alts;
  // for
  std::string loop_var;
  ExprPtr from, to;
  bool reverse = false;  // downto
  StmtList body;
  // wait
  std::vector<std::string> wait_on;  // signal names; empty + no cond/time = forever
  ExprPtr wait_time;                 // wait for <expr>
  // report
  std::string message;
};

// ---------------------------------------------------------- design units

struct Decl {
  std::string name;
  Type type;
  ExprPtr init;  // optional default value
  bool is_constant = false;
};

enum class PortDir : std::uint8_t { kIn, kOut, kInout };

struct Port {
  std::string name;
  PortDir dir = PortDir::kIn;
  Type type;
};

struct ProcessStmt {
  std::string label;
  std::vector<std::string> sensitivity;  // empty = explicit waits inside
  std::vector<Decl> variables;
  StmtList body;
  int line = 0;
};

struct ConcurrentAssign {
  std::string target;
  ExprPtr target_index;
  // value when cond; chained: (value_i when cond_i else)* value_n
  struct Arm {
    ExprPtr value;
    ExprPtr cond;  // null on the final arm
    ExprPtr after;
  };
  std::vector<Arm> arms;
  bool transport = false;
  int line = 0;
};

struct Instance {
  std::string label;
  std::string component;  // component/entity name
  // formal -> actual (signal name); positional maps use formals in order
  std::vector<std::pair<std::string, std::string>> port_map;
  int line = 0;
};

struct Entity {
  std::string name;
  std::vector<Port> ports;
};

/// `label: for i in a to b generate ... end generate;` -- the loop variable
/// becomes an elaboration-time constant inside the replicated body.
struct GenerateStmt {
  std::string label;
  std::string var;
  ExprPtr from, to;
  bool reverse = false;
  std::vector<ProcessStmt> processes;
  std::vector<ConcurrentAssign> assigns;
  std::vector<Instance> instances;
  std::vector<std::unique_ptr<GenerateStmt>> generates;
  int line = 0;
};

struct Architecture {
  std::string name;
  std::string entity;
  std::vector<Decl> signals;
  std::vector<Entity> components;  // component declarations
  std::vector<ProcessStmt> processes;
  std::vector<ConcurrentAssign> assigns;
  std::vector<Instance> instances;
  std::vector<std::unique_ptr<GenerateStmt>> generates;
};

/// Deep copy of an expression tree.
[[nodiscard]] ExprPtr clone(const Expr& e);

struct DesignFile {
  std::vector<Entity> entities;
  std::vector<Architecture> architectures;

  [[nodiscard]] const Entity* find_entity(const std::string& name) const {
    for (const auto& e : entities)
      if (e.name == name) return &e;
    return nullptr;
  }
  [[nodiscard]] const Architecture* find_arch(const std::string& ent) const {
    // Last architecture of an entity wins (mirrors library binding).
    const Architecture* found = nullptr;
    for (const auto& a : architectures)
      if (a.entity == ent) found = &a;
    return found;
  }
};

}  // namespace vsim::fe::ast
