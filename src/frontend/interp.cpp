#include "frontend/interp.h"

#include <cstdio>

namespace vsim::fe {

using ast::Expr;
using ast::ExprKind;

bool Value::truthy() const {
  switch (kind) {
    case Kind::kBool: return b;
    case Kind::kInt: return i != 0;
    case Kind::kBits: return to_x01(bits.scalar()) == Logic::k1;
  }
  return false;
}

bool Value::equals(const Value& o) const {
  if (kind == Kind::kBits && o.kind == Kind::kBits) return bits == o.bits;
  if (kind == Kind::kInt && o.kind == Kind::kInt) return i == o.i;
  if (kind == Kind::kBool && o.kind == Kind::kBool) return b == o.b;
  // int vs bits: compare as unsigned when convertible
  if (kind == Kind::kBits && o.kind == Kind::kInt) {
    const auto r = bits.to_uint();
    return r.ok && static_cast<std::int64_t>(r.value) == o.i;
  }
  if (kind == Kind::kInt && o.kind == Kind::kBits) return o.equals(*this);
  return false;
}

std::string Value::str() const {
  switch (kind) {
    case Kind::kBool: return b ? "true" : "false";
    case Kind::kInt: return std::to_string(i);
    case Kind::kBits: return bits.str();
  }
  return "?";
}

InterpBody::InterpBody(std::shared_ptr<const Program> prog)
    : prog_(std::move(prog)),
      vars_(prog_->var_init),
      driven_(prog_->out_init) {}

namespace {

std::int64_t as_int(const Value& v, int line) {
  switch (v.kind) {
    case Value::Kind::kInt: return v.i;
    case Value::Kind::kBool: return v.b ? 1 : 0;
    case Value::Kind::kBits: {
      const auto r = v.bits.to_uint();
      if (!r.ok)
        throw ElabError("line " + std::to_string(line) +
                        ": vector with non-01 bits used as integer");
      return static_cast<std::int64_t>(r.value);
    }
  }
  return 0;
}

LogicVector as_bits(const Value& v, std::size_t width_hint = 0) {
  if (v.kind == Value::Kind::kBits) return v.bits;
  if (v.kind == Value::Kind::kBool)
    return LogicVector{v.b ? Logic::k1 : Logic::k0};
  const std::size_t w = width_hint ? width_hint : 32;
  return LogicVector::from_uint(static_cast<std::uint64_t>(v.i), w);
}

Value apply_logic_op(ast::BinOp op, const Value& a, const Value& b,
                     int line) {
  if (a.kind == Value::Kind::kBool || b.kind == Value::Kind::kBool) {
    const bool x = a.truthy(), y = b.truthy();
    switch (op) {
      case ast::BinOp::kAnd: return Value::of_bool(x && y);
      case ast::BinOp::kOr: return Value::of_bool(x || y);
      case ast::BinOp::kNand: return Value::of_bool(!(x && y));
      case ast::BinOp::kNor: return Value::of_bool(!(x || y));
      case ast::BinOp::kXor: return Value::of_bool(x != y);
      case ast::BinOp::kXnor: return Value::of_bool(x == y);
      default: break;
    }
  }
  const LogicVector va = as_bits(a), vb = as_bits(b);
  if (va.size() != vb.size())
    throw ElabError("line " + std::to_string(line) +
                    ": operand width mismatch (" +
                    std::to_string(va.size()) + " vs " +
                    std::to_string(vb.size()) + ")");
  LogicVector out(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    Logic r;
    switch (op) {
      case ast::BinOp::kAnd: r = logic_and(va.at(i), vb.at(i)); break;
      case ast::BinOp::kOr: r = logic_or(va.at(i), vb.at(i)); break;
      case ast::BinOp::kNand: r = logic_nand(va.at(i), vb.at(i)); break;
      case ast::BinOp::kNor: r = logic_nor(va.at(i), vb.at(i)); break;
      case ast::BinOp::kXor: r = logic_xor(va.at(i), vb.at(i)); break;
      case ast::BinOp::kXnor: r = logic_xnor(va.at(i), vb.at(i)); break;
      default: r = Logic::kX; break;
    }
    out.set(i, r);
  }
  return Value::of_bits(std::move(out));
}

Value apply_add_op(ast::BinOp op, const Value& a, const Value& b, int line) {
  // Vector arithmetic: unsigned with wraparound at the vector width
  // (numeric_std behaviour for `unsigned`).
  if (a.kind == Value::Kind::kBits || b.kind == Value::Kind::kBits) {
    const std::size_t w =
        a.kind == Value::Kind::kBits ? a.bits.size() : b.bits.size();
    const std::uint64_t x =
        static_cast<std::uint64_t>(as_int(a, line));
    const std::uint64_t y =
        static_cast<std::uint64_t>(as_int(b, line));
    std::uint64_t r = 0;
    switch (op) {
      case ast::BinOp::kAdd: r = x + y; break;
      case ast::BinOp::kSub: r = x - y; break;
      case ast::BinOp::kMul: r = x * y; break;
      case ast::BinOp::kMod:
        r = y == 0 ? 0 : x % y;
        break;
      case ast::BinOp::kDiv:
        r = y == 0 ? 0 : x / y;
        break;
      default: break;
    }
    if (w < 64) r &= (1ull << w) - 1;
    return Value::of_bits(LogicVector::from_uint(r, w));
  }
  const std::int64_t x = as_int(a, line), y = as_int(b, line);
  switch (op) {
    case ast::BinOp::kAdd: return Value::of_int(x + y);
    case ast::BinOp::kSub: return Value::of_int(x - y);
    case ast::BinOp::kMul: return Value::of_int(x * y);
    case ast::BinOp::kMod:
      return Value::of_int(y == 0 ? 0 : ((x % y) + y) % y);
    case ast::BinOp::kDiv:
      return Value::of_int(y == 0 ? 0 : x / y);
    default: break;
  }
  return Value::of_int(0);
}

Value apply_rel_op(ast::BinOp op, const Value& a, const Value& b, int line) {
  if (op == ast::BinOp::kEq) return Value::of_bool(a.equals(b));
  if (op == ast::BinOp::kNeq) return Value::of_bool(!a.equals(b));
  const std::int64_t x = as_int(a, line), y = as_int(b, line);
  switch (op) {
    case ast::BinOp::kLt: return Value::of_bool(x < y);
    case ast::BinOp::kLe: return Value::of_bool(x <= y);
    case ast::BinOp::kGt: return Value::of_bool(x > y);
    case ast::BinOp::kGe: return Value::of_bool(x >= y);
    default: break;
  }
  return Value::of_bool(false);
}

}  // namespace

Value InterpBody::eval(const Expr& e, const vhdl::ProcessApi& api) const {
  switch (e.kind) {
    case ExprKind::kCharLit:
      return Value::of_bits(LogicVector{e.char_lit});
    case ExprKind::kStringLit:
      return Value::of_bits(LogicVector::from_string(e.string_lit));
    case ExprKind::kIntLit:
      return Value::of_int(e.int_lit);
    case ExprKind::kName: {
      const Slot& s = prog_->slots.at(&e);
      switch (s.kind) {
        case Slot::Kind::kSignalIn:
          return Value::of_bits(api.value(s.port));
        case Slot::Kind::kVariable:
        case Slot::Kind::kLoopVar:
          return vars_[static_cast<std::size_t>(s.index)];
        case Slot::Kind::kConstant:
          return s.constant;
      }
      return Value{};
    }
    case ExprKind::kIndex: {
      const Slot& s = prog_->slots.at(&e);
      const std::int64_t idx = as_int(eval(*e.rhs, api), e.line);
      LogicVector v;
      switch (s.kind) {
        case Slot::Kind::kSignalIn:
          v = api.value(s.port);
          break;
        case Slot::Kind::kVariable:
        case Slot::Kind::kLoopVar:
          v = as_bits(vars_[static_cast<std::size_t>(s.index)]);
          break;
        case Slot::Kind::kConstant:
          v = as_bits(s.constant);
          break;
      }
      const std::size_t pos = s.type.position(idx);
      if (pos >= v.size())
        throw ElabError("line " + std::to_string(e.line) +
                        ": index out of range");
      return Value::of_bits(LogicVector{v.at(pos)});
    }
    case ExprKind::kBinary: {
      const Value a = eval(*e.lhs, api);
      const Value b = eval(*e.rhs, api);
      switch (e.bin_op) {
        case ast::BinOp::kAnd: case ast::BinOp::kOr: case ast::BinOp::kNand:
        case ast::BinOp::kNor: case ast::BinOp::kXor: case ast::BinOp::kXnor:
          return apply_logic_op(e.bin_op, a, b, e.line);
        case ast::BinOp::kEq: case ast::BinOp::kNeq: case ast::BinOp::kLt:
        case ast::BinOp::kLe: case ast::BinOp::kGt: case ast::BinOp::kGe:
          return apply_rel_op(e.bin_op, a, b, e.line);
        case ast::BinOp::kAdd: case ast::BinOp::kSub: case ast::BinOp::kMul:
        case ast::BinOp::kMod: case ast::BinOp::kDiv:
          return apply_add_op(e.bin_op, a, b, e.line);
        case ast::BinOp::kConcat: {
          const LogicVector va = as_bits(a), vb = as_bits(b);
          LogicVector out(va.size() + vb.size());
          for (std::size_t i = 0; i < va.size(); ++i) out.set(i, va.at(i));
          for (std::size_t i = 0; i < vb.size(); ++i)
            out.set(va.size() + i, vb.at(i));
          return Value::of_bits(std::move(out));
        }
      }
      return Value{};
    }
    case ExprKind::kUnary: {
      const Value a = eval(*e.lhs, api);
      if (e.un_op == ast::UnOp::kMinus)
        return Value::of_int(-as_int(a, e.line));
      if (a.kind == Value::Kind::kBool) return Value::of_bool(!a.b);
      LogicVector v = as_bits(a);
      for (std::size_t i = 0; i < v.size(); ++i) v.set(i, logic_not(v.at(i)));
      return Value::of_bits(std::move(v));
    }
    case ExprKind::kAttrEvent: {
      const Slot& s = prog_->slots.at(&e);
      return Value::of_bool(api.event(s.port));
    }
    case ExprKind::kCall: {
      if (e.name == "rising_edge" || e.name == "falling_edge") {
        const Slot& s = prog_->slots.at(e.lhs.get());
        const Logic v = to_x01(api.value(s.port).scalar());
        const bool lvl = e.name == "rising_edge" ? v == Logic::k1
                                                 : v == Logic::k0;
        return Value::of_bool(api.event(s.port) && lvl);
      }
      if (e.name == "to_integer")
        return Value::of_int(as_int(eval(*e.lhs, api), e.line));
      if (e.name == "to_unsigned") {
        const std::int64_t v = as_int(eval(*e.lhs, api), e.line);
        const std::int64_t n = as_int(eval(*e.rhs, api), e.line);
        return Value::of_bits(LogicVector::from_uint(
            static_cast<std::uint64_t>(v), static_cast<std::size_t>(n)));
      }
      // std_logic_vector(x), unsigned(x), to_stdlogicvector(x): identity.
      return eval(*e.lhs, api);
    }
  }
  return Value{};
}

namespace {

void encode_value(bytes::Writer& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  w.u8(v.b ? 1 : 0);
  w.i64(v.i);
  w.lv(v.bits);
}

bool decode_value(bytes::Reader& r, Value* out) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Value::Kind::kBool)) return false;
  out->kind = static_cast<Value::Kind>(kind);
  out->b = r.u8() != 0;
  out->i = r.i64();
  out->bits = r.lv();
  return r.ok();
}

}  // namespace

bool InterpBody::encode_vars(bytes::Writer& w) const {
  w.u8(kBodyCodecInterp);
  w.u32(static_cast<std::uint32_t>(pc_));
  w.u32(static_cast<std::uint32_t>(vars_.size()));
  for (const Value& v : vars_) encode_value(w, v);
  w.u32(static_cast<std::uint32_t>(driven_.size()));
  for (const Value& v : driven_) encode_value(w, v);
  return true;
}

bool InterpBody::decode_vars(bytes::Reader& r) {
  if (r.u8() != kBodyCodecInterp) return false;
  const auto pc = static_cast<int>(r.u32());
  if (r.u32() != vars_.size()) return false;
  std::vector<Value> vars(vars_.size());
  for (Value& v : vars)
    if (!decode_value(r, &v)) return false;
  if (r.u32() != driven_.size()) return false;
  std::vector<Value> driven(driven_.size());
  for (Value& v : driven)
    if (!decode_value(r, &v)) return false;
  if (!r.ok()) return false;
  pc_ = pc;
  vars_ = std::move(vars);
  driven_ = std::move(driven);
  return true;
}

bool InterpBody::eval_condition(int cond_id,
                                const vhdl::ProcessApi& api) const {
  for (const auto& ins : prog_->instrs) {
    if (ins.op == Program::Instr::Op::kWait && ins.cond_id == cond_id) {
      return ins.value == nullptr || eval(*ins.value, api).truthy();
    }
  }
  return true;
}

void InterpBody::run(vhdl::ProcessApi& api) {
  // Execute until a wait suspends the process.  The instruction budget
  // guards against runaway while-loops in user code.
  constexpr int kMaxSteps = 1 << 20;
  for (int step = 0; step < kMaxSteps; ++step) {
    if (pc_ < 0 || static_cast<std::size_t>(pc_) >= prog_->instrs.size()) {
      api.wait_forever();
      return;
    }
    const Program::Instr& ins = prog_->instrs[static_cast<std::size_t>(pc_)];
    switch (ins.op) {
      case Program::Instr::Op::kAssignSig: {
        Value v = eval(*ins.value, api);
        const auto port = static_cast<std::size_t>(ins.a);
        const ast::Type& t = prog_->out_types[port];
        LogicVector whole;
        if (ins.index != nullptr) {
          // Indexed target: read-modify-write on the driven shadow copy.
          whole = as_bits(driven_[port], t.width());
          const std::int64_t idx = as_int(eval(*ins.index, api), ins.line);
          const std::size_t pos = t.position(idx);
          if (pos >= whole.size())
            throw ElabError("line " + std::to_string(ins.line) +
                            ": index out of range in assignment");
          whole.set(pos, as_bits(v).scalar());
        } else {
          whole = as_bits(v, t.width());
          if (whole.size() != t.width())
            throw ElabError("line " + std::to_string(ins.line) +
                            ": width mismatch in signal assignment");
        }
        driven_[port] = Value::of_bits(whole);
        const PhysTime delay =
            ins.after ? as_int(eval(*ins.after, api), ins.line) : 0;
        api.assign(ins.a, std::move(whole), delay, ins.transport);
        ++pc_;
        break;
      }
      case Program::Instr::Op::kAssignVar: {
        Value v = eval(*ins.value, api);
        const auto slot = static_cast<std::size_t>(ins.a);
        if (ins.index != nullptr) {
          const ast::Type& t = prog_->var_types[slot];
          LogicVector whole = as_bits(vars_[slot], t.width());
          const std::int64_t idx = as_int(eval(*ins.index, api), ins.line);
          const std::size_t pos = t.position(idx);
          if (pos >= whole.size())
            throw ElabError("line " + std::to_string(ins.line) +
                            ": index out of range in assignment");
          whole.set(pos, as_bits(v).scalar());
          vars_[slot] = Value::of_bits(std::move(whole));
        } else {
          // Preserve the declared kind (integer variables stay integers).
          if (vars_[slot].kind == Value::Kind::kInt &&
              v.kind != Value::Kind::kInt) {
            vars_[slot] = Value::of_int(as_int(v, ins.line));
          } else if (vars_[slot].kind == Value::Kind::kBool &&
                     v.kind != Value::Kind::kBool) {
            vars_[slot] = Value::of_bool(v.truthy());
          } else {
            vars_[slot] = std::move(v);
          }
        }
        ++pc_;
        break;
      }
      case Program::Instr::Op::kBranchFalse:
        pc_ = eval(*ins.value, api).truthy() ? pc_ + 1 : ins.a;
        break;
      case Program::Instr::Op::kJump:
        pc_ = ins.a;
        break;
      case Program::Instr::Op::kWait: {
        const int resume = pc_ + 1;
        pc_ = resume;
        std::optional<PhysTime> timeout;
        if (ins.after != nullptr)
          timeout = as_int(eval(*ins.after, api), ins.line);
        if (ins.wait_ports.empty() && !timeout.has_value()) {
          api.wait_forever();
        } else if (ins.wait_ports.empty()) {
          api.wait_for(*timeout);
        } else {
          api.wait_on(ins.wait_ports, ins.cond_id, timeout);
        }
        return;
      }
      case Program::Instr::Op::kReport:
        std::fprintf(stderr, "[%s @ %s] %s\n", prog_->name.c_str(),
                     api.now().str().c_str(), ins.message.c_str());
        ++pc_;
        break;
      case Program::Instr::Op::kHalt:
        api.wait_forever();
        return;
    }
  }
  throw ElabError("process " + prog_->name +
                  " exceeded the instruction budget without waiting "
                  "(possible infinite loop without wait)");
}

}  // namespace vsim::fe
