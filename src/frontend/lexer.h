// Lexer for the VHDL subset (case-insensitive identifiers/keywords,
// VHDL "--" comments, character and string literals, time units).
#pragma once

#include <stdexcept>
#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace vsim::fe {

/// Thrown on any lexical or syntactic error, with line/column context.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line, int col)
      : std::runtime_error("line " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg),
        line_(line),
        col_(col) {}
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  int line_;
  int col_;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  /// Tokenises the whole input (appends a kEof token).
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance();
  void skip_ws_and_comments();
  Token next();
  Token make(Tok kind, std::string text = {});

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace vsim::fe
