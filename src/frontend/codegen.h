// Ahead-of-time native backend for VHDL process bodies.
//
// The paper compiled each VHDL process into a C++ class whose run() holds
// the sequential statement part; InterpBody (interp.h) executes the same
// Program as bytecode.  This module closes the gap: codegen_source() emits a
// self-contained C++ translation unit from a compiled Program, make_body()
// compiles it into a shared object with the system compiler (cached by a
// hash of the generated source under $VSIM_CODEGEN_CACHE, default
// `.vsim-codegen/`), dlopen()s it, and wraps it in a CompiledBody that
// implements the same ProcessBody interface as InterpBody -- including the
// explicit (program counter, variables) suspension state, so Time Warp
// snapshots stay plain copies and the checkpoint codec is unchanged.
//
// The interpreter remains the executable reference semantics: every helper
// in the generated runtime mirrors interp.cpp operation for operation
// (IEEE 1164 tables, width checks, wraparound arithmetic, error messages),
// and tests/test_codegen_diff.cpp holds the two backends bit-identical over
// a seeded random program matrix.
//
// When native compilation is unavailable -- no toolchain on PATH, a
// sanitizer build (an uninstrumented .so would run under TSan/ASan without
// instrumentation), or a program outside the generator's static width cap --
// make_body() falls back to InterpBody with a one-time stderr notice, so
// `VSIM_BACKEND=native` is always safe to set.
#pragma once

#include <memory>
#include <string>

#include "frontend/interp.h"

namespace vsim::fe {

/// Which ProcessBody implementation the elaborator should build.
enum class Backend : std::uint8_t {
  kAuto,    ///< resolve from $VSIM_BACKEND at make_body() time
  kInterp,  ///< bytecode interpreter (the reference semantics)
  kNative,  ///< AOT-compiled shared object (falls back to interp)
};

/// $VSIM_BACKEND: "native" -> kNative, "interp"/unset -> kInterp; anything
/// else warns once and means kInterp.
[[nodiscard]] Backend backend_from_env();

/// Process-wide codegen accounting.  Folded into RunStats.metrics by
/// pdes::absorb_run_stats through the obs process-global counters, so the
/// values a run reports are the totals as of that run's end.
struct CodegenStats {
  std::uint64_t native_bodies = 0;     ///< bodies running compiled code
  std::uint64_t cache_hits = 0;        ///< memory- or disk-cache .so reuses
  std::uint64_t compiles = 0;          ///< actual compiler invocations
  std::uint64_t interp_fallbacks = 0;  ///< native requested, interp delivered
  double max_compile_ms = 0.0;         ///< slowest single .so compile
};
[[nodiscard]] CodegenStats codegen_stats();

/// Emits the self-contained C++ translation unit for one Program
/// (deterministic for a given Program; exposed for tests and for cache-key
/// hashing).  Throws ElabError when the program cannot be compiled natively
/// (e.g. a vector width beyond the static capacity bound).
[[nodiscard]] std::string codegen_source(const Program& prog);

/// True when `body` executes compiled native code (vs the interpreter).
[[nodiscard]] bool is_native_body(const vhdl::ProcessBody& body);

/// Builds the ProcessBody for `prog` under the requested backend.  kNative
/// returns a CompiledBody when the toolchain cooperates and an InterpBody
/// (with a one-time notice + fallback counter) otherwise; kInterp always
/// returns an InterpBody.
[[nodiscard]] std::unique_ptr<vhdl::ProcessBody> make_body(
    std::shared_ptr<const Program> prog, Backend backend);

}  // namespace vsim::fe
