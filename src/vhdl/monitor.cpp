#include "vhdl/monitor.h"

#include "vhdl/events.h"

namespace vsim::vhdl {

TraceRecorder::TraceRecorder(Design& design,
                             const std::vector<SignalId>& signals) {
  auto lp = std::make_unique<MonitorLp>("$monitor");
  MonitorLp* raw = lp.get();
  monitor_id_ = design.graph().add(std::move(lp));
  traces_.resize(signals.size());
  names_.reserve(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    SignalLp& s = design.signal(signals[i]);
    s.add_reader(monitor_id_, static_cast<int>(i));
    names_.push_back(s.name());
  }
  (void)raw;
}

std::function<void(const pdes::Event&)> TraceRecorder::hook() {
  return [this](const pdes::Event& ev) {
    // inner_dst() sees through LP clustering: in a fused graph the committed
    // event's dst is the ClusterLp holding the monitor, and the flat monitor
    // id rides in ev.sub.  Flat runs are unchanged (sub == kInvalidLp).
    if (pdes::inner_dst(ev) != monitor_id_ || ev.kind != kUpdate) return;
    std::lock_guard<std::mutex> lock(mutex_);
    traces_[static_cast<std::size_t>(ev.payload.port)].push_back(
        {ev.ts, ev.payload.bits});
  };
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& t : traces_) t.clear();
}

std::string TraceRecorder::diff(const TraceRecorder& a,
                                const TraceRecorder& b) {
  if (a.traces_.size() != b.traces_.size()) return "different signal counts";
  for (std::size_t i = 0; i < a.traces_.size(); ++i) {
    const auto& ta = a.traces_[i];
    const auto& tb = b.traces_[i];
    const std::size_t n = std::min(ta.size(), tb.size());
    for (std::size_t j = 0; j < n; ++j) {
      if (!(ta[j] == tb[j])) {
        return "signal " + a.names_[i] + " entry " + std::to_string(j) +
               ": " + ta[j].ts.str() + "=" + ta[j].value.str() + " vs " +
               tb[j].ts.str() + "=" + tb[j].value.str();
      }
    }
    if (ta.size() != tb.size()) {
      return "signal " + a.names_[i] + " length " +
             std::to_string(ta.size()) + " vs " + std::to_string(tb.size());
    }
  }
  return {};
}

}  // namespace vsim::vhdl
