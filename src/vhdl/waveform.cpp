#include "vhdl/waveform.h"

namespace vsim::vhdl {

void Waveform::schedule(VirtualTime maturity, LogicVector value,
                        bool transport, VirtualTime reject_from) {
  // Delete every transaction maturing at or after the new one.
  while (!queue_.empty() && queue_.back().maturity >= maturity)
    queue_.pop_back();

  if (!transport) {
    // Inertial rejection: scanning backwards from the new transaction, keep
    // the maximal run of equal-valued transactions immediately preceding
    // it; delete everything older inside the window (LRM 8.4.1).
    std::size_t keep_from = queue_.size();
    while (keep_from > 0 &&
           queue_[keep_from - 1].maturity > reject_from &&
           queue_[keep_from - 1].value == value) {
      --keep_from;
    }
    std::size_t erase_from = keep_from;
    // Everything in the window older than the kept run is rejected.
    std::size_t erase_begin = erase_from;
    while (erase_begin > 0 &&
           queue_[erase_begin - 1].maturity > reject_from) {
      --erase_begin;
    }
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(erase_begin),
                 queue_.begin() + static_cast<std::ptrdiff_t>(erase_from));
  }

  queue_.push_back({maturity, std::move(value)});
}

void Waveform::encode(vsim::bytes::Writer& w) const {
  w.lv(driving_value_);
  w.u64(queue_.size());
  for (const Transaction& t : queue_) {
    w.vt(t.maturity);
    w.lv(t.value);
  }
}

Waveform Waveform::decode(vsim::bytes::Reader& r) {
  Waveform w(r.lv());
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Transaction t;
    t.maturity = r.vt();
    t.value = r.lv();
    w.queue_.push_back(std::move(t));
  }
  return w;
}

bool Waveform::apply_matured(VirtualTime now) {
  bool changed = false;
  while (!queue_.empty() && queue_.front().maturity <= now) {
    if (!(queue_.front().value == driving_value_)) {
      driving_value_ = std::move(queue_.front().value);
      changed = true;
    }
    queue_.pop_front();
  }
  return changed;
}

}  // namespace vsim::vhdl
