#include "vhdl/process_lp.h"

#include <cassert>

namespace vsim::vhdl {
namespace {

struct ProcessState final : pdes::LpState {
  std::unique_ptr<ProcessBody> body;
  std::vector<LogicVector> locals;
  std::vector<VirtualTime> last_event;
  bool waiting = false;
  std::vector<int> sensitivity;
  int cond_id = -1;
  std::int64_t epoch = 0;
  VirtualTime exec_scheduled = kTimeInf;
};

}  // namespace

// Ephemeral view handed to the body during run() / condition evaluation.
class ProcessLp::ApiImpl final : public ProcessApi {
 public:
  ApiImpl(ProcessLp& lp, pdes::SimContext* ctx, VirtualTime now)
      : lp_(lp), ctx_(ctx), now_(now) {}

  [[nodiscard]] const LogicVector& value(int in_port) const override {
    return lp_.locals_[static_cast<std::size_t>(in_port)];
  }
  [[nodiscard]] bool event(int in_port) const override {
    // Updates of the triggering delta cycle arrived in the immediately
    // preceding Update phase (lt - 1).
    const VirtualTime& e = lp_.last_event_[static_cast<std::size_t>(in_port)];
    return e.pt == now_.pt && e.lt == now_.lt - 1;
  }
  [[nodiscard]] VirtualTime now() const override { return now_; }

  void assign(int out_port, LogicVector value, PhysTime delay,
              bool transport) override {
    assert(ctx_ && "assign() is only valid inside run()");
    const auto& [sig, driver] = lp_.outputs_[static_cast<std::size_t>(out_port)];
    pdes::Payload p;
    p.port = driver;
    p.scalar = delay;
    p.bits = std::move(value);
    ctx_->send(sig, now_, transport ? kAssignTransport : kAssignInertial,
               std::move(p));
  }

  void wait_on(std::vector<int> ports, int cond_id,
               std::optional<PhysTime> timeout) override {
    lp_.wait_.waiting = true;
    lp_.wait_.sensitivity = std::move(ports);
    lp_.wait_.cond_id = cond_id;
    timeout_ = timeout;
  }
  void wait_for(PhysTime timeout) override {
    lp_.wait_ = WaitSpec{};
    timeout_ = timeout;
  }
  void wait_forever() override {
    lp_.wait_ = WaitSpec{};
    timeout_.reset();
  }

  [[nodiscard]] std::optional<PhysTime> timeout() const { return timeout_; }

 private:
  ProcessLp& lp_;
  pdes::SimContext* ctx_;
  VirtualTime now_;
  std::optional<PhysTime> timeout_;
};

int ProcessLp::add_input(LogicVector initial) {
  locals_.push_back(std::move(initial));
  last_event_.push_back({-1, 0});
  return static_cast<int>(locals_.size()) - 1;
}

int ProcessLp::add_output(pdes::LpId signal, int driver_index) {
  outputs_.emplace_back(signal, driver_index);
  return static_cast<int>(outputs_.size()) - 1;
}

double ProcessLp::event_cost(const pdes::Event& ev) const {
  // Resuming the sequential body costs more than bookkeeping an update.
  return (ev.kind == kExecute || ev.kind == kTimeout || ev.kind == kInit)
             ? 2.0
             : 1.0;
}

void ProcessLp::schedule_execute(pdes::SimContext& ctx, VirtualTime ts) {
  // Multiple simultaneous signal updates must trigger a single execution
  // (their order is irrelevant; the run happens after all of them).
  if (exec_scheduled_ == ts) return;
  exec_scheduled_ = ts;
  pdes::Payload p;
  p.scalar = epoch_;
  ctx.send(id(), ts, kExecute, std::move(p));
}

void ProcessLp::execute(pdes::SimContext& ctx, VirtualTime now,
                        bool from_sensitivity) {
  assert(now.phase() == Phase::kAssign);
  exec_scheduled_ = kTimeInf;
  if (from_sensitivity && wait_.cond_id >= 0) {
    // `wait until`: the condition may have become false again due to a
    // later update in the same delta cycle; re-check before resuming.
    ApiImpl view(*this, nullptr, now);
    if (!body_->eval_condition(wait_.cond_id, view)) return;
  }
  ++epoch_;  // cancels any pending timeout of the wait we are leaving
  wait_ = WaitSpec{};
  ApiImpl api(*this, &ctx, now);
  body_->run(api);
  if (api.timeout()) {
    const PhysTime t = *api.timeout();
    const VirtualTime ts =
        t == 0 ? now.next_delta() : now.after(t, Phase::kAssign);
    pdes::Payload p;
    p.scalar = epoch_;
    ctx.send(id(), ts, kTimeout, std::move(p));
  }
}

void ProcessLp::simulate(const pdes::Event& ev, pdes::SimContext& ctx) {
  const VirtualTime now = ev.ts;
  switch (ev.kind) {
    case kUpdate: {
      assert(now.phase() == Phase::kEffective);
      const auto port = static_cast<std::size_t>(ev.payload.port);
      assert(port < locals_.size());
      if (!(locals_[port] == ev.payload.bits)) {
        locals_[port] = ev.payload.bits;
        last_event_[port] = now;
      }
      if (wait_.waiting) {
        bool sensitive = false;
        for (int s : wait_.sensitivity) {
          if (static_cast<std::size_t>(s) == port) {
            sensitive = true;
            break;
          }
        }
        if (sensitive) {
          ApiImpl view(*this, nullptr, now);
          if (wait_.cond_id < 0 ||
              body_->eval_condition(wait_.cond_id, view)) {
            schedule_execute(ctx, now.next_phase());
          }
        }
      }
      break;
    }
    case kExecute:
      if (ev.payload.scalar != epoch_) break;  // stale resume
      execute(ctx, now, /*from_sensitivity=*/true);
      break;
    case kTimeout:
      if (ev.payload.scalar != epoch_) break;  // cancelled timeout
      execute(ctx, now, /*from_sensitivity=*/false);
      break;
    case kInit:
      execute(ctx, now, /*from_sensitivity=*/false);
      break;
    default:
      assert(false && "unexpected event kind at process LP");
  }
}

std::unique_ptr<pdes::LpState> ProcessLp::save_state() const {
  auto s = std::make_unique<ProcessState>();
  s->body = body_->clone();
  s->locals = locals_;
  s->last_event = last_event_;
  s->waiting = wait_.waiting;
  s->sensitivity = wait_.sensitivity;
  s->cond_id = wait_.cond_id;
  s->epoch = epoch_;
  s->exec_scheduled = exec_scheduled_;
  return s;
}

void ProcessLp::restore_state(const pdes::LpState& s) {
  const auto& ps = static_cast<const ProcessState&>(s);
  body_ = ps.body->clone();
  locals_ = ps.locals;
  last_event_ = ps.last_event;
  wait_.waiting = ps.waiting;
  wait_.sensitivity = ps.sensitivity;
  wait_.cond_id = ps.cond_id;
  epoch_ = ps.epoch;
  exec_scheduled_ = ps.exec_scheduled;
}

bool ProcessLp::encode_state(const pdes::LpState& s, bytes::Writer& w) const {
  const auto& ps = static_cast<const ProcessState&>(s);
  if (!ps.body->encode_vars(w)) return false;
  w.u64(ps.locals.size());
  for (const LogicVector& v : ps.locals) w.lv(v);
  w.u64(ps.last_event.size());
  for (const VirtualTime& t : ps.last_event) w.vt(t);
  w.u8(ps.waiting ? 1 : 0);
  w.u64(ps.sensitivity.size());
  for (int p : ps.sensitivity) w.u32(static_cast<std::uint32_t>(p));
  w.u32(static_cast<std::uint32_t>(ps.cond_id));
  w.i64(ps.epoch);
  w.vt(ps.exec_scheduled);
  return true;
}

std::unique_ptr<pdes::LpState> ProcessLp::decode_state(
    bytes::Reader& r) const {
  auto s = std::make_unique<ProcessState>();
  // The decoded body starts as a clone of the live one; decode_vars()
  // overwrites every mutable field with the checkpointed values.
  s->body = body_->clone();
  if (!s->body->decode_vars(r)) return nullptr;
  const std::uint64_t nloc = r.u64();
  if (!r.ok() || nloc > r.remaining()) return nullptr;
  s->locals.reserve(static_cast<std::size_t>(nloc));
  for (std::uint64_t i = 0; i < nloc && r.ok(); ++i)
    s->locals.push_back(r.lv());
  const std::uint64_t nev = r.u64();
  if (!r.ok() || nev > r.remaining()) return nullptr;
  s->last_event.reserve(static_cast<std::size_t>(nev));
  for (std::uint64_t i = 0; i < nev && r.ok(); ++i)
    s->last_event.push_back(r.vt());
  s->waiting = r.u8() != 0;
  const std::uint64_t nsens = r.u64();
  if (!r.ok() || nsens > r.remaining()) return nullptr;
  s->sensitivity.reserve(static_cast<std::size_t>(nsens));
  for (std::uint64_t i = 0; i < nsens && r.ok(); ++i)
    s->sensitivity.push_back(static_cast<int>(r.u32()));
  s->cond_id = static_cast<int>(r.u32());
  s->epoch = r.i64();
  s->exec_scheduled = r.vt();
  if (!r.ok()) return nullptr;
  return s;
}

}  // namespace vsim::vhdl
