// Projected output waveform of one signal driver (IEEE 1076 Sec. 8.4).
//
// A waveform is a sequence of pending transactions ordered by maturity
// time.  Signal assignments preempt pending transactions: transport delay
// deletes everything at or after the new transaction; inertial delay
// additionally sweeps the rejection window before it.
#pragma once

#include <deque>

#include "common/bytes.h"
#include "common/logic.h"
#include "common/virtual_time.h"

namespace vsim::vhdl {

struct Transaction {
  VirtualTime maturity;
  LogicVector value;
};

class Waveform {
 public:
  explicit Waveform(LogicVector initial)
      : driving_value_(std::move(initial)) {}

  /// Schedules a transaction for `value` maturing at `maturity`, preempting
  /// per the LRM: existing transactions at or after `maturity` are always
  /// deleted; with inertial delay, transactions inside the rejection window
  /// (`reject_from`, `maturity`) survive only if they belong to the maximal
  /// run immediately preceding the new transaction with the same value.
  void schedule(VirtualTime maturity, LogicVector value, bool transport,
                VirtualTime reject_from);

  /// Applies all transactions with maturity <= now to the driving value.
  /// Returns true if the driving value changed.
  bool apply_matured(VirtualTime now);

  [[nodiscard]] const LogicVector& driving_value() const {
    return driving_value_;
  }
  [[nodiscard]] const std::deque<Transaction>& pending() const {
    return queue_;
  }

  /// Byte codec (common/bytes.h layout) so signal checkpoints can cross
  /// process boundaries; decode trusts the reader's fail-soft bounds.
  void encode(vsim::bytes::Writer& w) const;
  [[nodiscard]] static Waveform decode(vsim::bytes::Reader& r);

 private:
  LogicVector driving_value_;
  std::deque<Transaction> queue_;  // ordered by maturity
};

}  // namespace vsim::vhdl
