// Signal trace recording.
//
// A MonitorLp is a passive reader attached to selected signals: it receives
// their effective-value broadcasts like any process would, but has no
// behaviour.  The actual trace is recorded from the engine's *commit*
// stream (not from speculative execution), so optimistic runs record
// exactly the committed history -- this is what makes traces comparable
// across engines and configurations.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "pdes/lp.h"
#include "vhdl/kernel.h"

namespace vsim::vhdl {

/// One recorded value change.
struct TraceEntry {
  VirtualTime ts;
  LogicVector value;
  friend bool operator==(const TraceEntry& a, const TraceEntry& b) {
    return a.ts == b.ts && a.value == b.value;
  }
};

class MonitorLp final : public pdes::LogicalProcess {
 public:
  explicit MonitorLp(std::string name) : LogicalProcess(std::move(name)) {}
  void simulate(const pdes::Event& ev, pdes::SimContext& ctx) override {
    (void)ev;
    (void)ctx;
  }
  [[nodiscard]] std::unique_ptr<pdes::LpState> save_state() const override {
    return std::make_unique<pdes::LpState>();
  }
  void restore_state(const pdes::LpState&) override {}
  // Stateless, so the byte codec is trivial -- but it must exist for the
  // distributed engine to ship checkpoints of designs with monitors.
  [[nodiscard]] bool encode_state(const pdes::LpState&,
                                  bytes::Writer&) const override {
    return true;
  }
  [[nodiscard]] std::unique_ptr<pdes::LpState> decode_state(
      bytes::Reader&) const override {
    return std::make_unique<pdes::LpState>();
  }
  [[nodiscard]] double event_cost(const pdes::Event&) const override {
    return 0.1;
  }
};

/// Attaches a monitor to a set of signals and collects their committed
/// traces.  Construct *before* Design::finalize(); install hook() as the
/// engine's commit hook.
class TraceRecorder {
 public:
  TraceRecorder(Design& design, const std::vector<SignalId>& signals);

  /// Feed this to SequentialEngine/MachineEngine/ThreadedEngine.
  [[nodiscard]] std::function<void(const pdes::Event&)> hook();

  [[nodiscard]] std::size_t num_signals() const { return traces_.size(); }
  [[nodiscard]] const std::vector<TraceEntry>& trace(std::size_t i) const {
    return traces_[i];
  }
  [[nodiscard]] const std::string& signal_name(std::size_t i) const {
    return names_[i];
  }
  void clear();

  /// Compares two recorders signal-by-signal; returns a human-readable
  /// description of the first difference, or empty if identical.
  static std::string diff(const TraceRecorder& a, const TraceRecorder& b);

 private:
  pdes::LpId monitor_id_ = pdes::kInvalidLp;
  std::vector<std::string> names_;
  std::vector<std::vector<TraceEntry>> traces_;
  std::mutex mutex_;
};

}  // namespace vsim::vhdl
