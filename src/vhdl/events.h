// Event kinds of the distributed VHDL simulation cycle (DATE 2000, Fig. 3).
//
// Phase discipline (lt mod 3): process Execute and signal Assign run at
// phase 0, driver updates at phase 1, resolution/effective broadcast and
// process Update at phase 2.  All cross-LP sends either keep the timestamp
// (Execute -> Assign, Effective -> Update) or advance it; all self-sends
// strictly advance it, so the LP graph has no zero-delay cycles at a single
// virtual time.
#pragma once

#include <cstdint>

namespace vsim::vhdl {

enum EventKind : std::int16_t {
  // process -> signal: a new transaction for one driver.
  // payload: port = driver index, scalar = delay (pt units), bits = value.
  kAssignInertial = 1,
  kAssignTransport = 2,
  // signal self: apply matured transactions to driving values.
  kDriving = 3,
  // signal self: apply the resolution function and broadcast.
  kEffective = 4,
  // signal -> process: new effective value.
  // payload: port = process input port, bits = value.
  kUpdate = 5,
  // process self: resume the sequential body.  scalar = wait epoch.
  kExecute = 6,
  // process self: wait-for timeout.  scalar = wait epoch.
  kTimeout = 7,
  // initial execution of every process at time (0,0).
  kInit = 8,
};

}  // namespace vsim::vhdl
