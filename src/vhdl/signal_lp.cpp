#include "vhdl/signal_lp.h"

#include <cassert>

namespace vsim::vhdl {
namespace {

struct SignalState final : pdes::LpState {
  std::vector<Waveform> drivers;
  LogicVector effective;
};

}  // namespace

int SignalLp::add_driver() {
  drivers_.emplace_back(initial_);
  masks_.emplace_back();
  return static_cast<int>(drivers_.size()) - 1;
}

void SignalLp::add_reader(pdes::LpId process, int in_port) {
  readers_.emplace_back(process, in_port);
}

void SignalLp::set_driver_mask(int driver, std::vector<bool> mask) {
  assert(static_cast<std::size_t>(driver) < masks_.size());
  assert(mask.size() == initial_.size());
  bool partial = false;
  for (bool m : mask) partial |= !m;
  masks_[static_cast<std::size_t>(driver)] = std::move(mask);
  has_partial_mask_ |= partial;
}

LogicVector SignalLp::resolve_drivers() const {
  std::vector<LogicVector> values;
  values.reserve(drivers_.size());
  for (const Waveform& w : drivers_) values.push_back(w.driving_value());
  if (resolver_) return resolver_(values);
  if (!has_partial_mask_) {
    // Default: IEEE 1164 resolution fold over all drivers.
    LogicVector acc = values.front();
    for (std::size_t i = 1; i < values.size(); ++i)
      acc = resolve(acc, values[i]);
    return acc;
  }
  // Per-element resolution over the drivers that actually drive each
  // element; an element with no driver keeps the signal's initial value.
  LogicVector out = initial_;
  for (std::size_t e = 0; e < out.size(); ++e) {
    bool any = false;
    Logic acc = Logic::kZ;
    for (std::size_t d = 0; d < values.size(); ++d) {
      if (!masks_[d].empty() && !masks_[d][e]) continue;
      acc = any ? resolve(acc, values[d].at(e)) : values[d].at(e);
      any = true;
    }
    if (any) out.set(e, acc);
  }
  return out;
}

void SignalLp::broadcast(pdes::SimContext& ctx, VirtualTime ts) {
  for (const auto& [proc, port] : readers_) {
    pdes::Payload p;
    p.port = port;
    p.bits = effective_;
    ctx.send(proc, ts, kUpdate, std::move(p));
  }
}

void SignalLp::simulate(const pdes::Event& ev, pdes::SimContext& ctx) {
  const VirtualTime now = ev.ts;
  switch (ev.kind) {
    case kAssignInertial:
    case kAssignTransport: {
      // Signal:Assign phase (lt % 3 == 0): append the transaction and
      // schedule its maturity in the Driving-value phase.
      assert(now.phase() == Phase::kAssign);
      const auto driver = static_cast<std::size_t>(ev.payload.port);
      assert(driver < drivers_.size());
      const PhysTime delay = ev.payload.scalar;
      const VirtualTime maturity =
          delay == 0 ? now.next_phase()
                     : now.after(delay, Phase::kDriving);
      drivers_[driver].schedule(maturity, ev.payload.bits,
                                ev.kind == kAssignTransport,
                                /*reject_from=*/now);
      // ctx.self() rather than ev.dst: inside a fused cluster the runtime
      // destination is the cluster, but this self-send must address the
      // signal's own flat id (the cluster context translates it back).
      ctx.send(ctx.self(), maturity, kDriving, {});
      break;
    }
    case kDriving: {
      // Signal:DrivingValue phase (lt % 3 == 1): mature transactions.
      assert(now.phase() == Phase::kDriving);
      bool changed = false;
      for (Waveform& w : drivers_) changed |= w.apply_matured(now);
      if (!changed) break;  // duplicate maturity events are no-ops
      if (is_resolved()) {
        // Another driver may mature at this same time; resolution must run
        // after all of them, in the next phase.
        ctx.send(ctx.self(), now.next_phase(), kEffective, {});
      } else {
        const LogicVector& v = drivers_.front().driving_value();
        if (!(v == effective_)) {
          effective_ = v;
          broadcast(ctx, now.next_phase());
        }
      }
      break;
    }
    case kEffective: {
      // Signal:Effective phase (lt % 3 == 2): resolve and broadcast at the
      // same virtual time (process Update shares this phase).
      assert(now.phase() == Phase::kEffective);
      LogicVector v = resolve_drivers();
      if (!(v == effective_)) {
        effective_ = std::move(v);
        broadcast(ctx, now);
      }
      break;
    }
    default:
      assert(false && "unexpected event kind at signal LP");
  }
}

std::unique_ptr<pdes::LpState> SignalLp::save_state() const {
  auto s = std::make_unique<SignalState>();
  s->drivers = drivers_;
  s->effective = effective_;
  return s;
}

void SignalLp::restore_state(const pdes::LpState& s) {
  const auto& ss = static_cast<const SignalState&>(s);
  drivers_ = ss.drivers;
  effective_ = ss.effective;
}

bool SignalLp::encode_state(const pdes::LpState& s, bytes::Writer& w) const {
  const auto& ss = static_cast<const SignalState&>(s);
  w.u64(ss.drivers.size());
  for (const Waveform& wave : ss.drivers) wave.encode(w);
  w.lv(ss.effective);
  return true;
}

std::unique_ptr<pdes::LpState> SignalLp::decode_state(bytes::Reader& r) const {
  auto s = std::make_unique<SignalState>();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n != drivers_.size()) return nullptr;
  s->drivers.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i)
    s->drivers.push_back(Waveform::decode(r));
  s->effective = r.lv();
  if (!r.ok()) return nullptr;
  return s;
}

}  // namespace vsim::vhdl
