#include "vhdl/kernel.h"

#include <cassert>
#include <stdexcept>

namespace vsim::vhdl {

SignalId Design::add_signal(const std::string& name, LogicVector initial) {
  auto lp = std::make_unique<SignalLp>(name, std::move(initial));
  SignalLp* raw = lp.get();
  graph_.add(std::move(lp));
  signals_.push_back(raw);
  const SignalId id = static_cast<SignalId>(signals_.size()) - 1;
  signal_names_.emplace(name, id);
  return id;
}

ProcessId Design::add_process(const std::string& name,
                              std::unique_ptr<ProcessBody> body) {
  auto lp = std::make_unique<ProcessLp>(name, std::move(body));
  ProcessLp* raw = lp.get();
  graph_.add(std::move(lp));
  processes_.push_back(raw);
  return static_cast<ProcessId>(processes_.size()) - 1;
}

int Design::connect_in(ProcessId proc, SignalId sig) {
  assert(!finalized_);
  ProcessLp& p = *processes_[proc];
  SignalLp& s = *signals_[sig];
  const int port = p.add_input(s.initial_value());
  s.add_reader(p.id(), port);
  return port;
}

int Design::connect_out(ProcessId proc, SignalId sig) {
  assert(!finalized_);
  ProcessLp& p = *processes_[proc];
  SignalLp& s = *signals_[sig];
  const int driver = s.add_driver();
  return p.add_output(s.id(), driver);
}

void Design::set_sync_hint(ProcessId proc, bool synchronous) {
  processes_[proc]->set_sync_hint(synchronous);
}

void Design::set_signal_sync_hint(SignalId sig, bool synchronous) {
  signals_[sig]->set_sync_hint(synchronous);
}

SignalId Design::find_signal(const std::string& name) const {
  auto it = signal_names_.find(name);
  if (it == signal_names_.end())
    throw std::out_of_range("no such signal: " + name);
  return it->second;
}

void Design::finalize() {
  assert(!finalized_);
  finalized_ = true;
  // Channel topology: signal -> each reader, process -> each driven signal.
  for (SignalLp* s : signals_) {
    for (const auto& [proc, port] : s->readers())
      graph_.add_channel(s->id(), proc);
  }
  for (ProcessLp* p : processes_) {
    for (const auto& [sig, driver] : p->outputs())
      graph_.add_channel(p->id(), sig);
  }
  // Every process executes once at time zero.
  for (ProcessLp* p : processes_)
    graph_.post_initial(p->id(), kTimeZero, kInit);
}

void Design::annotate_trace(obs::TraceSession& session) const {
  // Label table by LP id; resolved lazily at session flush.
  std::unordered_map<std::uint32_t, std::string> labels;
  for (const SignalLp* s : signals_) labels.emplace(s->id(), "sig " + s->name());
  for (const ProcessLp* p : processes_)
    labels.emplace(p->id(), "proc " + p->name());
  session.set_default_lp_labels(
      [labels = std::move(labels)](std::uint32_t id) -> std::string {
        auto it = labels.find(id);
        return it != labels.end() ? it->second : "lp " + std::to_string(id);
      });
}

}  // namespace vsim::vhdl
