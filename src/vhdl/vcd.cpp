#include "vhdl/vcd.h"
#include <bitset>
#include <cctype>

#include <algorithm>
#include <fstream>
#include <map>
#include <vector>

namespace vsim::vhdl {
namespace {

/// VCD is four-state: map the nine IEEE 1164 values onto 0/1/x/z.
char vcd_char(Logic v) {
  switch (v) {
    case Logic::k0:
    case Logic::kL:
      return '0';
    case Logic::k1:
    case Logic::kH:
      return '1';
    case Logic::kZ:
      return 'z';
    default:
      return 'x';
  }
}

/// Short printable identifier codes: '!' .. '~', then two characters.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

void emit_value(std::ostream& os, const LogicVector& v,
                const std::string& id) {
  if (v.size() == 1) {
    os << vcd_char(v.at(0)) << id << '\n';
  } else {
    os << 'b';
    for (std::size_t i = 0; i < v.size(); ++i) os << vcd_char(v.at(i));
    os << ' ' << id << '\n';
  }
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) out.push_back(std::isspace(static_cast<unsigned char>(c)) ? '_' : c);
  return out;
}

}  // namespace

void write_vcd(const TraceRecorder& recorder, std::ostream& os,
               const VcdOptions& options) {
  os << "$timescale " << options.timescale << " $end\n";
  os << "$scope module " << options.top_scope << " $end\n";
  std::vector<std::string> ids(recorder.num_signals());
  std::vector<std::size_t> widths(recorder.num_signals(), 1);
  for (std::size_t i = 0; i < recorder.num_signals(); ++i) {
    ids[i] = id_code(i);
    if (!recorder.trace(i).empty())
      widths[i] = recorder.trace(i).front().value.size();
    os << "$var wire " << widths[i] << ' ' << ids[i] << ' '
       << sanitize(recorder.signal_name(i)) << " $end\n";
  }
  const std::string delta_id = id_code(recorder.num_signals());
  if (options.emit_delta_counter)
    os << "$var integer 32 " << delta_id << " delta $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  // Merge all changes; within one physical time, the last delta wins.
  struct Change {
    VirtualTime ts;
    std::size_t sig;
    const LogicVector* value;
  };
  std::vector<Change> changes;
  for (std::size_t i = 0; i < recorder.num_signals(); ++i) {
    for (const TraceEntry& e : recorder.trace(i))
      changes.push_back({e.ts, i, &e.value});
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.sig < b.sig;
                   });

  os << "$dumpvars\n";
  for (std::size_t i = 0; i < recorder.num_signals(); ++i) {
    // Initial value: x of the right width (the first committed change
    // establishes the real value).
    emit_value(os, LogicVector(widths[i], Logic::kX), ids[i]);
  }
  os << "$end\n";

  std::size_t i = 0;
  while (i < changes.size()) {
    const PhysTime t = changes[i].ts.pt;
    os << '#' << t << '\n';
    // Final value per signal within this physical time.
    std::map<std::size_t, const LogicVector*> finals;
    LogicalTime max_lt = 0;
    while (i < changes.size() && changes[i].ts.pt == t) {
      finals[changes[i].sig] = changes[i].value;
      max_lt = std::max(max_lt, changes[i].ts.lt);
      ++i;
    }
    for (const auto& [sig, value] : finals) emit_value(os, *value, ids[sig]);
    if (options.emit_delta_counter)
      os << 'b' << std::bitset<32>(static_cast<unsigned long>(max_lt / 3))
                       .to_string()
         << ' ' << delta_id << '\n';
  }
}

bool write_vcd_file(const TraceRecorder& recorder, const std::string& path,
                    const VcdOptions& options) {
  std::ofstream f(path);
  if (!f) return false;
  write_vcd(recorder, f, options);
  return static_cast<bool>(f);
}

}  // namespace vsim::vhdl
