// Signal logical process (DATE 2000, Fig. 1).
//
// VHDL signals have complex semantics: multiple sources (one driver per
// source, each with a projected waveform), a resolution function, and
// multiple readers.  In a distributed simulation there is no shared memory
// to hold the signal, so each signal becomes an LP: it owns the drivers,
// applies the resolution function, and broadcasts the effective value to
// every reading process.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "pdes/lp.h"
#include "vhdl/events.h"
#include "vhdl/waveform.h"

namespace vsim::vhdl {

class SignalLp final : public pdes::LogicalProcess {
 public:
  /// Resolution function over all drivers' driving values.
  using Resolver = std::function<LogicVector(const std::vector<LogicVector>&)>;

  SignalLp(std::string name, LogicVector initial)
      : LogicalProcess(std::move(name)), initial_(std::move(initial)),
        effective_(initial_) {}

  // ---- wiring (before simulation starts) ----
  /// Adds a driver (one per source process); returns its index.
  int add_driver();
  /// Registers a reading process; updates arrive on its `in_port`.
  void add_reader(pdes::LpId process, int in_port);
  /// Installs a resolution function; signals with more than one driver use
  /// the IEEE 1164 `resolved` fold by default.
  void set_resolver(Resolver r) { resolver_ = std::move(r); }
  /// Declares which elements `driver` actually drives (VHDL: a process
  /// drives only the scalar subelements its assignments' longest static
  /// prefixes name).  Elements outside the mask take no part in the
  /// default resolution; default is all-driven.  Custom resolvers always
  /// see every driver's full value.
  void set_driver_mask(int driver, std::vector<bool> mask);

  [[nodiscard]] const LogicVector& initial_value() const { return initial_; }
  [[nodiscard]] const LogicVector& effective_value() const {
    return effective_;
  }
  [[nodiscard]] std::size_t num_drivers() const { return drivers_.size(); }
  /// True if the effective value needs the resolution phase: multiple
  /// drivers, a custom resolver, or a single driver with a partial mask.
  [[nodiscard]] bool is_resolved() const {
    return drivers_.size() > 1 || static_cast<bool>(resolver_) ||
           has_partial_mask_;
  }
  [[nodiscard]] const std::vector<std::pair<pdes::LpId, int>>& readers()
      const {
    return readers_;
  }

  // ---- LogicalProcess ----
  void simulate(const pdes::Event& ev, pdes::SimContext& ctx) override;
  [[nodiscard]] std::unique_ptr<pdes::LpState> save_state() const override;
  void restore_state(const pdes::LpState& s) override;
  [[nodiscard]] bool encode_state(const pdes::LpState& s,
                                  bytes::Writer& w) const override;
  [[nodiscard]] std::unique_ptr<pdes::LpState> decode_state(
      bytes::Reader& r) const override;

 private:
  void broadcast(pdes::SimContext& ctx, VirtualTime ts);
  [[nodiscard]] LogicVector resolve_drivers() const;

  // Static configuration.
  LogicVector initial_;
  Resolver resolver_;
  std::vector<std::pair<pdes::LpId, int>> readers_;
  std::vector<std::vector<bool>> masks_;  ///< per driver; empty = all-driven
  bool has_partial_mask_ = false;

  // Simulation state.
  std::vector<Waveform> drivers_;
  LogicVector effective_;
};

}  // namespace vsim::vhdl
