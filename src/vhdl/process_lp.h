// Process logical process (DATE 2000, Fig. 2).
//
// A VHDL process maps naturally onto an LP.  Its state holds the process
// variables (inside a ProcessBody), local copies of the effective values of
// every input signal, and the wait bookkeeping.  External events (kUpdate)
// refresh the local copies and may schedule a resume; internal events
// (kExecute / kTimeout) run the sequential body until its next wait.
//
// The sequential statement part is a ProcessBody whose run() is invoked in
// the Execute phase -- the C++ equivalent of the paper's "for each VHDL
// process there is a C class whose run() virtual function is given by the
// VHDL process sequential statement part".  Bodies resume from an explicit
// resume point they store themselves (cloneable for Time Warp, unlike
// coroutine frames).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "pdes/lp.h"
#include "vhdl/events.h"

namespace vsim::vhdl {

class ProcessLp;

/// Interface the sequential body uses to interact with the kernel.
class ProcessApi {
 public:
  virtual ~ProcessApi() = default;

  /// Local copy of input signal `in_port`'s effective value.
  [[nodiscard]] virtual const LogicVector& value(int in_port) const = 0;
  /// True iff `in_port` had an event in the delta cycle that triggered the
  /// current execution (the 'event attribute).
  [[nodiscard]] virtual bool event(int in_port) const = 0;
  [[nodiscard]] virtual VirtualTime now() const = 0;

  /// Signal assignment: `out_port` <= value after `delay` [ns].
  virtual void assign(int out_port, LogicVector value, PhysTime delay = 0,
                      bool transport = false) = 0;

  // ---- wait statements (call exactly one, last, before run() returns) ----
  /// wait on <ports> [until condition(cond_id)] [for timeout]
  virtual void wait_on(std::vector<int> ports, int cond_id = -1,
                       std::optional<PhysTime> timeout = std::nullopt) = 0;
  /// wait for <timeout>
  virtual void wait_for(PhysTime timeout) = 0;
  /// plain `wait;` -- suspend forever
  virtual void wait_forever() = 0;
};

/// The sequential statement part of one process.  Value-semantic: clone()
/// must deep-copy variables and the resume point.
class ProcessBody {
 public:
  virtual ~ProcessBody() = default;
  [[nodiscard]] virtual std::unique_ptr<ProcessBody> clone() const = 0;
  /// Executes from the stored resume point until the next wait (which it
  /// registers via the api) and returns.
  virtual void run(ProcessApi& api) = 0;
  /// Re-evaluates the condition of `wait until` number `cond_id`.  Called
  /// both when a sensitive signal updates and when the process resumes.
  [[nodiscard]] virtual bool eval_condition(int cond_id,
                                            const ProcessApi& api) const {
    (void)cond_id;
    (void)api;
    return true;
  }

  /// Byte codec for the body's mutable variables and resume point, so
  /// process checkpoints can cross process boundaries (the distributed
  /// engine).  decode_vars() runs on a clone() of a live body and must
  /// overwrite every field run() can mutate.  Bodies whose run() mutates
  /// nothing override both to `return true` without writing; the default
  /// declares "no codec" and pins designs using the body to in-process
  /// engines when fault tolerance needs byte-level snapshots.
  [[nodiscard]] virtual bool encode_vars(vsim::bytes::Writer& w) const {
    (void)w;
    return false;
  }
  [[nodiscard]] virtual bool decode_vars(vsim::bytes::Reader& r) {
    (void)r;
    return false;
  }
};

class ProcessLp final : public pdes::LogicalProcess {
 public:
  ProcessLp(std::string name, std::unique_ptr<ProcessBody> body)
      : LogicalProcess(std::move(name)), body_(std::move(body)) {}

  // ---- wiring (before simulation starts) ----
  /// Declares input port `index == return value` with an initial local copy.
  int add_input(LogicVector initial);
  /// Declares an output port writing to `signal` through `driver_index`.
  int add_output(pdes::LpId signal, int driver_index);

  /// Per-event work estimate; process executions are heavier than signal
  /// bookkeeping.
  [[nodiscard]] double event_cost(const pdes::Event& ev) const override;
  /// Heavy-state processes cannot snapshot (forced conservative).
  void set_heavy_state(bool heavy) { heavy_state_ = heavy; }
  [[nodiscard]] bool can_save_state() const override { return !heavy_state_; }
  void set_lookahead(PhysTime la) { lookahead_ = la; }
  [[nodiscard]] PhysTime lookahead() const override { return lookahead_; }

  // ---- LogicalProcess ----
  void simulate(const pdes::Event& ev, pdes::SimContext& ctx) override;
  [[nodiscard]] std::unique_ptr<pdes::LpState> save_state() const override;
  void restore_state(const pdes::LpState& s) override;
  [[nodiscard]] bool encode_state(const pdes::LpState& s,
                                  bytes::Writer& w) const override;
  [[nodiscard]] std::unique_ptr<pdes::LpState> decode_state(
      bytes::Reader& r) const override;

  [[nodiscard]] std::size_t num_inputs() const { return locals_.size(); }
  /// Driven signals as (signal LP, driver index) pairs, by out-port.
  [[nodiscard]] const std::vector<std::pair<pdes::LpId, int>>& outputs()
      const {
    return outputs_;
  }

 private:
  class ApiImpl;
  friend class ApiImpl;

  struct WaitSpec {
    bool waiting = false;          ///< resumable by a sensitivity event
    std::vector<int> sensitivity;  ///< input ports waited on
    int cond_id = -1;              ///< -1: unconditional
  };

  void execute(pdes::SimContext& ctx, VirtualTime now, bool from_sensitivity);
  void schedule_execute(pdes::SimContext& ctx, VirtualTime ts);

  // Static configuration.
  std::vector<std::pair<pdes::LpId, int>> outputs_;  ///< (signal, driver)
  bool heavy_state_ = false;
  PhysTime lookahead_ = 0;

  // Simulation state.
  std::unique_ptr<ProcessBody> body_;
  std::vector<LogicVector> locals_;
  std::vector<VirtualTime> last_event_;
  WaitSpec wait_;
  std::int64_t epoch_ = 0;          ///< invalidates stale resume/timeout events
  VirtualTime exec_scheduled_ = kTimeInf;
};

}  // namespace vsim::vhdl
