// VCD (Value Change Dump, IEEE 1364) waveform writer.
//
// Consumes the committed trace of a TraceRecorder after a run and writes a
// standard $var/$dumpvars VCD file that waveform viewers (GTKWave etc.)
// can open.  Delta cycles are exposed through an optional synthetic
// "delta" integer variable rather than by scaling time, so the physical
// timeline stays 1:1 with simulation units.
#pragma once

#include <ostream>
#include <string>

#include "vhdl/monitor.h"

namespace vsim::vhdl {

struct VcdOptions {
  std::string timescale = "1ns";
  std::string top_scope = "vsim";
  /// Emit a synthetic integer variable holding the delta-cycle index of
  /// the last change in each physical time step.
  bool emit_delta_counter = false;
};

/// Writes the committed traces of `recorder` as a VCD document.
/// Changes across all signals are merged into one monotonic timeline;
/// within one physical time the *last* value of each delta cascade wins
/// (standard viewer semantics).
void write_vcd(const TraceRecorder& recorder, std::ostream& os,
               const VcdOptions& options = {});

/// Convenience: write to a file; returns false on I/O failure.
bool write_vcd_file(const TraceRecorder& recorder, const std::string& path,
                    const VcdOptions& options = {});

}  // namespace vsim::vhdl
