// Post-elaboration design builder: signals + processes -> LP graph.
//
// After elaboration a VHDL design is a flat bipartite graph of processes
// interconnected by signals.  Design wraps an LpGraph and offers the wiring
// API the circuit generators and the frontend elaborator use: declare
// signals, attach process bodies, and connect ports.  finalize() posts the
// initial execution of every process at time (0,0) and registers the
// channel topology for partitioners and the null-message strategy.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "pdes/graph.h"
#include "vhdl/process_lp.h"
#include "vhdl/signal_lp.h"

namespace vsim::vhdl {

/// Index into Design's signal table (not an LP id).
using SignalId = std::uint32_t;
/// Index into Design's process table.
using ProcessId = std::uint32_t;

class Design {
 public:
  explicit Design(pdes::LpGraph& graph) : graph_(graph) {}

  /// Declares a signal of `width` elements with the given initial value.
  SignalId add_signal(const std::string& name, LogicVector initial);
  SignalId add_signal(const std::string& name, std::size_t width,
                      Logic fill = Logic::kU) {
    return add_signal(name, LogicVector(width, fill));
  }

  /// Attaches a process with the given sequential body.
  ProcessId add_process(const std::string& name,
                        std::unique_ptr<ProcessBody> body);

  /// Connects `sig` as input port of `proc`; returns the in-port index the
  /// body uses with ProcessApi::value()/event().
  int connect_in(ProcessId proc, SignalId sig);
  /// Connects `proc` as a source of `sig` (allocating a driver); returns
  /// the out-port index used with ProcessApi::assign().
  int connect_out(ProcessId proc, SignalId sig);

  /// Marks the synchronous-component hint used by the mixed configuration.
  void set_sync_hint(ProcessId proc, bool synchronous);
  void set_signal_sync_hint(SignalId sig, bool synchronous);

  [[nodiscard]] SignalLp& signal(SignalId s) { return *signals_[s]; }
  [[nodiscard]] ProcessLp& process(ProcessId p) { return *processes_[p]; }
  [[nodiscard]] pdes::LpId signal_lp(SignalId s) const {
    return signals_[s]->id();
  }
  [[nodiscard]] pdes::LpId process_lp(ProcessId p) const {
    return processes_[p]->id();
  }
  [[nodiscard]] SignalId find_signal(const std::string& name) const;
  [[nodiscard]] std::size_t num_signals() const { return signals_.size(); }
  [[nodiscard]] std::size_t num_processes() const {
    return processes_.size();
  }
  [[nodiscard]] pdes::LpGraph& graph() { return graph_; }

  /// Posts initial events and channel topology.  Call exactly once, after
  /// all wiring and before handing the graph to an engine.
  void finalize();

  /// Installs VHDL-aware LP labels on a trace session: signal LPs render as
  /// "sig <name>", process LPs as "proc <name>", so a timeline of the
  /// delta-cycle phase spans (execute: assign/driving/effective, named from
  /// lt mod 3) reads in design terms.  Pass the session to the engine via
  /// RunConfig::trace; an engine-installed default never overrides these.
  /// The session must be flushed (destroyed) while this Design is alive.
  void annotate_trace(obs::TraceSession& session) const;

 private:
  pdes::LpGraph& graph_;
  std::vector<SignalLp*> signals_;      // owned by graph_
  std::vector<ProcessLp*> processes_;   // owned by graph_
  std::unordered_map<std::string, SignalId> signal_names_;
  bool finalized_ = false;
};

}  // namespace vsim::vhdl
