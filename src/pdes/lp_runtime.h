// Per-LP protocol state machine shared by all engines.
//
// An LpRuntime wraps one LogicalProcess with everything the synchronisation
// protocols need: the pending event queue, the processed-event history with
// state snapshots (Time Warp), anti-message bookkeeping, channel clocks for
// the null-message strategy, and the arbitrary/user-consistent ordering
// rules for simultaneous events.
//
// Engines (sequential, machine model, threaded) drive LpRuntimes through a
// small interface: enqueue() delivers messages (possibly triggering
// rollback), peek() asks whether the minimal pending event may be processed
// under the current safety information, process_next() executes it, and
// fossil_collect() commits and frees history below GVT.
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "pdes/config.h"
#include "pdes/event_queue.h"
#include "pdes/lp.h"
#include "pdes/stats.h"

namespace vsim::pdes {

/// Reserved event kind for null messages (Chandy-Misra-Bryant promises).
inline constexpr std::int16_t kNullMsgKind =
    std::numeric_limits<std::int16_t>::min();

/// Engine-provided delivery and commit callbacks.  route() must deliver the
/// event to the destination LP's runtime (directly or via a mailbox);
/// commit() is invoked exactly once per committed event, in per-LP
/// timestamp order (used by trace monitors).
class Router {
 public:
  virtual ~Router() = default;
  virtual void route(Event&& ev) = 0;
  virtual void commit(const Event& ev) { (void)ev; }
};

enum class Eligibility : std::uint8_t {
  kIdle,     ///< no pending event within the horizon
  kReady,    ///< minimal pending event may be processed now
  kBlocked,  ///< pending work exists but is not yet safe / memory-stalled
};

class LpRuntime {
 public:
  LpRuntime(LogicalProcess* lp, OrderingMode ordering,
            ConservativeStrategy strategy, SyncMode initial_mode,
            std::size_t max_history, bool use_lookahead = false,
            CancellationPolicy cancellation = CancellationPolicy::kAggressive)
      : lp_(lp),
        ordering_(ordering),
        strategy_(strategy),
        mode_(lp->can_save_state() ? initial_mode : SyncMode::kConservative),
        max_history_(max_history),
        use_lookahead_(use_lookahead),
        lazy_(cancellation == CancellationPolicy::kLazy) {
    stats_.final_optimistic = mode_ == SyncMode::kOptimistic ? 1 : 0;
  }

  LpRuntime(const LpRuntime&) = delete;
  LpRuntime& operator=(const LpRuntime&) = delete;
  LpRuntime(LpRuntime&&) = default;
  LpRuntime& operator=(LpRuntime&&) = default;

  [[nodiscard]] LogicalProcess& lp() { return *lp_; }
  [[nodiscard]] LpId id() const { return lp_->id(); }
  [[nodiscard]] SyncMode mode() const { return mode_; }
  [[nodiscard]] LpStats& stats() { return stats_; }
  [[nodiscard]] const LpStats& stats() const { return stats_; }

  /// Switches synchronisation mode.  Safe at any point: history drains via
  /// fossil collection; events processed conservatively were already safe.
  void set_mode(SyncMode m);

  /// Pins the LP to conservative mode (used when Time Warp memory pressure
  /// demotes a persistent far-ahead LP; re-promotion would oscillate).
  void pin_conservative() {
    if (!pinned_conservative_) ++stats_.adapt_pins;
    pinned_conservative_ = true;
    set_mode(SyncMode::kConservative);
  }
  [[nodiscard]] bool pinned_conservative() const {
    return pinned_conservative_;
  }

  /// Registers an input channel (null-message strategy only).
  void add_input_channel(LpId src);

  /// Delivers a message.  Negative events annihilate or roll back; positive
  /// stragglers roll back optimistic LPs.  Null messages advance clocks.
  void enqueue(Event ev, Router& router);

  /// Timestamp of the minimal pending event (kTimeInf if none).
  [[nodiscard]] VirtualTime next_ts() const;

  /// May the minimal pending event be processed, given the engine's global
  /// safe bound (events with ts <= bound are guaranteed final under the
  /// arbitrary ordering)?
  [[nodiscard]] Eligibility peek(VirtualTime global_safe_bound,
                                 PhysTime until) const;

  /// Processes the minimal pending event.  Precondition: peek() == kReady.
  /// Returns the work cost of the event (for the machine model).
  double process_next(Router& router);

  /// Commits and frees history strictly below `gvt`; invokes
  /// router.commit() for every committed event in timestamp order.
  void fossil_collect(VirtualTime gvt, Router& router);

  /// Lower bound (exclusive) on this LP's future output timestamps, for
  /// null messages: no event with ts < null_promise() will ever be sent.
  [[nodiscard]] VirtualTime null_promise() const;

  /// Rollbacks since the last adaptation window reset, and window control.
  [[nodiscard]] std::uint64_t window_rollbacks() const {
    return window_rollbacks_;
  }
  [[nodiscard]] std::uint64_t window_events() const { return window_events_; }
  [[nodiscard]] std::uint64_t window_blocked() const {
    return window_blocked_;
  }
  [[nodiscard]] std::uint64_t window_undone() const { return window_undone_; }
  void reset_window();
  void note_blocked() {
    ++stats_.blocked_polls;
    if (mode_ == SyncMode::kOptimistic && max_history_ != 0 &&
        history_.size() >= max_history_) {
      ++window_memory_stalls_;  // Time Warp memory exhaustion, not safety
    } else {
      ++window_blocked_;
    }
  }
  [[nodiscard]] std::uint64_t window_memory_stalls() const {
    return window_memory_stalls_;
  }
  /// Lifetime optimistic->conservative transitions (NOT window-scoped):
  /// the promotion hysteresis scales its evidence threshold by this, so an
  /// LP that keeps getting demoted needs ever more proof to flip back.
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }

  // ---- rate-based adaptation signals (adaptive.h) ----
  //
  // fold_window() is called once per GVT round (kDynamic only): it folds the
  // raw window counters into EWMA rates carried *across* rounds and then
  // resets the window.  All cross-round state below restarts from zero at
  // every mode flip (set_mode) and at checkpoint restore -- it is scratch
  // for the controller, never part of the replicated simulation state.

  /// Folds the current window into the cross-round rates and resets it.
  void fold_window(const AdaptPolicy& policy);
  /// EWMA of the per-window wasted-work fraction
  /// min(1, events_undone / events_processed), over active windows since the
  /// last mode flip.  0 when no active window has been observed yet.
  [[nodiscard]] double waste_rate() const { return waste_rate_; }
  /// Windows with >= 1 processed event folded since the last mode flip.
  [[nodiscard]] std::uint32_t active_windows() const {
    return active_windows_;
  }
  /// Events processed in folded windows since the last mode flip.
  [[nodiscard]] std::uint64_t evidence_events() const {
    return evidence_events_;
  }
  /// Cumulative blocked polls folded since the last mode flip (promotion
  /// evidence: accumulates across rounds, resets only on a flip, so the
  /// escalating backoff really halves the ping-pong frequency).
  [[nodiscard]] std::uint64_t blocked_since_flip() const {
    return blocked_since_flip_;
  }
  /// Consecutive folded windows dominated by Time Warp memory stalls.
  [[nodiscard]] std::uint32_t stall_streak() const { return stall_streak_; }
  /// Test hook: stages one synthetic window's counters (as if they had
  /// accumulated live); the next fold_window()/controller round folds them.
  void inject_window(std::uint64_t events, std::uint64_t undone,
                     std::uint64_t blocked, std::uint64_t stalls = 0) {
    window_events_ += events;
    window_undone_ += undone;
    window_blocked_ += blocked;
    window_memory_stalls_ += stalls;
  }

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }
  [[nodiscard]] bool has_pending() const { return !pending_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// Minimum over the input-channel clocks (kTimeInf when the LP has no
  /// registered channels, i.e. outside the null-message strategy).  Public
  /// for deadlock diagnostics.
  [[nodiscard]] VirtualTime min_channel_clock() const;

  /// Checkpoint capture: undoes ALL speculative history without emitting
  /// anti-messages -- every undone send is deferred into the lazy queue
  /// (regardless of the cancellation policy), so the deterministic
  /// re-execution after the checkpoint settles each entry as a suppressed
  /// resend and no receiver ever observes the rollback.  Needs no Router.
  /// Returns the number of events undone.
  std::size_t rollback_all_deferred();

  /// Snapshot of the committed frontier.  Precondition: history is empty
  /// (call rollback_all_deferred() first).
  [[nodiscard]] LpCheckpoint make_checkpoint() const;

  /// Inverse of make_checkpoint(): reinstates LP state, pending events,
  /// lazy entries and channel clocks.  Statistics are cumulative across
  /// recoveries and deliberately untouched.
  void restore_from(const LpCheckpoint& ck);

 private:
  struct SentRecord {
    Event ev;  ///< positive copy of what was sent
  };
  struct Processed {
    Event ev;
    std::unique_ptr<LpState> pre_state;  ///< state before ev (optimistic)
    std::vector<SentRecord> sends;
  };
  /// Lazy cancellation: a send whose fate is undecided after a rollback.
  /// `gen_uid` is the input event that produced it; the entry is settled
  /// when that event is re-executed (matched -> suppressed, unmatched ->
  /// anti-message) or annihilated (anti-message).
  struct LazyEntry {
    EventUid gen_uid;
    Event ev;
  };

  class CollectContext;  // SimContext capturing sends during simulate()

  /// Undoes history entries [pos, end): re-pends their events, sends
  /// anti-messages for their sends, restores the pre-state of entry `pos`.
  void rollback_to_position(std::size_t pos, Router& router);

  /// Straggler rollback: undoes every processed event whose timestamp is
  /// > ts (arbitrary ordering) or >= ts (user-consistent ordering).
  void rollback_for_straggler(VirtualTime ts, Router& router);

  /// Lazy cancellation: sends anti-messages for every still-undecided send
  /// generated by input event `gen_uid` (called when that event is
  /// re-executed without regenerating them, or is annihilated).
  void settle_lazy(EventUid gen_uid, Router& router);

  [[nodiscard]] VirtualTime last_processed_ts() const {
    return history_.empty() ? committed_ts_ : history_.back().ev.ts;
  }

  LogicalProcess* lp_;
  OrderingMode ordering_;
  ConservativeStrategy strategy_;
  SyncMode mode_;
  std::size_t max_history_;
  bool use_lookahead_;
  bool lazy_ = false;
  bool pinned_conservative_ = false;
  std::vector<LazyEntry> lazy_queue_;

  PendingQueue pending_;  ///< binary heap + lazy-deletion annihilation index
  std::deque<Processed> history_;
  /// Negatives that arrived before their positives (transient reordering).
  std::set<EventUid> pending_negatives_;
  /// Highest committed timestamp (fossil-collected or conservative).
  VirtualTime committed_ts_ = kTimeZero;

  /// Null-message strategy: per-input-channel clocks (exclusive bounds).
  std::unordered_map<LpId, VirtualTime> in_clocks_;

  EventUid send_seq_ = 0;
  LpStats stats_;
  std::uint64_t window_rollbacks_ = 0;
  std::uint64_t window_events_ = 0;
  std::uint64_t window_blocked_ = 0;
  std::uint64_t window_memory_stalls_ = 0;
  std::uint64_t window_undone_ = 0;  ///< events undone by rollback this window
  std::uint64_t demotions_ = 0;  ///< lifetime optimistic->conservative flips

  // Cross-round adaptation rates (scratch; reset on mode flip + restore).
  double waste_rate_ = 0.0;
  std::uint32_t active_windows_ = 0;
  std::uint64_t evidence_events_ = 0;
  std::uint64_t blocked_since_flip_ = 0;
  std::uint32_t stall_streak_ = 0;

  void reset_adapt_rates();
};

}  // namespace vsim::pdes
