#include "pdes/event_queue.h"

#include <algorithm>
#include <cassert>

namespace vsim::pdes {

PendingQueue::Slot* PendingQueue::find_slot(EventUid uid, VirtualTime ts) {
  auto it = index_.find(uid);
  if (it == index_.end()) return nullptr;
  for (Slot& s : it->second)
    if (s.ts == ts) return &s;
  return nullptr;
}

void PendingQueue::release_slot(EventUid uid, VirtualTime ts) {
  auto it = index_.find(uid);
  assert(it != index_.end());
  auto& slots = it->second;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!(slots[i].ts == ts)) continue;
    if (slots[i].live == 0 && slots[i].dead == 0) {
      slots[i] = slots.back();
      slots.pop_back();
      if (slots.empty()) index_.erase(it);
    }
    return;
  }
}

bool PendingQueue::push(Event ev) {
  ++ops_;
  auto& slots = index_[ev.uid];
  Slot* slot = nullptr;
  for (Slot& s : slots)
    if (s.ts == ev.ts) slot = &s;
  if (slot != nullptr) {
    // std::set semantics: an identical live (ts, uid) absorbs the duplicate.
    if (slot->live > 0) return false;
    ++slot->live;
  } else {
    slots.push_back(Slot{ev.ts, 1, 0});
  }
  ++live_total_;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), MinOrder{});
  return true;
}

bool PendingQueue::erase_uid(EventUid uid) {
  auto it = index_.find(uid);
  if (it == index_.end()) return false;
  Slot* best = nullptr;
  for (Slot& s : it->second)
    if (s.live > 0 && (best == nullptr || s.ts < best->ts)) best = &s;
  if (best == nullptr) return false;
  ++ops_;
  --best->live;
  ++best->dead;
  --live_total_;
  prune_top();
  return true;
}

void PendingQueue::prune_top() {
  while (!heap_.empty()) {
    const Event& t = heap_.front();
    Slot* s = find_slot(t.uid, t.ts);
    assert(s != nullptr && "heap entry without an index slot");
    // Mixed live/dead copies of one (ts, uid) are content-identical
    // (duplicates of the same send), so discarding dead-first is sound.
    if (s->dead == 0) break;
    std::pop_heap(heap_.begin(), heap_.end(), MinOrder{});
    const EventUid uid = heap_.back().uid;
    const VirtualTime ts = heap_.back().ts;
    heap_.pop_back();
    --s->dead;
    release_slot(uid, ts);
  }
}

Event PendingQueue::pop_top() {
  assert(live_total_ > 0 && !heap_.empty());
  ++ops_;
  std::pop_heap(heap_.begin(), heap_.end(), MinOrder{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  Slot* s = find_slot(ev.uid, ev.ts);
  assert(s != nullptr && s->live > 0 && "top must be live (prune invariant)");
  --s->live;
  --live_total_;
  release_slot(ev.uid, ev.ts);
  prune_top();
  return ev;
}

std::vector<Event> PendingQueue::sorted_events() const {
  std::vector<Event> all = heap_;
  std::sort(all.begin(), all.end(),
            [](const Event& a, const Event& b) { return EventOrder{}(a, b); });
  std::vector<Event> out;
  out.reserve(live_total_);
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j].ts == all[i].ts &&
           all[j].uid == all[i].uid)
      ++j;
    auto it = index_.find(all[i].uid);
    std::uint32_t live = 0;
    if (it != index_.end()) {
      for (const Slot& s : it->second)
        if (s.ts == all[i].ts) live = s.live;
    }
    for (std::uint32_t k = 0; k < live; ++k) out.push_back(all[i]);
    i = j;
  }
  return out;
}

void PendingQueue::assign(const std::vector<Event>& evs) {
  clear();
  for (const Event& ev : evs) push(ev);
}

void PendingQueue::clear() {
  heap_.clear();
  index_.clear();
  live_total_ = 0;
}

}  // namespace vsim::pdes
