#include "pdes/lp_runtime.h"

#include <algorithm>

namespace vsim::pdes {
namespace {

bool same_message(const Event& a, const Event& b) {
  return a.dst == b.dst && a.sub == b.sub && a.ts == b.ts && a.kind == b.kind &&
         a.payload.port == b.payload.port &&
         a.payload.scalar == b.payload.scalar &&
         a.payload.bits == b.payload.bits;
}

}  // namespace

// SimContext implementation that collects sends emitted by simulate().
class LpRuntime::CollectContext final : public SimContext {
 public:
  CollectContext(LpRuntime& rt, VirtualTime now) : rt_(rt), now_(now) {}

  void send(LpId dst, VirtualTime ts, std::int16_t kind,
            Payload payload, LpId sub) override {
    assert(ts >= now_ && "causality: sends may not be in the past");
    // Sub-carrying sends are inter-LP events in flat-model terms, so a fused
    // cluster may legally address itself at ts == now() (one inner feeding a
    // sibling inner in the same delta phase); plain self-sends must still
    // strictly advance time or the pending queue never drains.
    assert((dst != rt_.id() || ts > now_ || sub != kInvalidLp) &&
           "self-sends must strictly advance virtual time");
    Event ev;
    ev.ts = ts;
    ev.src = rt_.id();
    ev.dst = dst;
    ev.sub = sub;
    ev.uid = (static_cast<EventUid>(rt_.id()) << 40) | (++rt_.send_seq_);
    ev.kind = kind;
    ev.payload = std::move(payload);
    sends_.push_back(std::move(ev));
  }

  [[nodiscard]] VirtualTime now() const override { return now_; }
  [[nodiscard]] LpId self() const override { return rt_.id(); }

  std::vector<Event>& sends() { return sends_; }

 private:
  LpRuntime& rt_;
  VirtualTime now_;
  std::vector<Event> sends_;
};

void LpRuntime::set_mode(SyncMode m) {
  if (m == SyncMode::kOptimistic && !lp_->can_save_state()) return;
  if (m != mode_) {
    if (m == SyncMode::kConservative) {
      ++demotions_;
      ++stats_.adapt_demotions;
    } else {
      ++stats_.adapt_promotions;
    }
    mode_ = m;
    ++stats_.mode_switches;
    stats_.final_optimistic = m == SyncMode::kOptimistic ? 1 : 0;
    // The flip starts a fresh evidentiary record: rates observed under the
    // old mode say nothing about behaviour under the new one.
    reset_adapt_rates();
  }
}

void LpRuntime::add_input_channel(LpId src) {
  in_clocks_.emplace(src, kTimeZero);
}

void LpRuntime::enqueue(Event ev, Router& router) {
  if (ev.kind == kNullMsgKind) {
    // Null message: advance the channel clock (monotonically).
    auto it = in_clocks_.find(ev.src);
    if (it != in_clocks_.end() && ev.ts > it->second) it->second = ev.ts;
    return;
  }
  // Real events on a channel also imply a promise: the sender will not send
  // anything earlier on this channel (FIFO channels, sender processes in
  // nondecreasing order once conservative).
  if (strategy_ == ConservativeStrategy::kNullMessage) {
    auto it = in_clocks_.find(ev.src);
    if (it != in_clocks_.end() && ev.ts > it->second) it->second = ev.ts;
  }

  if (ev.negative) {
    // 1. Matching positive still pending: annihilate both -- an O(1) lazy
    // deletion in the uid index (the old std::set paid a linear scan here).
    // Any undecided sends it generated in a previous execution can never be
    // regenerated.
    if (pending_.erase_uid(ev.uid)) {
      ++stats_.annihilations;
      stats_.queue_ops = pending_.ops();
      settle_lazy(ev.uid, router);
      return;
    }
    // 2. Matching positive already processed: roll back past it.  The
    // history only ever holds events processed *optimistically*, so this
    // is legal even if the LP has since been demoted to conservative mode.
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (history_[i].ev.uid == ev.uid) {
        rollback_to_position(i, router);
        // The cancelled event was re-pended by the rollback; remove it.
        pending_.erase_uid(ev.uid);
        ++stats_.annihilations;
        stats_.queue_ops = pending_.ops();
        settle_lazy(ev.uid, router);
        return;
      }
    }
    // 3. Positive not here yet (transient): stash.
    pending_negatives_.insert(ev.uid);
    return;
  }

  // Positive event.
  if (auto it = pending_negatives_.find(ev.uid); it != pending_negatives_.end()) {
    pending_negatives_.erase(it);
    ++stats_.annihilations;
    return;
  }
  // A straggler must undo speculative history even if the LP has since
  // been demoted to conservative mode: history only ever holds events
  // processed optimistically, so rolling them back never violates the
  // conservative no-rollback guarantee (conservatively processed events
  // commit immediately and never enter history).
  const bool straggler =
      ordering_ == OrderingMode::kArbitrary
          ? ev.ts < last_processed_ts()
          : ev.ts <= last_processed_ts() && !history_.empty();
  if (straggler && !history_.empty()) {
    rollback_for_straggler(ev.ts, router);
  }
  // GVT monotonicity guarantees no arrival below the committed frontier.
  assert(!(ev.ts < committed_ts_));
  pending_.push(std::move(ev));
  stats_.queue_ops = pending_.ops();
}

VirtualTime LpRuntime::next_ts() const { return pending_.min_ts(); }

VirtualTime LpRuntime::min_channel_clock() const {
  VirtualTime m = kTimeInf;
  for (const auto& [src, clock] : in_clocks_) m = std::min(m, clock);
  return m;
}

Eligibility LpRuntime::peek(VirtualTime global_safe_bound,
                            PhysTime until) const {
  if (pending_.empty()) return Eligibility::kIdle;
  const VirtualTime ts = pending_.top().ts;
  if (ts.pt > until) return Eligibility::kIdle;

  if (mode_ == SyncMode::kOptimistic) {
    if (max_history_ != 0 && history_.size() >= max_history_)
      return Eligibility::kBlocked;  // memory stall until fossil collection
    return Eligibility::kReady;
  }

  // Conservative.
  switch (strategy_) {
    case ConservativeStrategy::kGlobalSync:
      // Lookahead-free: events at or below the global bound are final under
      // the arbitrary ordering (equal timestamps commute by construction).
      return ts <= global_safe_bound ? Eligibility::kReady
                                     : Eligibility::kBlocked;
    case ConservativeStrategy::kNullMessage: {
      const VirtualTime clock = min_channel_clock();
      if (ts < clock) return Eligibility::kReady;
      // Under the arbitrary ordering the global bound still applies.
      if (ordering_ == OrderingMode::kArbitrary && ts <= global_safe_bound)
        return Eligibility::kReady;
      return Eligibility::kBlocked;
    }
  }
  return Eligibility::kBlocked;
}

double LpRuntime::process_next(Router& router) {
  assert(!pending_.empty());
  Event ev = pending_.pop_top();
  stats_.queue_ops = pending_.ops();

  CollectContext ctx(*this, ev.ts);
  const double cost = lp_->event_cost(ev);

  const EventUid gen_uid = ev.uid;
  if (mode_ == SyncMode::kOptimistic) {
    Processed rec;
    rec.pre_state = lp_->save_state();
    ++stats_.state_saves;
    lp_->simulate(ev, ctx);
    rec.ev = std::move(ev);
    rec.sends.reserve(ctx.sends().size());
    // Lazy cancellation: a regenerated message identical to an undecided
    // one is suppressed -- the receiver already holds it (under its old
    // uid, which the history must reference for future rollbacks).  The
    // queue is consulted regardless of the cancellation policy: checkpoint
    // capture defers undone sends here even under aggressive cancellation
    // (rollback_all_deferred), and those entries settle the same way.
    for (Event& s : ctx.sends()) {
      bool suppressed = false;
      if (!lazy_queue_.empty()) {
        for (auto it = lazy_queue_.begin(); it != lazy_queue_.end(); ++it) {
          if (same_message(it->ev, s)) {
            s.uid = it->ev.uid;
            lazy_queue_.erase(it);
            ++stats_.lazy_reuses;
            suppressed = true;
            break;
          }
        }
      }
      rec.sends.push_back({s});
      if (!suppressed) router.route(std::move(s));
    }
    history_.push_back(std::move(rec));
    stats_.max_history = std::max(stats_.max_history, history_.size());
  } else {
    lp_->simulate(ev, ctx);
    committed_ts_ = std::max(committed_ts_, ev.ts);
    ++stats_.events_committed;
    router.commit(ev);
    for (Event& s : ctx.sends()) router.route(std::move(s));
  }
  ++stats_.events_processed;
  ++window_events_;

  // Any of this event's previous sends that were not regenerated are now
  // known to be wrong: cancel them.
  settle_lazy(gen_uid, router);
  return cost;
}

void LpRuntime::rollback_to_position(std::size_t pos, Router& router) {
  assert(pos < history_.size());
  ++stats_.rollbacks;
  ++window_rollbacks_;
  for (std::size_t j = history_.size(); j-- > pos;) {
    Processed& rec = history_[j];
    for (SentRecord& sr : rec.sends) {
      if (lazy_) {
        // Defer the decision: the re-execution of rec.ev settles it.
        lazy_queue_.push_back({rec.ev.uid, std::move(sr.ev)});
      } else {
        Event anti = std::move(sr.ev);
        anti.negative = true;
        anti.payload = Payload{};  // anti-messages carry no payload
        ++stats_.anti_messages_sent;
        router.route(std::move(anti));
      }
    }
    ++stats_.events_undone;
    ++window_undone_;
    pending_.push(std::move(rec.ev));
  }
  stats_.queue_ops = pending_.ops();
  lp_->restore_state(*history_[pos].pre_state);
  history_.erase(history_.begin() + static_cast<std::ptrdiff_t>(pos),
                 history_.end());
}

void LpRuntime::settle_lazy(EventUid gen_uid, Router& router) {
  // Extract first, route second: routing an anti-message can cascade back
  // into this LP (rollback at the receiver -> anti-message to us ->
  // re-entrant enqueue), which may push or settle further lazy entries.
  std::vector<Event> cancels;
  for (std::size_t i = lazy_queue_.size(); i-- > 0;) {
    if (lazy_queue_[i].gen_uid != gen_uid) continue;
    cancels.push_back(std::move(lazy_queue_[i].ev));
    lazy_queue_.erase(lazy_queue_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  for (Event& anti : cancels) {
    anti.negative = true;
    anti.payload = Payload{};
    ++stats_.anti_messages_sent;
    ++stats_.lazy_cancels;
    router.route(std::move(anti));
  }
}

void LpRuntime::rollback_for_straggler(VirtualTime ts, Router& router) {
  // Arbitrary ordering: equal-timestamp events commute, so only strictly
  // later processed events must be undone.  User-consistent ordering must
  // also undo equal-timestamp events (they were processed "too early").
  std::size_t pos = history_.size();
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const bool undo = ordering_ == OrderingMode::kArbitrary
                          ? history_[i].ev.ts > ts
                          : history_[i].ev.ts >= ts;
    if (undo) {
      pos = i;
      break;
    }
  }
  if (pos < history_.size()) rollback_to_position(pos, router);
}

void LpRuntime::fossil_collect(VirtualTime gvt, Router& router) {
  // Keep entries with ts == gvt: a straggler or anti-message at exactly gvt
  // may still undo later events, and restoring their pre-state requires the
  // snapshot of the first strictly-later entry; entries below gvt are final.
  while (!history_.empty() && history_.front().ev.ts < gvt) {
    committed_ts_ = std::max(committed_ts_, history_.front().ev.ts);
    ++stats_.events_committed;
    router.commit(history_.front().ev);
    history_.pop_front();
  }
}

VirtualTime LpRuntime::null_promise() const {
  // Lower bound on future outputs: anything this LP will still process is
  // bounded below by min(pending, channel clocks); outputs additionally gain
  // the LP's static physical-time lookahead.
  VirtualTime base = std::min(next_ts(), min_channel_clock());
  if (base == kTimeInf) return kTimeInf;
  const PhysTime la = use_lookahead_ ? lp_->lookahead() : 0;
  return VirtualTime{base.pt + la, la > 0 ? 0 : base.lt};
}

std::size_t LpRuntime::rollback_all_deferred() {
  if (history_.empty()) return 0;
  const std::size_t n = history_.size();
  for (std::size_t j = history_.size(); j-- > 0;) {
    Processed& rec = history_[j];
    for (SentRecord& sr : rec.sends)
      lazy_queue_.push_back({rec.ev.uid, std::move(sr.ev)});
    pending_.push(std::move(rec.ev));
  }
  stats_.queue_ops = pending_.ops();
  lp_->restore_state(*history_.front().pre_state);
  history_.clear();
  // Not counted as rollbacks: this is checkpoint bookkeeping, and polluting
  // the window counters would skew the self-adaptation policy.
  stats_.checkpoint_undone += n;
  return n;
}

LpCheckpoint LpRuntime::make_checkpoint() const {
  assert(history_.empty() &&
         "speculation must be undone (rollback_all_deferred) before capture");
  LpCheckpoint ck;
  ck.state = lp_->save_state();
  ck.mode = mode_;
  ck.pinned_conservative = pinned_conservative_;
  ck.committed_ts = committed_ts_;
  ck.send_seq = send_seq_;
  // The heap's live entries in EventOrder: the exact sequence the old
  // std::set iterated, keeping the portable codec's byte format stable.
  ck.pending = pending_.sorted_events();
  ck.pending_negatives.assign(pending_negatives_.begin(),
                              pending_negatives_.end());
  ck.lazy.reserve(lazy_queue_.size());
  for (const LazyEntry& e : lazy_queue_) ck.lazy.emplace_back(e.gen_uid, e.ev);
  ck.in_clocks.assign(in_clocks_.begin(), in_clocks_.end());
  std::sort(ck.in_clocks.begin(), ck.in_clocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return ck;
}

void LpRuntime::restore_from(const LpCheckpoint& ck) {
  if (ck.state) lp_->restore_state(*ck.state);
  // Direct assignment, not set_mode(): a recovery is not a mode switch.
  mode_ = ck.mode;
  stats_.final_optimistic = mode_ == SyncMode::kOptimistic ? 1 : 0;
  pinned_conservative_ = ck.pinned_conservative;
  committed_ts_ = ck.committed_ts;
  send_seq_ = ck.send_seq;
  history_.clear();
  pending_.assign(ck.pending);
  stats_.queue_ops = pending_.ops();
  pending_negatives_.clear();
  pending_negatives_.insert(ck.pending_negatives.begin(),
                            ck.pending_negatives.end());
  lazy_queue_.clear();
  lazy_queue_.reserve(ck.lazy.size());
  for (const auto& [gen_uid, ev] : ck.lazy) lazy_queue_.push_back({gen_uid, ev});
  in_clocks_.clear();
  for (const auto& [src, clock] : ck.in_clocks) in_clocks_.emplace(src, clock);
  reset_window();
  // Adaptation rates are controller scratch, not simulation state: restart
  // the evidentiary record rather than replicate it through checkpoints.
  reset_adapt_rates();
}

void LpRuntime::reset_window() {
  window_rollbacks_ = 0;
  window_events_ = 0;
  window_blocked_ = 0;
  window_memory_stalls_ = 0;
  window_undone_ = 0;
}

void LpRuntime::reset_adapt_rates() {
  waste_rate_ = 0.0;
  active_windows_ = 0;
  evidence_events_ = 0;
  blocked_since_flip_ = 0;
  stall_streak_ = 0;
}

void LpRuntime::fold_window(const AdaptPolicy& policy) {
  if (window_events_ > 0) {
    // Wasted-work fraction of this window: speculative events undone per
    // event processed.  Re-executions re-enter window_events_, so work that
    // is rolled back and redone is charged once, not twice -- the fraction
    // measures net waste, unlike a raw rollback count.
    const double waste =
        std::min(1.0, static_cast<double>(window_undone_) /
                          static_cast<double>(window_events_));
    waste_rate_ = active_windows_ == 0
                      ? waste
                      : waste_rate_ + policy.rate_alpha * (waste - waste_rate_);
    ++active_windows_;
    evidence_events_ += window_events_;
  }
  blocked_since_flip_ += window_blocked_;
  if (window_memory_stalls_ >= policy.min_window_events) {
    ++stall_streak_;
  } else {
    stall_streak_ = 0;
  }
  reset_window();
}


}  // namespace vsim::pdes
