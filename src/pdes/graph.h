// Ownership container for the LP graph: the logical processes plus the
// static channel topology (needed by the null-message strategy and by the
// bipartite-aware partitioner).
#pragma once

#include <memory>
#include <vector>

#include "pdes/lp.h"

namespace vsim::pdes {

class LpGraph {
 public:
  /// Takes ownership; returns the assigned LP id.
  LpId add(std::unique_ptr<LogicalProcess> lp);

  /// Declares a static channel src -> dst.  Channels are required for the
  /// null-message conservative strategy (channel clocks) and are used by
  /// partitioners; the global-synchronisation strategies work without them.
  void add_channel(LpId src, LpId dst);

  [[nodiscard]] std::size_t size() const { return lps_.size(); }
  [[nodiscard]] LogicalProcess& lp(LpId id) { return *lps_[id]; }
  [[nodiscard]] const LogicalProcess& lp(LpId id) const { return *lps_[id]; }

  [[nodiscard]] const std::vector<LpId>& fan_out(LpId id) const {
    return out_[id];
  }
  [[nodiscard]] const std::vector<LpId>& fan_in(LpId id) const {
    return in_[id];
  }

  /// Seeds an event delivered before the simulation starts (e.g. the
  /// initial execution of every VHDL process at time zero).  `sub` carries
  /// the inner flat destination when `dst` is a fused ClusterLp.
  void post_initial(LpId dst, VirtualTime ts, std::int16_t kind,
                    Payload payload = {}, LpId sub = kInvalidLp);
  [[nodiscard]] const std::vector<Event>& initial_events() const {
    return initial_;
  }

  /// Releases ownership of LP `id`, leaving a null slot behind.  Only the
  /// clustering pass (pdes/cluster.h) uses this, to move every model LP into
  /// its fused ClusterLp; a husked graph must not be simulated.  The LP keeps
  /// the id this graph assigned it -- inside a cluster that flat id remains
  /// its model identity.
  [[nodiscard]] std::unique_ptr<LogicalProcess> extract(LpId id) {
    return std::move(lps_[id]);
  }

 private:
  std::vector<std::unique_ptr<LogicalProcess>> lps_;
  std::vector<std::vector<LpId>> out_;
  std::vector<std::vector<LpId>> in_;
  std::vector<Event> initial_;
};

inline LpId LpGraph::add(std::unique_ptr<LogicalProcess> lp) {
  const LpId id = static_cast<LpId>(lps_.size());
  lp->id_ = id;
  lps_.push_back(std::move(lp));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

inline void LpGraph::add_channel(LpId src, LpId dst) {
  out_[src].push_back(dst);
  in_[dst].push_back(src);
}

inline void LpGraph::post_initial(LpId dst, VirtualTime ts, std::int16_t kind,
                                  Payload payload, LpId sub) {
  Event ev;
  ev.ts = ts;
  ev.src = kInvalidLp;
  ev.dst = dst;
  ev.sub = sub;
  // Initial events never need anti-message matching, but their uids MUST
  // stay disjoint from every runtime uid ((lp_id << 40) | seq): LP 0's sends
  // get uids 1, 2, 3, ... too, and a colliding uid lets an anti-message for
  // an ordinary send annihilate a rolled-back-and-repended initial event --
  // the inner then simply never initialises.  The top bit marks the initial
  // range (a runtime uid would need lp_id >= 2^23, far beyond any graph);
  // counting up from the base keeps the relative (ts, uid) execution order
  // of the initial events exactly as posted.
  ev.uid = (EventUid{1} << 63) + initial_.size();
  ev.kind = kind;
  ev.payload = std::move(payload);
  initial_.push_back(std::move(ev));
}

}  // namespace vsim::pdes
