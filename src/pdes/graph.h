// Ownership container for the LP graph: the logical processes plus the
// static channel topology (needed by the null-message strategy and by the
// bipartite-aware partitioner).
#pragma once

#include <memory>
#include <vector>

#include "pdes/lp.h"

namespace vsim::pdes {

class LpGraph {
 public:
  /// Takes ownership; returns the assigned LP id.
  LpId add(std::unique_ptr<LogicalProcess> lp);

  /// Declares a static channel src -> dst.  Channels are required for the
  /// null-message conservative strategy (channel clocks) and are used by
  /// partitioners; the global-synchronisation strategies work without them.
  void add_channel(LpId src, LpId dst);

  [[nodiscard]] std::size_t size() const { return lps_.size(); }
  [[nodiscard]] LogicalProcess& lp(LpId id) { return *lps_[id]; }
  [[nodiscard]] const LogicalProcess& lp(LpId id) const { return *lps_[id]; }

  [[nodiscard]] const std::vector<LpId>& fan_out(LpId id) const {
    return out_[id];
  }
  [[nodiscard]] const std::vector<LpId>& fan_in(LpId id) const {
    return in_[id];
  }

  /// Seeds an event delivered before the simulation starts (e.g. the
  /// initial execution of every VHDL process at time zero).
  void post_initial(LpId dst, VirtualTime ts, std::int16_t kind,
                    Payload payload = {});
  [[nodiscard]] const std::vector<Event>& initial_events() const {
    return initial_;
  }

 private:
  std::vector<std::unique_ptr<LogicalProcess>> lps_;
  std::vector<std::vector<LpId>> out_;
  std::vector<std::vector<LpId>> in_;
  std::vector<Event> initial_;
};

inline LpId LpGraph::add(std::unique_ptr<LogicalProcess> lp) {
  const LpId id = static_cast<LpId>(lps_.size());
  lp->id_ = id;
  lps_.push_back(std::move(lp));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

inline void LpGraph::add_channel(LpId src, LpId dst) {
  out_[src].push_back(dst);
  in_[dst].push_back(src);
}

inline void LpGraph::post_initial(LpId dst, VirtualTime ts, std::int16_t kind,
                                  Payload payload) {
  Event ev;
  ev.ts = ts;
  ev.src = kInvalidLp;
  ev.dst = dst;
  // Initial events never need anti-message matching; give them uids in a
  // reserved range that keeps container ordering deterministic.
  ev.uid = initial_.size();
  ev.kind = kind;
  ev.payload = std::move(payload);
  initial_.push_back(std::move(ev));
}

}  // namespace vsim::pdes
