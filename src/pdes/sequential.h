// Sequential reference engine.
//
// A classic single event-queue discrete-event simulator over the same LP
// API.  It is the correctness oracle for the parallel engines (identical
// committed traces) and the baseline for speedup measurements (the paper's
// speedups are relative to an execution "improved for sequential
// simulation", i.e. without any synchronisation overhead).
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/stats.h"

namespace vsim::pdes {

class SequentialEngine {
 public:
  using CommitHook = std::function<void(const Event&)>;

  explicit SequentialEngine(LpGraph& graph) : graph_(graph) {}

  /// Registers a hook invoked once per processed event, in global timestamp
  /// order (ties broken deterministically by send uid).
  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Attaches an event-trace session (single track; timestamps are the
  /// accumulated event cost, the same work units the machine model charges).
  /// Without one, $VSIM_TRACE activates the process-global tracer.
  void set_trace(obs::TraceSession* trace) { trace_ = trace; }

  /// Injects an initial event (e.g. from a stimulus builder) before run().
  void post(Event ev);

  /// Runs until the queue is empty or all remaining events lie beyond
  /// `until`.  Returns accumulated statistics; `total_cost` is the summed
  /// event cost (the sequential "work", denominator of model speedups).
  struct Result {
    RunStats stats;
    double total_cost = 0.0;
  };
  Result run(PhysTime until = std::numeric_limits<PhysTime>::max());

 private:
  LpGraph& graph_;
  CommitHook hook_;
  std::set<Event, EventOrder> queue_;
  EventUid seq_ = 0;
  obs::MetricsRegistry metrics_;  ///< single shard: one "worker"
  std::unique_ptr<obs::TraceSession> trace_own_;
  obs::TraceSession* trace_ = nullptr;
};

}  // namespace vsim::pdes
