// Real multi-threaded engine.
//
// One std::thread per worker; batch-drained MPSC mailboxes (mailbox.h)
// stand in for the MPI / TCP-socket transport of the original
// implementation: senders buffer packets in per-destination outboxes and
// publish each buffer as one batch per scheduling round, and the receiver
// drains its inbox with a single atomic exchange.  GVT uses barrier rounds
// with full network draining, which is exact in shared memory: between the
// first and last barrier of a round no worker sends, so the drained state
// contains every in-flight message.
//
// This engine is the production runtime on real multiprocessors; the
// machine-model engine (machine.h) executes the same LpRuntime protocol
// deterministically for speedup studies on this single-core container.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdes/adaptive.h"
#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/lp_runtime.h"
#include "pdes/machine.h"  // Partition
#include "pdes/mailbox.h"
#include "pdes/stats.h"
#include "pdes/transport.h"

namespace vsim::pdes {

class ThreadedEngine {
 public:
  /// Invoked once per committed event.  May be called concurrently from
  /// different workers, but calls for any single LP are ordered.
  using CommitHook = std::function<void(const Event&)>;

  ThreadedEngine(LpGraph& graph, Partition partition, RunConfig config);
  ~ThreadedEngine();  // out-of-line: RoundBarrier is an incomplete type here

  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  RunStats run();

  /// Current LP->worker mapping (differs from the constructor argument
  /// after dynamic rebalancing or redistribute recovery).  Only meaningful
  /// once run() returned.
  [[nodiscard]] const Partition& partition() const { return partition_; }

 private:
  /// Cache-line aligned so two workers' hot scheduler state (owned list,
  /// inbox head, op counters) never share a line; the inbox head is the
  /// only field other workers touch.
  struct alignas(64) Worker {
    /// LPs this worker owns.  The scheduler has no sorted ready-queue: it
    /// selection-scans `owned` against the engine's cached per-LP keys
    /// (key_), which for the few LPs a worker owns is cheaper than the
    /// node churn of an ordered set on every delivery.
    std::vector<LpId> owned;
    /// Incoming packets, published by other workers as whole batches on
    /// per-sender lanes (sized to num_workers in the engine constructor).
    BatchMailbox inbox;
    /// Per-destination send buffers.  Written only by THIS worker (the
    /// transport threading contract makes pkt.src the submitting worker);
    /// flushed into the destinations' inboxes once per scheduling round.
    std::vector<std::vector<Packet>> outbox;
    /// Reused drain scratch so steady-state drains do not allocate.
    std::vector<Packet> drain_buf;
    std::uint64_t events_since_round = 0;
    /// Scheduler loop iterations; the worker's "time" for retransmit
    /// backoff (the threaded wire has no latency model to clock against).
    std::uint64_t ops = 0;
    WorkerStats stats;
  };
  class ThreadedRouter;
  class ThreadedWire;  // bottom of the transport stack: outbox append

  void worker_main(std::size_t wi);
  void deliver(std::size_t wi, Event ev);
  void refresh_key(std::size_t wi, LpId lp);
  bool try_process_one(std::size_t wi);
  std::size_t drain_own_mailbox(std::size_t wi);
  /// Publishes every non-empty outbox buffer of `wi` as one batch into the
  /// destination's inbox.  Returns the number of packets flushed.
  std::size_t flush_outboxes(std::size_t wi);
  void send_null_messages_for(std::size_t wi, LpId lp);
  [[nodiscard]] double now(std::size_t wi) const {
    return static_cast<double>(workers_[wi]->ops);
  }
  /// Wall-clock microseconds since run() started; the threaded engine's
  /// trace timestamps (real time, unlike the machine model's work units).
  [[nodiscard]] double tnow() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - trace_epoch_)
        .count();
  }
  [[nodiscard]] DeadlockReport build_deadlock_report(VirtualTime gvt);
  /// True while worker `w` is crashed or permanently retired.
  [[nodiscard]] bool worker_dead(std::size_t w) const {
    return crashed_[w].load(std::memory_order_acquire) || retired_[w];
  }
  /// Coordinator for the current round: the lowest live worker.
  [[nodiscard]] std::size_t first_live_worker() const;
  [[nodiscard]] bool any_crashed_unretired() const;
  /// Crash-stop injection, evaluated after every processed event; returns
  /// true when worker `wi` must die now (caller performs the exit).
  bool maybe_crash(std::size_t wi);
  /// Coordinator-only: heartbeat accounting + recovery once the budget is
  /// reached.  Returns false when recovery failed (done_ is already set and
  /// the run unwinds with recovery_error_).
  bool coordinator_recover();
  /// Coordinator-only: GVT-consistent checkpoint capture.  All other
  /// workers are parked at a barrier, so touching their LPs is race-free.
  void coordinator_checkpoint(std::size_t coord, VirtualTime gvt);
  /// Coordinator-only: dynamic load balancing (partition/rebalance.h).
  /// Runs inside the round's exclusive section -- network drained to
  /// quiescence, every other worker parked -- and migrates a bounded set of
  /// LPs by packing each through the checkpoint codec and retargeting
  /// ownership (owned lists + partition_); the barrier that releases the
  /// other workers publishes the new mapping to their routers.
  void coordinator_rebalance(std::size_t coord);
  /// Releases buffered commit-hook invocations in LP-id order.
  void flush_commits();

  LpGraph& graph_;
  Partition partition_;
  RunConfig config_;
  CommitHook hook_;

  std::vector<LpRuntime> lps_;
  std::vector<VirtualTime> key_;
  std::vector<VirtualTime> last_promise_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Round coordination.
  std::atomic<bool> round_requested_{false};
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> drained_in_pass_{0};
  std::mutex gvt_mutex_;
  VirtualTime gvt_candidate_ = kTimeInf;
  VirtualTime safe_bound_ = kTimeZero;  // written by one thread inside barriers
  VirtualTime last_gvt_ = kTimeZero;
  std::uint64_t last_total_events_ = 0;
  std::uint32_t stall_rounds_ = 0;
  std::uint64_t gvt_rounds_ = 0;
  // Dynamic load balancing (coordinator-only, barrier-ordered): rebalance
  // cadence plus per-LP counter snapshots, so each attempt scores only the
  // work of the window since the previous one.
  std::uint32_t rounds_since_rebalance_ = 0;
  std::vector<std::uint64_t> lb_events_base_;
  std::vector<std::uint64_t> lb_undone_base_;
  bool deadlocked_ = false;
  bool transport_failed_ = false;
  std::optional<DeadlockReport> deadlock_report_;

  // Observability: one metrics shard per worker thread (single-writer;
  // merged by the round coordinator while everyone else is parked), plus an
  // optional trace session with one track per thread.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceSession> trace_own_;
  obs::TraceSession* trace_ = nullptr;
  std::chrono::steady_clock::time_point trace_epoch_;

  // Fault tolerance (checkpoint/restart + crash-stop injection).  Threads
  // cannot be respawned, so the kRestart policy degrades to redistribution.
  bool ft_on_ = false;  ///< checkpointing or crash schedules enabled
  std::unique_ptr<std::atomic<bool>[]> crashed_;  ///< dead, not yet recovered
  std::vector<bool> retired_;  ///< permanently removed after recovery
  std::vector<std::uint32_t> missed_heartbeats_;
  std::vector<std::uint64_t> crash_rng_;  ///< never restored from checkpoints
  std::uint32_t recoveries_ = 0;
  std::uint32_t rounds_since_ckpt_ = 0;
  /// GVT of the newest stored checkpoint; periodic capture requires GVT to
  /// have advanced past it (same livelock guard as the machine engine --
  /// see MachineEngine::last_ckpt_gvt_).  Coordinator-only, barrier-ordered.
  VirtualTime last_ckpt_gvt_ = kTimeZero;
  bool failed_ = false;  ///< recovery gave up; written before done_ release
  std::atomic<std::uint64_t> crash_count_{0};
  CheckpointStore store_;
  CheckpointStats ckstats_;
  /// Output commit: with fault tolerance on, commit-hook invocations are
  /// buffered per LP (written only by the LP's owner, flushed only while
  /// every other worker is parked) and released at checkpoints/termination.
  std::vector<std::vector<Event>> commit_buf_;
  std::optional<RecoveryError> recovery_error_;
  std::optional<ConfigError> config_error_;

  // Transport stack, bottom-up: wire -> (faults) -> channel layer.
  std::unique_ptr<ThreadedWire> wire_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<ChannelStack> net_;

  std::unique_ptr<class RoundBarrier> barrier_;
};

}  // namespace vsim::pdes
