// Run-time configuration of the PDES engines.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/virtual_time.h"

namespace vsim::pdes {

/// Synchronisation mode of an individual LP.
enum class SyncMode : std::uint8_t {
  kConservative,  ///< process only provably safe events; never rolls back
  kOptimistic,    ///< Time Warp: process eagerly, roll back on stragglers
};

/// How simultaneous (equal virtual-time) events are treated (Sec. 2.1).
enum class OrderingMode : std::uint8_t {
  /// Equal-timestamp events may be processed in any order.  Correct for the
  /// distributed VHDL cycle thanks to the (pt, lt) phase encoding; this is
  /// the paper's contribution and the default.
  kArbitrary,
  /// All events with the same timestamp must be collected before any is
  /// processed: conservative LPs need strictly greater channel clocks
  /// (=> null messages + positive lookahead, else deadlock) and optimistic
  /// LPs roll back even on equal-timestamp arrivals.
  kUserConsistent,
};

/// How conservative LPs establish safety.
enum class ConservativeStrategy : std::uint8_t {
  /// Lookahead-free: an event is safe iff its timestamp is <= the global
  /// bound computed at synchronisation rounds (GVT).  This is the paper's
  /// strategy: blocking with global deadlock recovery, no null messages.
  kGlobalSync,
  /// Chandy-Misra-Bryant channel clocks advanced by null messages carrying
  /// per-LP static lookahead (used for the Fig. 4 comparison).
  kNullMessage,
};

/// How rollbacks cancel previously sent messages.
enum class CancellationPolicy : std::uint8_t {
  /// Send anti-messages immediately during rollback (classic Time Warp).
  kAggressive,
  /// Hold anti-messages back; if re-execution regenerates a message with
  /// identical content, suppress both the anti-message and the resend
  /// (rollback waves stop where recomputation converges).  An event's
  /// undecided sends are settled the moment it is re-executed or
  /// annihilated, so no cancellation can ever drop below GVT.
  kLazy,
};

/// Global mode presets matching the paper's four configurations.
enum class Configuration : std::uint8_t {
  kAllOptimistic,
  kAllConservative,
  kMixed,    ///< builder-supplied hint: synchronous LPs conservative, rest optimistic
  kDynamic,  ///< lookahead-free self-adaptive (the paper's best performer)
};

const char* to_string(Configuration c);
const char* to_string(OrderingMode m);
const char* to_string(ConservativeStrategy s);

/// Parameters of the self-adaptation policy (evaluated per LP at GVT rounds).
struct AdaptPolicy {
  /// Rollbacks per processed event above which an optimistic LP turns
  /// conservative.
  double rollback_rate_high = 0.25;
  /// Rollback rate below which a blocked conservative LP turns optimistic.
  double rollback_rate_low = 0.05;
  /// Minimum events observed in a window before a switch is considered.
  std::uint32_t min_window_events = 8;
};

struct RunConfig {
  std::size_t num_workers = 1;
  Configuration configuration = Configuration::kDynamic;
  OrderingMode ordering = OrderingMode::kArbitrary;
  ConservativeStrategy strategy = ConservativeStrategy::kGlobalSync;
  CancellationPolicy cancellation = CancellationPolicy::kAggressive;
  /// Use LogicalProcess::lookahead() for null messages (Fig. 4 "la" column).
  bool use_lookahead = false;
  /// Events processed per worker between GVT rounds (optimistic workers);
  /// conservative workers trigger rounds when blocked.
  std::uint32_t gvt_interval = 64;
  /// Simulate until this physical time (inclusive); events beyond it are
  /// left unprocessed.
  PhysTime until = std::numeric_limits<PhysTime>::max();
  /// Cap on per-LP saved history entries; 0 = unlimited.  When the cap is
  /// hit, the LP stalls until fossil collection (models memory pressure).
  std::size_t max_history = 0;
  AdaptPolicy adapt;
  /// Abort threshold for the deadlock detector: a deadlock is declared
  /// when a synchronisation round cannot advance the safe bound and no LP
  /// processed an event since the previous round this many times in a row.
  std::uint32_t deadlock_rounds = 3;
};

}  // namespace vsim::pdes
