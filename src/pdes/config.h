// Run-time configuration of the PDES engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/virtual_time.h"

namespace vsim::obs {
class TraceSession;
}

namespace vsim::pdes {

/// Synchronisation mode of an individual LP.
enum class SyncMode : std::uint8_t {
  kConservative,  ///< process only provably safe events; never rolls back
  kOptimistic,    ///< Time Warp: process eagerly, roll back on stragglers
};

/// How simultaneous (equal virtual-time) events are treated (Sec. 2.1).
enum class OrderingMode : std::uint8_t {
  /// Equal-timestamp events may be processed in any order.  Correct for the
  /// distributed VHDL cycle thanks to the (pt, lt) phase encoding; this is
  /// the paper's contribution and the default.
  kArbitrary,
  /// All events with the same timestamp must be collected before any is
  /// processed: conservative LPs need strictly greater channel clocks
  /// (=> null messages + positive lookahead, else deadlock) and optimistic
  /// LPs roll back even on equal-timestamp arrivals.
  kUserConsistent,
};

/// How conservative LPs establish safety.
enum class ConservativeStrategy : std::uint8_t {
  /// Lookahead-free: an event is safe iff its timestamp is <= the global
  /// bound computed at synchronisation rounds (GVT).  This is the paper's
  /// strategy: blocking with global deadlock recovery, no null messages.
  kGlobalSync,
  /// Chandy-Misra-Bryant channel clocks advanced by null messages carrying
  /// per-LP static lookahead (used for the Fig. 4 comparison).
  kNullMessage,
};

/// How rollbacks cancel previously sent messages.
enum class CancellationPolicy : std::uint8_t {
  /// Send anti-messages immediately during rollback (classic Time Warp).
  kAggressive,
  /// Hold anti-messages back; if re-execution regenerates a message with
  /// identical content, suppress both the anti-message and the resend
  /// (rollback waves stop where recomputation converges).  An event's
  /// undecided sends are settled the moment it is re-executed or
  /// annihilated, so no cancellation can ever drop below GVT.
  kLazy,
};

/// Global mode presets matching the paper's four configurations.
enum class Configuration : std::uint8_t {
  kAllOptimistic,
  kAllConservative,
  kMixed,    ///< builder-supplied hint: synchronous LPs conservative, rest optimistic
  kDynamic,  ///< lookahead-free self-adaptive (the paper's best performer)
};

const char* to_string(Configuration c);
const char* to_string(OrderingMode m);
const char* to_string(ConservativeStrategy s);

/// One scheduled crash-stop failure: worker `worker` dies the moment its
/// cumulative processed-event count reaches `after_events`.  The counter is
/// never rolled back by recovery, so each entry fires at most once.
struct WorkerCrash {
  std::uint32_t worker = 0;
  std::uint64_t after_events = 0;
};

/// Deterministic fault-injection plan for the inter-worker transport
/// (transport.h) and for whole-worker crash-stop failures (checkpoint.h).
/// All link probabilities are per submitted packet; faults are drawn from a
/// per-link RNG seeded from `seed`, so any given plan is fully reproducible.
/// A default-constructed plan injects nothing (perfect wire, no crashes).
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop = 0.0;       ///< P(packet vanishes on the wire)
  double duplicate = 0.0;  ///< P(packet is delivered twice)
  double reorder = 0.0;    ///< P(packet is held back behind later traffic)
  /// Extra per-packet latency, uniform in [0, jitter], in engine time units
  /// (only meaningful for wires with a latency model, i.e. the machine
  /// engine; the threaded wire has no explicit timing).
  double jitter = 0.0;
  double blackout = 0.0;  ///< P(a submission starts a transient link outage)
  /// Length of a blackout, counted in subsequent submissions on the link
  /// (all of them are dropped).
  std::uint32_t blackout_span = 8;

  /// P(a worker crash-stops) per event it processes, drawn from a per-worker
  /// RNG seeded from `seed`.  Crash RNG cursors advance monotonically and
  /// are never restored from a checkpoint (a machine's MTBF does not rewind
  /// with the simulation), so recovery always makes forward progress.
  double crash_rate = 0.0;
  /// Explicit crash schedule, for reproducing precise failure timings.
  std::vector<WorkerCrash> crashes;

  /// Link faults only; gates the FaultyTransport decorator.
  [[nodiscard]] bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || jitter > 0 ||
           blackout > 0;
  }
  /// Worker crash-stop failures; gates checkpointing and heartbeats.
  [[nodiscard]] bool crash_active() const {
    return crash_rate > 0 || !crashes.empty();
  }
};

/// Transport stack selection: which fault plan the wire is wrapped with and
/// whether the ReliableChannel layer (sequence numbers, dedup, cumulative
/// acks, retransmission) restores exactly-once in-order delivery on top.
struct TransportConfig {
  FaultPlan faults;
  bool reliable = false;
  /// Retransmission attempts per packet before the run aborts with a
  /// structured TransportError (a link that never delivers is dead).  Sized
  /// against the sync rounds' drain-to-quiescence loop, which force-flushes
  /// every pass with no RTO pacing: a healthy link riding out a few
  /// blackout_span windows back-to-back must not be declared dead.
  std::uint32_t max_retries = 100;
  /// Initial retransmit timeout in engine time units (virtual clock for the
  /// machine engine, scheduler loop iterations for the threaded engine),
  /// doubled via `rto_backoff` after every retry.
  double rto = 16.0;
  double rto_backoff = 2.0;
};

/// What to do with a dead worker's LPs after recovery.
enum class RecoveryPolicy : std::uint8_t {
  /// Re-instantiate the lost worker in place and hand its partition back
  /// (models a node restart / hot spare).  The threaded engine cannot
  /// respawn OS threads mid-run and silently degrades to kRedistribute.
  kRestart,
  /// Spread the dead worker's LPs round-robin across the survivors and
  /// retire the worker permanently (graceful degradation).
  kRedistribute,
};

const char* to_string(RecoveryPolicy p);

/// GVT-consistent checkpoint/restart (checkpoint.h).  Checkpointing is also
/// forced on whenever the fault plan schedules crashes, so a crashed run can
/// always fall back to at least the initial snapshot.
struct CheckpointConfig {
  /// Take a checkpoint every `period` GVT rounds; 0 disables periodic
  /// checkpoints (only the initial pre-run snapshot is kept when crashes
  /// are scheduled).
  std::uint32_t period = 0;
  /// Retained snapshots in the in-memory store (ring buffer, newest wins).
  std::size_t keep = 2;
  /// When non-empty, spill the portable section of each checkpoint to
  /// `<spill_dir>/ckpt-<round>.bin` and verify it reads back identically.
  std::string spill_dir;
  RecoveryPolicy policy = RecoveryPolicy::kRestart;
  /// Recoveries allowed before the run aborts with a RecoveryError (a
  /// crash-looping cluster must fail, not spin).
  std::uint32_t max_recoveries = 8;
  /// GVT rounds a worker may miss before it is declared dead.
  std::uint32_t heartbeat_rounds = 1;
  /// Distributed engine only: how many ranks hold every global checkpoint.
  /// Each rank fans its checkpoint share out to the `replicas` lowest live
  /// ranks, each of which assembles and durably spills the full snapshot --
  /// so the coordinator's death loses neither the checkpoint nor the
  /// buffered output commits.  Clamped to the rank count; >= 1.
  std::uint32_t replicas = 2;
  /// Distributed engine only: before starting, scan `spill_dir` for the
  /// newest valid spilled snapshot and resume from it instead of from the
  /// initial state (kill -9 of the whole process tree is survivable).
  /// Requires a non-empty `spill_dir`.
  bool resume = false;
};

/// Socket layer of the multi-process distributed engine (pdes/distributed.h,
/// src/net).  All durations are wall-clock milliseconds: unlike the in-
/// process engines, rank death and link outages are physical phenomena and
/// must be detected on a physical clock.
struct NetConfig {
  /// Directory for the per-rank Unix-domain listening sockets
  /// (`<dir>/rank-<i>.sock`).  Empty: a fresh directory under $TMPDIR.
  std::string socket_dir;
  /// Use TCP loopback instead of Unix-domain sockets; rank i listens on
  /// `host:base_port + i`.
  bool tcp = false;
  std::string host = "127.0.0.1";
  std::uint16_t base_port = 0;
  /// Heartbeat cadence; every rank heartbeats every peer so silence is
  /// detectable on any link, not just at the coordinator.
  std::uint32_t heartbeat_interval_ms = 20;
  /// Silence on a rank (no frame of any kind) after which the coordinator
  /// declares it dead and starts recovery.
  std::uint32_t heartbeat_timeout_ms = 1000;
  /// Window for the initial full-mesh connect (covers listener-bind races
  /// at process startup).
  std::uint32_t connect_timeout_ms = 5000;
  /// Consecutive failed redials of one peer before the link is declared
  /// dead for good (surfaces as a structured TransportError when nothing
  /// can recover it).  A successful reconnect resets the counter.
  std::uint32_t reconnect_max_attempts = 10;
  /// Exponential-backoff delay between redials: min(base << attempt, max).
  std::uint32_t reconnect_base_ms = 2;
  std::uint32_t reconnect_max_ms = 250;
  /// Upper bound on one wire frame; larger frames are a protocol error.
  std::uint32_t max_frame_bytes = 64u << 20;

  /// Deterministic transient-disconnect injection: after `src` has written
  /// `after_data_frames` data frames to `dst`, the connection is hard-closed
  /// once (with its buffered bytes discarded), forcing a backoff reconnect
  /// plus retransmission.  Test hook for the reconnect path.
  struct Disconnect {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t after_data_frames = 0;
  };
  std::vector<Disconnect> disconnects;
};

/// Structured configuration-validation failure: which field is bad and why.
/// Engines surface this via RunStats::config_error instead of running with
/// silently nonsensical parameters.
struct ConfigError {
  std::string field;
  std::string message;
  [[nodiscard]] std::string str() const;
};

std::optional<ConfigError> validate(const FaultPlan& plan,
                                    std::size_t num_workers);
std::optional<ConfigError> validate(const TransportConfig& transport,
                                    std::size_t num_workers);
struct AdaptPolicy;
std::optional<ConfigError> validate(const AdaptPolicy& adapt);
std::optional<ConfigError> validate_net(const NetConfig& net,
                                        std::size_t num_ranks);
struct RunConfig;
std::optional<ConfigError> validate(const RunConfig& config);
/// Everything validate() checks plus the distributed-engine-specific rules
/// (net parameters, explicit crash schedules only, no periodic rebalancing).
std::optional<ConfigError> validate_distributed(const RunConfig& config);

/// Wall-clock scale factor from $VSIM_TIME_SCALE (>= 1, clamped to [1, 100];
/// unset or unparsable reads as 1).  Sanitizer CI legs set it so heartbeat
/// timeouts, reconnect budgets, and test watchdogs all stretch together
/// instead of a slow instrumented run being mistaken for a dead rank.
[[nodiscard]] double time_scale();

/// Parameters of the self-adaptation policy (evaluated per LP at GVT rounds
/// by the AdaptController in adaptive.h).  Decisions are driven by
/// EWMA-smoothed *rates* folded across GVT windows, not by one window's raw
/// counters: a single bursty window can neither demote a healthy LP nor
/// promote a rollback-prone one.  See DESIGN.md "Dynamic adaptation".
struct AdaptPolicy {
  /// Wasted-work fraction (events undone net of re-executed work, per event
  /// processed; EWMA-smoothed) above which an optimistic LP turns
  /// conservative.  Scaled up with the worker count via `p_headroom`: per-LP
  /// windows shrink as P grows, so the same constant over-demotes at high P.
  double rollback_rate_high = 0.5;
  /// Wasted-work EWMA below which a blocked conservative LP's record counts
  /// as clean for re-promotion.
  double rollback_rate_low = 0.1;
  /// Minimum events accumulated since the last mode flip before a demotion
  /// is considered, and the base unit of blocked-poll promotion evidence.
  std::uint32_t min_window_events = 8;
  /// Each optimistic->conservative demotion doubles the blocked-poll
  /// evidence required before the next re-promotion (left-shift of
  /// min_window_events, saturating at this many doublings).  Breaks the
  /// demote/promote ping-pong of LPs that only ever look good while idle.
  /// Must be < 32 (validated): larger caps would shift into UB territory.
  std::uint32_t promotion_backoff_cap = 4;
  /// EWMA smoothing factor per *active* window (one with >= 1 event):
  /// rate += alpha * (observation - rate).  Smaller = smoother = slower to
  /// react; 1.0 degenerates to single-window decisions.
  double rate_alpha = 0.4;
  /// Per-worker headroom on the demotion threshold: the effective high
  /// threshold is rollback_rate_high * (1 + p_headroom * (P - 1)), capped
  /// at 1.0 by construction of the waste fraction.
  double p_headroom = 0.05;
  /// Active windows observed since the last mode flip before a demotion is
  /// considered (>= 1).  Rollback bursts shorter than this never demote.
  std::uint32_t min_decision_windows = 3;
  /// Avalanche guard: at most this fraction of a controller's LP scope may
  /// be demoted per GVT round (rounded up, so always >= 1 when any LP
  /// qualifies).  A long feedback lattice can only turn conservative
  /// incrementally, giving the EWMAs time to observe the mixed-mode cost.
  double max_demote_fraction = 0.125;
  /// Consecutive memory-stall-dominated windows before an optimistic LP is
  /// pinned conservative (>= 1).  One stalled window under a tight history
  /// cap is normal backpressure; a persistent streak is a far-ahead LP.
  std::uint32_t pin_stall_windows = 3;
};

/// Dynamic load balancing: at a configurable cadence of GVT rounds the
/// round coordinator scores the current placement from the merged per-LP
/// work counters, and migrates a bounded set of LPs from overloaded to
/// underloaded workers (partition/rebalance.h).  Migration happens inside
/// the round, where the network is quiescent and every worker is parked, so
/// LP state moves via the checkpoint codec with nothing in flight.
struct RebalanceConfig {
  /// Consider migrating every `period` GVT rounds; 0 disables rebalancing.
  std::uint32_t period = 0;
  /// Upper bound on LPs moved per rebalance round (migration has real cost;
  /// moving everything at once just trades one imbalance for another).
  std::uint32_t max_moves = 4;
  /// Hysteresis: do nothing while (max-min)/avg worker load is below this,
  /// so a placement within tolerance never thrashes.
  double imbalance_trigger = 0.25;
  /// A candidate move must shave at least this fraction of the src/dst load
  /// gap, or it is not worth the migration cost.
  double min_gain = 0.05;
  /// Weight of undone (rolled-back) events in the per-LP work score;
  /// committed work counts 1.0 per event.
  double rollback_weight = 0.5;
  /// Tie-break weight of the cut-size delta a move would cause: among
  /// near-equal load moves, prefer the one that cuts fewer channels.
  double cut_weight = 0.1;

  [[nodiscard]] bool enabled() const { return period > 0; }
};

struct RunConfig {
  std::size_t num_workers = 1;
  Configuration configuration = Configuration::kDynamic;
  OrderingMode ordering = OrderingMode::kArbitrary;
  ConservativeStrategy strategy = ConservativeStrategy::kGlobalSync;
  CancellationPolicy cancellation = CancellationPolicy::kAggressive;
  /// Use LogicalProcess::lookahead() for null messages (Fig. 4 "la" column).
  bool use_lookahead = false;
  /// Events processed per worker between GVT rounds (optimistic workers);
  /// conservative workers trigger rounds when blocked.
  std::uint32_t gvt_interval = 64;
  /// Simulate until this physical time (inclusive); events beyond it are
  /// left unprocessed.
  PhysTime until = std::numeric_limits<PhysTime>::max();
  /// Cap on per-LP saved history entries; 0 = unlimited.  When the cap is
  /// hit, the LP stalls until fossil collection (models memory pressure).
  std::size_t max_history = 0;
  AdaptPolicy adapt;
  /// Abort threshold for the deadlock detector: a deadlock is declared
  /// when a synchronisation round cannot advance the safe bound and no LP
  /// processed an event since the previous round this many times in a row.
  std::uint32_t deadlock_rounds = 3;
  /// Inter-worker transport stack (fault injection + reliable delivery).
  TransportConfig transport;
  /// GVT-consistent checkpointing and crash recovery.
  CheckpointConfig checkpoint;
  /// Dynamic load balancing via LP migration at GVT rounds.
  RebalanceConfig rebalance;
  /// Socket layer of the multi-process distributed engine; ignored by the
  /// in-process engines.
  NetConfig net;
  /// Optional event-trace sink (obs/trace.h).  The session must have at
  /// least `num_workers` tracks and outlive the engine.  When null, engines
  /// fall back to the $VSIM_TRACE process-global tracer (if set); tracing is
  /// otherwise off.  Not owned.
  obs::TraceSession* trace = nullptr;
};

}  // namespace vsim::pdes
