// Per-LP, per-worker and global statistics collected by all engines.
//
// The authoritative cross-run aggregation lives in obs/metrics.h: engines
// feed a sharded MetricsRegistry during the run and fold these structs into
// it at termination (absorb_run_stats), so RunStats::metrics carries every
// counter under its schema name (`tw.rollbacks`, `net.null_messages`, ...).
// The total_*() helpers below remain as cheap conveniences over the raw
// per-LP/per-worker vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "pdes/checkpoint.h"
#include "pdes/transport.h"

namespace vsim::pdes {

/// Counters kept by one LpRuntime.  Metrics schema: summed over LPs these
/// become the `tw.*` / `engine.*` counters noted per field.
struct LpStats {
  /// Events executed, including rolled-back work that was re-executed
  /// (metrics: `engine.events_processed`).
  std::uint64_t events_processed = 0;
  /// Events at or below the final GVT, i.e. definitely part of the committed
  /// trajectory (metrics: `engine.events_committed`).
  std::uint64_t events_committed = 0;
  /// Rollback episodes triggered by stragglers or anti-messages
  /// (metrics: `tw.rollbacks`).
  std::uint64_t rollbacks = 0;
  /// Speculative events undone across all rollbacks (metrics:
  /// `tw.events_undone`; per-episode distribution: `tw.rollback_depth`).
  std::uint64_t events_undone = 0;
  /// Anti-messages emitted by aggressive or settled-lazy cancellation
  /// (metrics: `tw.anti_messages`).
  std::uint64_t anti_messages_sent = 0;
  /// Positive/anti pairs that met and annihilated in a pending queue
  /// (metrics: `tw.annihilations`).
  std::uint64_t annihilations = 0;
  /// Re-sends suppressed by lazy cancellation's identical-message match
  /// (metrics: `tw.lazy_reuses`).
  std::uint64_t lazy_reuses = 0;
  /// Lazy entries that re-execution failed to regenerate, settled as
  /// anti-messages (metrics: `tw.lazy_cancels`).
  std::uint64_t lazy_cancels = 0;
  /// State snapshots taken before optimistic event execution
  /// (metrics: `tw.state_saves`).
  std::uint64_t state_saves = 0;
  /// Peak saved-history length of THIS LP (memory proxy).  Aggregations:
  /// max over LPs = `tw.peak_history` (RunStats::peak_history()), sum over
  /// LPs = `tw.total_history` (RunStats::total_history()).  On a clustered
  /// graph the runtime LP is a ClusterLp, so this is the *per-cluster* peak
  /// (one history entry per inner event executed by the cluster) and the
  /// per_lp vector has one slot per cluster, not per flat LP --
  /// ClusterStats.MetricsMatchLegacyTotalsUnderClustering pins the
  /// gauge/legacy-total equivalence under fusing.
  std::size_t max_history = 0;
  /// Conservative<->optimistic transitions by the dynamic configuration
  /// (metrics: `tw.mode_switches`).
  std::uint64_t mode_switches = 0;
  /// Optimistic->conservative adaptation flips (metrics: `adapt.demotions`).
  std::uint64_t adapt_demotions = 0;
  /// Conservative->optimistic adaptation flips (metrics: `adapt.promotions`).
  std::uint64_t adapt_promotions = 0;
  /// Times this LP was pinned conservative by persistent memory stalls
  /// (metrics: `adapt.pinned`; at most 1 per LP between recoveries).
  std::uint64_t adapt_pins = 0;
  /// 1 when the LP ended the run in optimistic mode (maintained by
  /// LpRuntime, so the distributed codec ships it for free); the mean over
  /// LPs is the `adapt.optimistic_fraction` gauge.
  std::uint64_t final_optimistic = 0;
  /// Times the LP had pending work that was not yet provably safe
  /// (metrics: `engine.blocked_polls`).
  std::uint64_t blocked_polls = 0;
  /// Speculative events undone by checkpoint capture (rollback-all-deferred);
  /// kept separate from `rollbacks` so adaptation stats stay meaningful
  /// (metrics: `ckpt.events_undone`).
  std::uint64_t checkpoint_undone = 0;
  /// Pending-queue operations (push + pop + annihilation) performed by this
  /// LP's PendingQueue (metrics: `engine.queue_ops`).  Mirrors
  /// PendingQueue::ops(), which is monotonic across checkpoint restores.
  std::uint64_t queue_ops = 0;
};

/// Counters kept by one engine worker (a modelled machine or an OS thread).
struct WorkerStats {
  /// Accumulated useful + wasted work units charged to this worker.
  double busy_cost = 0.0;
  /// Machine model: the worker's final virtual clock (max over workers is
  /// the run's makespan, metrics gauge `engine.makespan`).
  double final_clock = 0.0;
  /// Events this worker processed, including re-executions
  /// (sharded live into metrics `engine.events_processed`).
  std::uint64_t events = 0;
  /// Data events routed to an LP on another worker, anti-messages included,
  /// null messages excluded (metrics: `net.messages_remote`).
  std::uint64_t messages_sent_remote = 0;
  /// Data events routed within this worker (metrics: `net.messages_local`).
  std::uint64_t messages_sent_local = 0;
  /// Chandy-Misra-Bryant null messages emitted by this worker's LPs
  /// (metrics: `net.null_messages`).
  std::uint64_t null_messages = 0;
};

/// Why a run aborted without finishing, and who was stuck.  Replaces the
/// old bare `deadlocked` flag with actionable per-LP diagnostics, and
/// distinguishes a genuine protocol deadlock from transport starvation
/// (messages lost by a lossy transport without reliable delivery).
struct DeadlockReport {
  VirtualTime gvt;  ///< the bound the run could not advance past
  bool transport_starvation = false;
  struct LpDiag {
    LpId id = kInvalidLp;
    VirtualTime next_ts;            ///< minimal pending timestamp
    VirtualTime min_channel_clock;  ///< null-message strategy, else kTimeInf
    std::size_t pending = 0;        ///< pending-queue length
    SyncMode mode = SyncMode::kConservative;
  };
  std::vector<LpDiag> blocked;  ///< every LP that still had pending work

  [[nodiscard]] std::string str() const;
};

struct RunStats {
  std::vector<LpStats> per_lp;
  std::vector<WorkerStats> per_worker;
  std::uint64_t gvt_rounds = 0;
  bool deadlocked = false;
  double makespan = 0.0;  ///< machine model: max worker clock at termination
  TransportCounters transport;
  /// Set when the reliable layer gave up on a link, or when a lossy run
  /// finished without reliable delivery (results cannot be trusted).
  std::optional<TransportError> transport_error;
  /// Populated whenever `deadlocked` is set.
  std::optional<DeadlockReport> deadlock_report;
  /// Fault-tolerance accounting (checkpoints, crashes, recoveries).
  CheckpointStats checkpoint;
  /// Set when a worker crash could not be recovered from (budget exhausted
  /// or no survivors); the run's results are partial.
  std::optional<RecoveryError> recovery_error;
  /// Set when the configuration failed validation; the run never started.
  std::optional<ConfigError> config_error;
  /// Distributed engine: the rank that was coordinating at termination and
  /// the recovery epoch it finished under.  0 / 0 for the in-process engines
  /// and for distributed runs that never failed over.  Deterministic given
  /// the same seed + fault plan, so succession tests pin them.
  std::uint32_t final_coordinator = 0;
  std::uint32_t final_epoch = 0;
  /// Merged metrics snapshot (obs/metrics.h), taken after the engine folded
  /// this struct's totals in.  Empty (all zeros) for hand-built RunStats.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_processed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_committed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_rollbacks() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.rollbacks;
    return n;
  }
  [[nodiscard]] std::uint64_t total_null_messages() const {
    std::uint64_t n = 0;
    for (const auto& s : per_worker) n += s.null_messages;
    return n;
  }
  /// Largest saved-history length reached by ANY single LP.  (Historically
  /// this summed the per-LP maxima; that aggregate lives on as
  /// total_history().)
  [[nodiscard]] std::size_t peak_history() const {
    std::size_t n = 0;
    for (const auto& s : per_lp)
      if (s.max_history > n) n = s.max_history;
    return n;
  }
  /// Sum of the per-LP peak history lengths: an upper bound on the run's
  /// aggregate saved-state footprint (the memory-pressure proxy plotted by
  /// the fig6/ablation benches).
  [[nodiscard]] std::size_t total_history() const {
    std::size_t n = 0;
    for (const auto& s : per_lp) n += s.max_history;
    return n;
  }
};

/// Folds this RunStats' totals (per-LP counters, transport, checkpoint,
/// history gauges) into shard 0 of `reg`.  Engines call it exactly once at
/// termination, before the final merge; the shard-native counters
/// (events processed, messages, GVT rounds, rollback-depth samples) are NOT
/// re-added here.
void absorb_run_stats(obs::MetricsRegistry& reg, const RunStats& st);

}  // namespace vsim::pdes
