// Per-LP, per-worker and global statistics collected by all engines.
#pragma once

#include <cstdint>
#include <vector>

namespace vsim::pdes {

struct LpStats {
  std::uint64_t events_processed = 0;  ///< includes re-executions
  std::uint64_t events_committed = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t events_undone = 0;
  std::uint64_t anti_messages_sent = 0;
  std::uint64_t annihilations = 0;
  std::uint64_t lazy_reuses = 0;   ///< re-sends suppressed by lazy matching
  std::uint64_t lazy_cancels = 0;  ///< lazy entries settled as anti-messages
  std::uint64_t state_saves = 0;
  std::size_t max_history = 0;   ///< peak saved-history length (memory proxy)
  std::uint64_t mode_switches = 0;
  std::uint64_t blocked_polls = 0;  ///< times the LP had work but it was unsafe
};

struct WorkerStats {
  double busy_cost = 0.0;      ///< accumulated useful + wasted work units
  double final_clock = 0.0;    ///< machine model: worker's final virtual clock
  std::uint64_t events = 0;
  std::uint64_t messages_sent_remote = 0;
  std::uint64_t messages_sent_local = 0;
  std::uint64_t null_messages = 0;
};

struct RunStats {
  std::vector<LpStats> per_lp;
  std::vector<WorkerStats> per_worker;
  std::uint64_t gvt_rounds = 0;
  bool deadlocked = false;
  double makespan = 0.0;  ///< machine model: max worker clock at termination

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_processed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_committed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_rollbacks() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.rollbacks;
    return n;
  }
  [[nodiscard]] std::uint64_t total_null_messages() const {
    std::uint64_t n = 0;
    for (const auto& s : per_worker) n += s.null_messages;
    return n;
  }
  [[nodiscard]] std::size_t peak_history() const {
    std::size_t n = 0;
    for (const auto& s : per_lp) n += s.max_history;
    return n;
  }
};

}  // namespace vsim::pdes
