// Per-LP, per-worker and global statistics collected by all engines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pdes/checkpoint.h"
#include "pdes/transport.h"

namespace vsim::pdes {

struct LpStats {
  std::uint64_t events_processed = 0;  ///< includes re-executions
  std::uint64_t events_committed = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t events_undone = 0;
  std::uint64_t anti_messages_sent = 0;
  std::uint64_t annihilations = 0;
  std::uint64_t lazy_reuses = 0;   ///< re-sends suppressed by lazy matching
  std::uint64_t lazy_cancels = 0;  ///< lazy entries settled as anti-messages
  std::uint64_t state_saves = 0;
  std::size_t max_history = 0;   ///< peak saved-history length (memory proxy)
  std::uint64_t mode_switches = 0;
  std::uint64_t blocked_polls = 0;  ///< times the LP had work but it was unsafe
  /// Speculative events undone by checkpoint capture (rollback-all-deferred);
  /// kept separate from `rollbacks` so adaptation stats stay meaningful.
  std::uint64_t checkpoint_undone = 0;
};

struct WorkerStats {
  double busy_cost = 0.0;      ///< accumulated useful + wasted work units
  double final_clock = 0.0;    ///< machine model: worker's final virtual clock
  std::uint64_t events = 0;
  std::uint64_t messages_sent_remote = 0;
  std::uint64_t messages_sent_local = 0;
  std::uint64_t null_messages = 0;
};

/// Why a run aborted without finishing, and who was stuck.  Replaces the
/// old bare `deadlocked` flag with actionable per-LP diagnostics, and
/// distinguishes a genuine protocol deadlock from transport starvation
/// (messages lost by a lossy transport without reliable delivery).
struct DeadlockReport {
  VirtualTime gvt;  ///< the bound the run could not advance past
  bool transport_starvation = false;
  struct LpDiag {
    LpId id = kInvalidLp;
    VirtualTime next_ts;            ///< minimal pending timestamp
    VirtualTime min_channel_clock;  ///< null-message strategy, else kTimeInf
    std::size_t pending = 0;        ///< pending-queue length
    SyncMode mode = SyncMode::kConservative;
  };
  std::vector<LpDiag> blocked;  ///< every LP that still had pending work

  [[nodiscard]] std::string str() const;
};

struct RunStats {
  std::vector<LpStats> per_lp;
  std::vector<WorkerStats> per_worker;
  std::uint64_t gvt_rounds = 0;
  bool deadlocked = false;
  double makespan = 0.0;  ///< machine model: max worker clock at termination
  TransportCounters transport;
  /// Set when the reliable layer gave up on a link, or when a lossy run
  /// finished without reliable delivery (results cannot be trusted).
  std::optional<TransportError> transport_error;
  /// Populated whenever `deadlocked` is set.
  std::optional<DeadlockReport> deadlock_report;
  /// Fault-tolerance accounting (checkpoints, crashes, recoveries).
  CheckpointStats checkpoint;
  /// Set when a worker crash could not be recovered from (budget exhausted
  /// or no survivors); the run's results are partial.
  std::optional<RecoveryError> recovery_error;
  /// Set when the configuration failed validation; the run never started.
  std::optional<ConfigError> config_error;

  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_processed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.events_committed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_rollbacks() const {
    std::uint64_t n = 0;
    for (const auto& s : per_lp) n += s.rollbacks;
    return n;
  }
  [[nodiscard]] std::uint64_t total_null_messages() const {
    std::uint64_t n = 0;
    for (const auto& s : per_worker) n += s.null_messages;
    return n;
  }
  [[nodiscard]] std::size_t peak_history() const {
    std::size_t n = 0;
    for (const auto& s : per_lp) n += s.max_history;
    return n;
  }
};

}  // namespace vsim::pdes
