// Self-adaptation policy (the paper's dynamic configuration) and the
// initial-mode assignment for the four global configurations.
#pragma once

#include "pdes/config.h"
#include "pdes/lp_runtime.h"

namespace vsim::pdes {

/// Initial synchronisation mode of `lp` under global configuration `c`.
inline SyncMode initial_mode(Configuration c, const LogicalProcess& lp) {
  switch (c) {
    case Configuration::kAllOptimistic:
      return SyncMode::kOptimistic;
    case Configuration::kAllConservative:
      return SyncMode::kConservative;
    case Configuration::kMixed:
      return lp.sync_hint() ? SyncMode::kConservative : SyncMode::kOptimistic;
    case Configuration::kDynamic:
      // Optimism is generally suitable for digital simulation (Sec. 4);
      // rollback-prone LPs demote themselves at GVT rounds.
      return SyncMode::kOptimistic;
  }
  return SyncMode::kConservative;
}

/// Evaluated per LP at every GVT round when the configuration is kDynamic:
/// optimistic LPs with a high rollback rate turn conservative; starving
/// conservative LPs with a clean recent record turn optimistic.
inline void adapt_lp(LpRuntime& rt, const AdaptPolicy& p) {
  const std::uint64_t events = rt.window_events();
  const std::uint64_t rollbacks = rt.window_rollbacks();
  if (rt.mode() == SyncMode::kOptimistic) {
    if (events >= p.min_window_events &&
        static_cast<double>(rollbacks) >
            p.rollback_rate_high * static_cast<double>(events)) {
      rt.set_mode(SyncMode::kConservative);
    } else if (rt.window_memory_stalls() >= p.min_window_events) {
      // Persistent far-ahead LPs (clocks, stimuli) exhaust Time Warp
      // memory; they are exactly the "very persistent" synchronous
      // components the paper runs conservatively.  Pinned: re-promoting
      // them would just oscillate between stall and demotion.
      rt.pin_conservative();
    }
  } else {
    if (!rt.pinned_conservative() &&
        rt.window_blocked() >= p.min_window_events &&
        static_cast<double>(rollbacks) <=
            p.rollback_rate_low * static_cast<double>(events + 1)) {
      rt.set_mode(SyncMode::kOptimistic);
    }
  }
  rt.reset_window();
}

}  // namespace vsim::pdes
