// Self-adaptation policy (the paper's dynamic configuration) and the
// initial-mode assignment for the four global configurations.
//
// Decisions are rate-based (see DESIGN.md "Dynamic adaptation"): the
// controller folds each LP's GVT-window counters into EWMA-smoothed
// wasted-work rates carried across rounds, so one bursty window can neither
// demote a healthy LP nor promote a rollback-prone one.  Three guards keep
// the policy from collapsing a tightly-coupled graph (the IIR post-mortem):
//   1. Demotion charges only *wasted* work (events undone per event
//      processed, re-executions counted once), smoothed over at least
//      min_decision_windows active windows.
//   2. The demotion threshold scales up with the worker count: per-LP
//      windows shrink as P grows, so constants tuned at P<=8 over-demote.
//   3. A per-round demotion budget (max_demote_fraction of the controller's
//      scope) stops an avalanche: mixed-mode operation on a feedback path
//      *creates* rollbacks downstream, so demoting everything at once reads
//      its own damage as confirmation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "pdes/config.h"
#include "pdes/lp_runtime.h"

namespace vsim::pdes {

/// Initial synchronisation mode of `lp` under global configuration `c`.
inline SyncMode initial_mode(Configuration c, const LogicalProcess& lp) {
  switch (c) {
    case Configuration::kAllOptimistic:
      return SyncMode::kOptimistic;
    case Configuration::kAllConservative:
      return SyncMode::kConservative;
    case Configuration::kMixed:
      return lp.sync_hint() ? SyncMode::kConservative : SyncMode::kOptimistic;
    case Configuration::kDynamic:
      // Optimism is generally suitable for digital simulation (Sec. 4);
      // rollback-prone LPs demote themselves at GVT rounds.
      return SyncMode::kOptimistic;
  }
  return SyncMode::kConservative;
}

/// What the controller did with one LP this round.
enum class AdaptAction : std::uint8_t {
  kNone,      ///< no transition (includes pinned LPs, skipped entirely)
  kDemote,    ///< optimistic -> conservative
  kPromote,   ///< conservative -> optimistic
  kPin,       ///< pinned conservative (persistent memory stalls)
  kDeferred,  ///< demotion warranted but the round's budget was spent
};

inline const char* to_string(AdaptAction a) {
  switch (a) {
    case AdaptAction::kNone: return "none";
    case AdaptAction::kDemote: return "demote";
    case AdaptAction::kPromote: return "promote";
    case AdaptAction::kPin: return "pin";
    case AdaptAction::kDeferred: return "defer";
  }
  return "?";
}

/// One decision plus the rates that triggered it (for trace instants; the
/// rates are captured *before* the flip resets the LP's evidentiary record).
struct AdaptDecision {
  AdaptAction action = AdaptAction::kNone;
  double waste_rate = 0.0;            ///< EWMA at decision time
  std::uint64_t blocked = 0;          ///< blocked polls since the last flip
};

/// Per-scope adaptation controller.  One instance per deterministic sweep
/// scope -- the whole engine (machine model), one worker's owned set
/// (threaded), or one rank's owned set (distributed) -- so the demotion
/// budget is consumed in the scope's fixed iteration order and decisions
/// replay identically for identical inputs.
class AdaptController {
 public:
  AdaptController(const AdaptPolicy& policy, std::size_t num_workers)
      : policy_(policy),
        high_eff_(policy.rollback_rate_high *
                  (1.0 + policy.p_headroom *
                             static_cast<double>(
                                 num_workers > 0 ? num_workers - 1 : 0))) {}

  /// Starts a GVT round over a scope of `scope_lps` LPs: refills the
  /// demotion budget (ceil of the configured fraction, so any non-empty
  /// scope may demote at least one LP per round).
  void begin_round(std::size_t scope_lps) {
    const double raw =
        policy_.max_demote_fraction * static_cast<double>(scope_lps);
    demote_budget_ =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(raw)));
  }

  /// Effective demotion threshold after worker-count scaling.
  [[nodiscard]] double high_threshold() const { return high_eff_; }
  /// Demotions still allowed this round.
  [[nodiscard]] std::uint64_t demote_budget() const { return demote_budget_; }

  /// Blocked-poll evidence required to re-promote an LP with `demotions`
  /// lifetime demotions: min_window_events doubled per demotion, saturating
  /// at promotion_backoff_cap doublings (cap validated < 32, so the shift
  /// never overflows).
  [[nodiscard]] std::uint64_t promotion_evidence(
      std::uint64_t demotions) const {
    const std::uint64_t shift = std::min<std::uint64_t>(
        demotions, std::min<std::uint64_t>(policy_.promotion_backoff_cap, 31));
    return static_cast<std::uint64_t>(policy_.min_window_events) << shift;
  }

  /// Evaluates one LP at a GVT round: folds its window into the rates and
  /// applies the transition rules.  Pinned LPs short-circuit before any rate
  /// math (their window counters are never consulted again, so they skip
  /// the fold/reset churn entirely).
  AdaptDecision adapt(LpRuntime& rt) {
    AdaptDecision d;
    if (rt.pinned_conservative()) return d;
    rt.fold_window(policy_);
    d.waste_rate = rt.waste_rate();
    d.blocked = rt.blocked_since_flip();

    if (rt.mode() == SyncMode::kOptimistic) {
      if (rt.stall_streak() >= policy_.pin_stall_windows) {
        // Persistent far-ahead LPs (clocks, stimuli) exhaust Time Warp
        // memory; they are exactly the "very persistent" synchronous
        // components the paper runs conservatively.  Pinned: re-promoting
        // them would just oscillate between stall and demotion.
        rt.pin_conservative();
        d.action = AdaptAction::kPin;
        return d;
      }
      if (rt.active_windows() >= policy_.min_decision_windows &&
          rt.evidence_events() >= policy_.min_window_events &&
          rt.waste_rate() > high_eff_) {
        if (demote_budget_ == 0) {
          d.action = AdaptAction::kDeferred;
          return d;
        }
        --demote_budget_;
        rt.set_mode(SyncMode::kConservative);
        d.action = AdaptAction::kDemote;
      }
      return d;
    }

    // Conservative.  Promotion needs cumulative blocked evidence escalated
    // by the demotion count, plus a clean record: either the LP has been
    // fully starved since the flip (a throttled LP parked just above the
    // safe bound is the very LP speculation helps -- trapping it would cost
    // real speedup) or its smoothed waste rate is below the low threshold.
    if (rt.blocked_since_flip() >= promotion_evidence(rt.demotions()) &&
        (rt.active_windows() == 0 ||
         rt.waste_rate() <= policy_.rollback_rate_low)) {
      rt.set_mode(SyncMode::kOptimistic);
      d.action = AdaptAction::kPromote;
    }
    return d;
  }

 private:
  AdaptPolicy policy_;
  double high_eff_;
  std::uint64_t demote_budget_ = 1;
};

}  // namespace vsim::pdes
