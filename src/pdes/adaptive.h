// Self-adaptation policy (the paper's dynamic configuration) and the
// initial-mode assignment for the four global configurations.
#pragma once

#include "pdes/config.h"
#include "pdes/lp_runtime.h"

namespace vsim::pdes {

/// Initial synchronisation mode of `lp` under global configuration `c`.
inline SyncMode initial_mode(Configuration c, const LogicalProcess& lp) {
  switch (c) {
    case Configuration::kAllOptimistic:
      return SyncMode::kOptimistic;
    case Configuration::kAllConservative:
      return SyncMode::kConservative;
    case Configuration::kMixed:
      return lp.sync_hint() ? SyncMode::kConservative : SyncMode::kOptimistic;
    case Configuration::kDynamic:
      // Optimism is generally suitable for digital simulation (Sec. 4);
      // rollback-prone LPs demote themselves at GVT rounds.
      return SyncMode::kOptimistic;
  }
  return SyncMode::kConservative;
}

/// Evaluated per LP at every GVT round when the configuration is kDynamic:
/// optimistic LPs with a high rollback rate turn conservative; starving
/// conservative LPs with a clean recent record turn optimistic.
inline void adapt_lp(LpRuntime& rt, const AdaptPolicy& p) {
  const std::uint64_t events = rt.window_events();
  const std::uint64_t rollbacks = rt.window_rollbacks();
  if (rt.mode() == SyncMode::kOptimistic) {
    if (events >= p.min_window_events &&
        static_cast<double>(rollbacks) >
            p.rollback_rate_high * static_cast<double>(events)) {
      rt.set_mode(SyncMode::kConservative);
    } else if (rt.window_memory_stalls() >= p.min_window_events) {
      // Persistent far-ahead LPs (clocks, stimuli) exhaust Time Warp
      // memory; they are exactly the "very persistent" synchronous
      // components the paper runs conservatively.  Pinned: re-promoting
      // them would just oscillate between stall and demotion.
      rt.pin_conservative();
    }
  } else {
    // Re-promotion is damped by demotion-count hysteresis.  The rollback-
    // rate test is vacuous for a fully starved window (events == 0 makes
    // 0 <= rate * anything hold trivially), so a blocked LP used to flip
    // optimistic on blocked counts alone -- only to roll back and demote
    // the moment traffic resumed, ping-ponging between modes forever.
    // Requiring window activity instead would trap throttled LPs (pending
    // work parked just above the safe bound, the very LPs speculation
    // helps) in conservative mode and costs real speedup, so the fix is
    // escalation, not prohibition: each past demotion doubles the
    // blocked-poll evidence the next promotion needs (capped), halving the
    // oscillation frequency every cycle until the LP settles down.
    const std::uint64_t need_blocked =
        static_cast<std::uint64_t>(p.min_window_events)
        << std::min<std::uint64_t>(rt.demotions(), p.promotion_backoff_cap);
    if (!rt.pinned_conservative() && rt.window_blocked() >= need_blocked &&
        static_cast<double>(rollbacks) <=
            p.rollback_rate_low * static_cast<double>(events)) {
      rt.set_mode(SyncMode::kOptimistic);
    }
  }
  rt.reset_window();
}

}  // namespace vsim::pdes
