#include "pdes/transport.h"

#include <algorithm>
#include <sstream>

namespace vsim::pdes {

TransportCounters& TransportCounters::operator+=(const TransportCounters& o) {
  data_sent += o.data_sent;
  acks_sent += o.acks_sent;
  delivered += o.delivered;
  dropped += o.dropped;
  duplicated += o.duplicated;
  reordered += o.reordered;
  retransmits += o.retransmits;
  dup_discarded += o.dup_discarded;
  buffered += o.buffered;
  return *this;
}

std::string TransportError::str() const {
  std::ostringstream os;
  os << "transport error";
  // attempts == 0 marks a synthetic error (e.g. an unreliable lossy run)
  // with no specific link to blame.
  if (attempts > 0)
    os << " on link " << src_worker << "->" << dst_worker << " (seq " << seq
       << ", " << attempts << " attempts)";
  os << ": " << message;
  return os.str();
}

// ---- FaultyTransport ----

FaultyTransport::FaultyTransport(Transport& inner, std::size_t num_workers,
                                 const FaultPlan& plan)
    : inner_(inner), num_workers_(num_workers), plan_(plan) {
  links_.resize(num_workers * num_workers);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].rng = splitmix64(plan.seed * 0x10001 + i + 1);
    if (links_[i].rng == 0) links_[i].rng = 1;
  }
}

double FaultyTransport::uniform(std::uint64_t& rng) {
  return xorshift_uniform(rng);
}

void FaultyTransport::submit(Packet&& pkt, double now) {
  Link& l = link(pkt.src, pkt.dst);
  // Transient link outage: everything submitted in the window vanishes.
  if (l.blackout_left > 0) {
    --l.blackout_left;
    ++l.counters.dropped;
    return;
  }
  if (plan_.blackout > 0 && uniform(l.rng) < plan_.blackout) {
    l.blackout_left = plan_.blackout_span;
    ++l.counters.dropped;  // the packet that hit the outage is lost too
    return;
  }
  if (plan_.drop > 0 && uniform(l.rng) < plan_.drop) {
    ++l.counters.dropped;
    return;
  }
  double when = now;
  if (plan_.jitter > 0) when += uniform(l.rng) * plan_.jitter;
  if (plan_.duplicate > 0 && uniform(l.rng) < plan_.duplicate) {
    ++l.counters.duplicated;
    Packet copy = pkt;
    inner_.submit(std::move(copy), when);
  }
  if (plan_.reorder > 0 && uniform(l.rng) < plan_.reorder) {
    // Park the packet; it is released -- out of order -- once later traffic
    // on the link overtakes it (or at the next release_held()).
    ++l.counters.reordered;
    l.held.push_back(std::move(pkt));
    return;
  }
  inner_.submit(std::move(pkt), when);
  // This packet overtook everything parked on the link: release it now.
  while (!l.held.empty()) {
    inner_.submit(std::move(l.held.front()), when);
    l.held.pop_front();
  }
}

std::size_t FaultyTransport::release_held(std::uint32_t worker, double now) {
  std::size_t n = 0;
  for (std::uint32_t dst = 0; dst < num_workers_; ++dst) {
    Link& l = link(worker, dst);
    while (!l.held.empty()) {
      inner_.submit(std::move(l.held.front()), now);
      l.held.pop_front();
      ++n;
    }
  }
  return n;
}

std::size_t FaultyTransport::held_count() const {
  std::size_t n = 0;
  for (const Link& l : links_) n += l.held.size();
  return n;
}

TransportCounters FaultyTransport::counters() const {
  TransportCounters out;
  for (const Link& l : links_) out += l.counters;
  return out;
}

std::vector<FaultLinkCheckpoint> FaultyTransport::capture_links() const {
  std::vector<FaultLinkCheckpoint> out(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    out[i].rng = links_[i].rng;
    out[i].blackout_left = links_[i].blackout_left;
  }
  return out;
}

void FaultyTransport::restore_links(
    const std::vector<FaultLinkCheckpoint>& saved) {
  for (std::size_t i = 0; i < links_.size() && i < saved.size(); ++i) {
    links_[i].rng = saved[i].rng;
    links_[i].blackout_left = saved[i].blackout_left;
    links_[i].held.clear();
  }
}

// ---- ChannelStack ----

ChannelStack::ChannelStack(Transport& wire, std::size_t num_workers,
                           const TransportConfig& config)
    : wire_(wire), num_workers_(num_workers), config_(config) {
  send_links_.resize(num_workers * num_workers);
  recv_links_.resize(num_workers * num_workers);
  ack_due_.assign(num_workers * num_workers, 0);
}

void ChannelStack::send(std::uint32_t from, std::uint32_t to, Event&& ev,
                        double now) {
  SendLink& sl = send_link(from, to);
  ++sl.counters.data_sent;
  Packet pkt;
  pkt.kind = Packet::Kind::kData;
  pkt.src = from;
  pkt.dst = to;
  pkt.ev = std::move(ev);
  if (config_.reliable) {
    pkt.seq = sl.next_seq++;
    InFlight f;
    f.pkt = pkt;  // keep a copy for retransmission
    f.rto = config_.rto;
    f.next_retry = now + config_.rto;
    sl.in_flight.push_back(std::move(f));
  }
  wire_.submit(std::move(pkt), now);
}

void ChannelStack::emit_ack(std::uint32_t from, std::uint32_t to,
                            std::uint64_t cum, double now) {
  ++recv_link(to, from).counters.acks_sent;
  if (transmit_) transmit_(from, Packet::Kind::kAck, false);
  Packet a;
  a.kind = Packet::Kind::kAck;
  a.src = from;
  a.dst = to;
  a.seq = cum;
  wire_.submit(std::move(a), now);
}

void ChannelStack::on_wire_delivery(Packet&& pkt, double now) {
  if (pkt.kind == Packet::Kind::kAck) {
    // An ack from worker pkt.src settles the data link pkt.dst -> pkt.src.
    SendLink& sl = send_link(pkt.dst, pkt.src);
    while (!sl.in_flight.empty() && sl.in_flight.front().pkt.seq <= pkt.seq)
      sl.in_flight.pop_front();
    return;
  }
  if (!config_.reliable) {
    ++recv_link(pkt.src, pkt.dst).counters.delivered;
    if (deliver_) deliver_(pkt.dst, std::move(pkt.ev));
    return;
  }
  RecvLink& rl = recv_link(pkt.src, pkt.dst);
  const std::uint32_t dst = pkt.dst;
  const std::uint32_t src = pkt.src;
  const std::uint64_t s = pkt.seq;
  if (s < rl.expected) {
    ++rl.counters.dup_discarded;
  } else if (s == rl.expected) {
    ++rl.expected;
    ++rl.counters.delivered;
    if (deliver_) deliver_(dst, std::move(pkt.ev));
    // In-order restore: drain consecutively buffered successors.
    for (auto it = rl.reorder.find(rl.expected); it != rl.reorder.end();
         it = rl.reorder.find(rl.expected)) {
      Event ev = std::move(it->second);
      rl.reorder.erase(it);
      ++rl.expected;
      ++rl.counters.delivered;
      if (deliver_) deliver_(dst, std::move(ev));
    }
  } else {
    if (rl.reorder.count(s) != 0) {
      ++rl.counters.dup_discarded;
    } else {
      rl.reorder.emplace(s, std::move(pkt.ev));
      ++rl.counters.buffered;
    }
  }
  // Always (re-)acknowledge -- a lost ack must not wedge the sender -- but
  // cumulatively and deferred: mark the link dirty and let flush_acks()
  // emit one ack for the whole drained batch.
  ack_due_[dst * num_workers_ + src] = 1;
  (void)now;
}

std::size_t ChannelStack::flush_acks(std::uint32_t worker, double now) {
  std::size_t n = 0;
  for (std::uint32_t src = 0; src < num_workers_; ++src) {
    std::uint8_t& due = ack_due_[worker * num_workers_ + src];
    if (due == 0) continue;
    due = 0;
    emit_ack(worker, src, recv_link(src, worker).expected - 1, now);
    ++n;
  }
  return n;
}

std::size_t ChannelStack::retransmit_due(std::uint32_t worker, double now,
                                         bool force) {
  std::size_t sent = 0;
  for (std::uint32_t dst = 0; dst < num_workers_; ++dst) {
    if (dst == worker) continue;
    SendLink& sl = send_link(worker, dst);
    for (InFlight& f : sl.in_flight) {
      if (!force && f.next_retry > now) continue;
      if (f.attempts >= config_.max_retries) {
        TransportError err;
        err.src_worker = worker;
        err.dst_worker = dst;
        err.seq = f.pkt.seq;
        err.attempts = f.attempts;
        err.message = "retry cap exceeded; link presumed dead";
        set_error(std::move(err));
        return sent;
      }
      ++f.attempts;
      f.rto *= config_.rto_backoff;
      f.next_retry = now + f.rto;
      ++sl.counters.retransmits;
      if (transmit_) transmit_(worker, Packet::Kind::kData, true);
      Packet copy = f.pkt;
      wire_.submit(std::move(copy), now);
      ++sent;
    }
  }
  return sent;
}

std::size_t ChannelStack::poll(std::uint32_t worker, double now) {
  // Unreliable datagrams are never retransmitted: skip the per-link
  // in-flight scan entirely (poll runs once per scheduler iteration, so
  // this is on the engines' hot path).
  if (!config_.reliable) return 0;
  if (has_error_.load(std::memory_order_acquire)) return 0;
  return retransmit_due(worker, now, /*force=*/false);
}

std::size_t ChannelStack::flush(std::uint32_t worker, double now) {
  if (has_error_.load(std::memory_order_acquire)) return 0;
  std::size_t n = wire_.release_held(worker, now);
  n += retransmit_due(worker, now, /*force=*/true);
  return n;
}

bool ChannelStack::quiescent() const {
  for (const SendLink& sl : send_links_)
    if (!sl.in_flight.empty()) return false;
  for (const RecvLink& rl : recv_links_)
    if (!rl.reorder.empty()) return false;
  if (faulty_ != nullptr && faulty_->held_count() != 0) return false;
  return true;
}

TransportCounters ChannelStack::counters() const {
  TransportCounters out;
  for (const SendLink& sl : send_links_) out += sl.counters;
  for (const RecvLink& rl : recv_links_) out += rl.counters;
  if (faulty_ != nullptr) out += faulty_->counters();
  return out;
}

std::optional<TransportError> ChannelStack::error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

std::vector<LinkCheckpoint> ChannelStack::capture_links() const {
  std::vector<LinkCheckpoint> out(send_links_.size());
  for (std::size_t i = 0; i < send_links_.size(); ++i) {
    out[i].next_seq = send_links_[i].next_seq;
    out[i].expected = recv_links_[i].expected;
  }
  return out;
}

void ChannelStack::restore_links(const std::vector<LinkCheckpoint>& saved) {
  for (std::size_t i = 0; i < send_links_.size() && i < saved.size(); ++i) {
    send_links_[i].next_seq = saved[i].next_seq;
    send_links_[i].in_flight.clear();
    recv_links_[i].expected = saved[i].expected;
    recv_links_[i].reorder.clear();
  }
  // Acks owed for the abandoned timeline's traffic must not leak into the
  // restored one.
  std::fill(ack_due_.begin(), ack_due_.end(), 0);
}

void ChannelStack::set_error(TransportError err) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) {
    error_ = std::move(err);
    has_error_.store(true, std::memory_order_release);
  }
}

}  // namespace vsim::pdes
