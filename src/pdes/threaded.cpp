#include "pdes/threaded.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <thread>

namespace vsim::pdes {

// Reusable cyclic barrier (std::barrier lacks a default constructor and we
// want a stable address across rounds).
class RoundBarrier {
 public:
  explicit RoundBarrier(std::size_t n) : n_(n) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(m_);
    const std::uint64_t gen = gen_;
    if (++count_ == n_) {
      count_ = 0;
      ++gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return gen_ != gen; });
    }
  }

 private:
  std::size_t n_;
  std::size_t count_ = 0;
  std::uint64_t gen_ = 0;
  std::mutex m_;
  std::condition_variable cv_;
};

// The threaded engine's wire: a locked push into the destination worker's
// mailbox.  It has no timing model, so the `now` stamp is ignored.
class ThreadedEngine::ThreadedWire final : public Transport {
 public:
  explicit ThreadedWire(ThreadedEngine& eng) : eng_(eng) {}

  void submit(Packet&& pkt, double /*now*/) override {
    Mailbox& mb = eng_.workers_[pkt.dst]->mailbox;
    std::lock_guard<std::mutex> lock(mb.m);
    mb.q.push_back(std::move(pkt));
  }

 private:
  ThreadedEngine& eng_;
};

class ThreadedEngine::ThreadedRouter final : public Router {
 public:
  ThreadedRouter(ThreadedEngine& eng, std::size_t wi) : eng_(eng), wi_(wi) {}

  void route(Event&& ev) override {
    const std::uint32_t owner = eng_.partition_[ev.dst];
    Worker& from = *eng_.workers_[wi_];
    if (owner == wi_) {
      ++from.stats.messages_sent_local;
      eng_.deliver(wi_, std::move(ev));
    } else {
      if (ev.kind == kNullMsgKind) ++from.stats.null_messages;
      else ++from.stats.messages_sent_remote;
      eng_.net_->send(static_cast<std::uint32_t>(wi_), owner, std::move(ev),
                      eng_.now(wi_));
    }
  }

  void commit(const Event& ev) override {
    if (eng_.hook_) eng_.hook_(ev);
  }

 private:
  ThreadedEngine& eng_;
  std::size_t wi_;
};

ThreadedEngine::ThreadedEngine(LpGraph& graph, Partition partition,
                               RunConfig config)
    : graph_(graph), partition_(std::move(partition)), config_(config) {
  assert(partition_.size() == graph_.size());
  lps_.reserve(graph_.size());
  key_.assign(graph_.size(), kTimeInf);
  last_promise_.assign(graph_.size(), kTimeZero);
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (LpId id = 0; id < graph_.size(); ++id) {
    lps_.emplace_back(&graph_.lp(id), config_.ordering, config_.strategy,
                      initial_mode(config_.configuration, graph_.lp(id)),
                      config_.max_history, config_.use_lookahead,
                      config_.cancellation);
    if (config_.strategy == ConservativeStrategy::kNullMessage) {
      for (LpId src : graph_.fan_in(id)) lps_[id].add_input_channel(src);
    }
    const std::uint32_t w = partition_[id];
    assert(w < workers_.size());
    workers_[w]->owned.push_back(id);
    workers_[w]->ready.insert({kTimeInf, id});
  }
  barrier_ = std::make_unique<RoundBarrier>(config_.num_workers);

  // Assemble the transport stack bottom-up: wire -> (faults) -> channel.
  wire_ = std::make_unique<ThreadedWire>(*this);
  Transport* top = wire_.get();
  if (config_.transport.faults.active()) {
    faulty_ = std::make_unique<FaultyTransport>(*wire_, config_.num_workers,
                                                config_.transport.faults);
    top = faulty_.get();
  }
  net_ = std::make_unique<ChannelStack>(*top, config_.num_workers,
                                        config_.transport);
  if (faulty_) net_->attach_faulty(faulty_.get());
  net_->set_deliver([this](std::uint32_t w, Event&& ev) {
    deliver(w, std::move(ev));
  });
}

ThreadedEngine::~ThreadedEngine() = default;

void ThreadedEngine::refresh_key(std::size_t wi, LpId lp) {
  Worker& w = *workers_[wi];
  const VirtualTime k = lps_[lp].next_ts();
  if (k == key_[lp]) return;
  w.ready.erase({key_[lp], lp});
  key_[lp] = k;
  w.ready.insert({k, lp});
}

void ThreadedEngine::deliver(std::size_t wi, Event ev) {
  const LpId dst = ev.dst;
  assert(partition_[dst] == wi);
  const bool is_null = ev.kind == kNullMsgKind;
  ThreadedRouter router(*this, wi);
  lps_[dst].enqueue(std::move(ev), router);
  refresh_key(wi, dst);
  if (is_null && config_.strategy == ConservativeStrategy::kNullMessage)
    send_null_messages_for(wi, dst);
}

void ThreadedEngine::send_null_messages_for(std::size_t wi, LpId lp) {
  const VirtualTime promise = lps_[lp].null_promise();
  if (!(promise > last_promise_[lp])) return;
  last_promise_[lp] = promise;
  ThreadedRouter router(*this, wi);
  for (LpId dst : graph_.fan_out(lp)) {
    Event n;
    n.ts = promise;
    n.src = lp;
    n.dst = dst;
    n.kind = kNullMsgKind;
    router.route(std::move(n));
  }
}

std::size_t ThreadedEngine::drain_own_mailbox(std::size_t wi) {
  Worker& w = *workers_[wi];
  std::vector<Packet> batch;
  {
    std::lock_guard<std::mutex> lock(w.mailbox.m);
    batch.swap(w.mailbox.q);
  }
  for (Packet& pkt : batch) net_->on_wire_delivery(std::move(pkt), now(wi));
  return batch.size();
}

bool ThreadedEngine::try_process_one(std::size_t wi) {
  Worker& w = *workers_[wi];
  // Copy entries out of the iterator: processing can route messages back
  // to this very LP, whose refresh_key() would invalidate the node.
  for (auto it = w.ready.begin(); it != w.ready.end(); ++it) {
    const VirtualTime ts = it->first;
    const LpId lp = it->second;
    if (ts == kTimeInf) break;
    if (ts.pt > config_.until) break;
    const Eligibility e = lps_[lp].peek(safe_bound_, config_.until);
    if (e == Eligibility::kBlocked) {
      lps_[lp].note_blocked();
      continue;
    }
    if (e == Eligibility::kIdle) continue;
    ThreadedRouter router(*this, wi);
    const double cost = lps_[lp].process_next(router);
    w.stats.busy_cost += cost;
    ++w.stats.events;
    ++w.events_since_round;
    refresh_key(wi, lp);
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(wi, lp);
    return true;
  }
  return false;
}

void ThreadedEngine::worker_main(std::size_t wi) {
  Worker& w = *workers_[wi];
  std::uint32_t idle_spins = 0;

  while (!done_.load(std::memory_order_acquire)) {
    if (!round_requested_.load(std::memory_order_acquire)) {
      ++w.ops;
      const bool got_mail = drain_own_mailbox(wi) > 0;
      net_->poll(static_cast<std::uint32_t>(wi), now(wi));
      const bool processed = try_process_one(wi);
      if (processed || got_mail) {
        idle_spins = 0;
      } else if (++idle_spins > 16) {
        round_requested_.store(true, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
      if (w.events_since_round >= config_.gvt_interval)
        round_requested_.store(true, std::memory_order_release);
      continue;
    }

    // ---- Synchronisation round ----
    idle_spins = 0;
    barrier_->arrive_and_wait();  // everyone stops sending new work
    // Drain the network to a fixed point (anti-message cascades included).
    // Three barriers per pass: reset -> add -> read, so that no worker can
    // observe the next pass's reset while another still reads this pass.
    // Drain-until-quiet: a pass counts both delivered packets and packets
    // the transport stack pushed back onto the wire (retransmissions of
    // unacked data, reorder holdbacks); the network is only quiescent once
    // a full pass moves nothing anywhere.
    for (;;) {
      if (wi == 0) drained_in_pass_.store(0, std::memory_order_relaxed);
      barrier_->arrive_and_wait();
      std::size_t n = drain_own_mailbox(wi);
      n += net_->flush(static_cast<std::uint32_t>(wi), now(wi));
      drained_in_pass_.fetch_add(n, std::memory_order_relaxed);
      barrier_->arrive_and_wait();
      const bool empty =
          drained_in_pass_.load(std::memory_order_relaxed) == 0;
      barrier_->arrive_and_wait();
      if (empty) break;
    }
    // Local minimum over owned LPs.
    VirtualTime local_min = kTimeInf;
    if (!w.ready.empty()) local_min = w.ready.begin()->first;
    {
      std::lock_guard<std::mutex> lock(gvt_mutex_);
      gvt_candidate_ = std::min(gvt_candidate_, local_min);
    }
    barrier_->arrive_and_wait();
    if (wi == 0) {
      ++gvt_rounds_;
      const VirtualTime gvt = gvt_candidate_;
      gvt_candidate_ = kTimeInf;
      safe_bound_ = gvt;
      std::uint64_t total_events = 0;
      for (const auto& worker : workers_) total_events += worker->stats.events;
      if (net_->error()) {
        // The reliable layer gave up on a link: unwind with the error.
        transport_failed_ = true;
        done_.store(true, std::memory_order_release);
      } else if (gvt == kTimeInf || gvt.pt > config_.until) {
        done_.store(true, std::memory_order_release);
      } else if (gvt == last_gvt_ && total_events == last_total_events_) {
        if (++stall_rounds_ >= config_.deadlock_rounds) {
          deadlocked_ = true;
          // All other workers are parked at the next barrier, so reading
          // their LPs here is race-free.
          deadlock_report_ = build_deadlock_report(gvt);
          done_.store(true, std::memory_order_release);
        }
      } else {
        stall_rounds_ = 0;
      }
      last_gvt_ = gvt;
      last_total_events_ = total_events;
      round_requested_.store(false, std::memory_order_release);
    }
    barrier_->arrive_and_wait();
    // Fossil collect and adapt under the new GVT.
    const VirtualTime gvt = safe_bound_;
    ThreadedRouter router(*this, wi);
    for (LpId lp : w.owned) {
      lps_[lp].fossil_collect(done_ ? kTimeInf : gvt, router);
      if (config_.configuration == Configuration::kDynamic)
        adapt_lp(lps_[lp], config_.adapt);
      else
        lps_[lp].reset_window();
      if (config_.strategy == ConservativeStrategy::kNullMessage)
        send_null_messages_for(wi, lp);
    }
    w.events_since_round = 0;
    barrier_->arrive_and_wait();
  }

  // Final commit of any remaining history.
  ThreadedRouter router(*this, wi);
  for (LpId lp : w.owned) lps_[lp].fossil_collect(kTimeInf, router);
}

RunStats ThreadedEngine::run() {
  for (const Event& ev : graph_.initial_events()) {
    const std::size_t wi = partition_[ev.dst];
    Event copy = ev;
    ThreadedRouter router(*this, wi);
    lps_[ev.dst].enqueue(std::move(copy), router);
    refresh_key(wi, ev.dst);
  }

  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::size_t wi = 0; wi < config_.num_workers; ++wi)
    threads.emplace_back([this, wi] { worker_main(wi); });
  for (std::thread& t : threads) t.join();

  RunStats out;
  out.per_lp.reserve(lps_.size());
  for (const LpRuntime& rt : lps_) out.per_lp.push_back(rt.stats());
  out.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) out.per_worker.push_back(w->stats);
  out.gvt_rounds = gvt_rounds_;
  out.deadlocked = deadlocked_;
  out.transport = net_->counters();
  if (auto err = net_->error()) {
    out.transport_error = std::move(err);
  } else if (!config_.transport.reliable && out.transport.dropped > 0) {
    TransportError err;
    err.message = "packets were dropped without reliable delivery; "
                  "committed traces are not trustworthy";
    out.transport_error = std::move(err);
  }
  out.deadlock_report = deadlock_report_;
  return out;
}

DeadlockReport ThreadedEngine::build_deadlock_report(VirtualTime gvt) {
  DeadlockReport report;
  report.gvt = gvt;
  report.transport_starvation =
      !config_.transport.reliable && net_->counters().dropped > 0;
  for (LpId id = 0; id < lps_.size(); ++id) {
    LpRuntime& rt = lps_[id];
    if (!rt.has_pending()) continue;
    report.blocked.push_back({id, rt.next_ts(), rt.min_channel_clock(),
                              rt.pending_count(), rt.mode()});
  }
  return report;
}

}  // namespace vsim::pdes
