#include "pdes/threaded.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <thread>

#include "partition/rebalance.h"

namespace vsim::pdes {

/// Events processed per scheduler iteration (between mailbox drains and
/// outbox flushes).  Large enough to amortise the drain/poll/flush per
/// round, small enough that incoming mail and round requests are observed
/// promptly.
constexpr std::uint32_t kEventSlice = 16;

// Reusable cyclic barrier (std::barrier lacks a default constructor and we
// want a stable address across rounds).
class RoundBarrier {
 public:
  explicit RoundBarrier(std::size_t n) : n_(n) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(m_);
    const std::uint64_t gen = gen_;
    if (++count_ == n_) {
      count_ = 0;
      ++gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return gen_ != gen; });
    }
  }

  /// Permanently withdraws one participant (crash-stop).  If everyone else
  /// already arrived, the leaver completes the waiting generation.
  void leave() {
    std::lock_guard<std::mutex> lock(m_);
    --n_;
    if (n_ > 0 && count_ == n_) {
      count_ = 0;
      ++gen_;
      cv_.notify_all();
    }
  }

 private:
  std::size_t n_;
  std::size_t count_ = 0;
  std::uint64_t gen_ = 0;
  std::mutex m_;
  std::condition_variable cv_;
};

// The threaded engine's wire: an append to the SUBMITTING worker's
// per-destination outbox buffer.  The transport threading contract
// guarantees pkt.src is the submitting worker (data, acks and retransmits
// alike), so the append is single-writer and lock-free; the buffer reaches
// the destination's inbox as one batch at the next flush_outboxes().  It
// has no timing model, so the `now` stamp is ignored.
class ThreadedEngine::ThreadedWire final : public Transport {
 public:
  explicit ThreadedWire(ThreadedEngine& eng) : eng_(eng) {}

  void submit(Packet&& pkt, double /*now*/) override {
    Worker& from = *eng_.workers_[pkt.src];
    from.outbox[pkt.dst].push_back(std::move(pkt));
  }

  /// The wire "holds" whatever sits unflushed in the worker's outboxes;
  /// drain rounds reach this through ChannelStack::flush when no fault
  /// decorator is stacked in between (with one, the engine flushes
  /// explicitly -- FaultyTransport does not chain release_held).
  std::size_t release_held(std::uint32_t worker, double /*now*/) override {
    return eng_.flush_outboxes(worker);
  }

 private:
  ThreadedEngine& eng_;
};

class ThreadedEngine::ThreadedRouter final : public Router {
 public:
  ThreadedRouter(ThreadedEngine& eng, std::size_t wi) : eng_(eng), wi_(wi) {}

  void route(Event&& ev) override {
    const std::uint32_t owner = eng_.partition_[ev.dst];
    Worker& from = *eng_.workers_[wi_];
    if (owner == wi_) {
      ++from.stats.messages_sent_local;
      eng_.metrics_.shard(wi_).inc(obs::Metric::kMessagesLocal);
      eng_.deliver(wi_, std::move(ev));
    } else {
      const bool is_null = ev.kind == kNullMsgKind;
      if (is_null) {
        ++from.stats.null_messages;
        eng_.metrics_.shard(wi_).inc(obs::Metric::kNullMessages);
      } else {
        ++from.stats.messages_sent_remote;
        eng_.metrics_.shard(wi_).inc(obs::Metric::kMessagesRemote);
      }
      VSIM_TRACE(if (eng_.trace_ != nullptr && !is_null) {
        const double t = eng_.tnow();
        eng_.trace_->instant(wi_, "net",
                             ev.negative ? "send-anti" : "send", t, ev.src);
        eng_.trace_->flow_out(wi_, trace_flow_id(ev), t);
      });
      eng_.net_->send(static_cast<std::uint32_t>(wi_), owner, std::move(ev),
                      eng_.now(wi_));
    }
  }

  void commit(const Event& ev) override {
    if (!eng_.hook_) return;
    if (eng_.ft_on_)
      eng_.commit_buf_[ev.dst].push_back(ev);
    else
      eng_.hook_(ev);
  }

 private:
  ThreadedEngine& eng_;
  std::size_t wi_;
};

ThreadedEngine::ThreadedEngine(LpGraph& graph, Partition partition,
                               RunConfig config)
    : graph_(graph), partition_(std::move(partition)), config_(config) {
  config_error_ = validate(config_);
  if (config_error_) return;  // run() surfaces the error without starting
  assert(partition_.size() == graph_.size());
  lps_.reserve(graph_.size());
  key_.assign(graph_.size(), kTimeInf);
  last_promise_.assign(graph_.size(), kTimeZero);
  lb_events_base_.assign(graph_.size(), 0);
  lb_undone_base_.assign(graph_.size(), 0);
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->outbox.resize(config_.num_workers);
    workers_.back()->inbox.reset(config_.num_workers);
  }
  for (LpId id = 0; id < graph_.size(); ++id) {
    lps_.emplace_back(&graph_.lp(id), config_.ordering, config_.strategy,
                      initial_mode(config_.configuration, graph_.lp(id)),
                      config_.max_history, config_.use_lookahead,
                      config_.cancellation);
    if (config_.strategy == ConservativeStrategy::kNullMessage) {
      for (LpId src : graph_.fan_in(id)) lps_[id].add_input_channel(src);
    }
    const std::uint32_t w = partition_[id];
    assert(w < workers_.size());
    workers_[w]->owned.push_back(id);
  }
  barrier_ = std::make_unique<RoundBarrier>(config_.num_workers);

  // Assemble the transport stack bottom-up: wire -> (faults) -> channel.
  wire_ = std::make_unique<ThreadedWire>(*this);
  Transport* top = wire_.get();
  if (config_.transport.faults.active()) {
    faulty_ = std::make_unique<FaultyTransport>(*wire_, config_.num_workers,
                                                config_.transport.faults);
    top = faulty_.get();
  }
  net_ = std::make_unique<ChannelStack>(*top, config_.num_workers,
                                        config_.transport);
  if (faulty_) net_->attach_faulty(faulty_.get());
  net_->set_deliver([this](std::uint32_t w, Event&& ev) {
    VSIM_TRACE(if (trace_ != nullptr && ev.kind != kNullMsgKind) {
      const double t = tnow();
      trace_->instant(w, "net", ev.negative ? "recv-anti" : "recv", t, ev.dst);
      trace_->flow_in(w, trace_flow_id(ev), t);
    });
    deliver(w, std::move(ev));
  });

  ft_on_ = config_.checkpoint.period > 0 ||
           config_.transport.faults.crash_active();
  crashed_ = std::make_unique<std::atomic<bool>[]>(config_.num_workers);
  retired_.assign(config_.num_workers, false);
  missed_heartbeats_.assign(config_.num_workers, 0);
  crash_rng_.resize(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    // Distinct multiplier from the links' fault RNG so crash draws never
    // correlate with wire faults under the same seed.
    crash_rng_[w] =
        splitmix64(config_.transport.faults.seed * 0x20003u + w + 1);
    if (crash_rng_[w] == 0) crash_rng_[w] = 1;
  }
  if (ft_on_) {
    commit_buf_.resize(graph_.size());
    store_ = CheckpointStore(config_.checkpoint.keep,
                             config_.checkpoint.spill_dir);
  }

  metrics_ = obs::MetricsRegistry(config_.num_workers);
  VSIM_TRACE({
    trace_ = config_.trace;
    if (trace_ == nullptr) {
      if (obs::Tracer* t = obs::Tracer::from_env()) {
        trace_own_ = t->session("threaded", config_.num_workers);
        trace_ = trace_own_.get();
      }
    }
    if (trace_ != nullptr) {
      trace_->set_default_lp_labels(
          [this](std::uint32_t id) { return graph_.lp(id).name(); });
    }
  });
}

ThreadedEngine::~ThreadedEngine() = default;

void ThreadedEngine::refresh_key(std::size_t wi, LpId lp) {
  // Just recache the LP's next timestamp: the scheduler finds the minimum
  // with a selection scan over the owner's LPs (try_process_one), so there
  // is no sorted structure to maintain.  The old std::set ready-queue cost
  // an erase + insert (two node allocations plus rebalancing) per delivery
  // and per processed event -- measurably the largest constant in the
  // per-event budget once the mailbox went batched.
  (void)wi;
  key_[lp] = lps_[lp].next_ts();
}

void ThreadedEngine::deliver(std::size_t wi, Event ev) {
  const LpId dst = ev.dst;
  assert(partition_[dst] == wi);
  const bool is_null = ev.kind == kNullMsgKind;
  // Rollback detection via counter deltas around enqueue() (the only entry
  // point that can trigger one); dst is owned by wi, so the reads are
  // single-threaded.
  const std::uint64_t rb0 = lps_[dst].stats().rollbacks;
  const std::uint64_t un0 = lps_[dst].stats().events_undone;
  ThreadedRouter router(*this, wi);
  lps_[dst].enqueue(std::move(ev), router);
  if (lps_[dst].stats().rollbacks != rb0) {
    const std::uint64_t undone = lps_[dst].stats().events_undone - un0;
    metrics_.shard(wi).observe(obs::Hist::kRollbackDepth,
                               static_cast<double>(undone));
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->instant(wi, "tw", "rollback", tnow(), dst, "undone",
                      static_cast<std::int64_t>(undone));
    });
  }
  refresh_key(wi, dst);
  if (is_null && config_.strategy == ConservativeStrategy::kNullMessage)
    send_null_messages_for(wi, dst);
}

void ThreadedEngine::send_null_messages_for(std::size_t wi, LpId lp) {
  const VirtualTime promise = lps_[lp].null_promise();
  if (!(promise > last_promise_[lp])) return;
  last_promise_[lp] = promise;
  ThreadedRouter router(*this, wi);
  for (LpId dst : graph_.fan_out(lp)) {
    Event n;
    n.ts = promise;
    n.src = lp;
    n.dst = dst;
    n.kind = kNullMsgKind;
    router.route(std::move(n));
  }
}

std::size_t ThreadedEngine::flush_outboxes(std::size_t wi) {
  Worker& w = *workers_[wi];
  std::size_t flushed = 0;
  for (std::size_t dst = 0; dst < w.outbox.size(); ++dst) {
    std::vector<Packet>& buf = w.outbox[dst];
    if (buf.empty()) continue;
    const std::size_t n = buf.size();
    workers_[dst]->inbox.push_batch(static_cast<std::uint32_t>(wi), buf);
    flushed += n;
    metrics_.shard(wi).inc(obs::Metric::kMailboxBatches);
    metrics_.shard(wi).observe(obs::Hist::kBatchSize,
                               static_cast<double>(n));
  }
  return flushed;
}

std::size_t ThreadedEngine::drain_own_mailbox(std::size_t wi) {
  Worker& w = *workers_[wi];
  w.drain_buf.clear();
  const std::size_t n = w.inbox.drain(w.drain_buf);
  for (Packet& pkt : w.drain_buf)
    net_->on_wire_delivery(std::move(pkt), now(wi));
  w.drain_buf.clear();
  // One cumulative ack per link for the whole batch (the acks land in our
  // outboxes; the caller's next flush_outboxes publishes and counts them).
  if (n > 0) net_->flush_acks(static_cast<std::uint32_t>(wi), now(wi));
  return n;
}

bool ThreadedEngine::try_process_one(std::size_t wi) {
  Worker& w = *workers_[wi];
  // Visit owned LPs in ascending (next_ts, lp) order -- the same order the
  // old std::set ready-queue iterated in -- via a cursor-based selection
  // scan over the cached keys.  Workers own a handful of LPs, so the scan
  // is a few cache-resident compares, and the scheduler maintains no
  // sorted structure at all on the per-event path.
  VirtualTime cursor_ts = kTimeZero;
  LpId cursor_lp = 0;
  bool have_cursor = false;
  for (;;) {
    VirtualTime ts = kTimeInf;
    LpId lp = 0;
    bool found = false;
    for (const LpId cand : w.owned) {
      const VirtualTime k = key_[cand];
      if (k == kTimeInf) continue;
      if (have_cursor &&
          (k < cursor_ts || (k == cursor_ts && cand <= cursor_lp)))
        continue;  // already visited this round
      if (!found || k < ts || (k == ts && cand < lp)) {
        ts = k;
        lp = cand;
        found = true;
      }
    }
    if (!found) break;
    if (ts.pt > config_.until) break;  // later keys are even larger
    cursor_ts = ts;
    cursor_lp = lp;
    have_cursor = true;
    const Eligibility e = lps_[lp].peek(safe_bound_, config_.until);
    if (e == Eligibility::kBlocked) {
      lps_[lp].note_blocked();
      continue;
    }
    if (e == Eligibility::kIdle) continue;
    ThreadedRouter router(*this, wi);
    double exec_start = 0.0;
    VSIM_TRACE(if (trace_ != nullptr) exec_start = tnow());
    const double cost = lps_[lp].process_next(router);
    w.stats.busy_cost += cost;
    ++w.stats.events;
    ++w.events_since_round;
    metrics_.shard(wi).inc(obs::Metric::kEventsProcessed);
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->complete(wi, "execute", to_string(ts.phase()), exec_start,
                       tnow() - exec_start, lp, "pt",
                       static_cast<std::int64_t>(ts.pt));
    });
    refresh_key(wi, lp);
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(wi, lp);
    return true;
  }
  return false;
}

void ThreadedEngine::worker_main(std::size_t wi) {
  Worker& w = *workers_[wi];
  std::uint32_t idle_spins = 0;

  while (!done_.load(std::memory_order_acquire)) {
    if (!round_requested_.load(std::memory_order_acquire)) {
      ++w.ops;
      // Safety-net flush: the end-of-iteration flush below publishes all of
      // this iteration's sends, so this is a no-op unless some round-phase
      // path left packets behind.  It stays so a send buffered anywhere can
      // linger at most one iteration.
      flush_outboxes(wi);
      const bool got_mail = drain_own_mailbox(wi) > 0;
      net_->poll(static_cast<std::uint32_t>(wi), now(wi));
      // Process a bounded slice of events per scheduling round, not one:
      // the drain/poll/flush overhead above amortises over the slice, and
      // remote sends accumulate into per-destination outboxes so the next
      // flush publishes them as a handful of batches.  The slice stays
      // bounded so mail keeps draining and round requests stay responsive.
      bool processed = false;
      bool crash_now = false;
      for (std::uint32_t slice = 0; slice < kEventSlice; ++slice) {
        if (!try_process_one(wi)) break;
        processed = true;
        // Crash draws advance per processed event (exact-count schedules).
        if (ft_on_ && maybe_crash(wi)) {
          crash_now = true;
          break;
        }
        if (w.events_since_round >= config_.gvt_interval ||
            round_requested_.load(std::memory_order_acquire))
          break;
      }
      if (crash_now) {
        // Crash-stop: raise the flag first (it must be visible to whoever
        // our leave() releases from a barrier), then withdraw and vanish.
        // No final fossil collection: this worker's state is lost.
        VSIM_TRACE(if (trace_ != nullptr) {
          trace_->instant(wi, "ckpt", "crash", tnow());
        });
        crashed_[wi].store(true, std::memory_order_release);
        crash_count_.fetch_add(1, std::memory_order_relaxed);
        round_requested_.store(true, std::memory_order_release);
        barrier_->leave();
        return;
      }
      // Publish everything this iteration generated -- slice sends, acks
      // emitted while draining, retransmits from poll -- as one batch per
      // destination before yielding the core.  Flushing here rather than at
      // the top of the next iteration lets a receiver that runs next pick
      // the batch up immediately, which matters for latency-bound chains.
      // A crashed worker never reaches this point: its unflushed sends are
      // lost with it, matching the crash-stop model.
      flush_outboxes(wi);
      if (processed || got_mail) {
        idle_spins = 0;
      } else if (++idle_spins > 16) {
        // Idle long enough: force a synchronisation round so GVT (and with
        // it termination / deadlock detection) makes progress.  Workers
        // yield rather than block between iterations -- handoff gaps in
        // event-parallel workloads are far shorter than a sleep/wake round
        // trip, and the forced round bounds the spinning.
        round_requested_.store(true, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
      if (w.events_since_round >= config_.gvt_interval)
        round_requested_.store(true, std::memory_order_release);
      continue;
    }

    // ---- Synchronisation round ----
    idle_spins = 0;
    double round_start = 0.0;
    VSIM_TRACE(if (trace_ != nullptr) round_start = tnow());
    barrier_->arrive_and_wait();  // everyone stops sending new work
    // The participant set and the crash flags are frozen from here to the
    // end of the round: crashes happen only in the work phase, and a worker
    // that crashed before this barrier completed performed its leave()
    // under the barrier mutex first -- so every participant computes the
    // same coordinator and the same crash_pending verdict below.
    const std::size_t coord = ft_on_ ? first_live_worker() : 0;
    const bool crash_pending = ft_on_ && any_crashed_unretired();
    if (!crash_pending) {
      // Drain the network to a fixed point (anti-message cascades
      // included).  Three barriers per pass: reset -> add -> read, so that
      // no worker can observe the next pass's reset while another still
      // reads this pass.  Drain-until-quiet: a pass counts both delivered
      // packets and packets the transport stack pushed back onto the wire
      // (retransmissions of unacked data, reorder holdbacks); the network
      // is only quiescent once a full pass moves nothing anywhere.
      for (;;) {
        if (wi == coord) drained_in_pass_.store(0, std::memory_order_relaxed);
        barrier_->arrive_and_wait();
        // Publish own buffered sends before draining, and again after the
        // flush (retransmits land in the outboxes): both are counted, so
        // the pass loop cannot declare quiescence while a packet still
        // sits in a producer buffer.  The explicit calls matter under
        // fault injection, where ChannelStack::flush's release_held stops
        // at the FaultyTransport decorator and never reaches the wire.
        std::size_t n = flush_outboxes(wi);
        n += drain_own_mailbox(wi);
        n += net_->flush(static_cast<std::uint32_t>(wi), now(wi));
        n += flush_outboxes(wi);
        drained_in_pass_.fetch_add(n, std::memory_order_relaxed);
        barrier_->arrive_and_wait();
        const bool empty =
            drained_in_pass_.load(std::memory_order_relaxed) == 0;
        barrier_->arrive_and_wait();
        if (empty) break;
      }
      // Local minimum over owned LPs: the per-worker leg of the two-level
      // GVT reduction (each worker scans only its own LPs in parallel, the
      // coordinator merges P candidates), so the per-round serial cost is
      // O(P), not O(P x LP).  The scan-items metric counts the candidates
      // this worker touched; summed over workers it grows with the LP count
      // per round, and with clustering "LP count" means fused clusters.
      VirtualTime local_min = kTimeInf;
      for (const LpId lp : w.owned)
        local_min = std::min(local_min, key_[lp]);
      metrics_.shard(wi).inc(obs::Metric::kGvtScanItems, w.owned.size());
      {
        std::lock_guard<std::mutex> lock(gvt_mutex_);
        gvt_candidate_ = std::min(gvt_candidate_, local_min);
      }
    }
    // With a crash pending the drain is skipped entirely: in-flight
    // traffic to the dead worker can never be acknowledged, so draining
    // would only burn the retransmission budget before recovery gets to
    // discard the timeline anyway.
    barrier_->arrive_and_wait();
    if (wi == coord) {
      ++gvt_rounds_;
      metrics_.shard(wi).inc(obs::Metric::kGvtRounds);
      if (crash_pending) {
        double rec_start = 0.0;
        VSIM_TRACE(if (trace_ != nullptr) rec_start = tnow());
        const std::uint32_t rec0 = recoveries_;
        if (coordinator_recover())
          round_requested_.store(false, std::memory_order_release);
        // on failure coordinator_recover() already set done_
        VSIM_TRACE(if (trace_ != nullptr && recoveries_ != rec0) {
          trace_->complete(wi, "ckpt", "recovery", rec_start,
                           tnow() - rec_start);
        });
      } else {
        const VirtualTime gvt = gvt_candidate_;
        gvt_candidate_ = kTimeInf;
        safe_bound_ = gvt;
        std::uint64_t total_events = 0;
        for (const auto& worker : workers_)
          total_events += worker->stats.events;
        bool stop = false;
        if (net_->error()) {
          // The reliable layer gave up on a link: unwind with the error.
          transport_failed_ = true;
          stop = true;
        } else if (gvt == kTimeInf || gvt.pt > config_.until) {
          stop = true;
        } else if (gvt == last_gvt_ && total_events == last_total_events_) {
          if (++stall_rounds_ >= config_.deadlock_rounds) {
            deadlocked_ = true;
            // All other workers are parked at the next barrier, so reading
            // their LPs here is race-free.
            deadlock_report_ = build_deadlock_report(gvt);
            stop = true;
          }
        } else {
          stall_rounds_ = 0;
        }
        last_gvt_ = gvt;
        last_total_events_ = total_events;
        if (stop) {
          done_.store(true, std::memory_order_release);
        } else {
          // Gated on GVT progress: a same-frontier capture is redundant and
          // its rollback-all can pin GVT via re-execution (see the machine
          // engine's periodic-capture comment).  The counter stays
          // accumulated so the capture retries once the frontier moves.
          if (ft_on_ && config_.checkpoint.period > 0 &&
              ++rounds_since_ckpt_ >= config_.checkpoint.period &&
              gvt > last_ckpt_gvt_) {
            rounds_since_ckpt_ = 0;
            last_ckpt_gvt_ = gvt;
            double ck_start = 0.0;
            VSIM_TRACE(if (trace_ != nullptr) ck_start = tnow());
            coordinator_checkpoint(wi, gvt);
            VSIM_TRACE(if (trace_ != nullptr) {
              trace_->complete(wi, "ckpt", "checkpoint", ck_start,
                               tnow() - ck_start);
            });
          }
          // Dynamic load balancing, after the (optional) capture: the
          // network is quiescent and everyone else is parked, so ownership
          // can change hands with nothing in flight under the old mapping.
          if (config_.rebalance.enabled() &&
              ++rounds_since_rebalance_ >= config_.rebalance.period) {
            rounds_since_rebalance_ = 0;
            coordinator_rebalance(wi);
          }
          round_requested_.store(false, std::memory_order_release);
        }
      }
      // Safe merge point: every other worker is parked at the barrier below,
      // so no shard is being written.
      metrics_.merge();
    }
    barrier_->arrive_and_wait();
    if (!crash_pending) {
      // Fossil collect and adapt under the new GVT.  Each worker is its own
      // adaptation scope: the demotion budget drains in this worker's fixed
      // owned-set order, independent of the other threads' progress.
      const VirtualTime gvt = safe_bound_;
      ThreadedRouter router(*this, wi);
      AdaptController adapt(config_.adapt, config_.num_workers);
      adapt.begin_round(w.owned.size());
      for (LpId lp : w.owned) {
        lps_[lp].fossil_collect(done_ ? kTimeInf : gvt, router);
        if (config_.configuration == Configuration::kDynamic) {
          const AdaptDecision d = adapt.adapt(lps_[lp]);
          if (d.action == AdaptAction::kDeferred)
            metrics_.shard(wi).inc(obs::Metric::kAdaptDeferrals);
          VSIM_TRACE(if (trace_ != nullptr && d.action != AdaptAction::kNone) {
            trace_->instant(wi, "adapt", to_string(d.action), tnow(), lp,
                            "waste_pct",
                            static_cast<std::int64_t>(d.waste_rate * 100.0));
          });
        } else {
          lps_[lp].reset_window();
        }
        if (config_.strategy == ConservativeStrategy::kNullMessage)
          send_null_messages_for(wi, lp);
      }
    }
    w.events_since_round = 0;
    barrier_->arrive_and_wait();
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->complete(wi, "gvt", "gvt", round_start, tnow() - round_start);
    });
  }

  // Final commit of any remaining history.  A failed run must not commit
  // past the last validated frontier (failed_ is ordered by the done_
  // release/acquire pair that ended the loop).
  if (failed_) return;
  ThreadedRouter router(*this, wi);
  for (LpId lp : w.owned) lps_[lp].fossil_collect(kTimeInf, router);
}

std::size_t ThreadedEngine::first_live_worker() const {
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (!worker_dead(w)) return w;
  return 0;  // unreachable: the caller is itself a live worker
}

bool ThreadedEngine::any_crashed_unretired() const {
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (crashed_[w].load(std::memory_order_acquire) && !retired_[w])
      return true;
  return false;
}

bool ThreadedEngine::maybe_crash(std::size_t wi) {
  const FaultPlan& plan = config_.transport.faults;
  const Worker& w = *workers_[wi];
  bool die = false;
  for (const WorkerCrash& c : plan.crashes) {
    // Exact match on the cumulative event count: monotone, so a crash
    // point replayed after recovery does not re-fire.
    if (c.worker == wi && c.after_events == w.stats.events) die = true;
  }
  // The draw advances on every processed event whether or not it kills, so
  // the crash schedule is a pure function of the seed (and is deliberately
  // NOT restored from checkpoints: a restored cursor would re-roll the
  // same crash forever).
  if (plan.crash_rate > 0 &&
      xorshift_uniform(crash_rng_[wi]) < plan.crash_rate)
    die = true;
  return die;
}

bool ThreadedEngine::coordinator_recover() {
  bool due = false;
  std::uint32_t first_dead = 0;
  bool have_dead = false;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!crashed_[w].load(std::memory_order_acquire) || retired_[w]) continue;
    if (!have_dead) {
      first_dead = static_cast<std::uint32_t>(w);
      have_dead = true;
    }
    if (++missed_heartbeats_[w] >= config_.checkpoint.heartbeat_rounds)
      due = true;
  }
  if (!due) return true;
  const auto fail = [&](std::string message) {
    recovery_error_ =
        RecoveryError{first_dead, gvt_rounds_, recoveries_, std::move(message)};
    failed_ = true;
    done_.store(true, std::memory_order_release);
    return false;
  };
  if (recoveries_ >= config_.checkpoint.max_recoveries)
    return fail("recovery budget exhausted (max_recoveries)");
  const Checkpoint* ck = store_.latest();
  if (ck == nullptr) return fail("no checkpoint available");

  // A dead thread cannot be respawned, so both policies redistribute the
  // lost workers' LPs over the survivors -- with the load-balancer's
  // load/cut-aware placement (partition/rebalance.h), not round-robin.
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (crashed_[w].load(std::memory_order_acquire)) retired_[w] = true;
  std::vector<bool> alive(workers_.size());
  bool any_alive = false;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    alive[w] = !retired_[w];
    any_alive = any_alive || alive[w];
  }
  if (!any_alive)
    return fail("no surviving worker to redistribute LPs to");
  {
    std::vector<double> work(lps_.size(), 0.0);
    for (LpId id = 0; id < lps_.size(); ++id) {
      const LpStats& s = lps_[id].stats();
      work[id] = static_cast<double>(
          s.events_processed - std::min(s.events_processed, s.events_undone));
    }
    partition::redistribute_orphans(graph_, partition_, work, alive,
                                    config_.rebalance);
  }
  ++recoveries_;
  ++ckstats_.recoveries;

  restore_checkpoint(*ck, lps_, last_promise_, *net_, faulty_.get());
  ckstats_.lps_restored += lps_.size();
  for (auto& wp : workers_) {
    // In-flight packets belong to the abandoned timeline: published batches
    // and unflushed producer buffers alike.  Every surviving worker is
    // parked at a barrier, so touching their mailboxes here is race-free.
    wp->inbox.clear();
    for (auto& buf : wp->outbox) buf.clear();
    wp->events_since_round = 0;
    wp->owned.clear();
  }
  for (LpId id = 0; id < lps_.size(); ++id) {
    key_[id] = lps_[id].next_ts();
    workers_[partition_[id]]->owned.push_back(id);
  }
  safe_bound_ = last_gvt_ = last_ckpt_gvt_ = ck->gvt;
  std::uint64_t total_events = 0;
  for (const auto& wp : workers_) total_events += wp->stats.events;
  last_total_events_ = total_events;
  stall_rounds_ = 0;
  for (auto& buf : commit_buf_) buf.clear();
  for (auto& h : missed_heartbeats_) h = 0;
  return true;
}

void ThreadedEngine::coordinator_checkpoint(std::size_t coord,
                                            VirtualTime gvt) {
  // Fossil first so the snapshot's committed frontier matches gvt, then
  // undo all remaining speculation with deferred cancellation: no
  // anti-messages, so the drained network stays quiescent for capture.
  ThreadedRouter router(*this, coord);
  for (LpId id = 0; id < lps_.size(); ++id) {
    lps_[id].fossil_collect(gvt, router);
    lps_[id].rollback_all_deferred();
    refresh_key(partition_[id], id);
  }
  Checkpoint ck = capture_checkpoint(gvt_rounds_, gvt, lps_, last_promise_,
                                     *net_, faulty_.get());
  ++ckstats_.checkpoints;
  // The snapshot covers everything committed so far: release the buffered
  // commit-hook invocations (recovery can only rewind to this line or
  // later).
  flush_commits();
  store_.put(std::move(ck));
}

void ThreadedEngine::coordinator_rebalance(std::size_t coord) {
  // Per-LP work since the previous rebalance attempt.  Coordinator-only
  // inside the exclusive section: every other worker is parked, so reading
  // foreign LPs' stats is race-free (same argument as checkpoint capture).
  std::vector<double> work(lps_.size(), 0.0);
  for (LpId id = 0; id < lps_.size(); ++id) {
    const LpStats& s = lps_[id].stats();
    const double ev =
        static_cast<double>(s.events_processed - lb_events_base_[id]);
    const double un =
        static_cast<double>(s.events_undone - lb_undone_base_[id]);
    work[id] = std::max(ev - un, 0.0) + config_.rebalance.rollback_weight * un;
    lb_events_base_[id] = s.events_processed;
    lb_undone_base_[id] = s.events_undone;
  }
  std::vector<bool> alive(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    alive[w] = !worker_dead(w);

  const partition::RebalancePlan plan = partition::plan_rebalance(
      graph_, partition_, work, alive, config_.rebalance);
  metrics_.shard(coord).gauge_max(obs::Gauge::kLbImbalance,
                                  plan.imbalance_before);
  metrics_.shard(coord).inc(obs::Metric::kRebalanceRounds);
  if (plan.empty()) return;

  double lb_start = 0.0;
  VSIM_TRACE(if (trace_ != nullptr) lb_start = tnow());
  ThreadedRouter router(*this, coord);
  for (const partition::Migration& mv : plan.moves) {
    Worker& src = *workers_[mv.from];
    Worker& dst = *workers_[mv.to];
    src.owned.erase(std::find(src.owned.begin(), src.owned.end(), mv.lp));
    // Pack through the checkpoint codec: undo speculation with deferred
    // cancellation (no anti-messages, the drained network stays quiescent;
    // re-execution settles the deferred sends as suppressed resends), then
    // snapshot the committed frontier and reinstate it under the new owner.
    //
    // Fossil-collect at the round's GVT FIRST (this round's collection
    // phase runs after this exclusive section, so the LP may still hold
    // speculation the new frontier has already finalised).  The deferred
    // rollback is protocol-transparent only for events strictly above GVT:
    // receivers fossil-collect their sends this very round, and a parked
    // send whose receiver has committed it can never be cancelled again --
    // if the LP is later demoted, conservative re-execution settles the
    // stale entry as an anti-message below the receiver's commit frontier
    // and a fresh-uid duplicate, corrupting the committed trace.
    lps_[mv.lp].fossil_collect(safe_bound_, router);
    lps_[mv.lp].rollback_all_deferred();
    const LpCheckpoint ck = lps_[mv.lp].make_checkpoint();
    partition_[mv.lp] = mv.to;
    lps_[mv.lp].restore_from(ck);
    key_[mv.lp] = lps_[mv.lp].next_ts();
    dst.owned.push_back(mv.lp);
    metrics_.shard(coord).inc(obs::Metric::kMigrations);
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->instant(coord, "lb", "migrate", tnow(), mv.lp, "to",
                      static_cast<std::int64_t>(mv.to));
    });
  }
  VSIM_TRACE(if (trace_ != nullptr) {
    trace_->complete(coord, "lb", "rebalance", lb_start, tnow() - lb_start,
                     obs::kNoTraceLp, "moves",
                     static_cast<std::int64_t>(plan.moves.size()));
  });
}

void ThreadedEngine::flush_commits() {
  if (!hook_) return;
  for (auto& buf : commit_buf_) {
    for (const Event& ev : buf) hook_(ev);
    buf.clear();
  }
}

RunStats ThreadedEngine::run() {
  if (config_error_) {
    RunStats out;
    out.config_error = config_error_;
    return out;
  }

  for (const Event& ev : graph_.initial_events()) {
    const std::size_t wi = partition_[ev.dst];
    Event copy = ev;
    ThreadedRouter router(*this, wi);
    lps_[ev.dst].enqueue(std::move(copy), router);
    refresh_key(wi, ev.dst);
  }

  if (ft_on_) {
    // Round-zero baseline, taken before any thread starts: recovery always
    // has a line to rewind to, even when the first crash precedes the
    // first periodic checkpoint.
    store_.put(capture_checkpoint(0, kTimeZero, lps_, last_promise_, *net_,
                                  faulty_.get()));
    ++ckstats_.checkpoints;
  }

  trace_epoch_ = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::size_t wi = 0; wi < config_.num_workers; ++wi)
    threads.emplace_back([this, wi] { worker_main(wi); });
  for (std::thread& t : threads) t.join();

  if (ft_on_ && crash_count_.load(std::memory_order_acquire) > 0 &&
      !recovery_error_ && !done_.load(std::memory_order_acquire)) {
    // Every thread exited via crash-stop before any surviving coordinator
    // could run a round: there is nobody left to recover.
    std::uint32_t first_dead = 0;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (crashed_[w].load(std::memory_order_acquire)) {
        first_dead = static_cast<std::uint32_t>(w);
        break;
      }
    }
    recovery_error_ = RecoveryError{first_dead, gvt_rounds_, recoveries_,
                                    "all workers crashed"};
    failed_ = true;
  }

  RunStats out;
  out.per_lp.reserve(lps_.size());
  for (const LpRuntime& rt : lps_) out.per_lp.push_back(rt.stats());
  out.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) out.per_worker.push_back(w->stats);
  out.gvt_rounds = gvt_rounds_;
  out.deadlocked = deadlocked_;
  out.transport = net_->counters();
  if (auto err = net_->error()) {
    out.transport_error = std::move(err);
  } else if (!config_.transport.reliable && out.transport.dropped > 0) {
    TransportError err;
    err.message = "packets were dropped without reliable delivery; "
                  "committed traces are not trustworthy";
    out.transport_error = std::move(err);
  }
  out.deadlock_report = deadlock_report_;
  out.checkpoint = ckstats_;
  out.checkpoint.crashes = crash_count_.load(std::memory_order_acquire);
  out.checkpoint.disk_bytes = store_.disk_bytes();
  out.recovery_error = recovery_error_;
  // Buffered commits are flushed even on a failed run: everything in the
  // buffers was validated by a GVT round, only never released.
  flush_commits();
  absorb_run_stats(metrics_, out);
  metrics_.merge();
  out.metrics = metrics_.merged();
  return out;
}

DeadlockReport ThreadedEngine::build_deadlock_report(VirtualTime gvt) {
  DeadlockReport report;
  report.gvt = gvt;
  report.transport_starvation =
      !config_.transport.reliable && net_->counters().dropped > 0;
  for (LpId id = 0; id < lps_.size(); ++id) {
    LpRuntime& rt = lps_[id];
    if (!rt.has_pending()) continue;
    report.blocked.push_back({id, rt.next_ts(), rt.min_channel_clock(),
                              rt.pending_count(), rt.mode()});
  }
  return report;
}

}  // namespace vsim::pdes
