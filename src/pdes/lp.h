// Logical process (LP) abstraction.
//
// An LP owns private state and a simulate() function called once per input
// event.  Output events are emitted through the SimContext.  LPs that support
// optimistic execution must provide state snapshots for rollback.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "pdes/event.h"

namespace vsim::pdes {

/// Opaque snapshot of an LP's state, produced by save_state() and consumed
/// by restore_state().  Concrete LPs define their own derived type.
class LpState {
 public:
  virtual ~LpState() = default;
};

/// Interface through which simulate() emits events and inspects time.
class SimContext {
 public:
  virtual ~SimContext() = default;

  /// Sends `kind`/`payload` to `dst` at virtual time `ts`.
  /// Requires ts >= now(); self-sends additionally require ts > now().
  ///
  /// `sub` is only set by the clustering layer (pdes/cluster.h): it names the
  /// flat model LP inside the fused ClusterLp `dst`.  A sub-carrying send may
  /// target the sender's own runtime LP at ts == now() -- in flat terms that
  /// is an ordinary inter-LP zero-delay event between two inners of the same
  /// cluster, which the arbitrary equal-timestamp ordering (DESIGN.md §2)
  /// makes safe.  Model LPs never pass `sub` themselves.
  virtual void send(LpId dst, VirtualTime ts, std::int16_t kind,
                    Payload payload, LpId sub = kInvalidLp) = 0;

  [[nodiscard]] virtual VirtualTime now() const = 0;
  [[nodiscard]] virtual LpId self() const = 0;
};

class LogicalProcess {
 public:
  explicit LogicalProcess(std::string name) : name_(std::move(name)) {}
  virtual ~LogicalProcess() = default;

  LogicalProcess(const LogicalProcess&) = delete;
  LogicalProcess& operator=(const LogicalProcess&) = delete;

  /// Processes one input event: reads/updates internal state and emits
  /// output events via `ctx`.  Must be deterministic in (state, event).
  virtual void simulate(const Event& ev, SimContext& ctx) = 0;

  /// Snapshot / restore for Time Warp.  LPs that return false from
  /// can_save_state() are pinned to conservative mode (the paper's
  /// "heavy-state processes cannot save their state").
  [[nodiscard]] virtual std::unique_ptr<LpState> save_state() const = 0;
  virtual void restore_state(const LpState& s) = 0;
  [[nodiscard]] virtual bool can_save_state() const { return true; }

  /// Byte-level state serialisation, for shipping snapshots across process
  /// boundaries (the distributed engine's checkpoint recovery; see
  /// pdes/distributed.h).  encode_state() appends a portable encoding of
  /// `s` -- a snapshot this LP's save_state() produced -- and returns true;
  /// decode_state() parses one back, returning null on malformed input.
  /// The default has no codec (returns false / null): such LPs work in
  /// every in-process engine and in crash-free distributed runs, but a
  /// distributed run with fault tolerance enabled rejects them up front.
  [[nodiscard]] virtual bool encode_state(const LpState& s,
                                          bytes::Writer& w) const {
    (void)s;
    (void)w;
    return false;
  }
  [[nodiscard]] virtual std::unique_ptr<LpState> decode_state(
      bytes::Reader& r) const {
    (void)r;
    return nullptr;
  }

  /// Cost of processing `ev` in abstract work units; drives the machine
  /// model used for speedup studies (see pdes/machine.h).
  [[nodiscard]] virtual double event_cost(const Event& ev) const {
    (void)ev;
    return 1.0;
  }

  /// Static lookahead in physical time: a promise that any output event's
  /// pt exceeds the input's by at least this much.  Only used by the
  /// null-message conservative strategy; 0 means "no lookahead".
  [[nodiscard]] virtual PhysTime lookahead() const { return 0; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] LpId id() const { return id_; }

  /// Builder-supplied hint for the paper's mixed configuration: synchronous
  /// components (clocks, registers) run conservatively, asynchronous
  /// data-flow logic optimistically.
  void set_sync_hint(bool synchronous) { sync_hint_ = synchronous; }
  [[nodiscard]] bool sync_hint() const { return sync_hint_; }

 private:
  friend class LpGraph;
  std::string name_;
  LpId id_ = kInvalidLp;
  bool sync_hint_ = false;
};

}  // namespace vsim::pdes
