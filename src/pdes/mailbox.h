// Hot-path inter-worker mailbox: batch-published MPSC with per-source lanes.
//
// The threaded engine's first wire pushed every packet into the destination
// worker's mailbox under a mutex -- one lock acquisition per message, with
// producers and the consumer bouncing the same cache line.  BatchMailbox
// replaces it with the two-sided batch design (see DESIGN.md "Hot-path data
// structures"):
//
//  - producers do NOT touch the mailbox per packet.  Each sending worker
//    accumulates packets in per-destination outbox buffers (plain vectors it
//    alone owns) and publishes a whole buffer once per scheduling round with
//    a single lock-free push (one CAS per *batch*, not per packet);
//  - the consumer drains each lane with one atomic exchange, then walks the
//    detached list locally;
//  - each producer gets its own cache-line-aligned lane, so two producers
//    never contend with each other -- a lane's publish CAS only ever races
//    the consumer's take-all exchange;
//  - batch nodes (and their vector storage) recycle through a per-lane free
//    stack flowing consumer -> producer, so the steady state allocates
//    nothing: the storage a producer hands over in push_batch comes back as
//    the empty buffer of a later call.  The free stack is ABA-immune by
//    construction: its only pop is the producer's take-all exchange, and
//    pushes (from the one consumer) cannot be harmed by reuse.
//
// Ordering: a lane is LIFO in publish order, so drain() reverses the
// detached chain before emptying it -- one producer's batches replay in
// exactly the order they were published.  Per producer this preserves FIFO,
// which is all the channel layer above needs (cross-producer order was
// never guaranteed, with or without reliability).
//
// Thread-safety: push_batch(src, ...) may be called from one thread per
// lane, concurrently with one drain()er.  reset(), clear() and the
// destructor require external quiescence (the engine calls them inside
// barrier rounds).
//
// Quiescence is also what makes LP migration (partition/rebalance.h) safe
// against this design: a GVT round drains every lane and outbox buffer
// before the coordinator's exclusive section runs, so when ownership moves
// there is no published batch -- and no producer-side buffer -- still
// holding a packet addressed under the old LP->worker mapping.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "pdes/transport.h"

namespace vsim::pdes {

class BatchMailbox {
 public:
  BatchMailbox() = default;
  explicit BatchMailbox(std::size_t producers) { reset(producers); }
  BatchMailbox(const BatchMailbox&) = delete;
  BatchMailbox& operator=(const BatchMailbox&) = delete;
  ~BatchMailbox() { clear(); }

  /// (Re)creates the lane array for `producers` senders.  Quiescent-only;
  /// discards anything published or recycled.
  void reset(std::size_t producers) {
    clear();
    lanes_ = std::make_unique<Lane[]>(producers);
    num_lanes_ = producers;
  }

  /// Producer side: publishes the whole batch (which must be non-empty) on
  /// lane `src`.  Zero-copy: `pkts`' storage moves into the published node,
  /// and the caller is left with an empty buffer -- in steady state one
  /// whose capacity came back through the lane's recycling stack.
  void push_batch(std::uint32_t src, std::vector<Packet>& pkts) {
    Lane& l = lanes_[src];
    Node* n = l.cache;
    if (n == nullptr) n = l.free.exchange(nullptr, std::memory_order_acquire);
    if (n != nullptr) {
      l.cache = n->next;
    } else {
      n = new Node;
    }
    n->pkts.swap(pkts);
    n->next = l.head.load(std::memory_order_relaxed);
    // Release on success publishes the batch contents to the consumer's
    // acquiring exchange in drain().  Only the consumer's take-all exchange
    // can race this CAS, so it retries at most once per drain.
    while (!l.head.compare_exchange_weak(n->next, n, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Consumer side: detaches every published batch with one exchange per
  /// non-empty lane and appends the packets to `out` in per-producer publish
  /// order.  Returns the number of packets appended.
  std::size_t drain(std::vector<Packet>& out) {
    std::size_t count = 0;
    for (std::size_t s = 0; s < num_lanes_; ++s) {
      Lane& l = lanes_[s];
      // Cheap empty-lane skip; a batch published between this load and the
      // exchange is picked up by the next drain, which the protocol allows
      // (drain rounds re-poll until the whole network is quiet).
      if (l.head.load(std::memory_order_relaxed) == nullptr) continue;
      Node* n = l.head.exchange(nullptr, std::memory_order_acquire);
      // Reverse the LIFO chain so batches replay in publish order.
      Node* prev = nullptr;
      while (n != nullptr) {
        Node* next = n->next;
        n->next = prev;
        prev = n;
        n = next;
      }
      while (prev != nullptr) {
        count += prev->pkts.size();
        for (Packet& p : prev->pkts) out.push_back(std::move(p));
        prev->pkts.clear();
        Node* next = prev->next;
        // Recycle the node (and its vector storage) back to the producer.
        prev->next = l.free.load(std::memory_order_relaxed);
        while (!l.free.compare_exchange_weak(prev->next, prev,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
        }
        prev = next;
      }
    }
    return count;
  }

  /// Discards everything (crash recovery: in-flight packets belong to the
  /// abandoned timeline).  Caller must guarantee no concurrent push_batch.
  void clear() {
    for (std::size_t s = 0; s < num_lanes_; ++s) {
      Lane& l = lanes_[s];
      free_chain(l.head.exchange(nullptr, std::memory_order_acquire));
      free_chain(l.free.exchange(nullptr, std::memory_order_acquire));
      free_chain(l.cache);
      l.cache = nullptr;
    }
  }

  /// True when nothing is published (consumer-side check between rounds).
  [[nodiscard]] bool empty() const {
    for (std::size_t s = 0; s < num_lanes_; ++s)
      if (lanes_[s].head.load(std::memory_order_acquire) != nullptr)
        return false;
    return true;
  }

 private:
  struct Node {
    std::vector<Packet> pkts;
    Node* next = nullptr;
  };
  struct alignas(64) Lane {
    /// Published batches (LIFO chain); producer CAS vs consumer exchange.
    std::atomic<Node*> head{nullptr};
    /// Drained nodes flowing back; consumer CAS-push, producer exchange-pop.
    std::atomic<Node*> free{nullptr};
    /// Producer-local stash popped off `free` in one take-all exchange.
    Node* cache = nullptr;
  };

  static void free_chain(Node* n) {
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  std::unique_ptr<Lane[]> lanes_;
  std::size_t num_lanes_ = 0;
};

}  // namespace vsim::pdes
