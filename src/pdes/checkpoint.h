// GVT-consistent checkpoint/restart.
//
// GVT is the commit frontier the protocol already computes: no event below
// it is ever rolled back (DESIGN.md §5), so the state at a synchronisation
// round -- after the network has been drained to quiescence -- is a globally
// consistent cut.  A checkpoint captures, per LP, the committed-frontier
// snapshot plus the pending event set, and, per link, the reliable-layer
// sequence cursors and the fault-injector RNG cursors.  Restoring it and
// re-running is therefore *deterministic*: the replay regenerates the exact
// message and fault sequence of the original run, and the committed trace of
// a crashed-and-recovered run is bit-identical to an uninterrupted one.
//
// Capture uses "rollback-all-deferred" (LpRuntime::rollback_all_deferred):
// speculative history is undone WITHOUT emitting anti-messages -- every
// undone send is parked in the lazy-cancellation queue, and deterministic
// re-execution after the checkpoint settles each entry as a suppressed
// resend.  The checkpoint is thus protocol-transparent: no receiver ever
// observes that one was taken.
//
// The per-LP capture path (rollback_all_deferred + make_checkpoint +
// restore_from) is also the migration codec: dynamic load balancing
// (partition/rebalance.h) packs an LP through it on the source worker and
// reinstates it on the destination inside the same drained GVT round, so
// migrating is exactly "checkpoint one LP, restore it under a new owner".
//
// Clustering composes transparently: a fused ClusterLp (pdes/cluster.h) is
// one LP to this module, so the cluster is the unit of checkpointing and
// migration.  Its save_state() is an O(1) undo-log marker, and its byte
// codec concatenates the inner LPs' codecs in local order -- the snapshot a
// rank ships or spills for a 64-LP cluster is one LpCheckpoint, not 64.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "pdes/lp.h"
#include "pdes/transport.h"

namespace vsim::pdes {

class LpRuntime;

/// One LP's share of a checkpoint.  `state` is the opaque LpState snapshot
/// (kept in memory; LPs that implement encode_state/decode_state can also
/// ship it as bytes, which the distributed engine requires); the remaining
/// fields are plain data and form the "portable" section that can spill to
/// disk (CheckpointStore::encode_portable) or cross the wire
/// (encode_lp_checkpoint).
struct LpCheckpoint {
  std::unique_ptr<LpState> state;
  SyncMode mode = SyncMode::kConservative;
  bool pinned_conservative = false;
  VirtualTime committed_ts = kTimeZero;
  EventUid send_seq = 0;
  std::vector<Event> pending;
  std::vector<EventUid> pending_negatives;
  /// Undecided lazy-cancellation entries (gen_uid, sent event).
  std::vector<std::pair<EventUid, Event>> lazy;
  /// Null-message channel clocks, sorted by source LP for determinism.
  std::vector<std::pair<LpId, VirtualTime>> in_clocks;
};

/// A consistent global snapshot taken at a GVT round.
struct Checkpoint {
  std::uint64_t round = 0;  ///< GVT round the snapshot was taken at
  VirtualTime gvt = kTimeZero;
  std::vector<LpCheckpoint> lps;          ///< indexed by LpId
  std::vector<VirtualTime> last_promise;  ///< engine null-promise cache
  std::vector<LinkCheckpoint> links;      ///< reliable-layer cursors
  std::vector<FaultLinkCheckpoint> fault_links;  ///< injector RNG cursors
  /// Encoded LpState bytes per LP (LogicalProcess::encode_state), indexed by
  /// LpId when present.  The distributed engine fills these so a spilled
  /// checkpoint is *complete*: a fresh process can revive every LP from the
  /// file alone.  The in-process engines leave it empty (their `state`
  /// pointers stay live in memory) and the codec encodes an empty list.
  std::vector<std::vector<std::uint8_t>> state_blobs;
};

/// Structured failure surfaced when crash recovery itself fails: the
/// recovery budget is exhausted (crash-looping cluster) or no survivor is
/// left to take over the dead worker's LPs.
struct RecoveryError {
  std::uint32_t worker = 0;  ///< the crash that could not be recovered from
  std::uint64_t round = 0;   ///< GVT round at which recovery gave up
  std::uint32_t recoveries_used = 0;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// What fault tolerance cost during a run.
///
/// Exported to the metrics registry (obs/metrics.h) as the `ckpt.*`
/// counters -- checkpoints, crashes, recoveries, lps_restored, disk_bytes,
/// plus the `ckpt.overhead_cost` gauge -- so BENCH_*.json reports carry the
/// fault-tolerance tax per run; see DESIGN.md "Observability".
struct CheckpointStats {
  std::uint64_t checkpoints = 0;  ///< snapshots taken (incl. the initial one)
  std::uint64_t crashes = 0;      ///< worker crash-stop events injected
  std::uint64_t recoveries = 0;   ///< successful recoveries performed
  std::uint64_t lps_restored = 0; ///< LP snapshots reinstated across recoveries
  std::uint64_t disk_bytes = 0;   ///< portable bytes spilled to disk
  double overhead_cost = 0.0;     ///< work units charged to worker clocks
};

/// Ring buffer of the most recent checkpoints.  When `spill_dir` is
/// non-empty, the portable section of every checkpoint is also written
/// durably (atomic temp-file + fsync + rename) to
/// `<spill_dir>/ckpt-<round>.bin` and read back for verification.  When the
/// checkpoint carries `state_blobs` (the distributed engine's replicated
/// snapshots do), the file alone can revive a fresh process: see
/// load_newest_valid().
class CheckpointStore {
 public:
  explicit CheckpointStore(std::size_t keep = 2, std::string spill_dir = {});

  void put(Checkpoint&& ck);
  [[nodiscard]] const Checkpoint* latest() const;
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t disk_bytes() const { return disk_bytes_; }
  /// First disk-spill failure (I/O error or read-back mismatch), if any.
  /// Spilling is best-effort: the in-memory checkpoint stays authoritative.
  [[nodiscard]] const std::optional<std::string>& io_error() const {
    return io_error_;
  }

  /// Drops every checkpoint with round > `round`, from the ring AND from the
  /// spill dir.  Called when a restore rewinds the cluster: snapshots from
  /// the abandoned timeline must not survive where a later succession could
  /// restore (or re-emit commits from) them.
  void drop_above(std::uint64_t round);

  /// Restart path: scans `dir` for ckpt-*.bin files and returns the decoded
  /// checkpoint with the highest round that passes the checksum + structural
  /// decode, or nullopt when none does.  Torn or corrupt files are skipped
  /// with a warning on stderr, never fatal; `skipped` (optional) counts them.
  [[nodiscard]] static std::optional<Checkpoint> load_newest_valid(
      const std::string& dir, std::uint64_t* skipped = nullptr);

  /// Serialises everything except the in-memory LpState snapshots into a
  /// versioned little-endian binary blob (CRC32-terminated so torn writes
  /// are detectable), and parses it back.  decode returns false on any
  /// corruption (bad magic, truncation, checksum mismatch, trailing bytes).
  [[nodiscard]] static std::vector<std::uint8_t> encode_portable(
      const Checkpoint& ck);
  [[nodiscard]] static bool decode_portable(
      const std::vector<std::uint8_t>& buf, Checkpoint* out);

 private:
  void spill(const Checkpoint& ck);

  std::size_t keep_;
  std::string spill_dir_;
  std::vector<Checkpoint> ring_;  ///< oldest first
  std::uint64_t disk_bytes_ = 0;
  std::optional<std::string> io_error_;
};

/// Shared field-level codecs (common/bytes.h layout).  These are the exact
/// encodings the portable checkpoint section uses, exposed so the socket
/// wire (src/net) serialises events and shipped LP checkpoints with the
/// same bytes a spilled checkpoint holds.  The LpCheckpoint codec covers
/// the portable fields only -- the opaque LpState travels separately
/// through LogicalProcess::encode_state/decode_state.
void encode_event(bytes::Writer& w, const Event& ev);
[[nodiscard]] Event decode_event(bytes::Reader& r);
void encode_lp_checkpoint(bytes::Writer& w, const LpCheckpoint& lp);
[[nodiscard]] bool decode_lp_checkpoint(bytes::Reader& r, LpCheckpoint* out);

/// Builds a checkpoint from engine state.  Preconditions: every LP's
/// speculative history has been undone (LpRuntime::rollback_all_deferred)
/// and the transport stack is quiescent (post drain-until-quiet).
/// `faulty` may be null when no fault decorator is installed.
[[nodiscard]] Checkpoint capture_checkpoint(
    std::uint64_t round, VirtualTime gvt, std::vector<LpRuntime>& lps,
    const std::vector<VirtualTime>& last_promise, const ChannelStack& net,
    const FaultyTransport* faulty);

/// Restores engine state from `ck` (the inverse of capture_checkpoint).
/// The caller must clear its mailboxes and rebuild its scheduling keys
/// afterwards; LP statistics are cumulative and deliberately not restored.
void restore_checkpoint(const Checkpoint& ck, std::vector<LpRuntime>& lps,
                        std::vector<VirtualTime>& last_promise,
                        ChannelStack& net, FaultyTransport* faulty);

}  // namespace vsim::pdes
