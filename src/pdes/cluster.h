// LP clustering: fuse many flat model LPs into one runtime ClusterLp.
//
// The paper's bipartite mapping gives every VHDL signal and process its own
// LP, which is the right granularity for the protocol but far too fine for
// six-figure netlists: per-LP scheduling keys, mailbox hops and GVT scans
// all scale with the LP count.  The clustering layer keeps the MODEL flat --
// signals and processes are built, named and traced exactly as before -- but
// fuses spatially close LPs (partition/cluster.h computes the assignment)
// into ClusterLps that are what the engines actually schedule:
//
//   * A ClusterLp is a plain LogicalProcess.  Every engine, the rebalancer
//     and the checkpoint codec handle it with zero structural changes, and
//     the cluster is the unit of migration and checkpointing.
//   * Events into a fused graph carry the inner flat destination in
//     Event::sub; the runtime routes on `dst` (the cluster) alone and the
//     cluster dispatches on `sub`.  Intra-cluster traffic becomes a local
//     enqueue on the cluster's own pending queue -- it never touches a
//     mailbox or the transport -- and may keep ts == now() (in flat terms it
//     is an ordinary inter-LP event, safe under the arbitrary equal-time
//     ordering; see DESIGN.md "LP clustering").  Clustered runs therefore
//     REQUIRE EventOrdering::kArbitrary: under kUserConsistent a same-time
//     intra-cluster arrival would be treated as a straggler for its own
//     generator and the run would livelock re-executing it.
//   * Rollback granularity is preserved: each inner event is one runtime
//     event.  save_state() is O(1) -- it returns a position marker into an
//     undo log that records, per executed inner event, the single inner
//     pre-state, so rolling back k events costs O(k) inner restores instead
//     of O(cluster size) snapshot copies per event.
//
// The sequential oracle keeps running the flat graph, so a clustered run is
// proven bit-identical by comparing committed traces through inner_dst().
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "pdes/graph.h"
#include "pdes/lp.h"

namespace vsim::pdes {

/// Routing table shared by every ClusterLp of one fused graph: flat model
/// LpId -> (owning cluster's LpId, local index within that cluster).
struct ClusterTable {
  std::vector<LpId> cluster_of;
  std::vector<std::uint32_t> local_of;
};

/// A fused runtime LP owning a set of flat model LPs.  Inners keep the LpId
/// the flat graph assigned them -- that id remains their model identity (it
/// is what Event::sub and trace hooks see).
class ClusterLp final : public LogicalProcess {
 public:
  ClusterLp(std::string name, const ClusterTable* table)
      : LogicalProcess(std::move(name)), table_(table) {}

  /// Moves one flat model LP into this cluster.  Adoption order defines the
  /// local index order and the encode_state/decode_state codec order, so it
  /// must be deterministic (fuse_clusters adopts in flat-id order).
  void adopt(std::unique_ptr<LogicalProcess> inner);

  [[nodiscard]] std::size_t size() const { return inners_.size(); }
  [[nodiscard]] const LogicalProcess& inner(std::size_t local) const {
    return *inners_[local];
  }

  void simulate(const Event& ev, SimContext& ctx) override;

  /// O(1): returns a marker into the undo log, not a copy of the cluster.
  /// The marker stays tied to this cluster's live timeline; undo entries are
  /// retained while any marker (history entry or in-memory checkpoint) that
  /// precedes them is alive, and trimmed as markers are destroyed.
  [[nodiscard]] std::unique_ptr<LpState> save_state() const override;
  void restore_state(const LpState& s) override;
  [[nodiscard]] bool can_save_state() const override { return can_save_; }

  /// Byte codec: concatenation of the inner codecs in local order.  Works
  /// for marker states too -- the inner states as of the marker are
  /// reconstructed non-destructively from the undo log.
  [[nodiscard]] bool encode_state(const LpState& s,
                                  bytes::Writer& w) const override;
  [[nodiscard]] std::unique_ptr<LpState> decode_state(
      bytes::Reader& r) const override;

  [[nodiscard]] double event_cost(const Event& ev) const override;
  [[nodiscard]] PhysTime lookahead() const override;

 private:
  class InnerContext;
  struct Marker;
  struct Snapshot;
  /// One executed inner event: the pre-state of the single inner it touched.
  struct UndoEntry {
    std::uint64_t seq;
    std::uint32_t local;
    std::unique_ptr<LpState> pre;
  };

  void unregister_marker(std::uint64_t seq) const;
  void trim_undo() const;

  const ClusterTable* table_;
  std::vector<std::unique_ptr<LogicalProcess>> inners_;
  bool can_save_ = true;
  bool have_lookahead_ = false;
  PhysTime lookahead_ = 0;

  // Undo-log machinery (mutable: save_state() is const but must register the
  // marker).  `clock_` numbers undo entries; a marker with seq s restores by
  // popping every entry with seq > s in reverse.  `live_` tracks the seqs of
  // all outstanding markers so the log can be trimmed below the oldest one;
  // when no marker is live (pure conservative mode, no checkpoint ring) no
  // entries are recorded at all.  `epoch_` guards against markers from a
  // timeline abandoned by a full-snapshot restore.
  mutable std::deque<UndoEntry> undo_;
  mutable std::multiset<std::uint64_t> live_;
  mutable std::uint64_t clock_ = 0;
  mutable std::uint64_t epoch_ = 0;
};

/// A clustered LP graph plus the routing table its ClusterLps share.  Keep
/// this alive (and un-moved-from) for as long as the graph is simulated.
struct FusedGraph {
  LpGraph graph;
  std::unique_ptr<ClusterTable> table;
  std::size_t num_clusters = 0;
  std::size_t flat_size = 0;
};

/// Fuses `flat` under `assignment` (flat LpId -> cluster id; ids must be
/// contiguous 0..k-1, as partition/cluster.h produces).  Moves every model
/// LP out of `flat` -- the husk keeps only its topology and must not be
/// simulated afterwards.  Inter-cluster channels are deduplicated;
/// intra-cluster edges disappear from the runtime topology.  Initial events
/// are re-addressed to the owning cluster with the flat target in `sub`.
[[nodiscard]] FusedGraph fuse_clusters(
    LpGraph& flat, const std::vector<std::uint32_t>& assignment);

}  // namespace vsim::pdes
