// Pluggable inter-worker transport layer.
//
// The original system ran over MPI / TCP sockets between workstations,
// where messages are delayed, reordered, duplicated and lost.  The engines
// abstract that network as a three-layer stack:
//
//   ChannelStack (session layer: per-link sequence numbers, receiver-side
//        |        dedup, cumulative acks, retransmission with exponential
//        |        backoff -- or a counted pass-through when reliability is
//        |        disabled)
//        v
//   FaultyTransport (optional decorator: deterministic seeded drop /
//        |           duplicate / reorder / latency-jitter / blackout
//        |           injection per link)
//        v
//   engine wire (Transport implementation supplied by the engine: the
//                machine engine's latency-stamped virtual mailboxes or the
//                threaded engine's mutex-protected queues)
//
// Threading contract (threaded engine): all sender-side state of a link
// src->dst (sequence counter, in-flight list, fault RNG, holdback queue)
// is touched only from worker `src`, and all receiver-side state (expected
// sequence, reorder buffer) only from worker `dst`.  send()/poll()/flush()
// must be called from the link's source worker and on_wire_delivery() from
// the packet's destination worker; counters are aggregated after the
// workers have joined (or inside a barrier round).
//
// Links are indexed by (src worker, dst worker), never by LP, and senders
// resolve the destination worker from the partition map per send.  LP
// migration (partition/rebalance.h) therefore moves no transport state at
// all: after the GVT round that moved an LP, traffic to it simply flows
// down the links of its new owner, with every link's sequence/ack/RNG
// cursors untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pdes/config.h"
#include "pdes/event.h"

namespace vsim::pdes {

/// SplitMix64 seed scrambler: shared by every deterministic RNG in the
/// engines (link faults, worker crashes) so seeds never collide by accident.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One xorshift64* step; returns a uniform draw in [0, 1) and advances the
/// cursor.  The cursor must never be 0.
inline double xorshift_uniform(std::uint64_t& rng) {
  rng ^= rng >> 12;
  rng ^= rng << 25;
  rng ^= rng >> 27;
  const std::uint64_t bits = rng * 0x2545f4914f6cdd1dULL;
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Per-link reliable-layer cursors saved in a checkpoint.  In-flight and
/// reorder buffers are NOT saved: checkpoints are only taken when the stack
/// is quiescent (post drain-until-quiet), so both are provably empty.
struct LinkCheckpoint {
  std::uint64_t next_seq = 1;
  std::uint64_t expected = 1;
};

/// Per-link fault-injector cursors saved in a checkpoint: restoring them
/// makes the post-recovery fault sequence identical to the original run's,
/// which is what makes replay deterministic under chaos plans.
struct FaultLinkCheckpoint {
  std::uint64_t rng = 1;
  std::uint32_t blackout_left = 0;
};

/// What actually happened on the wire during a run.  A chaos run must show
/// nonzero drops/retransmits here, otherwise the fault plan never bit.
///
/// Every field is exported 1:1 as a `transport.<field>` counter in the
/// metrics registry (obs/metrics.h) and therefore appears in RunStats::
/// metrics and in the BENCH_*.json reports; see DESIGN.md "Observability".
struct TransportCounters {
  std::uint64_t data_sent = 0;       ///< first transmissions of data packets
  std::uint64_t acks_sent = 0;       ///< ack packets emitted (incl. re-acks)
  std::uint64_t delivered = 0;       ///< data packets handed to the LP layer
  std::uint64_t dropped = 0;         ///< vanished on the wire (incl. blackouts)
  std::uint64_t duplicated = 0;      ///< extra copies injected by faults
  std::uint64_t reordered = 0;       ///< packets held back behind later traffic
  std::uint64_t retransmits = 0;     ///< reliable-layer resends
  std::uint64_t dup_discarded = 0;   ///< receiver-side dedup hits
  std::uint64_t buffered = 0;        ///< packets parked for in-order restore

  TransportCounters& operator+=(const TransportCounters& o);
};

/// Structured failure surfaced when the reliable layer gives up on a link
/// (retry cap exceeded) or when a lossy run finished without reliability
/// enabled (results cannot be trusted).
struct TransportError {
  std::uint32_t src_worker = 0;
  std::uint32_t dst_worker = 0;
  std::uint64_t seq = 0;       ///< link sequence that could not be delivered
  std::uint32_t attempts = 0;  ///< transmissions attempted for it
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// The unit the wire moves: an Event wrapped with link addressing.  `seq`
/// is the reliable layer's per-link sequence number for data packets and
/// the cumulative acknowledgement for ack packets; 0 when unreliable.
struct Packet {
  enum class Kind : std::uint8_t { kData, kAck };
  Kind kind = Kind::kData;
  std::uint32_t src = 0;  ///< source worker
  std::uint32_t dst = 0;  ///< destination worker
  std::uint64_t seq = 0;
  Event ev;
};

/// A wire that moves packets between workers.  Engines implement the
/// bottom of the stack; FaultyTransport decorates any Transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Hands a packet to the network.  `now` is the submitting worker's
  /// current time in engine time units (wires without a timing model may
  /// ignore it).
  virtual void submit(Packet&& pkt, double now) = 0;

  /// Releases every packet this layer still holds for links whose source is
  /// `worker` (reorder holdbacks, blackout queues).  Returns how many were
  /// pushed down; synchronisation rounds call this until the whole stack is
  /// quiet.  Perfect wires hold nothing.
  virtual std::size_t release_held(std::uint32_t worker, double now) {
    (void)worker;
    (void)now;
    return 0;
  }
};

/// Deterministic fault-injection decorator.  Each link (src worker, dst
/// worker) carries its own xorshift RNG seeded from the plan, so the fault
/// sequence is a pure function of the plan and the traffic pattern.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, std::size_t num_workers,
                  const FaultPlan& plan);

  void submit(Packet&& pkt, double now) override;
  std::size_t release_held(std::uint32_t worker, double now) override;

  /// Packets currently parked for reordering, across all links.
  [[nodiscard]] std::size_t held_count() const;
  [[nodiscard]] TransportCounters counters() const;

  /// Snapshot / restore of the per-link RNG + blackout cursors, in link
  /// index order.  restore_links drops any parked packets (a checkpoint is
  /// only restored into a quiescent network).
  [[nodiscard]] std::vector<FaultLinkCheckpoint> capture_links() const;
  void restore_links(const std::vector<FaultLinkCheckpoint>& saved);

 private:
  struct Link {
    std::uint64_t rng;
    std::uint32_t blackout_left = 0;  ///< submissions still swallowed
    /// Packets elected for reordering: delivered after the next submission
    /// on the link overtakes them (or at the next release_held()).
    std::deque<Packet> held;
    TransportCounters counters;
  };

  [[nodiscard]] Link& link(std::uint32_t src, std::uint32_t dst) {
    return links_[src * num_workers_ + dst];
  }
  /// Uniform draw in [0, 1).
  static double uniform(std::uint64_t& rng);

  Transport& inner_;
  std::size_t num_workers_;
  FaultPlan plan_;
  std::vector<Link> links_;
};

/// Session layer the engines talk to.  With `reliable` set it restores
/// exactly-once in-order delivery per link over any lossy Transport; with
/// it clear, datagrams pass straight through (faults reach the protocol
/// layer, which is exactly what the chaos tests want to observe).
class ChannelStack {
 public:
  /// Delivers an application event to the LP layer of worker `worker`.
  /// Called from on_wire_delivery(), i.e. on the destination worker.
  using DeliverFn = std::function<void(std::uint32_t worker, Event&&)>;
  /// Charged-cost hook: invoked for ack emissions and retransmissions so
  /// the machine engine can bill them to the owning worker's virtual clock
  /// (first transmissions are billed by the engine's router).
  using TransmitHook =
      std::function<void(std::uint32_t worker, Packet::Kind, bool retransmit)>;

  ChannelStack(Transport& wire, std::size_t num_workers,
               const TransportConfig& config);

  void set_deliver(DeliverFn f) { deliver_ = std::move(f); }
  void set_transmit_hook(TransmitHook f) { transmit_ = std::move(f); }

  /// Sender side: ship `ev` from worker `from` to worker `to`.
  void send(std::uint32_t from, std::uint32_t to, Event&& ev, double now);

  /// Receiver side: the engine calls this for every packet its wire
  /// delivers; data events come back through the DeliverFn (possibly
  /// after in-order restore), acks settle the sender's in-flight list.
  void on_wire_delivery(Packet&& pkt, double now);

  /// Emits the cumulative acks owed by receiver `worker`, one per link that
  /// delivered (or dup-discarded) data since the last flush.  Deliveries no
  /// longer ack per packet: the engines drain their inboxes in batches and
  /// call this once per drained batch, so a burst of n packets on a link
  /// costs one ack instead of n (see DESIGN.md "Hot-path data structures").
  /// Called from the destination worker, like on_wire_delivery().  Returns
  /// the number of acks emitted.
  std::size_t flush_acks(std::uint32_t worker, double now);

  /// Retransmits in-flight packets whose timeout expired on links whose
  /// source is `worker`.  Returns the number of packets resent.
  std::size_t poll(std::uint32_t worker, double now);

  /// Force-retransmits every in-flight packet from `worker` and releases
  /// everything held by lower layers, regardless of timers.  Used by the
  /// synchronisation rounds to drain the network to quiescence: a round
  /// keeps draining + flushing until a full pass moves nothing.
  std::size_t flush(std::uint32_t worker, double now);

  /// True when no packet is in flight or parked anywhere in the stack
  /// (meaningful only after drain passes, i.e. inside a barrier).
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] bool reliable() const { return config_.reliable; }

  /// Aggregated over all links; call after workers joined / in a barrier.
  [[nodiscard]] TransportCounters counters() const;

  /// First structured failure, if any.  Once set, poll()/flush() become
  /// no-ops so the engines can unwind without livelocking.
  [[nodiscard]] std::optional<TransportError> error() const;

  /// Records the post-hoc "lossy run without reliability" error; used by
  /// engines at termination so silent corruption is impossible.
  void set_error(TransportError err);

  /// Snapshot / restore of the per-link sequence cursors, in link index
  /// order.  Capture asserts quiescence; restore clears in-flight and
  /// reorder buffers (anything still buffered belongs to the timeline being
  /// abandoned) but deliberately keeps a previously recorded error latched.
  [[nodiscard]] std::vector<LinkCheckpoint> capture_links() const;
  void restore_links(const std::vector<LinkCheckpoint>& saved);

 private:
  struct InFlight {
    Packet pkt;
    std::uint32_t attempts = 1;
    double next_retry = 0.0;
    double rto = 0.0;
  };
  struct SendLink {
    std::uint64_t next_seq = 1;
    std::deque<InFlight> in_flight;
    TransportCounters counters;
  };
  struct RecvLink {
    std::uint64_t expected = 1;  ///< next in-order sequence
    std::map<std::uint64_t, Event> reorder;
    TransportCounters counters;
  };

  [[nodiscard]] SendLink& send_link(std::uint32_t src, std::uint32_t dst) {
    return send_links_[src * num_workers_ + dst];
  }
  [[nodiscard]] RecvLink& recv_link(std::uint32_t src, std::uint32_t dst) {
    return recv_links_[src * num_workers_ + dst];
  }
  void emit_ack(std::uint32_t from, std::uint32_t to, std::uint64_t cum,
                double now);
  std::size_t retransmit_due(std::uint32_t worker, double now, bool force);

  Transport& wire_;
  std::size_t num_workers_;
  TransportConfig config_;
  DeliverFn deliver_;
  TransmitHook transmit_;
  std::vector<SendLink> send_links_;
  std::vector<RecvLink> recv_links_;
  /// ack_due_[dst * num_workers_ + src]: receiver dst owes link src->dst a
  /// cumulative ack.  Row dst is touched only by worker dst (set during
  /// on_wire_delivery, cleared by flush_acks), matching the recv-side
  /// threading contract above.
  std::vector<std::uint8_t> ack_due_;

  mutable std::mutex error_mutex_;
  std::optional<TransportError> error_;
  std::atomic<bool> has_error_{false};
  FaultyTransport* faulty_ = nullptr;  ///< set when the wire is the decorator

 public:
  /// Lets the stack pull fault counters into counters() when the wire
  /// below is a FaultyTransport owned by the engine.
  void attach_faulty(FaultyTransport* f) { faulty_ = f; }
};

}  // namespace vsim::pdes
