#include "pdes/cluster.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <utility>

namespace vsim::pdes {

// ---- state kinds ----

// O(1) snapshot: a position in the cluster's undo log.  Registered with the
// owner on construction so the log keeps every entry a live marker could
// still need, unregistered (and the log trimmed) on destruction -- markers
// live inside LpRuntime history entries and in-memory checkpoint rings, so
// their lifetime exactly tracks "could this state still be restored".
struct ClusterLp::Marker final : LpState {
  Marker(const ClusterLp* o, std::uint64_t s, std::uint64_t e)
      : owner(o), seq(s), epoch(e) {
    owner->live_.insert(seq);
  }
  ~Marker() override { owner->unregister_marker(seq); }
  Marker(const Marker&) = delete;
  Marker& operator=(const Marker&) = delete;

  const ClusterLp* owner;
  std::uint64_t seq;
  std::uint64_t epoch;
};

// Full materialised snapshot, one inner LpState per inner in local order.
// Produced by decode_state() -- states that crossed a process boundary have
// no undo log to point into.
struct ClusterLp::Snapshot final : LpState {
  std::vector<std::unique_ptr<LpState>> states;
};

// ---- inner dispatch ----

// SimContext handed to an inner LP: `self` is the inner's FLAT id, and every
// send is translated flat -> (cluster, sub) through the shared table.  An
// intra-cluster send becomes a send from the cluster to itself, which the
// runtime delivers through its own pending queue without touching a mailbox.
class ClusterLp::InnerContext final : public SimContext {
 public:
  InnerContext(const ClusterLp& c, SimContext& out, LpId self_flat)
      : c_(c), out_(out), self_(self_flat) {}

  void send(LpId dst, VirtualTime ts, std::int16_t kind, Payload payload,
            LpId sub) override {
    (void)sub;
    assert(sub == kInvalidLp && "model LPs must not pass sub themselves");
    // The flat-model self-send rule still holds for each inner: only events
    // BETWEEN two distinct inners may keep ts == now().
    assert((dst != self_ || ts > out_.now()) &&
           "inner self-sends must strictly advance virtual time");
    out_.send(c_.table_->cluster_of[dst], ts, kind, std::move(payload), dst);
  }

  [[nodiscard]] VirtualTime now() const override { return out_.now(); }
  [[nodiscard]] LpId self() const override { return self_; }

 private:
  const ClusterLp& c_;
  SimContext& out_;
  LpId self_;
};

// ---- ClusterLp ----

void ClusterLp::adopt(std::unique_ptr<LogicalProcess> inner) {
  can_save_ = can_save_ && inner->can_save_state();
  // A cluster containing any synchronous component inherits the hint: the
  // mixed configuration then runs the whole cluster conservatively, which is
  // the safe direction (optimistic execution is never required).
  if (inner->sync_hint()) set_sync_hint(true);
  const PhysTime la = inner->lookahead();
  lookahead_ = have_lookahead_ ? std::min(lookahead_, la) : la;
  have_lookahead_ = true;
  inners_.push_back(std::move(inner));
}

void ClusterLp::simulate(const Event& ev, SimContext& ctx) {
  assert(ev.sub != kInvalidLp && "cluster events must carry an inner dst");
  const std::uint32_t local = table_->local_of[ev.sub];
  LogicalProcess* in = inners_[local].get();
  // One undo entry per executed inner event, but only while some marker is
  // live -- in pure conservative mode (no history, no checkpoint ring) the
  // log stays empty and clustering adds no state-saving cost at all.
  if (!live_.empty())
    undo_.push_back({++clock_, local, in->save_state()});
  else
    ++clock_;
  InnerContext ictx(*this, ctx, ev.sub);
  in->simulate(ev, ictx);
}

std::unique_ptr<LpState> ClusterLp::save_state() const {
  return std::make_unique<Marker>(this, clock_, epoch_);
}

void ClusterLp::restore_state(const LpState& s) {
  if (const auto* m = dynamic_cast<const Marker*>(&s)) {
    assert(m->owner == this);
    assert(m->epoch == epoch_ &&
           "marker from a timeline abandoned by a snapshot restore");
    // Undo, newest first, every inner event executed after the marker.
    while (!undo_.empty() && undo_.back().seq > m->seq) {
      UndoEntry& e = undo_.back();
      inners_[e.local]->restore_state(*e.pre);
      undo_.pop_back();
    }
    return;
  }
  const auto& snap = static_cast<const Snapshot&>(s);
  assert(snap.states.size() == inners_.size());
  for (std::size_t i = 0; i < inners_.size(); ++i)
    inners_[i]->restore_state(*snap.states[i]);
  // The undo log described the replaced timeline; any marker still pointing
  // into it is dead (epoch-guarded above).  Snapshot restores only happen on
  // distributed recovery, where histories are already empty.
  undo_.clear();
  ++epoch_;
}

bool ClusterLp::encode_state(const LpState& s, bytes::Writer& w) const {
  if (!can_save_) return false;
  w.u64(inners_.size());
  if (const auto* m = dynamic_cast<const Marker*>(&s)) {
    assert(m->owner == this && m->epoch == epoch_);
    // Reconstruct each inner's state as of the marker without disturbing the
    // live log: the OLDEST undo entry after the marker holds the state that
    // inner had at marker time; inners untouched since are simply current.
    std::vector<const LpState*> at(inners_.size(), nullptr);
    for (const UndoEntry& e : undo_)
      if (e.seq > m->seq && at[e.local] == nullptr) at[e.local] = e.pre.get();
    for (std::size_t i = 0; i < inners_.size(); ++i) {
      std::unique_ptr<LpState> cur;
      const LpState* st = at[i];
      if (st == nullptr) {
        cur = inners_[i]->save_state();
        st = cur.get();
      }
      if (!inners_[i]->encode_state(*st, w)) return false;
    }
    return true;
  }
  const auto& snap = static_cast<const Snapshot&>(s);
  for (std::size_t i = 0; i < inners_.size(); ++i)
    if (!inners_[i]->encode_state(*snap.states[i], w)) return false;
  return true;
}

std::unique_ptr<LpState> ClusterLp::decode_state(bytes::Reader& r) const {
  if (!can_save_) return nullptr;
  if (r.u64() != inners_.size() || !r.ok()) return nullptr;
  auto snap = std::make_unique<Snapshot>();
  snap->states.reserve(inners_.size());
  for (const auto& in : inners_) {
    auto st = in->decode_state(r);
    if (st == nullptr) return nullptr;
    snap->states.push_back(std::move(st));
  }
  return snap;
}

double ClusterLp::event_cost(const Event& ev) const {
  if (ev.sub == kInvalidLp) return 1.0;
  return inners_[table_->local_of[ev.sub]]->event_cost(ev);
}

PhysTime ClusterLp::lookahead() const {
  return have_lookahead_ ? lookahead_ : 0;
}

void ClusterLp::unregister_marker(std::uint64_t seq) const {
  live_.erase(live_.find(seq));
  trim_undo();
}

void ClusterLp::trim_undo() const {
  const std::uint64_t min_live =
      live_.empty() ? std::numeric_limits<std::uint64_t>::max()
                    : *live_.begin();
  // An entry is needed only to restore a marker that precedes it; once no
  // live marker is older than the entry, it can never be popped again.
  while (!undo_.empty() && undo_.front().seq <= min_live) undo_.pop_front();
}

// ---- fusion ----

FusedGraph fuse_clusters(LpGraph& flat,
                         const std::vector<std::uint32_t>& assignment) {
  const std::size_t n = flat.size();
  assert(assignment.size() == n);
  std::uint32_t k = 0;
  for (const std::uint32_t c : assignment) k = std::max(k, c + 1);

  FusedGraph out;
  out.table = std::make_unique<ClusterTable>();
  out.table->cluster_of.resize(n);
  out.table->local_of.resize(n);
  out.flat_size = n;
  out.num_clusters = k;

  std::vector<ClusterLp*> cls(k);
  for (std::uint32_t c = 0; c < k; ++c) {
    auto lp = std::make_unique<ClusterLp>("cluster" + std::to_string(c),
                                          out.table.get());
    cls[c] = lp.get();
    const LpId id = out.graph.add(std::move(lp));
    (void)id;
    assert(id == c);
  }

  // Adopt in flat-id order: local indices and the state codec order are then
  // deterministic functions of (flat graph, assignment).
  std::vector<std::uint32_t> next_local(k, 0);
  for (LpId f = 0; f < n; ++f) {
    const std::uint32_t c = assignment[f];
    out.table->cluster_of[f] = c;
    out.table->local_of[f] = next_local[c]++;
    cls[c]->adopt(flat.extract(f));
  }

  // Only inter-cluster edges survive as runtime channels (deduplicated);
  // everything intra-cluster is local to the fused LP's pending queue.
  std::set<std::pair<LpId, LpId>> edges;
  for (LpId f = 0; f < n; ++f)
    for (const LpId t : flat.fan_out(f)) {
      const LpId cf = out.table->cluster_of[f];
      const LpId ct = out.table->cluster_of[t];
      if (cf != ct) edges.emplace(cf, ct);
    }
  for (const auto& [s, d] : edges) out.graph.add_channel(s, d);

  for (const Event& ev : flat.initial_events())
    out.graph.post_initial(out.table->cluster_of[ev.dst], ev.ts, ev.kind,
                           ev.payload, /*sub=*/ev.dst);
  return out;
}

}  // namespace vsim::pdes
