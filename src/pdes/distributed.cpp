#include "pdes/distributed.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <set>
#include <tuple>

#include "net/node.h"
#include "net/socket.h"
#include "net/socket_transport.h"
#include "partition/rebalance.h"
#include "pdes/adaptive.h"

namespace vsim::pdes {

namespace {

/// Events processed per scheduler iteration between socket pumps; same
/// rationale (and value) as the threaded engine's slice.
constexpr std::uint32_t kEventSlice = 16;
/// Consecutive empty iterations before a rank asks for / starts a round.
constexpr std::uint32_t kIdleSpinRound = 16;
/// Bound on the in-pass flush wait (ms).  Correctness never depends on it:
/// an unflushed link just makes the pass vote non-quiescent and the
/// coordinator issues another pass.
constexpr std::int64_t kDrainFlushBudgetMs = 50;
/// Checkpoint rounds of fault-injector cursors each rank keeps locally.
/// The baseline round is always retained as the rewind of last resort.
constexpr std::size_t kFaultRingKeep = 32;
/// Epoch layout: (term << kEpochSeqBits) | seq.  Ordinary recoveries bump
/// the sequence; a coordinator promotion bumps the term past every epoch
/// the promoting rank has seen, fencing stale control traffic for good.
constexpr std::uint32_t kEpochSeqBits = 20;

template <typename T>
void store_relaxed(const T& field, T v) {
  std::atomic_ref<T>(const_cast<T&>(field)).store(v, std::memory_order_relaxed);
}
template <typename T>
T load_relaxed(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_relaxed);
}

void encode_lp_stats(bytes::Writer& w, const LpStats& s) {
  w.u64(s.events_processed);
  w.u64(s.events_committed);
  w.u64(s.rollbacks);
  w.u64(s.events_undone);
  w.u64(s.anti_messages_sent);
  w.u64(s.annihilations);
  w.u64(s.lazy_reuses);
  w.u64(s.lazy_cancels);
  w.u64(s.state_saves);
  w.u64(s.max_history);
  w.u64(s.mode_switches);
  w.u64(s.blocked_polls);
  w.u64(s.checkpoint_undone);
  w.u64(s.queue_ops);
  w.u64(s.adapt_demotions);
  w.u64(s.adapt_promotions);
  w.u64(s.adapt_pins);
  w.u64(s.final_optimistic);
}

LpStats decode_lp_stats(bytes::Reader& r) {
  LpStats s;
  s.events_processed = r.u64();
  s.events_committed = r.u64();
  s.rollbacks = r.u64();
  s.events_undone = r.u64();
  s.anti_messages_sent = r.u64();
  s.annihilations = r.u64();
  s.lazy_reuses = r.u64();
  s.lazy_cancels = r.u64();
  s.state_saves = r.u64();
  s.max_history = static_cast<std::size_t>(r.u64());
  s.mode_switches = r.u64();
  s.blocked_polls = r.u64();
  s.checkpoint_undone = r.u64();
  s.queue_ops = r.u64();
  s.adapt_demotions = r.u64();
  s.adapt_promotions = r.u64();
  s.adapt_pins = r.u64();
  s.final_optimistic = r.u64();
  return s;
}

void encode_worker_stats(bytes::Writer& w, const WorkerStats& s) {
  w.f64(s.busy_cost);
  w.f64(s.final_clock);
  w.u64(s.events);
  w.u64(s.messages_sent_remote);
  w.u64(s.messages_sent_local);
  w.u64(s.null_messages);
}

WorkerStats decode_worker_stats(bytes::Reader& r) {
  WorkerStats s;
  s.busy_cost = r.f64();
  s.final_clock = r.f64();
  s.events = r.u64();
  s.messages_sent_remote = r.u64();
  s.messages_sent_local = r.u64();
  s.null_messages = r.u64();
  return s;
}

void encode_transport_counters(bytes::Writer& w, const TransportCounters& c) {
  w.u64(c.data_sent);
  w.u64(c.acks_sent);
  w.u64(c.delivered);
  w.u64(c.dropped);
  w.u64(c.duplicated);
  w.u64(c.reordered);
  w.u64(c.retransmits);
  w.u64(c.dup_discarded);
  w.u64(c.buffered);
}

TransportCounters decode_transport_counters(bytes::Reader& r) {
  TransportCounters c;
  c.data_sent = r.u64();
  c.acks_sent = r.u64();
  c.delivered = r.u64();
  c.dropped = r.u64();
  c.duplicated = r.u64();
  c.reordered = r.u64();
  c.retransmits = r.u64();
  c.dup_discarded = r.u64();
  c.buffered = r.u64();
  return c;
}

/// Sums per-link transport counters across ranks.  Safe without dedup: a
/// link's send-side rows are only ever touched on the source rank and its
/// receive-side rows on the destination rank, so the per-rank structs are
/// disjoint.
void add_transport_counters(TransportCounters& into,
                            const TransportCounters& from) {
  into.data_sent += from.data_sent;
  into.acks_sent += from.acks_sent;
  into.delivered += from.delivered;
  into.dropped += from.dropped;
  into.duplicated += from.duplicated;
  into.reordered += from.reordered;
  into.retransmits += from.retransmits;
  into.dup_discarded += from.dup_discarded;
  into.buffered += from.buffered;
}

/// Full RunStats codec for the kFinal pipe frame: the terminating
/// coordinator is a forked child, so the run's results cross a process
/// boundary exactly once, as bytes.  The final partition rides along (the
/// supervisor's copy predates every recovery).
void encode_run_stats(bytes::Writer& w, const RunStats& st,
                      const Partition& part) {
  w.u64(st.per_lp.size());
  for (const LpStats& s : st.per_lp) encode_lp_stats(w, s);
  w.u64(st.per_worker.size());
  for (const WorkerStats& s : st.per_worker) encode_worker_stats(w, s);
  w.u64(st.gvt_rounds);
  w.u8(st.deadlocked ? 1 : 0);
  w.f64(st.makespan);
  encode_transport_counters(w, st.transport);
  w.u8(st.transport_error ? 1 : 0);
  if (st.transport_error) {
    w.u32(st.transport_error->src_worker);
    w.u32(st.transport_error->dst_worker);
    w.u64(st.transport_error->seq);
    w.u32(st.transport_error->attempts);
    w.str(st.transport_error->message);
  }
  w.u8(st.deadlock_report ? 1 : 0);
  if (st.deadlock_report) {
    w.vt(st.deadlock_report->gvt);
    w.u8(st.deadlock_report->transport_starvation ? 1 : 0);
    w.u64(st.deadlock_report->blocked.size());
    for (const DeadlockReport::LpDiag& d : st.deadlock_report->blocked) {
      w.u32(d.id);
      w.vt(d.next_ts);
      w.vt(d.min_channel_clock);
      w.u64(d.pending);
      w.u8(static_cast<std::uint8_t>(d.mode));
    }
  }
  w.u64(st.checkpoint.checkpoints);
  w.u64(st.checkpoint.crashes);
  w.u64(st.checkpoint.recoveries);
  w.u64(st.checkpoint.lps_restored);
  w.u64(st.checkpoint.disk_bytes);
  w.f64(st.checkpoint.overhead_cost);
  w.u8(st.recovery_error ? 1 : 0);
  if (st.recovery_error) {
    w.u32(st.recovery_error->worker);
    w.u64(st.recovery_error->round);
    w.u32(st.recovery_error->recoveries_used);
    w.str(st.recovery_error->message);
  }
  w.u8(st.config_error ? 1 : 0);
  if (st.config_error) {
    w.str(st.config_error->field);
    w.str(st.config_error->message);
  }
  w.u32(st.final_coordinator);
  w.u32(st.final_epoch);
  std::vector<std::uint8_t> snap;
  bytes::Writer sw(snap);
  obs::encode_snapshot(sw, st.metrics);
  w.blob(snap);
  w.u64(part.size());
  for (const std::uint32_t owner : part) w.u32(owner);
}

bool decode_run_stats(bytes::Reader& r, RunStats* st, Partition* part) {
  const std::uint64_t nlp = r.u64();
  st->per_lp.clear();
  for (std::uint64_t i = 0; r.ok() && i < nlp; ++i)
    st->per_lp.push_back(decode_lp_stats(r));
  const std::uint64_t nw = r.u64();
  st->per_worker.clear();
  for (std::uint64_t i = 0; r.ok() && i < nw; ++i)
    st->per_worker.push_back(decode_worker_stats(r));
  st->gvt_rounds = r.u64();
  st->deadlocked = r.u8() != 0;
  st->makespan = r.f64();
  st->transport = decode_transport_counters(r);
  if (r.u8() != 0) {
    TransportError err;
    err.src_worker = r.u32();
    err.dst_worker = r.u32();
    err.seq = r.u64();
    err.attempts = r.u32();
    err.message = r.str();
    st->transport_error = std::move(err);
  }
  if (r.u8() != 0) {
    DeadlockReport report;
    report.gvt = r.vt();
    report.transport_starvation = r.u8() != 0;
    const std::uint64_t nblocked = r.u64();
    for (std::uint64_t i = 0; r.ok() && i < nblocked; ++i) {
      DeadlockReport::LpDiag d;
      d.id = r.u32();
      d.next_ts = r.vt();
      d.min_channel_clock = r.vt();
      d.pending = static_cast<std::size_t>(r.u64());
      d.mode = static_cast<SyncMode>(r.u8());
      report.blocked.push_back(d);
    }
    st->deadlock_report = std::move(report);
  }
  st->checkpoint.checkpoints = r.u64();
  st->checkpoint.crashes = r.u64();
  st->checkpoint.recoveries = r.u64();
  st->checkpoint.lps_restored = r.u64();
  st->checkpoint.disk_bytes = r.u64();
  st->checkpoint.overhead_cost = r.f64();
  if (r.u8() != 0) {
    RecoveryError err;
    err.worker = r.u32();
    err.round = r.u64();
    err.recoveries_used = r.u32();
    err.message = r.str();
    st->recovery_error = std::move(err);
  }
  if (r.u8() != 0) {
    ConfigError err;
    err.field = r.str();
    err.message = r.str();
    st->config_error = std::move(err);
  }
  st->final_coordinator = r.u32();
  st->final_epoch = r.u32();
  bytes::Reader sr = r.sub();
  if (r.ok()) {
    obs::MetricsSnapshot snap;
    if (obs::decode_snapshot(sr, &snap)) st->metrics = std::move(snap);
  }
  const std::uint64_t npart = r.u64();
  part->clear();
  for (std::uint64_t i = 0; r.ok() && i < npart; ++i) part->push_back(r.u32());
  return r.ok();
}

}  // namespace

/// Seeds the initial event set before any transport exists.  Enqueueing a
/// first event into a fresh LP can neither roll anything back nor commit,
/// so the router must never be exercised.
class DistributedEngine::SeedRouter final : public Router {
 public:
  void route(Event&&) override { assert(!"initial seed routed an event"); }
  void commit(const Event&) override {}
};

class DistributedEngine::DistRouter final : public Router {
 public:
  explicit DistRouter(DistributedEngine& eng) : eng_(eng) {}

  void route(Event&& ev) override {
    const std::uint32_t owner = eng_.partition_[ev.dst];
    if (owner == eng_.rank_) {
      ++eng_.wstats_.messages_sent_local;
      eng_.metrics_.shard(0).inc(obs::Metric::kMessagesLocal);
      eng_.deliver(std::move(ev));
      return;
    }
    if (ev.kind == kNullMsgKind) {
      ++eng_.wstats_.null_messages;
      eng_.metrics_.shard(0).inc(obs::Metric::kNullMessages);
    } else {
      ++eng_.wstats_.messages_sent_remote;
      eng_.metrics_.shard(0).inc(obs::Metric::kMessagesRemote);
    }
    eng_.net_->send(eng_.rank_, owner, std::move(ev), eng_.nowd());
  }

  void commit(const Event& ev) override {
    if (!eng_.want_commits_) return;
    // Every rank buffers: commits validated below GVT reach the supervisor
    // pipe only from the coordinator, and only once a replicated checkpoint
    // covers them (or at termination), so neither a recovery that rewinds
    // the cluster nor a coordinator failover can double-report one.
    eng_.commit_buf_[ev.dst].push_back(ev);
  }

 private:
  DistributedEngine& eng_;
};

DistributedEngine::DistributedEngine(LpGraph& graph, Partition partition,
                                     RunConfig config)
    : graph_(graph), partition_(std::move(partition)), config_(config) {
  config_error_ = validate_distributed(config_);
  if (config_error_) return;
  assert(partition_.size() == graph_.size());
  nranks_ = config_.num_workers;
  // The real wire loses and replays frames across reconnects; only the
  // reliable channel layer can hand the engine an exactly-once stream.
  config_.transport.reliable = true;
  // Sanitizer / loaded-CI legs stretch every wall-clock liveness budget
  // uniformly (VSIM_TIME_SCALE) so slow execution is not mistaken for death.
  const double ts = time_scale();
  if (ts > 1.0) {
    const auto scale = [ts](std::uint32_t v) {
      return static_cast<std::uint32_t>(static_cast<double>(v) * ts);
    };
    config_.net.heartbeat_timeout_ms = scale(config_.net.heartbeat_timeout_ms);
    config_.net.connect_timeout_ms = scale(config_.net.connect_timeout_ms);
    config_.net.reconnect_max_ms = scale(config_.net.reconnect_max_ms);
  }
  replicas_ = std::min<std::uint32_t>(config_.checkpoint.replicas, nranks_);

  lps_.reserve(graph_.size());
  key_.assign(graph_.size(), kTimeInf);
  last_promise_.assign(graph_.size(), kTimeZero);
  for (LpId id = 0; id < graph_.size(); ++id) {
    lps_.emplace_back(&graph_.lp(id), config_.ordering, config_.strategy,
                      initial_mode(config_.configuration, graph_.lp(id)),
                      config_.max_history, config_.use_lookahead,
                      config_.cancellation);
    if (config_.strategy == ConservativeStrategy::kNullMessage) {
      for (LpId src : graph_.fan_in(id)) lps_[id].add_input_channel(src);
    }
  }

  ft_on_ = config_.checkpoint.period > 0 ||
           config_.transport.faults.crash_active();
  retired_.assign(nranks_, false);
  dead_pending_.assign(nranks_, false);
  pids_.assign(nranks_, -1);
  reaped_.assign(nranks_, false);
  votes_.resize(nranks_);
  succ_ack_.assign(nranks_, 0);
  stats_got_.assign(nranks_, false);
  final_lp_stats_.resize(graph_.size());
  final_lp_got_.assign(graph_.size(), false);
  final_worker_stats_.resize(nranks_);
  rank_snapshots_.resize(nranks_);
  rank_snapshot_got_.assign(nranks_, false);
  lp_work_.assign(graph_.size(), 0.0);
  if (ft_on_)
    store_ = CheckpointStore(config_.checkpoint.keep,
                             config_.checkpoint.spill_dir);

  if (config_.net.socket_dir.empty() && !config_.net.tcp) {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    tmpl += "/vsim-net-XXXXXX";
    if (mkdtemp(tmpl.data()) == nullptr) {
      config_error_ = ConfigError{
          "net.socket_dir",
          std::string("cannot create socket directory: ") +
              std::strerror(errno)};
      return;
    }
    config_.net.socket_dir = tmpl;
    own_socket_dir_ = true;
  }
}

DistributedEngine::~DistributedEngine() {
  if (own_socket_dir_ && !is_child_ && !config_.net.socket_dir.empty()) {
    // Best-effort cleanup of the auto-created socket directory (supervisor
    // only: children share the path and must not yank it from each other).
    for (std::uint32_t r = 0; r < nranks_; ++r) {
      const std::string p =
          config_.net.socket_dir + "/rank-" + std::to_string(r) + ".sock";
      ::unlink(p.c_str());
    }
    ::rmdir(config_.net.socket_dir.c_str());
  }
}

double DistributedEngine::nowd() const {
  return static_cast<double>(net::now_ms());
}

VirtualTime DistributedEngine::local_min() const {
  VirtualTime m = kTimeInf;
  for (const LpId lp : owned_) m = std::min(m, key_[lp]);
  return m;
}

void DistributedEngine::note_progress(VirtualTime gvt) {
  store_relaxed(dump_gvt_pt_, static_cast<std::int64_t>(gvt.pt));
  store_relaxed(dump_gvt_lt_, static_cast<std::int64_t>(gvt.lt));
}

void DistributedEngine::note_round(std::uint64_t round) {
  if (round > max_round_seen_) max_round_seen_ = round;
}

std::size_t DistributedEngine::live_ranks() const {
  std::size_t n = 0;
  for (std::uint32_t r = 0; r < nranks_; ++r)
    if (!retired_[r]) ++n;
  return n;
}

std::vector<std::uint32_t> DistributedEngine::successor_set() const {
  // The `replicas_` lowest live ranks.  Deterministic given the retired
  // set, which every rank applies from the same kRecover broadcasts -- so
  // senders and receivers of checkpoint shares agree on it at every round.
  std::vector<std::uint32_t> s;
  for (std::uint32_t r = 0; r < nranks_ && s.size() < replicas_; ++r)
    if (!retired_[r]) s.push_back(r);
  return s;
}

bool DistributedEngine::is_successor(std::uint32_t r) const {
  const std::vector<std::uint32_t> s = successor_set();
  return std::find(s.begin(), s.end(), r) != s.end();
}

void DistributedEngine::refresh_key(LpId lp) { key_[lp] = lps_[lp].next_ts(); }

void DistributedEngine::setup_stack_or_die() {
  node_ = std::make_unique<net::SocketNode>(rank_, nranks_, config_.net);
  node_->set_epoch(epoch_);
  node_->set_handler([this](std::uint32_t src, const net::FrameView& view) {
    on_frame(src, view);
  });
  std::string err;
  if (!node_->start(&err)) {
    if (rank_ != 0) _exit(5);
    config_error_ = ConfigError{"net", "socket setup failed: " + err};
    return;
  }
  wire_ = std::make_unique<net::SocketTransport>(*node_);
  Transport* top = wire_.get();
  if (config_.transport.faults.active()) {
    faulty_ = std::make_unique<FaultyTransport>(*wire_, nranks_,
                                                config_.transport.faults);
    top = faulty_.get();
  }
  net_ = std::make_unique<ChannelStack>(*top, nranks_, config_.transport);
  if (faulty_) net_->attach_faulty(faulty_.get());
  net_->set_deliver(
      [this](std::uint32_t, Event&& ev) { deliver(std::move(ev)); });

  // Wait for the full outbound mesh before any protocol traffic: forcing
  // data into half-connected links would burn the reliable layer's retry
  // budget on a startup race instead of a real outage.
  const std::int64_t deadline = net::now_ms() + cfg_connect_deadline();
  while (!node_->all_links_up() && net::now_ms() < deadline) node_->pump(1);
  if (!node_->all_links_up()) {
    if (rank_ != 0) _exit(5);
    config_error_ =
        ConfigError{"net", "initial mesh connect timed out (" +
                               std::to_string(config_.net.connect_timeout_ms) +
                               " ms)"};
    return;
  }

  // Startup barrier.  A fast rank's own mesh can complete before the
  // initial coordinator's dials do, and every rank holds its seed events
  // locally -- so without a barrier a rank with an early scripted crash
  // could process its way to the crash time and die while rank 0 is still
  // connecting, turning a recoverable mid-run death into a bogus startup
  // timeout.  Rank 0 announces the full mesh with kResume; everyone else
  // holds all protocol work until the announcement arrives.
  if (rank_ == 0) {
    broadcast(net::FrameType::kResume, {});
    return;
  }
  const std::int64_t go_deadline = net::now_ms() + cfg_connect_deadline();
  for (;;) {
    bool go = false;
    for (auto it = ctrl_.begin(); it != ctrl_.end(); ++it) {
      if (it->type == net::FrameType::kResume) {
        ctrl_.erase(it);
        go = true;
        break;
      }
    }
    if (go) break;
    if (net::now_ms() >= go_deadline) _exit(5);
    node_->pump(1);
  }
}

std::int64_t DistributedEngine::cfg_connect_deadline() const {
  return static_cast<std::int64_t>(config_.net.connect_timeout_ms);
}

void DistributedEngine::on_frame(std::uint32_t src, const net::FrameView& v) {
  if (v.type == net::FrameType::kData) {
    bytes::Reader r(v.data, v.size);
    Packet pkt;
    if (!net::decode_packet(r, &pkt) || !r.exhausted()) return;
    net_->on_wire_delivery(std::move(pkt), nowd());
    got_data_ = true;
    return;
  }
  // Control frames are queued for the main loop: the payload must be copied
  // out (FrameView data is transient), and handling them inline could
  // reenter a drain pass that is itself pumping the socket.
  ControlMsg m;
  m.type = v.type;
  m.src = src;
  m.epoch = v.epoch;
  m.payload.assign(v.data, v.data + v.size);
  ctrl_.push_back(std::move(m));
}

std::size_t DistributedEngine::pump_io(int timeout_ms) {
  if (!node_) return 0;
  const std::size_t n = node_->pump(timeout_ms);
  if (got_data_) {
    got_data_ = false;
    net_->flush_acks(rank_, nowd());
  }
  net_->poll(rank_, nowd());
  return n;
}

void DistributedEngine::deliver(Event ev) {
  const LpId dst = ev.dst;
  assert(partition_[dst] == rank_);
  const bool is_null = ev.kind == kNullMsgKind;
  const std::uint64_t rb0 = lps_[dst].stats().rollbacks;
  const std::uint64_t un0 = lps_[dst].stats().events_undone;
  DistRouter router(*this);
  lps_[dst].enqueue(std::move(ev), router);
  if (lps_[dst].stats().rollbacks != rb0) {
    metrics_.shard(0).observe(
        obs::Hist::kRollbackDepth,
        static_cast<double>(lps_[dst].stats().events_undone - un0));
  }
  refresh_key(dst);
  if (is_null && config_.strategy == ConservativeStrategy::kNullMessage)
    send_null_messages_for(dst);
}

void DistributedEngine::send_null_messages_for(LpId lp) {
  const VirtualTime promise = lps_[lp].null_promise();
  if (!(promise > last_promise_[lp])) return;
  last_promise_[lp] = promise;
  DistRouter router(*this);
  for (LpId dst : graph_.fan_out(lp)) {
    Event n;
    n.ts = promise;
    n.src = lp;
    n.dst = dst;
    n.kind = kNullMsgKind;
    router.route(std::move(n));
  }
}

bool DistributedEngine::try_process_one() {
  // Cursor-based selection scan over the owned LPs in (next_ts, lp) order;
  // same scheduler as the threaded engine's hot path.
  VirtualTime cursor_ts = kTimeZero;
  LpId cursor_lp = 0;
  bool have_cursor = false;
  for (;;) {
    VirtualTime ts = kTimeInf;
    LpId lp = 0;
    bool found = false;
    for (const LpId cand : owned_) {
      const VirtualTime k = key_[cand];
      if (k == kTimeInf) continue;
      if (have_cursor &&
          (k < cursor_ts || (k == cursor_ts && cand <= cursor_lp)))
        continue;
      if (!found || k < ts || (k == ts && cand < lp)) {
        ts = k;
        lp = cand;
        found = true;
      }
    }
    if (!found) break;
    if (ts.pt > config_.until) break;
    cursor_ts = ts;
    cursor_lp = lp;
    have_cursor = true;
    const Eligibility e = lps_[lp].peek(safe_bound_, config_.until);
    if (e == Eligibility::kBlocked) {
      lps_[lp].note_blocked();
      continue;
    }
    if (e == Eligibility::kIdle) continue;
    DistRouter router(*this);
    wstats_.busy_cost += lps_[lp].process_next(router);
    ++wstats_.events;
    ++events_since_round_;
    store_relaxed(dump_events_, wstats_.events);
    metrics_.shard(0).inc(obs::Metric::kEventsProcessed);
    refresh_key(lp);
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(lp);
    return true;
  }
  return false;
}

bool DistributedEngine::maybe_crash() const {
  // Exact match on the cumulative event count: monotone, so a crash point
  // replayed after recovery does not re-fire.  (crash_rate is rejected for
  // distributed runs by validate_distributed.)
  for (const WorkerCrash& c : config_.transport.faults.crashes)
    if (c.worker == rank_ && c.after_events == wstats_.events) return true;
  return false;
}

void DistributedEngine::capture_fault_ring(std::uint64_t round) {
  if (!faulty_) return;
  fault_ring_[round] = faulty_->capture_links();
  while (fault_ring_.size() > kFaultRingKeep) {
    // Trim oldest, but never the baseline: the rewind of last resort.
    auto it = fault_ring_.begin();
    if (it->first == baseline_round_) ++it;
    if (it == fault_ring_.end()) break;
    fault_ring_.erase(it);
  }
}

void DistributedEngine::apply_restore(const Checkpoint& ck) {
  for (LpId id = 0; id < lps_.size(); ++id) {
    lps_[id].restore_from(ck.lps[id]);
    key_[id] = lps_[id].next_ts();
  }
  last_promise_ = ck.last_promise;
  // The channel layer resets outright -- fresh cursors, nothing in flight.
  // Epoch filtering in the socket node keeps the abandoned timeline's data
  // frames from ever reaching the reset stack.
  std::vector<LinkCheckpoint> fresh(
      static_cast<std::size_t>(nranks_) * nranks_);
  net_->restore_links(fresh);
  if (faulty_) {
    const auto it = fault_ring_.find(ck.round);
    if (it != fault_ring_.end()) faulty_->restore_links(it->second);
  }
  if (want_commits_)
    for (auto& buf : commit_buf_) buf.clear();
  // Everything belonging to rounds past the restore point is from the
  // abandoned timeline: partial assemblies, retained commit batches, and
  // (crucially) spilled snapshots a later succession could restore from.
  // drop_above never touches the ring's maximum round, so a `store_
  // .latest()` pointer the caller holds for THIS restore stays valid.
  pending_ck_.clear();
  unreleased_.erase(unreleased_.upper_bound(ck.round), unreleased_.end());
  retained_batches_.erase(retained_batches_.upper_bound(ck.round),
                          retained_batches_.end());
  if (ft_on_) store_.drop_above(ck.round);
  owned_.clear();
  for (LpId id = 0; id < graph_.size(); ++id)
    if (partition_[id] == rank_) owned_.push_back(id);
  safe_bound_ = ck.gvt;
  events_since_round_ = 0;
  in_round_ = false;
}

void DistributedEngine::encode_lp_share(bytes::Writer& w, LpId id,
                                        const LpCheckpoint& lpck,
                                        double work) {
  w.u32(id);
  w.f64(work);
  w.vt(last_promise_[id]);
  std::vector<std::uint8_t> tmp;
  bool has_state = false;
  if (lpck.state) {
    bytes::Writer sw(tmp);
    has_state = graph_.lp(id).encode_state(*lpck.state, sw);
    if (!has_state) tmp.clear();
  }
  w.u8(has_state ? 1 : 0);
  w.blob(tmp);
  tmp.clear();
  bytes::Writer pw(tmp);
  encode_lp_checkpoint(pw, lpck);
  w.blob(tmp);
}

bool DistributedEngine::decode_lp_share(bytes::Reader& r, LpId* id,
                                        LpCheckpoint* out, double* work,
                                        VirtualTime* promise,
                                        std::vector<std::uint8_t>* state_bytes) {
  *id = r.u32();
  *work = r.f64();
  *promise = r.vt();
  const bool has_state = r.u8() != 0;
  std::vector<std::uint8_t> sbytes = r.blob();
  bytes::Reader pr = r.sub();
  if (!r.ok() || *id >= graph_.size()) return false;
  LpCheckpoint ck;
  if (!decode_lp_checkpoint(pr, &ck) || !pr.exhausted()) return false;
  if (has_state) {
    bytes::Reader sr(sbytes.data(), sbytes.size());
    ck.state = graph_.lp(*id).decode_state(sr);
    if (!ck.state) return false;
  }
  if (state_bytes != nullptr) {
    if (has_state)
      *state_bytes = std::move(sbytes);
    else
      state_bytes->clear();
  }
  *out = std::move(ck);
  return true;
}

// ---------------------------------------------------------------------------
// run(): seed, resume/baseline, fork every rank, then supervise.
// ---------------------------------------------------------------------------

RunStats DistributedEngine::run() {
  RunStats out;
  if (config_error_) {
    out.config_error = config_error_;
    return out;
  }
  want_commits_ = static_cast<bool>(hook_);
  if (want_commits_ || ft_on_) commit_buf_.resize(graph_.size());

  {
    SeedRouter seed;
    for (const Event& ev : graph_.initial_events()) {
      Event copy = ev;
      lps_[ev.dst].enqueue(std::move(copy), seed);
      refresh_key(ev.dst);
    }
  }

  // Restart path: revive the cluster from the newest durable snapshot in
  // the spill dir, skipping torn/corrupt files.  A dir with no valid
  // snapshot is a cold start from the seed events, not an error.
  std::uint64_t resume_round = 0;
  if (ft_on_ && config_.checkpoint.resume) {
    std::uint64_t skipped = 0;
    std::optional<Checkpoint> ck =
        CheckpointStore::load_newest_valid(config_.checkpoint.spill_dir,
                                           &skipped);
    (void)skipped;
    if (ck) {
      if (ck->lps.size() != graph_.size() ||
          ck->last_promise.size() != graph_.size() ||
          ck->state_blobs.size() != graph_.size()) {
        out.config_error = ConfigError{
            "checkpoint.resume",
            "spilled snapshot does not match this LP graph"};
        config_error_ = out.config_error;
        return out;
      }
      for (LpId id = 0; id < graph_.size(); ++id) {
        if (ck->state_blobs[id].empty()) continue;
        bytes::Reader sr(ck->state_blobs[id].data(),
                         ck->state_blobs[id].size());
        ck->lps[id].state = graph_.lp(id).decode_state(sr);
        if (!ck->lps[id].state) {
          out.config_error = ConfigError{
              "checkpoint.resume",
              "LP '" + graph_.lp(id).name() +
                  "': spilled state failed to decode"};
          config_error_ = out.config_error;
          return out;
        }
      }
      for (LpId id = 0; id < graph_.size(); ++id) {
        lps_[id].restore_from(ck->lps[id]);
        key_[id] = lps_[id].next_ts();
      }
      last_promise_ = ck->last_promise;
      safe_bound_ = ck->gvt;
      resume_round = ck->round;
    }
  }

  if (ft_on_) {
    // Baseline checkpoint, taken before the fork: every rank inherits the
    // fault-ring entry and the store copy, so recovery always has a line to
    // rewind to even when the first kill precedes the first periodic
    // checkpoint.  A throwaway stack stands in for the per-rank ones (a
    // fresh ChannelStack and FaultyTransport have exactly the cursors every
    // rank starts from after the fork).
    struct NullWire final : Transport {
      void submit(Packet&&, double) override {}
    } null_wire;
    std::unique_ptr<FaultyTransport> probe_faulty;
    if (config_.transport.faults.active())
      probe_faulty = std::make_unique<FaultyTransport>(
          null_wire, nranks_, config_.transport.faults);
    const ChannelStack probe_net(null_wire, nranks_, config_.transport);
    Checkpoint ck0 = capture_checkpoint(resume_round, safe_bound_, lps_,
                                        last_promise_, probe_net,
                                        probe_faulty.get());
    // Probe the byte codecs up front: recovery must be able to ship every
    // LP's state across a process boundary, and failing at the first kill
    // would be a far worse place to find out.  The probe output doubles as
    // the baseline's state blobs, making the spilled file self-contained.
    ck0.state_blobs.assign(graph_.size(), {});
    for (LpId id = 0; id < graph_.size(); ++id) {
      if (!ck0.lps[id].state) continue;  // can_save_state()==false is fine
      std::vector<std::uint8_t> tmp;
      bytes::Writer w(tmp);
      if (!graph_.lp(id).encode_state(*ck0.lps[id].state, w)) {
        out.config_error = ConfigError{
            "graph", "LP '" + graph_.lp(id).name() +
                         "' has state but no byte codec "
                         "(LogicalProcess::encode_state); distributed "
                         "fault tolerance cannot ship it between processes"};
        config_error_ = out.config_error;
        return out;
      }
      ck0.state_blobs[id] = std::move(tmp);
    }
    if (probe_faulty) fault_ring_[resume_round] = probe_faulty->capture_links();
    baseline_round_ = resume_round;
    gvt_rounds_ = max_round_seen_ = resume_round;
    last_gvt_ = last_ckpt_gvt_ = safe_bound_;
    store_.put(std::move(ck0));
    ++ckstats_.checkpoints;
  }

  // Fork ALL ranks 0..P-1; this process becomes the supervisor.  Children
  // never return from run(): they _exit, so no test-harness state unwinds
  // twice.  Result pipes are created first so every child can close the
  // ends it does not own.
  std::fflush(nullptr);
  pipe_r_.assign(nranks_, -1);
  std::vector<int> pipe_w(nranks_, -1);
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      for (std::uint32_t k = 0; k < r; ++k) {
        ::close(pipe_r_[k]);
        ::close(pipe_w[k]);
      }
      pipe_r_.assign(nranks_, -1);
      out.config_error = ConfigError{
          "net", std::string("pipe failed: ") + std::strerror(errno)};
      return out;
    }
    pipe_r_[r] = fds[0];
    pipe_w[r] = fds[1];
  }
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (std::uint32_t k = 0; k < r; ++k)
        if (pids_[k] > 0) ::kill(pids_[k], SIGKILL);
      reap_children(true);
      for (std::uint32_t k = 0; k < nranks_; ++k) {
        ::close(pipe_r_[k]);
        ::close(pipe_w[k]);
      }
      pipe_r_.assign(nranks_, -1);
      out.config_error = ConfigError{
          "net", std::string("fork failed: ") + std::strerror(errno)};
      return out;
    }
    if (pid == 0) {
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      if (::getppid() == 1) _exit(4);  // supervisor already gone
      std::signal(SIGPIPE, SIG_IGN);   // a dead supervisor must not kill us
      rank_ = r;
      is_child_ = true;
      pipe_w_ = pipe_w[r];
      for (std::uint32_t k = 0; k < nranks_; ++k) {
        ::close(pipe_r_[k]);
        if (k != r) ::close(pipe_w[k]);
      }
      pipe_r_.assign(nranks_, -1);
      child_main();  // noreturn
    }
    pids_[r] = static_cast<int>(pid);
  }
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    ::close(pipe_w[r]);
    ::fcntl(pipe_r_[r], F_SETFL, O_NONBLOCK);
  }
  supervisor_main(out);
  reap_children(true);
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (pipe_r_[r] >= 0) ::close(pipe_r_[r]);
    pipe_r_[r] = -1;
  }
  return out;
}

void DistributedEngine::reap_children(bool force) {
  if (is_child_) return;
  const std::int64_t deadline = net::now_ms() + 2000;
  for (;;) {
    bool all = true;
    for (std::uint32_t r = 0; r < nranks_; ++r) {
      if (pids_[r] <= 0 || reaped_[r]) continue;
      int status = 0;
      const pid_t got = ::waitpid(pids_[r], &status, WNOHANG);
      if (got == pids_[r] || (got < 0 && errno == ECHILD)) {
        reaped_[r] = true;
      } else {
        all = false;
      }
    }
    if (all || !force) return;
    if (net::now_ms() >= deadline) {
      for (std::uint32_t r = 0; r < nranks_; ++r) {
        if (pids_[r] <= 0 || reaped_[r]) continue;
        ::kill(pids_[r], SIGKILL);
        ::waitpid(pids_[r], nullptr, 0);
        reaped_[r] = true;
      }
      return;
    }
    ::usleep(1000);
  }
}

// ---------------------------------------------------------------------------
// Unified per-rank driver.
// ---------------------------------------------------------------------------

void DistributedEngine::child_main() {
  setup_stack_or_die();
  if (config_error_) {
    // Only rank 0 can get here (other ranks _exit inside setup); it owns
    // reporting startup failure through its pipe.
    RunStats rs;
    rs.config_error = config_error_;
    pipe_final(rs);
    _exit(5);
  }
  owned_.clear();
  for (LpId id = 0; id < graph_.size(); ++id)
    if (partition_[id] == rank_) owned_.push_back(id);
  main_loop();
  // Only the final coordinator falls out of main_loop (workers _exit on
  // their stop/abort paths).
  RunStats rs;
  coordinator_finish(rs);
  pipe_final(rs);
  _exit(failed_ ? 2 : 0);
}

void DistributedEngine::main_loop() {
  while (!stopping_) {
    const bool busy = in_round_ || recovering_;
    const std::size_t io = pump_io(busy || idle_spins_ < 2 ? 0 : 1);

    while (!ctrl_.empty()) {
      ControlMsg m = std::move(ctrl_.front());
      ctrl_.pop_front();
      handle_ctrl(m);
    }
    if (stopping_) break;

    if (rank_ == coord_) {
      if (check_deaths()) {
        if (!coordinator_recover()) break;
        continue;
      }
    } else {
      if (monitor_cluster()) continue;  // just promoted: restart as coord
      if (auto err = net_->error()) rank_abort_transport(*err);
    }

    if (in_round_ || recovering_) continue;

    bool processed = false;
    for (std::uint32_t slice = 0; slice < kEventSlice; ++slice) {
      if (!try_process_one()) break;
      processed = true;
      if (ft_on_ && maybe_crash()) {
        // Crash-stop: vanish without flushing anything, as SIGKILL would.
        ::raise(SIGKILL);
        _exit(9);
      }
      if (!ctrl_.empty()) break;
    }
    if (processed || io > 0) {
      idle_spins_ = 0;
    } else {
      ++idle_spins_;
    }

    if (rank_ == coord_) {
      // Time-based fallback: even if activity accounting keeps the spin
      // counter low, a round every ~50ms guarantees GVT (and termination
      // detection) always advances on a quiet cluster.
      const bool want_round = round_req_ || net_->error().has_value() ||
                              remote_transport_error_.has_value() ||
                              events_since_round_ >= config_.gvt_interval ||
                              idle_spins_ >= kIdleSpinRound ||
                              net::now_ms() >= last_round_ms_ + 50;
      if (want_round) {
        idle_spins_ = 0;
        const bool keep_going = coordinator_round();
        last_round_ms_ = net::now_ms();
        if (!keep_going) break;
      }
    } else if (!round_req_sent_ &&
               (events_since_round_ >= config_.gvt_interval ||
                idle_spins_ == kIdleSpinRound)) {
      // Ask the coordinator for a round; once per round keeps the control
      // plane quiet (the coordinator has its own interval trigger too).
      round_req_sent_ = true;
      node_->send(coord_, net::FrameType::kRoundReq, {});
    }
  }
}

void DistributedEngine::handle_ctrl(const ControlMsg& m) {
  if (m.epoch > max_epoch_seen_) max_epoch_seen_ = m.epoch;
  if (rank_ == coord_)
    coordinator_handle(m);
  else
    rank_handle(m);
}

bool DistributedEngine::monitor_cluster() {
  // Deterministic succession: this rank takes over exactly when the
  // coordinator AND every live rank below it have gone silent -- so for a
  // given surviving set there is exactly one rank whose condition can ever
  // become true, and two survivors can never promote concurrently (the
  // lower one is, by being alive, the reason the upper one holds back).
  const std::int64_t now = net::now_ms();
  const auto silent = [&](std::uint32_t r) {
    return node_->link_failed(r) ||
           node_->last_heard_ms(r) +
                   2 * static_cast<std::int64_t>(
                           config_.net.heartbeat_timeout_ms) <
               now;
  };
  if (!silent(coord_)) return false;
  for (std::uint32_t r = 0; r < rank_; ++r)
    if (!retired_[r] && !silent(r)) return false;
  if (ft_on_ && !is_successor(rank_)) abort_replica_lost();
  // Without fault tolerance the lowest survivor still promotes -- not to
  // recover, but so coordinator_recover can fail the run with the same
  // structured "died without fault tolerance" error a worker death gets.
  promote_self();
  return true;
}

void DistributedEngine::promote_self() {
  for (std::uint32_t r = 0; r < rank_; ++r)
    if (!retired_[r]) dead_pending_[r] = true;
  coord_ = rank_;
  // Term-level epoch bump: past everything we have ever seen, offset by our
  // rank so even two theoretically-concurrent promotions (which succession
  // already prevents) could not mint the same epoch.
  const std::uint32_t term =
      (std::max(epoch_, max_epoch_seen_) >> kEpochSeqBits) + 1 + rank_;
  epoch_ = term << kEpochSeqBits;
  if (epoch_ > max_epoch_seen_) max_epoch_seen_ = epoch_;
  node_->set_epoch(epoch_);
  // Rounds stay globally monotone across the takeover: never hand out a
  // round number at or below one the old regime might have released.
  gvt_rounds_ = std::max(gvt_rounds_, max_round_seen_);
  in_round_ = false;
  recovering_ = false;
  round_req_sent_ = false;
  collecting_ = false;
  round_req_ = false;
  // Output-commit handoff: re-emit every batch this successor retained.
  // The supervisor dedups by round, so batches the old coordinator already
  // released are dropped there and batches it never released emit exactly
  // once -- the committed trace is seamless across the failover.
  for (auto& [round, batch] : retained_batches_)
    pipe_commit_batch(round, batch, false);
  retained_batches_.clear();
  succ_ack_.assign(nranks_, 0);
  last_round_ms_ = net::now_ms();
  last_total_events_ = ~0ull;  // first post-promotion round never stalls
  stall_rounds_ = 0;
  rounds_since_ckpt_ = 0;
  last_gvt_ = last_ckpt_gvt_ = safe_bound_;
}

void DistributedEngine::abort_replica_lost() {
  // The coordinator and every rank holding a checkpoint replica are gone:
  // nothing this rank could restore would be consistent with the commits
  // already released, so a structured failure beats a silent hang.
  fail_run(coord_,
           "coordinator and every checkpoint replica died; no surviving "
           "rank holds a snapshot to take over from");
  RunStats rs;
  coordinator_finish(rs);
  pipe_final(rs);
  _exit(2);
}

// ---------------------------------------------------------------------------
// Worker duties (rank_ != coord_).
// ---------------------------------------------------------------------------

void DistributedEngine::rank_handle(const ControlMsg& m) {
  using net::FrameType;
  if (m.type == FrameType::kAbort) _exit(2);
  if (m.type == FrameType::kRecover) {
    rank_apply_recover(m);
    return;
  }
  if (m.epoch != epoch_) return;  // stale control from before a recovery
  switch (m.type) {
    case FrameType::kDrain: {
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint64_t round = r.u64();
      const std::uint32_t pass = r.u32();
      if (!r.ok()) return;
      note_round(round);
      in_round_ = true;
      rank_drain_pass(round, pass);
      break;
    }
    case FrameType::kGvtSet:
      rank_apply_gvt(m);
      break;
    case FrameType::kResume:
      recovering_ = false;
      in_round_ = false;
      break;
    case FrameType::kCkptData:
      // Successors assemble every rank's share, exactly as the coordinator
      // does; that replica is what makes the coordinator's death survivable.
      if (ft_on_ && is_successor(rank_)) ckpt_ingest(m.src, m);
      break;
    default:
      break;  // kHello/kHeartbeat handled below us; rest is coordinator-only
  }
}

void DistributedEngine::rank_drain_pass(std::uint64_t round,
                                        std::uint32_t pass) {
  // Force everything we hold onto the wire -- once per pass, and only when
  // every link is actually up: each force-retransmission bills a retry
  // attempt, and forcing into a reconnecting link would spend the whole
  // budget on one outage.  With a link down, the pass simply votes
  // non-quiescent and the coordinator keeps draining.
  if (node_->all_links_up())
    net_->flush(rank_, nowd());
  else
    net_->poll(rank_, nowd());
  const std::int64_t deadline = net::now_ms() + kDrainFlushBudgetMs;
  while (!node_->all_flushed() && net::now_ms() < deadline) pump_io(1);
  pump_io(0);

  const bool err = net_->error().has_value();
  const net::NodeCounters& nc = node_->counters();
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u64(round);
  w.u32(pass);
  w.u8(err || (net_->quiescent() && node_->all_flushed()) ? 1 : 0);
  w.u8(err ? 1 : 0);
  w.u64(nc.data_frames_sent + nc.data_frames_recv);
  w.vt(local_min());
  w.u64(wstats_.events);
  if (pass == 0) {
    // Piggyback a metrics snapshot on the first pass of every round: the
    // coordinator keeps the latest per rank, so observability survives the
    // rank dying later.
    metrics_.merge();
    std::vector<std::uint8_t> snap;
    bytes::Writer sw(snap);
    obs::encode_snapshot(sw, metrics_.merged());
    w.u8(1);
    w.blob(snap);
  } else {
    w.u8(0);
  }
  node_->send(coord_, net::FrameType::kDrainAck, p);
}

void DistributedEngine::rank_apply_gvt(const ControlMsg& m) {
  bytes::Reader r(m.payload.data(), m.payload.size());
  const std::uint64_t round = r.u64();
  const VirtualTime gvt = r.vt();
  const bool stop = r.u8() != 0;
  const bool ckpt_due = r.u8() != 0;
  if (!r.ok()) return;
  safe_bound_ = gvt;
  note_progress(gvt);
  note_round(round);
  store_relaxed(dump_rounds_, round);
  if (stop) rank_finish(false);
  apply_gvt_local(round, gvt, ckpt_due);
}

void DistributedEngine::rank_apply_recover(const ControlMsg& m) {
  bytes::Reader r(m.payload.data(), m.payload.size());
  const std::uint32_t new_epoch = r.u32();
  const std::uint32_t recov = r.u32();
  if (!r.ok() || new_epoch <= epoch_) return;  // replay of an older recovery
  Checkpoint ck;
  ck.round = r.u64();
  ck.gvt = r.vt();
  const std::uint64_t ndead = r.u64();
  std::set<std::uint32_t> dead;
  for (std::uint64_t i = 0; r.ok() && i < ndead; ++i) dead.insert(r.u32());
  if (!r.ok()) return;
  // Plausibility fence on the sender: a legitimate recovery is only ever
  // led by the lowest live rank, and never by or over a rank it declares
  // dead.  A hostile or confused frame that fails this is dropped whole.
  if (dead.count(m.src) != 0) return;
  for (std::uint32_t q = 0; q < m.src; ++q)
    if (!retired_[q] && dead.count(q) == 0) return;
  if (dead.count(rank_) != 0) _exit(3);  // we were declared dead: step down
  note_round(ck.round);
  for (const std::uint32_t d : dead) {
    if (d >= nranks_ || retired_[d]) continue;
    retired_[d] = true;
    node_->retire_peer(d);
    ++ckstats_.crashes;
  }
  recoveries_ = std::max(recoveries_, recov);
  ++ckstats_.recoveries;
  const std::uint64_t npart = r.u64();
  if (!r.ok() || npart != graph_.size()) _exit(6);
  Partition part(graph_.size());
  for (LpId id = 0; id < graph_.size(); ++id) part[id] = r.u32();
  const std::uint64_t nlp = r.u64();
  if (!r.ok() || nlp != graph_.size()) _exit(6);
  ck.lps.resize(graph_.size());
  ck.last_promise.assign(graph_.size(), kTimeZero);
  ck.state_blobs.assign(graph_.size(), {});
  for (LpId id = 0; id < graph_.size(); ++id) {
    LpId got = 0;
    double work = 0.0;
    VirtualTime promise;
    LpCheckpoint lpck;
    std::vector<std::uint8_t> sbytes;
    if (!decode_lp_share(r, &got, &lpck, &work, &promise, &sbytes) ||
        got != id)
      _exit(6);
    ck.lps[id] = std::move(lpck);
    ck.last_promise[id] = promise;
    ck.state_blobs[id] = std::move(sbytes);
  }
  if (!r.ok()) _exit(6);

  epoch_ = new_epoch;
  if (epoch_ > max_epoch_seen_) max_epoch_seen_ = epoch_;
  node_->set_epoch(epoch_);
  coord_ = m.src;
  partition_ = std::move(part);
  apply_restore(ck);
  ckstats_.lps_restored += lps_.size();
  // A successor re-stores the restore point under the new regime, so the
  // coordinator's release rule ("every live successor holds round N") stays
  // true across the recovery for new members of the successor set.
  if (ft_on_ && is_successor(rank_) &&
      !(store_.latest() != nullptr && store_.latest()->round == ck.round)) {
    ck.links.assign(static_cast<std::size_t>(nranks_) * nranks_,
                    LinkCheckpoint{});
    ck.fault_links.clear();
    store_.put(std::move(ck));
    ++ckstats_.checkpoints;
  }
  recovering_ = true;
  round_req_sent_ = false;
  store_relaxed(dump_recoveries_, static_cast<std::uint64_t>(recoveries_));
  node_->send(coord_, net::FrameType::kRecoverDone, {});
}

void DistributedEngine::rank_send_stats() {
  metrics_.merge();  // fold per-event counters before attaching node totals
  auto& sh = metrics_.shard(0);
  const net::NodeCounters& nc = node_->counters();
  sh.inc(obs::Metric::kNetFramesSent, nc.frames_sent);
  sh.inc(obs::Metric::kNetFramesRecv, nc.frames_recv);
  sh.inc(obs::Metric::kNetHeartbeats, nc.heartbeats_sent);
  sh.inc(obs::Metric::kNetReconnects, nc.reconnects);
  sh.inc(obs::Metric::kNetDisconnects, nc.disconnects);
  sh.inc(obs::Metric::kNetCrcErrors, nc.crc_errors);
  metrics_.merge();

  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u64(owned_.size());
  for (const LpId lp : owned_) {
    w.u32(lp);
    encode_lp_stats(w, lps_[lp].stats());
  }
  encode_worker_stats(w, wstats_);
  encode_transport_counters(w, net_->counters());
  // Blocked-LP diagnostics for the coordinator's deadlock report: its own
  // copies of our LPs stopped updating at the fork.
  std::uint64_t ndiag = 0;
  for (const LpId lp : owned_)
    if (lps_[lp].has_pending()) ++ndiag;
  w.u64(ndiag);
  for (const LpId lp : owned_) {
    if (!lps_[lp].has_pending()) continue;
    w.u32(lp);
    w.vt(lps_[lp].next_ts());
    w.vt(lps_[lp].min_channel_clock());
    w.u64(lps_[lp].pending_count());
    w.u8(static_cast<std::uint8_t>(lps_[lp].mode()));
  }
  std::uint64_t ncommits = 0;
  if (want_commits_)
    for (const LpId lp : owned_) ncommits += commit_buf_[lp].size();
  w.u64(ncommits);
  if (want_commits_) {
    for (const LpId lp : owned_) {
      for (const Event& ev : commit_buf_[lp]) encode_event(w, ev);
      commit_buf_[lp].clear();
    }
  }
  std::vector<std::uint8_t> snap;
  bytes::Writer sw(snap);
  obs::encode_snapshot(sw, metrics_.merged());
  w.blob(snap);
  node_->send(coord_, net::FrameType::kStats, p);
}

void DistributedEngine::rank_finish(bool failed) {
  if (!failed) {
    DistRouter router(*this);
    for (const LpId lp : owned_) lps_[lp].fossil_collect(kTimeInf, router);
  }
  rank_send_stats();
  const std::int64_t deadline = net::now_ms() + 1000;
  while (!node_->all_flushed() && net::now_ms() < deadline) pump_io(1);
  _exit(failed ? 2 : 0);
}

void DistributedEngine::rank_abort_transport(const TransportError& err) {
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u8(1);  // kind: transport-error report
  w.u32(err.src_worker);
  w.u32(err.dst_worker);
  w.u64(err.seq);
  w.u32(err.attempts);
  w.str(err.message);
  node_->send(coord_, net::FrameType::kAbort, p);
  const std::int64_t deadline = net::now_ms() + 1000;
  while (!node_->all_flushed() && net::now_ms() < deadline) pump_io(1);
  _exit(2);
}

// ---------------------------------------------------------------------------
// Coordinator duties (rank_ == coord_; initially rank 0, after a failover
// whichever successor promoted itself).
// ---------------------------------------------------------------------------

void DistributedEngine::broadcast(net::FrameType type,
                                  const std::vector<std::uint8_t>& p) {
  for (std::uint32_t r = 0; r < nranks_; ++r)
    if (r != rank_ && !retired_[r]) node_->send(r, type, p);
}

void DistributedEngine::coordinator_handle(const ControlMsg& m) {
  using net::FrameType;
  switch (m.type) {
    case FrameType::kRoundReq:
      if (m.epoch == epoch_) round_req_ = true;
      break;
    case FrameType::kDrainAck: {
      if (m.epoch != epoch_ || m.src >= nranks_ || retired_[m.src]) break;
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint64_t round = r.u64();
      const std::uint32_t pass = r.u32();
      DrainVote v;
      v.quiescent = r.u8() != 0;
      v.error = r.u8() != 0;
      v.activity = r.u64();
      v.local_min = r.vt();
      v.events = r.u64();
      const bool has_snap = r.u8() != 0;
      if (has_snap) {
        bytes::Reader sr = r.sub();
        obs::MetricsSnapshot snap;
        if (r.ok() && obs::decode_snapshot(sr, &snap)) {
          rank_snapshots_[m.src] = std::move(snap);
          rank_snapshot_got_[m.src] = true;
        }
      }
      if (!r.ok()) break;
      if (round == gvt_rounds_ && pass == cur_pass_ && collecting_) {
        v.got = true;
        votes_[m.src] = v;
      }
      break;
    }
    case FrameType::kCkptData:
      if (m.epoch == epoch_) ckpt_ingest(m.src, m);
      break;
    case FrameType::kCkptAck: {
      if (m.epoch != epoch_ || m.src >= nranks_ || retired_[m.src]) break;
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint64_t round = r.u64();
      if (!r.ok()) break;
      if (round > succ_ack_[m.src]) succ_ack_[m.src] = round;
      try_release_batches();
      break;
    }
    case FrameType::kRecover:
      // A successor believed us dead and promoted itself.  Its term-level
      // epoch outranks ours: step down immediately rather than run a
      // split-brain cluster (our commits past its restore point were never
      // released -- the release rule required that successor's ack).
      if (m.epoch > epoch_) _exit(3);
      break;
    case FrameType::kRecoverDone:
      if (m.epoch == epoch_ && m.src < nranks_) recover_done_[m.src] = true;
      break;
    case FrameType::kLinkDown: {
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint32_t peer = r.u32();
      if (r.ok() && peer != rank_ && peer < nranks_ && !retired_[peer])
        dead_pending_[peer] = true;
      break;
    }
    case FrameType::kStats: {
      if (m.src >= nranks_ || stats_got_[m.src]) break;
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint64_t nlps = r.u64();
      std::vector<std::pair<LpId, LpStats>> lp_stats;
      for (std::uint64_t i = 0; r.ok() && i < nlps; ++i) {
        const LpId id = r.u32();
        const LpStats s = decode_lp_stats(r);
        if (id < graph_.size()) lp_stats.emplace_back(id, s);
      }
      const WorkerStats ws = decode_worker_stats(r);
      const TransportCounters tc = decode_transport_counters(r);
      const std::uint64_t ndiag = r.u64();
      std::vector<DeadlockReport::LpDiag> diag;
      for (std::uint64_t i = 0; r.ok() && i < ndiag; ++i) {
        DeadlockReport::LpDiag d;
        d.id = r.u32();
        d.next_ts = r.vt();
        d.min_channel_clock = r.vt();
        d.pending = static_cast<std::size_t>(r.u64());
        d.mode = static_cast<SyncMode>(r.u8());
        diag.push_back(d);
      }
      const std::uint64_t ncommits = r.u64();
      std::vector<Event> commits;
      commits.reserve(static_cast<std::size_t>(ncommits));
      for (std::uint64_t i = 0; r.ok() && i < ncommits; ++i)
        commits.push_back(decode_event(r));
      bytes::Reader sr = r.sub();
      obs::MetricsSnapshot snap;
      const bool snap_ok = r.ok() && obs::decode_snapshot(sr, &snap);
      if (!r.ok()) break;
      stats_got_[m.src] = true;
      for (auto& [id, s] : lp_stats) {
        final_lp_stats_[id] = s;
        final_lp_got_[id] = true;
      }
      final_worker_stats_[m.src] = ws;
      add_transport_counters(remote_transport_, tc);
      remote_diag_.insert(remote_diag_.end(), diag.begin(), diag.end());
      if (want_commits_ && !commits.empty())
        final_commits_.push_back(std::move(commits));
      if (snap_ok) {
        rank_snapshots_[m.src] = std::move(snap);
        rank_snapshot_got_[m.src] = true;
      }
      break;
    }
    case FrameType::kAbort: {
      bytes::Reader r(m.payload.data(), m.payload.size());
      const std::uint8_t kind = r.u8();
      if (kind == 1) {
        TransportError err;
        err.src_worker = r.u32();
        err.dst_worker = r.u32();
        err.seq = r.u64();
        err.attempts = r.u32();
        err.message = r.str();
        if (r.ok() && !remote_transport_error_)
          remote_transport_error_ = std::move(err);
      }
      break;
    }
    default:
      break;
  }
}

DistributedEngine::Wait DistributedEngine::coordinator_collect_votes(
    std::uint64_t round, std::uint32_t pass) {
  (void)round;
  (void)pass;
  for (;;) {
    bool all = true;
    for (std::uint32_t r = 0; r < nranks_; ++r)
      if (!retired_[r] && !votes_[r].got) all = false;
    if (all) return Wait::kOk;
    pump_io(1);
    while (!ctrl_.empty()) {
      ControlMsg m = std::move(ctrl_.front());
      ctrl_.pop_front();
      handle_ctrl(m);
    }
    if (check_deaths()) return Wait::kDied;
  }
}

bool DistributedEngine::coordinator_round() {
  ++gvt_rounds_;
  note_round(gvt_rounds_);
  round_req_ = false;
  metrics_.shard(0).inc(obs::Metric::kGvtRounds);
  store_relaxed(dump_rounds_, gvt_rounds_);
  const std::uint64_t round = gvt_rounds_;

  bool prev_all_quiescent = false;
  std::uint64_t prev_activity = 0;
  VirtualTime gvt = kTimeInf;
  bool vote_error = false;
  std::uint64_t total_events = 0;
  collecting_ = true;
  for (cur_pass_ = 0;; ++cur_pass_) {
    for (auto& v : votes_) v = DrainVote{};
    std::vector<std::uint8_t> p;
    bytes::Writer w(p);
    w.u64(round);
    w.u32(cur_pass_);
    broadcast(net::FrameType::kDrain, p);

    // Own contribution, exactly as the ranks compute theirs (same once-per-
    // pass, links-up-gated flush discipline; see rank_drain_pass).
    if (node_->all_links_up())
      net_->flush(rank_, nowd());
    else
      net_->poll(rank_, nowd());
    const std::int64_t deadline = net::now_ms() + kDrainFlushBudgetMs;
    while (!node_->all_flushed() && net::now_ms() < deadline) pump_io(1);
    pump_io(0);
    {
      DrainVote& mine = votes_[rank_];
      const bool err = net_->error().has_value();
      const net::NodeCounters& nc = node_->counters();
      mine.got = true;
      mine.quiescent = err || (net_->quiescent() && node_->all_flushed());
      mine.error = err;
      mine.activity = nc.data_frames_sent + nc.data_frames_recv;
      mine.local_min = local_min();
      mine.events = wstats_.events;
    }
    if (coordinator_collect_votes(round, cur_pass_) == Wait::kDied) {
      collecting_ = false;
      return coordinator_recover();  // round abandoned either way
    }

    bool all_quiescent = true;
    std::uint64_t activity = 0;
    gvt = kTimeInf;
    vote_error = false;
    total_events = 0;
    for (std::uint32_t r = 0; r < nranks_; ++r) {
      if (retired_[r]) continue;
      const DrainVote& v = votes_[r];
      all_quiescent = all_quiescent && v.quiescent;
      vote_error = vote_error || v.error;
      activity += v.activity;
      gvt = std::min(gvt, v.local_min);
      total_events += v.events;
    }
    if (vote_error || remote_transport_error_) break;
    // Quiet rule: two consecutive all-quiescent passes with the summed
    // data-frame counters unchanged in between.  The counters are monotone,
    // so an unchanged sum means no rank's counter moved; and because pass
    // p's broadcast happens only after every pass p-1 vote arrived, any
    // frame in flight at pass p-1 would have landed (and counted) by pass
    // p.  The only traffic that can still be in flight at quiet is a
    // duplicate cumulative ack -- a state no-op by construction.
    if (all_quiescent && prev_all_quiescent && activity == prev_activity)
      break;
    prev_all_quiescent = all_quiescent;
    prev_activity = activity;
  }
  collecting_ = false;

  // Decide the round outcome (mirrors the threaded coordinator).
  safe_bound_ = gvt;
  note_progress(gvt);
  bool stop = false;
  if (vote_error || net_->error() || remote_transport_error_) {
    transport_failed_ = true;
    stop = true;
  } else if (gvt == kTimeInf || gvt.pt > config_.until) {
    stop = true;
  } else if (gvt == last_gvt_ && total_events == last_total_events_) {
    if (++stall_rounds_ >= config_.deadlock_rounds) {
      deadlocked_ = true;
      stop = true;
    }
  } else {
    stall_rounds_ = 0;
  }
  last_gvt_ = gvt;
  last_total_events_ = total_events;

  bool ckpt_due = false;
  if (!stop && ft_on_ && config_.checkpoint.period > 0 &&
      ++rounds_since_ckpt_ >= config_.checkpoint.period &&
      gvt > last_ckpt_gvt_) {
    rounds_since_ckpt_ = 0;
    last_ckpt_gvt_ = gvt;
    ckpt_due = true;
  }

  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u64(round);
  w.vt(gvt);
  w.u8(stop ? 1 : 0);
  w.u8(ckpt_due ? 1 : 0);
  broadcast(net::FrameType::kGvtSet, p);
  if (stop) {
    stopping_ = true;
    return false;
  }
  apply_gvt_local(round, gvt, ckpt_due);
  metrics_.merge();
  return true;
}

// ---------------------------------------------------------------------------
// Checkpoint fan-out, assembly and the output-commit release rule.
// ---------------------------------------------------------------------------

void DistributedEngine::apply_gvt_local(std::uint64_t round, VirtualTime gvt,
                                        bool ckpt_due) {
  DistRouter router(*this);
  if (ckpt_due) {
    ckpt_capture_and_ship(round, gvt);
  } else {
    for (const LpId lp : owned_) lps_[lp].fossil_collect(gvt, router);
  }
  // Each rank is its own adaptation scope: the demotion budget drains in
  // owned_ order, so decisions depend only on this rank's deterministic
  // counters, never on cross-process timing.
  AdaptController adapt(config_.adapt, config_.num_workers);
  adapt.begin_round(owned_.size());
  for (const LpId lp : owned_) {
    if (config_.configuration == Configuration::kDynamic) {
      const AdaptDecision d = adapt.adapt(lps_[lp]);
      if (d.action == AdaptAction::kDeferred)
        metrics_.shard(0).inc(obs::Metric::kAdaptDeferrals);
    } else {
      lps_[lp].reset_window();
    }
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(lp);
  }
  events_since_round_ = 0;
  round_req_sent_ = false;
  in_round_ = false;
}

void DistributedEngine::ckpt_capture_and_ship(std::uint64_t round,
                                              VirtualTime gvt) {
  // Same capture discipline as the shared checkpoint path: fossil to the
  // new frontier, undo the speculative suffix without anti-messages, then
  // snapshot and fan our share of the cut out to every successor.
  DistRouter router(*this);
  for (const LpId lp : owned_) {
    lps_[lp].fossil_collect(gvt, router);
    lps_[lp].rollback_all_deferred();
    refresh_key(lp);
  }
  capture_fault_ring(round);
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u64(round);
  w.vt(gvt);
  w.u64(owned_.size());
  for (const LpId lp : owned_) {
    const LpStats& s = lps_[lp].stats();
    const double work = static_cast<double>(
        s.events_processed - std::min(s.events_processed, s.events_undone));
    lp_work_[lp] = work;
    const LpCheckpoint lpck = lps_[lp].make_checkpoint();
    encode_lp_share(w, lp, lpck, work);
  }
  std::uint64_t ncommits = 0;
  if (want_commits_)
    for (const LpId lp : owned_) ncommits += commit_buf_[lp].size();
  w.u64(ncommits);
  if (want_commits_) {
    for (const LpId lp : owned_) {
      for (const Event& ev : commit_buf_[lp]) encode_event(w, ev);
      commit_buf_[lp].clear();
    }
  }
  for (const std::uint32_t s : successor_set()) {
    if (s == rank_) {
      // Own share takes the exact path a remote one does, so every
      // successor -- coordinator included -- runs one assembly per round.
      ControlMsg m;
      m.type = net::FrameType::kCkptData;
      m.src = rank_;
      m.epoch = epoch_;
      m.payload = p;
      ckpt_ingest(rank_, m);
    } else {
      node_->send(s, net::FrameType::kCkptData, p);
    }
  }
}

void DistributedEngine::ckpt_ingest(std::uint32_t src, const ControlMsg& m) {
  if (src >= nranks_ || retired_[src]) return;
  bytes::Reader r(m.payload.data(), m.payload.size());
  const std::uint64_t round = r.u64();
  const VirtualTime gvt = r.vt();
  const std::uint64_t nlps = r.u64();
  if (!r.ok()) return;
  note_round(round);
  auto it = pending_ck_.find(round);
  if (it == pending_ck_.end()) {
    // Lazily create the assembly: share arrival order across ranks is
    // arbitrary (a worker's share can beat the local capture).
    CkptAssembly fresh;
    fresh.ck.round = round;
    fresh.ck.gvt = gvt;
    fresh.ck.lps.resize(graph_.size());
    fresh.ck.last_promise.assign(graph_.size(), kTimeZero);
    fresh.ck.state_blobs.assign(graph_.size(), {});
    fresh.commits.resize(graph_.size());
    fresh.got.assign(nranks_, false);
    fresh.missing = live_ranks();
    it = pending_ck_.emplace(round, std::move(fresh)).first;
  }
  CkptAssembly& as = it->second;
  if (as.got[src]) return;
  std::vector<std::tuple<LpId, LpCheckpoint, VirtualTime, double,
                         std::vector<std::uint8_t>>>
      shares;
  for (std::uint64_t i = 0; r.ok() && i < nlps; ++i) {
    LpId id = 0;
    double work = 0.0;
    VirtualTime promise;
    LpCheckpoint lpck;
    std::vector<std::uint8_t> sbytes;
    if (!decode_lp_share(r, &id, &lpck, &work, &promise, &sbytes)) return;
    shares.emplace_back(id, std::move(lpck), promise, work,
                        std::move(sbytes));
  }
  const std::uint64_t ncommits = r.u64();
  std::vector<Event> commits;
  commits.reserve(static_cast<std::size_t>(ncommits));
  for (std::uint64_t i = 0; r.ok() && i < ncommits; ++i)
    commits.push_back(decode_event(r));
  if (!r.ok()) return;
  for (auto& [id, lpck, promise, work, sbytes] : shares) {
    as.ck.lps[id] = std::move(lpck);
    as.ck.last_promise[id] = promise;
    as.ck.state_blobs[id] = std::move(sbytes);
    lp_work_[id] = work;
  }
  for (Event& ev : commits) as.commits[ev.dst].push_back(std::move(ev));
  as.got[src] = true;
  --as.missing;
  if (as.missing == 0) ckpt_complete(round);
}

void DistributedEngine::ckpt_complete(std::uint64_t round) {
  const auto it = pending_ck_.find(round);
  if (it == pending_ck_.end()) return;
  CkptAssembly as = std::move(it->second);
  pending_ck_.erase(it);
  // The channel/fault cursor sections of a distributed checkpoint are
  // fresh-stack placeholders: recovery resets the reliable layer outright
  // and each rank rewinds its own fault ring locally.
  as.ck.links.assign(static_cast<std::size_t>(nranks_) * nranks_,
                     LinkCheckpoint{});
  as.ck.fault_links.clear();
  if (rank_ == coord_) {
    // Commits covered by this snapshot park until every OTHER live
    // successor holds it too: released output must survive our own death.
    if (want_commits_) unreleased_[round] = std::move(as.commits);
    store_.put(std::move(as.ck));
    ++ckstats_.checkpoints;
    if (round > succ_ack_[rank_]) succ_ack_[rank_] = round;
    try_release_batches();
  } else {
    // Successor: spill durably, retain the commit batch for a possible
    // promotion re-emit, and ack so the coordinator can release.
    if (want_commits_) {
      retained_batches_[round] = std::move(as.commits);
      while (retained_batches_.size() > config_.checkpoint.keep)
        retained_batches_.erase(retained_batches_.begin());
    }
    store_.put(std::move(as.ck));
    ++ckstats_.checkpoints;
    std::vector<std::uint8_t> p;
    bytes::Writer w(p);
    w.u64(round);
    node_->send(coord_, net::FrameType::kCkptAck, p);
  }
}

void DistributedEngine::try_release_batches() {
  if (!want_commits_) {
    unreleased_.clear();
    return;
  }
  // Release frontier: the smallest cumulative ack over the other live
  // successors.  With replicas == 1 there are none and everything releases
  // on assembly (the pre-failover behaviour).
  std::uint64_t covered = ~0ull;
  for (const std::uint32_t s : successor_set())
    if (s != rank_) covered = std::min(covered, succ_ack_[s]);
  while (!unreleased_.empty() && unreleased_.begin()->first <= covered) {
    auto it = unreleased_.begin();
    pipe_commit_batch(it->first, it->second, false);
    unreleased_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Death detection and recovery.
// ---------------------------------------------------------------------------

bool DistributedEngine::check_deaths() {
  const std::int64_t now = net::now_ms();
  bool any = false;
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (r == rank_ || retired_[r]) continue;
    if (dead_pending_[r]) {
      any = true;
      continue;
    }
    // Pure liveness evidence: heartbeat silence past the timeout or an
    // exhausted reconnect budget.  (Children cannot waitpid siblings; the
    // supervisor alone reaps.)
    bool dead = false;
    if (node_->last_heard_ms(r) +
            static_cast<std::int64_t>(config_.net.heartbeat_timeout_ms) <
        now)
      dead = true;
    if (node_->link_failed(r)) dead = true;
    if (dead) {
      dead_pending_[r] = true;
      any = true;
    }
  }
  return any;
}

bool DistributedEngine::coordinator_recover() {
  const auto fail = [&](std::uint32_t worker, std::string message) {
    fail_run(worker, std::move(message));
    return false;
  };
  for (;;) {
    std::uint32_t first_dead = 0;
    bool have_dead = false;
    for (std::uint32_t r = 0; r < nranks_; ++r) {
      if (r == rank_ || !dead_pending_[r]) continue;
      retired_[r] = true;
      node_->retire_peer(r);
      dead_pending_[r] = false;
      ++ckstats_.crashes;
      if (!have_dead) {
        first_dead = r;
        have_dead = true;
      }
    }
    if (!have_dead) return true;
    // A dead successor can no longer ack: recompute the release frontier
    // over the survivors so covered batches are not stuck forever.
    try_release_batches();
    if (!ft_on_)
      return fail(first_dead,
                  "rank died without fault tolerance (no checkpoint "
                  "period and no crash schedule)");
    if (recoveries_ >= config_.checkpoint.max_recoveries)
      return fail(first_dead, "recovery budget exhausted (max_recoveries)");
    const Checkpoint* ck = store_.latest();
    if (ck == nullptr) return fail(first_dead, "no checkpoint available");
    const std::uint64_t ck_round = ck->round;
    ++recoveries_;
    ++ckstats_.recoveries;
    store_relaxed(dump_recoveries_, static_cast<std::uint64_t>(recoveries_));
    // Partial assemblies belong to the abandoned timeline.
    pending_ck_.clear();

    std::vector<bool> alive(nranks_);
    for (std::uint32_t r = 0; r < nranks_; ++r) alive[r] = !retired_[r];
    partition::redistribute_orphans(graph_, partition_, lp_work_, alive,
                                    config_.rebalance);

    ++epoch_;
    if (epoch_ > max_epoch_seen_) max_epoch_seen_ = epoch_;
    node_->set_epoch(epoch_);
    std::vector<std::uint8_t> p;
    bytes::Writer w(p);
    w.u32(epoch_);
    w.u32(recoveries_);
    w.u64(ck->round);
    w.vt(ck->gvt);
    std::uint64_t ndead = 0;
    for (std::uint32_t r = 0; r < nranks_; ++r)
      if (retired_[r]) ++ndead;
    w.u64(ndead);
    for (std::uint32_t r = 0; r < nranks_; ++r)
      if (retired_[r]) w.u32(r);
    w.u64(partition_.size());
    for (const std::uint32_t owner : partition_) w.u32(owner);
    w.u64(graph_.size());
    bool codec_ok = true;
    for (LpId id = 0; id < graph_.size(); ++id) {
      // Re-encode from the stored snapshot; the codecs round-trip, so the
      // bytes match what the owning rank shipped.
      last_promise_[id] = ck->last_promise[id];  // encode_lp_share reads it
      encode_lp_share(w, id, ck->lps[id], lp_work_[id]);
      if (ck->lps[id].state) {
        std::vector<std::uint8_t> probe;
        bytes::Writer pw(probe);
        codec_ok = codec_ok && graph_.lp(id).encode_state(*ck->lps[id].state,
                                                          pw);
      }
    }
    if (!codec_ok)
      return fail(first_dead, "LP state codec failed during recovery");
    broadcast(net::FrameType::kRecover, p);

    recover_done_.assign(nranks_, false);
    recover_done_[rank_] = true;
    // drop_above inside apply_restore only removes rounds ABOVE ck's own,
    // so the `ck` pointer (the ring's maximum) survives the call.
    apply_restore(*ck);
    ckstats_.lps_restored += lps_.size() * live_ranks();

    bool redo = false;
    for (;;) {
      bool all = true;
      for (std::uint32_t r = 0; r < nranks_; ++r)
        if (!retired_[r] && !recover_done_[r]) all = false;
      if (all) break;
      pump_io(1);
      while (!ctrl_.empty()) {
        ControlMsg m = std::move(ctrl_.front());
        ctrl_.pop_front();
        handle_ctrl(m);
      }
      if (check_deaths()) {
        // A survivor died mid-recovery: restart with the larger dead set.
        redo = true;
        break;
      }
    }
    if (redo) continue;

    // Every survivor re-stored the restore point (kRecoverDone implies it):
    // seed the ack frontier there so batches the restore covers release,
    // even for ranks that just joined the successor set.
    for (const std::uint32_t s : successor_set())
      if (s != rank_ && succ_ack_[s] < ck_round) succ_ack_[s] = ck_round;
    try_release_batches();

    broadcast(net::FrameType::kResume, {});
    last_gvt_ = last_ckpt_gvt_ = safe_bound_;
    note_progress(safe_bound_);
    last_total_events_ = ~0ull;  // first post-recovery round never stalls
    stall_rounds_ = 0;
    rounds_since_ckpt_ = 0;
    round_req_ = false;
    return true;
  }
}

void DistributedEngine::fail_run(std::uint32_t worker, std::string message) {
  recovery_error_ =
      RecoveryError{worker, gvt_rounds_, recoveries_, std::move(message)};
  failed_ = true;
  stopping_ = true;
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u8(2);  // kind: stop order
  broadcast(net::FrameType::kAbort, p);
  const std::int64_t deadline = net::now_ms() + 500;
  while (!node_->all_flushed() && net::now_ms() < deadline) pump_io(1);
}

void DistributedEngine::coordinator_finish(RunStats& out) {
  // Own final fossil collection (commits land in the buffers).
  if (!failed_) {
    DistRouter router(*this);
    for (const LpId lp : owned_) lps_[lp].fossil_collect(kTimeInf, router);
  }

  // Collect final stats from every live rank; the deadline covers a rank
  // that died at the stop order (its silence must not hang the run).
  if (!failed_) {
    const std::int64_t deadline =
        net::now_ms() + config_.net.heartbeat_timeout_ms + 2000;
    for (;;) {
      bool all = true;
      for (std::uint32_t r = 0; r < nranks_; ++r)
        if (r != rank_ && !retired_[r] && !stats_got_[r]) all = false;
      if (all || net::now_ms() >= deadline) break;
      pump_io(1);
      while (!ctrl_.empty()) {
        ControlMsg m = std::move(ctrl_.front());
        ctrl_.pop_front();
        coordinator_handle(m);
      }
    }
  }

  out.per_lp.resize(graph_.size());
  for (LpId id = 0; id < graph_.size(); ++id)
    out.per_lp[id] = final_lp_got_[id] ? final_lp_stats_[id]
                                       : lps_[id].stats();
  out.per_worker = final_worker_stats_;
  out.per_worker[rank_] = wstats_;
  out.gvt_rounds = gvt_rounds_;
  out.deadlocked = deadlocked_;
  out.transport = net_->counters();
  add_transport_counters(out.transport, remote_transport_);
  if (auto err = net_->error()) {
    out.transport_error = std::move(err);
  } else if (remote_transport_error_) {
    out.transport_error = remote_transport_error_;
  }
  if (deadlocked_) {
    DeadlockReport report;
    report.gvt = last_gvt_;
    for (const LpId lp : owned_) {
      if (!lps_[lp].has_pending()) continue;
      report.blocked.push_back({lp, lps_[lp].next_ts(),
                                lps_[lp].min_channel_clock(),
                                lps_[lp].pending_count(), lps_[lp].mode()});
    }
    report.blocked.insert(report.blocked.end(), remote_diag_.begin(),
                          remote_diag_.end());
    std::sort(report.blocked.begin(), report.blocked.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    out.deadlock_report = std::move(report);
  }
  out.checkpoint = ckstats_;
  out.checkpoint.disk_bytes = store_.disk_bytes();
  out.recovery_error = recovery_error_;
  out.final_coordinator = rank_;
  out.final_epoch = epoch_;

  // Release every buffered commit that survived.  Ack-parked batches go
  // out even on a failed run: those rounds are spilled on every successor,
  // so the released prefix stays exactly the spill coverage a resume run
  // will replay from.  The unvalidated tail (partial assemblies, the live
  // buffers, the shipped final buffers) is released only on success.
  if (want_commits_) {
    for (auto& [round, batch] : unreleased_)
      pipe_commit_batch(round, batch, false);
    unreleased_.clear();
    if (!failed_) {
      for (auto& [round, as] : pending_ck_)
        pipe_commit_batch(round, as.commits, false);
      pipe_commit_batch(0, commit_buf_, true);
      for (auto& commits : final_commits_) pipe_commit_events(0, commits, true);
    }
    pending_ck_.clear();
    final_commits_.clear();
  }

  // Metrics: fold the socket-node totals into our shard, absorb the global
  // run totals, then merge the latest per-rank snapshots (dead ranks keep
  // their last piggybacked one).
  {
    auto& sh = metrics_.shard(0);
    const net::NodeCounters& nc = node_->counters();
    sh.inc(obs::Metric::kNetFramesSent, nc.frames_sent);
    sh.inc(obs::Metric::kNetFramesRecv, nc.frames_recv);
    sh.inc(obs::Metric::kNetHeartbeats, nc.heartbeats_sent);
    sh.inc(obs::Metric::kNetReconnects, nc.reconnects);
    sh.inc(obs::Metric::kNetDisconnects, nc.disconnects);
    sh.inc(obs::Metric::kNetCrcErrors, nc.crc_errors);
  }
  absorb_run_stats(metrics_, out);
  metrics_.merge();
  obs::MetricsSnapshot merged = metrics_.merged();
  for (std::uint32_t r = 0; r < nranks_; ++r)
    if (r != rank_ && rank_snapshot_got_[r])
      obs::merge_snapshot(merged, rank_snapshots_[r]);
  out.metrics = std::move(merged);
}

// ---------------------------------------------------------------------------
// Result pipe (child side) and the supervisor loop (parent side).
// ---------------------------------------------------------------------------

void DistributedEngine::pipe_send(net::FrameType type,
                                  const std::vector<std::uint8_t>& p) {
  if (pipe_w_ < 0) return;
  std::vector<std::uint8_t> buf;
  net::append_frame(buf, type, epoch_, p.data(), p.size());
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(pipe_w_, buf.data() + off, buf.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // supervisor gone (SIGPIPE is ignored); nothing left to tell
  }
}

void DistributedEngine::pipe_commit_events(std::uint64_t round,
                                           const std::vector<Event>& evs,
                                           bool terminal) {
  if (!want_commits_) return;
  if (evs.empty() && !terminal) return;
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  w.u8(terminal ? 1 : 0);
  w.u64(round);
  w.u64(evs.size());
  for (const Event& ev : evs) encode_event(w, ev);
  pipe_send(net::FrameType::kCommit, p);
}

void DistributedEngine::pipe_commit_batch(
    std::uint64_t round, const std::vector<std::vector<Event>>& batch,
    bool terminal) {
  if (!want_commits_) return;
  std::vector<Event> flat;
  for (const auto& per_lp : batch)
    flat.insert(flat.end(), per_lp.begin(), per_lp.end());
  pipe_commit_events(round, flat, terminal);
}

void DistributedEngine::pipe_final(const RunStats& st) {
  std::vector<std::uint8_t> p;
  bytes::Writer w(p);
  encode_run_stats(w, st, partition_);
  pipe_send(net::FrameType::kFinal, p);
}

void DistributedEngine::supervisor_main(RunStats& out) {
  std::vector<net::FrameParser> parsers;
  parsers.reserve(nranks_);
  for (std::uint32_t r = 0; r < nranks_; ++r)
    parsers.emplace_back(1u << 30);  // trusted in-kernel pipe, no peer cap
  std::vector<bool> eof(nranks_, false);
  std::set<std::uint64_t> emitted;
  bool got_final = false;
  bool killed_rest = false;
  std::uint32_t final_src = 0;

  const auto handle = [&](std::uint32_t src, const net::FrameView& v) {
    bytes::Reader r(v.data, v.size);
    if (v.type == net::FrameType::kCommit) {
      const bool terminal = r.u8() != 0;
      const std::uint64_t round = r.u64();
      // Round-level dedup: a promoted coordinator re-emits the batches it
      // retained, which may overlap rounds the dead coordinator already
      // released.  Terminal tails carry round 0 and always pass.
      const bool fresh = terminal || emitted.insert(round).second;
      const std::uint64_t n = r.u64();
      std::vector<Event> evs;
      evs.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; r.ok() && i < n; ++i)
        evs.push_back(decode_event(r));
      if (!r.ok() || !fresh || !hook_) return;
      for (const Event& ev : evs) hook_(ev);
    } else if (v.type == net::FrameType::kFinal && !got_final) {
      RunStats st;
      Partition part;
      if (!decode_run_stats(r, &st, &part)) return;
      out = std::move(st);
      if (part.size() == partition_.size()) partition_ = std::move(part);
      got_final = true;
      final_src = src;
    }
  };

  for (;;) {
    // Drain ready pipes in ascending RANK order every cycle.  A promoted
    // coordinator always has a higher rank than the dead one, and its
    // promotion lags the death by >= 2x the heartbeat timeout -- by which
    // time the old coordinator's last commit frames already sit in our
    // pipe buffer.  Rank-order draining therefore preserves cross-pipe
    // commit ordering across a failover.
    std::vector<pollfd> fds;
    std::vector<std::uint32_t> fd_rank;
    for (std::uint32_t r = 0; r < nranks_; ++r) {
      if (eof[r] || pipe_r_[r] < 0) continue;
      fds.push_back(pollfd{pipe_r_[r], POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (fds.empty()) break;
    ::poll(fds.data(), fds.size(), 100);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::uint32_t r = fd_rank[i];
      for (;;) {
        std::uint8_t buf[65536];
        const ssize_t n = ::read(pipe_r_[r], buf, sizeof buf);
        if (n > 0) {
          parsers[r].feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof[r] = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof[r] = true;
        break;
      }
      net::FrameView v;
      std::string err;
      int rc;
      while ((rc = parsers[r].next(&v, &err)) == 1) handle(r, v);
      if (rc < 0) eof[r] = true;
    }
    if (got_final && eof[final_src] && !killed_rest) {
      // The authoritative result is complete; survivors that are merely
      // slow to notice the shutdown do not get to hold the run open.
      killed_rest = true;
      for (std::uint32_t r = 0; r < nranks_; ++r)
        if (!eof[r] && r < pids_.size() && pids_[r] > 0 && !reaped_[r])
          ::kill(pids_[r], SIGKILL);
    }
  }

  if (!got_final) {
    out.recovery_error = RecoveryError{
        0, 0, 0, "every rank died without reporting a final state"};
    out.per_lp.resize(graph_.size());
    out.per_worker.resize(nranks_);
  }
}

void DistributedEngine::debug_dump(std::FILE* out) const {
  std::fprintf(out,
               "[distributed rank %u] gvt=(%lld,%lld) rounds=%llu "
               "events=%llu recoveries=%llu epoch=%u\n",
               rank_,
               static_cast<long long>(load_relaxed(dump_gvt_pt_)),
               static_cast<long long>(load_relaxed(dump_gvt_lt_)),
               static_cast<unsigned long long>(load_relaxed(dump_rounds_)),
               static_cast<unsigned long long>(load_relaxed(dump_events_)),
               static_cast<unsigned long long>(load_relaxed(dump_recoveries_)),
               epoch_);
  // Transport/socket counters and the loop flags below are written by the
  // run loop without atomics; these racy reads are for a watchdog's
  // post-mortem only.
  std::fprintf(out,
               "  loop: in_round=%d collecting=%d pass=%u stopping=%d "
               "failed=%d quiescent=%d all_flushed=%d links_up=%d\n",
               in_round_ ? 1 : 0, collecting_ ? 1 : 0, cur_pass_,
               stopping_ ? 1 : 0, failed_ ? 1 : 0,
               net_ && net_->quiescent() ? 1 : 0,
               node_ && node_->all_flushed() ? 1 : 0,
               node_ && node_->all_links_up() ? 1 : 0);
  if (rank_ == coord_ && !votes_.empty()) {
    std::fprintf(out, "  votes:");
    for (std::size_t r = 0; r < votes_.size(); ++r)
      std::fprintf(out, " r%zu=%s", r,
                   retired_[r] ? "dead" : (votes_[r].got ? "in" : "-"));
    std::fprintf(out, "\n");
  }
  if (net_) {
    const TransportCounters& c = net_->counters();
    std::fprintf(out,
                 "  transport: sent=%llu delivered=%llu retransmits=%llu "
                 "buffered=%llu\n",
                 static_cast<unsigned long long>(c.data_sent),
                 static_cast<unsigned long long>(c.delivered),
                 static_cast<unsigned long long>(c.retransmits),
                 static_cast<unsigned long long>(c.buffered));
  }
  if (node_) {
    const net::NodeCounters& nc = node_->counters();
    std::fprintf(out,
                 "  node: frames_sent=%llu frames_recv=%llu hb_sent=%llu "
                 "reconnects=%llu disconnects=%llu\n",
                 static_cast<unsigned long long>(nc.frames_sent),
                 static_cast<unsigned long long>(nc.frames_recv),
                 static_cast<unsigned long long>(nc.heartbeats_sent),
                 static_cast<unsigned long long>(nc.reconnects),
                 static_cast<unsigned long long>(nc.disconnects));
  }
}

}  // namespace vsim::pdes
