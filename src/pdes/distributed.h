// Multi-process distributed engine over real sockets.
//
// One OS process per rank, connected by a full mesh of Unix-domain (or TCP
// loopback) stream sockets.  The caller's process becomes rank 0 -- the
// round coordinator -- and run() forks ranks 1..P-1 after seeding, so every
// rank inherits the constructed LP graph copy-on-write and only LP *state*
// ever crosses the wire (via the checkpoint codec, pdes/checkpoint.h).
//
// Layering per rank (bottom-up):
//
//   SocketNode (src/net/node.h: framing, hello/heartbeats, reconnect
//        |       backoff, epoch filtering)
//   SocketTransport (src/net/socket_transport.h: Packet <-> kData frames)
//   [FaultyTransport] (seeded chaos, now injected on real network traffic)
//   ChannelStack (seq/ack/dedup/retransmit -- reliability is forced on:
//        |        a reconnect may drop or replay the frame that straddled
//        |        the break, and the channel layer owns exactly-once)
//   DistributedEngine (this file: scheduling, GVT rounds, recovery)
//
// GVT uses the same drain-until-quiet protocol as the threaded engine,
// driven by control frames instead of barriers: the coordinator broadcasts
// kDrain passes and declares the network quiet only after two consecutive
// passes in which every rank reported a quiescent channel stack and the
// cluster-wide data-frame activity counters did not move.  The pass-p+1
// broadcast happens only after every pass-p vote arrived, which gives the
// cross-rank ordering that makes the two-pass rule sound without barriers.
//
// Fault tolerance composes the existing pieces over the wire: ranks ship
// their share of each GVT-consistent checkpoint to rank 0 (kCkptData);
// rank 0 assembles complete global snapshots and holds the output-commit
// buffers until a snapshot covers them.  A rank that dies (missed network
// heartbeats, reconnect budget exhausted, or a reaped child process) is
// retired: rank 0 bumps the recovery epoch, redistributes the dead rank's
// LPs with the load balancer's orphan placement, and broadcasts the restore
// blob (kRecover); survivors reset their channel cursors -- epoch filtering
// in the socket node keeps pre-recovery traffic out -- and resume from the
// checkpoint.  The committed trace of a crashed-and-recovered run is
// bit-identical to an uninterrupted one.  When the recovery budget is
// exhausted (or a rank dies with fault tolerance off), the run unwinds with
// a structured RecoveryError instead of hanging.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/frame.h"
#include "obs/metrics.h"
#include "pdes/checkpoint.h"
#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/lp_runtime.h"
#include "pdes/machine.h"  // Partition
#include "pdes/stats.h"
#include "pdes/transport.h"

namespace vsim::net {
class SocketNode;
class SocketTransport;
}  // namespace vsim::net

namespace vsim::pdes {

class DistributedEngine {
 public:
  /// Invoked once per committed event, always in rank 0's process, in LP-id
  /// order within each release batch.  With fault tolerance on, invocations
  /// are buffered on the owning rank and released only once a checkpoint
  /// (or termination) covers them, so recovery can never duplicate one.
  using CommitHook = std::function<void(const Event&)>;

  DistributedEngine(LpGraph& graph, Partition partition, RunConfig config);
  ~DistributedEngine();

  DistributedEngine(const DistributedEngine&) = delete;
  DistributedEngine& operator=(const DistributedEngine&) = delete;

  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Runs the simulation across config.num_workers OS processes.  Returns
  /// in rank 0's process; forked ranks never return (they _exit).
  RunStats run();

  /// LP -> rank mapping after the run (differs from the constructor
  /// argument after crash recovery redistributed a dead rank's LPs).
  [[nodiscard]] const Partition& partition() const { return partition_; }

  /// Progress snapshot for test watchdogs: last GVT, rounds, events,
  /// recoveries, and (racily) socket counters.  Callable from another
  /// thread while run() executes in this process.
  void debug_dump(std::FILE* out) const;

 private:
  class DistRouter;
  class SeedRouter;

  /// One control frame copied out of the socket layer for the main loop
  /// (FrameView payloads are only valid during the handler call).
  struct ControlMsg {
    net::FrameType type{};
    std::uint32_t src = 0;
    std::uint32_t epoch = 0;
    std::vector<std::uint8_t> payload;
  };

  /// One drain-pass vote from a rank.
  struct DrainVote {
    bool got = false;
    bool quiescent = false;
    bool error = false;
    std::uint64_t activity = 0;  ///< cumulative data frames sent + received
    VirtualTime local_min = kTimeInf;
    std::uint64_t events = 0;
  };

  /// A global checkpoint being assembled at rank 0 from per-rank shares.
  struct CkptAssembly {
    Checkpoint ck;
    std::vector<std::vector<Event>> commits;  ///< per LP, release on complete
    std::vector<bool> got;                    ///< per rank
    std::size_t missing = 0;
  };

  enum class Wait : std::uint8_t { kOk, kDied, kAborted };

  // --- shared by every rank ---
  void setup_stack_or_die();
  void on_frame(std::uint32_t src, const net::FrameView& view);
  std::size_t pump_io(int timeout_ms);
  void deliver(Event ev);
  void refresh_key(LpId lp);
  bool try_process_one();
  void send_null_messages_for(LpId lp);
  bool maybe_crash() const;
  void capture_fault_ring(std::uint64_t round);
  void apply_restore(const Checkpoint& ck);
  void encode_lp_share(bytes::Writer& w, LpId id, const LpCheckpoint& lpck,
                       double work);
  bool decode_lp_share(bytes::Reader& r, LpId* id, LpCheckpoint* out,
                       double* work, VirtualTime* promise);
  [[nodiscard]] double nowd() const;
  [[nodiscard]] std::int64_t cfg_connect_deadline() const;
  [[nodiscard]] VirtualTime local_min() const;
  void note_progress(VirtualTime gvt);

  // --- rank != 0 ---
  [[noreturn]] void child_main();
  void rank_loop();
  void rank_handle(const ControlMsg& m);
  void rank_drain_pass(std::uint64_t round, std::uint32_t pass);
  void rank_apply_gvt(const ControlMsg& m);
  void rank_apply_recover(const ControlMsg& m);
  [[noreturn]] void rank_finish(bool ok);
  void rank_send_stats();
  [[noreturn]] void rank_abort_transport(const TransportError& err);

  // --- rank 0 (coordinator) ---
  void coordinator_main(RunStats& out);
  void coordinator_handle(const ControlMsg& m);
  bool coordinator_round();  ///< false: stop the run
  Wait coordinator_collect_votes(std::uint64_t round, std::uint32_t pass);
  void coordinator_apply_gvt(std::uint64_t round, VirtualTime gvt,
                             bool ckpt_due);
  void coordinator_own_ckpt_share(std::uint64_t round, VirtualTime gvt);
  void ckpt_ingest(std::uint32_t src, const ControlMsg& m);
  void ckpt_complete(std::uint64_t round);
  bool check_deaths();
  bool coordinator_recover();  ///< false: recovery failed, run is done
  void fail_run(std::uint32_t worker, std::string message);
  void broadcast(net::FrameType type, const std::vector<std::uint8_t>& p);
  void coordinator_finish(RunStats& out);
  void flush_commit_buffers(std::vector<std::vector<Event>>& bufs);
  void reap_children(bool force);
  [[nodiscard]] std::size_t live_ranks() const;

  LpGraph& graph_;
  Partition partition_;
  RunConfig config_;
  CommitHook hook_;

  std::vector<LpRuntime> lps_;
  std::vector<VirtualTime> key_;
  std::vector<VirtualTime> last_promise_;
  std::vector<LpId> owned_;

  std::uint32_t rank_ = 0;
  std::uint32_t nranks_ = 1;
  bool ft_on_ = false;
  bool want_commits_ = false;
  bool own_socket_dir_ = false;

  // Socket transport stack (built per rank, after the fork).
  std::unique_ptr<net::SocketNode> node_;
  std::unique_ptr<net::SocketTransport> wire_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<ChannelStack> net_;
  bool got_data_ = false;

  std::deque<ControlMsg> ctrl_;
  std::uint32_t epoch_ = 0;

  // Scheduling.
  VirtualTime safe_bound_ = kTimeZero;
  std::uint64_t events_since_round_ = 0;
  bool in_round_ = false;
  bool recovering_ = false;
  bool round_req_sent_ = false;
  std::uint32_t idle_spins_ = 0;
  WorkerStats wstats_;

  // Coordinator round state.
  bool round_req_ = false;
  std::uint64_t gvt_rounds_ = 0;
  VirtualTime last_gvt_ = kTimeZero;
  std::uint64_t last_total_events_ = 0;
  std::uint32_t stall_rounds_ = 0;
  std::uint32_t rounds_since_ckpt_ = 0;
  VirtualTime last_ckpt_gvt_ = kTimeZero;
  bool deadlocked_ = false;
  bool transport_failed_ = false;
  bool stopping_ = false;
  bool failed_ = false;
  std::vector<DrainVote> votes_;
  std::uint32_t cur_pass_ = 0;
  bool collecting_ = false;  ///< a drain pass is awaiting votes
  std::int64_t last_round_ms_ = 0;
  std::vector<bool> recover_done_;

  // Fault tolerance.
  std::vector<bool> retired_;  ///< rank is dead and recovered-around
  std::vector<bool> dead_pending_;
  std::uint32_t recoveries_ = 0;
  CheckpointStore store_;
  CheckpointStats ckstats_;
  std::map<std::uint64_t, CkptAssembly> pending_ck_;
  /// Per-rank local ring of OWN fault-injector cursors per checkpoint
  /// round: recovery resets the channel layer outright (epoch filtering
  /// handles staleness) but must rewind the chaos RNGs for determinism.
  std::map<std::uint64_t, std::vector<FaultLinkCheckpoint>> fault_ring_;
  std::vector<std::vector<Event>> commit_buf_;  ///< per LP, owning rank only
  std::vector<double> lp_work_;  ///< rank 0: work scores for orphan placement
  std::optional<RecoveryError> recovery_error_;
  std::optional<ConfigError> config_error_;
  std::optional<TransportError> remote_transport_error_;

  // Termination collection (rank 0).
  std::vector<bool> stats_got_;
  std::vector<LpStats> final_lp_stats_;
  std::vector<bool> final_lp_got_;
  std::vector<WorkerStats> final_worker_stats_;
  TransportCounters remote_transport_;
  std::vector<obs::MetricsSnapshot> rank_snapshots_;
  std::vector<bool> rank_snapshot_got_;
  std::vector<DeadlockReport::LpDiag> remote_diag_;
  std::vector<std::vector<Event>> final_commits_;

  obs::MetricsRegistry metrics_{1};

  // Child processes (rank 0 only; pids_[0] unused).
  std::vector<int> pids_;
  std::vector<bool> reaped_;

  // Watchdog-visible progress (updated with relaxed atomics via helpers).
  std::int64_t dump_gvt_pt_ = 0;
  std::int64_t dump_gvt_lt_ = 0;
  std::uint64_t dump_rounds_ = 0;
  std::uint64_t dump_events_ = 0;
  std::uint64_t dump_recoveries_ = 0;
};

}  // namespace vsim::pdes
