// Multi-process distributed engine over real sockets, with coordinator
// failover.
//
// One OS process per rank, connected by a full mesh of Unix-domain (or TCP
// loopback) stream sockets.  run() forks ALL ranks 0..P-1; the caller's
// process stays outside the mesh as a passive *supervisor* that only reads
// result frames from per-rank pipes.  Every rank therefore inherits the
// constructed LP graph copy-on-write and only LP *state* ever crosses the
// wire (via the checkpoint codec, pdes/checkpoint.h) -- and, crucially, no
// rank is structurally special: the rank that happens to be coordinating is
// just the lowest live rank, and its death is as survivable as any other's.
//
// Layering per rank (bottom-up):
//
//   SocketNode (src/net/node.h: framing, hello/heartbeats, reconnect
//        |       backoff, epoch filtering)
//   SocketTransport (src/net/socket_transport.h: Packet <-> kData frames)
//   [FaultyTransport] (seeded chaos, now injected on real network traffic)
//   ChannelStack (seq/ack/dedup/retransmit -- reliability is forced on:
//        |        a reconnect may drop or replay the frame that straddled
//        |        the break, and the channel layer owns exactly-once)
//   DistributedEngine (this file: scheduling, GVT rounds, recovery)
//
// GVT uses the same drain-until-quiet protocol as the threaded engine,
// driven by control frames instead of barriers: the coordinator broadcasts
// kDrain passes and declares the network quiet only after two consecutive
// passes in which every rank reported a quiescent channel stack and the
// cluster-wide data-frame activity counters did not move.  The pass-p+1
// broadcast happens only after every pass-p vote arrived, which gives the
// cross-rank ordering that makes the two-pass rule sound without barriers.
//
// Fault tolerance (DESIGN.md "Coordinator failover"): every rank fans its
// share of each GVT-consistent checkpoint out to the *successor set* -- the
// `checkpoint.replicas` lowest live ranks (which always include the
// coordinator).  Each successor assembles the complete global snapshot,
// spills it durably (atomic tmp+fsync+rename), and acks the round; the
// coordinator releases output-commit batches to the supervisor only once
// every other live successor has acked the covering round, so a commit can
// reach the outside world only when the snapshot that regenerates-or-covers
// it would survive the coordinator's own death.
//
// A worker that dies is retired by the coordinator exactly as before
// (kRecover: epoch bump, orphan redistribution, restore blob).  A dead
// *coordinator* is detected by the lowest surviving rank (silence from the
// coordinator and from every rank below itself); if that rank is a
// successor it promotes itself: it fences the old regime with a term-level
// epoch bump, re-emits its retained commit batches (the supervisor
// deduplicates by round, so re-sends of already-released batches are
// harmless and unreleased ones emit exactly once), and runs the ordinary
// recovery broadcast.  Survivors that are not successors abort with a
// structured RecoveryError rather than hang.  The committed trace of a
// crashed-and-recovered run -- coordinator deaths included -- is
// bit-identical to an uninterrupted one.
//
// Clustered graphs (pdes/cluster.h) run unchanged: a ClusterLp is a plain
// LP to this engine, Event::sub carries the inner flat destination across
// the wire (checkpoint codec v3) and through the supervisor's commit pipe,
// and only inter-cluster edges ever touch the socket mesh -- intra-cluster
// traffic is a local enqueue inside the owning rank.  At 100k+ signals this
// is what keeps per-rank mailbox pressure and the per-round scan bounded by
// clusters instead of flat LPs (see DESIGN.md "LP clustering").
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/frame.h"
#include "obs/metrics.h"
#include "pdes/checkpoint.h"
#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/lp_runtime.h"
#include "pdes/machine.h"  // Partition
#include "pdes/stats.h"
#include "pdes/transport.h"

namespace vsim::net {
class SocketNode;
class SocketTransport;
}  // namespace vsim::net

namespace vsim::pdes {

class DistributedEngine {
 public:
  /// Invoked once per committed event, always in the caller's (supervisor)
  /// process, in LP-id order within each release batch.  With fault
  /// tolerance on, invocations are buffered on the owning rank and released
  /// only once a replicated checkpoint (or termination) covers them, so
  /// neither recovery nor coordinator failover can duplicate one.
  using CommitHook = std::function<void(const Event&)>;

  DistributedEngine(LpGraph& graph, Partition partition, RunConfig config);
  ~DistributedEngine();

  DistributedEngine(const DistributedEngine&) = delete;
  DistributedEngine& operator=(const DistributedEngine&) = delete;

  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Runs the simulation across config.num_workers OS processes.  Returns
  /// in the caller's process, which supervises but does not simulate; all
  /// ranks are forked children and never return (they _exit).
  RunStats run();

  /// LP -> rank mapping after the run (differs from the constructor
  /// argument after crash recovery redistributed a dead rank's LPs).
  [[nodiscard]] const Partition& partition() const { return partition_; }

  /// Progress snapshot for test watchdogs: last GVT, rounds, events,
  /// recoveries, and (racily) socket counters.  Callable from another
  /// thread while run() executes in this process.
  void debug_dump(std::FILE* out) const;

 private:
  class DistRouter;
  class SeedRouter;

  /// One control frame copied out of the socket layer for the main loop
  /// (FrameView payloads are only valid during the handler call).
  struct ControlMsg {
    net::FrameType type{};
    std::uint32_t src = 0;
    std::uint32_t epoch = 0;
    std::vector<std::uint8_t> payload;
  };

  /// One drain-pass vote from a rank.
  struct DrainVote {
    bool got = false;
    bool quiescent = false;
    bool error = false;
    std::uint64_t activity = 0;  ///< cumulative data frames sent + received
    VirtualTime local_min = kTimeInf;
    std::uint64_t events = 0;
  };

  /// A global checkpoint being assembled from per-rank shares.  Every
  /// successor (not just the coordinator) runs one per checkpoint round.
  struct CkptAssembly {
    Checkpoint ck;
    std::vector<std::vector<Event>> commits;  ///< per LP, release when covered
    std::vector<bool> got;                    ///< per rank
    std::size_t missing = 0;
  };

  enum class Wait : std::uint8_t { kOk, kDied, kAborted };

  // --- shared by every rank ---
  void setup_stack_or_die();
  void on_frame(std::uint32_t src, const net::FrameView& view);
  std::size_t pump_io(int timeout_ms);
  void deliver(Event ev);
  void refresh_key(LpId lp);
  bool try_process_one();
  void send_null_messages_for(LpId lp);
  bool maybe_crash() const;
  void capture_fault_ring(std::uint64_t round);
  void apply_restore(const Checkpoint& ck);
  void encode_lp_share(bytes::Writer& w, LpId id, const LpCheckpoint& lpck,
                       double work);
  bool decode_lp_share(bytes::Reader& r, LpId* id, LpCheckpoint* out,
                       double* work, VirtualTime* promise,
                       std::vector<std::uint8_t>* state_bytes);
  [[nodiscard]] double nowd() const;
  [[nodiscard]] std::int64_t cfg_connect_deadline() const;
  [[nodiscard]] VirtualTime local_min() const;
  void note_progress(VirtualTime gvt);
  void note_round(std::uint64_t round);
  [[nodiscard]] std::vector<std::uint32_t> successor_set() const;
  [[nodiscard]] bool is_successor(std::uint32_t r) const;

  /// Unified per-rank driver: event slices, control dispatch, the
  /// coordinator duties when `rank_ == coord_`, the promotion watch when
  /// not.  Every forked rank runs this; only the final coordinator falls
  /// out of it with `stopping_` set (workers _exit on the way).
  [[noreturn]] void child_main();
  void main_loop();
  void handle_ctrl(const ControlMsg& m);

  // --- worker duties (rank_ != coord_) ---
  void rank_handle(const ControlMsg& m);
  void rank_drain_pass(std::uint64_t round, std::uint32_t pass);
  void rank_apply_gvt(const ControlMsg& m);
  void rank_apply_recover(const ControlMsg& m);
  [[noreturn]] void rank_finish(bool ok);
  void rank_send_stats();
  [[noreturn]] void rank_abort_transport(const TransportError& err);
  /// Deterministic succession watch: promote when the coordinator AND every
  /// live rank below us have gone silent.  Returns true when this rank just
  /// became coordinator (the caller restarts its loop iteration).
  bool monitor_cluster();
  void promote_self();
  [[noreturn]] void abort_replica_lost();

  // --- coordinator duties (rank_ == coord_) ---
  void coordinator_handle(const ControlMsg& m);
  bool coordinator_round();  ///< false: stop the run
  Wait coordinator_collect_votes(std::uint64_t round, std::uint32_t pass);
  void apply_gvt_local(std::uint64_t round, VirtualTime gvt, bool ckpt_due);
  void ckpt_capture_and_ship(std::uint64_t round, VirtualTime gvt);
  void ckpt_ingest(std::uint32_t src, const ControlMsg& m);
  void ckpt_complete(std::uint64_t round);
  void try_release_batches();
  bool check_deaths();
  bool coordinator_recover();  ///< false: recovery failed, run is done
  void fail_run(std::uint32_t worker, std::string message);
  void broadcast(net::FrameType type, const std::vector<std::uint8_t>& p);
  void coordinator_finish(RunStats& out);
  [[nodiscard]] std::size_t live_ranks() const;

  // --- result pipe (rank -> supervisor) and the supervisor itself ---
  void pipe_send(net::FrameType type, const std::vector<std::uint8_t>& p);
  void pipe_commit_events(std::uint64_t round, const std::vector<Event>& evs,
                          bool terminal);
  void pipe_commit_batch(std::uint64_t round,
                         const std::vector<std::vector<Event>>& batch,
                         bool terminal);
  void pipe_final(const RunStats& st);
  void supervisor_main(RunStats& out);
  void reap_children(bool force);

  LpGraph& graph_;
  Partition partition_;
  RunConfig config_;
  CommitHook hook_;

  std::vector<LpRuntime> lps_;
  std::vector<VirtualTime> key_;
  std::vector<VirtualTime> last_promise_;
  std::vector<LpId> owned_;

  std::uint32_t rank_ = 0;
  std::uint32_t nranks_ = 1;
  std::uint32_t coord_ = 0;     ///< current coordinator (lowest live rank)
  std::uint32_t replicas_ = 1;  ///< successor-set size (clamped to nranks_)
  bool ft_on_ = false;
  bool want_commits_ = false;
  bool own_socket_dir_ = false;
  bool is_child_ = false;  ///< set in forked ranks; the supervisor stays false

  // Socket transport stack (built per rank, after the fork).
  std::unique_ptr<net::SocketNode> node_;
  std::unique_ptr<net::SocketTransport> wire_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<ChannelStack> net_;
  bool got_data_ = false;

  std::deque<ControlMsg> ctrl_;
  /// Recovery epoch: (term << kEpochSeqBits) | seq.  Ordinary recoveries
  /// bump the sequence; a coordinator promotion bumps the *term* past every
  /// epoch the promoting rank has ever seen, fencing the old regime.
  std::uint32_t epoch_ = 0;
  std::uint32_t max_epoch_seen_ = 0;

  // Scheduling.
  VirtualTime safe_bound_ = kTimeZero;
  std::uint64_t events_since_round_ = 0;
  bool in_round_ = false;
  bool recovering_ = false;
  bool round_req_sent_ = false;
  std::uint32_t idle_spins_ = 0;
  WorkerStats wstats_;

  // Coordinator round state.
  bool round_req_ = false;
  std::uint64_t gvt_rounds_ = 0;
  std::uint64_t max_round_seen_ = 0;  ///< keeps rounds monotone across takeover
  std::uint64_t baseline_round_ = 0;  ///< round of the pre-fork baseline ckpt
  VirtualTime last_gvt_ = kTimeZero;
  std::uint64_t last_total_events_ = 0;
  std::uint32_t stall_rounds_ = 0;
  std::uint32_t rounds_since_ckpt_ = 0;
  VirtualTime last_ckpt_gvt_ = kTimeZero;
  bool deadlocked_ = false;
  bool transport_failed_ = false;
  bool stopping_ = false;
  bool failed_ = false;
  std::vector<DrainVote> votes_;
  std::uint32_t cur_pass_ = 0;
  bool collecting_ = false;  ///< a drain pass is awaiting votes
  std::int64_t last_round_ms_ = 0;
  std::vector<bool> recover_done_;

  // Fault tolerance.
  std::vector<bool> retired_;  ///< rank is dead and recovered-around
  std::vector<bool> dead_pending_;
  std::uint32_t recoveries_ = 0;
  CheckpointStore store_;
  CheckpointStats ckstats_;
  std::map<std::uint64_t, CkptAssembly> pending_ck_;
  /// Per-rank local ring of OWN fault-injector cursors per checkpoint
  /// round: recovery resets the channel layer outright (epoch filtering
  /// handles staleness) but must rewind the chaos RNGs for determinism.
  std::map<std::uint64_t, std::vector<FaultLinkCheckpoint>> fault_ring_;
  std::vector<std::vector<Event>> commit_buf_;  ///< per LP, owning rank only
  std::vector<double> lp_work_;  ///< work scores for orphan placement
  /// Coordinator: assembled-but-not-yet-released commit batches per round,
  /// released to the supervisor once every other live successor acked the
  /// round (succ_ack_ tracks the cumulative per-rank ack frontier).
  std::map<std::uint64_t, std::vector<std::vector<Event>>> unreleased_;
  std::vector<std::uint64_t> succ_ack_;
  /// Successor: commit batches of the checkpoints this rank assembled,
  /// kept so a promotion can re-emit them (the supervisor dedups by round).
  std::map<std::uint64_t, std::vector<std::vector<Event>>> retained_batches_;
  std::optional<RecoveryError> recovery_error_;
  std::optional<ConfigError> config_error_;
  std::optional<TransportError> remote_transport_error_;

  // Termination collection (final coordinator).
  std::vector<bool> stats_got_;
  std::vector<LpStats> final_lp_stats_;
  std::vector<bool> final_lp_got_;
  std::vector<WorkerStats> final_worker_stats_;
  TransportCounters remote_transport_;
  std::vector<obs::MetricsSnapshot> rank_snapshots_;
  std::vector<bool> rank_snapshot_got_;
  std::vector<DeadlockReport::LpDiag> remote_diag_;
  std::vector<std::vector<Event>> final_commits_;

  obs::MetricsRegistry metrics_{1};

  // Child processes and result pipes (supervisor only; `pipe_w_` is the
  // forked rank's own write end).
  std::vector<int> pids_;
  std::vector<bool> reaped_;
  std::vector<int> pipe_r_;
  int pipe_w_ = -1;

  // Watchdog-visible progress (updated with relaxed atomics via helpers).
  std::int64_t dump_gvt_pt_ = 0;
  std::int64_t dump_gvt_lt_ = 0;
  std::uint64_t dump_rounds_ = 0;
  std::uint64_t dump_events_ = 0;
  std::uint64_t dump_recoveries_ = 0;
};

}  // namespace vsim::pdes
