// Timestamped events exchanged between logical processes.
#pragma once

#include <cstdint>

#include "common/logic.h"
#include "common/virtual_time.h"

namespace vsim::pdes {

/// Identifies a logical process within one simulation.
using LpId = std::uint32_t;
inline constexpr LpId kInvalidLp = static_cast<LpId>(-1);

/// Globally unique id of a *send*; anti-messages carry the uid of the
/// positive message they cancel.  Encoded as (source LP << 24 | sequence),
/// sequence counters are per-LP and never roll back.
using EventUid = std::uint64_t;

/// Application payload.  The PDES layer treats it as opaque data; the VHDL
/// kernel uses `port` for driver/port indices, `scalar` for delays and
/// wait-epoch guards, and `bits` for signal values.
struct Payload {
  std::int32_t port = -1;
  std::int64_t scalar = 0;
  LogicVector bits;
};

struct Event {
  VirtualTime ts;
  LpId src = kInvalidLp;
  LpId dst = kInvalidLp;
  /// Clustered graphs (pdes/cluster.h): the flat model LP inside the fused
  /// ClusterLp `dst` that this event is really addressed to.  kInvalidLp for
  /// flat graphs and protocol messages; routing, rollback and cancellation
  /// all key on `dst` alone and never inspect this field.
  LpId sub = kInvalidLp;
  EventUid uid = 0;
  std::int16_t kind = 0;      ///< application-defined discriminator
  bool negative = false;      ///< anti-message (Time Warp cancellation)
  Payload payload;
};

/// The model-level destination of `ev`: the inner flat LP when the event is
/// addressed into a fused cluster, otherwise the runtime destination itself.
/// Observers that match on model identity (e.g. the trace monitor) must use
/// this instead of `ev.dst` so they see through clustering.
[[nodiscard]] inline LpId inner_dst(const Event& ev) {
  return ev.sub == kInvalidLp ? ev.dst : ev.sub;
}

/// Trace flow id of a message send: the event uid disambiguated by polarity,
/// so a positive message and the anti-message that chases it draw as two
/// distinct arrows.  Unique per remote send (uids are never reused; a
/// re-execution re-sends under a fresh uid).
[[nodiscard]] inline std::uint64_t trace_flow_id(const Event& ev) {
  return (ev.uid << 1) | (ev.negative ? 1u : 0u);
}

/// Strict weak order used by pending queues: primary key is the virtual
/// time; uid breaks ties deterministically (the protocol is free to process
/// equal-timestamp events in arbitrary order -- see DESIGN.md -- but a
/// deterministic container order keeps runs reproducible).
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.uid < b.uid;
  }
};

}  // namespace vsim::pdes
