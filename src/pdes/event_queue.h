// Hot-path pending-event queue: binary min-heap + lazy-deletion index.
//
// LpRuntime used to keep its pending set in an ordered std::set, paying a
// red-black-tree rebalance per insert and a linear uid scan per anti-message
// annihilation.  PendingQueue replaces it with the classic event-list
// layout: a binary heap over EventOrder (ts, uid) for O(log n) push/pop with
// contiguous-memory constants, plus a uid-keyed index so annihilation is an
// O(1) *mark* -- the dead entry stays in the heap and is discarded when it
// surfaces (lazy deletion).
//
// Invariants (see DESIGN.md "Hot-path data structures"):
//  - the heap top is always a live entry: every operation that can kill the
//    minimum (erase_uid, pop_top) prunes dead entries off the top before
//    returning, so top()/min_ts() stay O(1) const reads;
//  - std::set duplicate semantics are preserved: pushing an event whose
//    (ts, uid) matches a live entry is absorbed (returns false) -- transport
//    duplicates of a pending event must execute once;
//  - erase_uid removes the minimal live entry with that uid, matching the
//    old in-order scan when a uid appears at several timestamps (reserved
//    initial-event uids);
//  - sorted_events() yields exactly the live entries in EventOrder -- the
//    same sequence the std::set iterated -- so the portable checkpoint codec
//    (checkpoint.h) is bit-compatible with pre-heap snapshots.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pdes/event.h"

namespace vsim::pdes {

class PendingQueue {
 public:
  /// Inserts a positive event.  Returns false (and drops the event) when a
  /// live entry with the same (ts, uid) already exists.
  bool push(Event ev);

  /// Annihilation: lazily deletes the minimal live entry with `uid`.
  /// Returns false when no live entry carries the uid.
  bool erase_uid(EventUid uid);

  /// Minimal live event.  Precondition: !empty().
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  /// Removes and returns the minimal live event.  Precondition: !empty().
  Event pop_top();

  [[nodiscard]] bool empty() const { return live_total_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_total_; }
  [[nodiscard]] VirtualTime min_ts() const {
    return live_total_ == 0 ? kTimeInf : heap_.front().ts;
  }

  /// Live entries in EventOrder (the old std::set iteration order); used by
  /// checkpoint capture, which requires a deterministic serialisation.
  [[nodiscard]] std::vector<Event> sorted_events() const;

  /// Replaces the contents with `evs` (checkpoint restore).
  void assign(const std::vector<Event>& evs);

  void clear();

  /// Total queue operations (push + pop + erase) since construction; feeds
  /// the `engine.queue_ops` metric.  Monotonic across clear()/assign().
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  /// Per-(uid, ts) occupancy: `live` entries count toward size(), `dead`
  /// entries are annihilated but still physically in the heap.
  struct Slot {
    VirtualTime ts;
    std::uint32_t live = 0;
    std::uint32_t dead = 0;
  };
  /// std::push_heap builds a max-heap; invert EventOrder for a min-heap.
  struct MinOrder {
    bool operator()(const Event& a, const Event& b) const {
      return EventOrder{}(b, a);
    }
  };

  /// Discards dead entries from the heap top until the minimum is live (or
  /// the heap is empty).  Restores the "top is live" invariant.
  void prune_top();
  [[nodiscard]] Slot* find_slot(EventUid uid, VirtualTime ts);
  void release_slot(EventUid uid, VirtualTime ts);

  std::vector<Event> heap_;
  /// uid -> slots; the per-uid vector is almost always length 1 (a uid maps
  /// to one send), so linear scans inside it are constant-time in practice.
  std::unordered_map<EventUid, std::vector<Slot>> index_;
  std::size_t live_total_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace vsim::pdes
