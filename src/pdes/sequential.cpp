#include "pdes/sequential.h"

#include <cassert>

namespace vsim::pdes {
namespace {

class SeqContext final : public SimContext {
 public:
  SeqContext(std::set<Event, EventOrder>& queue, VirtualTime now, LpId self,
             EventUid& seq)
      : queue_(queue), now_(now), self_(self), seq_(seq) {}

  void send(LpId dst, VirtualTime ts, std::int16_t kind,
            Payload payload) override {
    assert(ts >= now_);
    assert(dst != self_ || ts > now_);
    Event ev;
    ev.ts = ts;
    ev.src = self_;
    ev.dst = dst;
    ev.uid = (static_cast<EventUid>(self_) << 40) | (++seq_);
    ev.kind = kind;
    ev.payload = std::move(payload);
    queue_.insert(std::move(ev));
  }

  [[nodiscard]] VirtualTime now() const override { return now_; }
  [[nodiscard]] LpId self() const override { return self_; }

 private:
  std::set<Event, EventOrder>& queue_;
  VirtualTime now_;
  LpId self_;
  EventUid& seq_;
};

}  // namespace

void SequentialEngine::post(Event ev) { queue_.insert(std::move(ev)); }

SequentialEngine::Result SequentialEngine::run(PhysTime until) {
  Result result;
  result.stats.per_lp.resize(graph_.size());
  for (const Event& ev : graph_.initial_events()) queue_.insert(ev);

  while (!queue_.empty()) {
    Event ev = *queue_.begin();
    if (ev.ts.pt > until) break;
    queue_.erase(queue_.begin());

    LogicalProcess& lp = graph_.lp(ev.dst);
    SeqContext ctx(queue_, ev.ts, ev.dst, seq_);
    result.total_cost += lp.event_cost(ev);
    lp.simulate(ev, ctx);

    auto& s = result.stats.per_lp[ev.dst];
    ++s.events_processed;
    ++s.events_committed;
    if (hook_) hook_(ev);
  }
  return result;
}

}  // namespace vsim::pdes
