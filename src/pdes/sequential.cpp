#include "pdes/sequential.h"

#include <cassert>

namespace vsim::pdes {
namespace {

class SeqContext final : public SimContext {
 public:
  SeqContext(std::set<Event, EventOrder>& queue, VirtualTime now, LpId self,
             EventUid& seq)
      : queue_(queue), now_(now), self_(self), seq_(seq) {}

  void send(LpId dst, VirtualTime ts, std::int16_t kind,
            Payload payload, LpId sub) override {
    assert(ts >= now_);
    // Same relaxation as LpRuntime::CollectContext: a sub-carrying self-send
    // is an intra-cluster event between two distinct flat LPs and may keep
    // ts == now().  (The oracle normally runs LP-flat; this path only fires
    // if a clustered graph is handed to the sequential engine directly.)
    assert(dst != self_ || ts > now_ || sub != kInvalidLp);
    Event ev;
    ev.ts = ts;
    ev.src = self_;
    ev.dst = dst;
    ev.sub = sub;
    ev.uid = (static_cast<EventUid>(self_) << 40) | (++seq_);
    ev.kind = kind;
    ev.payload = std::move(payload);
    queue_.insert(std::move(ev));
  }

  [[nodiscard]] VirtualTime now() const override { return now_; }
  [[nodiscard]] LpId self() const override { return self_; }

 private:
  std::set<Event, EventOrder>& queue_;
  VirtualTime now_;
  LpId self_;
  EventUid& seq_;
};

}  // namespace

void SequentialEngine::post(Event ev) { queue_.insert(std::move(ev)); }

SequentialEngine::Result SequentialEngine::run(PhysTime until) {
  Result result;
  result.stats.per_lp.resize(graph_.size());
  for (const Event& ev : graph_.initial_events()) queue_.insert(ev);

  VSIM_TRACE({
    if (trace_ == nullptr) {
      if (obs::Tracer* t = obs::Tracer::from_env()) {
        trace_own_ = t->session("sequential", 1);
        trace_ = trace_own_.get();
      }
    }
    if (trace_ != nullptr) {
      trace_->set_track_name(0, "event loop");
      trace_->set_default_lp_labels(
          [this](std::uint32_t id) { return graph_.lp(id).name(); });
    }
  });

  obs::MetricsShard& shard = metrics_.shard(0);
  while (!queue_.empty()) {
    Event ev = *queue_.begin();
    if (ev.ts.pt > until) break;
    queue_.erase(queue_.begin());

    LogicalProcess& lp = graph_.lp(ev.dst);
    SeqContext ctx(queue_, ev.ts, ev.dst, seq_);
    const double cost = lp.event_cost(ev);
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->complete(0, "execute", to_string(ev.ts.phase()),
                       result.total_cost, cost, ev.dst, "pt",
                       static_cast<std::int64_t>(ev.ts.pt));
    });
    result.total_cost += cost;
    lp.simulate(ev, ctx);

    auto& s = result.stats.per_lp[ev.dst];
    ++s.events_processed;
    ++s.events_committed;
    shard.inc(obs::Metric::kEventsProcessed);
    if (hook_) hook_(ev);
  }
  absorb_run_stats(metrics_, result.stats);
  metrics_.merge();
  result.stats.metrics = metrics_.merged();
  return result;
}

}  // namespace vsim::pdes
