#include "pdes/stats.h"

#include <sstream>

namespace vsim::pdes {

std::string DeadlockReport::str() const {
  std::ostringstream os;
  os << (transport_starvation ? "transport starvation" : "protocol deadlock")
     << " at gvt=" << gvt.str() << "; " << blocked.size()
     << " LP(s) with pending work";
  std::size_t shown = 0;
  for (const LpDiag& d : blocked) {
    if (shown++ == 8) {
      os << " ...";
      break;
    }
    os << "\n  lp " << d.id << ": next_ts=" << d.next_ts.str()
       << " pending=" << d.pending << " mode="
       << (d.mode == SyncMode::kOptimistic ? "optimistic" : "conservative");
    if (d.min_channel_clock != kTimeInf)
      os << " min_channel_clock=" << d.min_channel_clock.str();
  }
  return os.str();
}

}  // namespace vsim::pdes
