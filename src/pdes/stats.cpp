#include "pdes/stats.h"

#include <sstream>

namespace vsim::pdes {

std::string DeadlockReport::str() const {
  std::ostringstream os;
  os << (transport_starvation ? "transport starvation" : "protocol deadlock")
     << " at gvt=" << gvt.str() << "; " << blocked.size()
     << " LP(s) with pending work";
  std::size_t shown = 0;
  for (const LpDiag& d : blocked) {
    if (shown++ == 8) {
      os << " ...";
      break;
    }
    os << "\n  lp " << d.id << ": next_ts=" << d.next_ts.str()
       << " pending=" << d.pending << " mode="
       << (d.mode == SyncMode::kOptimistic ? "optimistic" : "conservative");
    if (d.min_channel_clock != kTimeInf)
      os << " min_channel_clock=" << d.min_channel_clock.str();
  }
  return os.str();
}

void absorb_run_stats(obs::MetricsRegistry& reg, const RunStats& st) {
  using obs::Gauge;
  using obs::Metric;
  obs::MetricsShard& s = reg.shard(0);

  std::uint64_t committed = 0, rollbacks = 0, undone = 0, anti = 0;
  std::uint64_t annihilations = 0, lazy_reuse = 0, lazy_cancel = 0;
  std::uint64_t saves = 0, switches = 0, blocked = 0, ck_undone = 0;
  std::uint64_t queue_ops = 0;
  std::uint64_t demotions = 0, promotions = 0, pins = 0, optimistic = 0;
  std::size_t peak = 0, total_hist = 0;
  for (const LpStats& lp : st.per_lp) {
    committed += lp.events_committed;
    rollbacks += lp.rollbacks;
    undone += lp.events_undone;
    anti += lp.anti_messages_sent;
    annihilations += lp.annihilations;
    lazy_reuse += lp.lazy_reuses;
    lazy_cancel += lp.lazy_cancels;
    saves += lp.state_saves;
    switches += lp.mode_switches;
    blocked += lp.blocked_polls;
    ck_undone += lp.checkpoint_undone;
    queue_ops += lp.queue_ops;
    demotions += lp.adapt_demotions;
    promotions += lp.adapt_promotions;
    pins += lp.adapt_pins;
    optimistic += lp.final_optimistic;
    if (lp.max_history > peak) peak = lp.max_history;
    total_hist += lp.max_history;
  }
  s.inc(Metric::kEventsCommitted, committed);
  s.inc(Metric::kRollbacks, rollbacks);
  s.inc(Metric::kEventsUndone, undone);
  s.inc(Metric::kAntiMessages, anti);
  s.inc(Metric::kAnnihilations, annihilations);
  s.inc(Metric::kLazyReuses, lazy_reuse);
  s.inc(Metric::kLazyCancels, lazy_cancel);
  s.inc(Metric::kStateSaves, saves);
  s.inc(Metric::kModeSwitches, switches);
  s.inc(Metric::kBlockedPolls, blocked);
  s.inc(Metric::kCheckpointUndone, ck_undone);
  s.inc(Metric::kQueueOps, queue_ops);
  s.inc(Metric::kAdaptDemotions, demotions);
  s.inc(Metric::kAdaptPromotions, promotions);
  s.inc(Metric::kAdaptPins, pins);
  if (!st.per_lp.empty()) {
    s.gauge_max(Gauge::kAdaptOptimisticFraction,
                static_cast<double>(optimistic) /
                    static_cast<double>(st.per_lp.size()));
  }
  s.gauge_max(Gauge::kPeakHistory, static_cast<double>(peak));
  s.gauge_max(Gauge::kTotalHistory, static_cast<double>(total_hist));
  s.gauge_max(Gauge::kMakespan, st.makespan);
  s.gauge_max(Gauge::kFtOverhead, st.checkpoint.overhead_cost);

  const TransportCounters& t = st.transport;
  s.inc(Metric::kTransportDataSent, t.data_sent);
  s.inc(Metric::kTransportAcksSent, t.acks_sent);
  s.inc(Metric::kTransportDelivered, t.delivered);
  s.inc(Metric::kTransportDropped, t.dropped);
  s.inc(Metric::kTransportDuplicated, t.duplicated);
  s.inc(Metric::kTransportReordered, t.reordered);
  s.inc(Metric::kTransportRetransmits, t.retransmits);
  s.inc(Metric::kTransportDupDiscarded, t.dup_discarded);
  s.inc(Metric::kTransportBuffered, t.buffered);

  const CheckpointStats& c = st.checkpoint;
  s.inc(Metric::kCheckpoints, c.checkpoints);
  s.inc(Metric::kCrashes, c.crashes);
  s.inc(Metric::kRecoveries, c.recoveries);
  s.inc(Metric::kLpsRestored, c.lps_restored);
  s.inc(Metric::kCheckpointDiskBytes, c.disk_bytes);

  // Work accounted outside any engine run (elaboration-time codegen): fold
  // the process-global totals so RunStats.metrics reports them too.  These
  // are cumulative per process, not per run.
  const obs::MetricsSnapshot g = obs::process_metrics();
  for (std::size_t i = 0; i < g.counters.size(); ++i) {
    if (g.counters[i]) s.inc(static_cast<Metric>(i), g.counters[i]);
  }
  for (std::size_t i = 0; i < g.gauges.size(); ++i) {
    if (g.gauges[i] > 0) s.gauge_max(static_cast<Gauge>(i), g.gauges[i]);
  }
}

}  // namespace vsim::pdes
