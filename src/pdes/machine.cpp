#include "pdes/machine.h"

#include <algorithm>
#include <cassert>

namespace vsim::pdes {

// The machine engine's wire: a latency-stamped arrival in the destination
// worker's mailbox.  Sender-side costs are charged above this layer (router
// for first transmissions, the channel stack's transmit hook for acks and
// retransmits), so the wire itself only models propagation delay.
class MachineEngine::MachineWire final : public Transport {
 public:
  explicit MachineWire(MachineEngine& eng) : eng_(eng) {}

  void submit(Packet&& pkt, double now) override {
    eng_.workers_[pkt.dst].mailbox.push(
        {now + eng_.costs_.msg_latency, ++eng_.arrival_seq_, std::move(pkt)});
  }

 private:
  MachineEngine& eng_;
};

// Routes messages between modelled workers, charging costs to the sender's
// virtual clock.  Local deliveries happen immediately; remote deliveries go
// through the transport stack.
class MachineEngine::MachineRouter final : public Router {
 public:
  explicit MachineRouter(MachineEngine& eng) : eng_(eng) {}

  void route(Event&& ev) override {
    const std::uint32_t owner = eng_.partition_[ev.dst];
    Worker& from = eng_.workers_[eng_.current_worker_];
    if (owner == eng_.current_worker_) {
      from.clock += eng_.costs_.msg_local;
      ++from.stats.messages_sent_local;
      eng_.deliver(from, std::move(ev));
    } else {
      from.clock += ev.kind == kNullMsgKind ? eng_.costs_.null_msg
                                            : eng_.costs_.msg_remote_send;
      if (ev.kind == kNullMsgKind) ++from.stats.null_messages;
      else ++from.stats.messages_sent_remote;
      eng_.net_->send(static_cast<std::uint32_t>(eng_.current_worker_), owner,
                      std::move(ev), from.clock);
    }
  }

  void commit(const Event& ev) override {
    if (eng_.hook_) eng_.hook_(ev);
  }

 private:
  MachineEngine& eng_;
};

MachineEngine::MachineEngine(LpGraph& graph, Partition partition,
                             RunConfig config, MachineCosts costs)
    : graph_(graph),
      partition_(std::move(partition)),
      config_(config),
      costs_(costs) {
  assert(partition_.size() == graph_.size());
  lps_.reserve(graph_.size());
  key_.assign(graph_.size(), kTimeInf);
  last_promise_.assign(graph_.size(), kTimeZero);
  workers_.resize(config_.num_workers);
  for (LpId id = 0; id < graph_.size(); ++id) {
    lps_.emplace_back(&graph_.lp(id), config_.ordering, config_.strategy,
                      initial_mode(config_.configuration, graph_.lp(id)),
                      config_.max_history, config_.use_lookahead,
                      config_.cancellation);
    if (config_.strategy == ConservativeStrategy::kNullMessage) {
      for (LpId src : graph_.fan_in(id)) lps_[id].add_input_channel(src);
    }
    const std::uint32_t w = partition_[id];
    assert(w < workers_.size());
    workers_[w].owned.push_back(id);
    workers_[w].ready.insert({kTimeInf, id});
  }

  // Assemble the transport stack bottom-up: wire -> (faults) -> channel.
  wire_ = std::make_unique<MachineWire>(*this);
  Transport* top = wire_.get();
  if (config_.transport.faults.active()) {
    faulty_ = std::make_unique<FaultyTransport>(*wire_, config_.num_workers,
                                                config_.transport.faults);
    top = faulty_.get();
  }
  net_ = std::make_unique<ChannelStack>(*top, config_.num_workers,
                                        config_.transport);
  if (faulty_) net_->attach_faulty(faulty_.get());
  net_->set_deliver([this](std::uint32_t w, Event&& ev) {
    deliver(workers_[w], std::move(ev));
  });
  // Acks and retransmissions are billed to the emitting worker's virtual
  // clock, so fault recovery shows up in the makespan / speedup curves.
  net_->set_transmit_hook(
      [this](std::uint32_t w, Packet::Kind kind, bool /*retransmit*/) {
        workers_[w].clock += kind == Packet::Kind::kAck
                                 ? costs_.ack
                                 : costs_.msg_remote_send;
      });
}

MachineEngine::~MachineEngine() = default;

void MachineEngine::refresh_key(LpId lp) {
  Worker& w = workers_[partition_[lp]];
  const VirtualTime k = lps_[lp].next_ts();
  if (k == key_[lp]) return;
  w.ready.erase({key_[lp], lp});
  key_[lp] = k;
  w.ready.insert({k, lp});
}

void MachineEngine::deliver(Worker& w, Event ev) {
  w.stats.busy_cost += costs_.recv_cost;
  const LpId dst = ev.dst;
  const bool is_null = ev.kind == kNullMsgKind;
  MachineRouter router(*this);
  lps_[dst].enqueue(std::move(ev), router);
  refresh_key(dst);
  // A null message can raise this LP's own promise; propagate downstream.
  if (is_null && config_.strategy == ConservativeStrategy::kNullMessage)
    send_null_messages_for(dst);
}

void MachineEngine::send_null_messages_for(LpId lp) {
  const VirtualTime promise = lps_[lp].null_promise();
  if (!(promise > last_promise_[lp])) return;
  last_promise_[lp] = promise;
  MachineRouter router(*this);
  const std::size_t saved = current_worker_;
  current_worker_ = partition_[lp];
  for (LpId dst : graph_.fan_out(lp)) {
    Event n;
    n.ts = promise;
    n.src = lp;
    n.dst = dst;
    n.kind = kNullMsgKind;
    router.route(std::move(n));
  }
  current_worker_ = saved;
}

bool MachineEngine::step(std::size_t wi) {
  current_worker_ = wi;
  Worker& w = workers_[wi];

  // Deliver all messages that have arrived by now.
  bool delivered = false;
  while (!w.mailbox.empty() && w.mailbox.top().when <= w.clock) {
    Packet pkt = w.mailbox.top().pkt;
    w.mailbox.pop();
    w.clock += costs_.recv_cost;
    net_->on_wire_delivery(std::move(pkt), w.clock);
    delivered = true;
  }
  // Reliable layer: retransmit in-flight packets whose timeout expired.
  net_->poll(static_cast<std::uint32_t>(wi), w.clock);

  // Pick the lowest-timestamp eligible LP.  Copy the entry out of the
  // iterator: processing can route messages back to this very LP (e.g. an
  // anti-message cascade), whose refresh_key() would invalidate the node
  // a structured-binding reference points into.
  for (auto it = w.ready.begin(); it != w.ready.end(); ++it) {
    const VirtualTime ts = it->first;
    const LpId lp = it->second;
    if (ts == kTimeInf) break;
    if (ts.pt > config_.until) break;  // later keys are even larger
    const Eligibility e = lps_[lp].peek(safe_bound_, config_.until);
    if (e == Eligibility::kBlocked) {
      lps_[lp].note_blocked();
      continue;
    }
    if (e == Eligibility::kIdle) continue;
    // Process one event.
    MachineRouter router(*this);
    const bool optimistic = lps_[lp].mode() == SyncMode::kOptimistic;
    const double cost = lps_[lp].process_next(router);
    w.clock += cost + (optimistic ? costs_.state_save : 0.0);
    w.stats.busy_cost += cost;
    ++w.stats.events;
    ++w.events_since_round;
    refresh_key(lp);
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(lp);
    return true;
  }
  if (delivered) return true;

  // Nothing eligible: advance to the next mailbox arrival if any.
  if (!w.mailbox.empty()) {
    w.clock = std::max(w.clock, w.mailbox.top().when);
    return true;
  }
  return false;  // stalled until the next synchronisation round
}

VirtualTime MachineEngine::sync_round() {
  ++gvt_rounds_;
  // Flush the network to quiescence.  One drain pass is NOT enough under a
  // lossy transport: a dropped packet only reappears when the reliable
  // layer retransmits it, so the round alternates "drain every mailbox"
  // with "flush held/unacked packets" until a full pass moves nothing.
  double max_arrival = 0.0;
  for (;;) {
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
        current_worker_ = wi;
        Worker& w = workers_[wi];
        while (!w.mailbox.empty()) {
          max_arrival = std::max(max_arrival, w.mailbox.top().when);
          Packet pkt = w.mailbox.top().pkt;
          w.mailbox.pop();
          net_->on_wire_delivery(std::move(pkt), w.clock);
          any = true;
        }
      }
    }
    std::size_t flushed = 0;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      current_worker_ = wi;
      flushed += net_->flush(static_cast<std::uint32_t>(wi),
                             workers_[wi].clock);
    }
    if (flushed == 0) break;  // quiescent (or the channel gave up: error set)
  }
  if (net_->error()) transport_failed_ = true;

  double round_clock = max_arrival;
  for (const Worker& w : workers_) round_clock = std::max(round_clock, w.clock);
  round_clock += costs_.gvt_cost;
  for (Worker& w : workers_) {
    w.clock = round_clock;
    w.events_since_round = 0;
  }

  VirtualTime gvt = kTimeInf;
  for (const VirtualTime& k : key_) gvt = std::min(gvt, k);

  MachineRouter router(*this);
  for (LpId id = 0; id < lps_.size(); ++id) {
    current_worker_ = partition_[id];
    lps_[id].fossil_collect(gvt, router);
    if (config_.configuration == Configuration::kDynamic)
      adapt_lp(lps_[id], config_.adapt);
    else
      lps_[id].reset_window();
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(id);
  }
  safe_bound_ = gvt;
  return gvt;
}

RunStats MachineEngine::run() {
  // Seed initial events (free: part of model construction, not simulation).
  for (const Event& ev : graph_.initial_events()) {
    current_worker_ = partition_[ev.dst];
    Event copy = ev;
    MachineRouter router(*this);
    lps_[ev.dst].enqueue(std::move(copy), router);
    refresh_key(ev.dst);
  }

  VirtualTime gvt = sync_round();
  VirtualTime last_gvt = gvt;
  std::uint64_t last_total_events = 0;
  std::uint32_t stall_rounds = 0;

  while (gvt != kTimeInf && gvt.pt <= config_.until && !deadlocked_ &&
         !transport_failed_) {
    // Run workers, lowest virtual clock first, until a round is due.
    bool round_due = false;
    while (!round_due) {
      for (const Worker& w : workers_) {
        if (w.events_since_round >= config_.gvt_interval) {
          round_due = true;
          break;
        }
      }
      if (round_due) break;

      // Try workers in virtual-clock order until one advances.
      bool progressed = false;
      std::vector<std::size_t> order(workers_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return workers_[a].clock < workers_[b].clock;
      });
      for (std::size_t wi : order) {
        if (step(wi)) {
          progressed = true;
          break;
        }
      }
      if (!progressed) {
        round_due = true;  // everyone stalled: synchronise
      }
    }

    gvt = sync_round();

    std::uint64_t total_events = 0;
    for (const Worker& w : workers_) total_events += w.stats.events;
    if (gvt == last_gvt && total_events == last_total_events &&
        gvt != kTimeInf && gvt.pt <= config_.until) {
      if (++stall_rounds >= config_.deadlock_rounds) deadlocked_ = true;
    } else {
      stall_rounds = 0;
    }
    last_gvt = gvt;
    last_total_events = total_events;
  }

  RunStats out;
  out.transport = net_->counters();
  if (auto err = net_->error()) {
    out.transport_error = std::move(err);
  } else if (!config_.transport.reliable && out.transport.dropped > 0) {
    // A lossy run without reliable delivery may terminate "normally" with
    // events silently missing; surface that as a structured error so the
    // caller can never mistake the result for a trustworthy one.
    TransportError err;
    err.message = "packets were dropped without reliable delivery; "
                  "committed traces are not trustworthy";
    out.transport_error = std::move(err);
  }
  if (deadlocked_) out.deadlock_report = build_deadlock_report();

  // Commit everything that was processed.
  MachineRouter router(*this);
  for (LpId id = 0; id < lps_.size(); ++id) {
    current_worker_ = partition_[id];
    lps_[id].fossil_collect(kTimeInf, router);
  }

  out.per_lp.reserve(lps_.size());
  for (const LpRuntime& rt : lps_) out.per_lp.push_back(rt.stats());
  out.per_worker.reserve(workers_.size());
  double makespan = 0.0;
  for (Worker& w : workers_) {
    w.stats.final_clock = w.clock;
    makespan = std::max(makespan, w.clock);
    out.per_worker.push_back(w.stats);
  }
  out.gvt_rounds = gvt_rounds_;
  out.deadlocked = deadlocked_;
  out.makespan = makespan;
  return out;
}

DeadlockReport MachineEngine::build_deadlock_report() {
  DeadlockReport report;
  report.gvt = safe_bound_;
  report.transport_starvation =
      !config_.transport.reliable && net_->counters().dropped > 0;
  for (LpId id = 0; id < lps_.size(); ++id) {
    LpRuntime& rt = lps_[id];
    if (!rt.has_pending()) continue;
    report.blocked.push_back({id, rt.next_ts(), rt.min_channel_clock(),
                              rt.pending_count(), rt.mode()});
  }
  return report;
}

}  // namespace vsim::pdes
