#include "pdes/machine.h"

#include <algorithm>
#include <cassert>

#include "partition/rebalance.h"

namespace vsim::pdes {

// The machine engine's wire: a latency-stamped arrival in the destination
// worker's mailbox.  Sender-side costs are charged above this layer (router
// for first transmissions, the channel stack's transmit hook for acks and
// retransmits), so the wire itself only models propagation delay.
class MachineEngine::MachineWire final : public Transport {
 public:
  explicit MachineWire(MachineEngine& eng) : eng_(eng) {}

  void submit(Packet&& pkt, double now) override {
    eng_.workers_[pkt.dst].mailbox.push(
        {now + eng_.costs_.msg_latency, ++eng_.arrival_seq_, std::move(pkt)});
  }

 private:
  MachineEngine& eng_;
};

// Routes messages between modelled workers, charging costs to the sender's
// virtual clock.  Local deliveries happen immediately; remote deliveries go
// through the transport stack.
class MachineEngine::MachineRouter final : public Router {
 public:
  explicit MachineRouter(MachineEngine& eng) : eng_(eng) {}

  void route(Event&& ev) override {
    const std::uint32_t owner = eng_.partition_[ev.dst];
    Worker& from = eng_.workers_[eng_.current_worker_];
    if (owner == eng_.current_worker_) {
      from.clock += eng_.costs_.msg_local;
      ++from.stats.messages_sent_local;
      eng_.metrics_.shard(eng_.current_worker_).inc(obs::Metric::kMessagesLocal);
      eng_.deliver(from, std::move(ev));
    } else {
      const bool is_null = ev.kind == kNullMsgKind;
      const double cost =
          is_null ? eng_.costs_.null_msg : eng_.costs_.msg_remote_send;
      from.clock += cost;
      if (is_null) {
        ++from.stats.null_messages;
        eng_.metrics_.shard(eng_.current_worker_)
            .inc(obs::Metric::kNullMessages);
      } else {
        ++from.stats.messages_sent_remote;
        eng_.metrics_.shard(eng_.current_worker_)
            .inc(obs::Metric::kMessagesRemote);
      }
      VSIM_TRACE(if (eng_.trace_ != nullptr) {
        const char* name =
            is_null ? "send-null" : (ev.negative ? "send-anti" : "send");
        eng_.trace_->complete(eng_.current_worker_, "net", name,
                              from.clock - cost, cost, ev.src);
        // Null messages share uid 0, so only data/anti sends get flow arrows.
        if (!is_null)
          eng_.trace_->flow_out(eng_.current_worker_, trace_flow_id(ev),
                                from.clock - cost / 2);
      });
      eng_.net_->send(static_cast<std::uint32_t>(eng_.current_worker_), owner,
                      std::move(ev), from.clock);
    }
  }

  void commit(const Event& ev) override {
    if (!eng_.hook_) return;
    // Output commit: under fault tolerance the hook only fires once the
    // commit is covered by a checkpoint (or the run terminated), so a
    // recovery never replays an already-reported event.
    if (eng_.ft_on_) eng_.commit_buf_[ev.dst].push_back(ev);
    else eng_.hook_(ev);
  }

 private:
  MachineEngine& eng_;
};

MachineEngine::MachineEngine(LpGraph& graph, Partition partition,
                             RunConfig config, MachineCosts costs)
    : graph_(graph),
      partition_(std::move(partition)),
      config_(config),
      costs_(costs) {
  config_error_ = validate(config_);
  if (config_error_) return;  // run() refuses to start; nothing to build
  assert(partition_.size() == graph_.size());
  lps_.reserve(graph_.size());
  key_.assign(graph_.size(), kTimeInf);
  last_promise_.assign(graph_.size(), kTimeZero);
  lb_events_base_.assign(graph_.size(), 0);
  lb_undone_base_.assign(graph_.size(), 0);
  workers_.resize(config_.num_workers);
  for (LpId id = 0; id < graph_.size(); ++id) {
    lps_.emplace_back(&graph_.lp(id), config_.ordering, config_.strategy,
                      initial_mode(config_.configuration, graph_.lp(id)),
                      config_.max_history, config_.use_lookahead,
                      config_.cancellation);
    if (config_.strategy == ConservativeStrategy::kNullMessage) {
      for (LpId src : graph_.fan_in(id)) lps_[id].add_input_channel(src);
    }
    const std::uint32_t w = partition_[id];
    assert(w < workers_.size());
    workers_[w].owned.push_back(id);
    workers_[w].ready.insert({kTimeInf, id});
  }

  // Assemble the transport stack bottom-up: wire -> (faults) -> channel.
  wire_ = std::make_unique<MachineWire>(*this);
  Transport* top = wire_.get();
  if (config_.transport.faults.active()) {
    faulty_ = std::make_unique<FaultyTransport>(*wire_, config_.num_workers,
                                                config_.transport.faults);
    top = faulty_.get();
  }
  net_ = std::make_unique<ChannelStack>(*top, config_.num_workers,
                                        config_.transport);
  if (faulty_) net_->attach_faulty(faulty_.get());
  net_->set_deliver([this](std::uint32_t w, Event&& ev) {
    VSIM_TRACE(if (trace_ != nullptr && ev.kind != kNullMsgKind) {
      trace_->instant(w, "net", ev.negative ? "recv-anti" : "recv",
                      workers_[w].clock, ev.dst);
      trace_->flow_in(w, trace_flow_id(ev), workers_[w].clock);
    });
    deliver(workers_[w], std::move(ev));
  });
  // Acks and retransmissions are billed to the emitting worker's virtual
  // clock, so fault recovery shows up in the makespan / speedup curves.
  net_->set_transmit_hook(
      [this](std::uint32_t w, Packet::Kind kind, bool /*retransmit*/) {
        workers_[w].clock += kind == Packet::Kind::kAck
                                 ? costs_.ack
                                 : costs_.msg_remote_send;
      });

  // Fault tolerance: enabled by periodic checkpointing or by any scheduled
  // crash (crashes force at least the initial snapshot, so recovery always
  // has something to fall back to).
  ft_on_ = config_.checkpoint.period > 0 ||
           config_.transport.faults.crash_active();
  crashed_.assign(config_.num_workers, false);
  retired_.assign(config_.num_workers, false);
  missed_heartbeats_.assign(config_.num_workers, 0);
  crash_rng_.resize(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    // Distinct stream from the link-fault RNGs (0x10001 multiplier there).
    crash_rng_[w] = splitmix64(config_.transport.faults.seed * 0x20003 + w + 1);
    if (crash_rng_[w] == 0) crash_rng_[w] = 1;
  }
  commit_buf_.resize(graph_.size());
  store_ = CheckpointStore(config_.checkpoint.keep, config_.checkpoint.spill_dir);

  metrics_ = obs::MetricsRegistry(config_.num_workers);
  VSIM_TRACE({
    trace_ = config_.trace;
    if (trace_ == nullptr) {
      if (obs::Tracer* t = obs::Tracer::from_env()) {
        trace_own_ = t->session("machine", config_.num_workers);
        trace_ = trace_own_.get();
      }
    }
    if (trace_ != nullptr) {
      trace_->set_default_lp_labels(
          [this](std::uint32_t id) { return graph_.lp(id).name(); });
    }
  });
}

MachineEngine::~MachineEngine() = default;

void MachineEngine::refresh_key(LpId lp) {
  Worker& w = workers_[partition_[lp]];
  const VirtualTime k = lps_[lp].next_ts();
  if (k == key_[lp]) return;
  w.ready.erase({key_[lp], lp});
  key_[lp] = k;
  w.ready.insert({k, lp});
}

void MachineEngine::deliver(Worker& w, Event ev) {
  w.stats.busy_cost += costs_.recv_cost;
  const LpId dst = ev.dst;
  const bool is_null = ev.kind == kNullMsgKind;
  // Straggler detection: enqueue() is the only entry point that can trigger
  // a rollback, so counter deltas around it give the per-episode depth
  // without touching the LpRuntime hot path.
  const std::uint64_t rb0 = lps_[dst].stats().rollbacks;
  const std::uint64_t un0 = lps_[dst].stats().events_undone;
  MachineRouter router(*this);
  lps_[dst].enqueue(std::move(ev), router);
  if (lps_[dst].stats().rollbacks != rb0) {
    const std::uint64_t undone = lps_[dst].stats().events_undone - un0;
    metrics_.shard(partition_[dst])
        .observe(obs::Hist::kRollbackDepth, static_cast<double>(undone));
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->instant(partition_[dst], "tw", "rollback", w.clock, dst,
                      "undone", static_cast<std::int64_t>(undone));
    });
  }
  refresh_key(dst);
  // A null message can raise this LP's own promise; propagate downstream.
  if (is_null && config_.strategy == ConservativeStrategy::kNullMessage)
    send_null_messages_for(dst);
}

void MachineEngine::send_null_messages_for(LpId lp) {
  const VirtualTime promise = lps_[lp].null_promise();
  if (!(promise > last_promise_[lp])) return;
  last_promise_[lp] = promise;
  MachineRouter router(*this);
  const std::size_t saved = current_worker_;
  current_worker_ = partition_[lp];
  for (LpId dst : graph_.fan_out(lp)) {
    Event n;
    n.ts = promise;
    n.src = lp;
    n.dst = dst;
    n.kind = kNullMsgKind;
    router.route(std::move(n));
  }
  current_worker_ = saved;
}

bool MachineEngine::any_crashed() const {
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (crashed_[w] && !retired_[w]) return true;
  return false;
}

bool MachineEngine::maybe_crash(std::size_t wi) {
  const FaultPlan& plan = config_.transport.faults;
  Worker& w = workers_[wi];
  bool die = false;
  // Explicit schedule: cumulative event counters never rewind (recovery
  // keeps statistics), so an exact match fires at most once.
  for (const WorkerCrash& c : plan.crashes)
    if (c.worker == wi && c.after_events == w.stats.events) die = true;
  // Seeded per-event failure probability.  The RNG cursor advances on every
  // processed event and is never restored from a checkpoint: a crash that
  // replays into the identical pre-crash state must not re-fire forever.
  if (plan.crash_rate > 0 &&
      xorshift_uniform(crash_rng_[wi]) < plan.crash_rate && !die)
    die = true;
  if (!die) return false;
  crashed_[wi] = true;
  ++ckstats_.crashes;
  VSIM_TRACE(if (trace_ != nullptr) {
    trace_->instant(wi, "ckpt", "crash", w.clock);
  });
  return true;
}

bool MachineEngine::step(std::size_t wi) {
  if (ft_on_ && worker_dead(wi)) return false;
  current_worker_ = wi;
  Worker& w = workers_[wi];

  // Deliver all messages that have arrived by now.  The matured set drains
  // as one batch per step -- the machine-model analogue of the threaded
  // engine's batch-drained inbox -- and feeds the same batch metrics.
  std::uint64_t batch = 0;
  while (!w.mailbox.empty() && w.mailbox.top().when <= w.clock) {
    Packet pkt = w.mailbox.top().pkt;
    w.mailbox.pop();
    w.clock += costs_.recv_cost;
    net_->on_wire_delivery(std::move(pkt), w.clock);
    ++batch;
  }
  const bool delivered = batch > 0;
  if (delivered) {
    metrics_.shard(wi).inc(obs::Metric::kMailboxBatches);
    metrics_.shard(wi).observe(obs::Hist::kBatchSize,
                               static_cast<double>(batch));
    // One cumulative ack per link for the whole matured batch.
    net_->flush_acks(static_cast<std::uint32_t>(wi), w.clock);
  }
  // Reliable layer: retransmit in-flight packets whose timeout expired.
  net_->poll(static_cast<std::uint32_t>(wi), w.clock);

  // Pick the lowest-timestamp eligible LP.  Copy the entry out of the
  // iterator: processing can route messages back to this very LP (e.g. an
  // anti-message cascade), whose refresh_key() would invalidate the node
  // a structured-binding reference points into.
  for (auto it = w.ready.begin(); it != w.ready.end(); ++it) {
    const VirtualTime ts = it->first;
    const LpId lp = it->second;
    if (ts == kTimeInf) break;
    if (ts.pt > config_.until) break;  // later keys are even larger
    const Eligibility e = lps_[lp].peek(safe_bound_, config_.until);
    if (e == Eligibility::kBlocked) {
      lps_[lp].note_blocked();
      continue;
    }
    if (e == Eligibility::kIdle) continue;
    // Process one event.
    MachineRouter router(*this);
    const bool optimistic = lps_[lp].mode() == SyncMode::kOptimistic;
    const double exec_start = w.clock;
    const double cost = lps_[lp].process_next(router);
    w.clock += cost + (optimistic ? costs_.state_save : 0.0);
    w.stats.busy_cost += cost;
    ++w.stats.events;
    ++w.events_since_round;
    metrics_.shard(wi).inc(obs::Metric::kEventsProcessed);
    VSIM_TRACE(if (trace_ != nullptr) {
      // Named by delta-cycle phase (lt mod 3); nested send/rollback records
      // were emitted by the router while the event executed.
      trace_->complete(wi, "execute", to_string(ts.phase()), exec_start,
                       w.clock - exec_start, lp, "pt",
                       static_cast<std::int64_t>(ts.pt));
    });
    refresh_key(lp);
    if (ft_on_ && maybe_crash(wi)) return true;  // crash-stop: worker is gone
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(lp);
    return true;
  }
  if (delivered) return true;

  // Nothing eligible: advance to the next mailbox arrival if any.
  if (!w.mailbox.empty()) {
    w.clock = std::max(w.clock, w.mailbox.top().when);
    return true;
  }
  return false;  // stalled until the next synchronisation round
}

VirtualTime MachineEngine::sync_round() {
  ++gvt_rounds_;
  metrics_.shard(0).inc(obs::Metric::kGvtRounds);
  if (ft_on_ && config_.checkpoint.period > 0) ++rounds_since_ckpt_;

  // Crash detection + recovery happen at round ENTRY, before the drain:
  // in-flight traffic to a dead worker can never be acknowledged, so
  // draining first would only burn the retransmission budget (which is
  // exactly what happens -- deliberately -- when heartbeat_rounds delays
  // the declaration past the retry cap).
  if (ft_on_ && !detect_and_recover()) return safe_bound_;
  const bool crash_pending = ft_on_ && any_crashed();

  // Per-worker round-entry clocks: each survivor gets a "gvt" span from here
  // to the synchronised round clock (recorded after recovery so the spans
  // stay disjoint from the "recovery" ones).
  std::vector<double> gvt_entry;
  VSIM_TRACE(if (trace_ != nullptr) {
    gvt_entry.resize(workers_.size());
    for (std::size_t wi = 0; wi < workers_.size(); ++wi)
      gvt_entry[wi] = workers_[wi].clock;
  });

  // Flush the network to quiescence.  One drain pass is NOT enough under a
  // lossy transport: a dropped packet only reappears when the reliable
  // layer retransmits it, so the round alternates "drain every mailbox"
  // with "flush held/unacked packets" until a full pass moves nothing.
  // Dead workers are skipped: their mailbox contents are lost with them.
  double max_arrival = 0.0;
  for (;;) {
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
        if (ft_on_ && worker_dead(wi)) continue;
        current_worker_ = wi;
        Worker& w = workers_[wi];
        while (!w.mailbox.empty()) {
          max_arrival = std::max(max_arrival, w.mailbox.top().when);
          Packet pkt = w.mailbox.top().pkt;
          w.mailbox.pop();
          net_->on_wire_delivery(std::move(pkt), w.clock);
          any = true;
        }
        // Acks owed for the drained batch go out before the next pass, or
        // the senders' in-flight lists would never settle and the flush
        // phase below would force-retransmit forever.
        if (net_->flush_acks(static_cast<std::uint32_t>(wi), w.clock) > 0)
          any = true;
      }
    }
    std::size_t flushed = 0;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      if (ft_on_ && worker_dead(wi)) continue;
      current_worker_ = wi;
      flushed += net_->flush(static_cast<std::uint32_t>(wi),
                             workers_[wi].clock);
    }
    if (flushed == 0) break;  // quiescent (or the channel gave up: error set)
  }
  if (net_->error()) transport_failed_ = true;

  double round_clock = max_arrival;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    if (ft_on_ && worker_dead(wi)) continue;
    round_clock = std::max(round_clock, workers_[wi].clock);
  }
  round_clock += costs_.gvt_cost;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    if (!(ft_on_ && worker_dead(wi))) workers_[wi].clock = round_clock;
    workers_[wi].events_since_round = 0;
  }
  VSIM_TRACE(if (trace_ != nullptr) {
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      if (ft_on_ && worker_dead(wi)) continue;
      trace_->complete(wi, "gvt", "gvt", gvt_entry[wi],
                       round_clock - gvt_entry[wi], obs::kNoTraceLp, "round",
                       static_cast<std::int64_t>(gvt_rounds_));
    }
  });

  // Hierarchical GVT: each worker's ordered ready set already holds its
  // owned LPs keyed by minimal pending timestamp, so the local minimum is
  // its first entry and the global reduction touches one candidate per
  // worker -- O(P) per round instead of the old O(LP) scan over key_, which
  // is what keeps rounds cheap at 100k+ fused cluster LPs.  A dead worker's
  // set is frozen at its crash-time keys (nothing updates it after death),
  // which keeps the GVT (and hence every survivor-side commit) below the
  // frontier the upcoming recovery will rewind to or replay over.
  VirtualTime gvt = kTimeInf;
  for (const Worker& w : workers_) {
    if (!w.ready.empty()) gvt = std::min(gvt, w.ready.begin()->first);
  }
  metrics_.shard(0).inc(obs::Metric::kGvtScanItems, workers_.size());

  MachineRouter router(*this);
  for (LpId id = 0; id < lps_.size(); ++id) {
    current_worker_ = partition_[id];
    lps_[id].fossil_collect(gvt, router);
  }

  // Periodic capture is additionally gated on GVT progress: capturing at an
  // unadvanced frontier would re-undo the same speculative suffix whose
  // re-execution then eats the next round's event budget -- with a short
  // period that pins GVT at the checkpoint forever.  The counter is left
  // accumulated so the capture retries on the first round that advances.
  if (!crash_pending && !transport_failed_ && config_.checkpoint.period > 0 &&
      rounds_since_ckpt_ >= config_.checkpoint.period && gvt != kTimeInf &&
      gvt.pt <= config_.until && gvt > last_ckpt_gvt_) {
    rounds_since_ckpt_ = 0;
    last_ckpt_gvt_ = gvt;
    take_checkpoint(gvt);
  }

  // The machine model sweeps every LP in one deterministic pass, so the
  // whole engine is one adaptation scope: the demotion budget drains in LP
  // id order regardless of placement.
  AdaptController adapt(config_.adapt, config_.num_workers);
  adapt.begin_round(lps_.size());
  for (LpId id = 0; id < lps_.size(); ++id) {
    if (ft_on_ && worker_dead(partition_[id])) continue;
    current_worker_ = partition_[id];
    if (config_.configuration == Configuration::kDynamic) {
      const AdaptDecision d = adapt.adapt(lps_[id]);
      if (d.action == AdaptAction::kDeferred)
        metrics_.shard(current_worker_).inc(obs::Metric::kAdaptDeferrals);
      VSIM_TRACE(if (trace_ != nullptr && d.action != AdaptAction::kNone) {
        trace_->instant(current_worker_, "adapt", to_string(d.action),
                        workers_[current_worker_].clock, id, "waste_pct",
                        static_cast<std::int64_t>(d.waste_rate * 100.0));
      });
    } else {
      lps_[id].reset_window();
    }
    if (config_.strategy == ConservativeStrategy::kNullMessage)
      send_null_messages_for(id);
  }

  // Dynamic load balancing, last: the network is quiescent (drained above),
  // fossil collection already freed history below the new GVT, and nothing
  // runs between here and the workers resuming, so ownership can change
  // hands with no packet in flight addressed by the old mapping.  Skipped
  // with a crash pending (recovery owns the partition then) and at the
  // final round (gvt == inf: nothing left to balance).
  if (!crash_pending && !transport_failed_ && gvt != kTimeInf &&
      gvt.pt <= config_.until) {
    maybe_rebalance();
  }

  safe_bound_ = gvt;
  metrics_.merge();  // every shard is quiescent inside the round
  return gvt;
}

void MachineEngine::maybe_rebalance() {
  if (!config_.rebalance.enabled()) return;
  if (++rounds_since_rebalance_ < config_.rebalance.period) return;
  rounds_since_rebalance_ = 0;

  // Per-LP work over the window since the previous rebalance: retained
  // events count fully, undone (rolled-back) work at rollback_weight --
  // a thrashing LP still loads its worker, just less usefully.
  std::vector<double> work(lps_.size(), 0.0);
  for (LpId id = 0; id < lps_.size(); ++id) {
    const LpStats& s = lps_[id].stats();
    const double ev =
        static_cast<double>(s.events_processed - lb_events_base_[id]);
    const double un = static_cast<double>(s.events_undone - lb_undone_base_[id]);
    work[id] = std::max(ev - un, 0.0) + config_.rebalance.rollback_weight * un;
    lb_events_base_[id] = s.events_processed;
    lb_undone_base_[id] = s.events_undone;
  }
  std::vector<bool> alive(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    alive[w] = !(ft_on_ && worker_dead(w));

  const partition::RebalancePlan plan = partition::plan_rebalance(
      graph_, partition_, work, alive, config_.rebalance);
  metrics_.shard(0).gauge_max(obs::Gauge::kLbImbalance, plan.imbalance_before);
  metrics_.shard(0).inc(obs::Metric::kRebalanceRounds);
  if (plan.empty()) return;

  for (const partition::Migration& mv : plan.moves) {
    Worker& src = workers_[mv.from];
    Worker& dst = workers_[mv.to];
    src.ready.erase({key_[mv.lp], mv.lp});
    src.owned.erase(std::find(src.owned.begin(), src.owned.end(), mv.lp));
    // Pack through the checkpoint codec: speculation is undone with
    // deferred cancellation (no anti-messages, network stays quiescent; the
    // deterministic re-execution settles the deferred sends as suppressed
    // resends), then the committed frontier is snapshotted and reinstated
    // under the new owner.
    lps_[mv.lp].rollback_all_deferred();
    const LpCheckpoint ck = lps_[mv.lp].make_checkpoint();
    partition_[mv.lp] = mv.to;
    lps_[mv.lp].restore_from(ck);
    key_[mv.lp] = lps_[mv.lp].next_ts();
    dst.owned.push_back(mv.lp);
    dst.ready.insert({key_[mv.lp], mv.lp});
    // The sender pays a checkpoint write, the receiver a state reload.
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->complete(mv.from, "lb", "migrate-out", src.clock,
                       costs_.checkpoint_per_lp, mv.lp);
      trace_->complete(mv.to, "lb", "migrate-in", dst.clock,
                       costs_.restore_per_lp, mv.lp);
    });
    src.clock += costs_.checkpoint_per_lp;
    dst.clock += costs_.restore_per_lp;
    metrics_.shard(mv.from).inc(obs::Metric::kMigrations);
  }
}

bool MachineEngine::detect_and_recover() {
  bool any = false;
  bool due = false;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!crashed_[w] || retired_[w]) continue;
    any = true;
    if (++missed_heartbeats_[w] >= config_.checkpoint.heartbeat_rounds)
      due = true;
  }
  if (!any || !due) return true;
  // One dead worker reached the heartbeat budget: declare every currently
  // crashed worker dead and run a single recovery episode for all of them.
  return recover();
}

bool MachineEngine::recover() {
  std::uint32_t first_dead = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (crashed_[w] && !retired_[w]) {
      first_dead = static_cast<std::uint32_t>(w);
      break;
    }
  }
  const auto fail = [&](std::string message) {
    recovery_error_ =
        RecoveryError{first_dead, gvt_rounds_, recoveries_, std::move(message)};
    failed_ = true;
    return false;
  };
  if (recoveries_ >= config_.checkpoint.max_recoveries)
    return fail("recovery budget exhausted (max_recoveries)");
  const Checkpoint* ck = store_.latest();
  if (ck == nullptr) return fail("no checkpoint available");

  if (config_.checkpoint.policy == RecoveryPolicy::kRedistribute) {
    for (std::size_t w = 0; w < workers_.size(); ++w)
      if (crashed_[w] && !retired_[w]) retired_[w] = true;
    std::vector<bool> alive(workers_.size());
    bool any_alive = false;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      alive[w] = !retired_[w];
      any_alive = any_alive || alive[w];
    }
    if (!any_alive)
      return fail("no surviving worker to redistribute LPs to");
    // Load- and cut-aware orphan placement, shared with the dynamic
    // rebalancer (it replaced the old round-robin scattering): each orphan
    // goes to the least-loaded survivor, preferring channel neighbours.
    std::vector<double> work(lps_.size(), 0.0);
    for (LpId id = 0; id < lps_.size(); ++id) {
      const LpStats& s = lps_[id].stats();
      work[id] = static_cast<double>(
          s.events_processed - std::min(s.events_processed, s.events_undone));
    }
    partition::redistribute_orphans(graph_, partition_, work, alive,
                                    config_.rebalance);
  } else {
    // Restart in place: the lost worker comes back empty and reloads its
    // original partition from the checkpoint, like everyone else.
    for (std::size_t w = 0; w < workers_.size(); ++w)
      if (crashed_[w]) crashed_[w] = false;
  }
  ++recoveries_;
  ++ckstats_.recoveries;

  restore_checkpoint(*ck, lps_, last_promise_, *net_, faulty_.get());
  ckstats_.lps_restored += lps_.size();
  for (Worker& w : workers_) {
    w.mailbox = {};  // in-flight packets belong to the abandoned timeline
    w.events_since_round = 0;
    w.owned.clear();
    w.ready.clear();
  }
  for (LpId id = 0; id < lps_.size(); ++id) {
    key_[id] = lps_[id].next_ts();
    Worker& w = workers_[partition_[id]];
    w.owned.push_back(id);
    w.ready.insert({key_[id], id});
  }
  safe_bound_ = ck->gvt;
  last_ckpt_gvt_ = ck->gvt;  // next periodic capture must advance past this
  for (auto& buf : commit_buf_) buf.clear();
  for (auto& h : missed_heartbeats_) h = 0;

  // Charge detection latency + state reload to every surviving clock.
  double base = 0.0;
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (!worker_dead(w)) base = std::max(base, workers_[w].clock);
  base += costs_.crash_detect * config_.checkpoint.heartbeat_rounds;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (worker_dead(w)) continue;
    const double after = base + costs_.restore_per_lp *
                                    static_cast<double>(workers_[w].owned.size());
    VSIM_TRACE(if (trace_ != nullptr) {
      trace_->complete(w, "ckpt", "recovery", workers_[w].clock,
                       after - workers_[w].clock);
    });
    ckstats_.overhead_cost += after - workers_[w].clock;
    workers_[w].clock = after;
  }
  return true;
}

void MachineEngine::take_checkpoint(VirtualTime gvt) {
  // Undo all speculation with deferred cancellation: no anti-messages are
  // emitted, so the network stays quiescent and no receiver observes the
  // capture; deterministic re-execution settles the deferred sends as
  // suppressed resends.
  for (LpId id = 0; id < lps_.size(); ++id) {
    if (lps_[id].rollback_all_deferred() > 0) refresh_key(id);
  }
  Checkpoint ck = capture_checkpoint(gvt_rounds_, gvt, lps_, last_promise_,
                                     *net_, faulty_.get());
  ++ckstats_.checkpoints;
  // The snapshot covers everything committed so far: release the buffered
  // commit-hook invocations (recovery can only rewind to this line or later).
  flush_commits();
  store_.put(std::move(ck));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (worker_dead(w)) continue;
    const double c = costs_.checkpoint_per_lp *
                     static_cast<double>(workers_[w].owned.size());
    VSIM_TRACE(if (trace_ != nullptr && c > 0) {
      trace_->complete(w, "ckpt", "checkpoint", workers_[w].clock, c);
    });
    workers_[w].clock += c;
    ckstats_.overhead_cost += c;
  }
}

void MachineEngine::flush_commits() {
  if (!hook_) return;
  for (auto& buf : commit_buf_) {
    for (const Event& ev : buf) hook_(ev);
    buf.clear();
  }
}

RunStats MachineEngine::run() {
  if (config_error_) {
    RunStats out;
    out.config_error = config_error_;
    return out;
  }

  // Seed initial events (free: part of model construction, not simulation).
  for (const Event& ev : graph_.initial_events()) {
    current_worker_ = partition_[ev.dst];
    Event copy = ev;
    MachineRouter router(*this);
    lps_[ev.dst].enqueue(std::move(copy), router);
    refresh_key(ev.dst);
  }

  if (ft_on_) {
    // Round-zero baseline: recovery always has a line to rewind to, even
    // when the first crash precedes the first periodic checkpoint.
    store_.put(capture_checkpoint(0, kTimeZero, lps_, last_promise_, *net_,
                                  faulty_.get()));
    ++ckstats_.checkpoints;
  }

  VirtualTime gvt = sync_round();
  VirtualTime last_gvt = gvt;
  std::uint64_t last_total_events = 0;
  std::uint32_t stall_rounds = 0;

  while (gvt != kTimeInf && gvt.pt <= config_.until && !deadlocked_ &&
         !transport_failed_ && !failed_) {
    // Run workers, lowest virtual clock first, until a round is due.
    bool round_due = false;
    while (!round_due) {
      for (const Worker& w : workers_) {
        if (w.events_since_round >= config_.gvt_interval) {
          round_due = true;
          break;
        }
      }
      if (round_due) break;

      // Try workers in virtual-clock order until one advances.
      bool progressed = false;
      std::vector<std::size_t> order(workers_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return workers_[a].clock < workers_[b].clock;
      });
      for (std::size_t wi : order) {
        if (step(wi)) {
          progressed = true;
          break;
        }
      }
      if (!progressed) {
        round_due = true;  // everyone stalled: synchronise
      }
    }

    gvt = sync_round();

    std::uint64_t total_events = 0;
    for (const Worker& w : workers_) total_events += w.stats.events;
    if (gvt == last_gvt && total_events == last_total_events &&
        gvt != kTimeInf && gvt.pt <= config_.until) {
      if (++stall_rounds >= config_.deadlock_rounds) deadlocked_ = true;
    } else {
      stall_rounds = 0;
    }
    last_gvt = gvt;
    last_total_events = total_events;
  }

  RunStats out;
  out.transport = net_->counters();
  if (auto err = net_->error()) {
    out.transport_error = std::move(err);
  } else if (!config_.transport.reliable && out.transport.dropped > 0) {
    // A lossy run without reliable delivery may terminate "normally" with
    // events silently missing; surface that as a structured error so the
    // caller can never mistake the result for a trustworthy one.
    TransportError err;
    err.message = "packets were dropped without reliable delivery; "
                  "committed traces are not trustworthy";
    out.transport_error = std::move(err);
  }
  if (deadlocked_) out.deadlock_report = build_deadlock_report();

  // Commit everything that was processed.  With fault tolerance on, a run
  // that aborted on an unrecoverable failure must NOT commit past the last
  // checkpoint: the speculative suffix was never validated by a GVT round.
  if (!failed_) {
    MachineRouter router(*this);
    for (LpId id = 0; id < lps_.size(); ++id) {
      current_worker_ = partition_[id];
      lps_[id].fossil_collect(kTimeInf, router);
    }
  }
  flush_commits();

  out.per_lp.reserve(lps_.size());
  for (const LpRuntime& rt : lps_) out.per_lp.push_back(rt.stats());
  out.per_worker.reserve(workers_.size());
  double makespan = 0.0;
  for (Worker& w : workers_) {
    w.stats.final_clock = w.clock;
    makespan = std::max(makespan, w.clock);
    out.per_worker.push_back(w.stats);
  }
  out.gvt_rounds = gvt_rounds_;
  out.deadlocked = deadlocked_;
  out.makespan = makespan;
  out.checkpoint = ckstats_;
  out.checkpoint.disk_bytes = store_.disk_bytes();
  out.recovery_error = recovery_error_;
  absorb_run_stats(metrics_, out);
  metrics_.merge();
  out.metrics = metrics_.merged();
  return out;
}

DeadlockReport MachineEngine::build_deadlock_report() {
  DeadlockReport report;
  report.gvt = safe_bound_;
  report.transport_starvation =
      !config_.transport.reliable && net_->counters().dropped > 0;
  for (LpId id = 0; id < lps_.size(); ++id) {
    LpRuntime& rt = lps_[id];
    if (!rt.has_pending()) continue;
    report.blocked.push_back({id, rt.next_ts(), rt.min_channel_clock(),
                              rt.pending_count(), rt.mode()});
  }
  return report;
}

}  // namespace vsim::pdes
