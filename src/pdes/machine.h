// Deterministic machine-model engine.
//
// Simulates the *parallel simulator itself*: P virtual workers, each with a
// virtual wall clock, exchanging messages with configurable latencies and
// synchronising at GVT rounds.  Every protocol action (event execution,
// state saving, rollback, anti-messages, null messages, barriers) is charged
// to the owning worker's clock; the run's makespan is the maximum final
// clock, and speedup(P) = sequential cost / makespan.
//
// Rationale (see DESIGN.md): the paper measured wall-clock speedups on a
// 16-processor SGI Challenge.  This container has a single core, where
// wall-clock measurements of a threaded run would reflect scheduler noise
// rather than algorithmic parallelism.  The machine model executes the
// identical protocol logic (same LpRuntime code as the threaded engine) and
// measures the critical path deterministically, which preserves the *shape*
// of the paper's figures: who wins, how close to linear, and where the
// configurations diverge.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdes/adaptive.h"
#include "pdes/checkpoint.h"
#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/lp_runtime.h"
#include "pdes/stats.h"
#include "pdes/transport.h"

namespace vsim::pdes {

/// Work-unit costs of the modelled machine.  The absolute values are
/// arbitrary; ratios are chosen so that protocol overheads are visible but
/// do not dominate (comparable to per-event costs measured on 1990s
/// shared-memory multiprocessors).
struct MachineCosts {
  double state_save = 0.4;       ///< Time Warp snapshot, per event
  double rollback_fixed = 1.0;   ///< per rollback occurrence
  double undo_per_event = 0.6;   ///< per undone event (incl. anti-message)
  double msg_local = 0.05;       ///< send to an LP on the same worker
  double msg_remote_send = 0.3;  ///< sender-side cost of a remote send
  double msg_latency = 2.0;      ///< delay until a remote message arrives
  double recv_cost = 0.05;       ///< receiver-side handling per message
  double null_msg = 0.15;        ///< per null message (sender side)
  double gvt_cost = 4.0;         ///< per worker per synchronisation round
  double ack = 0.1;              ///< reliable-channel ack emission (sender side)
  double checkpoint_per_lp = 0.5;  ///< snapshot write, per owned LP
  double restore_per_lp = 0.8;     ///< recovery reload, per owned LP
  double crash_detect = 12.0;      ///< failure-detection latency, per missed
                                   ///< heartbeat round
};

/// Maps each LP to a worker; produced by the partition module.
using Partition = std::vector<std::uint32_t>;

class MachineEngine {
 public:
  using CommitHook = std::function<void(const Event&)>;

  MachineEngine(LpGraph& graph, Partition partition, RunConfig config,
                MachineCosts costs = {});
  ~MachineEngine();  // out-of-line: MachineWire is an incomplete type here

  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Runs to completion (or deadlock); returns statistics incl. makespan.
  RunStats run();

  /// Current LP->worker mapping.  With dynamic rebalancing or redistribute
  /// recovery this differs from the constructor argument; benches read it
  /// after run() to score the final placement (cut size).
  [[nodiscard]] const Partition& partition() const { return partition_; }

 private:
  struct Arrival {
    double when;
    std::uint64_t seq;
    Packet pkt;
    friend bool operator>(const Arrival& a, const Arrival& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct Worker {
    double clock = 0.0;
    std::vector<LpId> owned;
    /// Owned LPs keyed by their minimal pending timestamp.
    std::set<std::pair<VirtualTime, LpId>> ready;
    std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> mailbox;
    std::uint64_t events_since_round = 0;
    WorkerStats stats;
  };

  class MachineRouter;
  class MachineWire;  // the bottom of the transport stack: latency-stamped
                      // arrivals pushed into the destination's mailbox

  void deliver(Worker& w, Event ev);
  [[nodiscard]] DeadlockReport build_deadlock_report();
  void refresh_key(LpId lp);
  /// True while worker `w` is crashed or permanently retired.
  [[nodiscard]] bool worker_dead(std::size_t w) const {
    return crashed_[w] || retired_[w];
  }
  [[nodiscard]] bool any_crashed() const;
  /// Crash-stop injection, evaluated after every processed event; returns
  /// true when worker `wi` just died.
  bool maybe_crash(std::size_t wi);
  /// Heartbeat accounting at round entry; runs recovery once the budget is
  /// reached.  Returns false when recovery itself failed (run must abort).
  bool detect_and_recover();
  bool recover();
  /// Takes a GVT-consistent checkpoint of the current state (speculation is
  /// undone in place via rollback-all-deferred first).
  void take_checkpoint(VirtualTime gvt);
  /// Releases buffered commit-hook invocations in LP-id order.
  void flush_commits();
  /// One scheduling turn for worker `w`: deliver due messages, then process
  /// the first eligible event.  Returns false if the worker cannot advance
  /// without a synchronisation round.
  bool step(std::size_t w);
  /// Dynamic load balancing (partition/rebalance.h), evaluated inside
  /// sync_round() while the network is quiescent: scores the placement from
  /// the per-LP work since the previous rebalance and migrates a bounded set
  /// of LPs, packing each one through the checkpoint codec.
  void maybe_rebalance();
  /// Global synchronisation: barrier, drain, compute GVT, fossil collect,
  /// adapt modes, emit null promises.  Returns the new GVT.
  VirtualTime sync_round();
  /// Emits null messages to `lp`'s fan-out if its promise increased.
  void send_null_messages_for(LpId lp);

  LpGraph& graph_;
  Partition partition_;
  RunConfig config_;
  MachineCosts costs_;
  CommitHook hook_;

  std::vector<LpRuntime> lps_;
  std::vector<VirtualTime> key_;  ///< cached ready-set key per LP
  std::vector<Worker> workers_;
  std::vector<VirtualTime> last_promise_;  ///< last null promise per LP
  VirtualTime safe_bound_ = kTimeZero;
  std::uint64_t arrival_seq_ = 0;
  std::uint64_t gvt_rounds_ = 0;
  // Dynamic load balancing: rounds since the last rebalance attempt, and
  // per-LP counter snapshots so each attempt scores only the work of the
  // window since the previous one (cumulative totals would anchor the score
  // to stale early-run behaviour).
  std::uint32_t rounds_since_rebalance_ = 0;
  std::vector<std::uint64_t> lb_events_base_;
  std::vector<std::uint64_t> lb_undone_base_;
  bool deadlocked_ = false;
  bool transport_failed_ = false;
  std::size_t current_worker_ = 0;

  // Observability: one metrics shard per modelled worker, merged at GVT
  // rounds; optional trace session (config-provided or $VSIM_TRACE global).
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceSession> trace_own_;  ///< env-created sessions
  obs::TraceSession* trace_ = nullptr;

  // Fault tolerance (checkpoint/restart + crash-stop injection).
  bool ft_on_ = false;  ///< checkpointing or crash schedules enabled
  std::vector<bool> crashed_;   ///< dead, recovery still outstanding
  std::vector<bool> retired_;   ///< permanently removed (redistribute policy)
  std::vector<std::uint32_t> missed_heartbeats_;
  std::vector<std::uint64_t> crash_rng_;  ///< never restored from checkpoints
  std::uint32_t recoveries_ = 0;
  std::uint32_t rounds_since_ckpt_ = 0;
  /// GVT of the newest stored checkpoint.  Periodic capture requires the
  /// frontier to have ADVANCED past this: a same-GVT checkpoint is redundant
  /// (the store already holds this frontier) and, worse, re-rolling back the
  /// speculative suffix every round can consume the whole next round's event
  /// budget on re-execution, pinning GVT forever (livelock at period=1).
  VirtualTime last_ckpt_gvt_ = kTimeZero;
  bool failed_ = false;  ///< recovery gave up; unwind with recovery_error_
  CheckpointStore store_;
  CheckpointStats ckstats_;
  /// Output commit: with fault tolerance on, commit-hook invocations are
  /// buffered per LP and released at checkpoints/termination, so a recovery
  /// can discard the uncommitted suffix instead of double-reporting it.
  std::vector<std::vector<Event>> commit_buf_;
  std::optional<RecoveryError> recovery_error_;
  std::optional<ConfigError> config_error_;

  // Transport stack, bottom-up: wire -> (faults) -> channel layer.
  std::unique_ptr<MachineWire> wire_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<ChannelStack> net_;
};

}  // namespace vsim::pdes
