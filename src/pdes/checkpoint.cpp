#include "pdes/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "pdes/lp_runtime.h"

namespace vsim::pdes {

std::string RecoveryError::str() const {
  std::ostringstream os;
  os << "recovery error after crash of worker " << worker << " at GVT round "
     << round << " (" << recoveries_used << " recoveries used): " << message;
  return os.str();
}

// ---- binary codec ----
//
// Little-endian, versioned, built on the shared common/bytes.h primitives.
// Only the portable section is encoded here: LpState snapshots travel
// separately (LogicalProcess::encode_state) when a consumer -- the
// distributed engine's checkpoint shipping -- needs them as bytes, so a
// disk checkpoint complements, never replaces, the in-memory one.

namespace {

constexpr std::uint8_t kMagic[4] = {'V', 'C', 'K', 'P'};
// v2: appends per-LP state blobs (so a file can revive a fresh process) and
// a trailing CRC32 over everything before it (so torn spills are detectable
// by content, not just by decode luck).  v3: events carry the clustering
// sub-destination (Event::sub).  Older files are not readable; nothing
// durable outlives a run of the version that wrote it.
constexpr std::uint32_t kVersion = 3;

}  // namespace

void encode_event(bytes::Writer& w, const Event& ev) {
  w.vt(ev.ts);
  w.u32(ev.src);
  w.u32(ev.dst);
  w.u32(ev.sub);
  w.u64(ev.uid);
  w.u16(static_cast<std::uint16_t>(ev.kind));
  w.u8(ev.negative ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(ev.payload.port));
  w.i64(ev.payload.scalar);
  w.lv(ev.payload.bits);
}

Event decode_event(bytes::Reader& r) {
  Event ev;
  ev.ts = r.vt();
  ev.src = r.u32();
  ev.dst = r.u32();
  ev.sub = r.u32();
  ev.uid = r.u64();
  ev.kind = static_cast<std::int16_t>(r.u16());
  ev.negative = r.u8() != 0;
  ev.payload.port = static_cast<std::int32_t>(r.u32());
  ev.payload.scalar = r.i64();
  ev.payload.bits = r.lv();
  return ev;
}

void encode_lp_checkpoint(bytes::Writer& w, const LpCheckpoint& lp) {
  w.u8(static_cast<std::uint8_t>(lp.mode));
  w.u8(lp.pinned_conservative ? 1 : 0);
  w.vt(lp.committed_ts);
  w.u64(lp.send_seq);
  w.u64(lp.pending.size());
  for (const Event& ev : lp.pending) encode_event(w, ev);
  w.u64(lp.pending_negatives.size());
  for (EventUid uid : lp.pending_negatives) w.u64(uid);
  w.u64(lp.lazy.size());
  for (const auto& [gen_uid, ev] : lp.lazy) {
    w.u64(gen_uid);
    encode_event(w, ev);
  }
  w.u64(lp.in_clocks.size());
  for (const auto& [src, clock] : lp.in_clocks) {
    w.u32(src);
    w.vt(clock);
  }
}

bool decode_lp_checkpoint(bytes::Reader& r, LpCheckpoint* out) {
  assert(out != nullptr);
  LpCheckpoint lp;
  lp.mode = static_cast<SyncMode>(r.u8());
  lp.pinned_conservative = r.u8() != 0;
  lp.committed_ts = r.vt();
  lp.send_seq = r.u64();
  const std::uint64_t npend = r.u64();
  if (!r.ok() || npend > r.remaining()) return false;
  lp.pending.reserve(static_cast<std::size_t>(npend));
  for (std::uint64_t i = 0; i < npend && r.ok(); ++i)
    lp.pending.push_back(decode_event(r));
  const std::uint64_t nneg = r.u64();
  if (!r.ok() || nneg > r.remaining()) return false;
  lp.pending_negatives.reserve(static_cast<std::size_t>(nneg));
  for (std::uint64_t i = 0; i < nneg && r.ok(); ++i)
    lp.pending_negatives.push_back(r.u64());
  const std::uint64_t nlazy = r.u64();
  if (!r.ok() || nlazy > r.remaining()) return false;
  lp.lazy.reserve(static_cast<std::size_t>(nlazy));
  for (std::uint64_t i = 0; i < nlazy && r.ok(); ++i) {
    const EventUid gen = r.u64();
    lp.lazy.emplace_back(gen, decode_event(r));
  }
  const std::uint64_t nclk = r.u64();
  if (!r.ok() || nclk > r.remaining()) return false;
  lp.in_clocks.reserve(static_cast<std::size_t>(nclk));
  for (std::uint64_t i = 0; i < nclk && r.ok(); ++i) {
    const LpId src = r.u32();
    lp.in_clocks.emplace_back(src, r.vt());
  }
  if (!r.ok()) return false;
  *out = std::move(lp);
  return true;
}

std::vector<std::uint8_t> CheckpointStore::encode_portable(
    const Checkpoint& ck) {
  std::vector<std::uint8_t> buf;
  bytes::Writer w(buf);
  for (std::uint8_t m : kMagic) w.u8(m);
  w.u32(kVersion);
  w.u64(ck.round);
  w.vt(ck.gvt);
  w.u64(ck.lps.size());
  for (const LpCheckpoint& lp : ck.lps) encode_lp_checkpoint(w, lp);
  w.u64(ck.last_promise.size());
  for (const VirtualTime& t : ck.last_promise) w.vt(t);
  w.u64(ck.links.size());
  for (const LinkCheckpoint& l : ck.links) {
    w.u64(l.next_seq);
    w.u64(l.expected);
  }
  w.u64(ck.fault_links.size());
  for (const FaultLinkCheckpoint& l : ck.fault_links) {
    w.u64(l.rng);
    w.u32(l.blackout_left);
  }
  w.u64(ck.state_blobs.size());
  for (const std::vector<std::uint8_t>& b : ck.state_blobs) w.blob(b);
  w.u32(common::crc32(buf.data(), buf.size()));
  return buf;
}

bool CheckpointStore::decode_portable(const std::vector<std::uint8_t>& buf,
                                      Checkpoint* out) {
  assert(out != nullptr);
  // Checksum first: a torn or bit-flipped file must fail here, before any
  // structural parsing gets a chance to "succeed" on garbage.
  if (buf.size() < sizeof(kMagic) + 2 * sizeof(std::uint32_t)) return false;
  const std::size_t body = buf.size() - sizeof(std::uint32_t);
  std::uint32_t want = 0;
  for (int i = 3; i >= 0; --i) want = (want << 8) | buf[body + i];
  if (common::crc32(buf.data(), body) != want) return false;
  bytes::Reader r(buf.data(), body);
  for (std::uint8_t m : kMagic)
    if (r.u8() != m) return false;
  if (r.u32() != kVersion) return false;
  Checkpoint ck;
  ck.round = r.u64();
  ck.gvt = r.vt();
  const std::uint64_t nlps = r.u64();
  if (!r.ok() || nlps > buf.size()) return false;  // cheap sanity bound
  ck.lps.resize(static_cast<std::size_t>(nlps));
  for (LpCheckpoint& lp : ck.lps)
    if (!decode_lp_checkpoint(r, &lp)) return false;
  const std::uint64_t nprom = r.u64();
  if (!r.ok() || nprom > buf.size()) return false;
  ck.last_promise.reserve(static_cast<std::size_t>(nprom));
  for (std::uint64_t i = 0; i < nprom && r.ok(); ++i)
    ck.last_promise.push_back(r.vt());
  const std::uint64_t nlinks = r.u64();
  if (!r.ok() || nlinks > buf.size()) return false;
  ck.links.resize(static_cast<std::size_t>(nlinks));
  for (LinkCheckpoint& l : ck.links) {
    l.next_seq = r.u64();
    l.expected = r.u64();
  }
  const std::uint64_t nfault = r.u64();
  if (!r.ok() || nfault > buf.size()) return false;
  ck.fault_links.resize(static_cast<std::size_t>(nfault));
  for (FaultLinkCheckpoint& l : ck.fault_links) {
    l.rng = r.u64();
    l.blackout_left = r.u32();
  }
  const std::uint64_t nblobs = r.u64();
  if (!r.ok() || nblobs > buf.size()) return false;
  ck.state_blobs.reserve(static_cast<std::size_t>(nblobs));
  for (std::uint64_t i = 0; i < nblobs && r.ok(); ++i)
    ck.state_blobs.push_back(r.blob());
  if (!r.exhausted()) return false;  // no trailing garbage before the crc
  *out = std::move(ck);
  return true;
}

// ---- CheckpointStore ----

CheckpointStore::CheckpointStore(std::size_t keep, std::string spill_dir)
    : keep_(keep == 0 ? 1 : keep), spill_dir_(std::move(spill_dir)) {}

void CheckpointStore::put(Checkpoint&& ck) {
  if (!spill_dir_.empty()) spill(ck);
  ring_.push_back(std::move(ck));
  while (ring_.size() > keep_) ring_.erase(ring_.begin());
}

const Checkpoint* CheckpointStore::latest() const {
  return ring_.empty() ? nullptr : &ring_.back();
}

void CheckpointStore::spill(const Checkpoint& ck) {
  namespace fs = std::filesystem;
  const std::vector<std::uint8_t> blob = encode_portable(ck);
  std::error_code ec;
  fs::create_directories(spill_dir_, ec);
  const fs::path path =
      fs::path(spill_dir_) / ("ckpt-" + std::to_string(ck.round) + ".bin");
  // Atomic spill: write to a private temp name, fsync the data, rename onto
  // the final name, fsync the directory.  A crash at any point leaves either
  // the old file, no file, or a stray *.tmp.* (which the restart scan
  // ignores) -- never a half-written ckpt-N.bin under its real name.  The
  // temp name carries the pid so concurrent spills of the same round by
  // different ranks into a shared dir cannot collide.
  const fs::path tmp = fs::path(spill_dir_) /
                       ("ckpt-" + std::to_string(ck.round) + ".bin.tmp." +
                        std::to_string(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (!io_error_) io_error_ = "failed to open " + tmp.string();
    return;
  }
  std::size_t off = 0;
  while (off < blob.size()) {
    const ::ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  const bool synced = off == blob.size() && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    if (!io_error_) io_error_ = "failed to write " + path.string();
    return;
  }
  const int dfd = ::open(spill_dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  // Read-back verification: the file on disk must decode to a checkpoint
  // that re-encodes byte-identically, else the spill is useless for
  // recovery and we say so now instead of at restart time.
  std::ifstream is(path, std::ios::binary);
  std::vector<std::uint8_t> back((std::istreambuf_iterator<char>(is)),
                                 std::istreambuf_iterator<char>());
  Checkpoint decoded;
  if (back != blob || !decode_portable(back, &decoded) ||
      encode_portable(decoded) != blob) {
    if (!io_error_) io_error_ = "read-back verification failed for " + path.string();
    return;
  }
  disk_bytes_ += blob.size();
}

void CheckpointStore::drop_above(std::uint64_t round) {
  while (!ring_.empty() && ring_.back().round > round) ring_.pop_back();
  if (spill_dir_.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(spill_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() < 10 || name.substr(name.size() - 4) != ".bin") continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long r = std::strtoull(name.c_str() + 5, &end, 10);
    if (errno != 0 || end == nullptr || std::string(end) != ".bin") continue;
    if (r > round) fs::remove(entry.path(), ec);
  }
}

std::optional<Checkpoint> CheckpointStore::load_newest_valid(
    const std::string& dir, std::uint64_t* skipped) {
  namespace fs = std::filesystem;
  if (skipped != nullptr) *skipped = 0;
  // Collect candidates newest-round-first so the common case reads one file.
  std::vector<std::pair<std::uint64_t, fs::path>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() < 10 || name.substr(name.size() - 4) != ".bin") continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long r = std::strtoull(name.c_str() + 5, &end, 10);
    if (errno != 0 || end == nullptr || std::string(end) != ".bin") continue;
    files.emplace_back(static_cast<std::uint64_t>(r), entry.path());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [round, path] : files) {
    std::ifstream is(path, std::ios::binary);
    std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
    Checkpoint ck;
    if (is.bad() || !decode_portable(buf, &ck) || ck.round != round) {
      std::fprintf(stderr,
                   "[vsim] skipping corrupt or torn checkpoint %s\n",
                   path.string().c_str());
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    return ck;
  }
  return std::nullopt;
}

// ---- capture / restore ----

Checkpoint capture_checkpoint(std::uint64_t round, VirtualTime gvt,
                              std::vector<LpRuntime>& lps,
                              const std::vector<VirtualTime>& last_promise,
                              const ChannelStack& net,
                              const FaultyTransport* faulty) {
  assert(net.quiescent() && "checkpoints require a drained network");
  Checkpoint ck;
  ck.round = round;
  ck.gvt = gvt;
  ck.lps.reserve(lps.size());
  for (LpRuntime& rt : lps) ck.lps.push_back(rt.make_checkpoint());
  ck.last_promise = last_promise;
  ck.links = net.capture_links();
  if (faulty != nullptr) ck.fault_links = faulty->capture_links();
  return ck;
}

void restore_checkpoint(const Checkpoint& ck, std::vector<LpRuntime>& lps,
                        std::vector<VirtualTime>& last_promise,
                        ChannelStack& net, FaultyTransport* faulty) {
  assert(ck.lps.size() == lps.size());
  for (std::size_t i = 0; i < lps.size(); ++i) lps[i].restore_from(ck.lps[i]);
  last_promise = ck.last_promise;
  net.restore_links(ck.links);
  if (faulty != nullptr) faulty->restore_links(ck.fault_links);
}

}  // namespace vsim::pdes
