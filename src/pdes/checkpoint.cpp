#include "pdes/checkpoint.h"

#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pdes/lp_runtime.h"

namespace vsim::pdes {

std::string RecoveryError::str() const {
  std::ostringstream os;
  os << "recovery error after crash of worker " << worker << " at GVT round "
     << round << " (" << recoveries_used << " recoveries used): " << message;
  return os.str();
}

// ---- binary codec ----
//
// Little-endian, versioned, built on the shared common/bytes.h primitives.
// Only the portable section is encoded here: LpState snapshots travel
// separately (LogicalProcess::encode_state) when a consumer -- the
// distributed engine's checkpoint shipping -- needs them as bytes, so a
// disk checkpoint complements, never replaces, the in-memory one.

namespace {

constexpr std::uint8_t kMagic[4] = {'V', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void encode_event(bytes::Writer& w, const Event& ev) {
  w.vt(ev.ts);
  w.u32(ev.src);
  w.u32(ev.dst);
  w.u64(ev.uid);
  w.u16(static_cast<std::uint16_t>(ev.kind));
  w.u8(ev.negative ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(ev.payload.port));
  w.i64(ev.payload.scalar);
  w.lv(ev.payload.bits);
}

Event decode_event(bytes::Reader& r) {
  Event ev;
  ev.ts = r.vt();
  ev.src = r.u32();
  ev.dst = r.u32();
  ev.uid = r.u64();
  ev.kind = static_cast<std::int16_t>(r.u16());
  ev.negative = r.u8() != 0;
  ev.payload.port = static_cast<std::int32_t>(r.u32());
  ev.payload.scalar = r.i64();
  ev.payload.bits = r.lv();
  return ev;
}

void encode_lp_checkpoint(bytes::Writer& w, const LpCheckpoint& lp) {
  w.u8(static_cast<std::uint8_t>(lp.mode));
  w.u8(lp.pinned_conservative ? 1 : 0);
  w.vt(lp.committed_ts);
  w.u64(lp.send_seq);
  w.u64(lp.pending.size());
  for (const Event& ev : lp.pending) encode_event(w, ev);
  w.u64(lp.pending_negatives.size());
  for (EventUid uid : lp.pending_negatives) w.u64(uid);
  w.u64(lp.lazy.size());
  for (const auto& [gen_uid, ev] : lp.lazy) {
    w.u64(gen_uid);
    encode_event(w, ev);
  }
  w.u64(lp.in_clocks.size());
  for (const auto& [src, clock] : lp.in_clocks) {
    w.u32(src);
    w.vt(clock);
  }
}

bool decode_lp_checkpoint(bytes::Reader& r, LpCheckpoint* out) {
  assert(out != nullptr);
  LpCheckpoint lp;
  lp.mode = static_cast<SyncMode>(r.u8());
  lp.pinned_conservative = r.u8() != 0;
  lp.committed_ts = r.vt();
  lp.send_seq = r.u64();
  const std::uint64_t npend = r.u64();
  if (!r.ok() || npend > r.remaining()) return false;
  lp.pending.reserve(static_cast<std::size_t>(npend));
  for (std::uint64_t i = 0; i < npend && r.ok(); ++i)
    lp.pending.push_back(decode_event(r));
  const std::uint64_t nneg = r.u64();
  if (!r.ok() || nneg > r.remaining()) return false;
  lp.pending_negatives.reserve(static_cast<std::size_t>(nneg));
  for (std::uint64_t i = 0; i < nneg && r.ok(); ++i)
    lp.pending_negatives.push_back(r.u64());
  const std::uint64_t nlazy = r.u64();
  if (!r.ok() || nlazy > r.remaining()) return false;
  lp.lazy.reserve(static_cast<std::size_t>(nlazy));
  for (std::uint64_t i = 0; i < nlazy && r.ok(); ++i) {
    const EventUid gen = r.u64();
    lp.lazy.emplace_back(gen, decode_event(r));
  }
  const std::uint64_t nclk = r.u64();
  if (!r.ok() || nclk > r.remaining()) return false;
  lp.in_clocks.reserve(static_cast<std::size_t>(nclk));
  for (std::uint64_t i = 0; i < nclk && r.ok(); ++i) {
    const LpId src = r.u32();
    lp.in_clocks.emplace_back(src, r.vt());
  }
  if (!r.ok()) return false;
  *out = std::move(lp);
  return true;
}

std::vector<std::uint8_t> CheckpointStore::encode_portable(
    const Checkpoint& ck) {
  std::vector<std::uint8_t> buf;
  bytes::Writer w(buf);
  for (std::uint8_t m : kMagic) w.u8(m);
  w.u32(kVersion);
  w.u64(ck.round);
  w.vt(ck.gvt);
  w.u64(ck.lps.size());
  for (const LpCheckpoint& lp : ck.lps) encode_lp_checkpoint(w, lp);
  w.u64(ck.last_promise.size());
  for (const VirtualTime& t : ck.last_promise) w.vt(t);
  w.u64(ck.links.size());
  for (const LinkCheckpoint& l : ck.links) {
    w.u64(l.next_seq);
    w.u64(l.expected);
  }
  w.u64(ck.fault_links.size());
  for (const FaultLinkCheckpoint& l : ck.fault_links) {
    w.u64(l.rng);
    w.u32(l.blackout_left);
  }
  return buf;
}

bool CheckpointStore::decode_portable(const std::vector<std::uint8_t>& buf,
                                      Checkpoint* out) {
  assert(out != nullptr);
  bytes::Reader r(buf);
  for (std::uint8_t m : kMagic)
    if (r.u8() != m) return false;
  if (r.u32() != kVersion) return false;
  Checkpoint ck;
  ck.round = r.u64();
  ck.gvt = r.vt();
  const std::uint64_t nlps = r.u64();
  if (!r.ok() || nlps > buf.size()) return false;  // cheap sanity bound
  ck.lps.resize(static_cast<std::size_t>(nlps));
  for (LpCheckpoint& lp : ck.lps)
    if (!decode_lp_checkpoint(r, &lp)) return false;
  const std::uint64_t nprom = r.u64();
  if (!r.ok() || nprom > buf.size()) return false;
  ck.last_promise.reserve(static_cast<std::size_t>(nprom));
  for (std::uint64_t i = 0; i < nprom && r.ok(); ++i)
    ck.last_promise.push_back(r.vt());
  const std::uint64_t nlinks = r.u64();
  if (!r.ok() || nlinks > buf.size()) return false;
  ck.links.resize(static_cast<std::size_t>(nlinks));
  for (LinkCheckpoint& l : ck.links) {
    l.next_seq = r.u64();
    l.expected = r.u64();
  }
  const std::uint64_t nfault = r.u64();
  if (!r.ok() || nfault > buf.size()) return false;
  ck.fault_links.resize(static_cast<std::size_t>(nfault));
  for (FaultLinkCheckpoint& l : ck.fault_links) {
    l.rng = r.u64();
    l.blackout_left = r.u32();
  }
  if (!r.exhausted()) return false;  // no trailing garbage
  *out = std::move(ck);
  return true;
}

// ---- CheckpointStore ----

CheckpointStore::CheckpointStore(std::size_t keep, std::string spill_dir)
    : keep_(keep == 0 ? 1 : keep), spill_dir_(std::move(spill_dir)) {}

void CheckpointStore::put(Checkpoint&& ck) {
  if (!spill_dir_.empty()) spill(ck);
  ring_.push_back(std::move(ck));
  while (ring_.size() > keep_) ring_.erase(ring_.begin());
}

const Checkpoint* CheckpointStore::latest() const {
  return ring_.empty() ? nullptr : &ring_.back();
}

void CheckpointStore::spill(const Checkpoint& ck) {
  namespace fs = std::filesystem;
  const std::vector<std::uint8_t> blob = encode_portable(ck);
  std::error_code ec;
  fs::create_directories(spill_dir_, ec);
  const fs::path path =
      fs::path(spill_dir_) / ("ckpt-" + std::to_string(ck.round) + ".bin");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os ||
        !os.write(reinterpret_cast<const char*>(blob.data()),
                  static_cast<std::streamsize>(blob.size()))) {
      if (!io_error_) io_error_ = "failed to write " + path.string();
      return;
    }
  }
  // Read-back verification: the file on disk must decode to a checkpoint
  // that re-encodes byte-identically, else the spill is useless for
  // recovery and we say so now instead of at restart time.
  std::ifstream is(path, std::ios::binary);
  std::vector<std::uint8_t> back((std::istreambuf_iterator<char>(is)),
                                 std::istreambuf_iterator<char>());
  Checkpoint decoded;
  if (back != blob || !decode_portable(back, &decoded) ||
      encode_portable(decoded) != blob) {
    if (!io_error_) io_error_ = "read-back verification failed for " + path.string();
    return;
  }
  disk_bytes_ += blob.size();
}

// ---- capture / restore ----

Checkpoint capture_checkpoint(std::uint64_t round, VirtualTime gvt,
                              std::vector<LpRuntime>& lps,
                              const std::vector<VirtualTime>& last_promise,
                              const ChannelStack& net,
                              const FaultyTransport* faulty) {
  assert(net.quiescent() && "checkpoints require a drained network");
  Checkpoint ck;
  ck.round = round;
  ck.gvt = gvt;
  ck.lps.reserve(lps.size());
  for (LpRuntime& rt : lps) ck.lps.push_back(rt.make_checkpoint());
  ck.last_promise = last_promise;
  ck.links = net.capture_links();
  if (faulty != nullptr) ck.fault_links = faulty->capture_links();
  return ck;
}

void restore_checkpoint(const Checkpoint& ck, std::vector<LpRuntime>& lps,
                        std::vector<VirtualTime>& last_promise,
                        ChannelStack& net, FaultyTransport* faulty) {
  assert(ck.lps.size() == lps.size());
  for (std::size_t i = 0; i < lps.size(); ++i) lps[i].restore_from(ck.lps[i]);
  last_promise = ck.last_promise;
  net.restore_links(ck.links);
  if (faulty != nullptr) faulty->restore_links(ck.fault_links);
}

}  // namespace vsim::pdes
