#include "pdes/config.h"

#include <cstdlib>
#include <sstream>

namespace vsim::pdes {

namespace {

bool in_unit(double p) { return p >= 0.0 && p <= 1.0; }

std::optional<ConfigError> fail(const char* field, std::string message) {
  return ConfigError{field, std::move(message)};
}

}  // namespace

const char* to_string(Configuration c) {
  switch (c) {
    case Configuration::kAllOptimistic: return "optimistic";
    case Configuration::kAllConservative: return "conservative";
    case Configuration::kMixed: return "mixed";
    case Configuration::kDynamic: return "dynamic";
  }
  return "?";
}

const char* to_string(OrderingMode m) {
  switch (m) {
    case OrderingMode::kArbitrary: return "arbitrary";
    case OrderingMode::kUserConsistent: return "user-consistent";
  }
  return "?";
}

const char* to_string(ConservativeStrategy s) {
  switch (s) {
    case ConservativeStrategy::kGlobalSync: return "global-sync";
    case ConservativeStrategy::kNullMessage: return "null-message";
  }
  return "?";
}

const char* to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kRestart: return "restart";
    case RecoveryPolicy::kRedistribute: return "redistribute";
  }
  return "?";
}

std::string ConfigError::str() const {
  std::ostringstream os;
  os << "invalid configuration: " << field << ": " << message;
  return os.str();
}

std::optional<ConfigError> validate(const FaultPlan& plan,
                                    std::size_t num_workers) {
  if (!in_unit(plan.drop)) return fail("faults.drop", "probability outside [0, 1]");
  if (!in_unit(plan.duplicate))
    return fail("faults.duplicate", "probability outside [0, 1]");
  if (!in_unit(plan.reorder))
    return fail("faults.reorder", "probability outside [0, 1]");
  if (!in_unit(plan.blackout))
    return fail("faults.blackout", "probability outside [0, 1]");
  if (!in_unit(plan.crash_rate))
    return fail("faults.crash_rate", "probability outside [0, 1]");
  if (plan.jitter < 0.0) return fail("faults.jitter", "negative jitter");
  if (plan.blackout > 0.0 && plan.blackout_span < 1)
    return fail("faults.blackout_span",
                "must be >= 1 when blackouts are enabled");
  for (const WorkerCrash& c : plan.crashes) {
    if (num_workers != 0 && c.worker >= num_workers) {
      std::ostringstream os;
      os << "crash scheduled for worker " << c.worker << " but only "
         << num_workers << " workers configured";
      return fail("faults.crashes", os.str());
    }
  }
  return std::nullopt;
}

std::optional<ConfigError> validate(const TransportConfig& transport,
                                    std::size_t num_workers) {
  if (auto err = validate(transport.faults, num_workers)) return err;
  if (transport.reliable) {
    if (transport.max_retries < 1)
      return fail("transport.max_retries",
                  "retry cap must be >= 1 when reliable delivery is on");
    if (transport.rto <= 0.0)
      return fail("transport.rto", "retransmit timeout must be > 0");
    if (transport.rto_backoff < 1.0)
      return fail("transport.rto_backoff",
                  "backoff factor < 1 would shrink timeouts");
  }
  return std::nullopt;
}

std::optional<ConfigError> validate_net(const NetConfig& net,
                                        std::size_t num_ranks) {
  if (net.heartbeat_interval_ms < 1)
    return fail("net.heartbeat_interval_ms", "must be >= 1");
  if (net.heartbeat_timeout_ms <= net.heartbeat_interval_ms)
    return fail("net.heartbeat_timeout_ms",
                "timeout must exceed the heartbeat interval or every rank "
                "is instantly dead");
  if (net.connect_timeout_ms < 1)
    return fail("net.connect_timeout_ms", "must be >= 1");
  if (net.reconnect_max_attempts < 1)
    return fail("net.reconnect_max_attempts",
                "at least one reconnect attempt is required");
  if (net.reconnect_base_ms < 1)
    return fail("net.reconnect_base_ms", "must be >= 1");
  if (net.reconnect_max_ms < net.reconnect_base_ms)
    return fail("net.reconnect_max_ms", "must be >= reconnect_base_ms");
  if (net.max_frame_bytes < 1024)
    return fail("net.max_frame_bytes",
                "frames smaller than 1 KiB cannot carry the protocol");
  if (net.tcp && net.base_port == 0)
    return fail("net.base_port", "TCP mode needs an explicit base port");
  for (const NetConfig::Disconnect& d : net.disconnects) {
    if (d.src >= num_ranks || d.dst >= num_ranks || d.src == d.dst) {
      std::ostringstream os;
      os << "disconnect " << d.src << "->" << d.dst << " is not a link of a "
         << num_ranks << "-rank run";
      return fail("net.disconnects", os.str());
    }
  }
  return std::nullopt;
}

std::optional<ConfigError> validate(const AdaptPolicy& adapt) {
  if (adapt.promotion_backoff_cap >= 32)
    return fail("adapt.promotion_backoff_cap",
                "caps >= 32 would shift promotion evidence into undefined "
                "behaviour; the threshold saturates at cap doublings");
  if (!(adapt.rollback_rate_high > 0.0))
    return fail("adapt.rollback_rate_high", "must be > 0");
  if (adapt.rollback_rate_low < 0.0 ||
      adapt.rollback_rate_low > adapt.rollback_rate_high)
    return fail("adapt.rollback_rate_low",
                "must be in [0, rollback_rate_high]");
  if (adapt.min_window_events < 1)
    return fail("adapt.min_window_events", "must be >= 1");
  if (!(adapt.rate_alpha > 0.0) || adapt.rate_alpha > 1.0)
    return fail("adapt.rate_alpha", "EWMA factor must be in (0, 1]");
  if (adapt.p_headroom < 0.0)
    return fail("adapt.p_headroom", "must be >= 0");
  if (adapt.min_decision_windows < 1)
    return fail("adapt.min_decision_windows", "must be >= 1");
  if (!(adapt.max_demote_fraction > 0.0) || adapt.max_demote_fraction > 1.0)
    return fail("adapt.max_demote_fraction",
                "demotion budget fraction must be in (0, 1]");
  if (adapt.pin_stall_windows < 1)
    return fail("adapt.pin_stall_windows", "must be >= 1");
  return std::nullopt;
}

std::optional<ConfigError> validate(const RunConfig& config) {
  if (config.num_workers < 1)
    return fail("num_workers", "at least one worker is required");
  if (config.gvt_interval < 1)
    return fail("gvt_interval", "GVT interval must be >= 1");
  if (auto err = validate(config.adapt)) return err;
  if (config.deadlock_rounds < 1)
    return fail("deadlock_rounds", "deadlock threshold must be >= 1");
  if (auto err = validate(config.transport, config.num_workers)) return err;
  if (config.checkpoint.heartbeat_rounds < 1)
    return fail("checkpoint.heartbeat_rounds",
                "a worker must be allowed to miss at least one round");
  if (config.checkpoint.keep < 1)
    return fail("checkpoint.keep", "must retain at least one checkpoint");
  if (config.transport.faults.crash_active() &&
      config.checkpoint.max_recoveries < 1)
    return fail("checkpoint.max_recoveries",
                "crashes are scheduled but no recoveries are allowed");
  if (config.rebalance.enabled()) {
    if (config.rebalance.max_moves < 1)
      return fail("rebalance.max_moves",
                  "rebalancing is enabled but no moves are allowed");
    if (config.rebalance.imbalance_trigger < 0.0)
      return fail("rebalance.imbalance_trigger", "must be >= 0");
    if (config.rebalance.min_gain < 0.0)
      return fail("rebalance.min_gain", "must be >= 0");
    if (config.rebalance.rollback_weight < 0.0)
      return fail("rebalance.rollback_weight", "must be >= 0");
    if (config.rebalance.cut_weight < 0.0)
      return fail("rebalance.cut_weight", "must be >= 0");
  }
  return std::nullopt;
}

std::optional<ConfigError> validate_distributed(const RunConfig& config) {
  if (auto err = validate(config)) return err;
  if (auto err = validate_net(config.net, config.num_workers)) return err;
  if (config.checkpoint.replicas < 1)
    return fail("checkpoint.replicas",
                "at least one rank must hold each checkpoint");
  if (config.checkpoint.resume && config.checkpoint.spill_dir.empty())
    return fail("checkpoint.resume",
                "resuming requires a spill_dir to resume from");
  if (config.transport.faults.crash_rate > 0.0)
    return fail("faults.crash_rate",
                "distributed runs need an explicit crash schedule (random "
                "per-rank draws are not reproducible across processes)");
  if (config.rebalance.enabled())
    return fail("rebalance.period",
                "periodic rebalancing is not implemented across processes; "
                "LPs move only via crash recovery");
  return std::nullopt;
}

double time_scale() {
  const char* env = std::getenv("VSIM_TIME_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || !(v >= 1.0)) return 1.0;
  return v > 100.0 ? 100.0 : v;
}

}  // namespace vsim::pdes
