#include "pdes/config.h"

namespace vsim::pdes {

const char* to_string(Configuration c) {
  switch (c) {
    case Configuration::kAllOptimistic: return "optimistic";
    case Configuration::kAllConservative: return "conservative";
    case Configuration::kMixed: return "mixed";
    case Configuration::kDynamic: return "dynamic";
  }
  return "?";
}

const char* to_string(OrderingMode m) {
  switch (m) {
    case OrderingMode::kArbitrary: return "arbitrary";
    case OrderingMode::kUserConsistent: return "user-consistent";
  }
  return "?";
}

const char* to_string(ConservativeStrategy s) {
  switch (s) {
    case ConservativeStrategy::kGlobalSync: return "global-sync";
    case ConservativeStrategy::kNullMessage: return "null-message";
  }
  return "?";
}

}  // namespace vsim::pdes
