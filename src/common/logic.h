// IEEE 1164 nine-valued logic and logic vectors.
//
// The VHDL kernel resolves multi-driver signals with the std_logic resolution
// table and evaluates gate-level primitives over these values.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace vsim {

/// std_ulogic values in IEEE 1164 declaration order.
enum class Logic : std::uint8_t {
  kU = 0,  ///< uninitialised
  kX = 1,  ///< forcing unknown
  k0 = 2,  ///< forcing 0
  k1 = 3,  ///< forcing 1
  kZ = 4,  ///< high impedance
  kW = 5,  ///< weak unknown
  kL = 6,  ///< weak 0
  kH = 7,  ///< weak 1
  kDC = 8, ///< don't care '-'
};

inline constexpr int kNumLogic = 9;

[[nodiscard]] char to_char(Logic v);
/// Parses one of "UX01ZWLH-" (case-insensitive); anything else yields kX.
[[nodiscard]] Logic logic_from_char(char c);

/// IEEE 1164 `resolved` function for two drivers; associative + commutative.
[[nodiscard]] Logic resolve(Logic a, Logic b);

// IEEE 1164 operators over std_ulogic.
[[nodiscard]] Logic logic_and(Logic a, Logic b);
[[nodiscard]] Logic logic_or(Logic a, Logic b);
[[nodiscard]] Logic logic_xor(Logic a, Logic b);
[[nodiscard]] Logic logic_not(Logic a);
inline Logic logic_nand(Logic a, Logic b) { return logic_not(logic_and(a, b)); }
inline Logic logic_nor(Logic a, Logic b) { return logic_not(logic_or(a, b)); }
inline Logic logic_xnor(Logic a, Logic b) { return logic_not(logic_xor(a, b)); }

/// `to_x01` strength stripper: L->0, H->1, weak/undriven unknowns -> X.
[[nodiscard]] Logic to_x01(Logic v);
[[nodiscard]] inline bool is_01(Logic v) {
  return v == Logic::k0 || v == Logic::k1;
}
[[nodiscard]] inline Logic logic_of_bool(bool b) {
  return b ? Logic::k1 : Logic::k0;
}

/// A value of a scalar or vector signal.  Index 0 is the leftmost element
/// (VHDL `downto` ranges are normalised by the frontend before they reach
/// the kernel).  Small vectors (<= 16 bits) are stored inline.
class LogicVector {
 public:
  LogicVector() = default;
  explicit LogicVector(std::size_t n, Logic fill = Logic::kU);
  LogicVector(std::initializer_list<Logic> bits);
  /// Parses a string of "UX01ZWLH-" characters, e.g. "0101".
  static LogicVector from_string(std::string_view s);
  /// Low `n` bits of `value`, index 0 = MSB.
  static LogicVector from_uint(std::uint64_t value, std::size_t n);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] Logic at(std::size_t i) const { return data()[i]; }
  void set(std::size_t i, Logic v) { data()[i] = v; }

  [[nodiscard]] Logic scalar() const { return size_ == 0 ? Logic::kU : at(0); }

  /// Interprets the vector as an unsigned integer (index 0 = MSB); any
  /// non-01 bit (after to_x01) makes the result nullopt-like: `ok` is false.
  struct UintResult {
    std::uint64_t value = 0;
    bool ok = false;
  };
  [[nodiscard]] UintResult to_uint() const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const LogicVector& a, const LogicVector& b);
  friend bool operator!=(const LogicVector& a, const LogicVector& b) {
    return !(a == b);
  }

 private:
  static constexpr std::size_t kInlineCap = 16;

  [[nodiscard]] Logic* data() {
    return size_ <= kInlineCap ? inline_.data() : heap_.data();
  }
  [[nodiscard]] const Logic* data() const {
    return size_ <= kInlineCap ? inline_.data() : heap_.data();
  }

  std::size_t size_ = 0;
  std::array<Logic, kInlineCap> inline_{};
  std::vector<Logic> heap_;
};

/// Element-wise resolution of two equally sized vectors.
[[nodiscard]] LogicVector resolve(const LogicVector& a, const LogicVector& b);

}  // namespace vsim
