#include "common/logic.h"

#include <cassert>

namespace vsim {
namespace {

constexpr char kChars[kNumLogic + 1] = "UX01ZWLH-";

// IEEE 1164 resolution table (std_logic_1164 body).
constexpr Logic U = Logic::kU, X = Logic::kX, O = Logic::k0, I = Logic::k1,
                Z = Logic::kZ, W = Logic::kW, L = Logic::kL, H = Logic::kH,
                D = Logic::kDC;

constexpr Logic kResolve[kNumLogic][kNumLogic] = {
    //        U  X  0  1  Z  W  L  H  -
    /* U */ {U, U, U, U, U, U, U, U, U},
    /* X */ {U, X, X, X, X, X, X, X, X},
    /* 0 */ {U, X, O, X, O, O, O, O, X},
    /* 1 */ {U, X, X, I, I, I, I, I, X},
    /* Z */ {U, X, O, I, Z, W, L, H, X},
    /* W */ {U, X, O, I, W, W, W, W, X},
    /* L */ {U, X, O, I, L, W, L, W, X},
    /* H */ {U, X, O, I, H, W, W, H, X},
    /* - */ {U, X, X, X, X, X, X, X, X},
};

// IEEE 1164 "and" table.
constexpr Logic kAnd[kNumLogic][kNumLogic] = {
    //        U  X  0  1  Z  W  L  H  -
    /* U */ {U, U, O, U, U, U, O, U, U},
    /* X */ {U, X, O, X, X, X, O, X, X},
    /* 0 */ {O, O, O, O, O, O, O, O, O},
    /* 1 */ {U, X, O, I, X, X, O, I, X},
    /* Z */ {U, X, O, X, X, X, O, X, X},
    /* W */ {U, X, O, X, X, X, O, X, X},
    /* L */ {O, O, O, O, O, O, O, O, O},
    /* H */ {U, X, O, I, X, X, O, I, X},
    /* - */ {U, X, O, X, X, X, O, X, X},
};

// IEEE 1164 "or" table.
constexpr Logic kOr[kNumLogic][kNumLogic] = {
    //        U  X  0  1  Z  W  L  H  -
    /* U */ {U, U, U, I, U, U, U, I, U},
    /* X */ {U, X, X, I, X, X, X, I, X},
    /* 0 */ {U, X, O, I, X, X, O, I, X},
    /* 1 */ {I, I, I, I, I, I, I, I, I},
    /* Z */ {U, X, X, I, X, X, X, I, X},
    /* W */ {U, X, X, I, X, X, X, I, X},
    /* L */ {U, X, O, I, X, X, O, I, X},
    /* H */ {I, I, I, I, I, I, I, I, I},
    /* - */ {U, X, X, I, X, X, X, I, X},
};

// IEEE 1164 "xor" table.
constexpr Logic kXor[kNumLogic][kNumLogic] = {
    //        U  X  0  1  Z  W  L  H  -
    /* U */ {U, U, U, U, U, U, U, U, U},
    /* X */ {U, X, X, X, X, X, X, X, X},
    /* 0 */ {U, X, O, I, X, X, O, I, X},
    /* 1 */ {U, X, I, O, X, X, I, O, X},
    /* Z */ {U, X, X, X, X, X, X, X, X},
    /* W */ {U, X, X, X, X, X, X, X, X},
    /* L */ {U, X, O, I, X, X, O, I, X},
    /* H */ {U, X, I, O, X, X, I, O, X},
    /* - */ {U, X, X, X, X, X, X, X, X},
};

constexpr Logic kNot[kNumLogic] = {U, X, I, O, X, X, I, O, X};

constexpr Logic kToX01[kNumLogic] = {X, X, O, I, X, X, O, I, X};

}  // namespace

char to_char(Logic v) { return kChars[static_cast<int>(v)]; }

Logic logic_from_char(char c) {
  switch (c) {
    case 'U': case 'u': return Logic::kU;
    case 'X': case 'x': return Logic::kX;
    case '0': return Logic::k0;
    case '1': return Logic::k1;
    case 'Z': case 'z': return Logic::kZ;
    case 'W': case 'w': return Logic::kW;
    case 'L': case 'l': return Logic::kL;
    case 'H': case 'h': return Logic::kH;
    case '-': return Logic::kDC;
    default: return Logic::kX;
  }
}

Logic resolve(Logic a, Logic b) {
  return kResolve[static_cast<int>(a)][static_cast<int>(b)];
}
Logic logic_and(Logic a, Logic b) {
  return kAnd[static_cast<int>(a)][static_cast<int>(b)];
}
Logic logic_or(Logic a, Logic b) {
  return kOr[static_cast<int>(a)][static_cast<int>(b)];
}
Logic logic_xor(Logic a, Logic b) {
  return kXor[static_cast<int>(a)][static_cast<int>(b)];
}
Logic logic_not(Logic a) { return kNot[static_cast<int>(a)]; }
Logic to_x01(Logic v) { return kToX01[static_cast<int>(v)]; }

LogicVector::LogicVector(std::size_t n, Logic fill) : size_(n) {
  if (n > kInlineCap) heap_.assign(n, fill);
  else inline_.fill(fill);
}

LogicVector::LogicVector(std::initializer_list<Logic> bits)
    : LogicVector(bits.size()) {
  std::size_t i = 0;
  for (Logic b : bits) set(i++, b);
}

LogicVector LogicVector::from_string(std::string_view s) {
  LogicVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) v.set(i, logic_from_char(s[i]));
  return v;
}

LogicVector LogicVector::from_uint(std::uint64_t value, std::size_t n) {
  LogicVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = (value >> (n - 1 - i)) & 1u;
    v.set(i, logic_of_bool(bit));
  }
  return v;
}

LogicVector::UintResult LogicVector::to_uint() const {
  UintResult r;
  if (size_ == 0 || size_ > 64) return r;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const Logic b = to_x01(at(i));
    if (!is_01(b)) return r;
    acc = (acc << 1) | (b == Logic::k1 ? 1u : 0u);
  }
  r.value = acc;
  r.ok = true;
  return r;
}

std::string LogicVector::str() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(to_char(at(i)));
  return s;
}

bool operator==(const LogicVector& a, const LogicVector& b) {
  if (a.size_ != b.size_) return false;
  for (std::size_t i = 0; i < a.size_; ++i)
    if (a.at(i) != b.at(i)) return false;
  return true;
}

LogicVector resolve(const LogicVector& a, const LogicVector& b) {
  assert(a.size() == b.size());
  LogicVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.set(i, resolve(a.at(i), b.at(i)));
  return out;
}

}  // namespace vsim
