// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Shared by the wire framing (src/net/frame.cpp) and the checkpoint spill
// footer (src/pdes/checkpoint.cpp).  Living in common/ keeps the dependency
// arrows pointing the right way: pdes/ must not depend on net/ just to hash
// bytes, and both layers must agree on the polynomial so a checksum computed
// on one side of the wire is checkable on the other.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vsim::common {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t n) {
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vsim::common
