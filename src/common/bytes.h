// Portable little-endian byte codec.
//
// One Writer/Reader pair shared by everything that serialises engine state:
// the checkpoint store's portable section (pdes/checkpoint.cpp), the LP
// byte-level state codecs (LogicalProcess::encode_state), the metrics
// snapshot codec (obs/metrics.h), and the socket wire format (src/net).
// Sharing the primitive layer is what makes "the wire reuses the checkpoint
// codec" literally true: a Packet's Event payload and a checkpointed pending
// event are the same bytes.
//
// Encoding rules: fixed-width little-endian integers, no alignment, no
// varints.  Readers are fail-soft: any out-of-bounds read clears `ok` and
// returns zero values from then on, so decoders can parse a whole structure
// and check `ok` once at the end instead of guarding every field.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/logic.h"
#include "common/virtual_time.h"

namespace vsim::bytes {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& buf) : buf_(buf) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void vt(const VirtualTime& t) {
    i64(t.pt);
    i64(t.lt);
  }
  void lv(const LogicVector& v) {
    u64(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      u8(static_cast<std::uint8_t>(v.at(i)));
  }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed nested byte blob (e.g. an opaque LP state section).
  void blob(const std::vector<std::uint8_t>& b) {
    u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  [[nodiscard]] std::vector<std::uint8_t>& buf() { return buf_; }

 private:
  std::vector<std::uint8_t>& buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  /// False once any read ran past the end (sticky).
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// True when every byte was consumed and nothing overran.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == size_; }

  bool have(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) ok_ = false;
    return ok_;
  }

  std::uint8_t u8() {
    if (!have(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!have(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    if (!have(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!have(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  VirtualTime vt() {
    VirtualTime t;
    t.pt = i64();
    t.lt = i64();
    return t;
  }
  LogicVector lv() {
    const std::uint64_t n = u64();
    if (!have(n)) return LogicVector();
    LogicVector v(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
      v.set(static_cast<std::size_t>(i), static_cast<Logic>(data_[pos_++]));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!have(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = u64();
    if (!have(n)) return {};
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return b;
  }
  /// Bounds-checked view of a length-prefixed blob without copying; the view
  /// stays valid as long as the underlying buffer does.
  Reader sub() {
    const std::uint64_t n = u64();
    if (!have(n)) return Reader(nullptr, 0);
    Reader r(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return r;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace vsim::bytes
