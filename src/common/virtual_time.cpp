#include "common/virtual_time.h"

namespace vsim {

std::string VirtualTime::str() const {
  if (*this == kTimeInf) return "(inf)";
  return "(" + std::to_string(pt) + "," + std::to_string(lt) + ")";
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kAssign: return "assign";
    case Phase::kDriving: return "driving";
    case Phase::kEffective: return "effective";
  }
  return "phase?";
}

}  // namespace vsim
