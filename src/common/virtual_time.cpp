#include "common/virtual_time.h"

namespace vsim {

std::string VirtualTime::str() const {
  if (*this == kTimeInf) return "(inf)";
  return "(" + std::to_string(pt) + "," + std::to_string(lt) + ")";
}

}  // namespace vsim
