// Virtual time for the distributed VHDL simulation cycle (DATE 2000, Sec. 3.3).
//
// VHDL virtual time is a pair (pt, lt) of the physical simulation time and a
// Lamport-style cycle/phase logical time, ordered lexicographically.  The
// logical component encodes the phase of the distributed VHDL cycle:
//
//   lt % 3 == 0  -- Signal:Assign / Process:Execute    (phase kAssign)
//   lt % 3 == 1  -- Signal:DrivingValue                (phase kDriving)
//   lt % 3 == 2  -- Signal:Effective / Process:Update  (phase kEffective)
//
// A delta cycle advances lt by a full phase triple (3) while pt is unchanged.
// Advancing pt resets lt to 0 (a new physical time step starts a new cycle).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace vsim {

/// Physical simulation time in abstract integer units (think picoseconds).
using PhysTime = std::int64_t;
/// Cycle/phase logical time (Lamport clock within one physical time step).
using LogicalTime = std::int64_t;

/// Phases of the distributed VHDL simulation cycle, i.e. lt mod 3.
enum class Phase : std::int8_t {
  kAssign = 0,     ///< signals consume driver transactions; processes execute
  kDriving = 1,    ///< drivers apply matured transactions
  kEffective = 2,  ///< resolution + effective-value broadcast; process update
};

struct VirtualTime {
  PhysTime pt = 0;
  LogicalTime lt = 0;

  friend constexpr auto operator<=>(const VirtualTime&,
                                    const VirtualTime&) = default;

  [[nodiscard]] constexpr Phase phase() const {
    return static_cast<Phase>(lt % 3);
  }
  /// Index of the delta cycle within the current physical time step.
  [[nodiscard]] constexpr std::int64_t delta_cycle() const { return lt / 3; }

  /// Next phase at the same physical time: (pt, lt + 1).
  [[nodiscard]] constexpr VirtualTime next_phase() const {
    return {pt, lt + 1};
  }
  /// Same phase in the next delta cycle: (pt, lt + 3).
  [[nodiscard]] constexpr VirtualTime next_delta() const { return {pt, lt + 3}; }
  /// First phase of the cycle at physical time pt + d (d > 0), adjusted to
  /// the given phase.  Advancing physical time resets the logical clock.
  [[nodiscard]] constexpr VirtualTime after(PhysTime d, Phase ph) const {
    return {pt + d, static_cast<LogicalTime>(ph)};
  }

  [[nodiscard]] std::string str() const;
};

/// Static phase name ("assign" / "driving" / "effective"); the tracer uses
/// these as execute-span names so timelines show the delta-cycle structure.
const char* to_string(Phase p);

inline constexpr VirtualTime kTimeZero{0, 0};
inline constexpr VirtualTime kTimeInf{std::numeric_limits<PhysTime>::max(),
                                      std::numeric_limits<LogicalTime>::max()};

}  // namespace vsim
