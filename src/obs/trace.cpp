#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "obs/json.h"

namespace vsim::obs {

// ---------------------------------------------------------------------------
// TraceSession

TraceSession::TraceSession(Tracer* owner, std::string name, std::size_t tracks,
                           int pid, std::size_t event_budget)
    : owner_(owner),
      name_(std::move(name)),
      pid_(pid),
      tracks_(tracks ? tracks : 1),
      budget_(event_budget),
      initial_budget_(event_budget) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tracks_[i].name = "worker " + std::to_string(i);
  }
}

TraceSession::~TraceSession() {
  if (owner_ != nullptr) owner_->flush(*this);
}

bool TraceSession::admit(std::size_t track) {
  if (track >= tracks_.size() || budget_ == 0) {
    // budget_ is decremented without synchronisation; concurrent workers can
    // race past zero by a handful of events, which only makes the cap fuzzy,
    // never unsafe (it is a size_t watermark, not an index).
    if (track < tracks_.size()) ++dropped_;
    return false;
  }
  --budget_;
  return true;
}

void TraceSession::complete(std::size_t track, const char* cat,
                            const char* name, double ts, double dur,
                            std::uint32_t lp, const char* arg_name,
                            std::int64_t arg) {
  if (!admit(track)) return;
  tracks_[track].records.push_back(
      Record{'X', cat, name, ts, dur, 0, lp, arg_name, arg});
}

void TraceSession::instant(std::size_t track, const char* cat,
                           const char* name, double ts, std::uint32_t lp,
                           const char* arg_name, std::int64_t arg) {
  if (!admit(track)) return;
  tracks_[track].records.push_back(
      Record{'i', cat, name, ts, 0.0, 0, lp, arg_name, arg});
}

void TraceSession::flow_out(std::size_t track, std::uint64_t id, double ts) {
  if (!admit(track)) return;
  tracks_[track].records.push_back(
      Record{'s', "msg", "msg", ts, 0.0, id, kNoTraceLp, nullptr, 0});
}

void TraceSession::flow_in(std::size_t track, std::uint64_t id, double ts) {
  if (!admit(track)) return;
  tracks_[track].records.push_back(
      Record{'f', "msg", "msg", ts, 0.0, id, kNoTraceLp, nullptr, 0});
}

void TraceSession::set_track_name(std::size_t track, std::string name) {
  if (track < tracks_.size()) tracks_[track].name = std::move(name);
}

void TraceSession::set_default_lp_labels(LpLabelFn fn) {
  if (!lp_labels_) lp_labels_ = std::move(fn);
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(std::string path, std::size_t event_budget)
    : path_(std::move(path)), budget_remaining_(event_budget) {}

Tracer::~Tracer() {
  if (!path_.empty()) write();
}

std::unique_ptr<TraceSession> Tracer::session(std::string name,
                                              std::size_t tracks) {
  int pid;
  std::size_t budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pid = next_pid_++;
    // The budget is global: each session draws from what previous sessions
    // left (a bench sweep spawning dozens of engine runs shares one cap).
    budget = budget_remaining_;
  }
  return std::unique_ptr<TraceSession>(
      new TraceSession(this, std::move(name), tracks, pid, budget));
}

void Tracer::flush(TraceSession& s) {
  const std::size_t used = s.initial_budget_ - s.budget_;
  DoneSession out;
  out.name = std::move(s.name_);
  out.pid = s.pid_;
  out.dropped = s.dropped_;
  // Resolve LP labels now, while the resolver's referents are still alive.
  if (s.lp_labels_) {
    std::set<std::uint32_t> ids;
    for (const auto& t : s.tracks_) {
      for (const auto& r : t.records) {
        if (r.lp != kNoTraceLp) ids.insert(r.lp);
      }
    }
    out.lp_labels.reserve(ids.size());
    for (std::uint32_t id : ids) out.lp_labels.emplace_back(id, s.lp_labels_(id));
  }
  out.tracks.reserve(s.tracks_.size());
  for (auto& t : s.tracks_) {
    out.tracks.push_back(DoneTrack{std::move(t.name), std::move(t.records)});
  }
  std::lock_guard<std::mutex> lock(mu_);
  budget_remaining_ -= std::min(used, budget_remaining_);
  done_.push_back(std::move(out));
}

namespace {

void append_ts(std::string& out, double v) {
  char buf[40];
  // Fixed-point keeps Chrome's importer happy (it dislikes exponents) and
  // keeps virtual work-unit timestamps exact.
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_record(std::string& out, const Tracer::DoneSession& s,
                   std::size_t tid, const TraceSession::Record& r) {
  out += "{\"ph\":\"";
  out += r.ph;
  out += "\",\"pid\":";
  out += std::to_string(s.pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts(out, r.ts);
  out += ",\"cat\":\"";
  out += r.cat;
  out += "\",\"name\":\"";
  out += json_escape(r.name);
  out += '"';
  if (r.ph == 'X') {
    out += ",\"dur\":";
    append_ts(out, r.dur);
  }
  if (r.ph == 's' || r.ph == 'f') {
    out += ",\"id\":\"0x";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(r.id));
    out += buf;
    out += '"';
    if (r.ph == 'f') out += ",\"bp\":\"e\"";
  }
  if (r.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  const bool has_lp = r.lp != kNoTraceLp;
  if (has_lp || r.arg_name != nullptr) {
    out += ",\"args\":{";
    bool first = true;
    if (has_lp) {
      out += "\"lp\":";
      const auto it = std::lower_bound(
          s.lp_labels.begin(), s.lp_labels.end(), r.lp,
          [](const auto& p, std::uint32_t id) { return p.first < id; });
      if (it != s.lp_labels.end() && it->first == r.lp) {
        out += '"';
        out += json_escape(it->second);
        out += '"';
      } else {
        out += std::to_string(r.lp);
      }
      first = false;
    }
    if (r.arg_name != nullptr) {
      if (!first) out += ',';
      out += '"';
      out += json_escape(r.arg_name);
      out += "\":";
      out += std::to_string(static_cast<long long>(r.arg));
    }
    out += '}';
  }
  out += '}';
}

void append_metadata(std::string& out, int pid, int tid, const char* which,
                     const std::string& value) {
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += which;
  out += "\",\"args\":{\"name\":\"";
  out += json_escape(value);
  out += "\"}}";
}

}  // namespace

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const DoneSession& s : done_) {
    sep();
    append_metadata(out, s.pid, 0, "process_name", s.name);
    for (std::size_t tid = 0; tid < s.tracks.size(); ++tid) {
      sep();
      append_metadata(out, s.pid, static_cast<int>(tid), "thread_name",
                      s.tracks[tid].name);
      for (const auto& r : s.tracks[tid].records) {
        sep();
        append_record(out, s, tid, r);
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write() const {
  if (path_.empty()) return false;
  const std::string body = to_json();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

Tracer* Tracer::from_env() {
  static std::unique_ptr<Tracer> global = [] {
    const char* path = std::getenv("VSIM_TRACE");
    if (path == nullptr || *path == '\0') return std::unique_ptr<Tracer>();
    std::size_t budget = 1u << 20;
    if (const char* lim = std::getenv("VSIM_TRACE_LIMIT")) {
      const long long v = std::atoll(lim);
      if (v > 0) budget = static_cast<std::size_t>(v);
    }
    return std::unique_ptr<Tracer>(new Tracer(path, budget));
  }();
  return global.get();
}

}  // namespace vsim::obs
