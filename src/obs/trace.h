// Event tracer emitting Chrome `trace_event` JSON (the format read by
// chrome://tracing and https://ui.perfetto.dev).
//
// Model: a process-wide Tracer owns the output file; each engine run opens a
// TraceSession (one Chrome "process", unique pid) with one track ("thread")
// per worker.  Tracks are single-writer -- the owning worker appends to its
// own buffer with no synchronisation -- and sessions flush into the tracer
// under a mutex when they are destroyed, after the workers have joined.
//
// Emitted event kinds:
//   'X' complete spans   execute (named by delta-cycle phase: assign /
//                        driving / effective, from VirtualTime lt mod 3),
//                        gvt, checkpoint, recovery, send, recv
//   'i' instants         rollback (arg: events undone), crash
//   's'/'f' flow arrows  inter-LP messages and anti-messages crossing
//                        workers; flow id = (event uid << 1) | negative
//   'M' metadata         process_name / thread_name per session and track
//
// Activation: engines prefer an explicit session (RunConfig::trace); when
// none is given and $VSIM_TRACE is set, they attach to the process-global
// Tracer::from_env() singleton, which writes $VSIM_TRACE at exit.  So a
// single environment flag turns any test or bench into a loadable timeline.
//
// Compile-out: all engine call sites live behind the VSIM_TRACE() macro.
// Configuring with -DVSIM_TRACE=OFF defines VSIM_TRACE_ENABLED=0 and deletes
// them at preprocessing time, so the hot path carries zero tracing cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef VSIM_TRACE_ENABLED
#define VSIM_TRACE_ENABLED 1
#endif

#if VSIM_TRACE_ENABLED
// Wraps tracing statements; compiled out entirely when tracing is disabled.
#define VSIM_TRACE(...) \
  do {                  \
    __VA_ARGS__;        \
  } while (0)
#else
#define VSIM_TRACE(...) \
  do {                  \
  } while (0)
#endif

namespace vsim::obs {

/// Sentinel for "no LP attached to this event".
inline constexpr std::uint32_t kNoTraceLp = 0xffffffffu;

class Tracer;

/// One engine run's worth of trace data: a Chrome "process" with one track
/// per worker.  Mutating calls are single-writer per track; the session must
/// outlive the engine run and is flushed into the owning Tracer on
/// destruction.
class TraceSession {
 public:
  /// Maps an LP id to a human-readable label (shown as a span argument).
  using LpLabelFn = std::function<std::string(std::uint32_t)>;

  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// 'X' complete span on `track`, [ts, ts+dur] (microsecond doubles; the
  /// machine engine uses virtual work units as microseconds).
  void complete(std::size_t track, const char* cat, const char* name,
                double ts, double dur, std::uint32_t lp = kNoTraceLp,
                const char* arg_name = nullptr, std::int64_t arg = 0);
  /// 'i' instant marker.
  void instant(std::size_t track, const char* cat, const char* name,
               double ts, std::uint32_t lp = kNoTraceLp,
               const char* arg_name = nullptr, std::int64_t arg = 0);
  /// 's' flow start (message leaves this track).  Must land inside a span on
  /// `track` for the arrow to bind.
  void flow_out(std::size_t track, std::uint64_t id, double ts);
  /// 'f' flow finish (message arrives on this track).
  void flow_in(std::size_t track, std::uint64_t id, double ts);

  void set_track_name(std::size_t track, std::string name);
  /// Installs the LP label resolver only if none was set yet (an explicit
  /// caller-provided resolver, e.g. vhdl::Design labels, wins over the
  /// engine's graph-name default).
  void set_default_lp_labels(LpLabelFn fn);

  [[nodiscard]] std::size_t num_tracks() const { return tracks_.size(); }
  [[nodiscard]] int pid() const { return pid_; }
  /// Events dropped once the event budget was exhausted (long bench runs).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Internal record layout (public for the serialiser; not part of the
  /// stable API).
  struct Record {
    char ph;           // 'X', 'i', 's', 'f'
    const char* cat;   // static string
    const char* name;  // static string
    double ts;
    double dur;         // 'X' only
    std::uint64_t id;   // flows only
    std::uint32_t lp;   // kNoTraceLp when absent
    const char* arg_name;  // optional static extra arg
    std::int64_t arg;
  };

 private:
  friend class Tracer;
  TraceSession(Tracer* owner, std::string name, std::size_t tracks, int pid,
               std::size_t event_budget);

  struct Track {
    std::string name;
    std::vector<Record> records;
  };

  bool admit(std::size_t track);

  Tracer* owner_;
  std::string name_;
  int pid_;
  std::vector<Track> tracks_;
  LpLabelFn lp_labels_;
  std::size_t budget_;       // remaining admitted events (approximate across
  std::size_t initial_budget_;  // tracks; exact for single-threaded engines)
  std::uint64_t dropped_ = 0;
};

/// Process-level sink: collects flushed sessions and serialises them as one
/// Chrome trace JSON document.
class Tracer {
 public:
  /// `path` empty means "in-memory only" (tests use to_json()).
  explicit Tracer(std::string path, std::size_t event_budget = 1u << 20);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a new session with `tracks` worker tracks and a fresh pid.
  [[nodiscard]] std::unique_ptr<TraceSession> session(std::string name,
                                                      std::size_t tracks);

  /// Serialises everything flushed so far ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to the path given at construction; false on I/O error
  /// or when constructed with an empty path.
  bool write() const;

  /// Process-global tracer bound to $VSIM_TRACE (nullptr when unset).  The
  /// singleton writes its file when the process exits normally.
  ///   VSIM_TRACE=trace.json ./build/examples/parallel_dct
  /// $VSIM_TRACE_LIMIT overrides the default 1M-event budget.
  static Tracer* from_env();

  /// Internal flushed-session layout (public for the serialiser).
  struct DoneTrack {
    std::string name;
    std::vector<TraceSession::Record> records;
  };
  struct DoneSession {
    std::string name;
    int pid;
    std::vector<DoneTrack> tracks;
    /// LP id -> label, resolved through the session's LpLabelFn at flush
    /// time (sorted by id for lookup during serialisation).
    std::vector<std::pair<std::uint32_t, std::string>> lp_labels;
    std::uint64_t dropped;
  };

 private:
  friend class TraceSession;
  void flush(TraceSession& s);  // moves session data into done_

  mutable std::mutex mu_;
  std::string path_;
  /// Global event budget: sessions draw from what earlier (flushed) sessions
  /// left, so a bench sweep of many engine runs shares one bounded file.
  std::size_t budget_remaining_;
  int next_pid_ = 1;
  std::vector<DoneSession> done_;
};

}  // namespace vsim::obs
