// Minimal JSON value model used by the observability layer.
//
// The tracer (trace.h) and the bench report sink (bench/report.h) both emit
// JSON, and the golden trace test needs to read it back; a dependency-free
// value type with a serializer and a strict parser keeps all three honest
// against the same grammar.  Objects preserve insertion order so emitted
// files are stable across runs (diff-able by tools/bench_diff.py).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vsim::obs {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered; lookups are linear (fine at observability sizes).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(double d) : kind_(Kind::kNumber), num_(d) {}  // NOLINT
  Json(int i) : kind_(Kind::kNumber), num_(i) {}  // NOLINT
  Json(std::int64_t i)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Json(std::uint64_t u)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  Json(std::string s)  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), str_(std::move(s)) {}
  Json(JsonArray a)  // NOLINT(runtime/explicit)
      : kind_(Kind::kArray), arr_(std::move(a)) {}
  Json(JsonObject o)  // NOLINT(runtime/explicit)
      : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JsonArray& as_array() const { return arr_; }
  [[nodiscard]] JsonArray& as_array() { return arr_; }
  [[nodiscard]] const JsonObject& as_object() const { return obj_; }
  [[nodiscard]] JsonObject& as_object() { return obj_; }

  /// Object member access; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Appends (object kind only); does not dedup keys.
  void set(std::string key, Json value);

  /// Serialises this value.  `indent` < 0 emits compact single-line JSON;
  /// otherwise pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parser: the full input must be exactly one JSON value (trailing
  /// garbage fails).  Returns nullopt on any syntax error.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

}  // namespace vsim::obs
