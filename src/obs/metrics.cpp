#include "obs/metrics.h"

#include <cmath>
#include <mutex>

namespace vsim::obs {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kEventsProcessed: return "engine.events_processed";
    case Metric::kEventsCommitted: return "engine.events_committed";
    case Metric::kGvtRounds: return "engine.gvt_rounds";
    case Metric::kGvtScanItems: return "engine.gvt_scan_items";
    case Metric::kBlockedPolls: return "engine.blocked_polls";
    case Metric::kQueueOps: return "engine.queue_ops";
    case Metric::kRollbacks: return "tw.rollbacks";
    case Metric::kEventsUndone: return "tw.events_undone";
    case Metric::kAntiMessages: return "tw.anti_messages";
    case Metric::kAnnihilations: return "tw.annihilations";
    case Metric::kLazyReuses: return "tw.lazy_reuses";
    case Metric::kLazyCancels: return "tw.lazy_cancels";
    case Metric::kStateSaves: return "tw.state_saves";
    case Metric::kModeSwitches: return "tw.mode_switches";
    case Metric::kMessagesLocal: return "net.messages_local";
    case Metric::kMessagesRemote: return "net.messages_remote";
    case Metric::kNullMessages: return "net.null_messages";
    case Metric::kMailboxBatches: return "net.mailbox_batches";
    case Metric::kTransportDataSent: return "transport.data_sent";
    case Metric::kTransportAcksSent: return "transport.acks_sent";
    case Metric::kTransportDelivered: return "transport.delivered";
    case Metric::kTransportDropped: return "transport.dropped";
    case Metric::kTransportDuplicated: return "transport.duplicated";
    case Metric::kTransportReordered: return "transport.reordered";
    case Metric::kTransportRetransmits: return "transport.retransmits";
    case Metric::kTransportDupDiscarded: return "transport.dup_discarded";
    case Metric::kTransportBuffered: return "transport.buffered";
    case Metric::kCheckpoints: return "ckpt.checkpoints";
    case Metric::kCheckpointUndone: return "ckpt.events_undone";
    case Metric::kCrashes: return "ckpt.crashes";
    case Metric::kRecoveries: return "ckpt.recoveries";
    case Metric::kLpsRestored: return "ckpt.lps_restored";
    case Metric::kCheckpointDiskBytes: return "ckpt.disk_bytes";
    case Metric::kMigrations: return "engine.migrations";
    case Metric::kRebalanceRounds: return "engine.rebalance_rounds";
    case Metric::kNetFramesSent: return "net.frames_sent";
    case Metric::kNetFramesRecv: return "net.frames_recv";
    case Metric::kNetHeartbeats: return "net.heartbeats";
    case Metric::kNetReconnects: return "net.reconnects";
    case Metric::kNetDisconnects: return "net.disconnects";
    case Metric::kNetCrcErrors: return "net.crc_errors";
    case Metric::kNativeBodies: return "frontend.native_bodies";
    case Metric::kCodegenCacheHits: return "frontend.codegen_cache_hits";
    case Metric::kCodegenCompiles: return "frontend.codegen_compiles";
    case Metric::kInterpFallbacks: return "frontend.interp_fallbacks";
    case Metric::kAdaptDemotions: return "adapt.demotions";
    case Metric::kAdaptPromotions: return "adapt.promotions";
    case Metric::kAdaptPins: return "adapt.pinned";
    case Metric::kAdaptDeferrals: return "adapt.deferrals";
    case Metric::kCount: break;
  }
  return "unknown";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::kPeakHistory: return "tw.peak_history";
    case Gauge::kTotalHistory: return "tw.total_history";
    case Gauge::kMakespan: return "engine.makespan";
    case Gauge::kFtOverhead: return "ckpt.overhead_cost";
    case Gauge::kLbImbalance: return "lb.imbalance";
    case Gauge::kCodegenCompileMs: return "frontend.codegen_compile_ms";
    case Gauge::kAdaptOptimisticFraction: return "adapt.optimistic_fraction";
    case Gauge::kCount: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kRollbackDepth: return "tw.rollback_depth";
    case Hist::kBatchSize: return "net.batch_size";
    case Hist::kCount: break;
  }
  return "unknown";
}

void Histogram::observe(double v) {
  if (v < 0) v = 0;
  std::size_t b = 0;
  // bucket i covers [2^(i-1), 2^i); bucket 0 covers [0, 1).
  while (b + 1 < kBuckets && v >= static_cast<double>(1ULL << b)) ++b;
  ++buckets[b];
  ++count;
  sum += v;
  if (v > max) max = v;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  if (o.max > max) max = o.max;
  return *this;
}

Json Histogram::to_json() const {
  JsonObject o;
  o.emplace_back("count", Json(count));
  o.emplace_back("sum", Json(sum));
  o.emplace_back("max", Json(max));
  // Sparse bucket map keyed by the bucket's exclusive upper bound.
  JsonObject bk;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double hi = static_cast<double>(1ULL << i);
    bk.emplace_back("lt_" + std::to_string(static_cast<long long>(hi)),
                    Json(buckets[i]));
  }
  o.emplace_back("buckets", Json(std::move(bk)));
  return Json(std::move(o));
}

Json MetricsSnapshot::to_json() const {
  JsonObject o;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    o.emplace_back(metric_name(static_cast<Metric>(i)), Json(counters[i]));
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    o.emplace_back(gauge_name(static_cast<Gauge>(i)), Json(gauges[i]));
  }
  for (std::size_t i = 0; i < hists.size(); ++i) {
    o.emplace_back(hist_name(static_cast<Hist>(i)), hists[i].to_json());
  }
  return Json(std::move(o));
}

void encode_snapshot(vsim::bytes::Writer& w, const MetricsSnapshot& s) {
  w.u32(static_cast<std::uint32_t>(s.counters.size()));
  for (std::uint64_t c : s.counters) w.u64(c);
  w.u32(static_cast<std::uint32_t>(s.gauges.size()));
  for (double g : s.gauges) w.f64(g);
  w.u32(static_cast<std::uint32_t>(s.hists.size()));
  for (const Histogram& h : s.hists) {
    w.u64(h.count);
    w.f64(h.sum);
    w.f64(h.max);
    for (std::uint64_t b : h.buckets) w.u64(b);
  }
}

bool decode_snapshot(vsim::bytes::Reader& r, MetricsSnapshot* out) {
  MetricsSnapshot s;
  if (r.u32() != s.counters.size()) return false;
  for (std::uint64_t& c : s.counters) c = r.u64();
  if (r.u32() != s.gauges.size()) return false;
  for (double& g : s.gauges) g = r.f64();
  if (r.u32() != s.hists.size()) return false;
  for (Histogram& h : s.hists) {
    h.count = r.u64();
    h.sum = r.f64();
    h.max = r.f64();
    for (std::uint64_t& b : h.buckets) b = r.u64();
  }
  if (!r.ok()) return false;
  *out = s;
  return true;
}

void merge_snapshot(MetricsSnapshot& into, const MetricsSnapshot& from) {
  for (std::size_t i = 0; i < into.counters.size(); ++i)
    into.counters[i] += from.counters[i];
  for (std::size_t i = 0; i < into.gauges.size(); ++i)
    if (from.gauges[i] > into.gauges[i]) into.gauges[i] = from.gauges[i];
  for (std::size_t i = 0; i < into.hists.size(); ++i)
    into.hists[i] += from.hists[i];
}

namespace {
struct ProcessGlobals {
  std::mutex mu;
  MetricsSnapshot totals;
};
ProcessGlobals& process_globals() {
  static ProcessGlobals g;
  return g;
}
}  // namespace

void process_counter_add(Metric m, std::uint64_t delta) {
  ProcessGlobals& g = process_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  g.totals.counters[static_cast<std::size_t>(m)] += delta;
}

void process_gauge_max(Gauge gg, double v) {
  ProcessGlobals& g = process_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  double& slot = g.totals.gauges[static_cast<std::size_t>(gg)];
  if (v > slot) slot = v;
}

MetricsSnapshot process_metrics() {
  ProcessGlobals& g = process_globals();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.totals;
}

void MetricsRegistry::merge() {
  MetricsSnapshot out;
  for (const MetricsShard& s : shards_) {
    for (std::size_t i = 0; i < out.counters.size(); ++i) {
      out.counters[i] += s.counters_[i];
    }
    for (std::size_t i = 0; i < out.gauges.size(); ++i) {
      if (s.gauges_[i] > out.gauges[i]) out.gauges[i] = s.gauges_[i];
    }
    for (std::size_t i = 0; i < out.hists.size(); ++i) {
      out.hists[i] += s.hists_[i];
    }
  }
  merged_ = out;
}

}  // namespace vsim::obs
