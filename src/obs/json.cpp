#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace vsim::obs {

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;
  obj_.emplace_back(std::move(key), std::move(value));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the least-bad
    out += "null";
    return;
  }
  // Integers (the common case: counters, ids) print exactly; everything
  // else round-trips through %.17g.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: append_number(out, num_); return;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(obj_[i].first);
        out += indent >= 0 ? "\": " : "\":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Json> parse_document() {
    skip_ws();
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool match(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= s_.size()) return std::nullopt;
    switch (s_[pos_]) {
      case 'n': return match("null") ? std::optional<Json>(Json()) : std::nullopt;
      case 't': return match("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f':
        return match("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return std::nullopt;
            }
            // UTF-8 encode (surrogate pairs are not recombined; the tracer
            // never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return Json(d);
  }

  std::optional<Json> parse_array() {
    if (!eat('[')) return std::nullopt;
    JsonArray out;
    skip_ws();
    if (eat(']')) return Json(std::move(out));
    for (;;) {
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return Json(std::move(out));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!eat('{')) return std::nullopt;
    JsonObject out;
    skip_ws();
    if (eat('}')) return Json(std::move(out));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      skip_ws();
      auto v = parse_value();
      if (!v) return std::nullopt;
      out.emplace_back(key->as_string(), std::move(*v));
      skip_ws();
      if (eat('}')) return Json(std::move(out));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace vsim::obs
