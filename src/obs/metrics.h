// Lock-cheap metrics registry: counters, gauges and histograms, sharded per
// worker and merged at synchronisation (GVT) rounds.
//
// Design: the engines are single-writer per worker, so each worker owns a
// MetricsShard -- plain arrays indexed by compile-time metric ids, no atomics
// or locks on the hot path.  merge() folds the shards into one consistent
// MetricsSnapshot; the engines call it inside their GVT rounds (where every
// worker is parked at a barrier or the engine is single-threaded), which is
// the only point a cross-worker total is well-defined anyway.  The snapshot
// is what RunStats carries and what bench reports serialise -- it supersedes
// ad-hoc summing loops over per-LP/per-worker stats structs.
//
// The metric id spaces are closed enums: every counter the engines emit is
// named here, next to its schema name.  DESIGN.md ("Observability") is the
// human-readable registry of the same schema.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "obs/json.h"

namespace vsim::obs {

/// Monotonic counters.  Schema names (metric_name()) are dot-scoped:
/// `engine.*` scheduler-level, `tw.*` Time Warp, `net.*` message routing,
/// `transport.*` wire/channel layer, `ckpt.*` fault tolerance.
enum class Metric : std::uint16_t {
  // Scheduler (hot path: incremented by the owning worker's shard).
  kEventsProcessed,   ///< engine.events_processed (incl. re-executions)
  kEventsCommitted,   ///< engine.events_committed
  kGvtRounds,         ///< engine.gvt_rounds
  /// engine.gvt_scan_items — candidates touched by GVT min-reductions, the
  /// direct evidence that rounds are hierarchical: per-worker minima come
  /// from each worker's ordered ready structure, so this grows with the
  /// worker count (machine model) or the per-worker LP count (threaded),
  /// NOT with workers x LPs.
  kGvtScanItems,
  kBlockedPolls,      ///< engine.blocked_polls
  kQueueOps,          ///< engine.queue_ops — pending-queue push/pop/annihilate
  // Time Warp protocol.
  kRollbacks,         ///< tw.rollbacks
  kEventsUndone,      ///< tw.events_undone
  kAntiMessages,      ///< tw.anti_messages
  kAnnihilations,     ///< tw.annihilations
  kLazyReuses,        ///< tw.lazy_reuses
  kLazyCancels,       ///< tw.lazy_cancels
  kStateSaves,        ///< tw.state_saves
  kModeSwitches,      ///< tw.mode_switches
  // Message routing (engine router, above the transport stack).
  kMessagesLocal,     ///< net.messages_local
  kMessagesRemote,    ///< net.messages_remote
  kNullMessages,      ///< net.null_messages
  kMailboxBatches,    ///< net.mailbox_batches — batch flushes into inboxes
  // Transport stack (folded from TransportCounters at run end).
  kTransportDataSent,      ///< transport.data_sent
  kTransportAcksSent,      ///< transport.acks_sent
  kTransportDelivered,     ///< transport.delivered
  kTransportDropped,       ///< transport.dropped
  kTransportDuplicated,    ///< transport.duplicated
  kTransportReordered,     ///< transport.reordered
  kTransportRetransmits,   ///< transport.retransmits
  kTransportDupDiscarded,  ///< transport.dup_discarded
  kTransportBuffered,      ///< transport.buffered
  // Fault tolerance (folded from CheckpointStats).
  kCheckpoints,            ///< ckpt.checkpoints
  kCheckpointUndone,       ///< ckpt.events_undone
  kCrashes,                ///< ckpt.crashes
  kRecoveries,             ///< ckpt.recoveries
  kLpsRestored,            ///< ckpt.lps_restored
  kCheckpointDiskBytes,    ///< ckpt.disk_bytes
  // Dynamic load balancing (partition/rebalance.h).
  kMigrations,             ///< engine.migrations — LPs moved between workers
  kRebalanceRounds,        ///< engine.rebalance_rounds — planner evaluations
  // Socket layer (src/net, distributed engine only).
  kNetFramesSent,          ///< net.frames_sent — wire frames written
  kNetFramesRecv,          ///< net.frames_recv — wire frames parsed
  kNetHeartbeats,          ///< net.heartbeats — heartbeat frames sent
  kNetReconnects,          ///< net.reconnects — successful redials
  kNetDisconnects,         ///< net.disconnects — connection losses observed
  kNetCrcErrors,           ///< net.crc_errors — frames dropped on checksum
  // Frontend native codegen (process-global, folded at run end).
  kNativeBodies,           ///< frontend.native_bodies — compiled bodies built
  kCodegenCacheHits,       ///< frontend.codegen_cache_hits — .so reuses
  kCodegenCompiles,        ///< frontend.codegen_compiles — compiler runs
  kInterpFallbacks,        ///< frontend.interp_fallbacks — native -> interp
  // Dynamic adaptation (adaptive.h).  Demotions/promotions/pins are per-LP
  // counters folded from LpStats at run end; deferrals are shard-native
  // (charged by the controller's owner when the round budget runs out).
  kAdaptDemotions,         ///< adapt.demotions — optimistic -> conservative
  kAdaptPromotions,        ///< adapt.promotions — conservative -> optimistic
  kAdaptPins,              ///< adapt.pinned — LPs pinned conservative
  kAdaptDeferrals,         ///< adapt.deferrals — demotions deferred by budget
  kCount
};

/// Gauges: merged with MAX across shards (a gauge is a level, not a flow).
enum class Gauge : std::uint16_t {
  kPeakHistory,   ///< tw.peak_history — largest saved-history length of any LP
  kTotalHistory,  ///< tw.total_history — summed per-LP peak history (memory proxy)
  kMakespan,      ///< engine.makespan — machine model critical path
  kFtOverhead,    ///< ckpt.overhead_cost — work units charged to fault tolerance
  kLbImbalance,   ///< lb.imbalance — peak (max-min)/avg worker load observed
                  ///< at a rebalance round (gauges merge with MAX)
  kCodegenCompileMs,  ///< frontend.codegen_compile_ms — slowest .so compile
  kAdaptOptimisticFraction,  ///< adapt.optimistic_fraction — LPs ending the
                             ///< run optimistic / all LPs (max across merges
                             ///< is a no-op: folded once at run end)
  kCount
};

/// Histograms: power-of-two buckets, merged by bucket-wise addition.
enum class Hist : std::uint16_t {
  kRollbackDepth,  ///< tw.rollback_depth — events undone per rollback
  kBatchSize,      ///< net.batch_size — packets per flushed mailbox batch
  kCount
};

[[nodiscard]] const char* metric_name(Metric m);
[[nodiscard]] const char* gauge_name(Gauge g);
[[nodiscard]] const char* hist_name(Hist h);

/// Log2-bucketed histogram: bucket i counts observations in [2^(i-1), 2^i)
/// (bucket 0 is [0, 1)).  Fixed size, trivially mergeable.
struct Histogram {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  void observe(double v);
  Histogram& operator+=(const Histogram& o);
  [[nodiscard]] Json to_json() const;
};

/// One worker's private slice of the registry.  Single-writer: only the
/// owning worker may call the mutating methods, so none of them synchronise.
class MetricsShard {
 public:
  void inc(Metric m, std::uint64_t delta = 1) {
    counters_[static_cast<std::size_t>(m)] += delta;
  }
  void gauge_max(Gauge g, double v) {
    auto& slot = gauges_[static_cast<std::size_t>(g)];
    if (v > slot) slot = v;
  }
  void observe(Hist h, double v) {
    hists_[static_cast<std::size_t>(h)].observe(v);
  }

 private:
  friend class MetricsRegistry;
  std::array<std::uint64_t, static_cast<std::size_t>(Metric::kCount)>
      counters_{};
  std::array<double, static_cast<std::size_t>(Gauge::kCount)> gauges_{};
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount)> hists_{};
};

/// Consistent merged view of all shards, frozen at a merge point.
struct MetricsSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Metric::kCount)>
      counters{};
  std::array<double, static_cast<std::size_t>(Gauge::kCount)> gauges{};
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount)> hists{};

  [[nodiscard]] std::uint64_t counter(Metric m) const {
    return counters[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] double gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const Histogram& histogram(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
  /// Flat name -> value object (histograms expand to sub-objects); the
  /// serialisation used by bench reports.
  [[nodiscard]] Json to_json() const;
};

/// Byte codec and cross-process merge for snapshots, used by the
/// distributed engine to ship per-rank metrics to the *current coordinator*
/// at GVT rounds and at run end (rank 0 only until a failover promotes a
/// successor -- the codec does not care who assembles).  Each rank ships one
/// pre-merged snapshot, so the cross-process reduction is O(ranks), not
/// O(ranks x LPs) -- the same hierarchical shape as the GVT scan.  decode tolerates snapshots from a binary with a different
/// metric count (older/newer rank mix is a config error upstream; this just
/// refuses to misalign).  merge_snapshot applies the same semantics as
/// MetricsRegistry::merge: counters add, gauges max, histograms add.
void encode_snapshot(vsim::bytes::Writer& w, const MetricsSnapshot& s);
[[nodiscard]] bool decode_snapshot(vsim::bytes::Reader& r,
                                   MetricsSnapshot* out);
void merge_snapshot(MetricsSnapshot& into, const MetricsSnapshot& from);

/// Process-global counters for work performed outside any engine run --
/// today, elaboration-time native codegen.  Thread-safe (mutexed; these are
/// cold paths).  pdes::absorb_run_stats folds the current totals into every
/// run's shard 0, so RunStats.metrics carries the process-wide totals as of
/// that run's end (cumulative across runs in one process by design).
void process_counter_add(Metric m, std::uint64_t delta = 1);
void process_gauge_max(Gauge g, double v);
/// Snapshot of the process-global counters/gauges (histograms unused).
[[nodiscard]] MetricsSnapshot process_metrics();

/// Owns one shard per worker plus the merged totals.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t num_shards = 1)
      : shards_(num_shards ? num_shards : 1) {}

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] MetricsShard& shard(std::size_t i) { return shards_[i]; }

  /// Folds every shard into the merged totals.  Must be called at a point
  /// where no shard is being written (a GVT round barrier, or after the
  /// workers joined); shards keep accumulating monotonically, so merging is
  /// a recomputation, not a destructive drain.
  void merge();

  /// The totals as of the last merge().
  [[nodiscard]] const MetricsSnapshot& merged() const { return merged_; }

 private:
  std::vector<MetricsShard> shards_;
  MetricsSnapshot merged_;
};

}  // namespace vsim::obs
