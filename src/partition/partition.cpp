#include "partition/partition.h"

#include <algorithm>
#include <queue>

namespace vsim::partition {

pdes::Partition round_robin(std::size_t n_lps, std::size_t n_workers) {
  pdes::Partition p(n_lps);
  for (std::size_t i = 0; i < n_lps; ++i)
    p[i] = static_cast<std::uint32_t>(i % n_workers);
  return p;
}

pdes::Partition blocks(std::size_t n_lps, std::size_t n_workers) {
  pdes::Partition p(n_lps);
  const std::size_t per = (n_lps + n_workers - 1) / n_workers;
  for (std::size_t i = 0; i < n_lps; ++i)
    p[i] = static_cast<std::uint32_t>(std::min(i / per, n_workers - 1));
  return p;
}

pdes::Partition bipartite_bfs(const pdes::LpGraph& graph,
                              std::size_t n_workers) {
  const std::size_t n = graph.size();
  std::vector<pdes::LpId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  for (pdes::LpId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::queue<pdes::LpId> q;
    q.push(start);
    seen[start] = true;
    while (!q.empty()) {
      const pdes::LpId u = q.front();
      q.pop();
      order.push_back(u);
      for (pdes::LpId v : graph.fan_out(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
      for (pdes::LpId v : graph.fan_in(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
    }
  }
  pdes::Partition p(n);
  const std::size_t per = (n + n_workers - 1) / n_workers;
  for (std::size_t i = 0; i < n; ++i)
    p[order[i]] = static_cast<std::uint32_t>(std::min(i / per, n_workers - 1));
  return p;
}

std::size_t cut_size(const pdes::LpGraph& graph, const pdes::Partition& part) {
  std::size_t cut = 0;
  for (pdes::LpId u = 0; u < graph.size(); ++u) {
    for (pdes::LpId v : graph.fan_out(u)) {
      if (part[u] != part[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace vsim::partition
