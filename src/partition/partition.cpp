#include "partition/partition.h"

#include <algorithm>
#include <queue>

namespace vsim::partition {

namespace {

/// Worker of position `i` when n positions are cut into n_workers contiguous
/// chunks whose sizes differ by at most one: the first n % n_workers chunks
/// get one extra position.  A plain ceil(n / n_workers) chunk size is NOT
/// equivalent -- with n=6, workers=4 it yields loads 2/2/2/0, idling a whole
/// worker even though n >= n_workers.
std::uint32_t balanced_chunk(std::size_t i, std::size_t n,
                             std::size_t n_workers) {
  const std::size_t base = n / n_workers;
  const std::size_t extra = n % n_workers;
  const std::size_t big = extra * (base + 1);  // positions in the big chunks
  if (i < big) return static_cast<std::uint32_t>(i / (base + 1));
  return static_cast<std::uint32_t>(extra + (i - big) / std::max<std::size_t>(
                                                            base, 1));
}

}  // namespace

pdes::Partition round_robin(std::size_t n_lps, std::size_t n_workers) {
  pdes::Partition p(n_lps);
  for (std::size_t i = 0; i < n_lps; ++i)
    p[i] = static_cast<std::uint32_t>(i % n_workers);
  return p;
}

pdes::Partition blocks(std::size_t n_lps, std::size_t n_workers) {
  pdes::Partition p(n_lps);
  for (std::size_t i = 0; i < n_lps; ++i)
    p[i] = balanced_chunk(i, n_lps, n_workers);
  return p;
}

pdes::Partition bipartite_bfs(const pdes::LpGraph& graph,
                              std::size_t n_workers) {
  const std::size_t n = graph.size();
  std::vector<pdes::LpId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  for (pdes::LpId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::queue<pdes::LpId> q;
    q.push(start);
    seen[start] = true;
    while (!q.empty()) {
      const pdes::LpId u = q.front();
      q.pop();
      order.push_back(u);
      for (pdes::LpId v : graph.fan_out(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
      for (pdes::LpId v : graph.fan_in(u)) {
        if (!seen[v]) {
          seen[v] = true;
          q.push(v);
        }
      }
    }
  }
  pdes::Partition p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[order[i]] = balanced_chunk(i, n, n_workers);
  return p;
}

std::size_t cut_size(const pdes::LpGraph& graph, const pdes::Partition& part) {
  // Counts undirected channel PAIRS: u->v and v->u between the same two LPs
  // are one physical connection, not two, so a bidirectional link crossing a
  // boundary contributes exactly 1 (it used to count 2, inflating the metric
  // on exactly the circuit-shaped graphs it is meant to rank).  Each node
  // considers only higher-id neighbours, deduplicated across direction and
  // parallel channels.
  std::size_t cut = 0;
  std::vector<pdes::LpId> nbrs;
  for (pdes::LpId u = 0; u < graph.size(); ++u) {
    nbrs.clear();
    for (pdes::LpId v : graph.fan_out(u))
      if (v > u) nbrs.push_back(v);
    for (pdes::LpId v : graph.fan_in(u))
      if (v > u) nbrs.push_back(v);
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (pdes::LpId v : nbrs)
      if (part[u] != part[v]) ++cut;
  }
  return cut;
}

}  // namespace vsim::partition
