#include "partition/rebalance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vsim::partition {

namespace {

/// Deduplicated undirected neighbours of `u` (both channel directions, each
/// neighbour once, self-loops removed) -- the same pair semantics as
/// cut_size().
void undirected_neighbours(const pdes::LpGraph& graph, pdes::LpId u,
                           std::vector<pdes::LpId>& out) {
  out.clear();
  for (pdes::LpId v : graph.fan_out(u))
    if (v != u) out.push_back(v);
  for (pdes::LpId v : graph.fan_in(u))
    if (v != u) out.push_back(v);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

/// Net change in cut size if `lp` moved from `src` to `dst`: channels to
/// src-mates become cut, channels to dst-mates become internal, channels to
/// third workers are unaffected.
double cut_delta(const pdes::LpGraph& graph, const pdes::Partition& part,
                 pdes::LpId lp, std::uint32_t src, std::uint32_t dst,
                 std::vector<pdes::LpId>& scratch) {
  undirected_neighbours(graph, lp, scratch);
  double delta = 0.0;
  for (pdes::LpId v : scratch) {
    if (part[v] == src) delta += 1.0;
    if (part[v] == dst) delta -= 1.0;
  }
  return delta;
}

struct Loads {
  std::vector<double> load;
  std::size_t n_alive = 0;
};

Loads worker_loads(const pdes::Partition& part,
                   const std::vector<double>& lp_work,
                   const std::vector<bool>& alive) {
  Loads l;
  l.load.assign(alive.size(), 0.0);
  for (std::size_t lp = 0; lp < part.size(); ++lp) {
    const std::uint32_t w = part[lp];
    if (w < alive.size() && alive[w]) l.load[w] += lp_work[lp];
  }
  for (bool a : alive)
    if (a) ++l.n_alive;
  return l;
}

}  // namespace

double imbalance(const std::vector<double>& load,
                 const std::vector<bool>& alive) {
  double lo = std::numeric_limits<double>::max();
  double hi = 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t w = 0; w < load.size(); ++w) {
    if (w < alive.size() && !alive[w]) continue;
    lo = std::min(lo, load[w]);
    hi = std::max(hi, load[w]);
    sum += load[w];
    ++n;
  }
  if (n < 2 || sum <= 0.0) return 0.0;
  return (hi - lo) / (sum / static_cast<double>(n));
}

RebalancePlan plan_rebalance(const pdes::LpGraph& graph,
                             const pdes::Partition& part,
                             const std::vector<double>& lp_work,
                             const std::vector<bool>& alive,
                             const pdes::RebalanceConfig& cfg) {
  RebalancePlan plan;
  Loads l = worker_loads(part, lp_work, alive);
  plan.imbalance_before = imbalance(l.load, alive);
  plan.imbalance_after = plan.imbalance_before;
  if (l.n_alive < 2) return plan;
  // Hysteresis: a placement within tolerance is left alone, so repeated
  // rounds over a balanced load never oscillate.
  if (plan.imbalance_before < cfg.imbalance_trigger) return plan;

  // Work on a copy of the mapping so cut deltas see earlier moves.
  pdes::Partition cur = part;
  std::vector<std::size_t> owned_count(alive.size(), 0);
  for (std::uint32_t w : cur)
    if (w < owned_count.size()) ++owned_count[w];
  // Scale for the cut tie-break: one crossing channel is worth a fraction
  // of the mean per-LP work, keeping the two terms comparable across
  // workload sizes.
  double total = 0.0;
  for (double v : lp_work) total += v;
  const double unit =
      part.empty() ? 1.0 : std::max(total / static_cast<double>(part.size()),
                                    1e-9);

  std::vector<pdes::LpId> scratch;
  for (std::uint32_t m = 0; m < cfg.max_moves; ++m) {
    // Most and least loaded alive workers (ties -> lowest id).
    std::size_t src = alive.size(), dst = alive.size();
    for (std::size_t w = 0; w < alive.size(); ++w) {
      if (!alive[w]) continue;
      if (src == alive.size() || l.load[w] > l.load[src]) src = w;
      if (dst == alive.size() || l.load[w] < l.load[dst]) dst = w;
    }
    const double gap = l.load[src] - l.load[dst];
    if (src == dst || gap <= 0.0) break;
    if (owned_count[src] < 2) break;  // moving the last LP only swaps roles

    // Candidate: the src-owned LP whose work is closest to half the gap
    // (any work strictly below the gap shrinks it), cut-aware tie-break.
    const double target = gap / 2.0;
    pdes::LpId best = pdes::kInvalidLp;
    double best_score = std::numeric_limits<double>::max();
    for (pdes::LpId lp = 0; lp < cur.size(); ++lp) {
      if (cur[lp] != src) continue;
      const double w = lp_work[lp];
      if (w >= gap) continue;  // would overshoot: inverts the imbalance
      if (w < cfg.min_gain * gap) continue;  // not worth a migration
      const double score =
          std::abs(w - target) +
          cfg.cut_weight * unit *
              cut_delta(graph, cur, lp, static_cast<std::uint32_t>(src),
                        static_cast<std::uint32_t>(dst), scratch);
      if (score < best_score) {
        best_score = score;
        best = lp;
      }
    }
    if (best == pdes::kInvalidLp) break;

    plan.moves.push_back({best, static_cast<std::uint32_t>(src),
                          static_cast<std::uint32_t>(dst)});
    cur[best] = static_cast<std::uint32_t>(dst);
    l.load[src] -= lp_work[best];
    l.load[dst] += lp_work[best];
    --owned_count[src];
    ++owned_count[dst];
  }
  plan.imbalance_after = imbalance(l.load, alive);
  return plan;
}

void redistribute_orphans(const pdes::LpGraph& graph, pdes::Partition& part,
                          const std::vector<double>& lp_work,
                          const std::vector<bool>& alive,
                          const pdes::RebalanceConfig& cfg) {
  Loads l = worker_loads(part, lp_work, alive);
  if (l.n_alive == 0) return;
  double total = 0.0;
  for (double v : lp_work) total += v;
  const double unit =
      part.empty() ? 1.0 : std::max(total / static_cast<double>(part.size()),
                                    1e-9);
  std::vector<pdes::LpId> scratch;
  for (pdes::LpId lp = 0; lp < part.size(); ++lp) {
    const std::uint32_t owner = part[lp];
    if (owner < alive.size() && alive[owner]) continue;
    // The +1 keeps zero-work orphans (a crash before any stats) spreading
    // by count instead of all landing on the first survivor.
    const double w = (lp < lp_work.size() ? lp_work[lp] : 0.0) + 1.0;
    undirected_neighbours(graph, lp, scratch);
    std::size_t best = alive.size();
    double best_score = std::numeric_limits<double>::max();
    for (std::size_t s = 0; s < alive.size(); ++s) {
      if (!alive[s]) continue;
      double affinity = 0.0;
      for (pdes::LpId v : scratch)
        if (part[v] == s) affinity += 1.0;
      const double score =
          l.load[s] + w - cfg.cut_weight * unit * affinity;
      if (score < best_score) {
        best_score = score;
        best = s;
      }
    }
    part[lp] = static_cast<std::uint32_t>(best);
    l.load[best] += w;
  }
}

}  // namespace vsim::partition
