// LP -> worker assignment.
//
// The paper used a naive partitioning (equal number of LPs per processor)
// and notes that the bipartite process/signal topology admits better
// locality-aware schemes ("Remarks", Sec. 3.4).  Both are provided.
//
// These schemes assign whatever LPs the graph holds: on a flat graph that
// is one LP per signal/process; on a fused graph (pdes/cluster.h) each
// "LP" is a whole ClusterLp, so the placement unit at six-figure netlist
// scale is the cluster, not the individual signal.  Granularity below the
// worker level is cluster.h's job (partition/cluster.h), not this file's.
#pragma once

#include "pdes/graph.h"
#include "pdes/machine.h"  // Partition

namespace vsim::partition {

/// The paper's naive scheme: LP i goes to worker i % n_workers.
[[nodiscard]] pdes::Partition round_robin(std::size_t n_lps,
                                          std::size_t n_workers);

/// Contiguous blocks of LP ids (preserves builder locality).  Per-worker
/// counts differ by at most one; no worker is empty when n_lps >= n_workers.
[[nodiscard]] pdes::Partition blocks(std::size_t n_lps,
                                     std::size_t n_workers);

/// Bipartite-aware scheme: orders LPs by BFS over the undirected channel
/// graph (keeping each signal near its processes; every component is visited
/// exactly once), then cuts the order into chunks whose sizes differ by at
/// most one.  Reduces cross-worker messages on circuit-shaped graphs.
[[nodiscard]] pdes::Partition bipartite_bfs(const pdes::LpGraph& graph,
                                            std::size_t n_workers);

/// Number of undirected channel pairs crossing worker boundaries (quality
/// metric).  A bidirectional u<->v connection counts once, not twice.
[[nodiscard]] std::size_t cut_size(const pdes::LpGraph& graph,
                                   const pdes::Partition& part);

}  // namespace vsim::partition
