// Dynamic load balancing: LP migration planning at GVT rounds.
//
// The paper's static equal-count placement leaves workers idle whenever the
// circuit's activity is unevenly distributed ("Remarks", Sec. 3.4: the
// speedup curves flatten exactly where placement is the bottleneck).  This
// module closes the loop the observability layer opened: the engines already
// know, per LP, how many events were committed and how many were rolled
// back; at a configurable cadence of GVT rounds the round coordinator feeds
// those counters in here and gets back a bounded, deterministic list of LP
// migrations.
//
// The planner is pure (no engine state): engines own the execution side --
// packing LP state with the checkpoint codec and retargeting routing --
// which is safe precisely at a GVT round, where the network has been drained
// to quiescence and every worker is parked at a barrier (see DESIGN.md,
// "Dynamic load balancing").
//
// Algorithm: greedy diffusion with hysteresis.  Score each alive worker's
// load as the sum of its LPs' work (committed events + rollback_weight x
// undone events); do nothing while (max - min) / avg is below the
// imbalance_trigger.  Otherwise repeatedly move one LP from the most loaded
// to the least loaded worker: the LP whose work is closest to half the load
// gap, with a cut-size tie-break so near-equal candidates prefer keeping
// channel neighbours together.  At most max_moves LPs move per round, and
// every move strictly shrinks the src/dst gap, so placement cannot thrash.
//
// The same machinery serves crash recovery: redistribute_orphans() replaces
// the old round-robin scattering of a dead worker's LPs under the
// kRedistribute policy with load- and cut-aware placement.
//
// On a clustered graph (pdes/cluster.h) the migration unit is a whole
// ClusterLp: the planner sees one work score per cluster and a move packs
// the cluster's inners through the checkpoint codec in one shot -- coarser,
// cheaper migrations, and the plan size stays bounded by clusters rather
// than flat LPs.
#pragma once

#include <vector>

#include "pdes/config.h"
#include "pdes/graph.h"
#include "pdes/machine.h"  // Partition

namespace vsim::partition {

/// One planned migration: move `lp` from worker `from` to worker `to`.
struct Migration {
  pdes::LpId lp = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

/// Output of plan_rebalance(): the moves plus the imbalance score before and
/// after (as predicted from the work model; `lb.imbalance` gauges the
/// before value).
struct RebalancePlan {
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  std::vector<Migration> moves;
  [[nodiscard]] bool empty() const { return moves.empty(); }
};

/// Relative load spread (max - min) / avg over alive workers; 0 when fewer
/// than two workers are alive or no work has been recorded.
[[nodiscard]] double imbalance(const std::vector<double>& load,
                               const std::vector<bool>& alive);

/// Plans a bounded set of migrations (possibly none).  `lp_work` is the
/// per-LP work score for the window being balanced over; `alive[w]` == false
/// excludes worker w as both source and destination.  Deterministic: equal
/// scores break towards the lowest worker / LP id.
[[nodiscard]] RebalancePlan plan_rebalance(const pdes::LpGraph& graph,
                                           const pdes::Partition& part,
                                           const std::vector<double>& lp_work,
                                           const std::vector<bool>& alive,
                                           const pdes::RebalanceConfig& cfg);

/// Reassigns every LP currently mapped to a dead worker (alive[part[lp]] ==
/// false) to the survivor with the least projected load, with the same
/// cut-aware tie-break as the planner.  Shared by the engines' kRedistribute
/// recovery path.  Orphans with no recorded work still spread evenly (each
/// counts at least one work unit).
void redistribute_orphans(const pdes::LpGraph& graph, pdes::Partition& part,
                          const std::vector<double>& lp_work,
                          const std::vector<bool>& alive,
                          const pdes::RebalanceConfig& cfg);

}  // namespace vsim::partition
