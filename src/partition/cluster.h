// Deterministic LP clustering: groups flat model LPs into the fused-cluster
// regions that pdes/cluster.h turns into runtime ClusterLps.
//
// The assignment is computed by seeded BFS-region growth over the UNDIRECTED
// channel graph: regions grow breadth-first from seeded start points until
// they reach the target size, so each cluster is a connected (whenever the
// graph permits) neighbourhood of the bipartite signal/process topology --
// the traffic a signal exchanges with its drivers and readers then stays
// inside one runtime LP.  Same (graph, options) always yields the same
// assignment, so clustered runs are reproducible and the sequential oracle
// comparison is meaningful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdes/graph.h"

namespace vsim::partition {

struct ClusterOptions {
  /// Desired flat LPs per cluster.  Region growth stops at this size; the
  /// final region of a connected component may be smaller.
  std::size_t target_size = 64;
  /// Optional hard upper bound on the cluster count; 0 means "derive from
  /// target_size".  When set, the per-region size target is raised to
  /// ceil(n / max_clusters) and a deterministic merge pass folds
  /// fragmentation leftovers into adjacent regions until at most
  /// max_clusters remain (so individual clusters may exceed the raised
  /// target somewhat).
  std::size_t max_clusters = 0;
  /// Seeds the start-point permutation; every value gives a valid, merely
  /// different, deterministic clustering.
  std::uint64_t seed = 1;
};

/// Flat LpId -> cluster id, contiguous 0..k-1 with every cluster non-empty.
[[nodiscard]] std::vector<std::uint32_t> cluster_bfs(
    const pdes::LpGraph& graph, const ClusterOptions& opts);

/// Number of clusters in an assignment (max id + 1; 0 for an empty one).
[[nodiscard]] std::size_t num_clusters(
    const std::vector<std::uint32_t>& assignment);

}  // namespace vsim::partition
