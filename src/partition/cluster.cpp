#include "partition/cluster.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>

namespace vsim::partition {
namespace {

constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);

// Same xorshift64* family the circuit generators use: cheap, deterministic,
// no <random> divergence across standard libraries.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

}  // namespace

std::vector<std::uint32_t> cluster_bfs(const pdes::LpGraph& graph,
                                       const ClusterOptions& opts) {
  const std::size_t n = graph.size();
  std::size_t cap = std::max<std::size_t>(1, opts.target_size);
  if (opts.max_clusters > 0)
    cap = std::max(cap, (n + opts.max_clusters - 1) / opts.max_clusters);

  // Seeded Fisher-Yates over the region start order.  Growth itself follows
  // the graph's adjacency order, so the only randomness is where regions
  // start -- enough to decorrelate clustering from construction order while
  // staying fully deterministic.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(opts.seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  std::vector<std::uint32_t> assign(n, kUnassigned);
  std::uint32_t next_cluster = 0;
  std::deque<std::uint32_t> frontier;
  for (const std::uint32_t s : order) {
    if (assign[s] != kUnassigned) continue;
    std::size_t count = 1;
    assign[s] = next_cluster;
    frontier.clear();
    frontier.push_back(s);
    while (!frontier.empty() && count < cap) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      // Undirected growth: a signal pulls in both its readers (fan-out) and
      // its drivers (fan-in), keeping whole bipartite neighbourhoods local.
      for (const auto* adj : {&graph.fan_out(u), &graph.fan_in(u)}) {
        for (const pdes::LpId v : *adj) {
          if (assign[v] != kUnassigned) continue;
          assign[v] = next_cluster;
          frontier.push_back(v);
          if (++count >= cap) break;
        }
        if (count >= cap) break;
      }
    }
    ++next_cluster;
  }

  // Merge post-pass.  Seeded growth fragments: a region whose frontier runs
  // into already-claimed neighbours stops undersized, so the raw region count
  // can far exceed n / cap.  Fold fragments back together deterministically:
  //   A) any region under half the cap merges into its smallest adjacent
  //      region whenever the combined size still fits the cap;
  //   B) when max_clusters is set it is a hard bound -- keep merging the
  //      smallest region into its smallest neighbour (cap no longer binding)
  //      until at most max_clusters remain.
  std::size_t k = next_cluster;
  std::vector<std::uint32_t> parent(k);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&parent](std::uint32_t r) {
    while (parent[r] != r) {
      parent[r] = parent[parent[r]];
      r = parent[r];
    }
    return r;
  };
  std::vector<std::size_t> rsize(k, 0);
  for (const std::uint32_t c : assign) ++rsize[c];
  std::vector<std::set<std::uint32_t>> radj(k);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const pdes::LpId v : graph.fan_out(u)) {
      const std::uint32_t a = assign[u], b = assign[v];
      if (a == b) continue;
      radj[a].insert(b);
      radj[b].insert(a);
    }
  }
  std::size_t live = k;
  const auto merge_into = [&](std::uint32_t a, std::uint32_t b) {
    rsize[b] += rsize[a];
    radj[b].erase(a);
    for (const std::uint32_t nb : radj[a]) {
      radj[nb].erase(a);
      if (nb != b) {
        radj[nb].insert(b);
        radj[b].insert(nb);
      }
    }
    radj[a].clear();
    parent[a] = b;
    --live;
  };
  // Phase A: fixpoint of cap-respecting fragment absorption.
  for (bool merged = true; merged;) {
    merged = false;
    for (std::uint32_t r = 0; r < k; ++r) {
      if (find(r) != r || rsize[r] >= (cap + 1) / 2) continue;
      std::uint32_t best = kUnassigned;
      for (const std::uint32_t nb : radj[r]) {
        if (rsize[r] + rsize[nb] > cap) continue;
        if (best == kUnassigned || rsize[nb] < rsize[best]) best = nb;
      }
      if (best == kUnassigned) continue;
      merge_into(r, best);
      merged = true;
    }
  }
  // Phase B: enforce the max_clusters bound outright.
  while (opts.max_clusters > 0 && live > opts.max_clusters) {
    std::uint32_t smallest = kUnassigned;
    for (std::uint32_t r = 0; r < k; ++r) {
      if (find(r) != r) continue;
      if (smallest == kUnassigned || rsize[r] < rsize[smallest]) smallest = r;
    }
    std::uint32_t best = kUnassigned;
    for (const std::uint32_t nb : radj[smallest]) {
      if (best == kUnassigned || rsize[nb] < rsize[best]) best = nb;
    }
    if (best == kUnassigned) {  // isolated component: take the next-smallest
      for (std::uint32_t r = 0; r < k; ++r) {
        if (find(r) != r || r == smallest) continue;
        if (best == kUnassigned || rsize[r] < rsize[best]) best = r;
      }
    }
    if (best == kUnassigned) break;  // single region left
    merge_into(smallest, best);
  }

  // Compact surviving roots to contiguous ids (ascending root order).
  std::vector<std::uint32_t> remap(k, kUnassigned);
  std::uint32_t compact = 0;
  for (std::uint32_t r = 0; r < k; ++r)
    if (find(r) == r) remap[r] = compact++;
  for (std::uint32_t& c : assign) c = remap[find(c)];
  return assign;
}

std::size_t num_clusters(const std::vector<std::uint32_t>& assignment) {
  std::uint32_t k = 0;
  for (const std::uint32_t c : assignment) k = std::max(k, c + 1);
  return k;
}

}  // namespace vsim::partition
