#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace vsim::net {

std::string Addr::str() const {
  if (tcp) return path_or_host + ":" + std::to_string(port);
  return path_or_host;
}

std::int64_t now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

namespace {

bool set_nonblock_cloexec(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl < 0 || fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) return false;
  const int fdfl = fcntl(fd, F_GETFD, 0);
  return fdfl >= 0 && fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC) >= 0;
}

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Fills `sa` for `addr`; returns the family or -1 on a bad address.
int fill_sockaddr(const Addr& addr, sockaddr_storage* sa, socklen_t* len,
                  std::string* err) {
  std::memset(sa, 0, sizeof(*sa));
  if (addr.tcp) {
    auto* in = reinterpret_cast<sockaddr_in*>(sa);
    in->sin_family = AF_INET;
    in->sin_port = htons(addr.port);
    if (inet_pton(AF_INET, addr.path_or_host.c_str(), &in->sin_addr) != 1) {
      if (err != nullptr) *err = "bad host " + addr.path_or_host;
      return -1;
    }
    *len = sizeof(sockaddr_in);
    return AF_INET;
  }
  auto* un = reinterpret_cast<sockaddr_un*>(sa);
  un->sun_family = AF_UNIX;
  if (addr.path_or_host.size() >= sizeof(un->sun_path)) {
    if (err != nullptr) *err = "socket path too long: " + addr.path_or_host;
    return -1;
  }
  std::memcpy(un->sun_path, addr.path_or_host.c_str(),
              addr.path_or_host.size() + 1);
  *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                addr.path_or_host.size() + 1);
  return AF_UNIX;
}

}  // namespace

int listen_on(const Addr& addr, std::string* err) {
  sockaddr_storage sa{};
  socklen_t len = 0;
  const int family = fill_sockaddr(addr, &sa, &len, err);
  if (family < 0) return -1;
  if (!addr.tcp) ::unlink(addr.path_or_host.c_str());
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = errno_str("socket");
    return -1;
  }
  if (addr.tcp) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (!set_nonblock_cloexec(fd) ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), len) < 0 ||
      ::listen(fd, SOMAXCONN) < 0) {
    if (err != nullptr) *err = errno_str(("bind/listen " + addr.str()).c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

int dial(const Addr& addr, std::string* err) {
  sockaddr_storage sa{};
  socklen_t len = 0;
  const int family = fill_sockaddr(addr, &sa, &len, err);
  if (family < 0) return -1;
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = errno_str("socket");
    return -1;
  }
  if (!set_nonblock_cloexec(fd)) {
    if (err != nullptr) *err = errno_str("fcntl");
    ::close(fd);
    return -1;
  }
  if (addr.tcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), len) < 0 &&
      errno != EINPROGRESS && errno != EAGAIN) {
    if (err != nullptr) *err = errno_str(("connect " + addr.str()).c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

bool dial_finished(int fd, std::string* err) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0) soerr = errno;
  if (soerr == 0) return true;
  if (err != nullptr)
    *err = std::string("connect: ") + std::strerror(soerr);
  return false;
}

int accept_conn(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblock_cloexec(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int read_some(int fd, std::uint8_t* buf, std::size_t cap) {
  const ssize_t n = ::recv(fd, buf, cap, 0);
  if (n > 0) return static_cast<int>(n);
  if (n == 0) return -1;  // orderly EOF
  return (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) ? 0 : -1;
}

int write_some(int fd, const std::uint8_t* buf, std::size_t n) {
  const ssize_t w = ::send(fd, buf, n, MSG_NOSIGNAL);
  if (w >= 0) return static_cast<int>(w);
  return (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) ? 0 : -1;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace vsim::net
