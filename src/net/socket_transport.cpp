#include "net/socket_transport.h"

#include "pdes/checkpoint.h"

namespace vsim::net {

void encode_packet(vsim::bytes::Writer& w, const pdes::Packet& pkt) {
  w.u8(static_cast<std::uint8_t>(pkt.kind));
  w.u32(pkt.src);
  w.u32(pkt.dst);
  w.u64(pkt.seq);
  pdes::encode_event(w, pkt.ev);
}

bool decode_packet(vsim::bytes::Reader& r, pdes::Packet* out) {
  pdes::Packet pkt;
  pkt.kind = static_cast<pdes::Packet::Kind>(r.u8());
  pkt.src = r.u32();
  pkt.dst = r.u32();
  pkt.seq = r.u64();
  pkt.ev = pdes::decode_event(r);
  if (!r.ok()) return false;
  *out = std::move(pkt);
  return true;
}

void SocketTransport::submit(pdes::Packet&& pkt, double now) {
  (void)now;
  scratch_.clear();
  vsim::bytes::Writer w(scratch_);
  encode_packet(w, pkt);
  node_.send(pkt.dst, FrameType::kData, scratch_);
}

}  // namespace vsim::net
