// One rank's endpoint in the distributed engine's full socket mesh.
//
// A SocketNode owns the rank's listening socket, one outbound connection per
// peer, and every inbound connection, all non-blocking and serviced from a
// single-threaded pump() the engine calls from its event loop.  The node
// handles the mechanics the protocol layer should never see:
//
//  * framing (net/frame.h) and per-connection stream reassembly;
//  * peer identification (first frame on every connection is kHello);
//  * wall-clock heartbeats to every peer, and last-heard bookkeeping so the
//    coordinator can declare a silent rank dead;
//  * dial/redial with exponential backoff and a bounded attempt budget --
//    a link whose budget is exhausted is failed for good and reported, it
//    never blocks the pump;
//  * epoch filtering of data frames, so traffic from before a crash
//    recovery cannot reach the reliable layer after its cursors reset;
//  * deterministic transient-disconnect injection (NetConfig::disconnects)
//    for testing the reconnect path over the real wire.
//
// Delivery guarantee: at-least-once per frame, in order per connection
// incarnation.  A reconnect may replay the frame that straddled the break,
// so every receiver must be idempotent -- kData dedups in the ChannelStack,
// control frames carry round/epoch ids the engine checks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "pdes/config.h"

namespace vsim::net {

struct NodeCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t data_frames_sent = 0;
  std::uint64_t data_frames_recv = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_recv = 0;
  std::uint64_t reconnects = 0;    ///< successful re-establishments
  std::uint64_t disconnects = 0;   ///< connection losses (incl. injected)
  std::uint64_t crc_errors = 0;    ///< frames dropped on checksum/framing
  std::uint64_t stale_epoch_dropped = 0;
};

class SocketNode {
 public:
  /// Called once per delivered frame; `view.data` is valid only during the
  /// call.  May call send() reentrantly.
  using FrameHandler =
      std::function<void(std::uint32_t src_rank, const FrameView& view)>;

  SocketNode(std::uint32_t rank, std::uint32_t nranks,
             const pdes::NetConfig& cfg);
  ~SocketNode();

  SocketNode(const SocketNode&) = delete;
  SocketNode& operator=(const SocketNode&) = delete;

  /// Binds the rank's listening socket and starts dialing every peer.
  /// Must run in the rank's own process (i.e. after the fork).
  [[nodiscard]] bool start(std::string* err);

  void set_handler(FrameHandler h) { handler_ = std::move(h); }
  void set_epoch(std::uint32_t e) { epoch_ = e; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Queues one frame to `dst` (stamped with the current epoch).  Returns
  /// false iff the link is failed for good; the frame is dropped then.
  bool send(std::uint32_t dst, FrameType type,
            const std::vector<std::uint8_t>& payload);

  /// One I/O step: redial due links, poll all sockets for up to
  /// `timeout_ms` (0 = nonblocking), then accept/read/write and emit due
  /// heartbeats.  Returns the number of frames delivered + fully written,
  /// so drain loops can detect progress.
  std::size_t pump(int timeout_ms);

  /// True when every live link's outbound buffer is empty (failed links
  /// don't count: their traffic is gone and recovery owns the fallout).
  [[nodiscard]] bool all_flushed() const;

  /// Last wall-clock ms (now_ms()) a complete frame arrived from `rank`;
  /// initialised to construction time so a rank that never shows up times
  /// out rather than being instantly dead.
  [[nodiscard]] std::int64_t last_heard_ms(std::uint32_t rank) const;

  /// True when every outbound link is established right now.  The engines
  /// gate startup on this, and skip force-retransmission while it is false:
  /// forcing into a down link burns the reliable layer's retry budget
  /// without ever reaching the wire.
  [[nodiscard]] bool all_links_up() const;

  /// Permanently removes `rank` from the mesh after crash recovery retired
  /// it: closes both directions, drops queued frames, and excludes the link
  /// from dialing, heartbeats, all_flushed() and all_links_up().  send() to
  /// a retired rank returns false.  Irreversible by design -- a recovered
  /// run never talks to a dead rank's pid again.
  void retire_peer(std::uint32_t rank);
  [[nodiscard]] bool peer_retired(std::uint32_t rank) const;

  /// True when the outbound link's reconnect budget is exhausted.
  [[nodiscard]] bool link_failed(std::uint32_t dst) const;
  /// Dial attempts consumed on the link so far (for error reporting).
  [[nodiscard]] std::uint32_t link_attempts(std::uint32_t dst) const;

  [[nodiscard]] const NodeCounters& counters() const { return counters_; }
  [[nodiscard]] std::uint32_t rank() const { return rank_; }

  /// The listening address of `rank` under this node's config.
  [[nodiscard]] Addr rank_addr(std::uint32_t rank) const;

 private:
  enum class OutState : std::uint8_t {
    kIdle,        ///< not yet dialed
    kConnecting,  ///< non-blocking connect in flight
    kUp,          ///< established, hello sent
    kBackoff,     ///< waiting to redial
    kFailed,      ///< budget exhausted; terminal
  };

  struct OutConn {
    OutState state = OutState::kIdle;
    int fd = -1;
    /// Whole frames awaiting write; head_written bytes of the front frame
    /// are already on the wire.  On reconnect the front frame restarts from
    /// byte 0 (the peer discarded the truncated copy with the connection).
    std::deque<std::vector<std::uint8_t>> frames;
    std::size_t head_written = 0;
    std::uint32_t attempts = 0;
    bool ever_connected = false;
    std::int64_t next_dial_ms = 0;
    std::int64_t dial_deadline_ms = 0;
    std::uint64_t data_frames_sent = 0;  ///< drives disconnect injection
  };

  struct InConn {
    int fd = -1;
    std::unique_ptr<FrameParser> parser;
    std::int64_t rank = -1;  ///< -1 until kHello identifies the peer
  };

  void start_dial(OutConn& oc, std::uint32_t dst, std::int64_t now);
  void fail_or_backoff(OutConn& oc, std::int64_t now);
  void on_established(OutConn& oc);
  void drop_out(OutConn& oc, std::int64_t now, bool discard_queue);
  std::size_t write_out(OutConn& oc, std::int64_t now);
  std::size_t read_in(InConn& ic, std::int64_t now);
  void queue_heartbeats(std::int64_t now);
  void maybe_inject_disconnect(std::uint32_t dst, OutConn& oc,
                               std::int64_t now);

  std::uint32_t rank_;
  std::uint32_t nranks_;
  pdes::NetConfig cfg_;
  FrameHandler handler_;
  std::uint32_t epoch_ = 0;

  int listen_fd_ = -1;
  std::vector<OutConn> out_;           ///< by peer rank (self unused)
  std::vector<InConn> in_;             ///< accepted connections
  std::vector<std::int64_t> last_heard_;
  std::vector<bool> retired_;  ///< peers removed from the mesh for good
  std::int64_t last_hb_sent_ = 0;
  std::int64_t start_ms_ = 0;
  std::vector<bool> disconnect_fired_;  ///< per cfg_.disconnects entry
  NodeCounters counters_;
};

}  // namespace vsim::net
