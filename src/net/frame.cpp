#include "net/frame.h"

#include "common/crc32.h"

namespace vsim::net {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kData: return "data";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kRoundReq: return "round-req";
    case FrameType::kDrain: return "drain";
    case FrameType::kDrainAck: return "drain-ack";
    case FrameType::kGvtSet: return "gvt-set";
    case FrameType::kCkptData: return "ckpt-data";
    case FrameType::kRecover: return "recover";
    case FrameType::kRecoverDone: return "recover-done";
    case FrameType::kResume: return "resume";
    case FrameType::kAbort: return "abort";
    case FrameType::kStats: return "stats";
    case FrameType::kLinkDown: return "link-down";
    case FrameType::kCkptAck: return "ckpt-ack";
    case FrameType::kCommit: return "commit";
    case FrameType::kFinal: return "final";
  }
  return "?";
}

namespace {

constexpr std::size_t kHeaderSize = 8;  // u32 length + u32 crc
constexpr std::size_t kMinBody = 5;     // u8 type + u32 epoch

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void write_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kFinal);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return common::crc32(data, n);
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t epoch, const std::uint8_t* payload,
                  std::size_t payload_size) {
  const std::size_t body = kMinBody + payload_size;
  const std::size_t base = out.size();
  out.resize(base + kHeaderSize + body);
  std::uint8_t* p = out.data() + base;
  write_u32(p, static_cast<std::uint32_t>(body));
  p[kHeaderSize] = static_cast<std::uint8_t>(type);
  write_u32(p + kHeaderSize + 1, epoch);
  if (payload_size != 0)
    std::copy(payload, payload + payload_size, p + kHeaderSize + kMinBody);
  write_u32(p + 4, crc32(p + kHeaderSize, body));
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state parsing does no quadratic copying.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

int FrameParser::next(FrameView* out, std::string* err) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return 0;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t body = read_u32(p);
  if (body < kMinBody || body > max_frame_) {
    if (err != nullptr)
      *err = "frame length " + std::to_string(body) + " outside [" +
             std::to_string(kMinBody) + ", " + std::to_string(max_frame_) +
             "]";
    return -1;
  }
  if (avail < kHeaderSize + body) return 0;
  const std::uint32_t want = read_u32(p + 4);
  const std::uint32_t got = crc32(p + kHeaderSize, body);
  if (want != got) {
    if (err != nullptr) *err = "frame checksum mismatch";
    return -1;
  }
  const std::uint8_t type = p[kHeaderSize];
  if (!valid_type(type)) {
    if (err != nullptr)
      *err = "unknown frame type " + std::to_string(int{type});
    return -1;
  }
  out->type = static_cast<FrameType>(type);
  out->epoch = read_u32(p + kHeaderSize + 1);
  out->data = p + kHeaderSize + kMinBody;
  out->size = body - kMinBody;
  pos_ += kHeaderSize + body;
  return 1;
}

}  // namespace vsim::net
