#include "net/node.h"

#include <algorithm>
#include <poll.h>

namespace vsim::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

std::vector<std::uint8_t> encode_u32_payload(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
          static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 24)};
}

std::uint32_t decode_u32_payload(const FrameView& view) {
  if (view.size < 4) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(view.data[0]) |
         static_cast<std::uint32_t>(view.data[1]) << 8 |
         static_cast<std::uint32_t>(view.data[2]) << 16 |
         static_cast<std::uint32_t>(view.data[3]) << 24;
}

}  // namespace

SocketNode::SocketNode(std::uint32_t rank, std::uint32_t nranks,
                       const pdes::NetConfig& cfg)
    : rank_(rank), nranks_(nranks), cfg_(cfg), out_(nranks),
      last_heard_(nranks, now_ms()), retired_(nranks, false),
      start_ms_(now_ms()),
      disconnect_fired_(cfg.disconnects.size(), false) {}

SocketNode::~SocketNode() {
  close_fd(listen_fd_);
  for (OutConn& oc : out_) close_fd(oc.fd);
  for (InConn& ic : in_) close_fd(ic.fd);
  if (!cfg_.tcp && listen_fd_ >= 0)
    ::unlink(rank_addr(rank_).path_or_host.c_str());
}

Addr SocketNode::rank_addr(std::uint32_t rank) const {
  Addr a;
  a.tcp = cfg_.tcp;
  if (cfg_.tcp) {
    a.path_or_host = cfg_.host;
    a.port = static_cast<std::uint16_t>(cfg_.base_port + rank);
  } else {
    a.path_or_host =
        cfg_.socket_dir + "/rank-" + std::to_string(rank) + ".sock";
  }
  return a;
}

bool SocketNode::start(std::string* err) {
  listen_fd_ = listen_on(rank_addr(rank_), err);
  if (listen_fd_ < 0) return false;
  const std::int64_t now = now_ms();
  start_ms_ = now;
  for (std::uint32_t r = 0; r < nranks_; ++r)
    last_heard_[r] = now;
  last_hb_sent_ = now;
  return true;
}

bool SocketNode::send(std::uint32_t dst, FrameType type,
                      const std::vector<std::uint8_t>& payload) {
  OutConn& oc = out_[dst];
  if (oc.state == OutState::kFailed) return false;
  std::vector<std::uint8_t> frame;
  append_frame(frame, type, epoch_, payload.data(), payload.size());
  oc.frames.push_back(std::move(frame));
  if (type == FrameType::kData) {
    ++oc.data_frames_sent;
    ++counters_.data_frames_sent;
    maybe_inject_disconnect(dst, oc, now_ms());
  }
  if (type == FrameType::kHeartbeat) ++counters_.heartbeats_sent;
  return true;
}

void SocketNode::maybe_inject_disconnect(std::uint32_t dst, OutConn& oc,
                                         std::int64_t now) {
  for (std::size_t i = 0; i < cfg_.disconnects.size(); ++i) {
    const pdes::NetConfig::Disconnect& d = cfg_.disconnects[i];
    if (disconnect_fired_[i] || d.src != rank_ || d.dst != dst) continue;
    if (oc.data_frames_sent < d.after_data_frames) continue;
    disconnect_fired_[i] = true;
    // Abrupt loss: the connection and everything buffered on it vanish.
    // The reliable layer's retransmission owns redelivery.
    if (oc.state == OutState::kUp || oc.state == OutState::kConnecting)
      drop_out(oc, now, /*discard_queue=*/true);
  }
}

void SocketNode::start_dial(OutConn& oc, std::uint32_t dst, std::int64_t now) {
  std::string err;
  const int fd = dial(rank_addr(dst), &err);
  if (fd < 0) {
    fail_or_backoff(oc, now);
    return;
  }
  oc.fd = fd;
  oc.state = OutState::kConnecting;
  oc.dial_deadline_ms = now + cfg_.connect_timeout_ms;
}

void SocketNode::fail_or_backoff(OutConn& oc, std::int64_t now) {
  close_fd(oc.fd);
  oc.fd = -1;
  // Attempts before the very first establishment inside the initial connect
  // window are free: peers fork and bind asynchronously, and punishing the
  // bind race would make every startup a near-death experience.
  const bool grace = !oc.ever_connected &&
                     now < start_ms_ + static_cast<std::int64_t>(
                                           cfg_.connect_timeout_ms);
  if (!grace) ++oc.attempts;
  if (oc.attempts >= cfg_.reconnect_max_attempts) {
    oc.state = OutState::kFailed;
    oc.frames.clear();
    oc.head_written = 0;
    return;
  }
  const std::uint32_t shift = std::min(oc.attempts, 20u);
  const std::int64_t delay =
      std::min<std::int64_t>(static_cast<std::int64_t>(cfg_.reconnect_base_ms)
                                 << shift,
                             cfg_.reconnect_max_ms);
  oc.state = OutState::kBackoff;
  oc.next_dial_ms = now + std::max<std::int64_t>(delay, 1);
}

void SocketNode::on_established(OutConn& oc) {
  if (oc.ever_connected) ++counters_.reconnects;
  oc.ever_connected = true;
  oc.attempts = 0;
  oc.state = OutState::kUp;
  // First frame on every connection identifies the sender.  It jumps the
  // queue: head_written is 0 here (drop_out resets it), so the pending head
  // frame restarts cleanly after the hello.
  std::vector<std::uint8_t> hello;
  append_frame(hello, FrameType::kHello, epoch_,
               encode_u32_payload(rank_).data(), 4);
  oc.frames.push_front(std::move(hello));
}

void SocketNode::drop_out(OutConn& oc, std::int64_t now, bool discard_queue) {
  ++counters_.disconnects;
  close_fd(oc.fd);
  oc.fd = -1;
  oc.head_written = 0;
  if (discard_queue) {
    oc.frames.clear();
  } else if (!oc.frames.empty() &&
             oc.frames.front()[8] ==
                 static_cast<std::uint8_t>(FrameType::kHello)) {
    // A stale hello from the previous incarnation must not survive the
    // reconnect -- on_established() pushes a fresh one.
    oc.frames.pop_front();
  }
  fail_or_backoff(oc, now);
}

std::size_t SocketNode::write_out(OutConn& oc, std::int64_t now) {
  std::size_t completed = 0;
  while (!oc.frames.empty()) {
    const std::vector<std::uint8_t>& f = oc.frames.front();
    const int n = write_some(oc.fd, f.data() + oc.head_written,
                             f.size() - oc.head_written);
    if (n < 0) {
      drop_out(oc, now, /*discard_queue=*/false);
      return completed;
    }
    if (n == 0) break;  // kernel buffer full
    counters_.bytes_sent += static_cast<std::uint64_t>(n);
    oc.head_written += static_cast<std::size_t>(n);
    if (oc.head_written < f.size()) break;
    // Heartbeats are pacemaker traffic, not progress: counting them as pump
    // activity would keep the engines' idle detection from ever firing.
    const bool heartbeat =
        f.size() > 8 && f[8] == static_cast<std::uint8_t>(FrameType::kHeartbeat);
    oc.frames.pop_front();
    oc.head_written = 0;
    ++counters_.frames_sent;
    if (!heartbeat) ++completed;
  }
  return completed;
}

std::size_t SocketNode::read_in(InConn& ic, std::int64_t now) {
  std::uint8_t chunk[kReadChunk];
  std::size_t delivered = 0;
  for (;;) {
    const int n = read_some(ic.fd, chunk, sizeof(chunk));
    if (n < 0) {
      // EOF or error: the connection is gone.  Liveness of the peer is the
      // heartbeat's business, not the byte stream's.
      close_fd(ic.fd);
      ic.fd = -1;
      return delivered;
    }
    if (n == 0) break;
    counters_.bytes_recv += static_cast<std::uint64_t>(n);
    ic.parser->feed(chunk, static_cast<std::size_t>(n));
    for (;;) {
      FrameView view;
      std::string err;
      const int got = ic.parser->next(&view, &err);
      if (got == 0) break;
      if (got < 0) {
        ++counters_.crc_errors;
        close_fd(ic.fd);
        ic.fd = -1;
        return delivered;
      }
      ++counters_.frames_recv;
      if (ic.rank < 0) {
        // Only a hello may open a connection.
        const std::uint32_t peer = view.type == FrameType::kHello
                                       ? decode_u32_payload(view)
                                       : 0xFFFFFFFFu;
        if (peer >= nranks_) {
          close_fd(ic.fd);
          ic.fd = -1;
          return delivered;
        }
        ic.rank = peer;
        // Newest connection from a rank wins; close any stale twin (the
        // peer reconnected, its old socket just hasn't died here yet).
        for (InConn& other : in_) {
          if (&other != &ic && other.rank == ic.rank && other.fd >= 0) {
            close_fd(other.fd);
            other.fd = -1;
          }
        }
        last_heard_[static_cast<std::size_t>(ic.rank)] = now;
        continue;
      }
      last_heard_[static_cast<std::size_t>(ic.rank)] = now;
      if (view.type == FrameType::kHeartbeat) {
        ++counters_.heartbeats_recv;
        continue;
      }
      if (view.type == FrameType::kHello) continue;  // redundant re-hello
      if (view.type == FrameType::kData) {
        if (view.epoch != epoch_) {
          // Pre-recovery traffic: the reliable layer's cursors were reset,
          // so these bytes must never reach it.
          ++counters_.stale_epoch_dropped;
          continue;
        }
        ++counters_.data_frames_recv;
      }
      ++delivered;
      if (handler_)
        handler_(static_cast<std::uint32_t>(ic.rank), view);
      if (ic.fd < 0) return delivered;  // handler-triggered teardown
    }
  }
  return delivered;
}

void SocketNode::queue_heartbeats(std::int64_t now) {
  if (now - last_hb_sent_ <
      static_cast<std::int64_t>(cfg_.heartbeat_interval_ms))
    return;
  last_hb_sent_ = now;
  static const std::vector<std::uint8_t> kEmpty;
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    send(r, FrameType::kHeartbeat, kEmpty);
  }
}

std::size_t SocketNode::pump(int timeout_ms) {
  std::int64_t now = now_ms();
  queue_heartbeats(now);

  // Reconnect state machine.
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    OutConn& oc = out_[r];
    switch (oc.state) {
      case OutState::kIdle:
        start_dial(oc, r, now);
        break;
      case OutState::kBackoff:
        if (now >= oc.next_dial_ms) start_dial(oc, r, now);
        break;
      case OutState::kConnecting:
        if (now >= oc.dial_deadline_ms) {
          close_fd(oc.fd);
          oc.fd = -1;
          fail_or_backoff(oc, now);
        }
        break;
      case OutState::kUp:
      case OutState::kFailed:
        break;
    }
  }

  // Reap dead inbound slots before building the poll set.
  in_.erase(std::remove_if(in_.begin(), in_.end(),
                           [](const InConn& ic) { return ic.fd < 0; }),
            in_.end());

  std::vector<pollfd> fds;
  fds.reserve(2 * nranks_ + in_.size() + 1);
  const std::size_t listen_slot = fds.size();
  fds.push_back({listen_fd_, POLLIN, 0});
  std::vector<std::size_t> out_slot(nranks_, SIZE_MAX);
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    OutConn& oc = out_[r];
    if (oc.fd < 0) continue;
    short events = 0;
    if (oc.state == OutState::kConnecting) events = POLLOUT;
    if (oc.state == OutState::kUp && !oc.frames.empty()) events = POLLOUT;
    if (events == 0) continue;
    out_slot[r] = fds.size();
    fds.push_back({oc.fd, events, 0});
  }
  const std::size_t in_base = fds.size();
  for (InConn& ic : in_) fds.push_back({ic.fd, POLLIN, 0});

  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  now = now_ms();

  std::size_t activity = 0;

  // Accept every pending connection.
  if ((fds[listen_slot].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = accept_conn(listen_fd_);
      if (fd < 0) break;
      InConn ic;
      ic.fd = fd;
      ic.parser = std::make_unique<FrameParser>(cfg_.max_frame_bytes);
      in_.push_back(std::move(ic));
    }
  }

  // Outbound: finish connects, then drain write queues.
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    OutConn& oc = out_[r];
    if (out_slot[r] == SIZE_MAX || oc.fd < 0) continue;
    const short rev = fds[out_slot[r]].revents;
    if (oc.state == OutState::kConnecting) {
      if ((rev & (POLLOUT | POLLERR | POLLHUP)) == 0) continue;
      std::string err;
      if (!dial_finished(oc.fd, &err)) {
        close_fd(oc.fd);
        oc.fd = -1;
        fail_or_backoff(oc, now);
        continue;
      }
      on_established(oc);
    }
    if (oc.state == OutState::kUp &&
        (rev & (POLLOUT | POLLERR | POLLHUP)) != 0)
      activity += write_out(oc, now);
  }

  // Inbound reads (iterate by index: handlers may send(), and in_ can grow
  // via accept only, which already happened this pump).
  for (std::size_t i = 0; i < in_.size(); ++i) {
    if (in_base + i >= fds.size()) break;
    if ((fds[in_base + i].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
      continue;
    if (in_[i].fd < 0) continue;
    activity += read_in(in_[i], now);
  }

  // Opportunistic flush of frames queued by handlers or heartbeats this
  // pump: one non-blocking write attempt, no extra poll round-trip.
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    OutConn& oc = out_[r];
    if (oc.state == OutState::kUp && !oc.frames.empty() && oc.fd >= 0)
      activity += write_out(oc, now);
  }
  return activity;
}

bool SocketNode::all_flushed() const {
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    const OutConn& oc = out_[r];
    if (oc.state == OutState::kFailed) continue;
    if (!oc.frames.empty()) return false;
  }
  return true;
}

bool SocketNode::all_links_up() const {
  for (std::uint32_t r = 0; r < nranks_; ++r) {
    if (r == rank_ || retired_[r]) continue;
    if (out_[r].state != OutState::kUp) return false;
  }
  return true;
}

void SocketNode::retire_peer(std::uint32_t rank) {
  if (rank >= nranks_ || rank == rank_ || retired_[rank]) return;
  retired_[rank] = true;
  OutConn& oc = out_[rank];
  close_fd(oc.fd);
  oc.fd = -1;
  oc.frames.clear();
  oc.head_written = 0;
  oc.state = OutState::kFailed;
  for (InConn& ic : in_) {
    if (ic.rank == static_cast<std::int64_t>(rank) && ic.fd >= 0) {
      close_fd(ic.fd);
      ic.fd = -1;
    }
  }
}

bool SocketNode::peer_retired(std::uint32_t rank) const {
  return rank < nranks_ && retired_[rank];
}

std::int64_t SocketNode::last_heard_ms(std::uint32_t rank) const {
  return last_heard_[rank];
}

bool SocketNode::link_failed(std::uint32_t dst) const {
  return out_[dst].state == OutState::kFailed;
}

std::uint32_t SocketNode::link_attempts(std::uint32_t dst) const {
  return out_[dst].attempts;
}

}  // namespace vsim::net
