// Thin non-blocking socket helpers shared by the rank node (net/node.h).
//
// Everything here is plain POSIX; both address families the distributed
// engine supports (Unix-domain paths for single-host runs, TCP loopback for
// a future multi-host spawner) go through the same four operations: listen,
// dial (asynchronously), accept, and a poll step.  All fds are O_NONBLOCK
// and close-on-exec; writes use MSG_NOSIGNAL so a peer death surfaces as
// EPIPE, never as a process-killing SIGPIPE.
#pragma once

#include <cstdint>
#include <string>

namespace vsim::net {

/// One rank's listening address.
struct Addr {
  bool tcp = false;
  std::string path_or_host;  ///< socket path (unix) or host (tcp)
  std::uint16_t port = 0;    ///< tcp only

  [[nodiscard]] std::string str() const;
};

/// Monotonic wall-clock milliseconds (CLOCK_MONOTONIC).
[[nodiscard]] std::int64_t now_ms();

/// Binds + listens on `addr` (unlinking a stale unix path first).
/// Returns the listener fd, or -1 with `err` set.
[[nodiscard]] int listen_on(const Addr& addr, std::string* err);

/// Starts a non-blocking connect to `addr`.  Returns the fd (connect may
/// still be in progress: poll for writability, then check dial_finished),
/// or -1 with `err` set on immediate failure.
[[nodiscard]] int dial(const Addr& addr, std::string* err);

/// After POLLOUT on a dialing fd: true if the connect succeeded, false
/// (with `err` set) if it failed and the fd must be closed.
[[nodiscard]] bool dial_finished(int fd, std::string* err);

/// Accepts one pending connection; returns the fd or -1 when none/err.
[[nodiscard]] int accept_conn(int listen_fd);

/// read() up to `cap` bytes.  Returns >0 bytes read, 0 on would-block,
/// -1 on EOF or error (the connection is gone).
[[nodiscard]] int read_some(int fd, std::uint8_t* buf, std::size_t cap);

/// write() up to `n` bytes.  Returns >=0 bytes written (0 on would-block),
/// -1 on error (the connection is gone).
[[nodiscard]] int write_some(int fd, const std::uint8_t* buf, std::size_t n);

void close_fd(int fd);

}  // namespace vsim::net
