// Wire framing for the distributed engine (DESIGN.md "Distributed engine").
//
// Byte streams (TCP / Unix-domain sockets) have no message boundaries, so
// every protocol message travels as one length-prefixed, checksummed frame:
//
//   [u32 length][u32 crc32][u8 type][u32 epoch][payload ...]
//
// `length` counts everything after the crc field (type + epoch + payload);
// `crc32` covers those same bytes.  All integers are little-endian, matching
// the common/bytes.h codec the payloads themselves use.  The checksum turns
// silent stream corruption into an attributable connection error instead of
// a misdecoded event; the `epoch` field lets receivers drop traffic from
// before a crash recovery without any connection juggling (see
// pdes/distributed.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vsim::net {

enum class FrameType : std::uint8_t {
  kHello = 1,    ///< first frame on every connection: sender's rank
  kData,         ///< one transport-layer Packet (data or ack)
  kHeartbeat,    ///< liveness beacon; carries no payload
  kRoundReq,     ///< rank asks the coordinator to start a GVT round
  kDrain,        ///< coordinator: run one drain pass of round r
  kDrainAck,     ///< rank: pass done; quiescence vote + local minimum
  kGvtSet,       ///< coordinator: round result (gvt, stop, checkpoint)
  kCkptData,     ///< rank: its share of a global checkpoint + commits
  kRecover,      ///< coordinator: dead set, new partition, restore blob
  kRecoverDone,  ///< rank: recovery applied, parked for resume
  kResume,       ///< coordinator: leave recovery, resume work
  kAbort,        ///< either way: unrecoverable failure, unwind
  kStats,        ///< rank: final stats/metrics/commits at termination
  kLinkDown,     ///< rank: reconnect budget to some peer exhausted
  kCkptAck,      ///< successor: checkpoint round assembled and spilled
  kCommit,       ///< coordinator -> supervisor pipe: one commit batch
  kFinal,        ///< coordinator -> supervisor pipe: final RunStats
};

[[nodiscard]] const char* frame_type_name(FrameType t);

[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Appends one complete frame to `out` (which is a socket write buffer).
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t epoch, const std::uint8_t* payload,
                  std::size_t payload_size);

/// One parsed frame; `data` points into the parser's buffer and is valid
/// until the next next()/feed() call.
struct FrameView {
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t epoch = 0;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Incremental frame parser for one connection's inbound byte stream.
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_bytes)
      : max_frame_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);

  /// Returns 1 and fills `out` when a complete valid frame is available,
  /// 0 when more bytes are needed, -1 on stream corruption (bad checksum,
  /// oversized or undersized frame) with `err` describing it.  After -1 the
  /// stream is unusable: the caller must drop the connection.
  [[nodiscard]] int next(FrameView* out, std::string* err);

  /// Bytes currently buffered but not yet consumed.  Exposed so hostile-input
  /// tests can assert memory stays bounded by one frame's worth of data.
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::uint32_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace vsim::net
