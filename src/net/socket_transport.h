// SocketTransport: the pdes::Transport whose wire is a real socket mesh.
//
// This is the bottom of the distributed engine's channel stack:
//
//   ChannelStack -> [FaultyTransport] -> SocketTransport -> SocketNode
//
// submit() serialises the Packet with the checkpoint codec's event encoding
// (pdes/checkpoint.h) and queues it as one kData frame to the destination
// rank; inbound kData frames are decoded by the engine's frame handler and
// fed back into ChannelStack::on_wire_delivery().  The wire is therefore
// exactly as reliable as TCP/UDS minus injected faults: FaultyTransport
// drops/duplicates/reorders *above* this layer, on real network traffic,
// and the ChannelStack's seq/ack/retransmit machinery repairs both injected
// faults and genuine connection losses the SocketNode reports.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "net/node.h"
#include "pdes/transport.h"

namespace vsim::net {

void encode_packet(vsim::bytes::Writer& w, const pdes::Packet& pkt);
[[nodiscard]] bool decode_packet(vsim::bytes::Reader& r, pdes::Packet* out);

class SocketTransport final : public pdes::Transport {
 public:
  explicit SocketTransport(SocketNode& node) : node_(node) {}

  /// Serialise + queue to the destination rank.  `now` is ignored: the
  /// real network has its own clock.  Submissions to a failed link are
  /// dropped -- the reliable layer keeps them in flight and the engine's
  /// link-down handling decides whether that is fatal.
  void submit(pdes::Packet&& pkt, double now) override;

 private:
  SocketNode& node_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace vsim::net
