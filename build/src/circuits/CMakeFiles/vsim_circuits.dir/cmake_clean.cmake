file(REMOVE_RECURSE
  "CMakeFiles/vsim_circuits.dir/builder.cpp.o"
  "CMakeFiles/vsim_circuits.dir/builder.cpp.o.d"
  "CMakeFiles/vsim_circuits.dir/dct.cpp.o"
  "CMakeFiles/vsim_circuits.dir/dct.cpp.o.d"
  "CMakeFiles/vsim_circuits.dir/fsm.cpp.o"
  "CMakeFiles/vsim_circuits.dir/fsm.cpp.o.d"
  "CMakeFiles/vsim_circuits.dir/gates.cpp.o"
  "CMakeFiles/vsim_circuits.dir/gates.cpp.o.d"
  "CMakeFiles/vsim_circuits.dir/iir.cpp.o"
  "CMakeFiles/vsim_circuits.dir/iir.cpp.o.d"
  "CMakeFiles/vsim_circuits.dir/random_circuit.cpp.o"
  "CMakeFiles/vsim_circuits.dir/random_circuit.cpp.o.d"
  "libvsim_circuits.a"
  "libvsim_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
