file(REMOVE_RECURSE
  "libvsim_circuits.a"
)
