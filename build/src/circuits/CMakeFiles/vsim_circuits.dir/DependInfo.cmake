
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/builder.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/builder.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/builder.cpp.o.d"
  "/root/repo/src/circuits/dct.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/dct.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/dct.cpp.o.d"
  "/root/repo/src/circuits/fsm.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/fsm.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/fsm.cpp.o.d"
  "/root/repo/src/circuits/gates.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/gates.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/gates.cpp.o.d"
  "/root/repo/src/circuits/iir.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/iir.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/iir.cpp.o.d"
  "/root/repo/src/circuits/random_circuit.cpp" "src/circuits/CMakeFiles/vsim_circuits.dir/random_circuit.cpp.o" "gcc" "src/circuits/CMakeFiles/vsim_circuits.dir/random_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vhdl/CMakeFiles/vsim_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/vsim_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
