# Empty dependencies file for vsim_circuits.
# This may be replaced when dependencies are built.
