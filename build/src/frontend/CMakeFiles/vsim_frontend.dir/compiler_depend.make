# Empty compiler generated dependencies file for vsim_frontend.
# This may be replaced when dependencies are built.
