
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/ast.cpp" "src/frontend/CMakeFiles/vsim_frontend.dir/ast.cpp.o" "gcc" "src/frontend/CMakeFiles/vsim_frontend.dir/ast.cpp.o.d"
  "/root/repo/src/frontend/elaborator.cpp" "src/frontend/CMakeFiles/vsim_frontend.dir/elaborator.cpp.o" "gcc" "src/frontend/CMakeFiles/vsim_frontend.dir/elaborator.cpp.o.d"
  "/root/repo/src/frontend/interp.cpp" "src/frontend/CMakeFiles/vsim_frontend.dir/interp.cpp.o" "gcc" "src/frontend/CMakeFiles/vsim_frontend.dir/interp.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/frontend/CMakeFiles/vsim_frontend.dir/lexer.cpp.o" "gcc" "src/frontend/CMakeFiles/vsim_frontend.dir/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/frontend/CMakeFiles/vsim_frontend.dir/parser.cpp.o" "gcc" "src/frontend/CMakeFiles/vsim_frontend.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vhdl/CMakeFiles/vsim_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/vsim_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
