file(REMOVE_RECURSE
  "CMakeFiles/vsim_frontend.dir/ast.cpp.o"
  "CMakeFiles/vsim_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/vsim_frontend.dir/elaborator.cpp.o"
  "CMakeFiles/vsim_frontend.dir/elaborator.cpp.o.d"
  "CMakeFiles/vsim_frontend.dir/interp.cpp.o"
  "CMakeFiles/vsim_frontend.dir/interp.cpp.o.d"
  "CMakeFiles/vsim_frontend.dir/lexer.cpp.o"
  "CMakeFiles/vsim_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/vsim_frontend.dir/parser.cpp.o"
  "CMakeFiles/vsim_frontend.dir/parser.cpp.o.d"
  "libvsim_frontend.a"
  "libvsim_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
