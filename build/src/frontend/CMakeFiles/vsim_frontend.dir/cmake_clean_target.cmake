file(REMOVE_RECURSE
  "libvsim_frontend.a"
)
