file(REMOVE_RECURSE
  "CMakeFiles/vsim_vhdl.dir/kernel.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/kernel.cpp.o.d"
  "CMakeFiles/vsim_vhdl.dir/monitor.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/monitor.cpp.o.d"
  "CMakeFiles/vsim_vhdl.dir/process_lp.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/process_lp.cpp.o.d"
  "CMakeFiles/vsim_vhdl.dir/signal_lp.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/signal_lp.cpp.o.d"
  "CMakeFiles/vsim_vhdl.dir/vcd.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/vcd.cpp.o.d"
  "CMakeFiles/vsim_vhdl.dir/waveform.cpp.o"
  "CMakeFiles/vsim_vhdl.dir/waveform.cpp.o.d"
  "libvsim_vhdl.a"
  "libvsim_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
