file(REMOVE_RECURSE
  "libvsim_vhdl.a"
)
