# Empty dependencies file for vsim_vhdl.
# This may be replaced when dependencies are built.
