
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vhdl/kernel.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/kernel.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/kernel.cpp.o.d"
  "/root/repo/src/vhdl/monitor.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/monitor.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/monitor.cpp.o.d"
  "/root/repo/src/vhdl/process_lp.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/process_lp.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/process_lp.cpp.o.d"
  "/root/repo/src/vhdl/signal_lp.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/signal_lp.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/signal_lp.cpp.o.d"
  "/root/repo/src/vhdl/vcd.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/vcd.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/vcd.cpp.o.d"
  "/root/repo/src/vhdl/waveform.cpp" "src/vhdl/CMakeFiles/vsim_vhdl.dir/waveform.cpp.o" "gcc" "src/vhdl/CMakeFiles/vsim_vhdl.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdes/CMakeFiles/vsim_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
