file(REMOVE_RECURSE
  "libvsim_pdes.a"
)
