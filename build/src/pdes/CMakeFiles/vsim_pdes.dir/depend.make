# Empty dependencies file for vsim_pdes.
# This may be replaced when dependencies are built.
