file(REMOVE_RECURSE
  "CMakeFiles/vsim_pdes.dir/config.cpp.o"
  "CMakeFiles/vsim_pdes.dir/config.cpp.o.d"
  "CMakeFiles/vsim_pdes.dir/lp_runtime.cpp.o"
  "CMakeFiles/vsim_pdes.dir/lp_runtime.cpp.o.d"
  "CMakeFiles/vsim_pdes.dir/machine.cpp.o"
  "CMakeFiles/vsim_pdes.dir/machine.cpp.o.d"
  "CMakeFiles/vsim_pdes.dir/sequential.cpp.o"
  "CMakeFiles/vsim_pdes.dir/sequential.cpp.o.d"
  "CMakeFiles/vsim_pdes.dir/threaded.cpp.o"
  "CMakeFiles/vsim_pdes.dir/threaded.cpp.o.d"
  "libvsim_pdes.a"
  "libvsim_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
