
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdes/config.cpp" "src/pdes/CMakeFiles/vsim_pdes.dir/config.cpp.o" "gcc" "src/pdes/CMakeFiles/vsim_pdes.dir/config.cpp.o.d"
  "/root/repo/src/pdes/lp_runtime.cpp" "src/pdes/CMakeFiles/vsim_pdes.dir/lp_runtime.cpp.o" "gcc" "src/pdes/CMakeFiles/vsim_pdes.dir/lp_runtime.cpp.o.d"
  "/root/repo/src/pdes/machine.cpp" "src/pdes/CMakeFiles/vsim_pdes.dir/machine.cpp.o" "gcc" "src/pdes/CMakeFiles/vsim_pdes.dir/machine.cpp.o.d"
  "/root/repo/src/pdes/sequential.cpp" "src/pdes/CMakeFiles/vsim_pdes.dir/sequential.cpp.o" "gcc" "src/pdes/CMakeFiles/vsim_pdes.dir/sequential.cpp.o.d"
  "/root/repo/src/pdes/threaded.cpp" "src/pdes/CMakeFiles/vsim_pdes.dir/threaded.cpp.o" "gcc" "src/pdes/CMakeFiles/vsim_pdes.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
