# CMake generated Testfile for 
# Source directory: /root/repo/src/pdes
# Build directory: /root/repo/build/src/pdes
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
