file(REMOVE_RECURSE
  "libvsim_common.a"
)
