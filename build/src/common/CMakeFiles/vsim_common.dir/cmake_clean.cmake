file(REMOVE_RECURSE
  "CMakeFiles/vsim_common.dir/logic.cpp.o"
  "CMakeFiles/vsim_common.dir/logic.cpp.o.d"
  "CMakeFiles/vsim_common.dir/virtual_time.cpp.o"
  "CMakeFiles/vsim_common.dir/virtual_time.cpp.o.d"
  "libvsim_common.a"
  "libvsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
