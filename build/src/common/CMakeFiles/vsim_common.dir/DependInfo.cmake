
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logic.cpp" "src/common/CMakeFiles/vsim_common.dir/logic.cpp.o" "gcc" "src/common/CMakeFiles/vsim_common.dir/logic.cpp.o.d"
  "/root/repo/src/common/virtual_time.cpp" "src/common/CMakeFiles/vsim_common.dir/virtual_time.cpp.o" "gcc" "src/common/CMakeFiles/vsim_common.dir/virtual_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
