# Empty compiler generated dependencies file for vsim_common.
# This may be replaced when dependencies are built.
