file(REMOVE_RECURSE
  "CMakeFiles/vsim_partition.dir/partition.cpp.o"
  "CMakeFiles/vsim_partition.dir/partition.cpp.o.d"
  "libvsim_partition.a"
  "libvsim_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
