# Empty dependencies file for vsim_partition.
# This may be replaced when dependencies are built.
