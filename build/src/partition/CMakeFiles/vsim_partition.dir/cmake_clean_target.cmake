file(REMOVE_RECURSE
  "libvsim_partition.a"
)
