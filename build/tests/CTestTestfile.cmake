# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_logic "/root/repo/build/tests/test_logic")
set_tests_properties(test_logic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_virtual_time "/root/repo/build/tests/test_virtual_time")
set_tests_properties(test_virtual_time PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_waveform "/root/repo/build/tests/test_waveform")
set_tests_properties(test_waveform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sequential_kernel "/root/repo/build/tests/test_sequential_kernel")
set_tests_properties(test_sequential_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine_equivalence "/root/repo/build/tests/test_engine_equivalence")
set_tests_properties(test_engine_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pdes_protocol "/root/repo/build/tests/test_pdes_protocol")
set_tests_properties(test_pdes_protocol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_frontend "/root/repo/build/tests/test_frontend")
set_tests_properties(test_frontend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kernel_lps "/root/repo/build/tests/test_kernel_lps")
set_tests_properties(test_kernel_lps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_partition "/root/repo/build/tests/test_partition")
set_tests_properties(test_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_machine_model "/root/repo/build/tests/test_machine_model")
set_tests_properties(test_machine_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_threaded "/root/repo/build/tests/test_threaded")
set_tests_properties(test_threaded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fuzz_equivalence "/root/repo/build/tests/test_fuzz_equivalence")
set_tests_properties(test_fuzz_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vcd "/root/repo/build/tests/test_vcd")
set_tests_properties(test_vcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;vsim_test;/root/repo/tests/CMakeLists.txt;0;")
