file(REMOVE_RECURSE
  "CMakeFiles/test_threaded.dir/test_threaded.cpp.o"
  "CMakeFiles/test_threaded.dir/test_threaded.cpp.o.d"
  "test_threaded"
  "test_threaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
