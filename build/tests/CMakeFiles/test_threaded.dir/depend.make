# Empty dependencies file for test_threaded.
# This may be replaced when dependencies are built.
