# Empty dependencies file for test_virtual_time.
# This may be replaced when dependencies are built.
