file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_time.dir/test_virtual_time.cpp.o"
  "CMakeFiles/test_virtual_time.dir/test_virtual_time.cpp.o.d"
  "test_virtual_time"
  "test_virtual_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
