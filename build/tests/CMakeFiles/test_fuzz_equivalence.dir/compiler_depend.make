# Empty compiler generated dependencies file for test_fuzz_equivalence.
# This may be replaced when dependencies are built.
