file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_equivalence.dir/test_fuzz_equivalence.cpp.o"
  "CMakeFiles/test_fuzz_equivalence.dir/test_fuzz_equivalence.cpp.o.d"
  "test_fuzz_equivalence"
  "test_fuzz_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
