# Empty compiler generated dependencies file for test_engine_equivalence.
# This may be replaced when dependencies are built.
