file(REMOVE_RECURSE
  "CMakeFiles/test_waveform.dir/test_waveform.cpp.o"
  "CMakeFiles/test_waveform.dir/test_waveform.cpp.o.d"
  "test_waveform"
  "test_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
