# Empty compiler generated dependencies file for test_vcd.
# This may be replaced when dependencies are built.
