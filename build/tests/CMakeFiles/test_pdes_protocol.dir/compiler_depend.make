# Empty compiler generated dependencies file for test_pdes_protocol.
# This may be replaced when dependencies are built.
