file(REMOVE_RECURSE
  "CMakeFiles/test_pdes_protocol.dir/test_pdes_protocol.cpp.o"
  "CMakeFiles/test_pdes_protocol.dir/test_pdes_protocol.cpp.o.d"
  "test_pdes_protocol"
  "test_pdes_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdes_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
