file(REMOVE_RECURSE
  "CMakeFiles/test_machine_model.dir/test_machine_model.cpp.o"
  "CMakeFiles/test_machine_model.dir/test_machine_model.cpp.o.d"
  "test_machine_model"
  "test_machine_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
