# Empty dependencies file for test_machine_model.
# This may be replaced when dependencies are built.
