# Empty dependencies file for test_kernel_lps.
# This may be replaced when dependencies are built.
