file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_lps.dir/test_kernel_lps.cpp.o"
  "CMakeFiles/test_kernel_lps.dir/test_kernel_lps.cpp.o.d"
  "test_kernel_lps"
  "test_kernel_lps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_lps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
