# Empty compiler generated dependencies file for test_sequential_kernel.
# This may be replaced when dependencies are built.
