file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_kernel.dir/test_sequential_kernel.cpp.o"
  "CMakeFiles/test_sequential_kernel.dir/test_sequential_kernel.cpp.o.d"
  "test_sequential_kernel"
  "test_sequential_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
