# Empty compiler generated dependencies file for test_logic.
# This may be replaced when dependencies are built.
