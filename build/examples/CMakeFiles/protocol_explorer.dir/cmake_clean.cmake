file(REMOVE_RECURSE
  "CMakeFiles/protocol_explorer.dir/protocol_explorer.cpp.o"
  "CMakeFiles/protocol_explorer.dir/protocol_explorer.cpp.o.d"
  "protocol_explorer"
  "protocol_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
