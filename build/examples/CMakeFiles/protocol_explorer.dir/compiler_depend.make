# Empty compiler generated dependencies file for protocol_explorer.
# This may be replaced when dependencies are built.
