file(REMOVE_RECURSE
  "CMakeFiles/vhdl_source_sim.dir/vhdl_source_sim.cpp.o"
  "CMakeFiles/vhdl_source_sim.dir/vhdl_source_sim.cpp.o.d"
  "vhdl_source_sim"
  "vhdl_source_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_source_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
