# Empty dependencies file for vhdl_source_sim.
# This may be replaced when dependencies are built.
