# Empty compiler generated dependencies file for parallel_dct.
# This may be replaced when dependencies are built.
