file(REMOVE_RECURSE
  "CMakeFiles/parallel_dct.dir/parallel_dct.cpp.o"
  "CMakeFiles/parallel_dct.dir/parallel_dct.cpp.o.d"
  "parallel_dct"
  "parallel_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
