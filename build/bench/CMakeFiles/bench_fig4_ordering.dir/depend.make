# Empty dependencies file for bench_fig4_ordering.
# This may be replaced when dependencies are built.
