file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ordering.dir/bench_fig4_ordering.cpp.o"
  "CMakeFiles/bench_fig4_ordering.dir/bench_fig4_ordering.cpp.o.d"
  "bench_fig4_ordering"
  "bench_fig4_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
