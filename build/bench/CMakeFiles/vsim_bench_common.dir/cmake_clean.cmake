file(REMOVE_RECURSE
  "CMakeFiles/vsim_bench_common.dir/harness.cpp.o"
  "CMakeFiles/vsim_bench_common.dir/harness.cpp.o.d"
  "libvsim_bench_common.a"
  "libvsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
