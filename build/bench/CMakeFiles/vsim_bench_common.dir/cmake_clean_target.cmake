file(REMOVE_RECURSE
  "libvsim_bench_common.a"
)
