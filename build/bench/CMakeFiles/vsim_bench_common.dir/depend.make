# Empty dependencies file for vsim_bench_common.
# This may be replaced when dependencies are built.
