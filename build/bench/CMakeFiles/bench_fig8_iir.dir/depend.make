# Empty dependencies file for bench_fig8_iir.
# This may be replaced when dependencies are built.
