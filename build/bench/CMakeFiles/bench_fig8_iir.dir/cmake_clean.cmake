file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_iir.dir/bench_fig8_iir.cpp.o"
  "CMakeFiles/bench_fig8_iir.dir/bench_fig8_iir.cpp.o.d"
  "bench_fig8_iir"
  "bench_fig8_iir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_iir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
