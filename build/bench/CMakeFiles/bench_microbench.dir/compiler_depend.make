# Empty compiler generated dependencies file for bench_microbench.
# This may be replaced when dependencies are built.
