file(REMOVE_RECURSE
  "CMakeFiles/bench_microbench.dir/bench_microbench.cpp.o"
  "CMakeFiles/bench_microbench.dir/bench_microbench.cpp.o.d"
  "bench_microbench"
  "bench_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
