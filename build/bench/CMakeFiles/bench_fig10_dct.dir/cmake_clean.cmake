file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dct.dir/bench_fig10_dct.cpp.o"
  "CMakeFiles/bench_fig10_dct.dir/bench_fig10_dct.cpp.o.d"
  "bench_fig10_dct"
  "bench_fig10_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
