# Empty dependencies file for bench_fig10_dct.
# This may be replaced when dependencies are built.
