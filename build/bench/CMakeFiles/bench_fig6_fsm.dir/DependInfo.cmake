
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_fsm.cpp" "bench/CMakeFiles/bench_fig6_fsm.dir/bench_fig6_fsm.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_fsm.dir/bench_fig6_fsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vsim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/vsim_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/vsim_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vhdl/CMakeFiles/vsim_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/vsim_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/vsim_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
