file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fsm.dir/bench_fig6_fsm.cpp.o"
  "CMakeFiles/bench_fig6_fsm.dir/bench_fig6_fsm.cpp.o.d"
  "bench_fig6_fsm"
  "bench_fig6_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
