#!/usr/bin/env bash
# CI entry point: a release build plus sanitizer builds, all gated on the
# full test suite.  The TSan pass is what keeps the threaded engine and the
# lock-free-by-affinity transport stack honest; the ASan pass covers the
# rollback/recovery machinery, whose failure mode is use-after-free of
# checkpointed or fossil-collected event history rather than a data race.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> Release build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DVSIM_SANITIZE= \
  > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> Observability smoke: traced bench + report schema"
# One bench in trace mode: the FSM figure is the cheapest full sweep.  The
# run must produce both a Chrome-trace JSON and a valid BENCH_*.json; both
# are kept as CI artefacts (artifacts/ is the conventional upload dir).
ARTIFACTS="${ARTIFACTS:-artifacts}"
mkdir -p "$ARTIFACTS"
VSIM_TRACE="$ARTIFACTS/trace_fig6_fsm.json" VSIM_BENCH_DIR="$ARTIFACTS" \
  ./build/bench/bench_fig6_fsm > /dev/null
python3 tools/bench_diff.py --validate "$ARTIFACTS"/BENCH_*.json
python3 - "$ARTIFACTS/trace_fig6_fsm.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty trace"
assert all("ph" in e and "pid" in e for e in events), "malformed event"
print("OK %s (%d events)" % (sys.argv[1], len(events)))
EOF

echo "==> AddressSanitizer build"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "==> OK"
