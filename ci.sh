#!/usr/bin/env bash
# CI entry point: a release build plus a ThreadSanitizer build, both gated
# on the full test suite.  The TSan pass is what keeps the threaded engine
# and the lock-free-by-affinity transport stack honest.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> Release build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DVSIM_SANITIZE= \
  > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "==> OK"
