#!/usr/bin/env bash
# CI entry point: a release build plus sanitizer builds, all gated on the
# full test suite.  The TSan pass is what keeps the threaded engine and the
# lock-free-by-affinity transport stack honest; the ASan pass covers the
# rollback/recovery machinery, whose failure mode is use-after-free of
# checkpointed or fossil-collected event history rather than a data race.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> Release build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DVSIM_SANITIZE= \
  > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> AddressSanitizer build"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "==> OK"
