#!/usr/bin/env bash
# CI entry point: a release build plus sanitizer builds, all gated on the
# full test suite.  The TSan pass is what keeps the threaded engine and the
# lock-free-by-affinity transport stack honest; the ASan pass covers the
# rollback/recovery machinery, whose failure mode is use-after-free of
# checkpointed or fossil-collected event history rather than a data race.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> Release build"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DVSIM_SANITIZE= \
  > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> Stress: 200-seed equivalence matrix vs the sequential oracle"
# The default ctest entry above ran the fast smoke sweep; this is the full
# determinism matrix (seeds x configurations x ordering modes) the hot-path
# overhaul is gated on.
VSIM_STRESS_SEEDS="${VSIM_STRESS_SEEDS:-200}" \
  ctest --test-dir build -L stress --output-on-failure

echo "==> Distributed smoke: 4-rank UDS mesh vs oracle + SIGKILL recovery"
# The full distributed suite already ran inside the ctest sweep above; this
# repeats the three load-bearing scenarios as a named gate: a plain
# 4-process socket run must match the sequential oracle bit-exactly, a run
# whose rank 2 is SIGKILLed mid-flight must recover from the shipped
# checkpoints to the very same trace, and a run whose COORDINATOR (rank 0)
# is SIGKILLed must fail over to rank 1 and still commit the oracle trace
# exactly once.
./build/tests/test_distributed --gtest_filter='Distributed.FourRankSocketRunMatchesOracle:Distributed.SigkilledRankRecoversToOracle:Distributed.CoordinatorKillRecoversToOracle'

echo "==> Codegen smoke: native backend bit-identical to the interpreter"
# The ctest sweep above already ran these rows; the named gate keeps the
# native-backend proof visible: the compiled counter design must trace
# bit-identically to the interpreter, and a warm re-elaboration must hit
# the .so cache instead of recompiling.  The full randomized differential
# matrix runs under the stress label above (CodegenDiff.* x 200 seeds).
ctest --test-dir build -L codegen_smoke --output-on-failure

echo "==> Clustered smoke: fused ClusterLps, threaded + 4-rank distributed"
# The full cluster suite (incl. the 100k-signal scale rows) already ran in
# the ctest sweep; this named gate re-runs the two load-bearing clustered
# equivalence rows -- a clustered threaded run and a clustered 4-process
# socket run must both match the flat sequential oracle bit-exactly.
ctest --test-dir build -L cluster_smoke --output-on-failure

echo "==> Adaptation smoke: IIR slice, dynamic vs all-optimistic at P=16"
# The regression gate for the kDynamic collapse on the feedback lattice:
# on the deterministic machine model, dynamic at P=16 must land within 80%
# of all-optimistic's makespan on the IIR (it used to collapse to ~26%).
ctest --test-dir build -L adapt_smoke --output-on-failure

echo "==> Doc links: no dangling DESIGN.md/README anchors or section refs"
# Section titles get renamed; quoted references in prose and code comments
# do not follow automatically.  The checker fails on markdown links to
# missing files/anchors and on quoted section references whose phrase no
# longer occurs in the named document.
python3 tools/check_doc_links.py

echo "==> Observability smoke: traced bench + report schema"
# One bench in trace mode: the FSM figure is the cheapest full sweep.  The
# run must produce both a Chrome-trace JSON and a valid BENCH_*.json; both
# are kept as CI artefacts (artifacts/ is the conventional upload dir).
ARTIFACTS="${ARTIFACTS:-artifacts}"
mkdir -p "$ARTIFACTS"
VSIM_TRACE="$ARTIFACTS/trace_fig6_fsm.json" VSIM_BENCH_DIR="$ARTIFACTS" \
  ./build/bench/bench_fig6_fsm > /dev/null
python3 tools/bench_diff.py --validate "$ARTIFACTS"/BENCH_*.json
python3 - "$ARTIFACTS/trace_fig6_fsm.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty trace"
assert all("ph" in e and "pid" in e for e in events), "malformed event"
print("OK %s (%d events)" % (sys.argv[1], len(events)))
EOF

echo "==> Perf gate: microbench + placement reports vs committed baselines"
# The deterministic model_fsm speedup rows gate hard (>5% drop fails); the
# wall-clock micro rows are warn-only at 25% because this host is shared.
# The ablation binary runs its placement + adaptation sections only: the
# placement rows gate the dynamic rebalancer (and the static schemes it is
# measured against) so a planner change that costs placement quality shows
# up as a speedup drop; the adaptation rows gate the rate-based kDynamic
# controller against its ablated variants on the IIR collapse cell.
VSIM_BENCH_DIR="$ARTIFACTS" ./build/bench/bench_microbench \
  --benchmark_min_time=0.1 > /dev/null
VSIM_BENCH_DIR="$ARTIFACTS" ./build/bench/bench_ablation placement \
  adaptation > /dev/null
# Native-codegen speedup row: the committed baseline floor (1.4x) trips the
# diff below when the backend silently stops beating the interpreter.
VSIM_BENCH_DIR="$ARTIFACTS" ./build/bench/bench_codegen > /dev/null
python3 tools/bench_diff.py --validate "$ARTIFACTS/BENCH_microbench.json" \
  "$ARTIFACTS/BENCH_ablation.json" "$ARTIFACTS/BENCH_codegen.json"
python3 tools/bench_diff.py bench/baseline "$ARTIFACTS"

echo "==> AddressSanitizer build"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
# Sanitized binaries run several times slower, so the engine's wall-clock
# liveness budgets (heartbeat timeout, connect deadline, reconnect backoff)
# are stretched via VSIM_TIME_SCALE -- otherwise a merely-slow rank under
# ASan is declared dead and CI chases phantom failovers.
VSIM_TIME_SCALE="${VSIM_TIME_SCALE_ASAN:-4}" \
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
# The socket layer is the one module whose bugs UBSan is best placed to
# catch (raw byte decoding, offset arithmetic on frames); the ASan build
# above compiles with -fsanitize=address,undefined, so running the
# distributed label once more by name keeps the UBSan-over-net/ gate
# visible even if the aggregate suite is ever split.
VSIM_TIME_SCALE="${VSIM_TIME_SCALE_ASAN:-4}" \
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --test-dir build-asan -L distributed --output-on-failure

echo "==> ThreadSanitizer build"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVSIM_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS"
VSIM_TIME_SCALE="${VSIM_TIME_SCALE_TSAN:-8}" \
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
# The batch-mailbox corner tests once more, by label: the suite above runs
# them inside test_threaded, but the lock-light MPSC path is the piece TSan
# exists to keep honest, so its gate stays visible even if the aggregate
# binary is ever split.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan -L mailbox --output-on-failure

echo "==> Sanitizer fallback: native backend must refuse to dlopen"
# A TSan binary must never load the uninstrumented .so the codegen backend
# produces -- the sanitizer runtime cannot see into it and would report
# nonsense (or miss real races).  Asking the sanitized pipeline for the
# native backend has to print the one-time fallback notice and complete on
# the interpreter.
fallback_notice=$(cd "$ARTIFACTS" && VSIM_BACKEND=native \
    "$OLDPWD/build-tsan/examples/vhdl_source_sim" 2>&1 >/dev/null)
grep -q "falling back to interpreter" <<<"$fallback_notice"

echo "==> OK"
