// Partitioner tests: validity, balance, determinism, the bipartite scheme's
// cut-size advantage on circuit-shaped graphs, and the dynamic rebalance
// planner (greedy diffusion, hysteresis, orphan redistribution).
#include <gtest/gtest.h>

#include <utility>

#include "circuits/fsm.h"
#include "circuits/iir.h"
#include "partition/partition.h"
#include "partition/rebalance.h"

namespace vsim::partition {
namespace {

struct Dummy final : pdes::LogicalProcess {
  using LogicalProcess::LogicalProcess;
  void simulate(const pdes::Event&, pdes::SimContext&) override {}
  std::unique_ptr<pdes::LpState> save_state() const override {
    return std::make_unique<pdes::LpState>();
  }
  void restore_state(const pdes::LpState&) override {}
};

/// n disconnected dummy LPs; callers add channels as needed.
pdes::LpGraph make_dummies(int n) {
  pdes::LpGraph g;
  for (int i = 0; i < n; ++i)
    g.add(std::make_unique<Dummy>("d" + std::to_string(i)));
  return g;
}

void check_valid(const pdes::Partition& p, std::size_t n_lps,
                 std::size_t n_workers) {
  ASSERT_EQ(p.size(), n_lps);
  std::vector<std::size_t> counts(n_workers, 0);
  for (auto w : p) {
    ASSERT_LT(w, n_workers);
    ++counts[w];
  }
  // Balance: per-worker counts differ by at most one, and every worker
  // gets at least one LP whenever there are enough to go around.
  const std::size_t lo = n_lps / n_workers;
  const std::size_t hi = lo + (n_lps % n_workers ? 1 : 0);
  for (auto c : counts) {
    EXPECT_LE(c, hi);
    EXPECT_GE(c, lo);
    if (n_lps >= n_workers) {
      EXPECT_GE(c, 1u);
    }
  }
}

class PartitionTest : public testing::TestWithParam<std::size_t> {};

TEST_P(PartitionTest, RoundRobinIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  check_valid(round_robin(553, workers), 553, workers);
}

TEST_P(PartitionTest, BlocksIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  check_valid(blocks(553, workers), 553, workers);
}

TEST_P(PartitionTest, BipartiteBfsIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::FsmParams fp;
  fp.lanes = 4;
  circuits::build_fsm(d, fp);
  d.finalize();
  check_valid(bipartite_bfs(g, workers), g.size(), workers);
}

INSTANTIATE_TEST_SUITE_P(Workers, PartitionTest,
                         testing::Values(1, 2, 3, 7, 8, 16));

TEST(Partition, BipartiteReducesCutOnCircuits) {
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::IirParams ip;
  ip.sections = 3;
  circuits::build_iir(d, ip);
  d.finalize();
  for (std::size_t workers : {2u, 4u, 8u}) {
    const auto rr = round_robin(g.size(), workers);
    const auto bf = bipartite_bfs(g, workers);
    EXPECT_LT(cut_size(g, bf), cut_size(g, rr)) << workers << " workers";
  }
}

TEST(Partition, Deterministic) {
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::FsmParams fp;
  circuits::build_fsm(d, fp);
  d.finalize();
  EXPECT_EQ(bipartite_bfs(g, 8), bipartite_bfs(g, 8));
  EXPECT_EQ(round_robin(g.size(), 8), round_robin(g.size(), 8));
}

TEST(Partition, CutSizeCountsCrossWorkerChannels) {
  pdes::LpGraph g = make_dummies(4);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  g.add_channel(2, 3);
  EXPECT_EQ(cut_size(g, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(cut_size(g, {0, 0, 1, 1}), 1u);
  EXPECT_EQ(cut_size(g, {0, 1, 0, 1}), 3u);
}

// --- Regression: remainder distribution (n=6, workers=4 used to yield
// loads 2/2/2/0, idling a worker the paper's equal-count scheme promises
// work to). ---

TEST(Partition, NoEmptyWorkerWhenEnoughLps) {
  for (const auto& [n, w] : {std::pair<std::size_t, std::size_t>{6, 4},
                            {7, 4},
                            {9, 8},
                            {10, 3},
                            {16, 16},
                            {17, 16}}) {
    check_valid(blocks(n, w), n, w);
    pdes::LpGraph g = make_dummies(static_cast<int>(n));
    for (std::size_t i = 0; i + 1 < n; ++i)
      g.add_channel(static_cast<pdes::LpId>(i),
                    static_cast<pdes::LpId>(i + 1));
    check_valid(bipartite_bfs(g, w), n, w);
  }
}

// --- Regression: BFS order on disconnected / degenerate graphs covers
// every component exactly once. ---

TEST(Partition, BipartiteBfsHandlesDisconnectedGraphs) {
  // Two disconnected chains plus an isolated LP: 3 components, 7 LPs.
  pdes::LpGraph g = make_dummies(7);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  g.add_channel(4, 5);
  g.add_channel(5, 6);  // LP 3 is isolated
  for (std::size_t w : {1u, 2u, 3u, 7u}) check_valid(bipartite_bfs(g, w), 7, w);
}

TEST(Partition, BipartiteBfsSingleLpGraph) {
  pdes::LpGraph g = make_dummies(1);
  for (std::size_t w : {1u, 2u, 8u}) {
    const auto p = bipartite_bfs(g, w);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_LT(p[0], w);
  }
}

// --- Regression: a bidirectional channel pair is ONE physical connection;
// the cut metric used to count it twice. ---

TEST(Partition, CutSizeDoesNotDoubleCountBidirectionalPairs) {
  pdes::LpGraph g = make_dummies(2);
  g.add_channel(0, 1);
  g.add_channel(1, 0);
  EXPECT_EQ(cut_size(g, {0, 1}), 1u);
  EXPECT_EQ(cut_size(g, {0, 0}), 0u);
  // Parallel channels in the same direction are also one pair.
  pdes::LpGraph h = make_dummies(2);
  h.add_channel(0, 1);
  h.add_channel(0, 1);
  EXPECT_EQ(cut_size(h, {0, 1}), 1u);
}

TEST(Partition, CutSizeEmptyAndSingleLpGraphs) {
  pdes::LpGraph empty;
  EXPECT_EQ(cut_size(empty, {}), 0u);
  pdes::LpGraph one = make_dummies(1);
  EXPECT_EQ(cut_size(one, {0}), 0u);
}

// --- Dynamic rebalance planner (greedy diffusion with hysteresis). ---

pdes::RebalanceConfig lb_config() {
  pdes::RebalanceConfig cfg;
  cfg.period = 1;
  cfg.max_moves = 4;
  cfg.imbalance_trigger = 0.25;
  return cfg;
}

TEST(Rebalance, MovesWorkFromOverloadedToUnderloaded) {
  pdes::LpGraph g = make_dummies(4);
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  g.add_channel(2, 3);
  const pdes::Partition part{0, 0, 0, 1};
  const std::vector<double> work{10.0, 10.0, 4.0, 1.0};
  const std::vector<bool> alive{true, true};
  const RebalancePlan plan =
      plan_rebalance(g, part, work, alive, lb_config());
  ASSERT_FALSE(plan.empty());
  EXPECT_LT(plan.imbalance_after, plan.imbalance_before);
  for (const Migration& mv : plan.moves) {
    EXPECT_EQ(mv.from, 0u);
    EXPECT_EQ(mv.to, 1u);
  }
}

TEST(Rebalance, HysteresisLeavesBalancedPlacementAlone) {
  pdes::LpGraph g = make_dummies(4);
  const pdes::Partition part{0, 0, 1, 1};
  const std::vector<double> work{5.0, 5.0, 5.0, 4.0};  // ~10 vs 9: within 25%
  const std::vector<bool> alive{true, true};
  EXPECT_TRUE(plan_rebalance(g, part, work, alive, lb_config()).empty());
  // And a second planning pass over the planner's own output is a no-op:
  // placement cannot thrash.
  const pdes::Partition skewed{0, 0, 0, 1};
  const std::vector<double> w2{10.0, 10.0, 4.0, 1.0};
  pdes::Partition cur = skewed;
  RebalancePlan plan = plan_rebalance(g, cur, w2, alive, lb_config());
  for (const Migration& mv : plan.moves) cur[mv.lp] = mv.to;
  const RebalancePlan again = plan_rebalance(g, cur, w2, alive, lb_config());
  EXPECT_TRUE(again.empty());
}

TEST(Rebalance, BoundsMovesPerRound) {
  pdes::LpGraph g = make_dummies(16);
  pdes::Partition part(16, 0);
  part[15] = 1;
  std::vector<double> work(16, 3.0);
  pdes::RebalanceConfig cfg = lb_config();
  cfg.max_moves = 2;
  const RebalancePlan plan =
      plan_rebalance(g, part, work, {true, true}, cfg);
  EXPECT_LE(plan.moves.size(), 2u);
  EXPECT_FALSE(plan.empty());
}

TEST(Rebalance, DeterministicPlans) {
  pdes::LpGraph g = make_dummies(8);
  for (pdes::LpId i = 0; i + 1 < 8; ++i) g.add_channel(i, i + 1);
  pdes::Partition part{0, 0, 0, 0, 0, 1, 1, 1};
  std::vector<double> work{9, 8, 7, 6, 5, 1, 1, 1};
  const auto a = plan_rebalance(g, part, work, {true, true}, lb_config());
  const auto b = plan_rebalance(g, part, work, {true, true}, lb_config());
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    EXPECT_EQ(a.moves[i].lp, b.moves[i].lp);
    EXPECT_EQ(a.moves[i].to, b.moves[i].to);
  }
}

TEST(Rebalance, DeadWorkersAreNeitherSourceNorDestination) {
  pdes::LpGraph g = make_dummies(6);
  const pdes::Partition part{0, 0, 0, 0, 2, 2};
  const std::vector<double> work{8.0, 8.0, 8.0, 8.0, 1.0, 1.0};
  const std::vector<bool> alive{true, false, true};
  const RebalancePlan plan =
      plan_rebalance(g, part, work, alive, lb_config());
  ASSERT_FALSE(plan.empty());
  for (const Migration& mv : plan.moves) {
    EXPECT_NE(mv.from, 1u);
    EXPECT_NE(mv.to, 1u);
  }
}

TEST(Rebalance, CutTieBreakPrefersKeepingNeighboursTogether) {
  // LPs 0 and 1 have identical work; 1's only neighbour already lives on
  // the destination worker, so moving 1 is free in cut terms while moving 0
  // would cut a channel.
  pdes::LpGraph g = make_dummies(4);
  g.add_channel(0, 2);  // 0's neighbour stays on worker 0
  g.add_channel(1, 3);  // 1's neighbour is on worker 1
  const pdes::Partition part{0, 0, 0, 1};
  const std::vector<double> work{6.0, 6.0, 6.0, 1.0};
  const RebalancePlan plan =
      plan_rebalance(g, part, work, {true, true}, lb_config());
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.moves[0].lp, 1u);
}

TEST(Rebalance, RedistributeOrphansBalancesAndPrefersNeighbours) {
  pdes::LpGraph g = make_dummies(6);
  g.add_channel(4, 2);  // orphan 4's neighbour lives on worker 2
  // Worker 1 died owning LPs 3, 4, 5.
  pdes::Partition part{0, 2, 2, 1, 1, 1};
  const std::vector<double> work{2.0, 2.0, 2.0, 1.0, 1.0, 1.0};
  const std::vector<bool> alive{true, false, true};
  redistribute_orphans(g, part, work, alive, lb_config());
  std::vector<std::size_t> counts(3, 0);
  for (pdes::LpId lp = 0; lp < part.size(); ++lp) {
    EXPECT_NE(part[lp], 1u) << "LP " << lp << " left on the dead worker";
    ++counts[part[lp]];
  }
  // Orphan 4 followed its neighbour to worker 2; the rest spread by load.
  EXPECT_EQ(part[4], 2u);
  EXPECT_GE(counts[0], 1u);
}

TEST(Rebalance, RedistributeOrphansWithZeroWorkSpreadsByCount) {
  pdes::LpGraph g = make_dummies(8);
  pdes::Partition part(8, 0);  // worker 0 died owning everything
  const std::vector<double> work(8, 0.0);
  const std::vector<bool> alive{false, true, true};
  redistribute_orphans(g, part, work, alive, lb_config());
  std::vector<std::size_t> counts(3, 0);
  for (auto w : part) ++counts[w];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 4u);
  EXPECT_EQ(counts[2], 4u);
}

}  // namespace
}  // namespace vsim::partition
