// Partitioner tests: validity, balance, determinism, and the bipartite
// scheme's cut-size advantage on circuit-shaped graphs.
#include <gtest/gtest.h>

#include "circuits/fsm.h"
#include "circuits/iir.h"
#include "partition/partition.h"

namespace vsim::partition {
namespace {

void check_valid(const pdes::Partition& p, std::size_t n_lps,
                 std::size_t n_workers) {
  ASSERT_EQ(p.size(), n_lps);
  std::vector<std::size_t> counts(n_workers, 0);
  for (auto w : p) {
    ASSERT_LT(w, n_workers);
    ++counts[w];
  }
  // Balance: max and min worker load differ by at most ceil(n/w).
  const std::size_t per = (n_lps + n_workers - 1) / n_workers;
  for (auto c : counts) EXPECT_LE(c, per);
}

class PartitionTest : public testing::TestWithParam<std::size_t> {};

TEST_P(PartitionTest, RoundRobinIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  check_valid(round_robin(553, workers), 553, workers);
}

TEST_P(PartitionTest, BlocksIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  check_valid(blocks(553, workers), 553, workers);
}

TEST_P(PartitionTest, BipartiteBfsIsValidAndBalanced) {
  const std::size_t workers = GetParam();
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::FsmParams fp;
  fp.lanes = 4;
  circuits::build_fsm(d, fp);
  d.finalize();
  check_valid(bipartite_bfs(g, workers), g.size(), workers);
}

INSTANTIATE_TEST_SUITE_P(Workers, PartitionTest,
                         testing::Values(1, 2, 3, 7, 8, 16));

TEST(Partition, BipartiteReducesCutOnCircuits) {
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::IirParams ip;
  ip.sections = 3;
  circuits::build_iir(d, ip);
  d.finalize();
  for (std::size_t workers : {2u, 4u, 8u}) {
    const auto rr = round_robin(g.size(), workers);
    const auto bf = bipartite_bfs(g, workers);
    EXPECT_LT(cut_size(g, bf), cut_size(g, rr)) << workers << " workers";
  }
}

TEST(Partition, Deterministic) {
  pdes::LpGraph g;
  vhdl::Design d(g);
  circuits::FsmParams fp;
  circuits::build_fsm(d, fp);
  d.finalize();
  EXPECT_EQ(bipartite_bfs(g, 8), bipartite_bfs(g, 8));
  EXPECT_EQ(round_robin(g.size(), 8), round_robin(g.size(), 8));
}

TEST(Partition, CutSizeCountsCrossWorkerChannels) {
  pdes::LpGraph g;
  struct Dummy final : pdes::LogicalProcess {
    using LogicalProcess::LogicalProcess;
    void simulate(const pdes::Event&, pdes::SimContext&) override {}
    std::unique_ptr<pdes::LpState> save_state() const override {
      return std::make_unique<pdes::LpState>();
    }
    void restore_state(const pdes::LpState&) override {}
  };
  for (int i = 0; i < 4; ++i)
    g.add(std::make_unique<Dummy>("d" + std::to_string(i)));
  g.add_channel(0, 1);
  g.add_channel(1, 2);
  g.add_channel(2, 3);
  EXPECT_EQ(cut_size(g, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(cut_size(g, {0, 0, 1, 1}), 1u);
  EXPECT_EQ(cut_size(g, {0, 1, 0, 1}), 3u);
}

}  // namespace
}  // namespace vsim::partition
