// LP clustering (partition/cluster.h + pdes/cluster.h): fused ClusterLps
// must be invisible to correctness.  The acceptance bar:
//   - the BFS clustering pass is deterministic, contiguous and size-bounded;
//   - fusion rewrites topology + initial events without touching the model;
//   - clustered runs on every engine (machine, threaded, distributed) commit
//     exactly the flat sequential oracle's traces, including under
//     rebalancing, checkpointing and a SIGKILLed rank;
//   - a >= 100k-signal generated netlist runs clustered end to end;
//   - RunStats reports per-CLUSTER rows whose history gauges match the
//     legacy totals, and GVT rounds scan O(workers), not O(workers x LPs).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>

#include "circuits/fsm.h"
#include "circuits/random_circuit.h"
#include "common/bytes.h"
#include "obs/metrics.h"
#include "partition/cluster.h"
#include "partition/partition.h"
#include "pdes/cluster.h"
#include "pdes/distributed.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VSIM_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define VSIM_TSAN 1
#endif

namespace vsim {
namespace {

using circuits::FsmParams;
using circuits::RandomCircuitParams;
using partition::ClusterOptions;
using pdes::Configuration;
using pdes::DistributedEngine;
using pdes::FusedGraph;
using pdes::LpGraph;
using pdes::MachineEngine;
using pdes::OrderingMode;
using pdes::RunConfig;
using pdes::RunStats;
using pdes::SequentialEngine;
using pdes::ThreadedEngine;
using pdes::WorkerCrash;
using vhdl::Design;
using vhdl::SignalId;
using vhdl::TraceRecorder;

// The distributed runs fork; TSan does not support real work in children of
// a multi-threaded process (watchdog + sanitizer threads exist by then).
#ifdef VSIM_TSAN
#define SKIP_UNDER_TSAN() GTEST_SKIP() << "fork-based engine under TSan"
#else
#define SKIP_UNDER_TSAN() (void)0
#endif

struct Built {
  std::unique_ptr<LpGraph> graph;
  std::unique_ptr<Design> design;
  std::unique_ptr<TraceRecorder> recorder;
};

Built build_fsm() {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<Design>(*b.graph);
  FsmParams p;
  p.lanes = 2;
  p.width = 4;
  p.input_stop = 400;
  const auto c = circuits::build_fsm(*b.design, p);
  std::vector<SignalId> probes = c.state;
  probes.push_back(c.parity);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

RandomCircuitParams random_params() {
  RandomCircuitParams p;
  p.seed = 11;
  p.num_inputs = 5;
  p.num_gates = 60;
  p.num_dffs = 10;
  p.input_stop = 500;
  return p;
}

Built build_random(const RandomCircuitParams& p) {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<Design>(*b.graph);
  const auto c = circuits::build_random_circuit(*b.design, p);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, c.observable);
  b.design->finalize();
  return b;
}

// A circuit built flat, then fused.  The Built keeps the Design + recorder
// alive (their hooks see inner flat ids); `fused` is what engines run.
struct Fused {
  Built b;
  FusedGraph fused;
};

Fused fuse(Built b, std::size_t target_size, std::uint64_t seed = 1) {
  ClusterOptions opts;
  opts.target_size = target_size;
  opts.seed = seed;
  const auto assignment = partition::cluster_bfs(*b.graph, opts);
  FusedGraph f = pdes::fuse_clusters(*b.graph, assignment);
  return Fused{std::move(b), std::move(f)};
}

void run_oracle(Built& ref, PhysTime until) {
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);
}

RunStats run_machine(Fused& fz, RunConfig rc) {
  const auto part =
      partition::round_robin(fz.fused.graph.size(), rc.num_workers);
  MachineEngine eng(fz.fused.graph, part, rc);
  eng.set_commit_hook(fz.b.recorder->hook());
  return eng.run();
}

RunStats run_threaded(Fused& fz, RunConfig rc) {
  const auto part =
      partition::round_robin(fz.fused.graph.size(), rc.num_workers);
  ThreadedEngine eng(fz.fused.graph, part, rc);
  eng.set_commit_hook(fz.b.recorder->hook());
  return eng.run();
}

std::chrono::seconds watchdog_limit() {
  if (const char* s = std::getenv("VSIM_TEST_WATCHDOG_S"))
    return std::chrono::seconds(std::atoi(s));
  return std::chrono::seconds(static_cast<long>(120 * pdes::time_scale()));
}

RunStats run_distributed(Fused& fz, RunConfig rc, const char* label,
                         std::chrono::seconds limit = std::chrono::seconds(0)) {
  const auto part =
      partition::round_robin(fz.fused.graph.size(), rc.num_workers);
  DistributedEngine eng(fz.fused.graph, part, rc);
  testutil::Watchdog wd(label, limit.count() > 0 ? limit : watchdog_limit(),
                        [&eng](std::FILE* f) { eng.debug_dump(f); });
  eng.set_commit_hook(fz.b.recorder->hook());
  return eng.run();
}

RunConfig dist_config(PhysTime until) {
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.gvt_interval = 24;
  rc.net.heartbeat_interval_ms = 5;
  rc.net.heartbeat_timeout_ms = 400;
  return rc;
}

// ---------------------------------------------------------------------------
// Clustering pass.

TEST(ClusterPass, DeterministicContiguousBounded) {
  Built b = build_random(random_params());
  ClusterOptions opts;
  opts.target_size = 16;
  opts.seed = 3;
  const auto a1 = partition::cluster_bfs(*b.graph, opts);
  ASSERT_EQ(a1.size(), b.graph->size());

  const std::size_t k = partition::num_clusters(a1);
  ASSERT_GT(k, 1u);
  std::vector<std::size_t> sizes(k, 0);
  for (const std::uint32_t c : a1) {
    ASSERT_LT(c, k);
    ++sizes[c];
  }
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_GT(sizes[c], 0u) << "cluster " << c << " empty";
    EXPECT_LE(sizes[c], opts.target_size);
  }

  // Same options, same assignment -- bit for bit.
  EXPECT_EQ(partition::cluster_bfs(*b.graph, opts), a1);

  // A different seed is a different but equally valid clustering.
  opts.seed = 4;
  const auto a2 = partition::cluster_bfs(*b.graph, opts);
  ASSERT_EQ(a2.size(), a1.size());
  const std::size_t k2 = partition::num_clusters(a2);
  std::vector<std::size_t> sizes2(k2, 0);
  for (const std::uint32_t c : a2) ++sizes2[c];
  for (std::size_t c = 0; c < k2; ++c) {
    EXPECT_GT(sizes2[c], 0u);
    EXPECT_LE(sizes2[c], opts.target_size);
  }
}

TEST(ClusterPass, MaxClustersIsAHardBound) {
  Built b = build_random(random_params());
  const std::size_t n = b.graph->size();
  ClusterOptions opts;
  opts.target_size = 1;  // would yield n singleton clusters on its own
  opts.max_clusters = 8;
  const auto a = partition::cluster_bfs(*b.graph, opts);
  const std::size_t k = partition::num_clusters(a);
  EXPECT_LE(k, opts.max_clusters);
  EXPECT_GT(k, 1u);
  // The merge pass may push individual regions past the raised per-region
  // target, but never unboundedly: 2x the ceiling covers one forced merge.
  const std::size_t cap = (n + opts.max_clusters - 1) / opts.max_clusters;
  std::vector<std::size_t> sizes(k, 0);
  for (const std::uint32_t c : a) ++sizes[c];
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_GT(sizes[c], 0u);
    EXPECT_LE(sizes[c], 2 * cap);
  }
}

// ---------------------------------------------------------------------------
// Fusion.

TEST(ClusterFuse, TopologyAndInitialEventsRewritten) {
  Built b = build_fsm();
  const std::size_t flat_size = b.graph->size();
  const std::size_t flat_initials = b.graph->initial_events().size();
  ClusterOptions opts;
  opts.target_size = 8;
  const auto assignment = partition::cluster_bfs(*b.graph, opts);
  FusedGraph f = pdes::fuse_clusters(*b.graph, assignment);

  EXPECT_EQ(f.flat_size, flat_size);
  EXPECT_EQ(f.num_clusters, partition::num_clusters(assignment));
  EXPECT_EQ(f.graph.size(), f.num_clusters);
  EXPECT_EQ(f.table->cluster_of.size(), flat_size);

  // Every flat LP landed in the cluster the assignment named, with a local
  // index that round-trips through the table.
  std::vector<std::size_t> counted(f.num_clusters, 0);
  for (pdes::LpId flat = 0; flat < flat_size; ++flat) {
    EXPECT_EQ(f.table->cluster_of[flat], assignment[flat]);
    ++counted[f.table->cluster_of[flat]];
  }
  for (std::size_t c = 0; c < f.num_clusters; ++c) {
    const auto& cl = dynamic_cast<const pdes::ClusterLp&>(f.graph.lp(c));
    EXPECT_EQ(cl.size(), counted[c]) << "cluster " << c;
  }

  // Channels: deduplicated, inter-cluster only (intra-cluster edges became
  // local queue operations and must not exist in the runtime topology).
  for (pdes::LpId c = 0; c < f.graph.size(); ++c) {
    std::set<pdes::LpId> seen;
    for (const pdes::LpId dst : f.graph.fan_out(c)) {
      EXPECT_NE(dst, c) << "self-channel on cluster " << c;
      EXPECT_TRUE(seen.insert(dst).second) << "duplicate channel " << c
                                           << " -> " << dst;
    }
  }

  // Initial events: readdressed to the owning cluster, flat target in sub.
  ASSERT_EQ(f.graph.initial_events().size(), flat_initials);
  for (const pdes::Event& ev : f.graph.initial_events()) {
    ASSERT_NE(ev.sub, pdes::kInvalidLp);
    EXPECT_EQ(ev.dst, f.table->cluster_of[ev.sub]);
    EXPECT_EQ(pdes::inner_dst(ev), ev.sub);
  }
}

// ---------------------------------------------------------------------------
// Engine equivalence: clustered runs commit exactly the flat oracle traces.

TEST(ClusterEquivalence, MachineMatchesOracleAcrossConfigs) {
  struct Mode {
    const char* name;
    Configuration config;
    std::size_t workers;
  };
  const Mode kModes[] = {
      {"optimistic", Configuration::kAllOptimistic, 3},
      {"conservative", Configuration::kAllConservative, 3},
      {"mixed", Configuration::kMixed, 4},
      {"dynamic", Configuration::kDynamic, 4},
  };
  struct Circuit {
    const char* name;
    Built (*build)();
    PhysTime until;
  };
  const auto build_rnd = [] { return build_random(random_params()); };
  const Circuit kCircuits[] = {
      {"fsm", &build_fsm, 300},
      {"random", +build_rnd, 400},
  };
  for (const Circuit& tc : kCircuits) {
    Built ref = tc.build();
    run_oracle(ref, tc.until);
    for (const Mode& m : kModes) {
      for (const std::size_t target : {4u, 32u}) {
        Fused fz = fuse(tc.build(), target);
        RunConfig rc;
        rc.num_workers = m.workers;
        rc.configuration = m.config;
        rc.ordering = OrderingMode::kArbitrary;
        rc.until = tc.until;
        rc.gvt_interval = 32;
        const RunStats st = run_machine(fz, rc);
        EXPECT_FALSE(st.deadlocked)
            << tc.name << "/" << m.name << "/t" << target;
        EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "")
            << tc.name << "/" << m.name << "/t" << target;
        EXPECT_GT(st.total_committed(), 0u);
      }
    }
  }
}

TEST(ClusterEquivalence, ThreadedMatchesOracle) {
  const auto until = PhysTime{400};
  Built ref = build_random(random_params());
  run_oracle(ref, until);

  Fused fz = fuse(build_random(random_params()), /*target_size=*/8);
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.gvt_interval = 32;
  const RunStats st = run_threaded(fz, rc);
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
  EXPECT_GT(st.total_committed(), 0u);
}

// Clusters are the migration and checkpoint unit: a clustered run with the
// PR 5 rebalancer and periodic checkpoints enabled stays bit-identical.
TEST(ClusterEquivalence, RebalanceAndCheckpointMatchOracle) {
  const auto until = PhysTime{400};
  Built ref = build_random(random_params());
  run_oracle(ref, until);

  Fused fz = fuse(build_random(random_params()), /*target_size=*/6);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.gvt_interval = 16;
  rc.rebalance.period = 2;
  rc.rebalance.imbalance_trigger = 0.05;
  rc.rebalance.max_moves = 3;
  rc.checkpoint.period = 2;
  const RunStats st = run_machine(fz, rc);
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
  EXPECT_GT(st.checkpoint.checkpoints, 0u);
}

TEST(ClusterEquivalence, DistributedFourRankMatchesOracle) {
  SKIP_UNDER_TSAN();
  const auto until = PhysTime{300};
  Built ref = build_fsm();
  run_oracle(ref, until);

  Fused fz = fuse(build_fsm(), /*target_size=*/8);
  const RunStats st = run_distributed(
      fz, dist_config(until), "ClusterEquivalence.DistributedFourRank");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
}

// A SIGKILLed rank in a clustered run: recovery restores ClusterLp state
// through the byte codec (encode_state on capture, decode + full-snapshot
// restore on the survivors), and the finish is still bit-identical.
TEST(ClusterFault, DistributedClusteredCrashRecovers) {
  SKIP_UNDER_TSAN();
  const auto until = PhysTime{300};
  Built ref = build_fsm();
  run_oracle(ref, until);

  Fused fz = fuse(build_fsm(), /*target_size=*/8);
  RunConfig rc = dist_config(until);
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 60});
  const RunStats st = run_distributed(
      fz, rc, "ClusterFault.DistributedClusteredCrash");
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  ASSERT_FALSE(st.recovery_error.has_value()) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GE(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
}

// ---------------------------------------------------------------------------
// Scale: a six-figure netlist, clustered, on the real engines.

TEST(ClusterScale, HundredKSignalThreadedMatchesOracle) {
  const RandomCircuitParams p = circuits::sized_random_params(100'000, 5);
  const auto until = PhysTime{30};

  Built ref = build_random(p);
  ASSERT_GE(ref.design->num_signals(), 100'000u);
  run_oracle(ref, until);

  Fused fz = fuse(build_random(p), /*target_size=*/64);
  ASSERT_GE(fz.fused.flat_size, 150'000u);  // signals + processes
  ASSERT_GE(fz.fused.num_clusters, 1'000u);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.gvt_interval = 256;
  const RunStats st = run_threaded(fz, rc);
  EXPECT_FALSE(st.deadlocked);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
  EXPECT_GT(st.total_committed(), 0u);
  // RunStats rows are per CLUSTER -- the report stayed cluster-sized even
  // though the model has 150k+ flat LPs.
  EXPECT_EQ(st.per_lp.size(), fz.fused.num_clusters);
}

TEST(ClusterScale, HundredKSignalDistributedMatchesOracle) {
  SKIP_UNDER_TSAN();
  const RandomCircuitParams p = circuits::sized_random_params(100'000, 5);
  const auto until = PhysTime{15};

  Built ref = build_random(p);
  run_oracle(ref, until);

  Fused fz = fuse(build_random(p), /*target_size=*/64);
  RunConfig rc = dist_config(until);
  rc.gvt_interval = 256;
  // Six-figure ranks take real wall-clock per round; the fast-death tuning
  // of the small tests would mistake a busy rank for a dead one.
  rc.net.heartbeat_timeout_ms = 3000;
  const RunStats st =
      run_distributed(fz, rc, "ClusterScale.HundredKSignalDistributed",
                      std::chrono::seconds(
                          static_cast<long>(360 * pdes::time_scale())));
  ASSERT_FALSE(st.config_error.has_value()) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.transport_error.has_value());
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *fz.b.recorder), "");
}

// ---------------------------------------------------------------------------
// Stats + metrics under clustering.

// Satellite regression: the metrics snapshot must agree with the legacy
// RunStats totals when LPs are fused -- per-cluster history peaks feed the
// tw.peak_history / tw.total_history gauges, and per_lp has one row per
// CLUSTER (the schedulable unit), not per flat model LP.
TEST(ClusterStats, MetricsMatchLegacyTotalsUnderClustering) {
  Fused fz = fuse(build_random(random_params()), /*target_size=*/8);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 400;
  rc.gvt_interval = 32;
  const RunStats st = run_machine(fz, rc);
  ASSERT_FALSE(st.deadlocked);

  EXPECT_EQ(st.per_lp.size(), fz.fused.num_clusters);
  EXPECT_LT(st.per_lp.size(), fz.fused.flat_size);
  // Optimistic execution must actually have saved history for the gauges to
  // be a meaningful memory proxy.
  EXPECT_GT(st.peak_history(), 0u);
  EXPECT_EQ(st.metrics.gauge(obs::Gauge::kPeakHistory),
            static_cast<double>(st.peak_history()));
  EXPECT_EQ(st.metrics.gauge(obs::Gauge::kTotalHistory),
            static_cast<double>(st.total_history()));
  EXPECT_EQ(st.metrics.counter(obs::Metric::kStateSaves), [&] {
    std::uint64_t n = 0;
    for (const auto& l : st.per_lp) n += l.state_saves;
    return n;
  }());
}

// Hierarchical GVT evidence: a machine-model round reduces over per-worker
// ordered ready sets, so the scan-item counter equals rounds x workers --
// NOT rounds x LP count as a flat scan would.
TEST(ClusterStats, GvtScanIsPerWorkerNotPerLp) {
  Fused fz = fuse(build_random(random_params()), /*target_size=*/4);
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = 400;
  rc.gvt_interval = 16;
  const RunStats st = run_machine(fz, rc);
  ASSERT_FALSE(st.deadlocked);
  ASSERT_GT(st.gvt_rounds, 0u);
  ASSERT_GT(fz.fused.num_clusters, rc.num_workers);

  const std::uint64_t scanned = st.metrics.counter(obs::Metric::kGvtScanItems);
  EXPECT_EQ(scanned, st.gvt_rounds * rc.num_workers);
  EXPECT_LT(scanned, st.gvt_rounds * fz.fused.num_clusters);
}

// The threaded engine's reduction is two-level too: each worker contributes
// only its owned clusters to its local minimum, so scan items are bounded by
// rounds x clusters (one visit per owned cluster per round), never
// rounds x workers x clusters.
TEST(ClusterStats, ThreadedGvtScanBounded) {
  Fused fz = fuse(build_random(random_params()), /*target_size=*/4);
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = 400;
  rc.gvt_interval = 32;
  const RunStats st = run_threaded(fz, rc);
  ASSERT_FALSE(st.deadlocked);
  ASSERT_GT(st.gvt_rounds, 0u);
  const std::uint64_t scanned = st.metrics.counter(obs::Metric::kGvtScanItems);
  EXPECT_GT(scanned, 0u);
  EXPECT_LE(scanned, st.gvt_rounds * fz.fused.num_clusters);
}

// ---------------------------------------------------------------------------
// ClusterLp byte codec.

// encode_state must serialize a cluster's full inner state such that a twin
// cluster (same structure, never run) decodes + restores to byte-identical
// state -- this is exactly the path distributed checkpoint recovery takes.
TEST(ClusterCodec, EncodeDecodeRoundTripsThroughTwin) {
  Fused ran = fuse(build_fsm(), /*target_size=*/8);
  Fused twin = fuse(build_fsm(), /*target_size=*/8);
  ASSERT_EQ(ran.fused.num_clusters, twin.fused.num_clusters);

  // Evolve one copy away from the initial state.
  SequentialEngine seq(ran.fused.graph);
  seq.run(120);

  for (pdes::LpId c = 0; c < ran.fused.graph.size(); ++c) {
    auto& src = ran.fused.graph.lp(c);
    auto& dst = twin.fused.graph.lp(c);
    ASSERT_TRUE(src.can_save_state());

    const auto state = src.save_state();
    std::vector<std::uint8_t> buf;
    bytes::Writer w(buf);
    ASSERT_TRUE(src.encode_state(*state, w)) << "cluster " << c;
    ASSERT_FALSE(buf.empty());

    bytes::Reader r(buf);
    auto decoded = dst.decode_state(r);
    ASSERT_NE(decoded, nullptr) << "cluster " << c;
    dst.restore_state(*decoded);

    // Re-encoding the restored twin reproduces the original bytes.
    const auto dst_state = dst.save_state();
    std::vector<std::uint8_t> buf2;
    bytes::Writer w2(buf2);
    ASSERT_TRUE(dst.encode_state(*dst_state, w2)) << "cluster " << c;
    EXPECT_EQ(buf2, buf) << "cluster " << c;
  }
}

}  // namespace
}  // namespace vsim
