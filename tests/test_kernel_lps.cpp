// Targeted unit tests for the VHDL kernel LPs: the distributed simulation
// cycle phases of SignalLp, the wait machinery of ProcessLp, resolution
// with custom functions, and the state snapshot round-trip used by Time
// Warp.
#include <gtest/gtest.h>

#include "circuits/builder.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"
#include "vhdl/signal_lp.h"

namespace vsim::vhdl {
namespace {

using circuits::CircuitBuilder;
using circuits::GateKind;

// Captures sends made by an LP under test.
class CaptureCtx final : public pdes::SimContext {
 public:
  CaptureCtx(VirtualTime now, pdes::LpId self) : now_(now), self_(self) {}
  void send(pdes::LpId dst, VirtualTime ts, std::int16_t kind,
            pdes::Payload payload, pdes::LpId sub) override {
    pdes::Event e;
    e.ts = ts;
    e.src = self_;
    e.dst = dst;
    e.sub = sub;
    e.kind = kind;
    e.payload = std::move(payload);
    sent.push_back(std::move(e));
  }
  [[nodiscard]] VirtualTime now() const override { return now_; }
  [[nodiscard]] pdes::LpId self() const override { return self_; }
  std::vector<pdes::Event> sent;

 private:
  VirtualTime now_;
  pdes::LpId self_;
};

pdes::Event ev(VirtualTime ts, pdes::LpId dst, std::int16_t kind,
               pdes::Payload p = {}) {
  pdes::Event e;
  e.ts = ts;
  e.src = 0;
  e.dst = dst;
  e.kind = kind;
  e.payload = std::move(p);
  return e;
}

// Registers the LP in a graph so it has a valid id.
template <class T, class... Args>
T& make_lp(pdes::LpGraph& g, Args&&... args) {
  auto owned = std::make_unique<T>(std::forward<Args>(args)...);
  T* raw = owned.get();
  g.add(std::move(owned));
  return *raw;
}

// ------------------------------------------------------------ SignalLp

TEST(SignalLp, AssignSchedulesDrivingEventAtMaturity) {
  pdes::LpGraph g;
  auto& sig = make_lp<SignalLp>(g, "s", LogicVector{Logic::k0});
  const int d = sig.add_driver();
  sig.add_reader(7, 0);

  // Delta assignment at (5, 0): maturity in the next phase.
  CaptureCtx ctx({5, 0}, sig.id());
  pdes::Payload p;
  p.port = d;
  p.scalar = 0;
  p.bits = LogicVector{Logic::k1};
  sig.simulate(ev({5, 0}, sig.id(), kAssignInertial, std::move(p)), ctx);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].kind, kDriving);
  EXPECT_EQ(ctx.sent[0].ts, (VirtualTime{5, 1}));
  EXPECT_EQ(ctx.sent[0].dst, sig.id());

  // Delayed assignment: maturity at (5+3, Driving phase of a fresh cycle).
  CaptureCtx ctx2({5, 0}, sig.id());
  pdes::Payload p2;
  p2.port = d;
  p2.scalar = 3;
  p2.bits = LogicVector{Logic::k0};
  sig.simulate(ev({5, 0}, sig.id(), kAssignInertial, std::move(p2)), ctx2);
  ASSERT_EQ(ctx2.sent.size(), 1u);
  EXPECT_EQ(ctx2.sent[0].ts, (VirtualTime{8, 1}));
}

TEST(SignalLp, SingleSourceBroadcastsOnChangeOnly) {
  pdes::LpGraph g;
  auto& sig = make_lp<SignalLp>(g, "s", LogicVector{Logic::k0});
  const int d = sig.add_driver();
  sig.add_reader(7, 3);

  // Schedule '1' and mature it.
  CaptureCtx a({5, 0}, sig.id());
  pdes::Payload p;
  p.port = d;
  p.bits = LogicVector{Logic::k1};
  sig.simulate(ev({5, 0}, sig.id(), kAssignInertial, std::move(p)), a);
  CaptureCtx b({5, 1}, sig.id());
  sig.simulate(ev({5, 1}, sig.id(), kDriving), b);
  ASSERT_EQ(b.sent.size(), 1u);
  EXPECT_EQ(b.sent[0].kind, kUpdate);
  EXPECT_EQ(b.sent[0].dst, 7u);
  EXPECT_EQ(b.sent[0].payload.port, 3);
  EXPECT_EQ(b.sent[0].ts, (VirtualTime{5, 2}));
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k1);

  // A duplicate Driving event with no matured transaction is a no-op.
  CaptureCtx c({5, 1}, sig.id());
  sig.simulate(ev({5, 1}, sig.id(), kDriving), c);
  EXPECT_TRUE(c.sent.empty());
}

TEST(SignalLp, ResolvedSignalDefersToEffectivePhase) {
  pdes::LpGraph g;
  auto& sig = make_lp<SignalLp>(g, "bus", LogicVector{Logic::kZ});
  const int d0 = sig.add_driver();
  const int d1 = sig.add_driver();
  sig.add_reader(9, 0);
  ASSERT_TRUE(sig.is_resolved());

  // Two drivers assign simultaneously: '1' and 'Z'.
  for (int d : {d0, d1}) {
    CaptureCtx ctx({4, 0}, sig.id());
    pdes::Payload p;
    p.port = d;
    p.bits = LogicVector{d == d0 ? Logic::k1 : Logic::kZ};
    sig.simulate(ev({4, 0}, sig.id(), kAssignInertial, std::move(p)), ctx);
  }
  // First Driving event matures both and schedules Effective at lt+1.
  CaptureCtx drv({4, 1}, sig.id());
  sig.simulate(ev({4, 1}, sig.id(), kDriving), drv);
  ASSERT_EQ(drv.sent.size(), 1u);
  EXPECT_EQ(drv.sent[0].kind, kEffective);
  EXPECT_EQ(drv.sent[0].ts, (VirtualTime{4, 2}));

  // Effective applies the resolution table: '1' resolve 'Z' = '1',
  // broadcast at the same timestamp (paper: ts = (now, lt)).
  CaptureCtx eff({4, 2}, sig.id());
  sig.simulate(ev({4, 2}, sig.id(), kEffective), eff);
  ASSERT_EQ(eff.sent.size(), 1u);
  EXPECT_EQ(eff.sent[0].kind, kUpdate);
  EXPECT_EQ(eff.sent[0].ts, (VirtualTime{4, 2}));
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k1);
}

TEST(SignalLp, CustomResolverIsApplied) {
  pdes::LpGraph g;
  auto& sig = make_lp<SignalLp>(g, "wired_and", LogicVector{Logic::k1});
  const int d0 = sig.add_driver();
  const int d1 = sig.add_driver();
  sig.add_reader(9, 0);
  sig.set_resolver([](const std::vector<LogicVector>& drv) {
    LogicVector acc = drv.front();
    for (std::size_t i = 1; i < drv.size(); ++i)
      acc.set(0, logic_and(acc.at(0), drv[i].at(0)));
    return acc;
  });
  for (int d : {d0, d1}) {
    CaptureCtx ctx({4, 0}, sig.id());
    pdes::Payload p;
    p.port = d;
    p.bits = LogicVector{d == d0 ? Logic::k1 : Logic::k0};
    sig.simulate(ev({4, 0}, sig.id(), kAssignInertial, std::move(p)), ctx);
  }
  CaptureCtx drv({4, 1}, sig.id());
  sig.simulate(ev({4, 1}, sig.id(), kDriving), drv);
  CaptureCtx eff({4, 2}, sig.id());
  sig.simulate(ev({4, 2}, sig.id(), kEffective), eff);
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k0);  // wired AND
}

TEST(SignalLp, SnapshotRoundTripRestoresWaveforms) {
  pdes::LpGraph g;
  auto& sig = make_lp<SignalLp>(g, "s", LogicVector{Logic::k0});
  const int d = sig.add_driver();

  CaptureCtx ctx({5, 0}, sig.id());
  pdes::Payload p;
  p.port = d;
  p.scalar = 10;
  p.bits = LogicVector{Logic::k1};
  sig.simulate(ev({5, 0}, sig.id(), kAssignInertial, std::move(p)), ctx);
  const auto snapshot = sig.save_state();

  // Mature the transaction, changing driving + effective values.
  CaptureCtx drv({15, 1}, sig.id());
  sig.simulate(ev({15, 1}, sig.id(), kDriving), drv);
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k1);

  // Restore: the pending transaction must be back, effective value reset.
  sig.restore_state(*snapshot);
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k0);
  CaptureCtx drv2({15, 1}, sig.id());
  sig.simulate(ev({15, 1}, sig.id(), kDriving), drv2);
  EXPECT_EQ(sig.effective_value().scalar(), Logic::k1);
}

// ----------------------------------------------------------- ProcessLp

// Body: counts its executions and re-waits on port 0 with a timeout.
class CountBody final : public ProcessBody {
 public:
  explicit CountBody(PhysTime timeout) : timeout_(timeout) {}
  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<CountBody>(*this);
  }
  void run(ProcessApi& api) override {
    ++runs;
    api.wait_on({0}, /*cond_id=*/-1, timeout_);
  }
  int runs = 0;

 private:
  PhysTime timeout_;
};

TEST(ProcessLp, TimeoutEventIsCancelledBySensitivityWake) {
  pdes::LpGraph g;
  auto body = std::make_unique<CountBody>(100);
  CountBody* counter = body.get();
  auto& proc = make_lp<ProcessLp>(g, "p", std::move(body));
  proc.add_input(LogicVector{Logic::k0});

  // Init at (0,0): run once, schedule timeout at (100, 0).
  CaptureCtx init({0, 0}, proc.id());
  proc.simulate(ev({0, 0}, proc.id(), kInit), init);
  EXPECT_EQ(counter->runs, 1);
  ASSERT_EQ(init.sent.size(), 1u);
  EXPECT_EQ(init.sent[0].kind, kTimeout);
  EXPECT_EQ(init.sent[0].ts, (VirtualTime{100, 0}));
  const auto old_epoch = init.sent[0].payload.scalar;

  // Signal update at (50, 2): wakes the process (execute at (50,3)).
  CaptureCtx upd({50, 2}, proc.id());
  pdes::Payload p;
  p.port = 0;
  p.bits = LogicVector{Logic::k1};
  proc.simulate(ev({50, 2}, proc.id(), kUpdate, std::move(p)), upd);
  ASSERT_EQ(upd.sent.size(), 1u);
  EXPECT_EQ(upd.sent[0].kind, kExecute);
  EXPECT_EQ(upd.sent[0].ts, (VirtualTime{50, 3}));

  CaptureCtx exec({50, 3}, proc.id());
  pdes::Event e = ev({50, 3}, proc.id(), kExecute);
  e.payload.scalar = upd.sent[0].payload.scalar;
  proc.simulate(e, exec);
  EXPECT_EQ(counter->runs, 2);

  // The stale timeout at (100,0) arrives with the old epoch: ignored.
  CaptureCtx late({100, 0}, proc.id());
  pdes::Event t = ev({100, 0}, proc.id(), kTimeout);
  t.payload.scalar = old_epoch;
  proc.simulate(t, late);
  EXPECT_EQ(counter->runs, 2);  // not resumed
  EXPECT_TRUE(late.sent.empty());
}

TEST(ProcessLp, SimultaneousUpdatesTriggerSingleExecution) {
  pdes::LpGraph g;
  auto body = std::make_unique<CountBody>(0);
  auto& proc = make_lp<ProcessLp>(g, "p", std::move(body));
  proc.add_input(LogicVector{Logic::k0});

  // Two updates at the same (pt, lt) (e.g. two bits of a bus LP graph):
  // only one kExecute may be scheduled.
  CaptureCtx init({0, 0}, proc.id());
  proc.simulate(ev({0, 0}, proc.id(), kInit), init);

  CaptureCtx u1({5, 2}, proc.id());
  pdes::Payload p1;
  p1.port = 0;
  p1.bits = LogicVector{Logic::k1};
  proc.simulate(ev({5, 2}, proc.id(), kUpdate, std::move(p1)), u1);
  ASSERT_EQ(u1.sent.size(), 1u);

  CaptureCtx u2({5, 2}, proc.id());
  pdes::Payload p2;
  p2.port = 0;
  p2.bits = LogicVector{Logic::k0};
  proc.simulate(ev({5, 2}, proc.id(), kUpdate, std::move(p2)), u2);
  EXPECT_TRUE(u2.sent.empty());  // deduplicated
}

// Body with a wait-until condition on port 0 == '1'.
class CondBody final : public ProcessBody {
 public:
  [[nodiscard]] std::unique_ptr<ProcessBody> clone() const override {
    return std::make_unique<CondBody>(*this);
  }
  void run(ProcessApi& api) override {
    ++runs;
    api.wait_on({0}, /*cond_id=*/7);
  }
  [[nodiscard]] bool eval_condition(int cond_id,
                                    const ProcessApi& api) const override {
    EXPECT_EQ(cond_id, 7);
    return to_x01(api.value(0).scalar()) == Logic::k1;
  }
  int runs = 0;
};

TEST(ProcessLp, WaitUntilConditionRecheckedAtResume) {
  pdes::LpGraph g;
  auto body = std::make_unique<CondBody>();
  CondBody* counter = body.get();
  auto& proc = make_lp<ProcessLp>(g, "p", std::move(body));
  proc.add_input(LogicVector{Logic::k0});

  CaptureCtx init({0, 0}, proc.id());
  proc.simulate(ev({0, 0}, proc.id(), kInit), init);
  EXPECT_EQ(counter->runs, 1);

  // Value rises: condition true -> execute scheduled.
  CaptureCtx up({5, 2}, proc.id());
  pdes::Payload p;
  p.port = 0;
  p.bits = LogicVector{Logic::k1};
  proc.simulate(ev({5, 2}, proc.id(), kUpdate, std::move(p)), up);
  ASSERT_EQ(up.sent.size(), 1u);
  const auto epoch = up.sent[0].payload.scalar;

  // But the value falls again in the same delta before the execute runs:
  // the re-check at resume must keep the process suspended.
  CaptureCtx down({5, 2}, proc.id());
  pdes::Payload p2;
  p2.port = 0;
  p2.bits = LogicVector{Logic::k0};
  proc.simulate(ev({5, 2}, proc.id(), kUpdate, std::move(p2)), down);

  CaptureCtx exec({5, 3}, proc.id());
  pdes::Event e = ev({5, 3}, proc.id(), kExecute);
  e.payload.scalar = epoch;
  proc.simulate(e, exec);
  EXPECT_EQ(counter->runs, 1);  // still waiting
}

TEST(ProcessLp, SnapshotRestoresWaitStateAndBody) {
  pdes::LpGraph g;
  auto body = std::make_unique<CountBody>(100);
  CountBody* counter = body.get();
  auto& proc = make_lp<ProcessLp>(g, "p", std::move(body));
  proc.add_input(LogicVector{Logic::k0});

  CaptureCtx init({0, 0}, proc.id());
  proc.simulate(ev({0, 0}, proc.id(), kInit), init);
  const auto snap = proc.save_state();
  EXPECT_EQ(counter->runs, 1);

  CaptureCtx up({10, 2}, proc.id());
  pdes::Payload p;
  p.port = 0;
  p.bits = LogicVector{Logic::k1};
  proc.simulate(ev({10, 2}, proc.id(), kUpdate, std::move(p)), up);
  proc.restore_state(*snap);

  // After restore the local copy is '0' again, so the same update is a
  // change again and re-triggers the wake.
  CaptureCtx up2({10, 2}, proc.id());
  pdes::Payload p2;
  p2.port = 0;
  p2.bits = LogicVector{Logic::k1};
  proc.simulate(ev({10, 2}, proc.id(), kUpdate, std::move(p2)), up2);
  EXPECT_EQ(up2.sent.size(), 1u);
}

// ------------------------------------------- phase discipline property

// Property: in a full sequential run of a mixed circuit, every event kind
// lands in its designated phase (the invariant behind the paper's
// arbitrary-order correctness argument).
TEST(PhaseDiscipline, AllEventsLandInTheirPhase) {
  pdes::LpGraph graph;
  Design design(graph);
  CircuitBuilder cb(design, 1);
  const auto clk = cb.wire("clk", Logic::k0);
  cb.clock(clk, 7);
  const auto a = cb.wire("a", Logic::k0);
  cb.random_bits(a, 5, 3, 200);
  const auto x = cb.wire("x");
  cb.gate(GateKind::kXor, {clk, a}, x);
  const auto q = cb.wire("q", Logic::k0);
  cb.dff(clk, x, q);
  design.finalize();

  pdes::SequentialEngine eng(graph);
  eng.set_commit_hook([](const pdes::Event& e) {
    switch (e.kind) {
      case kAssignInertial:
      case kAssignTransport:
      case kExecute:
      case kTimeout:
      case kInit:
        EXPECT_EQ(e.ts.phase(), Phase::kAssign) << e.ts.str();
        break;
      case kDriving:
        EXPECT_EQ(e.ts.phase(), Phase::kDriving) << e.ts.str();
        break;
      case kEffective:
      case kUpdate:
        EXPECT_EQ(e.ts.phase(), Phase::kEffective) << e.ts.str();
        break;
      default:
        ADD_FAILURE() << "unknown kind " << e.kind;
    }
  });
  const auto result = eng.run(300);
  EXPECT_GT(result.stats.total_events(), 100u);
}

}  // namespace
}  // namespace vsim::vhdl
