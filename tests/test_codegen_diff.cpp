// Interpreter-differential proof for the native codegen backend.
//
// The interpreter (InterpBody) is the executable reference semantics; the
// AOT backend (CompiledBody, frontend/codegen.cpp) must be bit-identical to
// it on every observable: committed signal traces, suspension snapshots,
// checkpoint bytes, and even runtime diagnostics.  This suite holds that
// line three ways:
//   - a seeded random VHDL program generator sweeps both backends through
//     the sequential engine and diffs the committed traces (the `stress`
//     ctest label runs the full 200-seed matrix via VSIM_STRESS_SEEDS);
//   - the same generated designs run natively under the optimistic machine
//     engine and the threaded engine against the interpreted sequential
//     oracle, so rollbacks restore suspended compiled bodies mid-wait;
//   - runtime error paths (width mismatch, bad index, non-01 arithmetic,
//     the instruction budget) must produce the interpreter's diagnostics
//     word for word.
//
// The generator only emits well-formed programs: every signal has exactly
// one driver, combinational processes read only acyclically-reachable
// signals, integers stay non-negative and bounded, and multi-valued logic
// ('U'/'X'/'Z'/...) flows only through taint-safe sinks (std_logic ops and
// equality), never into arithmetic.  Anything outside that envelope is an
// error-path test, not a fuzz case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/elaborator.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

namespace vsim::fe {
namespace {

using pdes::Configuration;
using pdes::RunConfig;

std::uint64_t stress_seeds() {
  if (const char* s = std::getenv("VSIM_STRESS_SEEDS")) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 6;  // tier-1 smoke sweep; CI overrides with 200
}

// True when this binary was built under a sanitizer: the native backend
// must refuse to dlopen uninstrumented objects and fall back to interp,
// so "native" runs are still correct but never actually compiled.
constexpr bool sanitize_build() {
#ifdef VSIM_SANITIZE_BUILD
  return true;
#else
  return false;
#endif
}

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

Built build_vhdl(const std::string& src, const std::string& top,
                 const std::vector<std::string>& probes, Backend backend) {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  ElabOptions opt;
  opt.backend = backend;
  elaborate_source(src, top, *b.design, opt);
  std::vector<vhdl::SignalId> ids;
  ids.reserve(probes.size());
  for (const auto& p : probes) ids.push_back(b.design->find_signal(p));
  b.recorder = std::make_unique<vhdl::TraceRecorder>(*b.design, ids);
  b.design->finalize();
  return b;
}

void run_seq(Built& b, PhysTime until) {
  pdes::SequentialEngine eng(*b.graph);
  eng.set_commit_hook(b.recorder->hook());
  eng.run(until);
}

// ------------------------------------------------ random program generator

struct FuzzDesign {
  std::string src;
  std::vector<std::string> probes;  // design-qualified signal names
};

// Seeded generator for well-formed VHDL designs: a clock, a stimulus
// process, and 2-4 random processes (clocked / combinational / timed) over
// std_logic, std_logic_vector and integer/boolean variables.
class FuzzGen {
 public:
  explicit FuzzGen(std::uint64_t seed)
      : rng_(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull) {}

  FuzzDesign build() {
    w_ = irand(3, 6);
    const int nproc = irand(2, 4);

    // Declare everything up front so readability rules can span processes
    // in both directions (a clocked process may read a later one's output).
    add_sig("clk", /*vec=*/false, /*xt=*/false, "'0'");
    add_sig("st0", false, false, "'0'");
    add_sig("st1", false, false, "'1'");
    add_sig("sv0", true, false, vec_lit());
    add_sig("sx0", false, true, "'0'");
    proc_kinds_.assign(static_cast<std::size_t>(nproc), 0);
    std::vector<std::vector<int>> proc_outs(
        static_cast<std::size_t>(nproc));
    for (int i = 0; i < nproc; ++i) {
      proc_kinds_[static_cast<std::size_t>(i)] = irand(0, 2);
      const int nouts = irand(1, 2);
      for (int o = 0; o < nouts; ++o) {
        const int roll = irand(0, 9);
        const bool vec = roll >= 6 && roll <= 8;
        const bool xt = roll == 9;
        const std::string name =
            "po" + std::to_string(i) + "_" + std::to_string(o);
        proc_outs[static_cast<std::size_t>(i)].push_back(
            add_sig(name, vec, xt, vec ? vec_lit() : bit_lit(false), i));
      }
    }

    std::ostringstream out;
    out << "entity fz is end fz;\n";
    out << "architecture a of fz is\n";
    for (const Sig& s : sigs_) {
      out << "  signal " << s.name << " : ";
      if (s.vec)
        out << "std_logic_vector(" << (w_ - 1) << " downto 0)";
      else
        out << "std_logic";
      out << " := " << s.init << ";\n";
    }
    out << "begin\n";

    const int half = irand(4, 7);
    out << "  clkgen: process begin\n"
        << "    clk <= '1'; wait for " << half << " ns;\n"
        << "    clk <= '0'; wait for " << half << " ns;\n"
        << "  end process;\n";

    emit_stim(out);
    for (int i = 0; i < nproc; ++i)
      emit_process(out, i, proc_kinds_[static_cast<std::size_t>(i)],
                   proc_outs[static_cast<std::size_t>(i)]);

    out << "end a;\n";

    FuzzDesign d;
    d.src = out.str();
    for (const Sig& s : sigs_) d.probes.push_back("fz/" + s.name);
    return d;
  }

 private:
  struct Sig {
    std::string name;
    bool vec = false;
    bool xt = false;  // may carry non-01 logic values
    std::string init;
    int owner = -1;  // -1: clk/stimulus, else process index
  };

  int irand(int lo, int hi) {
    return lo + static_cast<int>(
                    rng_() % static_cast<std::uint64_t>(hi - lo + 1));
  }
  bool chance(int pct) { return static_cast<int>(rng_() % 100) < pct; }
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(
        irand(0, static_cast<int>(v.size()) - 1))];
  }

  int add_sig(const std::string& name, bool vec, bool xt, std::string init,
              int owner = -1) {
    sigs_.push_back(Sig{name, vec, xt, std::move(init), owner});
    return static_cast<int>(sigs_.size()) - 1;
  }

  std::string bit_lit(bool allow_x) {
    if (allow_x && chance(40)) {
      static const char kX[] = {'U', 'X', 'Z', 'W', 'L', 'H'};
      return std::string("'") + kX[irand(0, 5)] + "'";
    }
    return chance(50) ? "'1'" : "'0'";
  }
  std::string vec_lit() {
    std::string s = "\"";
    for (int i = 0; i < w_; ++i) s += chance(50) ? '1' : '0';
    return s + "\"";
  }

  // ---- per-process readability ----
  //
  // Clocked and timed processes may read any signal (edge/time decoupling
  // breaks zero-delay cycles); combinational processes read the stimulus,
  // non-combinational outputs and only *earlier* combinational outputs,
  // which keeps the zero-delay dependency graph acyclic.
  void compute_readable(int proc, int kind, const std::vector<int>& outs) {
    r_bits_.clear();
    r_vecs_.clear();
    r_xbits_.clear();
    sens_.clear();
    own_bits_.clear();
    own_vecs_.clear();
    own_xbits_.clear();
    for (std::size_t i = 0; i < sigs_.size(); ++i) {
      const Sig& s = sigs_[i];
      const bool own =
          std::find(outs.begin(), outs.end(), static_cast<int>(i)) !=
          outs.end();
      if (own) {
        if (s.xt)
          own_xbits_.push_back(s.name);
        else if (s.vec)
          own_vecs_.push_back(s.name);
        else
          own_bits_.push_back(s.name);
      }
      bool readable;
      if (kind != 1) {
        readable = true;  // clocked/timed: anything, incl. own feedback
      } else if (own) {
        readable = false;  // comb reading itself would oscillate
      } else if (s.owner < 0) {
        readable = s.name != "clk";  // stimulus, but not the raw clock
      } else {
        readable =
            proc_kinds_[static_cast<std::size_t>(s.owner)] != 1 ||
            s.owner < proc;
      }
      if (!readable) continue;
      if (s.xt)
        r_xbits_.push_back(s.name);
      else if (s.vec)
        r_vecs_.push_back(s.name);
      else if (s.name != "clk" || kind == 0)
        r_bits_.push_back(s.name);
      if (kind == 1) sens_.push_back(s.name);
    }
  }

  // ---- expressions ----

  std::string e_int(int d) {
    if (d <= 0 || chance(40)) {
      const int c = irand(0, 5);
      if (c <= 2 || vints_.empty()) {
        if (c == 0 && !r_vecs_.empty())
          return "to_integer(" + pick(r_vecs_) + ")";
        return std::to_string(irand(0, 9));
      }
      return pick(vints_);
    }
    const std::string a = e_int(d - 1), b = e_int(d - 1);
    switch (irand(0, 3)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " * " + b + ")";
      case 2: return "(" + a + " mod " + std::to_string(irand(2, 9)) + ")";
      default: return "(" + a + " / " + std::to_string(irand(2, 9)) + ")";
    }
  }

  std::string e_bit(int d, bool x) {
    if (d <= 0 || chance(35)) {
      const int c = irand(0, 3);
      if (c == 0 && x && !r_xbits_.empty()) return pick(r_xbits_);
      if (c == 1 && !r_bits_.empty()) return pick(r_bits_);
      if (c == 2 && !vbits_.empty()) return pick(vbits_);
      if (c == 3 && !r_vecs_.empty())
        return pick(r_vecs_) + "(" + std::to_string(irand(0, w_ - 1)) +
               ")";
      return bit_lit(x);
    }
    const std::string a = e_bit(d - 1, x), b = e_bit(d - 1, x);
    switch (irand(0, 6)) {
      case 0: return "(" + a + " and " + b + ")";
      case 1: return "(" + a + " or " + b + ")";
      case 2: return "(" + a + " xor " + b + ")";
      case 3: return "(" + a + " nand " + b + ")";
      case 4: return "(" + a + " nor " + b + ")";
      case 5: return "(" + a + " xnor " + b + ")";
      default: return "(not " + a + ")";
    }
  }

  std::string e_vec(int d) {
    if (d <= 0 || chance(35)) {
      const int c = irand(0, 3);
      if (c == 0 && !r_vecs_.empty()) return pick(r_vecs_);
      if (c == 1 && !vvecs_.empty()) return pick(vvecs_);
      if (c == 2)
        return "to_unsigned(" + e_int(1) + ", " + std::to_string(w_) + ")";
      return vec_lit();
    }
    const std::string a = e_vec(d - 1);
    switch (irand(0, 6)) {
      case 0: return "(" + a + " and " + e_vec(d - 1) + ")";
      case 1: return "(" + a + " or " + e_vec(d - 1) + ")";
      case 2: return "(" + a + " xor " + e_vec(d - 1) + ")";
      case 3: return "(not " + a + ")";
      case 4: return "(" + a + " + " + e_int(1) + ")";
      case 5: return "(" + a + " - " + e_int(1) + ")";
      default: {
        // Concatenation keeps the design-wide width: 1 bit & (w-1) bits.
        std::string tail = "\"";
        for (int i = 0; i < w_ - 1; ++i) tail += chance(50) ? '1' : '0';
        tail += "\"";
        return "(" + e_bit(1, false) + " & " + tail + ")";
      }
    }
  }

  std::string e_bool(int d) {
    if (d <= 0 || chance(35)) {
      const int c = irand(0, 3);
      if (c == 0 && !vbools_.empty()) return pick(vbools_);
      if (c == 1) return "(" + e_bit(1, true) + " = '1')";
      if (c == 2) return chance(50) ? "true" : "false";
      static const char* kRel[] = {"=", "/=", "<", "<=", ">", ">="};
      return "(" + e_int(1) + " " + kRel[irand(0, 5)] + " " + e_int(1) +
             ")";
    }
    switch (irand(0, 2)) {
      case 0: return "(" + e_bool(d - 1) + " and " + e_bool(d - 1) + ")";
      case 1: return "(" + e_bool(d - 1) + " or " + e_bool(d - 1) + ")";
      default: return "(not " + e_bool(d - 1) + ")";
    }
  }

  // ---- statements ----

  std::string delay() {
    if (!chance(30)) return "";
    return " after " + std::to_string(irand(1, 6)) + " ns";
  }

  void stmt(std::ostringstream& out, const std::string& ind, int d) {
    const int c = irand(0, 9);
    if (c == 0 && !vints_.empty()) {
      out << ind << pick(vints_) << " := (" << e_int(2) << ") mod 64;\n";
    } else if (c == 1 && !vbools_.empty()) {
      out << ind << pick(vbools_) << " := " << e_bool(2) << ";\n";
    } else if (c == 2 && !vbits_.empty()) {
      out << ind << pick(vbits_) << " := " << e_bit(2, false) << ";\n";
    } else if (c == 3 && !vvecs_.empty()) {
      out << ind << pick(vvecs_) << " := " << e_vec(2) << ";\n";
    } else if (c == 4 && d > 0) {
      out << ind << "if " << e_bool(2) << " then\n";
      stmts(out, ind + "  ", irand(1, 2), d - 1);
      if (chance(50)) {
        out << ind << "else\n";
        stmts(out, ind + "  ", irand(1, 2), d - 1);
      }
      out << ind << "end if;\n";
    } else if (c == 5 && !own_vecs_.empty()) {
      const std::string& v = pick(own_vecs_);
      if (chance(50)) {
        out << ind << "for li in 0 to " << irand(1, w_ - 1) << " loop\n";
        out << ind << "  " << v << "(li) <= " << e_bit(1, false) << ";\n";
        out << ind << "end loop;\n";
      } else {
        out << ind << v << "(" << irand(0, w_ - 1)
            << ") <= " << e_bit(2, false) << ";\n";
      }
    } else if (c == 6 && !vints_.empty() && d > 0) {
      const std::string& v = pick(vints_);
      out << ind << "case " << v << " is\n";
      out << ind << "  when 0 =>\n";
      stmts(out, ind + "    ", 1, 0);
      out << ind << "  when 1 =>\n";
      stmts(out, ind + "    ", 1, 0);
      out << ind << "  when others =>\n";
      stmts(out, ind + "    ", 1, 0);
      out << ind << "end case;\n";
    } else if (c == 7 && !vints_.empty()) {
      // Bounded: the variable is non-negative and strictly shrinks.
      const std::string& v = pick(vints_);
      out << ind << "while " << v << " > 1 loop\n";
      out << ind << "  " << v << " := " << v << " / 2;\n";
      out << ind << "end loop;\n";
    } else if (!own_xbits_.empty() && chance(30)) {
      out << ind << pick(own_xbits_) << " <= " << e_bit(2, true) << delay()
          << ";\n";
    } else if (!own_vecs_.empty() && chance(40)) {
      out << ind << pick(own_vecs_) << " <= " << e_vec(2) << delay()
          << ";\n";
    } else if (!own_bits_.empty()) {
      out << ind << pick(own_bits_) << " <= " << e_bit(2, false) << delay()
          << ";\n";
    } else if (!own_vecs_.empty()) {
      out << ind << pick(own_vecs_) << " <= " << e_vec(2) << delay()
          << ";\n";
    } else if (!own_xbits_.empty()) {
      out << ind << pick(own_xbits_) << " <= " << e_bit(2, true) << delay()
          << ";\n";
    }
  }

  void stmts(std::ostringstream& out, const std::string& ind, int n,
             int d) {
    for (int i = 0; i < n; ++i) stmt(out, ind, d);
  }

  void emit_vars(std::ostringstream& out) {
    vints_.clear();
    vbools_.clear();
    vbits_.clear();
    vvecs_.clear();
    const int nv = irand(1, 3);
    for (int i = 0; i < nv; ++i) {
      const std::string name = "va" + std::to_string(i);
      switch (irand(0, 3)) {
        case 0:
          out << "    variable " << name
              << " : integer := " << irand(0, 9) << ";\n";
          vints_.push_back(name);
          break;
        case 1:
          out << "    variable " << name << " : boolean := "
              << (chance(50) ? "true" : "false") << ";\n";
          vbools_.push_back(name);
          break;
        case 2:
          out << "    variable " << name
              << " : std_logic := " << bit_lit(false) << ";\n";
          vbits_.push_back(name);
          break;
        default:
          out << "    variable " << name << " : std_logic_vector("
              << (w_ - 1) << " downto 0) := " << vec_lit() << ";\n";
          vvecs_.push_back(name);
          break;
      }
    }
  }

  void emit_stim(std::ostringstream& out) {
    out << "  stim: process begin\n";
    const int steps = irand(4, 8);
    for (int i = 0; i < steps; ++i) {
      out << "    wait for " << irand(3, 13) << " ns;\n";
      if (chance(70)) out << "    st0 <= " << bit_lit(false) << ";\n";
      if (chance(50)) out << "    st1 <= " << bit_lit(false) << ";\n";
      if (chance(50)) out << "    sv0 <= " << vec_lit() << ";\n";
      if (chance(60)) out << "    sx0 <= " << bit_lit(true) << ";\n";
    }
    out << "    wait;\n";
    out << "  end process;\n";
  }

  void emit_process(std::ostringstream& out, int idx, int kind,
                    const std::vector<int>& outs) {
    compute_readable(idx, kind, outs);
    const std::string name = "p" + std::to_string(idx);
    if (kind == 0) {
      out << "  " << name << ": process (clk)\n";
      emit_vars(out);
      out << "  begin\n";
      if (chance(70))
        out << "    if rising_edge(clk) then\n";
      else
        out << "    if (clk'event and clk = '1') then\n";
      stmts(out, "      ", irand(2, 4), 2);
      out << "    end if;\n";
      out << "  end process;\n";
    } else if (kind == 1) {
      out << "  " << name << ": process (";
      for (std::size_t i = 0; i < sens_.size(); ++i)
        out << (i ? ", " : "") << sens_[i];
      out << ")\n";
      emit_vars(out);
      out << "  begin\n";
      stmts(out, "    ", irand(1, 3), 2);
      out << "  end process;\n";
    } else {
      out << "  " << name << ": process\n";
      emit_vars(out);
      out << "  begin\n";
      stmts(out, "    ", irand(1, 3), 2);
      out << "    wait for " << irand(2, 9) << " ns;\n";
      stmts(out, "    ", irand(1, 2), 1);
      if (chance(40) && !r_bits_.empty()) {
        out << "    wait on " << pick(r_bits_) << " until " << e_bool(2)
            << " for " << irand(3, 11) << " ns;\n";
      }
      stmts(out, "    ", irand(0, 2), 1);
      out << "    wait for " << irand(2, 9) << " ns;\n";
      out << "  end process;\n";
    }
  }

  std::mt19937_64 rng_;
  int w_ = 4;
  std::vector<Sig> sigs_;
  std::vector<int> proc_kinds_;
  std::vector<std::string> r_bits_, r_vecs_, r_xbits_, sens_;
  std::vector<std::string> own_bits_, own_vecs_, own_xbits_;
  std::vector<std::string> vints_, vbools_, vbits_, vvecs_;
};

// ---------------------------------------------------------- smoke tests

const char kCounterSrc[] = R"(
  entity t is end t;
  architecture a of t is
    signal clk : std_logic := '0';
    signal cnt : std_logic_vector(3 downto 0) := "0000";
  begin
    clkgen: process begin
      clk <= '1'; wait for 5 ns;
      clk <= '0'; wait for 5 ns;
    end process;
    counter: process (clk) begin
      if rising_edge(clk) then
        cnt <= cnt + 1;
      end if;
    end process;
  end a;
)";

// The ci.sh codegen smoke gate: the counter example runs under both
// backends and commits identical traces, and outside sanitizer builds the
// native path really compiled (no silent fallback-to-interp "pass").
TEST(CodegenSmoke, CounterNativeMatchesInterp) {
  Built interp = build_vhdl(kCounterSrc, "t", {"t/cnt"}, Backend::kInterp);
  run_seq(interp, 120);

  const CodegenStats before = codegen_stats();
  Built native = build_vhdl(kCounterSrc, "t", {"t/cnt"}, Backend::kNative);
  const CodegenStats after = codegen_stats();
  run_seq(native, 120);

  EXPECT_EQ(vhdl::TraceRecorder::diff(*interp.recorder, *native.recorder),
            "");
  if (sanitize_build()) {
    EXPECT_GT(after.interp_fallbacks, before.interp_fallbacks);
    EXPECT_EQ(after.native_bodies, before.native_bodies);
  } else {
    EXPECT_GT(after.native_bodies, before.native_bodies);
  }
}

// Re-elaborating the same source must not recompile: the second build is
// served from the in-memory/disk cache (this is also what makes restarting
// a crashed rank with a warm cache cheap).
TEST(CodegenSmoke, WarmCacheReelaborationHitsCache) {
  if (sanitize_build())
    GTEST_SKIP() << "native backend disabled under sanitizers";
  Built first = build_vhdl(kCounterSrc, "t", {"t/cnt"}, Backend::kNative);
  const CodegenStats mid = codegen_stats();
  Built second = build_vhdl(kCounterSrc, "t", {"t/cnt"}, Backend::kNative);
  const CodegenStats after = codegen_stats();
  EXPECT_GT(after.cache_hits, mid.cache_hits);
  EXPECT_EQ(after.compiles, mid.compiles);  // nothing recompiled
  run_seq(first, 60);
  run_seq(second, 60);
  EXPECT_EQ(vhdl::TraceRecorder::diff(*first.recorder, *second.recorder),
            "");
}

// ------------------------------------------- differential fuzz sweeps

TEST(CodegenDiff, SeqBackendsBitIdenticalOverSeedMatrix) {
  const std::uint64_t seeds = stress_seeds();
  testutil::Watchdog wd("CodegenDiff.SeqBackendsBitIdentical",
                        std::chrono::seconds(120 + 8 * seeds));
  const PhysTime until = 300;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const FuzzDesign d = FuzzGen(seed).build();
    Built interp = build_vhdl(d.src, "fz", d.probes, Backend::kInterp);
    run_seq(interp, until);
    Built native = build_vhdl(d.src, "fz", d.probes, Backend::kNative);
    run_seq(native, until);
    ASSERT_EQ(
        vhdl::TraceRecorder::diff(*interp.recorder, *native.recorder), "")
        << "seed " << seed << "\n--- generated source ---\n"
        << d.src;
  }
}

// Native bodies under the optimistic machine engine: rollbacks must
// restore suspended compiled bodies (pc + variables mid-wait) exactly, so
// the committed trace still equals the interpreted sequential oracle's.
TEST(CodegenDiff, OptimisticTimeWarpNativeMatchesInterpOracle) {
  const std::uint64_t seeds = std::min<std::uint64_t>(stress_seeds(), 24);
  testutil::Watchdog wd("CodegenDiff.OptimisticTimeWarpNative",
                        std::chrono::seconds(120 + 10 * seeds));
  const PhysTime until = 300;
  const Configuration configs[] = {Configuration::kAllOptimistic,
                                   Configuration::kMixed,
                                   Configuration::kDynamic};
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const FuzzDesign d = FuzzGen(seed).build();
    Built ref = build_vhdl(d.src, "fz", d.probes, Backend::kInterp);
    run_seq(ref, until);

    Built par = build_vhdl(d.src, "fz", d.probes, Backend::kNative);
    RunConfig rc;
    rc.num_workers = 2 + static_cast<std::uint32_t>(seed % 4);
    rc.configuration = configs[seed % 3];
    rc.gvt_interval = 16 + (seed % 3) * 24;
    rc.max_history = (seed % 2) ? 32 : 0;
    rc.until = until;
    pdes::MachineEngine eng(
        *par.graph,
        partition::round_robin(par.graph->size(), rc.num_workers), rc);
    eng.set_commit_hook(par.recorder->hook());
    const auto st = eng.run();
    ASSERT_FALSE(st.deadlocked) << "seed " << seed;
    ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << seed << " workers " << rc.num_workers << " cfg "
        << to_string(rc.configuration) << "\n--- generated source ---\n"
        << d.src;
  }
}

TEST(CodegenDiff, ThreadedNativeMatchesInterpOracle) {
  const std::uint64_t seeds = std::min<std::uint64_t>(stress_seeds(), 16);
  testutil::Watchdog wd("CodegenDiff.ThreadedNative",
                        std::chrono::seconds(120 + 10 * seeds));
  const PhysTime until = 250;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const FuzzDesign d = FuzzGen(seed).build();
    Built ref = build_vhdl(d.src, "fz", d.probes, Backend::kInterp);
    run_seq(ref, until);

    Built par = build_vhdl(d.src, "fz", d.probes, Backend::kNative);
    RunConfig rc;
    rc.num_workers = 2 + static_cast<std::uint32_t>(seed % 3);
    rc.configuration = Configuration::kDynamic;
    rc.until = until;
    pdes::ThreadedEngine eng(
        *par.graph,
        partition::round_robin(par.graph->size(), rc.num_workers), rc);
    eng.set_commit_hook(par.recorder->hook());
    const auto st = eng.run();
    ASSERT_FALSE(st.deadlocked) << "seed " << seed;
    ASSERT_EQ(vhdl::TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << seed << "\n--- generated source ---\n"
        << d.src;
  }
}

// ------------------------------------------------- checkpoint codec

// Byte-level snapshot round-trip on suspended bodies mid-run, for both
// backends: encode -> decode (a fresh state on a cloned body) -> re-encode
// must reproduce the identical bytes, and a truncated buffer must be
// rejected instead of half-applied.
TEST(CodegenDiff, SnapshotCodecRoundTripsMidRun) {
  for (const Backend be : {Backend::kInterp, Backend::kNative}) {
    const FuzzDesign d = FuzzGen(3).build();
    Built b = build_vhdl(d.src, "fz", d.probes, be);
    run_seq(b, 130);  // leaves every process suspended mid-wait
    std::size_t checked = 0;
    for (std::size_t p = 0; p < b.design->num_processes(); ++p) {
      auto& lp = b.design->process(static_cast<vhdl::ProcessId>(p));
      const auto state = lp.save_state();
      std::vector<std::uint8_t> bytes;
      bytes::Writer w(bytes);
      ASSERT_TRUE(lp.encode_state(*state, w)) << lp.name();
      ASSERT_FALSE(bytes.empty());

      bytes::Reader r(bytes);
      const auto decoded = lp.decode_state(r);
      ASSERT_NE(decoded, nullptr) << lp.name();

      std::vector<std::uint8_t> again;
      bytes::Writer w2(again);
      ASSERT_TRUE(lp.encode_state(*decoded, w2)) << lp.name();
      EXPECT_EQ(bytes, again) << lp.name();

      bytes::Reader trunc(bytes.data(), bytes.size() / 2);
      EXPECT_EQ(lp.decode_state(trunc), nullptr) << lp.name();
      ++checked;
    }
    EXPECT_GT(checked, 2u);
  }
}

// --------------------------------------------- runtime error parity

// Runs `src` sequentially and returns the diagnostic it dies with ("" if
// it finishes cleanly).
std::string run_error(const std::string& src, Backend be) {
  try {
    Built b = build_vhdl(src, "t", {}, be);
    run_seq(b, 60);
  } catch (const ElabError& e) {
    return e.what();
  }
  return "";
}

// The native backend must reproduce the interpreter's runtime diagnostics
// word for word -- error paths are part of the reference semantics.
TEST(CodegenDiff, RuntimeErrorsMatchInterpWordForWord) {
  const struct {
    const char* label;
    const char* src;
    const char* expect_substr;
  } cases[] = {
      {"assignment width mismatch",
       R"(
         entity t is end t;
         architecture a of t is
           signal sv : std_logic_vector(3 downto 0) := "0000";
         begin
           p: process begin
             wait for 5 ns;
             sv <= "01";
             wait;
           end process;
         end a;
       )",
       "width mismatch"},
      {"index out of range in assignment",
       R"(
         entity t is end t;
         architecture a of t is
           signal sv : std_logic_vector(3 downto 0) := "0000";
         begin
           p: process
             variable vi : integer := 2;
           begin
             wait for 5 ns;
             vi := vi * 5;
             sv(vi) <= '1';
             wait;
           end process;
         end a;
       )",
       "index out of range"},
      {"non-01 vector used as integer",
       R"(
         entity t is end t;
         architecture a of t is
           signal su : std_logic_vector(3 downto 0) := "UU00";
           signal sv : std_logic_vector(3 downto 0) := "0000";
         begin
           p: process begin
             wait for 5 ns;
             sv <= su + 1;
             wait;
           end process;
         end a;
       )",
       "non-01"},
      {"instruction budget",
       R"(
         entity t is end t;
         architecture a of t is
           signal sv : std_logic := '0';
         begin
           p: process
             variable n : integer := 0;
           begin
             while n >= 0 loop
               n := (n + 1) mod 1000;
             end loop;
             sv <= '1';
             wait;
           end process;
         end a;
       )",
       "instruction budget"},
  };
  for (const auto& tc : cases) {
    const std::string interp = run_error(tc.src, Backend::kInterp);
    const std::string native = run_error(tc.src, Backend::kNative);
    ASSERT_NE(interp, "") << tc.label;
    EXPECT_NE(interp.find(tc.expect_substr), std::string::npos)
        << tc.label << ": " << interp;
    EXPECT_EQ(interp, native) << tc.label;
  }
}

}  // namespace
}  // namespace vsim::fe
