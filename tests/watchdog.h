// RAII wall-clock watchdog for tests whose failure mode is a hang (chaos
// runs, recovery loops, drain-until-quiet under adversarial fault plans).
// gtest has no per-test timeout, and a hung test stalls the whole ctest
// run; the watchdog turns "never terminates" into a loud, attributable
// abort with the offending test's name in the diagnostic.
//
// Usage:
//   TEST(Suite, Case) {
//     vsim::testutil::Watchdog wd("Suite.Case", std::chrono::seconds(60));
//     ... code that must terminate ...
//   }  // disarmed on scope exit
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace vsim::testutil {

class Watchdog {
 public:
  Watchdog(const char* label, std::chrono::seconds limit)
      : label_(label), limit_(limit), thread_([this] { run(); }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(m_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(m_);
    if (cv_.wait_for(lock, limit_, [this] { return disarmed_; })) return;
    std::fprintf(stderr,
                 "[watchdog] '%s' still running after %lld s wall-clock; "
                 "aborting the test binary\n",
                 label_, static_cast<long long>(limit_.count()));
    std::fflush(stderr);
    std::abort();
  }

  const char* label_;
  std::chrono::seconds limit_;
  bool disarmed_ = false;
  std::mutex m_;
  std::condition_variable cv_;
  std::thread thread_;  // last member: starts running at construction
};

}  // namespace vsim::testutil
