// RAII wall-clock watchdog for tests whose failure mode is a hang (chaos
// runs, recovery loops, drain-until-quiet under adversarial fault plans).
// gtest has no per-test timeout, and a hung test stalls the whole ctest
// run; the watchdog turns "never terminates" into a loud, attributable
// abort with the offending test's name in the diagnostic.
//
// Usage:
//   TEST(Suite, Case) {
//     vsim::testutil::Watchdog wd("Suite.Case", std::chrono::seconds(60));
//     ... code that must terminate ...
//   }  // disarmed on scope exit
//
// An optional dump callback runs just before the abort, so a hang leaves a
// progress post-mortem (last GVT, per-worker event counters, transport
// counters) instead of a bare timeout message:
//   Watchdog wd("Suite.Case", 60s, [&](std::FILE* f) { eng.debug_dump(f); });
// The callback runs on the watchdog thread while the engine is still live --
// dump only state written with atomics or state whose races are harmless.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace vsim::testutil {

class Watchdog {
 public:
  using DumpFn = std::function<void(std::FILE*)>;

  Watchdog(const char* label, std::chrono::seconds limit, DumpFn dump = {})
      : label_(label), limit_(limit), dump_(std::move(dump)),
        thread_([this] { run(); }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(m_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(m_);
    if (cv_.wait_for(lock, limit_, [this] { return disarmed_; })) return;
    std::fprintf(stderr,
                 "[watchdog] '%s' still running after %lld s wall-clock; "
                 "aborting the test binary\n",
                 label_, static_cast<long long>(limit_.count()));
    if (dump_) {
      std::fprintf(stderr, "[watchdog] progress at expiry:\n");
      dump_(stderr);
    }
    std::fflush(stderr);
    std::abort();
  }

  const char* label_;
  std::chrono::seconds limit_;
  DumpFn dump_;
  bool disarmed_ = false;
  std::mutex m_;
  std::condition_variable cv_;
  std::thread thread_;  // last member: starts running at construction
};

}  // namespace vsim::testutil
