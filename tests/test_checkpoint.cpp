// Crash-stop worker failures with GVT-consistent checkpointing and
// deterministic recovery.
//
// The acceptance bar: a run that crashes (once, repeatedly, mid-rollback
// cascade, or with retransmissions in flight) and recovers must commit a
// trace bit-identical to the sequential oracle -- under every protocol
// configuration.  Recovery that cannot succeed (budget exhausted, no
// survivors) must surface a structured RecoveryError and never hang.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "circuits/builder.h"
#include "circuits/fsm.h"
#include "circuits/random_circuit.h"
#include "partition/partition.h"
#include "pdes/checkpoint.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

namespace vsim {
namespace {

using circuits::CircuitBuilder;
using circuits::FsmParams;
using circuits::GateKind;
using circuits::RandomCircuitParams;
using pdes::Checkpoint;
using pdes::CheckpointStore;
using pdes::Configuration;
using pdes::FaultPlan;
using pdes::MachineEngine;
using pdes::RecoveryPolicy;
using pdes::RunConfig;
using pdes::RunStats;
using pdes::SequentialEngine;
using pdes::ThreadedEngine;
using pdes::WorkerCrash;
using vhdl::SignalId;
using vhdl::TraceRecorder;

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

// Same clocked-feedback netlist as the chaos suite: enough cross-LP
// traffic that a crash always loses in-flight work.
Built build_gates() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  CircuitBuilder cb(*b.design, /*gate_delay=*/2);
  const SignalId clk = cb.wire("clk");
  const SignalId a = cb.wire("a");
  const SignalId bi = cb.wire("b");
  cb.clock(clk, 25);
  cb.random_bits(a, 17, 7, 900, "rnd_a");
  cb.random_bits(bi, 11, 99, 900, "rnd_b");
  const SignalId x1 = cb.wire("x1");
  cb.gate(GateKind::kXor, {a, bi}, x1);
  const SignalId q = cb.wire("q");
  const SignalId d = cb.wire("d");
  cb.gate(GateKind::kXor, {x1, q}, d);
  const SignalId n1 = cb.wire("n1");
  cb.gate(GateKind::kNand, {a, q}, n1);
  const SignalId o1 = cb.wire("o1");
  cb.gate(GateKind::kOr, {n1, bi}, o1);
  cb.dff(clk, d, q);
  b.recorder = std::make_unique<TraceRecorder>(
      *b.design, std::vector<SignalId>{x1, q, o1});
  b.design->finalize();
  return b;
}

Built build_fsm() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  FsmParams p;
  p.lanes = 2;
  p.width = 3;
  p.input_stop = 400;
  const auto c = circuits::build_fsm(*b.design, p);
  std::vector<SignalId> probes = c.state;
  probes.push_back(c.parity);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

// Zero-delay-heavy random circuit: rollback cascades under optimistic LPs.
Built build_random() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  RandomCircuitParams p;
  p.seed = 12345;
  p.num_gates = 24;
  p.num_dffs = 5;
  p.zero_delay_pct = 40;
  const auto c = circuits::build_random_circuit(*b.design, p);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, c.observable);
  b.design->finalize();
  return b;
}

using BuildFn = Built (*)();

Built run_oracle(BuildFn build, PhysTime until) {
  Built ref = build();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(until);
  return ref;
}

RunConfig base_config(Configuration config, PhysTime until) {
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = config;
  rc.until = until;
  rc.gvt_interval = 24;
  rc.checkpoint.period = 2;
  return rc;
}

struct CkptParam {
  const char* name;
  Configuration config;
};

std::string param_name(const testing::TestParamInfo<CkptParam>& info) {
  return info.param.name;
}

class CheckpointRecovery : public testing::TestWithParam<CkptParam> {};

// Single seeded crash, every protocol configuration: the recovered run's
// committed trace must be bit-identical to the sequential oracle's.
TEST_P(CheckpointRecovery, SingleCrashMatchesOracle) {
  testutil::Watchdog wd("CheckpointRecovery.SingleCrashMatchesOracle",
                        std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  Built par = build_fsm();
  RunConfig rc = base_config(GetParam().config, until);
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 60});
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  ASSERT_FALSE(st.config_error) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_EQ(st.checkpoint.recoveries, 1u);
  EXPECT_GT(st.checkpoint.checkpoints, 1u);  // initial + periodic
  EXPECT_GT(st.checkpoint.lps_restored, 0u);
  EXPECT_GT(st.checkpoint.overhead_cost, 0.0);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
      << GetParam().name;
}

// Repeated crashes, including the same worker dying twice (kRestart
// revives it in place on the machine engine).
TEST_P(CheckpointRecovery, RepeatedCrashesMatchOracle) {
  testutil::Watchdog wd("CheckpointRecovery.RepeatedCrashesMatchOracle",
                        std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  Built par = build_fsm();
  RunConfig rc = base_config(GetParam().config, until);
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 40});
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 90});
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 150});
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_GE(st.checkpoint.crashes, 2u);
  EXPECT_GE(st.checkpoint.recoveries, 2u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckpointRecovery,
    testing::Values(CkptParam{"optimistic", Configuration::kAllOptimistic},
                    CkptParam{"conservative", Configuration::kAllConservative},
                    CkptParam{"mixed", Configuration::kMixed},
                    CkptParam{"dynamic", Configuration::kDynamic}),
    param_name);

// A crash while optimistic LPs are mid-cascade: the zero-delay-heavy
// random circuit rolls back constantly, so the kill lands on a worker with
// speculative state and unsent anti-messages.
TEST(CheckpointRecoveryModes, CrashDuringRollbackCascade) {
  testutil::Watchdog wd("CheckpointRecoveryModes.CrashDuringRollbackCascade",
                        std::chrono::seconds(120));
  const PhysTime until = 300;
  Built ref = run_oracle(&build_random, until);

  Built par = build_random();
  RunConfig rc = base_config(Configuration::kAllOptimistic, until);
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 120});
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GT(st.total_rollbacks(), 0u);  // the cascade actually happened
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// A crash while the reliable channel still has unacked data in flight on a
// lossy wire: recovery must discard the half-delivered timeline and the
// replay must regenerate it exactly.
TEST(CheckpointRecoveryModes, CrashWithInFlightRetransmissions) {
  testutil::Watchdog wd(
      "CheckpointRecoveryModes.CrashWithInFlightRetransmissions",
      std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  Built par = build_fsm();
  RunConfig rc = base_config(Configuration::kDynamic, until);
  FaultPlan& fp = rc.transport.faults;
  fp.seed = 5;
  fp.drop = 0.15;
  fp.duplicate = 0.08;
  fp.reorder = 0.30;
  fp.jitter = 1.5;
  rc.transport.reliable = true;
  fp.crashes.push_back(WorkerCrash{3, 70});
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  EXPECT_FALSE(st.transport_error) << st.transport_error->str();
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GT(st.transport.dropped, 0u);
  EXPECT_GT(st.transport.retransmits, 0u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Redistribution: the dead worker (including worker 0, the GVT
// coordinator) is retired and its LPs are spread over the survivors.
TEST(CheckpointRecoveryModes, RedistributeSurvivesCoordinatorDeath) {
  testutil::Watchdog wd(
      "CheckpointRecoveryModes.RedistributeSurvivesCoordinatorDeath",
      std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  Built par = build_fsm();
  RunConfig rc = base_config(Configuration::kDynamic, until);
  rc.checkpoint.policy = RecoveryPolicy::kRedistribute;
  rc.transport.faults.crashes.push_back(WorkerCrash{0, 50});
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 110});
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 2u);
  EXPECT_EQ(st.checkpoint.recoveries, 2u);
  // Retired workers stay frozen: all post-recovery work lands on survivors.
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// ---- dynamic load balancing under failures --------------------------------

// A crash landing between migration rounds: the post-restore replay re-runs
// the rebalancer deterministically, so recovery and migration compose.  The
// aggressive cadence (period 1, near-zero trigger) guarantees migration
// rounds actually bracket the crash.
TEST(CheckpointMigration, CrashAroundMigrationRoundsMatchesOracle) {
  testutil::Watchdog wd(
      "CheckpointMigration.CrashAroundMigrationRoundsMatchesOracle",
      std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  for (const std::uint64_t crash_at : {40u, 100u, 180u}) {
    Built par = build_fsm();
    RunConfig rc = base_config(Configuration::kDynamic, until);
    rc.rebalance.period = 1;
    rc.rebalance.imbalance_trigger = 0.05;
    rc.rebalance.max_moves = 3;
    rc.transport.faults.crashes.push_back(WorkerCrash{1, crash_at});
    MachineEngine eng(
        *par.graph, partition::blocks(par.graph->size(), rc.num_workers),
        rc);
    eng.set_commit_hook(par.recorder->hook());
    const RunStats st = eng.run();

    EXPECT_FALSE(st.deadlocked) << "crash at " << crash_at;
    EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
    EXPECT_EQ(st.checkpoint.crashes, 1u);
    EXPECT_GT(st.metrics.counter(obs::Metric::kRebalanceRounds), 0u);
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "crash at " << crash_at;
  }
}

// kRedistribute + rebalancing share the orphan-placement machinery: after
// the dead worker is retired its LPs land on survivors (load- and
// cut-aware), rebalance rounds keep running over the shrunken worker set,
// and no LP is ever mapped back to the retired worker.
TEST(CheckpointMigration, RedistributeComposesWithRebalancing) {
  testutil::Watchdog wd(
      "CheckpointMigration.RedistributeComposesWithRebalancing",
      std::chrono::seconds(120));
  const PhysTime until = 250;
  Built ref = run_oracle(&build_fsm, until);

  Built par = build_fsm();
  RunConfig rc = base_config(Configuration::kDynamic, until);
  rc.checkpoint.policy = RecoveryPolicy::kRedistribute;
  rc.rebalance.period = 2;
  rc.rebalance.imbalance_trigger = 0.05;
  rc.transport.faults.crashes.push_back(WorkerCrash{2, 70});
  MachineEngine eng(*par.graph,
                    partition::blocks(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_EQ(st.checkpoint.recoveries, 1u);
  for (const std::uint32_t w : eng.partition()) EXPECT_NE(w, 2u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// The threaded engine: real threads, crash-stop = thread exit.  Recovery
// redistributes over the surviving threads and the trace still matches.
TEST(CheckpointThreaded, CrashRecoversAndMatchesOracle) {
  testutil::Watchdog wd("CheckpointThreaded.CrashRecoversAndMatchesOracle",
                        std::chrono::seconds(180));
  const PhysTime until = 600;
  Built ref = run_oracle(&build_gates, until);

  Built par = build_gates();
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.checkpoint.period = 2;
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 30});
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), rc.num_workers),
                     rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  ASSERT_FALSE(st.config_error) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_EQ(st.checkpoint.recoveries, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Threaded engine with migration AND a crash in the same run: the
// coordinator's rebalance rounds and redistribute recovery use the same
// exclusive-section machinery, so they must compose without racing.
TEST(CheckpointThreaded, CrashWithRebalancingMatchesOracle) {
  testutil::Watchdog wd(
      "CheckpointThreaded.CrashWithRebalancingMatchesOracle",
      std::chrono::seconds(180));
  const PhysTime until = 600;
  Built ref = run_oracle(&build_gates, until);

  Built par = build_gates();
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = until;
  rc.checkpoint.period = 2;
  rc.rebalance.period = 2;
  rc.rebalance.imbalance_trigger = 0.05;
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 30});
  ThreadedEngine eng(*par.graph,
                     partition::blocks(par.graph->size(), rc.num_workers),
                     rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();

  ASSERT_FALSE(st.config_error) << st.config_error->str();
  EXPECT_FALSE(st.deadlocked);
  EXPECT_FALSE(st.recovery_error) << st.recovery_error->str();
  EXPECT_EQ(st.checkpoint.crashes, 1u);
  EXPECT_GT(st.metrics.counter(obs::Metric::kRebalanceRounds), 0u);
  for (const std::uint32_t w : eng.partition()) EXPECT_NE(w, 1u);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

// Checkpointing with no crash at all must be protocol-transparent: the
// rollback-all-deferred capture may not perturb the committed trace.
TEST(CheckpointTransparency, PeriodicCheckpointsDoNotPerturbTrace) {
  testutil::Watchdog wd("CheckpointTransparency.PeriodicCheckpointsDoNotPerturbTrace",
                        std::chrono::seconds(120));
  const PhysTime until = 300;
  Built ref = run_oracle(&build_random, until);

  for (const Configuration config :
       {Configuration::kAllOptimistic, Configuration::kDynamic}) {
    Built par = build_random();
    RunConfig rc = base_config(config, until);
    rc.checkpoint.period = 1;  // every single round
    MachineEngine eng(
        *par.graph, partition::round_robin(par.graph->size(), rc.num_workers),
        rc);
    eng.set_commit_hook(par.recorder->hook());
    const RunStats st = eng.run();

    EXPECT_FALSE(st.deadlocked) << to_string(config);
    EXPECT_EQ(st.checkpoint.crashes, 0u);
    EXPECT_EQ(st.checkpoint.recoveries, 0u);
    EXPECT_GT(st.checkpoint.checkpoints, 2u);
    EXPECT_GT(st.checkpoint.overhead_cost, 0.0);
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << to_string(config);
  }
}

// Budget exhaustion: a crash-looping cluster (every event kills) must stop
// after max_recoveries with a structured RecoveryError -- never hang.
TEST(CheckpointFailure, RecoveryBudgetExhaustionSurfacesError) {
  testutil::Watchdog wd(
      "CheckpointFailure.RecoveryBudgetExhaustionSurfacesError",
      std::chrono::seconds(120));
  Built par = build_fsm();
  RunConfig rc = base_config(Configuration::kDynamic, 250);
  rc.transport.faults.crash_rate = 1.0;  // every processed event is fatal
  rc.checkpoint.max_recoveries = 3;
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  const RunStats st = eng.run();  // must terminate

  ASSERT_TRUE(st.recovery_error.has_value());
  EXPECT_EQ(st.recovery_error->recoveries_used, rc.checkpoint.max_recoveries);
  EXPECT_NE(st.recovery_error->str().find("recovery error"),
            std::string::npos);
  EXPECT_NE(st.recovery_error->str().find("budget"), std::string::npos);
  EXPECT_GE(st.checkpoint.crashes, st.checkpoint.recoveries);
}

// Same contract on the threaded engine.
TEST(CheckpointFailure, ThreadedBudgetExhaustionSurfacesError) {
  testutil::Watchdog wd(
      "CheckpointFailure.ThreadedBudgetExhaustionSurfacesError",
      std::chrono::seconds(180));
  Built par = build_gates();
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kDynamic;
  rc.until = 600;
  rc.checkpoint.period = 2;
  rc.checkpoint.max_recoveries = 2;
  rc.transport.faults.crash_rate = 1.0;
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(), rc.num_workers),
                     rc);
  const RunStats st = eng.run();  // must terminate
  ASSERT_TRUE(st.recovery_error.has_value());
  EXPECT_FALSE(st.recovery_error->message.empty());
}

// Slow failure detection (large heartbeat budget) racing a tight retry cap
// on a reliable link into the dead worker: the retransmission budget runs
// out first and the run unwinds with a TransportError instead of hanging
// in the drain loop.
TEST(CheckpointFailure, SlowDetectionLosesToRetryCap) {
  testutil::Watchdog wd("CheckpointFailure.SlowDetectionLosesToRetryCap",
                        std::chrono::seconds(120));
  Built par = build_fsm();
  RunConfig rc = base_config(Configuration::kDynamic, 250);
  rc.transport.faults.crashes.push_back(WorkerCrash{1, 60});
  rc.transport.reliable = true;
  rc.transport.max_retries = 2;
  rc.transport.rto = 8.0;  // above healthy RTT: only a dead peer times out
  rc.checkpoint.heartbeat_rounds = 50;  // detection far too slow
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  const RunStats st = eng.run();  // must terminate
  ASSERT_TRUE(st.transport_error.has_value() || st.recovery_error.has_value());
  EXPECT_GT(st.checkpoint.crashes, 0u);
}

// Determinism: crash injection, recovery and checkpointing are pure
// functions of the seed -- two identical runs agree on every counter.
TEST(CheckpointDeterminism, SameSeedSameCountersAndTrace) {
  testutil::Watchdog wd("CheckpointDeterminism.SameSeedSameCountersAndTrace",
                        std::chrono::seconds(120));
  auto run_once = [](Built* out) {
    *out = build_fsm();
    RunConfig rc;
    rc.num_workers = 4;
    rc.configuration = Configuration::kDynamic;
    rc.until = 250;
    rc.gvt_interval = 24;
    rc.checkpoint.period = 2;
    rc.transport.faults.seed = 9;
    rc.transport.faults.crash_rate = 0.002;
    rc.checkpoint.max_recoveries = 64;
    MachineEngine eng(
        *out->graph,
        partition::round_robin(out->graph->size(), rc.num_workers), rc);
    eng.set_commit_hook(out->recorder->hook());
    return eng.run();
  };
  Built a_built;
  Built b_built;
  const RunStats a = run_once(&a_built);
  const RunStats b = run_once(&b_built);
  EXPECT_EQ(a.checkpoint.crashes, b.checkpoint.crashes);
  EXPECT_EQ(a.checkpoint.recoveries, b.checkpoint.recoveries);
  EXPECT_EQ(a.checkpoint.checkpoints, b.checkpoint.checkpoints);
  EXPECT_EQ(a.total_committed(), b.total_committed());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(TraceRecorder::diff(*a_built.recorder, *b_built.recorder), "");
}

// ---- CheckpointStore: codec + disk spill ----------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.round = 7;
  ck.gvt = VirtualTime{40, 2};
  ck.last_promise = {VirtualTime{10, 0}, VirtualTime{12, 3}};
  ck.links.push_back({5, 9});
  ck.links.push_back({1, 1});
  ck.fault_links.push_back({0xdeadbeefULL, 3});
  ck.lps.resize(2);
  ck.lps[0].mode = pdes::SyncMode::kOptimistic;
  ck.lps[0].committed_ts = VirtualTime{38, 0};
  ck.lps[0].send_seq = 17;
  pdes::Event ev;
  ev.ts = VirtualTime{41, 1};
  ev.src = 0;
  ev.dst = 1;
  ev.uid = 42;
  ev.kind = 2;
  ev.payload.port = 3;
  ev.payload.scalar = -7;
  ev.payload.bits = LogicVector{Logic::k1, Logic::k0, Logic::kZ};
  ck.lps[0].pending.push_back(ev);
  ck.lps[0].pending_negatives.push_back(99);
  ck.lps[0].lazy.emplace_back(41, ev);
  ck.lps[1].pinned_conservative = true;
  ck.lps[1].in_clocks.emplace_back(0, VirtualTime{39, 0});
  return ck;
}

TEST(CheckpointStoreTest, PortableCodecRoundTrips) {
  const Checkpoint ck = sample_checkpoint();
  const auto blob = CheckpointStore::encode_portable(ck);
  ASSERT_FALSE(blob.empty());

  Checkpoint back;
  ASSERT_TRUE(CheckpointStore::decode_portable(blob, &back));
  EXPECT_EQ(back.round, ck.round);
  EXPECT_EQ(back.gvt, ck.gvt);
  EXPECT_EQ(back.last_promise.size(), ck.last_promise.size());
  EXPECT_EQ(back.links.size(), ck.links.size());
  EXPECT_EQ(back.links[0].next_seq, 5u);
  EXPECT_EQ(back.links[0].expected, 9u);
  EXPECT_EQ(back.fault_links.size(), 1u);
  EXPECT_EQ(back.fault_links[0].rng, 0xdeadbeefULL);
  ASSERT_EQ(back.lps.size(), 2u);
  EXPECT_EQ(back.lps[0].mode, pdes::SyncMode::kOptimistic);
  EXPECT_EQ(back.lps[0].send_seq, 17u);
  ASSERT_EQ(back.lps[0].pending.size(), 1u);
  EXPECT_EQ(back.lps[0].pending[0].uid, 42u);
  EXPECT_EQ(back.lps[0].pending[0].payload.scalar, -7);
  ASSERT_EQ(back.lps[0].pending[0].payload.bits.size(), 3u);
  EXPECT_EQ(back.lps[0].pending[0].payload.bits.at(2), Logic::kZ);
  EXPECT_TRUE(back.lps[1].pinned_conservative);

  // The codec is canonical: re-encoding the decode yields the same bytes.
  EXPECT_EQ(CheckpointStore::encode_portable(back), blob);
}

TEST(CheckpointStoreTest, DecodeRejectsCorruption) {
  const auto blob = CheckpointStore::encode_portable(sample_checkpoint());
  Checkpoint out;

  auto bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(CheckpointStore::decode_portable(bad_magic, &out));

  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(CheckpointStore::decode_portable(truncated, &out));

  auto trailing = blob;
  trailing.push_back(0);
  EXPECT_FALSE(CheckpointStore::decode_portable(trailing, &out));

  EXPECT_FALSE(CheckpointStore::decode_portable({}, &out));
}

TEST(CheckpointStoreTest, RingEvictsAndSpillsToDisk) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("vsim_ckpt_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  {
    CheckpointStore store(/*keep=*/2, dir.string());
    for (std::uint64_t round = 1; round <= 3; ++round) {
      Checkpoint ck = sample_checkpoint();
      ck.round = round;
      store.put(std::move(ck));
    }
    EXPECT_EQ(store.size(), 2u);  // ring evicted round 1
    ASSERT_NE(store.latest(), nullptr);
    EXPECT_EQ(store.latest()->round, 3u);
    EXPECT_FALSE(store.io_error().has_value()) << *store.io_error();
    EXPECT_GT(store.disk_bytes(), 0u);
    EXPECT_TRUE(fs::exists(dir / "ckpt-3.bin"));

    // The spilled blob is genuine: it decodes back to the checkpoint.
    std::ifstream in(dir / "ckpt-3.bin", std::ios::binary);
    std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    Checkpoint back;
    EXPECT_TRUE(CheckpointStore::decode_portable(blob, &back));
    EXPECT_EQ(back.round, 3u);
  }
  fs::remove_all(dir);
}

TEST(CheckpointStoreTest, AtomicSpillLeavesNoTmpFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("vsim_ckpt_atomic_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    CheckpointStore store(/*keep=*/4, dir.string());
    for (std::uint64_t round = 1; round <= 4; ++round) {
      Checkpoint ck = sample_checkpoint();
      ck.round = round;
      store.put(std::move(ck));
    }
    EXPECT_FALSE(store.io_error().has_value()) << *store.io_error();
  }
  // Spills go through tmp + fsync + rename; a completed spill must leave
  // only final ckpt-<round>.bin names behind.
  std::size_t finals = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    if (name.rfind("ckpt-", 0) == 0) ++finals;
  }
  EXPECT_EQ(finals, 4u);
  fs::remove_all(dir);
}

TEST(CheckpointStoreTest, LoadNewestValidSkipsTornAndCorrupt) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("vsim_ckpt_scan_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    CheckpointStore store(/*keep=*/4, dir.string());
    for (std::uint64_t round = 1; round <= 3; ++round) {
      Checkpoint ck = sample_checkpoint();
      ck.round = round;
      store.put(std::move(ck));
    }
  }
  // Litter the directory the way crashes do: a torn write (truncated copy
  // of a valid snapshot), pure garbage, an empty file -- all with rounds
  // NEWER than any valid one -- plus an unrelated file the scan must skip.
  {
    std::ifstream in(dir / "ckpt-3.bin", std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream torn(dir / "ckpt-7.bin", std::ios::binary);
    torn.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
    std::ofstream junk(dir / "ckpt-9.bin", std::ios::binary);
    junk << "garbage, not a snapshot";
    std::ofstream empty(dir / "ckpt-11.bin", std::ios::binary);
    std::ofstream other(dir / "notes.txt");
    other << "unrelated";
  }
  std::uint64_t skipped = 0;
  const auto ck = CheckpointStore::load_newest_valid(dir.string(), &skipped);
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->round, 3u);  // newest VALID, not newest by filename
  EXPECT_EQ(skipped, 3u);

  // A directory with nothing valid yields nullopt, not a crash.
  fs::remove(dir / "ckpt-1.bin");
  fs::remove(dir / "ckpt-2.bin");
  fs::remove(dir / "ckpt-3.bin");
  std::uint64_t skipped2 = 0;
  EXPECT_FALSE(
      CheckpointStore::load_newest_valid(dir.string(), &skipped2).has_value());
  EXPECT_EQ(skipped2, 3u);
  fs::remove_all(dir);
}

TEST(CheckpointStoreTest, DropAboveRemovesRingAndFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("vsim_ckpt_drop_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  CheckpointStore store(/*keep=*/4, dir.string());
  for (std::uint64_t round = 1; round <= 4; ++round) {
    Checkpoint ck = sample_checkpoint();
    ck.round = round;
    store.put(std::move(ck));
  }
  store.drop_above(2);
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.latest(), nullptr);
  EXPECT_EQ(store.latest()->round, 2u);
  EXPECT_TRUE(fs::exists(dir / "ckpt-2.bin"));
  EXPECT_FALSE(fs::exists(dir / "ckpt-3.bin"));
  EXPECT_FALSE(fs::exists(dir / "ckpt-4.bin"));
  // The rewound timeline keeps spilling from the cut point.
  Checkpoint ck = sample_checkpoint();
  ck.round = 3;
  store.put(std::move(ck));
  EXPECT_EQ(store.latest()->round, 3u);
  EXPECT_TRUE(fs::exists(dir / "ckpt-3.bin"));
  fs::remove_all(dir);
}

// ---- Configuration validation (construction-time, structured) -------------

TEST(ConfigValidation, RejectsOutOfRangeFaultPlan) {
  FaultPlan fp;
  fp.drop = -0.1;
  auto err = validate(fp, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "faults.drop");

  fp = FaultPlan{};
  fp.crash_rate = 1.5;
  err = validate(fp, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "faults.crash_rate");
  EXPECT_NE(err->str().find("invalid configuration"), std::string::npos);

  fp = FaultPlan{};
  fp.blackout = 0.1;
  fp.blackout_span = 0;
  err = validate(fp, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "faults.blackout_span");

  fp = FaultPlan{};
  fp.crashes.push_back(WorkerCrash{7, 10});  // only 4 workers exist
  err = validate(fp, 4);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "faults.crashes");
}

TEST(ConfigValidation, RejectsBrokenReliableTransport) {
  pdes::TransportConfig tc;
  tc.reliable = true;
  tc.max_retries = 0;
  auto err = validate(tc, 2);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "transport.max_retries");

  tc = pdes::TransportConfig{};
  tc.reliable = true;
  tc.rto = 0.0;
  err = validate(tc, 2);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "transport.rto");

  // An unreliable transport tolerates the same values: they are unused.
  tc.reliable = false;
  EXPECT_FALSE(validate(tc, 2).has_value());
}

TEST(ConfigValidation, RejectsBrokenCheckpointConfig) {
  RunConfig rc;
  rc.checkpoint.heartbeat_rounds = 0;
  auto err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "checkpoint.heartbeat_rounds");

  rc = RunConfig{};
  rc.checkpoint.keep = 0;
  err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "checkpoint.keep");

  rc = RunConfig{};
  rc.transport.faults.crash_rate = 0.5;
  rc.checkpoint.max_recoveries = 0;
  err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "checkpoint.max_recoveries");
}

TEST(ConfigValidation, RejectsBrokenRebalanceConfig) {
  RunConfig rc;
  rc.rebalance.period = 4;
  rc.rebalance.max_moves = 0;
  auto err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "rebalance.max_moves");

  rc = RunConfig{};
  rc.rebalance.period = 4;
  rc.rebalance.imbalance_trigger = -0.5;
  err = validate(rc);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "rebalance.imbalance_trigger");

  // Disabled rebalancing tolerates the same values: they are unused.
  rc.rebalance.period = 0;
  EXPECT_FALSE(validate(rc).has_value());
}

// Both engines refuse to run an invalid configuration and surface the
// structured error instead of asserting or crashing mid-flight.
TEST(ConfigValidation, EnginesSurfaceConfigErrorWithoutRunning) {
  Built m = build_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.transport.faults.drop = 2.0;  // nonsense probability
  MachineEngine eng(*m.graph,
                    partition::round_robin(m.graph->size(), rc.num_workers),
                    rc);
  const RunStats st = eng.run();
  ASSERT_TRUE(st.config_error.has_value());
  EXPECT_EQ(st.config_error->field, "faults.drop");
  EXPECT_EQ(st.total_events(), 0u);  // never started

  Built t = build_fsm();
  ThreadedEngine teng(*t.graph,
                      partition::round_robin(t.graph->size(), rc.num_workers),
                      rc);
  const RunStats tst = teng.run();
  ASSERT_TRUE(tst.config_error.has_value());
  EXPECT_EQ(tst.config_error->field, "faults.drop");
}

}  // namespace
}  // namespace vsim
