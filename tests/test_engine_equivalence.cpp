// The paper's correctness claim: every synchronisation configuration
// (optimistic, conservative, mixed, dynamic), any worker count and any
// partitioning must produce the exact committed signal traces of the
// sequential reference simulator.  This is the end-to-end test of the
// distributed VHDL cycle + tie-breaking + Time Warp machinery.
#include <gtest/gtest.h>

#include "circuits/dct.h"
#include "circuits/fsm.h"
#include "circuits/iir.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"

namespace vsim {
namespace {

using circuits::DctParams;
using circuits::FsmParams;
using circuits::IirParams;
using pdes::Configuration;
using pdes::LpGraph;
using pdes::MachineEngine;
using pdes::OrderingMode;
using pdes::RunConfig;
using pdes::RunStats;
using pdes::SequentialEngine;
using pdes::ThreadedEngine;
using vhdl::Design;
using vhdl::SignalId;
using vhdl::TraceRecorder;

// A test circuit factory: builds the circuit and the list of probed nets.
struct Built {
  std::unique_ptr<LpGraph> graph;
  std::unique_ptr<Design> design;
  std::unique_ptr<TraceRecorder> recorder;
};

using BuildFn = Built (*)();

Built build_small_fsm() {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<Design>(*b.graph);
  FsmParams p;
  p.lanes = 2;
  p.width = 4;
  p.input_stop = 400;
  const auto c = circuits::build_fsm(*b.design, p);
  std::vector<SignalId> probes = c.state;
  probes.push_back(c.parity);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

Built build_small_iir() {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<Design>(*b.graph);
  IirParams p;
  p.width = 4;
  p.sections = 2;
  p.clock_half = 60;
  p.input_stop = 2000;
  const auto c = circuits::build_iir(*b.design, p);
  std::vector<SignalId> probes = c.output;
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

Built build_small_dct() {
  Built b;
  b.graph = std::make_unique<LpGraph>();
  b.design = std::make_unique<Design>(*b.graph);
  DctParams p;
  p.n = 2;
  p.width = 4;
  p.clock_half = 50;
  p.input_stop = 1500;
  const auto c = circuits::build_dct(*b.design, p);
  std::vector<SignalId> probes;
  for (const auto& row : c.acc)
    probes.insert(probes.end(), row.begin(), row.end());
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

struct Case {
  const char* circuit;
  BuildFn build;
  PhysTime until;
};

const Case kCases[] = {
    {"fsm", &build_small_fsm, 300},
    {"iir", &build_small_iir, 1500},
    {"dct", &build_small_dct, 1200},
};

struct EngineParam {
  const char* name;
  Configuration config;
  OrderingMode ordering;
  std::size_t workers;
  bool threaded;
};

std::string param_name(const testing::TestParamInfo<EngineParam>& info) {
  return std::string(info.param.name) + "_w" +
         std::to_string(info.param.workers) +
         (info.param.threaded ? "_threaded" : "_machine");
}

class EquivalenceTest : public testing::TestWithParam<EngineParam> {};

TEST_P(EquivalenceTest, MatchesSequentialTraces) {
  const EngineParam& ep = GetParam();
  for (const Case& tc : kCases) {
    // Reference run.
    Built ref = tc.build();
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(tc.until);

    // Parallel run.
    Built par = tc.build();
    RunConfig rc;
    rc.num_workers = ep.workers;
    rc.configuration = ep.config;
    rc.ordering = ep.ordering;
    rc.until = tc.until;
    rc.gvt_interval = 32;
    const auto part =
        partition::round_robin(par.graph->size(), rc.num_workers);

    RunStats stats;
    if (ep.threaded) {
      ThreadedEngine eng(*par.graph, part, rc);
      eng.set_commit_hook(par.recorder->hook());
      stats = eng.run();
    } else {
      MachineEngine eng(*par.graph, part, rc);
      eng.set_commit_hook(par.recorder->hook());
      stats = eng.run();
    }
    EXPECT_FALSE(stats.deadlocked) << tc.circuit;
    const std::string diff = TraceRecorder::diff(*ref.recorder, *par.recorder);
    EXPECT_EQ(diff, "") << tc.circuit << " with " << ep.name;
    EXPECT_GT(stats.total_committed(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, EquivalenceTest,
    testing::Values(
        EngineParam{"optimistic", Configuration::kAllOptimistic,
                    OrderingMode::kArbitrary, 1, false},
        EngineParam{"optimistic", Configuration::kAllOptimistic,
                    OrderingMode::kArbitrary, 3, false},
        EngineParam{"optimistic", Configuration::kAllOptimistic,
                    OrderingMode::kArbitrary, 8, false},
        EngineParam{"conservative", Configuration::kAllConservative,
                    OrderingMode::kArbitrary, 3, false},
        EngineParam{"conservative", Configuration::kAllConservative,
                    OrderingMode::kArbitrary, 8, false},
        EngineParam{"mixed", Configuration::kMixed,
                    OrderingMode::kArbitrary, 4, false},
        EngineParam{"dynamic", Configuration::kDynamic,
                    OrderingMode::kArbitrary, 4, false},
        EngineParam{"dynamic", Configuration::kDynamic,
                    OrderingMode::kArbitrary, 7, false},
        EngineParam{"ucoptimistic", Configuration::kAllOptimistic,
                    OrderingMode::kUserConsistent, 4, false},
        EngineParam{"optimistic", Configuration::kAllOptimistic,
                    OrderingMode::kArbitrary, 2, true},
        EngineParam{"conservative", Configuration::kAllConservative,
                    OrderingMode::kArbitrary, 2, true},
        EngineParam{"dynamic", Configuration::kDynamic,
                    OrderingMode::kArbitrary, 3, true}),
    param_name);

// The bipartite-aware partitioner must preserve correctness too.
TEST(EquivalencePartition, BipartiteBfsPartition) {
  Built ref = build_small_fsm();
  SequentialEngine seq(*ref.graph);
  seq.set_commit_hook(ref.recorder->hook());
  seq.run(300);

  Built par = build_small_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kDynamic;
  rc.until = 300;
  const auto part = partition::bipartite_bfs(*par.graph, rc.num_workers);
  MachineEngine eng(*par.graph, part, rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats stats = eng.run();
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "");
}

}  // namespace
}  // namespace vsim
