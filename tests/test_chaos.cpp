// Chaos testing of the transport layer: with the reliable channel stacked
// on a faulty wire (drops, duplicates, reordering, latency jitter, link
// blackouts) every synchronisation configuration under both ordering modes
// must still commit exactly the sequential oracle's traces -- the transport
// faults may cost time but never correctness.  Conversely, running a lossy
// wire *without* the reliable channel must terminate with a structured
// TransportError (or a deadlock report), never hang or silently corrupt.
#include <gtest/gtest.h>

#include <chrono>

#include "circuits/builder.h"
#include "circuits/fsm.h"
#include "circuits/random_circuit.h"
#include "partition/partition.h"
#include "pdes/machine.h"
#include "pdes/sequential.h"
#include "pdes/threaded.h"
#include "vhdl/monitor.h"
#include "watchdog.h"

namespace vsim {
namespace {

using circuits::CircuitBuilder;
using circuits::FsmParams;
using circuits::GateKind;
using circuits::RandomCircuitParams;
using pdes::Configuration;
using pdes::FaultPlan;
using pdes::MachineEngine;
using pdes::OrderingMode;
using pdes::RunConfig;
using pdes::RunStats;
using pdes::SequentialEngine;
using pdes::ThreadedEngine;
using vhdl::SignalId;
using vhdl::TraceRecorder;

struct Built {
  std::unique_ptr<pdes::LpGraph> graph;
  std::unique_ptr<vhdl::Design> design;
  std::unique_ptr<vhdl::TraceRecorder> recorder;
};

using BuildFn = Built (*)();

// Hand-built gate netlist: clocked feedback through a DFF plus a small
// combinational cloud, enough cross-LP traffic to exercise every fault.
Built build_gates() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  CircuitBuilder cb(*b.design, /*gate_delay=*/2);
  const SignalId clk = cb.wire("clk");
  const SignalId a = cb.wire("a");
  const SignalId bi = cb.wire("b");
  cb.clock(clk, 25);
  cb.random_bits(a, 17, 7, 900, "rnd_a");
  cb.random_bits(bi, 11, 99, 900, "rnd_b");
  const SignalId x1 = cb.wire("x1");
  cb.gate(GateKind::kXor, {a, bi}, x1);
  const SignalId q = cb.wire("q");
  const SignalId d = cb.wire("d");
  cb.gate(GateKind::kXor, {x1, q}, d);
  const SignalId n1 = cb.wire("n1");
  cb.gate(GateKind::kNand, {a, q}, n1);
  const SignalId o1 = cb.wire("o1");
  cb.gate(GateKind::kOr, {n1, bi}, o1);
  cb.dff(clk, d, q);
  b.recorder = std::make_unique<TraceRecorder>(
      *b.design, std::vector<SignalId>{x1, q, o1});
  b.design->finalize();
  return b;
}

Built build_fsm() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  FsmParams p;
  p.lanes = 2;
  p.width = 3;
  p.input_stop = 400;
  const auto c = circuits::build_fsm(*b.design, p);
  std::vector<SignalId> probes = c.state;
  probes.push_back(c.parity);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, probes);
  b.design->finalize();
  return b;
}

Built build_random() {
  Built b;
  b.graph = std::make_unique<pdes::LpGraph>();
  b.design = std::make_unique<vhdl::Design>(*b.graph);
  RandomCircuitParams p;
  p.seed = 12345;
  p.num_gates = 24;
  p.num_dffs = 5;
  p.zero_delay_pct = 40;
  const auto c = circuits::build_random_circuit(*b.design, p);
  b.recorder = std::make_unique<TraceRecorder>(*b.design, c.observable);
  b.design->finalize();
  return b;
}

struct Circuit {
  const char* name;
  BuildFn build;
  PhysTime until;
};

const Circuit kCircuits[] = {
    {"gates", &build_gates, 600},
    {"fsm", &build_fsm, 250},
    {"random", &build_random, 300},
};

// An aggressive but recoverable fault plan: drop <= 20%, duplicate <= 10%,
// heavy reordering, latency jitter and occasional short blackouts.
FaultPlan chaos_plan(std::uint64_t seed) {
  FaultPlan fp;
  fp.seed = seed;
  fp.drop = 0.15;
  fp.duplicate = 0.08;
  fp.reorder = 0.30;
  fp.jitter = 1.5;
  fp.blackout = 0.01;
  fp.blackout_span = 6;
  return fp;
}

struct ChaosParam {
  const char* name;
  Configuration config;
  OrderingMode ordering;
};

std::string param_name(const testing::TestParamInfo<ChaosParam>& info) {
  return info.param.name;
}

class ChaosEquivalence : public testing::TestWithParam<ChaosParam> {};

// Tentpole acceptance: reliable channel over the faulty wire is
// protocol-transparent for every configuration x ordering mode, on every
// circuit -- and the counters prove the faults actually fired.
TEST_P(ChaosEquivalence, ReliableChannelMatchesOracle) {
  const ChaosParam& cp = GetParam();
  std::uint64_t seed = 1;
  for (const Circuit& tc : kCircuits) {
    Built ref = tc.build();
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(tc.until);

    Built par = tc.build();
    RunConfig rc;
    rc.num_workers = 4;
    rc.configuration = cp.config;
    rc.ordering = cp.ordering;
    rc.until = tc.until;
    rc.gvt_interval = 24;
    rc.transport.faults = chaos_plan(seed++);
    rc.transport.reliable = true;
    const auto part = partition::round_robin(par.graph->size(),
                                             rc.num_workers);
    MachineEngine eng(*par.graph, part, rc);
    eng.set_commit_hook(par.recorder->hook());
    const RunStats st = eng.run();

    EXPECT_FALSE(st.deadlocked) << tc.name;
    EXPECT_FALSE(st.transport_error.has_value())
        << tc.name << ": " << st.transport_error->str();
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << tc.name << " under " << cp.name;
    // The plan must have actually mangled traffic, and the channel must
    // have repaired it: every drop forces at least one retransmission.
    EXPECT_GT(st.transport.data_sent, 0u) << tc.name;
    EXPECT_GT(st.transport.dropped, 0u) << tc.name;
    EXPECT_GT(st.transport.retransmits, 0u) << tc.name;
    EXPECT_GT(st.transport.acks_sent, 0u) << tc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosEquivalence,
    testing::Values(
        ChaosParam{"optimistic_arbitrary", Configuration::kAllOptimistic,
                   OrderingMode::kArbitrary},
        ChaosParam{"optimistic_user", Configuration::kAllOptimistic,
                   OrderingMode::kUserConsistent},
        ChaosParam{"conservative_arbitrary", Configuration::kAllConservative,
                   OrderingMode::kArbitrary},
        ChaosParam{"conservative_user", Configuration::kAllConservative,
                   OrderingMode::kUserConsistent},
        ChaosParam{"mixed_arbitrary", Configuration::kMixed,
                   OrderingMode::kArbitrary},
        ChaosParam{"mixed_user", Configuration::kMixed,
                   OrderingMode::kUserConsistent},
        ChaosParam{"dynamic_arbitrary", Configuration::kDynamic,
                   OrderingMode::kArbitrary},
        ChaosParam{"dynamic_user", Configuration::kDynamic,
                   OrderingMode::kUserConsistent}),
    param_name);

// Fuzz: random circuits under random fault plans and random protocol
// configurations, always trace-identical to the oracle.
TEST(ChaosFuzz, RandomPlansMatchOracle) {
  const Configuration configs[] = {
      Configuration::kAllOptimistic, Configuration::kAllConservative,
      Configuration::kMixed, Configuration::kDynamic};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCircuitParams p;
    p.seed = seed * 7919;
    p.num_gates = 16 + (seed * 13) % 24;
    p.num_dffs = 3 + seed % 5;
    p.zero_delay_pct = static_cast<int>((seed * 37) % 100);
    const PhysTime until = 250;

    Built ref;
    ref.graph = std::make_unique<pdes::LpGraph>();
    ref.design = std::make_unique<vhdl::Design>(*ref.graph);
    auto rc_ref = circuits::build_random_circuit(*ref.design, p);
    ref.recorder =
        std::make_unique<TraceRecorder>(*ref.design, rc_ref.observable);
    ref.design->finalize();
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(until);

    Built par;
    par.graph = std::make_unique<pdes::LpGraph>();
    par.design = std::make_unique<vhdl::Design>(*par.graph);
    auto rc_par = circuits::build_random_circuit(*par.design, p);
    par.recorder =
        std::make_unique<TraceRecorder>(*par.design, rc_par.observable);
    par.design->finalize();

    RunConfig rc;
    rc.num_workers = 2 + seed % 5;
    rc.configuration = configs[seed % 4];
    rc.ordering = seed % 2 ? OrderingMode::kUserConsistent
                           : OrderingMode::kArbitrary;
    rc.until = until;
    rc.gvt_interval = 16 + (seed % 3) * 16;
    rc.transport.reliable = true;
    FaultPlan& fp = rc.transport.faults;
    fp.seed = seed * 104729;
    fp.drop = 0.02 * static_cast<double>(seed % 10);       // 0 .. 0.18
    fp.duplicate = 0.015 * static_cast<double>(seed % 7);  // 0 .. 0.09
    fp.reorder = 0.05 * static_cast<double>(seed % 8);     // 0 .. 0.35
    fp.jitter = 0.5 * static_cast<double>(seed % 4);
    fp.blackout = seed % 3 ? 0.0 : 0.02;

    MachineEngine eng(
        *par.graph,
        partition::round_robin(par.graph->size(), rc.num_workers), rc);
    eng.set_commit_hook(par.recorder->hook());
    const RunStats st = eng.run();
    EXPECT_FALSE(st.deadlocked) << "seed " << seed;
    EXPECT_FALSE(st.transport_error.has_value()) << "seed " << seed;
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << "seed " << seed << " cfg " << to_string(rc.configuration);
  }
}

// The threaded engine shares the same channel stack; chaos must be
// transparent there too (real threads, ops-counter retransmit clock).
TEST(ChaosThreaded, ReliableChannelMatchesOracle) {
  for (const Circuit& tc : kCircuits) {
    Built ref = tc.build();
    SequentialEngine seq(*ref.graph);
    seq.set_commit_hook(ref.recorder->hook());
    seq.run(tc.until);

    Built par = tc.build();
    RunConfig rc;
    rc.num_workers = 3;
    rc.configuration = Configuration::kDynamic;
    rc.until = tc.until;
    rc.transport.faults = chaos_plan(77);
    rc.transport.faults.jitter = 0.0;  // no latency model on this wire
    rc.transport.reliable = true;
    ThreadedEngine eng(
        *par.graph,
        partition::round_robin(par.graph->size(), rc.num_workers), rc);
    eng.set_commit_hook(par.recorder->hook());
    const RunStats st = eng.run();
    EXPECT_FALSE(st.deadlocked) << tc.name;
    EXPECT_FALSE(st.transport_error.has_value()) << tc.name;
    EXPECT_EQ(TraceRecorder::diff(*ref.recorder, *par.recorder), "")
        << tc.name;
    EXPECT_GT(st.transport.dropped, 0u) << tc.name;
    EXPECT_GT(st.transport.retransmits, 0u) << tc.name;
  }
}

// Faults without the reliable channel: the run must terminate and say so.
// Dropped packets with no retransmission can never be trusted, so the
// engine surfaces a structured TransportError (and, if the loss starves
// the protocol into a stall, a deadlock report flagged as transport
// starvation rather than protocol deadlock).
TEST(ChaosUnreliable, LossyRunTerminatesWithStructuredError) {
  testutil::Watchdog wd("ChaosUnreliable.LossyRunTerminatesWithStructuredError",
                       std::chrono::seconds(120));
  Built par = build_fsm();
  RunConfig rc;
  rc.num_workers = 4;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 250;
  rc.deadlock_rounds = 4;
  rc.transport.faults = chaos_plan(3);
  rc.transport.reliable = false;  // raw lossy wire
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  eng.set_commit_hook(par.recorder->hook());
  const RunStats st = eng.run();  // must not hang
  ASSERT_TRUE(st.transport_error.has_value() || st.deadlock_report);
  if (st.transport_error) {
    EXPECT_FALSE(st.transport_error->message.empty());
    EXPECT_NE(st.transport_error->str().find("drop"), std::string::npos);
  }
  if (st.deadlock_report) {
    EXPECT_TRUE(st.deadlock_report->transport_starvation);
    EXPECT_FALSE(st.deadlock_report->str().empty());
  }
  EXPECT_GT(st.transport.dropped, 0u);
  EXPECT_EQ(st.transport.retransmits, 0u);
}

// A dead link (100% drop) with reliability on must exhaust the retry cap
// and unwind with a structured error naming the link, not spin forever.
TEST(ChaosUnreliable, DeadLinkExhaustsRetriesWithStructuredError) {
  testutil::Watchdog wd(
      "ChaosUnreliable.DeadLinkExhaustsRetriesWithStructuredError",
      std::chrono::seconds(120));
  Built par = build_gates();
  RunConfig rc;
  rc.num_workers = 3;
  rc.configuration = Configuration::kAllOptimistic;
  rc.until = 600;
  rc.transport.faults.seed = 11;
  rc.transport.faults.drop = 1.0;
  rc.transport.reliable = true;
  rc.transport.max_retries = 5;
  rc.transport.rto = 4.0;
  MachineEngine eng(*par.graph,
                    partition::round_robin(par.graph->size(), rc.num_workers),
                    rc);
  const RunStats st = eng.run();  // must not hang
  ASSERT_TRUE(st.transport_error.has_value());
  EXPECT_GE(st.transport_error->attempts, rc.transport.max_retries);
  EXPECT_LT(st.transport_error->src_worker, rc.num_workers);
  EXPECT_LT(st.transport_error->dst_worker, rc.num_workers);
  EXPECT_FALSE(st.transport_error->str().empty());
  EXPECT_GT(st.transport.retransmits, 0u);
}

// Same dead-link contract on the threaded engine.
TEST(ChaosUnreliable, ThreadedDeadLinkSurfacesError) {
  testutil::Watchdog wd("ChaosUnreliable.ThreadedDeadLinkSurfacesError",
                        std::chrono::seconds(120));
  Built par = build_gates();
  RunConfig rc;
  rc.num_workers = 2;
  rc.configuration = Configuration::kDynamic;
  rc.until = 600;
  rc.transport.faults.seed = 13;
  rc.transport.faults.drop = 1.0;
  rc.transport.reliable = true;
  rc.transport.max_retries = 5;
  rc.transport.rto = 8.0;
  ThreadedEngine eng(*par.graph,
                     partition::round_robin(par.graph->size(),
                                            rc.num_workers),
                     rc);
  const RunStats st = eng.run();  // must not hang
  ASSERT_TRUE(st.transport_error.has_value());
  EXPECT_GE(st.transport_error->attempts, rc.transport.max_retries);
}

// A wire that swallows every packet, for pinning down the session layer's
// retry-cap contract without an engine in the way.
struct BlackholeWire final : pdes::Transport {
  std::uint64_t swallowed = 0;
  void submit(pdes::Packet&&, double) override { ++swallowed; }
};

// Unit-level retry-cap contract, timer path: a permanently black link must
// latch exactly one structured error naming the link and sequence once the
// retransmission budget is spent, and from then on poll() and flush() must
// be no-ops -- an unwinding engine keeps calling both, and a dead stack
// that still retransmits would livelock the shutdown.
TEST(ChaosUnreliable, ChannelStackPollLatchesErrorThenGoesQuiet) {
  BlackholeWire wire;
  pdes::TransportConfig tc;
  tc.reliable = true;
  tc.max_retries = 4;
  tc.rto = 1.0;
  pdes::ChannelStack stack(wire, /*num_workers=*/3, tc);
  stack.set_deliver([](std::uint32_t, pdes::Event&&) {
    FAIL() << "a blackhole wire must never deliver";
  });

  pdes::Event ev;
  ev.ts = VirtualTime{10, 0};
  ev.src = 0;
  ev.dst = 5;
  ev.uid = 7;
  stack.send(0, 2, std::move(ev), 0.0);
  ASSERT_FALSE(stack.error().has_value());
  ASSERT_FALSE(stack.quiescent());

  // Advance far past every (doubling) timeout each round; the cap must hit
  // within max_retries polls, never later.
  double now = 0.0;
  for (std::uint32_t i = 0; i < tc.max_retries + 2 && !stack.error(); ++i) {
    now += 1e6;
    stack.poll(0, now);
  }
  ASSERT_TRUE(stack.error().has_value());
  const pdes::TransportError err = *stack.error();
  EXPECT_EQ(err.src_worker, 0u);
  EXPECT_EQ(err.dst_worker, 2u);
  EXPECT_EQ(err.seq, 1u);  // first packet on the link
  EXPECT_GE(err.attempts, tc.max_retries);
  EXPECT_NE(err.str().find("0->2"), std::string::npos) << err.str();

  // Latched means latched: no more wire traffic, no busy-work, and the
  // error object itself never changes.
  const std::uint64_t sent_at_latch = wire.swallowed;
  now += 1e6;
  EXPECT_EQ(stack.poll(0, now), 0u);
  EXPECT_EQ(stack.flush(0, now), 0u);
  EXPECT_EQ(wire.swallowed, sent_at_latch);
  EXPECT_EQ(stack.error()->attempts, err.attempts);
  EXPECT_EQ(stack.error()->seq, err.seq);
}

// Unit-level retry-cap contract, drain path: flush() force-retransmits and
// bills one attempt per call, so a drain loop that keeps flushing into a
// black link must exhaust the cap in bounded steps even with timers frozen.
TEST(ChaosUnreliable, ChannelStackFlushExhaustsCapWithFrozenClock) {
  BlackholeWire wire;
  pdes::TransportConfig tc;
  tc.reliable = true;
  tc.max_retries = 6;
  tc.rto = 1e9;  // timer path can never fire; only flush() spends attempts
  pdes::ChannelStack stack(wire, /*num_workers=*/2, tc);
  stack.set_deliver([](std::uint32_t, pdes::Event&&) {
    FAIL() << "a blackhole wire must never deliver";
  });

  pdes::Event ev;
  ev.ts = VirtualTime{1, 0};
  ev.src = 0;
  ev.dst = 1;
  stack.send(0, 1, std::move(ev), 0.0);
  std::uint32_t flushes = 0;
  while (!stack.error() && flushes < tc.max_retries + 2) {
    stack.flush(0, 0.0);
    ++flushes;
  }
  ASSERT_TRUE(stack.error().has_value());
  EXPECT_LE(flushes, tc.max_retries + 1u);
  EXPECT_EQ(stack.error()->src_worker, 0u);
  EXPECT_EQ(stack.error()->dst_worker, 1u);
  EXPECT_GE(stack.error()->attempts, tc.max_retries);
  EXPECT_EQ(stack.flush(0, 0.0), 0u);  // no-op once latched
  EXPECT_EQ(stack.poll(0, 1e18), 0u);
}

// Determinism: the same fault seed must yield bit-identical fault counters
// on the machine engine (the whole point of a seeded plan).
TEST(ChaosDeterminism, SameSeedSameCounters) {
  auto run_once = [] {
    Built par = build_fsm();
    RunConfig rc;
    rc.num_workers = 4;
    rc.configuration = Configuration::kDynamic;
    rc.until = 250;
    rc.transport.faults = chaos_plan(42);
    rc.transport.reliable = true;
    MachineEngine eng(
        *par.graph,
        partition::round_robin(par.graph->size(), rc.num_workers), rc);
    return eng.run();
  };
  const RunStats a = run_once();
  const RunStats b = run_once();
  EXPECT_EQ(a.transport.data_sent, b.transport.data_sent);
  EXPECT_EQ(a.transport.dropped, b.transport.dropped);
  EXPECT_EQ(a.transport.duplicated, b.transport.duplicated);
  EXPECT_EQ(a.transport.reordered, b.transport.reordered);
  EXPECT_EQ(a.transport.retransmits, b.transport.retransmits);
  EXPECT_EQ(a.makespan, b.makespan);
}

// ---- Structured-diagnostic formatting -------------------------------------
// DeadlockReport::str() and TransportError::str() are what a user actually
// sees when a run unwinds; their content and shape are contracts.

TEST(Diagnostics, DeadlockReportFormatsBlockedLps) {
  pdes::DeadlockReport report;
  report.gvt = VirtualTime{40, 2};
  pdes::DeadlockReport::LpDiag d;
  d.id = 7;
  d.next_ts = VirtualTime{41, 0};
  d.min_channel_clock = VirtualTime{39, 0};
  d.pending = 3;
  d.mode = pdes::SyncMode::kConservative;
  report.blocked.push_back(d);
  const std::string s = report.str();
  EXPECT_NE(s.find("protocol deadlock"), std::string::npos) << s;
  EXPECT_NE(s.find("1 LP(s) with pending work"), std::string::npos) << s;
  EXPECT_NE(s.find("lp 7"), std::string::npos) << s;
  EXPECT_NE(s.find("pending=3"), std::string::npos) << s;
  EXPECT_NE(s.find("mode=conservative"), std::string::npos) << s;
  EXPECT_NE(s.find("min_channel_clock"), std::string::npos) << s;
  EXPECT_EQ(s.find("..."), std::string::npos) << s;  // no truncation marker
}

TEST(Diagnostics, DeadlockReportTruncatesAfterEightLps) {
  pdes::DeadlockReport report;
  report.gvt = kTimeZero;
  report.transport_starvation = true;
  for (pdes::LpId id = 0; id < 12; ++id) {
    pdes::DeadlockReport::LpDiag d;
    d.id = id;
    d.next_ts = VirtualTime{static_cast<PhysTime>(id), 0};
    d.min_channel_clock = kTimeInf;  // suppresses the channel column
    d.pending = 1;
    d.mode = pdes::SyncMode::kOptimistic;
    report.blocked.push_back(d);
  }
  const std::string s = report.str();
  EXPECT_NE(s.find("transport starvation"), std::string::npos) << s;
  EXPECT_EQ(s.find("protocol deadlock"), std::string::npos) << s;
  EXPECT_NE(s.find("12 LP(s) with pending work"), std::string::npos) << s;
  EXPECT_NE(s.find(" ..."), std::string::npos) << s;
  EXPECT_NE(s.find("lp 7"), std::string::npos) << s;   // 8th entry shown
  EXPECT_EQ(s.find("lp 8"), std::string::npos) << s;   // 9th entry cut
  EXPECT_EQ(s.find("min_channel_clock"), std::string::npos) << s;
  EXPECT_NE(s.find("mode=optimistic"), std::string::npos) << s;
}

TEST(Diagnostics, TransportErrorNamesLinkWhenAttemptsKnown) {
  pdes::TransportError err;
  err.src_worker = 2;
  err.dst_worker = 5;
  err.seq = 99;
  err.attempts = 7;
  err.message = "gave up after retry cap";
  const std::string s = err.str();
  EXPECT_NE(s.find("transport error"), std::string::npos) << s;
  EXPECT_NE(s.find("2->5"), std::string::npos) << s;
  EXPECT_NE(s.find("seq 99"), std::string::npos) << s;
  EXPECT_NE(s.find("7 attempts"), std::string::npos) << s;
  EXPECT_NE(s.find("gave up after retry cap"), std::string::npos) << s;
}

TEST(Diagnostics, TransportErrorOmitsLinkForSyntheticErrors) {
  pdes::TransportError err;
  err.message = "packets were dropped without reliable delivery";
  const std::string s = err.str();  // attempts == 0: no link to blame
  EXPECT_NE(s.find("transport error"), std::string::npos) << s;
  EXPECT_EQ(s.find("on link"), std::string::npos) << s;
  EXPECT_EQ(s.find("seq"), std::string::npos) << s;
  EXPECT_NE(s.find("without reliable delivery"), std::string::npos) << s;
}

}  // namespace
}  // namespace vsim
