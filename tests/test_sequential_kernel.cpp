// Integration tests: VHDL kernel semantics on the sequential reference
// engine (delta cycles, resolution, inertial delays, waits, timeouts).
#include <gtest/gtest.h>

#include "circuits/builder.h"
#include "pdes/sequential.h"
#include "vhdl/monitor.h"

namespace vsim {
namespace {

using circuits::CircuitBuilder;
using circuits::GateKind;
using pdes::LpGraph;
using pdes::SequentialEngine;
using vhdl::Design;
using vhdl::SignalId;
using vhdl::TraceRecorder;

struct Bench {
  LpGraph graph;
  Design design{graph};
};

std::vector<std::pair<VirtualTime, std::string>> trace_of(
    const TraceRecorder& rec, std::size_t i) {
  std::vector<std::pair<VirtualTime, std::string>> out;
  for (const auto& e : rec.trace(i)) out.emplace_back(e.ts, e.value.str());
  return out;
}

TEST(SequentialKernel, InverterChainPropagatesThroughDeltas) {
  Bench b;
  CircuitBuilder cb(b.design, /*gate_delay=*/0);
  const SignalId a = cb.wire("a", Logic::k0);
  const SignalId x = cb.wire("x", Logic::kU);
  const SignalId y = cb.wire("y", Logic::kU);
  cb.stimulus(a, {{0, Logic::k0}, {10, Logic::k1}});
  cb.gate(GateKind::kNot, {a}, x);
  cb.gate(GateKind::kNot, {x}, y);
  TraceRecorder rec(b.design, {a, x, y});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(100);

  // x settles to '1' at time 0 (after some delta cycles), to '0' at 10.
  const auto xt = trace_of(rec, 1);
  ASSERT_GE(xt.size(), 2u);
  EXPECT_EQ(xt[0].second, "1");
  EXPECT_EQ(xt[0].first.pt, 0);
  EXPECT_EQ(xt[1].second, "0");
  EXPECT_EQ(xt[1].first.pt, 10);
  // y follows one delta later but at the same physical times.
  const auto yt = trace_of(rec, 2);
  ASSERT_GE(yt.size(), 2u);
  EXPECT_EQ(yt[0].second, "0");
  EXPECT_EQ(yt[0].first.pt, 0);
  EXPECT_GT(yt[0].first.lt, xt[0].first.lt);  // strictly later delta phase
  EXPECT_EQ(yt[1].second, "1");
  EXPECT_EQ(yt[1].first.pt, 10);
}

TEST(SequentialKernel, ZeroDelayDeltaCyclesDoNotAdvancePhysicalTime) {
  // A long zero-delay inverter chain: all activity at pt=0 and pt=10
  // happens in delta cycles (increasing lt, constant pt).
  Bench b;
  CircuitBuilder cb(b.design, 0);
  const SignalId a = cb.wire("a", Logic::k0);
  cb.stimulus(a, {{0, Logic::k0}, {10, Logic::k1}});
  SignalId prev = a;
  std::vector<SignalId> nets;
  for (int i = 0; i < 8; ++i) {
    const SignalId n = cb.wire("n" + std::to_string(i), Logic::kU);
    cb.gate(GateKind::kNot, {prev}, n);
    nets.push_back(n);
    prev = n;
  }
  TraceRecorder rec(b.design, nets);
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(100);

  // The last net settles to the parity of the chain; every change is at
  // pt in {0, 10} with lt growing along the chain.
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const auto t = trace_of(rec, i);
    ASSERT_FALSE(t.empty());
    for (const auto& [ts, val] : t) {
      EXPECT_TRUE(ts.pt == 0 || ts.pt == 10) << ts.str();
    }
  }
  const auto last = trace_of(rec, nets.size() - 1);
  EXPECT_EQ(last.back().second, "1");  // 8 inversions of '1' -> '1'
}

TEST(SequentialKernel, GateDelayAdvancesPhysicalTime) {
  Bench b;
  CircuitBuilder cb(b.design, /*gate_delay=*/3);
  const SignalId a = cb.wire("a", Logic::k0);
  const SignalId y = cb.wire("y", Logic::kU);
  cb.stimulus(a, {{0, Logic::k0}, {10, Logic::k1}});
  cb.gate(GateKind::kNot, {a}, y);
  TraceRecorder rec(b.design, {y});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(100);

  const auto yt = trace_of(rec, 0);
  ASSERT_EQ(yt.size(), 2u);
  EXPECT_EQ(yt[0].first.pt, 3);   // '1' three units after t=0
  EXPECT_EQ(yt[0].second, "1");
  EXPECT_EQ(yt[1].first.pt, 13);  // '0' three units after the input edge
  EXPECT_EQ(yt[1].second, "0");
}

TEST(SequentialKernel, InertialGlitchSuppression) {
  // A 2-wide pulse through a 5-delay gate must not appear at the output.
  Bench b;
  CircuitBuilder cb(b.design, /*gate_delay=*/5);
  const SignalId a = cb.wire("a", Logic::k0);
  const SignalId y = cb.wire("y", Logic::kU);
  cb.stimulus(a, {{0, Logic::k0}, {20, Logic::k1}, {22, Logic::k0}});
  cb.gate(GateKind::kBuf, {a}, y);
  TraceRecorder rec(b.design, {y});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(100);

  const auto yt = trace_of(rec, 0);
  // Only the initial '0' settles; the pulse is swallowed.
  ASSERT_EQ(yt.size(), 1u);
  EXPECT_EQ(yt[0].second, "0");
  EXPECT_EQ(yt[0].first.pt, 5);
}

TEST(SequentialKernel, MultiDriverResolution) {
  // Two buffers drive one resolved net from complementary sources -> 'X'
  // when they conflict, driven value when they agree.
  Bench b;
  CircuitBuilder cb(b.design, 0);
  const SignalId a = cb.wire("a", Logic::k0);
  const SignalId bb = cb.wire("b", Logic::k0);
  const SignalId y = cb.wire("y", Logic::kU);
  cb.stimulus(a, {{0, Logic::k0}, {10, Logic::k1}});
  cb.stimulus(bb, {{0, Logic::k0}, {20, Logic::k1}});
  cb.gate(GateKind::kBuf, {a}, y);
  cb.gate(GateKind::kBuf, {bb}, y);  // second driver on the same net
  TraceRecorder rec(b.design, {y});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(100);

  const auto yt = trace_of(rec, 0);
  ASSERT_EQ(yt.size(), 3u);
  EXPECT_EQ(yt[0].second, "0");  // both drive 0
  EXPECT_EQ(yt[1].second, "X");  // 1 vs 0 at t=10
  EXPECT_EQ(yt[1].first.pt, 10);
  EXPECT_EQ(yt[2].second, "1");  // both drive 1 at t=20
  EXPECT_EQ(yt[2].first.pt, 20);
}

TEST(SequentialKernel, ClockGeneratorAndDff) {
  Bench b;
  CircuitBuilder cb(b.design, 0);
  const SignalId clk = cb.wire("clk", Logic::k0);
  cb.clock(clk, 10);
  const SignalId d = cb.wire("d", Logic::k0);
  cb.stimulus(d, {{0, Logic::k0}, {15, Logic::k1}, {35, Logic::k0}});
  const SignalId q = cb.wire("q", Logic::k0);
  cb.dff(clk, d, q);
  TraceRecorder rec(b.design, {clk, q});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(60);

  // Rising edges at 10, 30, 50; d is 1 at t=20..34 -> q captures 1 at 30,
  // 0 at 50.
  const auto qt = trace_of(rec, 1);
  ASSERT_EQ(qt.size(), 2u);
  EXPECT_EQ(qt[0].first.pt, 30);
  EXPECT_EQ(qt[0].second, "1");
  EXPECT_EQ(qt[1].first.pt, 50);
  EXPECT_EQ(qt[1].second, "0");
}

TEST(SequentialKernel, DffWithAsyncReset) {
  Bench b;
  CircuitBuilder cb(b.design, 0);
  const SignalId clk = cb.wire("clk", Logic::k0);
  cb.clock(clk, 10);
  const SignalId d = cb.wire("d", Logic::k1);
  cb.stimulus(d, {{0, Logic::k1}});
  const SignalId rst = cb.wire("rst", Logic::k0);
  cb.stimulus(rst, {{0, Logic::k0}, {32, Logic::k1}, {38, Logic::k0}});
  const SignalId q = cb.wire("q", Logic::k0);
  cb.dff_r(clk, d, rst, q);
  TraceRecorder rec(b.design, {q});
  b.design.finalize();

  SequentialEngine eng(b.graph);
  eng.set_commit_hook(rec.hook());
  eng.run(60);

  const auto qt = trace_of(rec, 0);
  // q -> 1 at the first rising edge (10); async reset pulls it to 0 at 32;
  // back to 1 at the edge at 50 (edge at 30 precedes the reset; edge at 50
  // reloads d='1'; reset release at 38 does not set q by itself).
  ASSERT_EQ(qt.size(), 3u);
  EXPECT_EQ(qt[0].first.pt, 10);
  EXPECT_EQ(qt[0].second, "1");
  EXPECT_EQ(qt[1].first.pt, 32);
  EXPECT_EQ(qt[1].second, "0");
  EXPECT_EQ(qt[2].first.pt, 50);
  EXPECT_EQ(qt[2].second, "1");
}

TEST(SequentialKernel, RippleAdderComputesSums) {
  // 4-bit ripple-carry adder: exhaustive check via stimulus replays.
  for (unsigned av = 0; av < 16; av += 3) {
    for (unsigned bv = 0; bv < 16; bv += 5) {
      Bench b;
      CircuitBuilder cb(b.design, 1);
      const SignalId zero = cb.const_wire(Logic::k0, "c0");
      std::vector<SignalId> as(4), bs(4);
      for (int i = 0; i < 4; ++i) {
        as[i] = cb.wire("a" + std::to_string(i), Logic::k0);
        cb.stimulus(as[i], {{0, (av >> i) & 1 ? Logic::k1 : Logic::k0}});
        bs[i] = cb.wire("b" + std::to_string(i), Logic::k0);
        cb.stimulus(bs[i], {{0, (bv >> i) & 1 ? Logic::k1 : Logic::k0}});
      }
      const auto sum = cb.adder(as, bs, zero, "add");
      TraceRecorder rec(b.design, sum);
      b.design.finalize();

      SequentialEngine eng(b.graph);
      eng.set_commit_hook(rec.hook());
      eng.run(100);

      unsigned result = 0;
      for (int i = 0; i < 4; ++i) {
        // Final committed value of each sum bit (default 0 if unchanged
        // from an initial settled '0').
        Logic v = Logic::k0;
        if (rec.trace(static_cast<std::size_t>(i)).size() > 0)
          v = rec.trace(static_cast<std::size_t>(i)).back().value.scalar();
        if (v == Logic::k1) result |= 1u << i;
      }
      EXPECT_EQ(result, (av + bv) & 15u) << av << "+" << bv;
    }
  }
}

}  // namespace
}  // namespace vsim
