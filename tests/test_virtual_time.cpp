// Unit tests for the (pt, lt) virtual time of the distributed VHDL cycle.
#include <gtest/gtest.h>

#include "common/virtual_time.h"

namespace vsim {
namespace {

TEST(VirtualTime, LexicographicOrder) {
  EXPECT_LT((VirtualTime{0, 0}), (VirtualTime{0, 1}));
  EXPECT_LT((VirtualTime{0, 99}), (VirtualTime{1, 0}));
  EXPECT_LT((VirtualTime{3, 5}), (VirtualTime{3, 6}));
  EXPECT_EQ((VirtualTime{3, 5}), (VirtualTime{3, 5}));
  EXPECT_GT((VirtualTime{4, 0}), (VirtualTime{3, 999}));
}

TEST(VirtualTime, PhaseEncoding) {
  EXPECT_EQ((VirtualTime{10, 0}).phase(), Phase::kAssign);
  EXPECT_EQ((VirtualTime{10, 1}).phase(), Phase::kDriving);
  EXPECT_EQ((VirtualTime{10, 2}).phase(), Phase::kEffective);
  EXPECT_EQ((VirtualTime{10, 3}).phase(), Phase::kAssign);
  EXPECT_EQ((VirtualTime{10, 7}).delta_cycle(), 2);
}

TEST(VirtualTime, PhaseArithmetic) {
  const VirtualTime t{5, 3};
  EXPECT_EQ(t.next_phase(), (VirtualTime{5, 4}));
  EXPECT_EQ(t.next_delta(), (VirtualTime{5, 6}));
  // A delta cycle never advances physical time.
  EXPECT_EQ(t.next_delta().pt, t.pt);
  // Advancing physical time resets the logical clock to the target phase.
  EXPECT_EQ(t.after(7, Phase::kDriving), (VirtualTime{12, 1}));
  EXPECT_EQ(t.after(7, Phase::kAssign), (VirtualTime{12, 0}));
}

TEST(VirtualTime, ExtremesAndFormatting) {
  EXPECT_LT(kTimeZero, kTimeInf);
  EXPECT_EQ(kTimeZero.str(), "(0,0)");
  EXPECT_EQ(kTimeInf.str(), "(inf)");
  EXPECT_EQ((VirtualTime{42, 7}).str(), "(42,7)");
}

// Property: next_phase/next_delta are strictly monotonic and preserve the
// expected phase relationships across a sweep.
TEST(VirtualTime, MonotonicityProperty) {
  for (PhysTime pt = 0; pt < 5; ++pt) {
    for (LogicalTime lt = 0; lt < 12; ++lt) {
      const VirtualTime t{pt, lt};
      EXPECT_LT(t, t.next_phase());
      EXPECT_LT(t, t.next_delta());
      EXPECT_LT(t.next_phase(), t.next_delta());
      EXPECT_EQ(t.next_delta().phase(), t.phase());
      EXPECT_LT(t, t.after(1, Phase::kAssign));
    }
  }
}

}  // namespace
}  // namespace vsim
